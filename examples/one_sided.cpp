// one_sided — MPI-2 one-sided communication over Elan4 RDMA.
//
// A distributed histogram built purely with put/get/fence epochs: every
// rank owns a shard of the global bin array in an exposed window; ranks
// classify local data and push increments into whichever shard owns each
// bin, then everyone reads back the totals with gets. No receiver-side
// calls are involved in the data movement — the Elan4 NIC places and
// fetches bytes directly through exposed E4 addresses.
#include <cstdio>
#include <vector>

#include "openqs.h"

namespace {
constexpr int kRanks = 4;
constexpr int kBinsPerRank = 8;
constexpr int kBins = kRanks * kBinsPerRank;
constexpr int kItemsPerRank = 4096;
}  // namespace

int main() {
  using namespace oqs;

  sim::Engine engine;
  ModelParams params;
  elan4::QsNet qsnet(engine, params, 8);
  rte::Runtime rte(engine, qsnet);

  int checked = 0;
  rte.launch(kRanks, [&](rte::Env& env) {
    mpi::World world(env, qsnet);
    auto& comm = world.comm();
    const int me = comm.rank();

    // Each rank exposes its shard of the histogram.
    std::vector<std::uint64_t> shard(kBinsPerRank, 0);
    mpi::Window win(comm, world, shard.data(), shard.size() * sizeof(std::uint64_t));

    // Deterministic local "measurements".
    sim::Rng rng(1000 + static_cast<std::uint64_t>(me));
    std::vector<std::uint64_t> local_counts(kBins, 0);
    for (int i = 0; i < kItemsPerRank; ++i)
      ++local_counts[rng.uniform(0, kBins - 1)];

    // Epoch 1: accumulate into the owners' shards with get-modify-put, one
    // writer at a time (fence epochs serialize the read-modify-write).
    // fence() is collective, so every rank must call it as often as the
    // active writer does; the writer's fence count is derived by replaying
    // its deterministic RNG — no extra communication needed.
    for (int writer = 0; writer < kRanks; ++writer) {
      sim::Rng wr(1000 + static_cast<std::uint64_t>(writer));
      std::vector<std::uint64_t> wc(kBins, 0);
      for (int i = 0; i < kItemsPerRank; ++i) ++wc[wr.uniform(0, kBins - 1)];
      int fences = 0;
      for (int b = 0; b < kBins; ++b)
        if (wc[static_cast<std::size_t>(b)] != 0) fences += 2;

      if (me == writer) {
        for (int b = 0; b < kBins; ++b) {
          if (local_counts[static_cast<std::size_t>(b)] == 0) continue;
          const int owner = b / kBinsPerRank;
          const std::size_t off =
              static_cast<std::size_t>(b % kBinsPerRank) * sizeof(std::uint64_t);
          std::uint64_t cur = 0;
          win.get(owner, &cur, sizeof(cur), off);
          win.fence();  // complete the get before modifying
          cur += local_counts[static_cast<std::size_t>(b)];
          win.put(owner, &cur, sizeof(cur), off);
          win.fence();
        }
      } else {
        for (int f = 0; f < fences; ++f) win.fence();
      }
    }

    // Epoch 2: everyone reads the full histogram back with gets.
    std::vector<std::uint64_t> full(kBins, 0);
    for (int owner = 0; owner < kRanks; ++owner)
      win.get(owner, full.data() + owner * kBinsPerRank,
              kBinsPerRank * sizeof(std::uint64_t), 0);
    win.fence();

    std::uint64_t total = 0;
    for (std::uint64_t v : full) total += v;
    if (me == 0) {
      std::printf("[one_sided] histogram total %llu (expected %d)\n",
                  static_cast<unsigned long long>(total), kRanks * kItemsPerRank);
      std::printf("[one_sided] first bins:");
      for (int b = 0; b < 8; ++b)
        std::printf(" %llu", static_cast<unsigned long long>(full[static_cast<std::size_t>(b)]));
      std::printf("\n");
    }
    if (total == static_cast<std::uint64_t>(kRanks * kItemsPerRank)) ++checked;
    win.fence();
    comm.barrier();
  });

  engine.run();
  std::printf("[one_sided] %d/%d ranks verified the global histogram\n", checked,
              kRanks);
  return checked == kRanks ? 0 : 1;
}
