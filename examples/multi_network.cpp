// multi_network — concurrent message passing over multiple networks, the
// Open MPI design requirement that shaped the PTL (paper §3).
//
// Part 1: one job runs with BOTH the Elan4 PTL and the TCP PTL active; the
//         PML schedules messages per its heuristic (best weight -> Elan4),
//         and with round-robin scheduling traffic really flows over both,
//         while per-sender ordering is preserved across networks.
// Part 2: the multirail extension — two Elan4 rails striping one message.
#include <cstdio>
#include <vector>

#include "openqs.h"

int main() {
  using namespace oqs;

  // ---------------- Part 1: Elan4 + TCP, one PML -----------------
  {
    sim::Engine engine;
    ModelParams params;
    elan4::QsNet qsnet(engine, params, 8);
    rte::Runtime rte(engine, qsnet);

    mpi::Options opts;
    opts.use_elan4 = true;
    opts.use_tcp = true;
    opts.sched = pml::Pml::SchedPolicy::kRoundRobin;

    rte.launch(2, [&](rte::Env& env) {
      mpi::World world(env, qsnet, opts);
      auto& comm = world.comm();
      if (comm.rank() == 0) {
        std::printf("[multinet] PTLs active: %zu (elan4 + tcp), round-robin "
                    "scheduling\n", world.pml().num_ptls());
        const sim::Time t0 = engine.now();
        for (int i = 0; i < 10; ++i) {
          std::vector<std::uint8_t> msg(4096, static_cast<std::uint8_t>(i));
          comm.send(msg.data(), msg.size(), dtype::byte_type(), 1, 7);
        }
        std::printf("[multinet] 10 x 4KB alternating networks: %.1f us\n",
                    sim::to_us(engine.now() - t0));
      } else {
        bool ok = true;
        for (int i = 0; i < 10; ++i) {
          std::vector<std::uint8_t> msg(4096, 0);
          comm.recv(msg.data(), msg.size(), dtype::byte_type(), 0, 7);
          // Ordering must hold even though odd/even messages used
          // different physical networks with wildly different latency.
          ok &= msg[0] == static_cast<std::uint8_t>(i);
        }
        std::printf("[multinet] cross-network ordering: %s\n",
                    ok ? "preserved" : "VIOLATED");
      }
      comm.barrier();
    });
    engine.run();
  }

  // ---------------- Part 2: multirail striping -----------------
  {
    std::printf("\n[multirail] 1MB transfer, one vs two Elan4 rails\n");
    for (int rails : {1, 2}) {
      sim::Engine engine;
      ModelParams params;
      elan4::QsNet qsnet(engine, params, 8, 64, /*rails=*/2);
      rte::Runtime rte(engine, qsnet);
      mpi::Options opts;
      opts.elan4.rails = rails;
      double mbps = 0;
      rte.launch(2, [&](rte::Env& env) {
        mpi::World world(env, qsnet, opts);
        auto& comm = world.comm();
        std::vector<std::uint8_t> buf(1 << 20, 0x77);
        comm.barrier();
        const sim::Time t0 = engine.now();
        if (comm.rank() == 0) {
          comm.send(buf.data(), buf.size(), dtype::byte_type(), 1, 0);
          std::uint8_t tok;
          comm.recv(&tok, 1, dtype::byte_type(), 1, 1);
          mbps = static_cast<double>(buf.size()) / sim::to_us(engine.now() - t0);
        } else {
          comm.recv(buf.data(), buf.size(), dtype::byte_type(), 0, 0);
          std::uint8_t tok = 1;
          comm.send(&tok, 1, dtype::byte_type(), 0, 1);
        }
        comm.barrier();
      });
      engine.run();
      std::printf("[multirail]   %d rail(s): %.0f MB/s\n", rails, mbps);
    }
  }
  return 0;
}
