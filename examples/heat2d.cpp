// heat2d — a realistic SPMD application on the reproduced stack: 2D Jacobi
// heat diffusion with halo exchange over 8 ranks (1D row decomposition).
//
// This is the workload class the paper's introduction motivates: a regular
// scientific kernel whose nearest-neighbour halo exchanges ride the eager
// QDMA path and whose residual reductions use collectives. The program
// verifies numerics against a sequential reference computed alongside.
#include <cmath>
#include <cstdio>
#include <vector>

#include "openqs.h"

namespace {

constexpr int kNx = 128;        // global rows
constexpr int kNy = 96;         // columns
constexpr int kRanks = 8;
constexpr int kSteps = 60;
constexpr double kAlpha = 0.2;  // diffusion coefficient

// Sequential reference on the full grid.
std::vector<double> reference() {
  std::vector<double> g(kNx * kNy, 0.0);
  std::vector<double> n(kNx * kNy, 0.0);
  for (int j = 0; j < kNy; ++j) g[j] = 100.0;  // hot top edge
  for (int s = 0; s < kSteps; ++s) {
    for (int i = 1; i < kNx - 1; ++i)
      for (int j = 1; j < kNy - 1; ++j)
        n[i * kNy + j] =
            g[i * kNy + j] +
            kAlpha * (g[(i - 1) * kNy + j] + g[(i + 1) * kNy + j] +
                      g[i * kNy + j - 1] + g[i * kNy + j + 1] -
                      4 * g[i * kNy + j]);
    for (int i = 1; i < kNx - 1; ++i)
      for (int j = 1; j < kNy - 1; ++j) g[i * kNy + j] = n[i * kNy + j];
  }
  return g;
}

}  // namespace

int main() {
  using namespace oqs;

  sim::Engine engine;
  ModelParams params;
  elan4::QsNet qsnet(engine, params, 8);
  rte::Runtime rte(engine, qsnet);

  const std::vector<double> ref = reference();
  int verified_ranks = 0;

  rte.launch(kRanks, [&](rte::Env& env) {
    mpi::World world(env, qsnet);
    auto& comm = world.comm();
    const int rank = comm.rank();
    const int rows = kNx / kRanks;  // rows owned by this rank
    const int top_nbr = rank - 1;
    const int bot_nbr = rank + 1;

    // Local grid with one halo row above and below.
    std::vector<double> g((rows + 2) * kNy, 0.0);
    std::vector<double> nxt((rows + 2) * kNy, 0.0);
    if (rank == 0)
      for (int j = 0; j < kNy; ++j) g[1 * kNy + j] = 100.0;  // hot edge

    auto row = [&](int r) { return g.data() + r * kNy; };

    const sim::Time t0 = engine.now();
    for (int s = 0; s < kSteps; ++s) {
      // Halo exchange: nonblocking receives first, then sends.
      std::vector<mpi::Request> reqs;
      if (top_nbr >= 0) {
        reqs.push_back(comm.irecv(row(0), kNy, dtype::double_type(), top_nbr, s));
        reqs.push_back(comm.isend(row(1), kNy, dtype::double_type(), top_nbr, s));
      }
      if (bot_nbr < kRanks) {
        reqs.push_back(
            comm.irecv(row(rows + 1), kNy, dtype::double_type(), bot_nbr, s));
        reqs.push_back(
            comm.isend(row(rows), kNy, dtype::double_type(), bot_nbr, s));
      }
      for (auto& r : reqs) r.wait();

      // Stencil update on interior points (global boundary rows pinned).
      const int global_top = rank * rows;
      for (int i = 1; i <= rows; ++i) {
        const int gi = global_top + i - 1;
        if (gi == 0 || gi == kNx - 1) continue;
        for (int j = 1; j < kNy - 1; ++j)
          nxt[i * kNy + j] =
              g[i * kNy + j] +
              kAlpha * (g[(i - 1) * kNy + j] + g[(i + 1) * kNy + j] +
                        g[i * kNy + j - 1] + g[i * kNy + j + 1] -
                        4 * g[i * kNy + j]);
      }
      for (int i = 1; i <= rows; ++i) {
        const int gi = global_top + i - 1;
        if (gi == 0 || gi == kNx - 1) continue;
        for (int j = 1; j < kNy - 1; ++j) g[i * kNy + j] = nxt[i * kNy + j];
      }

      // Periodic residual check via allreduce.
      if (s % 20 == 19) {
        double local = 0.0;
        for (int i = 1; i <= rows; ++i)
          for (int j = 0; j < kNy; ++j) local += g[i * kNy + j];
        double total = 0.0;
        comm.allreduce_sum(&local, &total, 1);
        if (rank == 0)
          std::printf("[heat2d] step %3d  total heat %.3f  t=%.1f us\n", s + 1,
                      total, sim::to_us(engine.now() - t0));
      }
    }

    // Verify against the sequential reference.
    double max_err = 0.0;
    for (int i = 1; i <= rows; ++i) {
      const int gi = rank * rows + i - 1;
      for (int j = 0; j < kNy; ++j)
        max_err = std::max(max_err,
                           std::fabs(g[i * kNy + j] - ref[gi * kNy + j]));
    }
    if (max_err < 1e-9) ++verified_ranks;
    comm.barrier();
    if (rank == 0)
      std::printf("[heat2d] %d steps on %d ranks in %.2f ms simulated time\n",
                  kSteps, kRanks, sim::to_ms(engine.now() - t0));
  });

  engine.run();
  std::printf("[heat2d] verification: %d/%d ranks match the sequential "
              "reference\n", verified_ranks, kRanks);
  return verified_ranks == kRanks ? 0 : 1;
}
