// Quickstart: build the simulated testbed, launch a 2-process MPI job over
// the Elan4 PTL, exchange messages, and report latencies.
//
//   $ ./examples/quickstart
//
// Walks through the whole public API surface: the testbed (QsNet), the
// run-time environment, World construction (dynamic join + wire-up), blocking
// and nonblocking point-to-point, and a collective.
#include <cstdio>

#include "openqs.h"

int main() {
  using namespace oqs;

  // --- The machine: the paper's testbed, 8 nodes on one QS-8A switch. ---
  sim::Engine engine;
  ModelParams params;  // calibrated Elan4/QsNetII cost model
  elan4::QsNet qsnet(engine, params, /*nodes=*/8);
  rte::Runtime rte(engine, qsnet);

  // --- The job: two MPI processes, one per node. ---
  rte.launch(2, [&](rte::Env& env) {
    mpi::World world(env, qsnet);  // claims an Elan context, wires up peers
    auto& comm = world.comm();

    if (comm.rank() == 0)
      std::printf("[quickstart] %d processes wired up at t=%.1f us\n",
                  comm.size(), sim::to_us(engine.now()));

    // Blocking ping-pong: 64 bytes rides the QDMA eager path.
    std::uint8_t ping[64] = {1, 2, 3};
    if (comm.rank() == 0) {
      const sim::Time t0 = engine.now();
      comm.send(ping, sizeof(ping), dtype::byte_type(), 1, /*tag=*/0);
      comm.recv(ping, sizeof(ping), dtype::byte_type(), 1, 0);
      std::printf("[quickstart] 64B round trip: %.2f us\n",
                  sim::to_us(engine.now() - t0));
    } else {
      comm.recv(ping, sizeof(ping), dtype::byte_type(), 0, 0);
      comm.send(ping, sizeof(ping), dtype::byte_type(), 0, 0);
    }

    // A large message takes the rendezvous + RDMA-read path.
    std::vector<std::uint8_t> big(1 << 20, 0xAB);
    if (comm.rank() == 0) {
      const sim::Time t0 = engine.now();
      comm.send(big.data(), big.size(), dtype::byte_type(), 1, 1);
      std::printf("[quickstart] 1MB send completed in %.1f us (%.0f MB/s)\n",
                  sim::to_us(engine.now() - t0),
                  static_cast<double>(big.size()) / sim::to_us(engine.now() - t0));
    } else {
      std::vector<std::uint8_t> in(1 << 20);
      comm.recv(in.data(), in.size(), dtype::byte_type(), 0, 1);
      std::printf("[quickstart] rank 1 received 1MB, first byte 0x%02X\n", in[0]);
    }

    // Nonblocking overlap + a collective to finish.
    std::uint32_t mine = 100u + static_cast<std::uint32_t>(comm.rank());
    std::uint32_t theirs = 0;
    mpi::Request r = comm.irecv(&theirs, 4, dtype::byte_type(),
                                1 - comm.rank(), 2);
    comm.send(&mine, 4, dtype::byte_type(), 1 - comm.rank(), 2);
    r.wait();
    std::printf("[quickstart] rank %d exchanged %u <-> %u\n", comm.rank(), mine,
                theirs);

    comm.barrier();
  });

  engine.run();
  std::printf("[quickstart] simulation finished at t=%.3f ms\n",
              sim::to_ms(engine.now()));
  return 0;
}
