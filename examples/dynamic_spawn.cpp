// dynamic_spawn — the paper's headline capability: MPI-2 dynamic process
// management over Quadrics.
//
// A running 4-process job spawns 2 worker processes at runtime. The workers
// claim free Elan4 contexts in the system-wide capability, wire up with the
// existing pool through the RTE registry, and join a merged communicator —
// none of which stock libelan's static process pool allows. The merged group
// then runs a master/worker workload, the workers leave, and their contexts
// return to the capability for reuse.
#include <cstdio>
#include <vector>

#include "openqs.h"

int main() {
  using namespace oqs;

  sim::Engine engine;
  ModelParams params;
  elan4::QsNet qsnet(engine, params, 8, /*contexts_per_node=*/8);
  rte::Runtime rte(engine, qsnet);

  rte.launch(4, [&](rte::Env& env) {
    mpi::World world(env, qsnet);
    auto& comm = world.comm();
    if (comm.rank() == 0)
      std::printf("[spawn] initial job: %d procs, %d live Elan contexts\n",
                  comm.size(), qsnet.capability().live_count());
    comm.barrier();

    // --- Spawn two workers; the returned communicator merges both groups
    // (parents ranks 0..3, workers 4..5). ---
    mpi::Communicator merged = world.spawn_merge(2, [&](mpi::World& wworld) {
      auto& wc = wworld.comm();
      std::printf("[spawn]   worker rank %d up on node %d (vpid-bearing "
                  "context claimed dynamically)\n",
                  wc.rank(), wworld.env().node);
      // Workers: receive a chunk from the master, square it, send it back.
      for (;;) {
        std::int64_t task[2];  // {id, value}; id < 0 means stop
        wc.recv(task, sizeof(task), dtype::byte_type(), 0, 1);
        if (task[0] < 0) break;
        task[1] *= task[1];
        wc.send(task, sizeof(task), dtype::byte_type(), 0, 2);
      }
      wc.barrier();
    });

    if (comm.rank() == 0) {
      std::printf("[spawn] merged communicator: %d procs, %d live contexts\n",
                  merged.size(), qsnet.capability().live_count());
      // Master farms 10 tasks to the two workers round-robin.
      std::int64_t expected_sum = 0;
      std::int64_t got_sum = 0;
      for (std::int64_t id = 0; id < 10; ++id) {
        std::int64_t task[2] = {id, id + 3};
        expected_sum += (id + 3) * (id + 3);
        merged.send(task, sizeof(task), dtype::byte_type(),
                    4 + static_cast<int>(id % 2), 1);
      }
      for (int i = 0; i < 10; ++i) {
        std::int64_t task[2];
        merged.recv(task, sizeof(task), dtype::byte_type(), mpi::kAnySource, 2);
        got_sum += task[1];
      }
      std::printf("[spawn] farm result %lld (expected %lld) -> %s\n",
                  static_cast<long long>(got_sum),
                  static_cast<long long>(expected_sum),
                  got_sum == expected_sum ? "OK" : "MISMATCH");
      // Stop the workers.
      for (int w = 4; w < 6; ++w) {
        std::int64_t stop[2] = {-1, 0};
        merged.send(stop, sizeof(stop), dtype::byte_type(), w, 1);
      }
    }
    merged.barrier();
    comm.barrier();
  });

  engine.run();
  std::printf("[spawn] all processes finalized; %d contexts still claimed "
              "(expect 0 — dynamic disjoin returns them)\n",
              qsnet.capability().live_count());
  return qsnet.capability().live_count() == 0 ? 0 : 1;
}
