// RTE: OOB messaging, registry/name-service, launch and spawn.
#include <gtest/gtest.h>

#include "elan4/qsnet.h"
#include "rte/runtime.h"

namespace oqs::rte {
namespace {

struct RteFixture : ::testing::Test {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<elan4::QsNet> net;
  std::unique_ptr<Runtime> rt;

  void SetUp() override {
    net = std::make_unique<elan4::QsNet>(engine, params, 4);
    rt = std::make_unique<Runtime>(engine, *net);
  }
};

TEST_F(RteFixture, OobDeliversTaggedMessages) {
  Oob& oob = rt->oob();
  const int a = oob.add_endpoint();
  const int b = oob.add_endpoint();
  std::vector<int> got;
  engine.spawn("recv", [&] {
    OobMsg m = oob.recv(b, /*tag=*/2);
    got.push_back(m.tag);
    EXPECT_EQ(m.src, a);
    m = oob.recv(b, 1);  // the earlier tag-1 message is still queued
    got.push_back(m.tag);
  });
  engine.spawn("send", [&] {
    oob.send(a, b, 1, {0x01});
    oob.send(a, b, 2, {0x02});
  });
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{2, 1}));
}

TEST_F(RteFixture, OobChargesManagementLatency) {
  Oob& oob = rt->oob();
  const int a = oob.add_endpoint();
  const int b = oob.add_endpoint();
  sim::Time arrive = 0;
  engine.spawn("recv", [&] {
    oob.recv(b, kAnyTag);
    arrive = engine.now();
  });
  engine.spawn("send", [&] { oob.send(a, b, 0, std::vector<std::uint8_t>(900)); });
  engine.run();
  EXPECT_GE(arrive, params.oob_latency_ns);
  EXPECT_GE(arrive, params.oob_latency_ns +
                        ModelParams::xfer_ns(900, params.oob_mbps) - 1);
}

TEST_F(RteFixture, OobToRemovedEndpointIsDropped) {
  Oob& oob = rt->oob();
  const int a = oob.add_endpoint();
  const int b = oob.add_endpoint();
  oob.remove_endpoint(b);
  oob.send(a, b, 0, {1});
  engine.run();  // must not crash; message silently dropped
}

TEST_F(RteFixture, RegistryGetBlocksUntilPut) {
  Registry& reg = rt->registry();
  std::vector<std::uint8_t> got;
  engine.spawn("getter", [&] { got = reg.get("k"); });
  engine.spawn("putter", [&] {
    engine.sleep(500 * sim::kUs);
    reg.put("k", {9, 8, 7});
  });
  engine.run();
  EXPECT_EQ(got, (std::vector<std::uint8_t>{9, 8, 7}));
}

TEST_F(RteFixture, RegistryBarrierHoldsUntilAllArrive) {
  Registry& reg = rt->registry();
  int through = 0;
  sim::Time last_enter = 0;
  std::vector<sim::Time> exits;
  for (int i = 0; i < 3; ++i) {
    engine.spawn("p", [&, i] {
      engine.sleep(static_cast<sim::Time>(i) * 100 * sim::kUs);
      last_enter = std::max(last_enter, engine.now());
      reg.barrier("b", 3);
      exits.push_back(engine.now());
      ++through;
    });
  }
  engine.run();
  EXPECT_EQ(through, 3);
  for (sim::Time t : exits) EXPECT_GE(t, last_enter);
}

TEST_F(RteFixture, LaunchPlacesRoundRobin) {
  std::vector<int> nodes;
  rt->launch(6, [&](Env& env) { nodes.push_back(env.node); });
  engine.run();
  EXPECT_EQ(nodes, (std::vector<int>{0, 1, 2, 3, 0, 1}));
}

TEST_F(RteFixture, LaunchHonorsExplicitPlacement) {
  std::vector<int> nodes;
  rt->launch(3, [&](Env& env) { nodes.push_back(env.node); }, {2, 2, 0});
  engine.run();
  EXPECT_EQ(nodes, (std::vector<int>{2, 2, 0}));
}

TEST_F(RteFixture, SpawnOneCreatesLiveProcess) {
  int spawned_index = -1;
  rt->launch(2, [&](Env& env) {
    if (env.world_index == 0) {
      env.rte->spawn_one(3, [&](Env& cenv) {
        spawned_index = cenv.world_index;
        EXPECT_EQ(cenv.node, 3);
      });
    }
  });
  engine.run();
  EXPECT_EQ(spawned_index, 2);  // after the two launched processes
  EXPECT_EQ(rt->processes_launched(), 3);
}

TEST_F(RteFixture, PodSerializationRoundTrips) {
  std::vector<std::uint8_t> buf;
  put_pod(buf, std::int32_t{-5});
  put_pod(buf, std::uint64_t{0xDEADBEEFCAFEull});
  put_pod(buf, double{2.5});
  std::size_t off = 0;
  EXPECT_EQ(get_pod<std::int32_t>(buf, off), -5);
  EXPECT_EQ(get_pod<std::uint64_t>(buf, off), 0xDEADBEEFCAFEull);
  EXPECT_EQ(get_pod<double>(buf, off), 2.5);
  EXPECT_EQ(off, buf.size());
}

}  // namespace
}  // namespace oqs::rte
