// Pipelined-rendezvous conformance: the fragment schedule is the single
// authority for every byte boundary of a long message, and the full stack
// must honor it — no byte delivered twice (the old inline-prefix /
// pull-map double-delivery window), no byte skipped, per-sender order
// preserved, and the whole schedule replay-deterministic under faults.
//
// Two layers of coverage:
//  - plan-level unit tests drive plan_frags/derive_frags directly and check
//    exact-once coverage of [0, total) across inline prefix, pushed frames
//    and pull fragments,
//  - full-stack tests straddle every interesting boundary (eager_limit,
//    frag_size, push region) with patterned payloads, and a property test
//    randomizes frag size / depth / push count under a seeded RNG.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "net/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pml/frag_schedule.h"
#include "ptl/elan4/ptl_elan4.h"
#include "testbed.h"

namespace oqs {
namespace {

using pml::derive_frags;
using pml::FragSchedule;
using pml::kMaxPullFrags;
using pml::plan_frags;
using test::TestBed;

// ---------------------------------------------------------------------------
// Plan-level conformance.

// Every byte of [0, total) must be claimed exactly once by the inline
// prefix, one pushed frame, or one pull fragment.
void expect_exact_once(const FragSchedule& p) {
  ASSERT_EQ(p.inline_len + p.push_len, p.pull_base)
      << "pulls must start exactly where the pushed prefix ends";
  ASSERT_EQ(p.pull_base + p.pull_len, p.total);
  std::vector<int> hits(static_cast<std::size_t>(p.total), 0);
  for (std::uint64_t b = 0; b < p.inline_len; ++b) ++hits[b];
  for (std::uint32_t i = 0; i < p.push_frames(); ++i) {
    const std::uint64_t off = p.push_offset(i);
    const std::uint64_t len = p.push_bytes(i);
    ASSERT_GT(len, 0u) << "pushed frame " << i << " may not be empty";
    for (std::uint64_t b = off; b < off + len; ++b) ++hits[b];
  }
  for (std::uint32_t i = 0; i < p.nfrags; ++i) {
    const std::uint64_t off = p.frag_offset(i);
    const std::uint64_t len = p.frag_bytes(i);
    ASSERT_GT(len, 0u) << "pull fragment " << i << " may not be empty";
    ASSERT_GE(off, p.pull_base)
        << "pull fragment " << i << " reaches into the pushed prefix";
    for (std::uint64_t b = off; b < off + len; ++b) ++hits[b];
  }
  for (std::size_t b = 0; b < hits.size(); ++b)
    ASSERT_EQ(hits[b], 1) << "byte " << b << " delivered " << hits[b]
                          << " times (total=" << p.total
                          << " inline=" << p.inline_len
                          << " push=" << p.push_len << "/" << p.push_unit
                          << " frag=" << p.frag_size << ")";
}

TEST(FragSchedulePlan, CoversEveryByteExactlyOnce) {
  // Boundary sweep: totals that land the pull length exactly on, one below
  // and one above fragment multiples, and prefixes that do or don't consume
  // the message whole.
  const std::uint64_t inline_cap = 1984;
  const std::uint32_t push_unit = 1984;
  for (const std::uint32_t push_frames : {0u, 1u, 3u}) {
    for (const std::uint64_t frag : {512ull, 4096ull, 16384ull}) {
      const std::uint64_t prefix =
          inline_cap + static_cast<std::uint64_t>(push_frames) * push_unit;
      for (const std::uint64_t total :
           {inline_cap - 1, inline_cap, inline_cap + 1, prefix - 1, prefix,
            prefix + 1, prefix + frag - 1, prefix + frag, prefix + frag + 1,
            prefix + 5 * frag + frag / 2}) {
        SCOPED_TRACE(testing::Message() << "total=" << total << " frag=" << frag
                                        << " push=" << push_frames);
        expect_exact_once(
            plan_frags(total, inline_cap, push_frames, push_unit, frag));
      }
    }
  }
}

TEST(FragSchedulePlan, SenderAndReceiverDeriveIdenticalRanges) {
  // The receiver re-derives the plan from the four serialized scalars; both
  // sides must see identical fragment ranges.
  const FragSchedule s = plan_frags(300000, 1984, 3, 1984, 16384);
  const FragSchedule r =
      derive_frags(s.total, s.inline_len, s.push_len, s.push_unit, s.frag_size);
  ASSERT_EQ(s.nfrags, r.nfrags);
  ASSERT_EQ(s.pull_base, r.pull_base);
  for (std::uint32_t i = 0; i < s.nfrags; ++i) {
    EXPECT_EQ(s.frag_offset(i), r.frag_offset(i));
    EXPECT_EQ(s.frag_bytes(i), r.frag_bytes(i));
  }
  for (std::uint32_t i = 0; i < s.push_frames(); ++i) {
    EXPECT_EQ(s.push_offset(i), r.push_offset(i));
    EXPECT_EQ(s.push_bytes(i), r.push_bytes(i));
  }
}

TEST(FragSchedulePlan, FragCountCapsAtFinMaskWidth) {
  // Tiny fragments against a huge message: the plan widens fragments rather
  // than overflowing the 64-bit FIN mask.
  const FragSchedule p = plan_frags(8u << 20, 1984, 0, 0, 512);
  EXPECT_EQ(p.nfrags, kMaxPullFrags);
  std::uint64_t covered = 0;
  for (std::uint32_t i = 0; i < p.nfrags; ++i) {
    EXPECT_EQ(p.frag_offset(i), p.pull_base + covered);
    covered += p.frag_bytes(i);
  }
  EXPECT_EQ(covered, p.pull_len);
}

TEST(FragSchedulePlan, RandomizedPlansStayConformant) {
  std::mt19937_64 rng(0x5eedu);
  for (int iter = 0; iter < 300; ++iter) {
    const std::uint64_t inline_cap = 1 + rng() % 4096;
    const std::uint32_t push_frames = static_cast<std::uint32_t>(rng() % 5);
    const std::uint32_t push_unit = 1 + static_cast<std::uint32_t>(rng() % 4096);
    const std::uint64_t frag = 1 + rng() % 32768;
    const std::uint64_t total = 1 + rng() % 200000;
    SCOPED_TRACE(testing::Message()
                 << "iter=" << iter << " total=" << total << " cap="
                 << inline_cap << " push=" << push_frames << "x" << push_unit
                 << " frag=" << frag);
    const FragSchedule p =
        plan_frags(total, inline_cap, push_frames, push_unit, frag);
    ASSERT_LE(p.nfrags, kMaxPullFrags);
    expect_exact_once(p);
  }
}

// ---------------------------------------------------------------------------
// Full-stack conformance.

std::vector<std::uint8_t> patterned(std::size_t bytes, std::uint8_t salt) {
  std::vector<std::uint8_t> buf(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    buf[i] = static_cast<std::uint8_t>(i * 7 + salt);
  return buf;
}

// Ping every size in `sizes` from rank 0 to rank 1 in order; each message
// carries a size+index-salted pattern so a misrouted, reordered, doubled or
// clipped fragment shows up as a byte mismatch at a specific offset.
void exchange_sizes(mpi::World& w, const std::vector<std::size_t>& sizes) {
  auto& c = w.comm();
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto salt = static_cast<std::uint8_t>(sizes[i] * 31 + i);
    if (c.rank() == 0) {
      std::vector<std::uint8_t> out = patterned(sizes[i], salt);
      c.send(out.data(), sizes[i], dtype::byte_type(), 1, 7);
    } else {
      const std::vector<std::uint8_t> want = patterned(sizes[i], salt);
      std::vector<std::uint8_t> got(sizes[i], 0xA5);
      c.recv(got.data(), sizes[i], dtype::byte_type(), 0, 7);
      ASSERT_EQ(got, want) << "message " << i << " of " << sizes[i] << "B";
    }
  }
  c.barrier();
}

// Boundary straddle around the eager/rendezvous switch and every fragment
// edge the schedule can produce for the given knobs.
std::vector<std::size_t> straddle_sizes(std::size_t eager, std::size_t frag,
                                        std::size_t push_prefix) {
  const std::size_t prefix = eager + push_prefix;
  return {
      eager - 1, eager,         eager + 1,          // protocol switch
      prefix - 1, prefix, prefix + 1,               // push region edge
      prefix + frag - 1, prefix + frag, prefix + frag + 1,  // 1st pull edge
      prefix + 2 * frag - 1, prefix + 2 * frag, prefix + 2 * frag + 1,
      prefix + 7 * frag + frag / 3,  // many fragments, ragged tail
  };
}

TEST(RendezvousPipeline, FragmentBoundariesDeliverIntactInOrder) {
  mpi::Options opts;
  opts.pipeline_frag_bytes = 4096;
  opts.pipeline_depth = 2;
  opts.pipeline_push_frags = 2;
  obs::metrics().reset();
  TestBed bed;
  bed.pin_transport = true;  // sizes below are computed from these exact knobs
  bed.run_mpi(2, [&](mpi::World& w) {
    const std::size_t eager = w.elan4_ptl()->eager_limit();
    exchange_sizes(w, straddle_sizes(eager, 4096, 2 * eager));
  }, opts);
  const auto m = obs::metrics().snapshot();
  const auto get = [&m](const std::string& k) -> std::uint64_t {
    const auto it = m.find(k);
    return it != m.end() ? it->second : 0u;
  };
  // The sweep must actually exercise both protocols and the pushed-fragment
  // path, or the integrity assertions above prove less than they claim.
  EXPECT_GT(get("pml.send.eager"), 0u);
  EXPECT_GT(get("bml.send.pipelined"), 0u);
  EXPECT_GT(get("bml.pipeline.push_rx"), 0u);
  EXPECT_EQ(get("bml.stripe.failed"), 0u);
}

TEST(RendezvousPipeline, ReliabilityAndChecksumsPreserveBoundaries) {
  // Same straddle with the go-back-N stream and per-fragment CRCs on: the
  // sequenced path carries RTS/pushed fragments/FINs, pulls are verified.
  mpi::Options opts;
  opts.elan4.reliability = true;
  opts.pipeline_frag_bytes = 4096;
  opts.pipeline_depth = 3;
  TestBed bed;
  bed.pin_transport = true;
  bed.run_mpi(2, [&](mpi::World& w) {
    const std::size_t eager = w.elan4_ptl()->eager_limit();
    exchange_sizes(w, straddle_sizes(eager, 4096, 3 * eager));
  }, opts);
}

TEST(RendezvousPipeline, InterleavedEagerTrafficKeepsSenderOrder) {
  // MPI ordering law: messages on one (sender, tag) stream match in send
  // order even when a short eager message departs while pipeline fragments
  // of an earlier long message are still in flight.
  mpi::Options opts;
  opts.pipeline_frag_bytes = 2048;
  opts.pipeline_depth = 2;
  TestBed bed;
  bed.pin_transport = true;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t big = 100000, small = 64;
    for (int round = 0; round < 8; ++round) {
      const auto salt = static_cast<std::uint8_t>(round * 13);
      if (c.rank() == 0) {
        std::vector<std::uint8_t> a = patterned(big, salt);
        std::vector<std::uint8_t> b = patterned(small, salt + 1);
        // Nonblocking long send, then an eager send racing its fragments.
        auto ra = c.isend(a.data(), big, dtype::byte_type(), 1, 3);
        c.send(b.data(), small, dtype::byte_type(), 1, 3);
        ra.wait();
      } else {
        std::vector<std::uint8_t> a(big, 0), b(small, 0);
        c.recv(a.data(), big, dtype::byte_type(), 0, 3);
        c.recv(b.data(), small, dtype::byte_type(), 0, 3);
        ASSERT_EQ(a, patterned(big, salt)) << "round " << round;
        ASSERT_EQ(b, patterned(small, salt + 1)) << "round " << round;
      }
    }
    c.barrier();
  }, opts);
}

struct PipelineRun {
  sim::Time final_time = 0;
  std::uint64_t digest = 0;
  obs::MetricRegistry::Snapshot metrics;
};

PipelineRun run_faulted_pipeline(std::uint64_t seed) {
  obs::Tracer tracer;
  obs::set_tracer(&tracer);
  obs::metrics().reset();
  mpi::Options opts;
  opts.elan4.reliability = true;
  opts.pipeline_frag_bytes = 4096;
  opts.pipeline_depth = 2;
  TestBed bed;
  bed.pin_transport = true;
  net::FaultProfile p;
  p.drop = 0.03;
  p.corrupt = 0.01;
  p.duplicate = 0.02;
  bed.net->set_faults(p, seed);
  PipelineRun out;
  out.final_time = bed.run_mpi(2, [&](mpi::World& w) {
    const std::size_t eager = w.elan4_ptl()->eager_limit();
    exchange_sizes(w, straddle_sizes(eager, 4096, 3 * eager));
  }, opts);
  out.digest = tracer.digest();
  out.metrics = obs::metrics().snapshot();
  obs::set_tracer(nullptr);
  return out;
}

TEST(RendezvousPipeline, SameSeedReplaysSameScheduleAndDigest) {
  const PipelineRun a = run_faulted_pipeline(97);
  const PipelineRun b = run_faulted_pipeline(97);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.metrics, b.metrics)
      << "same fault seed must reproduce every counter exactly";
}

TEST(RendezvousPipeline, DifferentSeedDiverges) {
#if defined(OQS_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (-DOQS_TRACE=OFF)";
#else
  const PipelineRun a = run_faulted_pipeline(97);
  const PipelineRun b = run_faulted_pipeline(98);
  EXPECT_NE(a.digest, b.digest);
#endif
}

TEST(RendezvousPipeline, RandomizedKnobsStayConformant) {
  // Property test: fragment size, depth and push count are protocol knobs,
  // not correctness knobs. Any seeded combination must deliver every byte.
  std::mt19937_64 rng(0xF1A6u);
  for (int iter = 0; iter < 5; ++iter) {
    mpi::Options opts;
    opts.pipeline_frag_bytes = 512u << (rng() % 6);     // 512B .. 16KB
    opts.pipeline_depth = 1 + static_cast<int>(rng() % 4);
    opts.pipeline_push_frags = static_cast<int>(rng() % 4);
    opts.elan4.reliability = (rng() % 2) == 0;
    const std::size_t frag = opts.pipeline_frag_bytes;
    std::vector<std::size_t> sizes;
    for (int s = 0; s < 6; ++s) sizes.push_back(1 + rng() % 150000);
    SCOPED_TRACE(testing::Message()
                 << "iter=" << iter << " frag=" << frag << " depth="
                 << opts.pipeline_depth << " push=" << opts.pipeline_push_frags
                 << " rel=" << opts.elan4.reliability);
    TestBed bed;
    bed.pin_transport = true;
    bed.run_mpi(2, [&](mpi::World& w) { exchange_sizes(w, sizes); }, opts);
  }
}

}  // namespace
}  // namespace oqs
