// PML matching semantics in isolation, via a mock PTL: posted/unexpected
// queues, wildcards, per-sender sequence reordering across PTLs, scheduling
// policy, instrumentation probes.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "pml/pml.h"

namespace oqs::pml {
namespace {

// A PTL that packs everything inline and parks frames in a queue the test
// pumps by hand — including out of order, as if they raced over two rails.
class MockPtl final : public Ptl {
 public:
  MockPtl(std::string name, double weight) : name_(std::move(name)), weight_(weight) {}

  Pml* peer_pml = nullptr;

  const std::string& name() const override { return name_; }
  std::size_t eager_limit() const override { return 1 << 20; }
  double bandwidth_weight() const override { return weight_; }
  std::vector<std::uint8_t> contact() const override { return {}; }
  Status add_peer(int gid, const ContactInfo&) override {
    peers_.insert(gid);
    return Status::kOk;
  }
  void remove_peer(int gid) override { peers_.erase(gid); }
  bool reaches(int gid) const override { return peers_.count(gid) > 0; }

  void send_first(SendRequest& req, std::size_t inline_len) override {
    ++sends;
    auto frag = std::make_unique<FirstFrag>();
    frag->hdr = req.hdr;
    frag->hdr.kind = FragKind::kEager;
    frag->inline_data.resize(inline_len);
    req.convertor.pack(frag->inline_data.data(), inline_len);
    pending.push_back(std::move(frag));
    // Buffered completion.
    req.add_progress(req.total_bytes());
  }

  void matched(RecvRequest&, std::unique_ptr<FirstFrag>) override {
    FAIL() << "mock is eager-only";
  }
  int progress() override { return 0; }
  void finalize() override {}

  // Deliver the i-th pending frame into the receiving PML.
  void pump(std::size_t index = 0) {
    ASSERT_LT(index, pending.size());
    auto it = pending.begin() + static_cast<std::ptrdiff_t>(index);
    std::unique_ptr<FirstFrag> f = std::move(*it);
    pending.erase(it);
    f->ptl = this;
    peer_pml->incoming_first(std::move(f));
  }
  void pump_all() {
    while (!pending.empty()) pump(0);
  }

  std::deque<std::unique_ptr<FirstFrag>> pending;
  int sends = 0;

 private:
  std::string name_;
  double weight_;
  std::set<int> peers_;
};

struct PmlFixture : ::testing::Test {
  sim::Engine engine;
  ModelParams params;
  sim::Cpu cpu{engine, 2, 0};
  std::unique_ptr<Pml> sender;
  std::unique_ptr<Pml> receiver;
  MockPtl* tx = nullptr;  // sender-side module

  void SetUp() override {
    ProcessCtx cs{&engine, &cpu, &params, /*gid=*/0};
    ProcessCtx cr{&engine, &cpu, &params, /*gid=*/1};
    sender = std::make_unique<Pml>(cs);
    receiver = std::make_unique<Pml>(cr);
    auto ptl = std::make_unique<MockPtl>("mock", 100.0);
    tx = ptl.get();
    tx->peer_pml = receiver.get();
    tx->add_peer(1, {});
    sender->add_ptl(std::move(ptl));
    // Receiver side needs its own (unused-for-send) module for symmetry.
    auto rptl = std::make_unique<MockPtl>("mock", 100.0);
    rptl->peer_pml = sender.get();
    rptl->add_peer(0, {});
    receiver->add_ptl(std::move(rptl));
  }

  // All PML entry points charge CPU, so calls run inside a fiber.
  void in_fiber(std::function<void()> fn) {
    engine.spawn("test", std::move(fn));
    engine.run();
  }

  void send_bytes(const void* buf, std::size_t n, int tag,
                  std::unique_ptr<SendRequest>* out) {
    *out = std::make_unique<SendRequest>(engine, dtype::byte_type(), buf, n);
    sender->start_send(**out, /*ctx=*/0, /*src_rank=*/0, /*dst_rank=*/1, tag,
                       /*dst_gid=*/1);
  }
};

TEST_F(PmlFixture, PostedReceiveMatchesArrival) {
  in_fiber([&] {
    std::uint32_t v = 0xABCD;
    std::uint32_t got = 0;
    RecvRequest rr(engine, dtype::byte_type(), &got, 4);
    rr.ctx = 0;
    rr.src_rank = 0;
    rr.tag = 5;
    receiver->post_recv(rr);
    std::unique_ptr<SendRequest> sr;
    send_bytes(&v, 4, 5, &sr);
    tx->pump_all();
    EXPECT_TRUE(rr.complete());
    EXPECT_EQ(got, 0xABCDu);
    EXPECT_EQ(receiver->unexpected_count(), 0u);
  });
}

TEST_F(PmlFixture, UnexpectedArrivalMatchesLaterPost) {
  in_fiber([&] {
    std::uint32_t v = 7;
    std::unique_ptr<SendRequest> sr;
    send_bytes(&v, 4, 9, &sr);
    tx->pump_all();
    EXPECT_EQ(receiver->unexpected_count(), 1u);
    std::uint32_t got = 0;
    RecvRequest rr(engine, dtype::byte_type(), &got, 4);
    rr.ctx = 0;
    rr.src_rank = kAnySource;
    rr.tag = 9;
    receiver->post_recv(rr);
    EXPECT_TRUE(rr.complete());
    EXPECT_EQ(got, 7u);
  });
}

TEST_F(PmlFixture, WildcardTakesEarliestUnexpected) {
  in_fiber([&] {
    std::uint32_t a = 1;
    std::uint32_t b = 2;
    std::unique_ptr<SendRequest> s1;
    std::unique_ptr<SendRequest> s2;
    send_bytes(&a, 4, 10, &s1);
    send_bytes(&b, 4, 20, &s2);
    tx->pump_all();
    std::uint32_t got = 0;
    RecvRequest rr(engine, dtype::byte_type(), &got, 4);
    rr.ctx = 0;
    rr.src_rank = kAnySource;
    rr.tag = kAnyTag;
    receiver->post_recv(rr);
    EXPECT_EQ(got, 1u);  // arrival order, not tag order
  });
}

TEST_F(PmlFixture, TagSelectivityAcrossUnexpected) {
  in_fiber([&] {
    std::uint32_t a = 1;
    std::uint32_t b = 2;
    std::unique_ptr<SendRequest> s1;
    std::unique_ptr<SendRequest> s2;
    send_bytes(&a, 4, 10, &s1);
    send_bytes(&b, 4, 20, &s2);
    tx->pump_all();
    std::uint32_t got = 0;
    RecvRequest rr(engine, dtype::byte_type(), &got, 4);
    rr.ctx = 0;
    rr.src_rank = 0;
    rr.tag = 20;
    receiver->post_recv(rr);
    EXPECT_EQ(got, 2u);
    EXPECT_EQ(receiver->unexpected_count(), 1u);  // tag 10 still queued
  });
}

TEST_F(PmlFixture, ContextSeparatesTraffic) {
  in_fiber([&] {
    std::uint32_t v = 3;
    std::unique_ptr<SendRequest> sr =
        std::make_unique<SendRequest>(engine, dtype::byte_type(), &v, 4);
    sender->start_send(*sr, /*ctx=*/7, 0, 1, /*tag=*/0, 1);
    tx->pump_all();
    std::uint32_t got = 0;
    RecvRequest rr(engine, dtype::byte_type(), &got, 4);
    rr.ctx = 8;  // different communicator
    rr.src_rank = kAnySource;
    rr.tag = kAnyTag;
    receiver->post_recv(rr);
    EXPECT_FALSE(rr.complete());
    EXPECT_EQ(receiver->unexpected_count(), 1u);
    EXPECT_EQ(receiver->posted_count(), 1u);
    // The receive never matches: cancel before it goes out of scope.
    receiver->cancel(rr);
    EXPECT_TRUE(rr.complete());
    EXPECT_EQ(rr.status(), Status::kShutdown);
    EXPECT_EQ(receiver->posted_count(), 0u);
  });
}

TEST_F(PmlFixture, OutOfOrderArrivalsAreHeldForSequence) {
  in_fiber([&] {
    std::uint32_t vals[3] = {10, 20, 30};
    std::unique_ptr<SendRequest> s[3];
    for (int i = 0; i < 3; ++i) send_bytes(&vals[i], 4, 1, &s[i]);
    ASSERT_EQ(tx->pending.size(), 3u);
    // Deliver in reverse: seq 3, then 2, then 1.
    tx->pump(2);
    EXPECT_EQ(receiver->unexpected_count(), 0u);  // held, not admitted
    tx->pump(1);
    EXPECT_EQ(receiver->unexpected_count(), 0u);
    tx->pump(0);
    EXPECT_EQ(receiver->unexpected_count(), 3u);  // admitted 1,2,3 in order

    // Receives now match in send order.
    for (int i = 0; i < 3; ++i) {
      std::uint32_t got = 0;
      RecvRequest rr(engine, dtype::byte_type(), &got, 4);
      rr.ctx = 0;
      rr.src_rank = 0;
      rr.tag = 1;
      receiver->post_recv(rr);
      EXPECT_EQ(got, vals[i]);
    }
  });
}

TEST_F(PmlFixture, SendToUnknownPeerFails) {
  in_fiber([&] {
    std::uint32_t v = 1;
    auto sr = std::make_unique<SendRequest>(engine, dtype::byte_type(), &v, 4);
    sender->start_send(*sr, 0, 0, 1, 0, /*dst_gid=*/42);
    EXPECT_TRUE(sr->complete());
    EXPECT_EQ(sr->status(), Status::kUnreachable);
  });
}

TEST_F(PmlFixture, ProbesObserveTraffic) {
  in_fiber([&] {
    int sends_probed = 0;
    int delivers_probed = 0;
    sender->probe_send_to_ptl = [&] { ++sends_probed; };
    receiver->probe_deliver_to_pml = [&] { ++delivers_probed; };
    std::uint32_t v = 1;
    std::unique_ptr<SendRequest> sr;
    send_bytes(&v, 4, 0, &sr);
    tx->pump_all();
    EXPECT_EQ(sends_probed, 1);
    EXPECT_EQ(delivers_probed, 1);
  });
}

TEST_F(PmlFixture, RoundRobinAlternatesPtls) {
  in_fiber([&] {
    // Give the sender a second module with lower weight.
    auto extra = std::make_unique<MockPtl>("mock2", 1.0);
    MockPtl* tx2 = extra.get();
    tx2->peer_pml = receiver.get();
    tx2->add_peer(1, {});
    sender->add_ptl(std::move(extra));

    std::uint32_t v = 0;
    std::unique_ptr<SendRequest> s[4];
    // Best-weight policy: everything on the heavy module.
    for (int i = 0; i < 2; ++i) send_bytes(&v, 4, 0, &s[i]);
    EXPECT_EQ(tx->sends, 2);
    EXPECT_EQ(tx2->sends, 0);

    sender->set_sched_policy(Pml::SchedPolicy::kRoundRobin);
    for (int i = 2; i < 4; ++i) send_bytes(&v, 4, 0, &s[i]);
    EXPECT_EQ(tx->sends, 3);
    EXPECT_EQ(tx2->sends, 1);
    tx->pump_all();
    tx2->pump_all();
  });
}

// A blocking-capable rail whose completions only ever surface from
// progress_blocking() — polling it yields nothing.
class BlockingMockPtl final : public Ptl {
 public:
  explicit BlockingMockPtl(std::string name) : name_(std::move(name)) {}

  Request* target = nullptr;  // completed on the first blocking wait
  bool wired_v = true;
  int progress_calls = 0;
  int blocking_calls = 0;

  const std::string& name() const override { return name_; }
  std::size_t eager_limit() const override { return 1 << 20; }
  double bandwidth_weight() const override { return 1.0; }
  std::vector<std::uint8_t> contact() const override { return {}; }
  Status add_peer(int, const ContactInfo&) override { return Status::kOk; }
  void remove_peer(int) override {}
  bool reaches(int) const override { return true; }
  bool wired() const override { return wired_v; }
  bool blocking_capable() const override { return true; }
  void send_first(SendRequest&, std::size_t) override {}
  void matched(RecvRequest&, std::unique_ptr<FirstFrag>) override {}
  int progress() override {
    ++progress_calls;
    return 0;
  }
  int progress_blocking() override {
    ++blocking_calls;
    if (target != nullptr && !target->complete()) target->finish(Status::kOk);
    return 1;
  }
  void finalize() override {}

 private:
  std::string name_;
};

TEST_F(PmlFixture, WaitBlocksOnSoleWiredBlockingRail) {
  // Two PTL modules are constructed, but only one has live endpoints: the
  // blocking gate counts *wired* rails, so the dormant module must not
  // force the wait into its polling loop. (The old single-PTL gate would
  // spin on progress() forever here.)
  in_fiber([&] {
    ProcessCtx c{&engine, &cpu, &params, /*gid=*/0};
    Pml p(c);
    auto irq = std::make_unique<BlockingMockPtl>("irq");
    auto dormant = std::make_unique<BlockingMockPtl>("dormant");
    dormant->wired_v = false;
    BlockingMockPtl* b = irq.get();
    p.add_ptl(std::move(irq));
    p.add_ptl(std::move(dormant));

    std::uint32_t sink = 0;
    RecvRequest rr(engine, dtype::byte_type(), &sink, 4);
    b->target = &rr;
    p.wait(rr);
    EXPECT_TRUE(rr.complete());
    EXPECT_EQ(b->blocking_calls, 1);
    EXPECT_LE(b->progress_calls, 2);
  });
}

}  // namespace
}  // namespace oqs::pml
