// Trace format tests: generate -> serialize -> load round trips, clear
// rejection of malformed and truncated inputs, and forward-compat skipping
// of "x-" extension ops.
#include "workload/trace.h"

#include <gtest/gtest.h>

#include <sstream>

#include "workload/skeleton.h"

namespace oqs::workload {
namespace {

TEST(TraceRoundTrip, SkeletonsSurviveSerializeLoadIdentically) {
  StencilConfig st2;
  st2.px = 4;
  st2.py = 2;
  st2.iters = 3;
  StencilConfig st3 = st2;
  st3.pz = 2;
  const Trace traces[] = {
      make_stencil(st2),
      make_stencil(st3),
      make_training({.ranks = 6, .steps = 4, .grad_bytes = 4096}),
      make_shuffle({.ranks = 5, .rounds = 2, .bytes_per_pair = 512}),
  };
  for (const Trace& t : traces) {
    const LoadResult r = load_string(serialize(t));
    ASSERT_TRUE(r.ok) << t.name << ": " << r.error;
    EXPECT_EQ(r.trace.name, t.name);
    ASSERT_EQ(r.trace.nranks(), t.nranks());
    EXPECT_EQ(r.skipped_ops, 0u);
    for (int rank = 0; rank < t.nranks(); ++rank)
      EXPECT_EQ(r.trace.ranks[rank], t.ranks[rank])
          << t.name << " rank " << rank << " op stream changed";
  }
}

TEST(TraceRoundTrip, CommentsAndBlankLinesIgnored) {
  const LoadResult r = load_string(
      "# a recorded trace\n"
      "oqs-trace v1 ranks 1 name tiny\n"
      "\n"
      "rank 0 ops 2\n"
      "  compute 500\n"
      "# mid-stream comment\n"
      "  barrier\n"
      "end\n"
      "end trace\n");
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.trace.ranks[0].size(), 2u);
  EXPECT_EQ(r.trace.ranks[0][0].kind, OpKind::kCompute);
  EXPECT_EQ(r.trace.ranks[0][0].cost_ns, 500u);
  EXPECT_EQ(r.trace.ranks[0][1].kind, OpKind::kBarrier);
}

TEST(TraceLoad, MalformedLinesRejectedWithLineNumbers) {
  struct Case {
    const char* body;
    const char* expect;  // substring of the error
  };
  const Case cases[] = {
      // Missing args on a known op.
      {"oqs-trace v1 ranks 2 name t\nrank 0 ops 1\nsend 1\nend\n",
       "malformed 'send'"},
      // Peer out of range.
      {"oqs-trace v1 ranks 2 name t\nrank 0 ops 1\nsend 7 64 0\nend\n",
       "malformed 'send'"},
      // Unknown op without the x- extension prefix.
      {"oqs-trace v1 ranks 1 name t\nrank 0 ops 1\nteleport 3\nend\n",
       "unknown op 'teleport'"},
      // Bad header.
      {"oqs-trace v2 ranks 1 name t\n", "bad header"},
      // Non-numeric field.
      {"oqs-trace v1 ranks 1 name t\nrank 0 ops 1\ncompute fast\nend\n",
       "malformed 'compute'"},
      // Rank sections out of order.
      {"oqs-trace v1 ranks 2 name t\nrank 1 ops 0\nend\n", "out of order"},
  };
  for (const Case& c : cases) {
    const LoadResult r = load_string(c.body);
    EXPECT_FALSE(r.ok) << c.body;
    EXPECT_NE(r.error.find(c.expect), std::string::npos)
        << "error '" << r.error << "' does not mention '" << c.expect << "'";
  }
  // Errors carry the offending line number.
  const LoadResult r = load_string(
      "oqs-trace v1 ranks 1 name t\nrank 0 ops 2\nbarrier\nsend 0\nend\n");
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.error.find("line 4"), std::string::npos) << r.error;
}

TEST(TraceLoad, TruncatedFilesRejected) {
  const std::string full = serialize(
      make_training({.ranks = 3, .steps = 2, .grad_bytes = 1024}));
  std::vector<std::string> lines;
  std::istringstream is(full);
  for (std::string l; std::getline(is, l);) lines.push_back(l);
  // Every proper line-prefix of a valid trace must be rejected as
  // truncated: mid-op-list, before a rank `end`, before `end trace`.
  for (std::size_t keep = 1; keep < lines.size(); ++keep) {
    std::string cut;
    for (std::size_t i = 0; i < keep; ++i) cut += lines[i] + "\n";
    const LoadResult r = load_string(cut);
    EXPECT_FALSE(r.ok) << "accepted " << keep << " of " << lines.size()
                       << " lines";
    EXPECT_NE(r.error.find("truncated"), std::string::npos)
        << "at " << keep << " lines: " << r.error;
  }
}

TEST(TraceLoad, UnknownExtensionOpsSkipForwardCompat) {
  // A newer recorder annotated the stream with x- ops; this loader must
  // drop them (they count toward the declared op total) and keep the rest.
  const LoadResult r = load_string(
      "oqs-trace v1 ranks 1 name future\n"
      "rank 0 ops 4\n"
      "compute 100\n"
      "x-gpu-kernel 42 1024\n"
      "x-phase-marker solve\n"
      "barrier\n"
      "end\n"
      "end trace\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.skipped_ops, 2u);
  ASSERT_EQ(r.trace.ranks[0].size(), 2u);
  EXPECT_EQ(r.trace.ranks[0][0].kind, OpKind::kCompute);
  EXPECT_EQ(r.trace.ranks[0][1].kind, OpKind::kBarrier);
}

TEST(TraceLoad, StreamOverloadMatchesStringOverload) {
  const std::string text =
      serialize(make_shuffle({.ranks = 2, .rounds = 1, .bytes_per_pair = 64}));
  std::istringstream is(text);
  const LoadResult a = load(is);
  const LoadResult b = load_string(text);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.trace.ranks, b.trace.ranks);
}

}  // namespace
}  // namespace oqs::workload
