// Skeleton conformance suite: every synthetic skeleton's data movement is
// checked against a per-rank oracle — the trace structure against
// independently recomputed neighbor/cadence math, and every landed byte
// against the replay engine's payload oracle (verify_failures == 0 means
// halo cells came from the prescribed neighbor, allreduce matched the
// serial reduction, the shuffle permutation completed). Swept over
// np {4, 8, 16} x rails {1, 2}, plus same-seed replay-digest determinism
// and a slow-labelled fault soak (WorkloadSoak.*, 10% loss).
#include "workload/workload.h"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;
using namespace workload;

struct Case {
  int np;
  int rails;
};

class Skeleton : public ::testing::TestWithParam<Case> {
 protected:
  // Run `trace` as the whole job on a fresh paper testbed (8 nodes; >8
  // ranks fold 2 per node, like the scale bench).
  Report run(const Trace& trace, int rails, std::uint64_t seed = 7) {
    TestBed bed(8, rails);
    Report rep;
    ReplayOptions opt;
    opt.seed = seed;
    bed.run_mpi(trace.nranks(), [&](mpi::World& w) {
      replay_rank(w, w.comm(), trace, opt, &rep);
    });
    return rep;
  }
};

TEST_P(Skeleton, Stencil2DHalosLandWhereTheStencilSays) {
  const auto [np, rails] = GetParam();
  const Grid2 g = factor2(np);
  StencilConfig cfg;
  cfg.px = g.px;
  cfg.py = g.py;
  cfg.iters = 3;
  cfg.halo_bytes = 4096;
  cfg.compute_ns = 10000;
  const Trace t = make_stencil(cfg);
  ASSERT_EQ(t.nranks(), np);

  // Per-rank oracle, recomputed independently: on a periodic px x py
  // torus, rank (x, y) must ship one halo per iteration toward each
  // neighbor along every axis of extent >= 2, and receive from the
  // opposite one.
  const int ndirs = (g.px > 1 ? 2 : 0) + (g.py > 1 ? 2 : 0);
  for (int r = 0; r < np; ++r) {
    const int x = r % g.px;
    const int y = r / g.px;
    std::vector<Op> comm_ops;
    for (const Op& op : t.ranks[static_cast<std::size_t>(r)])
      if (op.kind != OpKind::kCompute) comm_ops.push_back(op);
    ASSERT_EQ(comm_ops.size(), static_cast<std::size_t>(cfg.iters * ndirs));
    for (const Op& op : comm_ops) {
      ASSERT_EQ(op.kind, OpKind::kSendRecv);
      EXPECT_EQ(op.bytes, cfg.halo_bytes);
      EXPECT_EQ(op.bytes2, cfg.halo_bytes);
      const int dir = op.tag % 6;
      const int dx = dir == 0 ? 1 : dir == 1 ? -1 : 0;
      const int dy = dir == 2 ? 1 : dir == 3 ? -1 : 0;
      ASSERT_LT(dir, 4) << "2D stencil emitted a z-axis shift";
      auto wrap = [](int v, int m) { return (v % m + m) % m; };
      EXPECT_EQ(op.peer, wrap(y + dy, g.py) * g.px + wrap(x + dx, g.px));
      EXPECT_EQ(op.peer2, wrap(y - dy, g.py) * g.px + wrap(x - dx, g.px));
    }
  }

  const Report rep = run(t, rails);
  EXPECT_EQ(rep.verify_failures, 0u);
  EXPECT_EQ(rep.ops_replayed, t.total_ops());
  EXPECT_EQ(rep.bytes_moved,
            static_cast<std::uint64_t>(np) * cfg.iters * ndirs * cfg.halo_bytes);
  EXPECT_GT(rep.goodput_mbps(), 0.0);
}

TEST_P(Skeleton, Stencil3DSixNeighborExchangeConforms) {
  const auto [np, rails] = GetParam();
  const Grid3 g = factor3(np);
  StencilConfig cfg;
  cfg.px = g.px;
  cfg.py = g.py;
  cfg.pz = g.pz;
  cfg.iters = 2;
  cfg.halo_bytes = 2048;
  cfg.compute_ns = 5000;
  const Trace t = make_stencil(cfg);
  ASSERT_EQ(t.nranks(), np);

  const int ndirs =
      (g.px > 1 ? 2 : 0) + (g.py > 1 ? 2 : 0) + (g.pz > 1 ? 2 : 0);
  // Oracle: every rank's per-iteration receive sources, recomputed from
  // coordinates, must equal the trace's sendrecv sources exactly.
  for (int r = 0; r < np; ++r) {
    const int x = r % g.px;
    const int y = (r / g.px) % g.py;
    const int z = r / (g.px * g.py);
    std::vector<Op> comm_ops;
    for (const Op& op : t.ranks[static_cast<std::size_t>(r)])
      if (op.kind != OpKind::kCompute) comm_ops.push_back(op);
    ASSERT_EQ(comm_ops.size(), static_cast<std::size_t>(cfg.iters * ndirs));
    auto wrap = [](int v, int m) { return (v % m + m) % m; };
    for (const Op& op : comm_ops) {
      const int dir = op.tag % 6;
      const int d[3] = {dir == 0 ? 1 : dir == 1 ? -1 : 0,
                        dir == 2 ? 1 : dir == 3 ? -1 : 0,
                        dir == 4 ? 1 : dir == 5 ? -1 : 0};
      const int src = (wrap(z - d[2], g.pz) * g.py + wrap(y - d[1], g.py)) *
                          g.px + wrap(x - d[0], g.px);
      EXPECT_EQ(op.peer2, src);
    }
  }

  const Report rep = run(t, rails);
  EXPECT_EQ(rep.verify_failures, 0u);
  EXPECT_EQ(rep.bytes_moved,
            static_cast<std::uint64_t>(np) * cfg.iters * ndirs * cfg.halo_bytes);
}

TEST_P(Skeleton, TrainingAllreduceMatchesSerialReduction) {
  const auto [np, rails] = GetParam();
  TrainingConfig cfg;
  cfg.ranks = np;
  cfg.steps = 3;
  cfg.grad_bytes = 16384;
  cfg.compute_ns = 20000;
  const Trace t = make_training(cfg);

  // Cadence oracle: bcast, then steps x (compute, allreduce), per rank.
  for (int r = 0; r < np; ++r) {
    const auto& ops = t.ranks[static_cast<std::size_t>(r)];
    ASSERT_EQ(ops.size(), static_cast<std::size_t>(1 + 2 * cfg.steps));
    EXPECT_EQ(ops[0].kind, OpKind::kBcast);
    for (int s = 0; s < cfg.steps; ++s) {
      EXPECT_EQ(ops[1 + 2 * s].kind, OpKind::kCompute);
      EXPECT_EQ(ops[2 + 2 * s].kind, OpKind::kAllreduce);
      EXPECT_EQ(ops[2 + 2 * s].bytes, cfg.grad_bytes);
    }
  }

  // The replay oracle checks every allreduce element against the closed
  // form of the serial reduction; any algorithm drift shows up here.
  const Report rep = run(t, rails);
  EXPECT_EQ(rep.verify_failures, 0u);
  const std::uint64_t expect_bytes =
      static_cast<std::uint64_t>(np) * cfg.steps * cfg.grad_bytes +  // allreduce
      static_cast<std::uint64_t>(np - 1) * cfg.grad_bytes;           // bcast
  EXPECT_EQ(rep.bytes_moved, expect_bytes);
}

TEST_P(Skeleton, ShufflePermutationCompletes) {
  const auto [np, rails] = GetParam();
  ShuffleConfig cfg;
  cfg.ranks = np;
  cfg.rounds = 2;
  cfg.bytes_per_pair = 2048;
  const Trace t = make_shuffle(cfg);

  for (int r = 0; r < np; ++r) {
    int a2a = 0;
    for (const Op& op : t.ranks[static_cast<std::size_t>(r)])
      if (op.kind == OpKind::kAlltoall) ++a2a;
    ASSERT_EQ(a2a, cfg.rounds);
  }

  // Zero verify failures == every (src, dst, round) block landed in the
  // right slot of the right rank: the permutation is complete.
  const Report rep = run(t, rails);
  EXPECT_EQ(rep.verify_failures, 0u);
  EXPECT_EQ(rep.bytes_moved, static_cast<std::uint64_t>(np) * cfg.rounds *
                                 (np - 1) * cfg.bytes_per_pair);
}

TEST_P(Skeleton, SameSeedReplayDigestIsDeterministic) {
  const auto [np, rails] = GetParam();
  const Grid2 g = factor2(np);
  StencilConfig cfg;
  cfg.px = g.px;
  cfg.py = g.py;
  cfg.iters = 2;
  cfg.halo_bytes = 4096;
  const Trace t = make_stencil(cfg);

  const Report a = run(t, rails, /*seed=*/21);
  const Report b = run(t, rails, /*seed=*/21);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.bytes_moved, b.bytes_moved);
  EXPECT_EQ(a.makespan_ns(), b.makespan_ns());
  // Per-rank fingerprints match stream-for-stream, not just in aggregate.
  ASSERT_EQ(a.rank_digests.size(), b.rank_digests.size());
  for (std::size_t i = 0; i < a.rank_digests.size(); ++i)
    EXPECT_EQ(a.rank_digests[i], b.rank_digests[i]) << "rank " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Skeleton,
    ::testing::Values(Case{4, 1}, Case{4, 2}, Case{8, 1}, Case{8, 2},
                      Case{16, 1}, Case{16, 2}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return "np" + std::to_string(info.param.np) + "rails" +
             std::to_string(info.param.rails);
    });

TEST(Interference, TwoJobsShareTheFabricAndBothConform) {
  // Job A (2x2 stencil) and job B (4-rank shuffle) on one testbed: the
  // mixed scenario must leave both jobs' oracles intact and actually
  // overlap in simulated time.
  TestBed bed;
  StencilConfig scfg;
  scfg.px = 2;
  scfg.py = 2;
  scfg.iters = 4;
  scfg.halo_bytes = 8192;
  const Trace a = make_stencil(scfg);
  const Trace b = make_shuffle({.ranks = 4, .rounds = 3, .bytes_per_pair = 4096});
  std::vector<Report> reports;
  std::vector<int> job_of(8, -1);
  bed.run_mpi(8, [&](mpi::World& w) {
    ReplayOptions opt;
    opt.seed = 11;
    const int job = replay_jobs(w, {&a, &b}, opt, &reports);
    job_of[static_cast<std::size_t>(w.rank())] = job;
  });

  ASSERT_EQ(reports.size(), 2u);
  for (const Report& rep : reports) {
    EXPECT_EQ(rep.verify_failures, 0u);
    EXPECT_GT(rep.bytes_moved, 0u);
    EXPECT_GT(rep.goodput_mbps(), 0.0);
  }
  // Ranks 0..3 ran the stencil, 4..7 the shuffle.
  for (int r = 0; r < 8; ++r) EXPECT_EQ(job_of[static_cast<std::size_t>(r)], r / 4);
  // Interference means concurrency: the two jobs' spans overlap.
  EXPECT_LT(reports[0].t_begin, reports[1].t_end);
  EXPECT_LT(reports[1].t_begin, reports[0].t_end);
}

// Fault soak, slow-labelled (its own ctest entry runs WorkloadSoak.*):
// 10% wire loss plus duplication/delay/corruption, and every skeleton must
// still complete with its oracle intact — the go-back-N and CRC re-read
// machinery, not the workload, absorbs the faults.
TEST(WorkloadSoak, SkeletonsSurviveTenPercentLossIntact) {
  struct JobCase {
    const char* label;
    Trace trace;
  };
  StencilConfig s2;
  s2.px = 4;
  s2.py = 2;
  s2.iters = 3;
  s2.halo_bytes = 4096;
  StencilConfig s3 = s2;
  s3.px = s3.py = s3.pz = 2;
  const JobCase jobs[] = {
      {"stencil2d", make_stencil(s2)},
      {"stencil3d", make_stencil(s3)},
      {"train", make_training({.ranks = 8, .steps = 3, .grad_bytes = 8192})},
      {"shuffle", make_shuffle({.ranks = 8, .rounds = 2, .bytes_per_pair = 2048})},
  };
  for (const auto& [label, trace] : jobs) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      TestBed bed;
      net::FaultProfile profile;
      profile.drop = 0.10;
      profile.duplicate = 0.02;
      profile.delay = 0.02;
      profile.corrupt = 0.01;
      bed.net->set_faults(profile, seed);
      Report rep;
      ReplayOptions opt;
      opt.seed = seed;
      // Wire loss is only recoverable with the go-back-N stream armed;
      // without it a dropped frame is gone forever and the replay wedges.
      mpi::Options mpi_opt;
      mpi_opt.elan4.reliability = true;
      mpi_opt.elan4.max_data_retries = 50;
      bed.run_mpi(trace.nranks(), [&](mpi::World& w) {
        replay_rank(w, w.comm(), trace, opt, &rep);
      }, mpi_opt);
      EXPECT_EQ(rep.verify_failures, 0u) << label << " seed " << seed;
      EXPECT_EQ(rep.ops_replayed, trace.total_ops()) << label << " seed " << seed;
      EXPECT_GT(bed.net->faults()->drops(), 0u) << label << " seed " << seed;
    }
  }
}

}  // namespace
}  // namespace oqs
