// E4_Addr translation: mapping, offsets, faults.
#include "elan4/mmu.h"

#include <gtest/gtest.h>

#include <vector>

namespace oqs::elan4 {
namespace {

TEST(Mmu, MapAndTranslateBase) {
  Mmu mmu;
  std::vector<char> buf(4096);
  E4Addr a = mmu.map(buf.data(), buf.size());
  Status st = Status::kError;
  void* p = mmu.translate(a, 4096, &st);
  EXPECT_EQ(st, Status::kOk);
  EXPECT_EQ(p, buf.data());
}

TEST(Mmu, TranslateInteriorOffset) {
  Mmu mmu;
  std::vector<char> buf(4096);
  E4Addr a = mmu.map(buf.data(), buf.size());
  Status st = Status::kError;
  void* p = mmu.translate(a + 100, 96, &st);
  EXPECT_EQ(st, Status::kOk);
  EXPECT_EQ(p, buf.data() + 100);
}

TEST(Mmu, OverrunFaults) {
  Mmu mmu;
  std::vector<char> buf(1024);
  E4Addr a = mmu.map(buf.data(), buf.size());
  Status st = Status::kOk;
  EXPECT_EQ(mmu.translate(a + 1000, 100, &st), nullptr);
  EXPECT_EQ(st, Status::kFault);
  EXPECT_EQ(mmu.faults(), 1u);
}

TEST(Mmu, NullAndUnmappedFault) {
  Mmu mmu;
  Status st = Status::kOk;
  EXPECT_EQ(mmu.translate(kNullE4Addr, 1, &st), nullptr);
  EXPECT_EQ(st, Status::kFault);
  std::vector<char> buf(64);
  mmu.map(buf.data(), buf.size());
  EXPECT_EQ(mmu.translate(0x1, 1, &st), nullptr);
  EXPECT_EQ(st, Status::kFault);
}

TEST(Mmu, DistinctMappingsDoNotAlias) {
  Mmu mmu;
  std::vector<char> b1(8192);
  std::vector<char> b2(8192);
  E4Addr a1 = mmu.map(b1.data(), b1.size());
  E4Addr a2 = mmu.map(b2.data(), b2.size());
  EXPECT_NE(a1, a2);
  Status st;
  EXPECT_EQ(mmu.translate(a1, 8192, &st), b1.data());
  EXPECT_EQ(mmu.translate(a2, 8192, &st), b2.data());
  // The gap between regions faults.
  EXPECT_EQ(mmu.translate(a1 + 8192, 1, &st), nullptr);
}

TEST(Mmu, UnmapInvalidatesTranslation) {
  Mmu mmu;
  std::vector<char> buf(256);
  E4Addr a = mmu.map(buf.data(), buf.size());
  EXPECT_EQ(mmu.unmap(a), Status::kOk);
  Status st;
  EXPECT_EQ(mmu.translate(a, 1, &st), nullptr);
  EXPECT_EQ(mmu.unmap(a), Status::kNotFound);
}

TEST(Mmu, ManyMappingsResolveCorrectly) {
  Mmu mmu;
  std::vector<std::vector<char>> bufs;
  std::vector<E4Addr> addrs;
  for (int i = 0; i < 100; ++i) {
    bufs.emplace_back(static_cast<std::size_t>(64 + i * 33));
    addrs.push_back(mmu.map(bufs.back().data(), bufs.back().size()));
  }
  Status st;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mmu.translate(addrs[static_cast<std::size_t>(i)], 64, &st),
              bufs[static_cast<std::size_t>(i)].data());
  }
}

}  // namespace
}  // namespace oqs::elan4
