// QDMA end-to-end: delivery, integrity, ordering, limits, failure modes.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "elan4/device.h"
#include "elan4/qsnet.h"
#include "sim/rng.h"

namespace oqs::elan4 {
namespace {

struct QdmaFixture : ::testing::Test {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<QsNet> net;

  void SetUp() override { net = std::make_unique<QsNet>(engine, params, 4); }
};

TEST_F(QdmaFixture, DeliversPayloadIntact) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  std::vector<std::uint8_t> msg(777);
  std::iota(msg.begin(), msg.end(), 0);
  bool verified = false;

  engine.spawn("recv", [&] {
    QdmaQueue* q = d1->create_queue(16);
    engine.sleep(1);  // let the sender learn the queue id out of band
    d1->queue_wait(q);
    QdmaQueue::Slot s;
    ASSERT_TRUE(q->consume(&s));
    EXPECT_EQ(s.data, msg);
    EXPECT_EQ(s.src, d0->vpid());
    verified = true;
  });
  engine.spawn("send", [&] {
    engine.sleep(10);
    EXPECT_EQ(d0->post_qdma(d1->vpid(), 1, msg), Status::kOk);
  });
  engine.run();
  EXPECT_TRUE(verified);
}

TEST_F(QdmaFixture, PreservesOrderFromOneSender) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  QdmaQueue* q = nullptr;
  std::vector<int> got;

  engine.spawn("recv", [&] {
    q = d1->create_queue(64);
    for (int i = 0; i < 20; ++i) {
      d1->queue_wait(q);
      QdmaQueue::Slot s;
      ASSERT_TRUE(q->consume(&s));
      got.push_back(s.data[0]);
    }
  });
  engine.spawn("send", [&] {
    engine.sleep(100);
    for (int i = 0; i < 20; ++i) {
      std::vector<std::uint8_t> m{static_cast<std::uint8_t>(i)};
      d0->post_qdma(d1->vpid(), 1, m);
    }
  });
  engine.run();
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], i);
}

TEST_F(QdmaFixture, RejectsOversizedMessage) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  engine.spawn("send", [&] {
    std::vector<std::uint8_t> big(2049);
    EXPECT_EQ(d0->post_qdma(d1->vpid(), 1, big), Status::kBadParam);
    std::vector<std::uint8_t> max(2048);
    EXPECT_EQ(d0->post_qdma(d1->vpid(), 1, max), Status::kOk);
  });
  engine.run();
}

TEST_F(QdmaFixture, LocalEventFiresOnInjection) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  engine.spawn("t", [&] {
    d1->create_queue(8);
    E4Event* done = d0->alloc_event("send-done");
    done->init(1);
    std::vector<std::uint8_t> m(128, 0xAB);
    d0->post_qdma(d1->vpid(), 1, m, done);
    done->wait_block();
    EXPECT_TRUE(done->done());
  });
  engine.run();
}

TEST_F(QdmaFixture, QueueOverflowCountsDrops) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  QdmaQueue* q = nullptr;
  engine.spawn("t", [&] {
    q = d1->create_queue(/*num_slots=*/4);
    std::vector<std::uint8_t> m(8, 1);
    for (int i = 0; i < 10; ++i) d0->post_qdma(d1->vpid(), q->id(), m);
    engine.sleep(1'000'000);
    EXPECT_EQ(q->pending(), 4u);
    EXPECT_EQ(q->overflows(), 6u);
  });
  engine.run();
}

TEST_F(QdmaFixture, PostToReleasedVpidIsDropped) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  const Vpid dead = d1->vpid();
  engine.spawn("t", [&] {
    d1->close();
    std::vector<std::uint8_t> m(8, 1);
    EXPECT_EQ(d0->post_qdma(dead, 1, m), Status::kOk);  // accepted locally
    engine.sleep(1'000'000);
    EXPECT_GE(net->nic(0).rx_drops(), 1u);  // dropped at resolution time
  });
  engine.run();
}

TEST_F(QdmaFixture, LoopbackSameNodeBetweenContexts) {
  auto a = net->open(2);
  auto b = net->open(2);  // second process on the same node
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->vpid(), b->vpid());
  bool got = false;
  engine.spawn("t", [&] {
    QdmaQueue* q = b->create_queue(8);
    std::vector<std::uint8_t> m{42};
    a->post_qdma(b->vpid(), q->id(), m);
    b->queue_wait(q);
    QdmaQueue::Slot s;
    ASSERT_TRUE(q->consume(&s));
    EXPECT_EQ(s.data[0], 42);
    got = true;
  });
  engine.run();
  EXPECT_TRUE(got);
}

TEST_F(QdmaFixture, ManyToOneAllArrive) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  auto d2 = net->open(2);
  auto d3 = net->open(3);
  QdmaQueue* q = nullptr;
  engine.spawn("setup", [&] { q = d0->create_queue(256); });
  for (auto* d : {d1.get(), d2.get(), d3.get()}) {
    engine.spawn("send", [&, d] {
      engine.sleep(50);
      for (int i = 0; i < 30; ++i) {
        std::vector<std::uint8_t> m{static_cast<std::uint8_t>(d->vpid())};
        d->post_qdma(d0->vpid(), 1, m);
      }
    });
  }
  engine.run();
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->total_posted(), 90u);
  EXPECT_EQ(q->overflows(), 0u);
}

}  // namespace
}  // namespace oqs::elan4
