// Elan4Device host-API semantics: lifecycle, shutdown behaviour, queue and
// mapping bookkeeping.
#include <gtest/gtest.h>

#include "elan4/device.h"
#include "elan4/qsnet.h"

namespace oqs::elan4 {
namespace {

struct DeviceFixture : ::testing::Test {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<QsNet> net;

  void SetUp() override { net = std::make_unique<QsNet>(engine, params, 2, 4); }
};

TEST_F(DeviceFixture, OpenClaimsAndCloseReleases) {
  auto d = net->open(0);
  ASSERT_TRUE(d);
  EXPECT_TRUE(net->capability().is_live(d->vpid()));
  EXPECT_EQ(net->node_of(d->vpid()), 0);
  d->close();
  EXPECT_TRUE(d->closed());
  EXPECT_EQ(net->capability().live_count(), 0);
}

TEST_F(DeviceFixture, DestructorClosesImplicitly) {
  {
    auto d = net->open(1);
    ASSERT_TRUE(d);
  }
  EXPECT_EQ(net->capability().live_count(), 0);
}

TEST_F(DeviceFixture, ExhaustionAndReuse) {
  std::vector<std::unique_ptr<Elan4Device>> devs;
  for (int i = 0; i < 4; ++i) {
    devs.push_back(net->open(0));
    ASSERT_TRUE(devs.back());
  }
  EXPECT_EQ(net->open(0), nullptr);  // node 0 exhausted
  EXPECT_NE(net->open(1), nullptr);  // node 1 unaffected
  devs[2]->close();
  auto fresh = net->open(0);
  EXPECT_NE(fresh, nullptr);  // released context reclaimed
}

TEST_F(DeviceFixture, PostAfterCloseIsRejected) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  engine.spawn("t", [&] {
    QdmaQueue* q = d1->create_queue(4);
    d0->close();
    std::vector<std::uint8_t> m{1};
    EXPECT_EQ(d0->post_qdma(d1->vpid(), q->id(), m), Status::kShutdown);
    EXPECT_EQ(d0->rdma_write(d1->vpid(), 0x10000, 0x10000, 8, nullptr),
              Status::kShutdown);
    EXPECT_EQ(d0->rdma_read(d1->vpid(), 0x10000, 0x10000, 8, nullptr),
              Status::kShutdown);
  });
  engine.run();
}

TEST_F(DeviceFixture, CloseDestroysOwnQueues) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  int qid = -1;
  engine.spawn("t", [&] {
    QdmaQueue* q = d1->create_queue(4);
    qid = q->id();
    d1->close();
    // The queue is gone from the NIC: traffic for it is dropped.
    std::vector<std::uint8_t> m{1};
    d0->post_qdma(static_cast<Vpid>(64), qid, m);  // old vpid is dead anyway
  });
  engine.run();
  EXPECT_EQ(net->nic(1).find_queue(qid), nullptr);
}

TEST_F(DeviceFixture, QueueDestroyStopsDelivery) {
  auto d0 = net->open(0);
  auto d1 = net->open(1);
  engine.spawn("t", [&] {
    QdmaQueue* q = d1->create_queue(4);
    const int id = q->id();
    EXPECT_EQ(d1->destroy_queue(q), Status::kOk);
    std::vector<std::uint8_t> m{1};
    d0->post_qdma(d1->vpid(), id, m);
    engine.sleep(sim::kMs);
    EXPECT_GE(net->nic(1).rx_drops(), 1u);
  });
  engine.run();
}

TEST_F(DeviceFixture, MapUnmapBookkeeping) {
  auto d = net->open(0);
  std::vector<char> buf(1024);
  engine.spawn("t", [&] {
    const E4Addr a = d->map(buf.data(), buf.size());
    EXPECT_EQ(d->nic().mmu(d->context()).num_mappings(), 1u);
    EXPECT_EQ(d->unmap(a), Status::kOk);
    EXPECT_EQ(d->nic().mmu(d->context()).num_mappings(), 0u);
    EXPECT_EQ(d->unmap(a), Status::kNotFound);
  });
  engine.run();
}

TEST_F(DeviceFixture, ComputeChargesSimulatedTime) {
  auto d = net->open(0);
  sim::Time took = 0;
  engine.spawn("t", [&] {
    const sim::Time t0 = engine.now();
    d->compute(12345);
    took = engine.now() - t0;
  });
  engine.run();
  EXPECT_EQ(took, 12345u);
}

TEST_F(DeviceFixture, TwoContextsSameNodeHaveIsolatedMmus) {
  auto a = net->open(0);
  auto b = net->open(0);
  std::vector<char> buf_a(64);
  std::vector<char> buf_b(64);
  engine.spawn("t", [&] {
    const E4Addr addr_a = a->map(buf_a.data(), 64);
    const E4Addr addr_b = b->map(buf_b.data(), 64);
    // Same NIC, same bump-allocator start: equal values, different tables.
    EXPECT_EQ(addr_a, addr_b);
    Status st;
    EXPECT_EQ(a->nic().mmu(a->context()).translate(addr_a, 64, &st), buf_a.data());
    EXPECT_EQ(b->nic().mmu(b->context()).translate(addr_b, 64, &st), buf_b.data());
  });
  engine.run();
}

}  // namespace
}  // namespace oqs::elan4
