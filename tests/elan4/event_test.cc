// E4 event semantics: countdown, blocking waits, chaining, and the Fig. 5
// count-reset race that motivates the shared completion queue.
#include "elan4/event.h"

#include <gtest/gtest.h>

#include "elan4/device.h"
#include "elan4/qsnet.h"

namespace oqs::elan4 {
namespace {

TEST(E4Event, CountOneTriggersOnSingleFire) {
  sim::Engine e;
  ModelParams p;
  E4Event ev(e, p, nullptr, "t");
  ev.init(1);
  EXPECT_FALSE(ev.done());
  ev.fire();
  EXPECT_TRUE(ev.done());
  EXPECT_EQ(ev.triggers(), 1u);
}

TEST(E4Event, CountNWaitsForAllCompletions) {
  sim::Engine e;
  ModelParams p;
  E4Event ev(e, p, nullptr, "t");
  ev.init(3);
  ev.fire();
  ev.fire();
  EXPECT_FALSE(ev.done());
  ev.fire();
  EXPECT_TRUE(ev.done());
}

TEST(E4Event, FireOnSpentEventIsLost) {
  // Fig. 5d: once the count is <= 0, further completions vanish.
  sim::Engine e;
  ModelParams p;
  E4Event ev(e, p, nullptr, "t");
  ev.init(1);
  ev.fire();
  ev.fire();  // lost
  EXPECT_EQ(ev.lost_fires(), 1u);
  EXPECT_EQ(ev.triggers(), 1u);
  // Re-arming now cannot recover the lost completion.
  ev.reset_count(1);
  EXPECT_FALSE(ev.done());
}

TEST(E4Event, ResetRaceLosesWakeups) {
  // The paper's scenario: host blocks on a count-1 event while two RDMAs are
  // outstanding. The first completion wakes it; it re-arms with
  // reset_count(1), but the second completion fired in between — lost.
  // The host then blocks forever (here: the waiter never resumes).
  sim::Engine e;
  ModelParams p;
  p.interrupt_ns = 100;
  E4Event ev(e, p, nullptr, "race");
  ev.init(1);

  int wakeups = 0;
  bool gave_up = false;
  e.spawn("host", [&] {
    ev.wait_block();
    ++wakeups;          // first RDMA observed
    e.sleep(500);       // host-side processing window...
    ev.reset_count(1);  // ...during which the second RDMA completed
    // The host would block forever; model a watchdog to end the test.
    sim::Time deadline = e.now() + 100000;
    while (!ev.done() && e.now() < deadline) e.sleep(1000);
    gave_up = !ev.done();
  });
  e.schedule(1000, [&] { ev.fire(); });  // RDMA #1
  e.schedule(1200, [&] { ev.fire(); });  // RDMA #2 — lands before the reset
  e.run();
  EXPECT_EQ(wakeups, 1);
  EXPECT_EQ(ev.lost_fires(), 1u);
  EXPECT_TRUE(gave_up) << "second completion should have been lost";
}

TEST(E4Event, BlockedWaiterPaysInterruptLatency) {
  sim::Engine e;
  ModelParams p;
  p.interrupt_ns = 10000;
  E4Event ev(e, p, nullptr, "irq");
  ev.init(1);
  sim::Time woke = 0;
  e.spawn("host", [&] {
    ev.wait_block();
    woke = e.now();
  });
  e.schedule(5000, [&] { ev.fire(); });
  e.run();
  EXPECT_EQ(woke, 5000u + 10000u);
}

TEST(E4Event, WaitAfterDoneReturnsWithoutBlocking) {
  sim::Engine e;
  ModelParams p;
  E4Event ev(e, p, nullptr, "t");
  ev.init(1);
  ev.fire();
  sim::Time woke = 1;
  e.spawn("host", [&] {
    ev.wait_block();
    woke = e.now();
  });
  e.run();
  EXPECT_EQ(woke, 0u);
}

TEST(E4Event, ChainedCommandRunsOnNic) {
  // Chain a QDMA to an event; firing the event must deliver the QDMA into a
  // queue on another node without any host involvement.
  sim::Engine e;
  ModelParams p;
  QsNet net(e, p, 2);
  auto d0 = net.open(0);
  auto d1 = net.open(1);
  ASSERT_TRUE(d0 && d1);
  bool checked = false;

  e.spawn("setup", [&] {
    QdmaQueue* q = d1->create_queue(8);
    E4Event* ev = d0->alloc_event("chain-src");
    ev->init(1);
    std::vector<std::uint8_t> fin{0xF1, 0xF2};
    QdmaCmd cmd;
    cmd.src_vpid = d0->vpid();
    cmd.dest_vpid = d1->vpid();
    cmd.dest_queue = q->id();
    cmd.data = fin;
    ev->chain(cmd);

    ev->fire();  // as if an RDMA completed
    // Wait for the chained QDMA to land remotely.
    d1->queue_wait(q);
    QdmaQueue::Slot slot;
    ASSERT_TRUE(q->consume(&slot));
    EXPECT_EQ(slot.data, fin);
    EXPECT_EQ(slot.src, d0->vpid());
    checked = true;
  });
  e.run();
  EXPECT_TRUE(checked);
}

TEST(E4Event, StatusPropagatesFromFire) {
  sim::Engine e;
  ModelParams p;
  E4Event ev(e, p, nullptr, "t");
  ev.init(1);
  ev.fire(Status::kFault);
  EXPECT_TRUE(ev.done());
  EXPECT_EQ(ev.status(), Status::kFault);
}

}  // namespace
}  // namespace oqs::elan4
