// Fluid bulk-transfer conformance (params.fluid_bulk): while the fault
// machinery is quiescent the NIC folds a multi-fragment RDMA train into one
// completion event. These tests prove the fast path is indistinguishable
// from the per-fragment path in everything observable — delivered bytes,
// initiator and target completion times, status — while executing fewer
// kernel events, and that any armed fault profile forces the per-fragment
// fallback, RNG schedule included.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "elan4/device.h"
#include "elan4/qsnet.h"
#include "sim/rng.h"
#include "testbed.h"

namespace oqs::elan4 {
namespace {

struct Outcome {
  sim::Time local_done = 0;   // initiator completion (write ack / read done)
  sim::Time remote_done = 0;  // remote-event fire at the data's destination
  Status status = Status::kOk;
  std::vector<std::uint8_t> dst;
  std::uint64_t events = 0;  // total kernel events for the whole run
  std::uint64_t corruptions = 0;
};

std::vector<std::uint8_t> payload(std::size_t n) {
  std::vector<std::uint8_t> v(n);
  sim::Rng rng(1234);
  rng.fill(v.data(), v.size());
  return v;
}

// One complete rdma_write run on a fresh simulation. src_n == dst_n
// exercises NIC loopback on a single device.
Outcome run_write(bool fluid, int nodes, int src_n, int dst_n,
                  std::uint32_t len, double corrupt_prob = 0.0) {
  sim::Engine engine;
  ModelParams params;
  params.fluid_bulk = fluid;
  QsNet net(engine, params, nodes);
  if (corrupt_prob > 0) {
    net::FaultProfile fp;
    fp.corrupt = corrupt_prob;
    net.set_faults(fp, /*seed=*/99);
  }
  std::unique_ptr<Elan4Device> sdev = net.open(src_n);
  std::unique_ptr<Elan4Device> ddev = src_n == dst_n ? nullptr : net.open(dst_n);
  Elan4Device* dd = ddev != nullptr ? ddev.get() : sdev.get();

  Outcome out;
  out.dst.assign(len, 0);
  std::vector<std::uint8_t> src = payload(len);
  // Allocated before the fibers start: alloc_event is pure host-side state
  // (no simulated time), and the watcher needs the pointer on first entry.
  E4Event* remote = dd->alloc_event("fl-remote");
  remote->init(1);

  engine.spawn("writer", [&] {
    E4Addr rsrc = sdev->map(src.data(), src.size());
    E4Addr rdst = dd->map(out.dst.data(), out.dst.size());
    E4Event* local = sdev->alloc_event("fl-local");
    local->init(1);
    sdev->rdma_write(dd->vpid(), rsrc, rdst, len, local, remote);
    local->wait_block();
    out.local_done = engine.now();
    out.status = local->status();
  });
  engine.spawn("watcher", [&] {
    remote->wait_block();
    out.remote_done = engine.now();
  });
  engine.run();
  out.events = engine.events_executed();
  out.corruptions = net.corruptions();
  return out;
}

// One complete rdma_read run: `reader` pulls len bytes out of `owner`.
Outcome run_read(bool fluid, int nodes, int owner_n, int reader_n,
                 std::uint32_t len) {
  sim::Engine engine;
  ModelParams params;
  params.fluid_bulk = fluid;
  QsNet net(engine, params, nodes);
  std::unique_ptr<Elan4Device> odev = net.open(owner_n);
  std::unique_ptr<Elan4Device> rdev = net.open(reader_n);

  Outcome out;
  out.dst.assign(len, 0);
  std::vector<std::uint8_t> src = payload(len);

  engine.spawn("reader", [&] {
    E4Addr raddr = odev->map(src.data(), src.size());
    E4Addr laddr = rdev->map(out.dst.data(), out.dst.size());
    E4Event* done = rdev->alloc_event("fl-read");
    done->init(1);
    rdev->rdma_read(odev->vpid(), raddr, laddr, len, done);
    done->wait_block();
    out.local_done = engine.now();
    out.status = done->status();
  });
  engine.run();
  out.events = engine.events_executed();
  return out;
}

void expect_write_conformant(int nodes, int src_n, int dst_n,
                             std::uint32_t len) {
  const Outcome off = run_write(false, nodes, src_n, dst_n, len);
  const Outcome on = run_write(true, nodes, src_n, dst_n, len);
  EXPECT_EQ(off.status, Status::kOk);
  EXPECT_EQ(on.status, Status::kOk);
  EXPECT_EQ(on.dst, off.dst);
  EXPECT_EQ(on.dst, payload(len));
  // The whole point: same simulated physics, not merely "close".
  EXPECT_EQ(on.local_done, off.local_done);
  EXPECT_EQ(on.remote_done, off.remote_done);
  // And the reason to have the path at all: fewer kernel events.
  EXPECT_LT(on.events, off.events);
}

TEST(FluidRdma, WriteConformsOnSingleSwitch) {
  ModelParams defaults;
  expect_write_conformant(2, 0, 1, 3 * defaults.mtu + 517);
}

TEST(FluidRdma, WriteConformsOnFatTree) {
  // > 8 nodes routes through the quaternary fat tree: multi-hop link
  // occupancy must fold into the train identically.
  expect_write_conformant(16, 0, 13, 64 * 1024 + 13);
}

TEST(FluidRdma, WriteConformsOnLoopback) {
  ModelParams defaults;
  expect_write_conformant(2, 0, 0, 2 * defaults.mtu + 77);
}

TEST(FluidRdma, ReadConformsOnSwitchAndFatTree) {
  for (const auto& [nodes, owner, reader] :
       {std::tuple{2, 1, 0}, std::tuple{16, 9, 2}}) {
    const std::uint32_t len = 5 * 2048 + 301;
    const Outcome off = run_read(false, nodes, owner, reader, len);
    const Outcome on = run_read(true, nodes, owner, reader, len);
    EXPECT_EQ(off.status, Status::kOk);
    EXPECT_EQ(on.status, Status::kOk);
    EXPECT_EQ(on.dst, off.dst);
    EXPECT_EQ(on.dst, payload(len));
    EXPECT_EQ(on.local_done, off.local_done);
    EXPECT_LT(on.events, off.events);
  }
}

TEST(FluidRdma, SingleFragmentTransfersAreLeftAlone) {
  // len <= mtu is not a train; the knob must not change anything at all.
  const Outcome off = run_write(false, 2, 0, 1, 1024);
  const Outcome on = run_write(true, 2, 0, 1, 1024);
  EXPECT_EQ(on.dst, off.dst);
  EXPECT_EQ(on.local_done, off.local_done);
  EXPECT_EQ(on.remote_done, off.remote_done);
  EXPECT_EQ(on.events, off.events);
}

TEST(FluidRdma, ArmedFaultProfileForcesFallback) {
  // With corruption armed the injector is not quiescent, so the fluid knob
  // must be inert: identical bytes, identical times, identical event count,
  // and — critically — the identical RNG-driven corruption schedule.
  const std::uint32_t len = 6 * 2048;
  const Outcome off = run_write(false, 2, 0, 1, len, /*corrupt_prob=*/0.5);
  const Outcome on = run_write(true, 2, 0, 1, len, /*corrupt_prob=*/0.5);
  EXPECT_GT(off.corruptions, 0u);  // the profile actually fired (seeded)
  EXPECT_EQ(on.corruptions, off.corruptions);
  EXPECT_EQ(on.dst, off.dst);
  EXPECT_EQ(on.local_done, off.local_done);
  EXPECT_EQ(on.remote_done, off.remote_done);
  EXPECT_EQ(on.events, off.events);
}

TEST(FluidMpi, RendezvousPingpongTimingIdentical) {
  // Full-stack conformance: a long-message MPI pingpong (rendezvous, RDMA
  // trains under the PML) must finish at the exact same simulated time with
  // the fast path on. pin_transport keeps CI env sweeps from varying the
  // transport between the two runs.
  auto final_time = [](bool fluid) {
    ModelParams p;
    p.fluid_bulk = fluid;
    test::TestBed bed(2, 1, p);
    bed.pin_transport = true;
    int verified = 0;
    const sim::Time t = bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      const std::size_t bytes = 256 * 1024;
      std::vector<std::uint8_t> buf(bytes, 0xA5);
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, dtype::byte_type(), 1, 7);
        c.recv(buf.data(), bytes, dtype::byte_type(), 1, 8);
      } else {
        std::vector<std::uint8_t> in(bytes, 0);
        c.recv(in.data(), bytes, dtype::byte_type(), 0, 7);
        EXPECT_EQ(in, buf);
        c.send(in.data(), bytes, dtype::byte_type(), 0, 8);
      }
      c.barrier();
      ++verified;
    });
    EXPECT_EQ(verified, 2);
    return t;
  };
  const sim::Time off = final_time(false);
  const sim::Time on = final_time(true);
  EXPECT_GT(off, 0u);
  EXPECT_EQ(on, off);
}

}  // namespace
}  // namespace oqs::elan4
