// Dynamic context claiming in the system-wide capability (paper §4.1/§5).
#include "elan4/capability.h"

#include <gtest/gtest.h>

namespace oqs::elan4 {
namespace {

TEST(Capability, ClaimAssignsNodeLocalContexts) {
  SystemCapability cap(4, 2);
  Vpid a = cap.claim(0);
  Vpid b = cap.claim(0);
  Vpid c = cap.claim(3);
  EXPECT_NE(a, kInvalidVpid);
  EXPECT_NE(b, kInvalidVpid);
  EXPECT_NE(a, b);
  EXPECT_EQ(cap.node_of(a), 0);
  EXPECT_EQ(cap.node_of(b), 0);
  EXPECT_EQ(cap.node_of(c), 3);
  EXPECT_NE(cap.context_of(a), cap.context_of(b));
  EXPECT_EQ(cap.live_count(), 3);
}

TEST(Capability, ExhaustionReturnsInvalid) {
  SystemCapability cap(1, 2);
  EXPECT_NE(cap.claim(0), kInvalidVpid);
  EXPECT_NE(cap.claim(0), kInvalidVpid);
  EXPECT_EQ(cap.claim(0), kInvalidVpid);
}

TEST(Capability, ReleaseMakesContextReclaimable) {
  SystemCapability cap(1, 1);
  Vpid a = cap.claim(0);
  EXPECT_EQ(cap.claim(0), kInvalidVpid);
  EXPECT_EQ(cap.release(a), Status::kOk);
  EXPECT_FALSE(cap.is_live(a));
  Vpid b = cap.claim(0);
  EXPECT_NE(b, kInvalidVpid);  // a restarted process re-joins (checkpoint/restart)
}

TEST(Capability, DoubleReleaseIsAnError) {
  SystemCapability cap(2, 2);
  Vpid a = cap.claim(1);
  EXPECT_EQ(cap.release(a), Status::kOk);
  EXPECT_EQ(cap.release(a), Status::kBadParam);
  EXPECT_EQ(cap.release(static_cast<Vpid>(999)), Status::kBadParam);
}

TEST(Capability, VpidsAreStableWhileLive) {
  SystemCapability cap(2, 4);
  Vpid a = cap.claim(0);
  Vpid b = cap.claim(1);
  cap.release(a);
  // b unaffected by a's departure — membership change does not abort peers.
  EXPECT_TRUE(cap.is_live(b));
  EXPECT_EQ(cap.node_of(b), 1);
}

}  // namespace
}  // namespace oqs::elan4
