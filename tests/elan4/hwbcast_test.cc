// Device-level hardware broadcast: fabric multicast, the global event
// table, faults, and dead-member handling.
#include <gtest/gtest.h>

#include <numeric>

#include "elan4/device.h"
#include "elan4/qsnet.h"
#include "net/fabric.h"

namespace oqs::elan4 {
namespace {

struct HwBcastFixture : ::testing::Test {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<QsNet> net;
  std::vector<std::unique_ptr<Elan4Device>> devs;

  void SetUp() override {
    net = std::make_unique<QsNet>(engine, params, 4);
    for (int i = 0; i < 4; ++i) devs.push_back(net->open(i));
  }
};

TEST_F(HwBcastFixture, DeliversToAllMembersAndFiresEvents) {
  std::vector<std::uint8_t> src(5000);
  std::iota(src.begin(), src.end(), 1);
  std::vector<std::vector<std::uint8_t>> dst(3, std::vector<std::uint8_t>(5000, 0));

  engine.spawn("t", [&] {
    // Symmetric setup: every device maps a 5000-byte region and allocates
    // one event, in the same order -> same E4 address and event index.
    std::vector<E4Addr> addrs;
    std::vector<E4Event*> evs;
    for (int i = 0; i < 4; ++i) {
      void* base = i == 0 ? static_cast<void*>(src.data())
                          : static_cast<void*>(dst[static_cast<std::size_t>(i - 1)].data());
      addrs.push_back(devs[static_cast<std::size_t>(i)]->map(base, 5000));
      evs.push_back(devs[static_cast<std::size_t>(i)]->alloc_event("hb"));
      evs.back()->init(1);
    }
    ASSERT_EQ(addrs[0], addrs[1]);
    ASSERT_EQ(addrs[0], addrs[3]);
    const int idx = devs[0]->last_event_index();

    E4Event* done = devs[0]->alloc_event("inject");
    done->init(1);
    devs[0]->hw_broadcast({devs[1]->vpid(), devs[2]->vpid(), devs[3]->vpid()},
                          addrs[0], 5000, idx, done);
    done->wait_block();
    // Receivers' events fire when their copy lands.
    for (int i = 1; i < 4; ++i) evs[static_cast<std::size_t>(i)]->wait_block();
    for (int i = 0; i < 3; ++i) EXPECT_EQ(dst[static_cast<std::size_t>(i)], src);
  });
  engine.run();
}

TEST_F(HwBcastFixture, LatencyFlatInFanout) {
  // One packet's worth of time regardless of member count.
  auto one_shot = [&](int members) {
    std::vector<std::uint8_t> buf(1024, 7);
    sim::Time done_at = 0;
    engine.spawn("t", [&, members] {
      std::vector<Vpid> group;
      std::vector<E4Event*> evs;
      std::vector<E4Addr> addrs;
      for (int i = 0; i < 4; ++i) {
        addrs.push_back(devs[static_cast<std::size_t>(i)]->map(buf.data(), 1024));
        evs.push_back(devs[static_cast<std::size_t>(i)]->alloc_event("e"));
        evs.back()->init(1);
      }
      for (int i = 1; i <= members; ++i) group.push_back(devs[static_cast<std::size_t>(i)]->vpid());
      const int idx = devs[0]->last_event_index();
      const sim::Time t0 = engine.now();
      devs[0]->hw_broadcast(group, addrs[0], 1024, idx, nullptr);
      evs[static_cast<std::size_t>(members)]->wait_block();  // farthest member
      done_at = engine.now() - t0;
      for (int i = 0; i < 4; ++i) devs[static_cast<std::size_t>(i)]->unmap(addrs[static_cast<std::size_t>(i)]);
    });
    engine.run();
    return done_at;
  };
  const sim::Time one = one_shot(1);
  const sim::Time three = one_shot(3);
  // Replication in the switch: three members cost within 10% of one.
  EXPECT_LT(three, one + one / 10);
}

TEST_F(HwBcastFixture, DeadMembersAreSkipped) {
  std::vector<std::uint8_t> buf(256, 3);
  engine.spawn("t", [&] {
    std::vector<E4Addr> addrs;
    std::vector<E4Event*> evs;
    for (int i = 0; i < 4; ++i) {
      addrs.push_back(devs[static_cast<std::size_t>(i)]->map(buf.data(), 256));
      evs.push_back(devs[static_cast<std::size_t>(i)]->alloc_event("e"));
      evs.back()->init(1);
    }
    const int idx = devs[0]->last_event_index();
    const Vpid dead = devs[2]->vpid();
    devs[2]->close();
    devs[0]->hw_broadcast({devs[1]->vpid(), dead, devs[3]->vpid()}, addrs[0],
                          256, idx, nullptr);
    evs[1]->wait_block();
    evs[3]->wait_block();
    EXPECT_FALSE(evs[2]->done());
    EXPECT_GE(net->nic(0).rx_drops(), 1u);
  });
  engine.run();
}

TEST_F(HwBcastFixture, UnmappedSourceFaults) {
  engine.spawn("t", [&] {
    E4Event* done = devs[0]->alloc_event("inj");
    done->init(1);
    devs[0]->hw_broadcast({devs[1]->vpid()}, 0xBAD00000, 128, 0, done);
    done->wait_block();
    EXPECT_EQ(done->status(), Status::kFault);
  });
  engine.run();
}

TEST(FabricMulticast, SharedInjectionSerializedEjection) {
  sim::Engine engine;
  ModelParams p;
  p.hop_ns = 100;
  p.link_startup_ns = 0;
  p.link_mbps = 1000.0;
  net::Fabric f(engine, p, 4);

  std::vector<sim::Time> arrivals(3, 0);
  f.multicast(0, {1, 2, 3}, 1000,
              [&](std::size_t i) { arrivals[i] = engine.now(); });
  // A second multicast right behind: must queue on the injection link once,
  // not once per member.
  std::vector<sim::Time> second(3, 0);
  f.multicast(0, {1, 2, 3}, 1000,
              [&](std::size_t i) { second[i] = engine.now(); });
  engine.run();
  for (sim::Time t : arrivals) EXPECT_EQ(t, 1200u);  // like a unicast packet
  for (sim::Time t : second) EXPECT_EQ(t, 2200u);    // one serialization behind
}

}  // namespace
}  // namespace oqs::elan4
