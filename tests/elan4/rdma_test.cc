// RDMA read/write: data movement through the MMU, fragmentation, events on
// both sides, chaining, and fault handling.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "elan4/device.h"
#include "elan4/qsnet.h"
#include "sim/rng.h"

namespace oqs::elan4 {
namespace {

struct RdmaFixture : ::testing::Test {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<QsNet> net;
  std::unique_ptr<Elan4Device> d0;
  std::unique_ptr<Elan4Device> d1;

  void SetUp() override {
    net = std::make_unique<QsNet>(engine, params, 2);
    d0 = net->open(0);
    d1 = net->open(1);
    ASSERT_TRUE(d0 && d1);
  }
};

TEST_F(RdmaFixture, WriteMovesDataAndFiresBothEvents) {
  std::vector<std::uint8_t> src(1024);
  std::vector<std::uint8_t> dst(1024, 0);
  std::iota(src.begin(), src.end(), 7);

  engine.spawn("t", [&] {
    E4Addr rsrc = d0->map(src.data(), src.size());
    E4Addr rdst = d1->map(dst.data(), dst.size());
    E4Event* local = d0->alloc_event("w-local");
    E4Event* remote = d1->alloc_event("w-remote");
    local->init(1);
    remote->init(1);
    d0->rdma_write(d1->vpid(), rsrc, rdst, 1024, local, remote);
    local->wait_block();
    EXPECT_EQ(local->status(), Status::kOk);
    EXPECT_TRUE(remote->done());  // remote fires before the ack returns
    EXPECT_EQ(dst, src);
  });
  engine.run();
}

TEST_F(RdmaFixture, WriteLargerThanMtuFragmentsCorrectly) {
  const std::size_t len = 3 * params.mtu + 517;
  std::vector<std::uint8_t> src(len);
  std::vector<std::uint8_t> dst(len, 0);
  sim::Rng rng(42);
  rng.fill(src.data(), src.size());

  engine.spawn("t", [&] {
    E4Addr rsrc = d0->map(src.data(), src.size());
    E4Addr rdst = d1->map(dst.data(), dst.size());
    E4Event* local = d0->alloc_event("w");
    local->init(1);
    d0->rdma_write(d1->vpid(), rsrc, rdst, static_cast<std::uint32_t>(len), local);
    local->wait_block();
    EXPECT_EQ(dst, src);
  });
  engine.run();
}

TEST_F(RdmaFixture, ReadPullsRemoteData) {
  std::vector<std::uint8_t> remote_buf(2000);
  std::vector<std::uint8_t> local_buf(2000, 0);
  std::iota(remote_buf.begin(), remote_buf.end(), 3);

  engine.spawn("t", [&] {
    E4Addr raddr = d1->map(remote_buf.data(), remote_buf.size());
    E4Addr laddr = d0->map(local_buf.data(), local_buf.size());
    E4Event* done = d0->alloc_event("r");
    done->init(1);
    d0->rdma_read(d1->vpid(), raddr, laddr, 2000, done);
    done->wait_block();
    EXPECT_EQ(done->status(), Status::kOk);
    EXPECT_EQ(local_buf, remote_buf);
  });
  engine.run();
}

TEST_F(RdmaFixture, ReadIsSlowerThanWriteBySmallDelta) {
  // A read costs an extra wire crossing (the GET request) compared to a
  // write of the same size observed at the data's destination.
  std::vector<std::uint8_t> a(4096);
  std::vector<std::uint8_t> b(4096);
  sim::Time write_done = 0;
  sim::Time read_done = 0;

  engine.spawn("writer", [&] {
    E4Addr rsrc = d0->map(a.data(), a.size());
    E4Addr rdst = d1->map(b.data(), b.size());
    E4Event* remote = d1->alloc_event("w-rem");
    remote->init(1);
    E4Event* local = d0->alloc_event("w-loc");
    local->init(1);
    sim::Time t0 = engine.now();
    d0->rdma_write(d1->vpid(), rsrc, rdst, 4096, local, remote);
    local->wait_block();
    write_done = engine.now() - t0;

    E4Event* rd = d0->alloc_event("r");
    rd->init(1);
    t0 = engine.now();
    d0->rdma_read(d1->vpid(), rdst, rsrc, 4096, rd);
    rd->wait_block();
    read_done = engine.now() - t0;
  });
  engine.run();
  EXPECT_GT(read_done, 0u);
  EXPECT_GT(write_done, 0u);
  // Both are round trips here (write waits for ack), so the difference is
  // just the GET processing; they should be within ~30% of each other.
  EXPECT_LT(read_done, write_done * 13 / 10);
}

TEST_F(RdmaFixture, WriteToUnmappedRemoteFaults) {
  std::vector<std::uint8_t> src(256);
  engine.spawn("t", [&] {
    E4Addr rsrc = d0->map(src.data(), src.size());
    E4Event* local = d0->alloc_event("w");
    local->init(1);
    d0->rdma_write(d1->vpid(), rsrc, /*bogus=*/0xDEAD0000, 256, local);
    local->wait_block();
    EXPECT_EQ(local->status(), Status::kFault);
    EXPECT_GE(net->nic(1).translation_faults(), 1u);
  });
  engine.run();
}

TEST_F(RdmaFixture, WriteFromUnmappedLocalFaultsImmediately) {
  engine.spawn("t", [&] {
    E4Event* local = d0->alloc_event("w");
    local->init(1);
    d0->rdma_write(d1->vpid(), /*bogus=*/0xBEEF0000, 0x10000, 256, local);
    local->wait_block();
    EXPECT_EQ(local->status(), Status::kFault);
    EXPECT_GE(net->nic(0).translation_faults(), 1u);
  });
  engine.run();
}

TEST_F(RdmaFixture, ReadFromUnmappedRemoteFaults) {
  std::vector<std::uint8_t> local_buf(256);
  engine.spawn("t", [&] {
    E4Addr laddr = d0->map(local_buf.data(), local_buf.size());
    E4Event* done = d0->alloc_event("r");
    done->init(1);
    d0->rdma_read(d1->vpid(), 0xDEAD0000, laddr, 256, done);
    done->wait_block();
    EXPECT_EQ(done->status(), Status::kFault);
  });
  engine.run();
}

TEST_F(RdmaFixture, ZeroLengthWriteCompletesAndFiresRemote) {
  engine.spawn("t", [&] {
    E4Event* local = d0->alloc_event("w0");
    E4Event* remote = d1->alloc_event("r0");
    local->init(1);
    remote->init(1);
    d0->rdma_write(d1->vpid(), kNullE4Addr, kNullE4Addr, 0, local, remote);
    local->wait_block();
    remote->wait_block();
    EXPECT_EQ(local->status(), Status::kOk);
  });
  engine.run();
}

TEST_F(RdmaFixture, ChainedFinAfterWrite) {
  // The paper's RDMA-write + chained FIN: the FIN QDMA must arrive at the
  // peer only after the write's data is visible there.
  std::vector<std::uint8_t> src(8192, 0x5A);
  std::vector<std::uint8_t> dst(8192, 0);

  engine.spawn("t", [&] {
    QdmaQueue* fin_q = d1->create_queue(8);
    E4Addr rsrc = d0->map(src.data(), src.size());
    E4Addr rdst = d1->map(dst.data(), dst.size());
    E4Event* local = d0->alloc_event("w");
    local->init(1);
    QdmaCmd fin;
    fin.src_vpid = d0->vpid();
    fin.dest_vpid = d1->vpid();
    fin.dest_queue = fin_q->id();
    fin.data = {0xF1};
    local->chain(fin);
    d0->rdma_write(d1->vpid(), rsrc, rdst, 8192, local);

    d1->queue_wait(fin_q);
    QdmaQueue::Slot s;
    ASSERT_TRUE(fin_q->consume(&s));
    EXPECT_EQ(s.data[0], 0xF1);
    // Data visible at the receiver by FIN arrival.
    EXPECT_EQ(dst, src);
  });
  engine.run();
}

TEST_F(RdmaFixture, CountEventAggregatesMultipleWrites) {
  constexpr int kN = 5;
  std::vector<std::vector<std::uint8_t>> srcs;
  std::vector<std::vector<std::uint8_t>> dsts;
  for (int i = 0; i < kN; ++i) {
    srcs.emplace_back(1000, static_cast<std::uint8_t>(i + 1));
    dsts.emplace_back(1000, 0);
  }
  engine.spawn("t", [&] {
    E4Event* all = d0->alloc_event("agg");
    all->init(kN);
    for (int i = 0; i < kN; ++i) {
      auto& s = srcs[static_cast<std::size_t>(i)];
      auto& d = dsts[static_cast<std::size_t>(i)];
      E4Addr rs = d0->map(s.data(), s.size());
      E4Addr rd = d1->map(d.data(), d.size());
      d0->rdma_write(d1->vpid(), rs, rd, 1000, all);
    }
    all->wait_block();
    for (int i = 0; i < kN; ++i)
      EXPECT_EQ(dsts[static_cast<std::size_t>(i)], srcs[static_cast<std::size_t>(i)]);
  });
  engine.run();
}

TEST_F(RdmaFixture, BandwidthApproachesLinkRateForLargeTransfers) {
  const std::size_t len = 1 << 20;  // 1 MB
  std::vector<std::uint8_t> src(len, 0xCD);
  std::vector<std::uint8_t> dst(len, 0);
  double mbps = 0;
  engine.spawn("t", [&] {
    E4Addr rs = d0->map(src.data(), src.size());
    E4Addr rd = d1->map(dst.data(), dst.size());
    E4Event* done = d0->alloc_event("bw");
    done->init(1);
    sim::Time t0 = engine.now();
    d0->rdma_write(d1->vpid(), rs, rd, static_cast<std::uint32_t>(len), done);
    done->wait_block();
    const double us = sim::to_us(engine.now() - t0);
    mbps = static_cast<double>(len) / us;  // bytes/us == MB/s
  });
  engine.run();
  // PCI-X (850 MB/s) is the bottleneck; expect within 20% of it.
  EXPECT_GT(mbps, 0.8 * params.pci_mbps);
  EXPECT_LT(mbps, params.pci_mbps * 1.05);
}

}  // namespace
}  // namespace oqs::elan4
