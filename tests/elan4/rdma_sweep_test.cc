// Property sweeps over the NIC data path: every size/offset/direction
// combination must move exactly the right bytes, and engine accounting
// must add up.
#include <gtest/gtest.h>

#include <numeric>

#include "elan4/device.h"
#include "elan4/qsnet.h"
#include "sim/rng.h"

namespace oqs::elan4 {
namespace {

struct SweepCase {
  std::size_t bytes;
  std::size_t src_offset;
  std::size_t dst_offset;
  bool use_read;
};

class RdmaSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RdmaSweep, ExactBytesMoveNoNeighbourDamage) {
  const SweepCase& sc = GetParam();
  sim::Engine engine;
  ModelParams params;
  QsNet net(engine, params, 2);
  auto d0 = net.open(0);
  auto d1 = net.open(1);

  // Buffer `a` lives with (and is mapped by) d0; buffer `b` with d1.
  // Write: pattern in a, d0 pushes a -> b. Read: pattern in b, d0 pulls
  // b -> a. Either way `landed` starts as 0xEE canary.
  const std::size_t span = sc.bytes + sc.src_offset + sc.dst_offset + 64;
  std::vector<std::uint8_t> a(span, 0xEE);
  std::vector<std::uint8_t> b(span, 0xEE);
  std::vector<std::uint8_t>& pattern = sc.use_read ? b : a;
  std::vector<std::uint8_t>& landed = sc.use_read ? a : b;
  sim::Rng rng(sc.bytes * 31 + sc.src_offset);
  rng.fill(pattern.data(), pattern.size());

  engine.spawn("t", [&] {
    const E4Addr addr_a = d0->map(a.data(), a.size());
    const E4Addr addr_b = d1->map(b.data(), b.size());
    E4Event* done = d0->alloc_event("sweep");
    done->init(1);
    if (sc.use_read) {
      d0->rdma_read(d1->vpid(), addr_b + sc.src_offset, addr_a + sc.dst_offset,
                    static_cast<std::uint32_t>(sc.bytes), done);
    } else {
      d0->rdma_write(d1->vpid(), addr_a + sc.src_offset, addr_b + sc.dst_offset,
                     static_cast<std::uint32_t>(sc.bytes), done);
    }
    done->wait_block();
    EXPECT_EQ(done->status(), Status::kOk);
  });
  engine.run();

  for (std::size_t i = 0; i < sc.bytes; ++i)
    ASSERT_EQ(landed[sc.dst_offset + i], pattern[sc.src_offset + i]) << i;
  // Bytes before/after the landing zone untouched.
  for (std::size_t i = 0; i < sc.dst_offset; ++i) ASSERT_EQ(landed[i], 0xEE);
  for (std::size_t i = sc.dst_offset + sc.bytes; i < landed.size(); ++i)
    ASSERT_EQ(landed[i], 0xEE) << i;
}

INSTANTIATE_TEST_SUITE_P(
    SizesOffsets, RdmaSweep,
    ::testing::Values(SweepCase{1, 0, 0, false}, SweepCase{1, 13, 7, false},
                      SweepCase{2047, 0, 0, false}, SweepCase{2048, 5, 9, false},
                      SweepCase{2049, 0, 3, false}, SweepCase{6000, 1, 1, false},
                      SweepCase{65536, 0, 0, false}, SweepCase{1, 0, 0, true},
                      SweepCase{2048, 3, 3, true}, SweepCase{2049, 0, 0, true},
                      SweepCase{100000, 11, 4, true}));

TEST(EngineAccounting, TxBusyMatchesPciOccupancy) {
  sim::Engine engine;
  ModelParams params;
  QsNet net(engine, params, 2);
  auto d0 = net.open(0);
  auto d1 = net.open(1);
  const std::size_t bytes = 1 << 20;
  std::vector<std::uint8_t> src(bytes, 1);
  std::vector<std::uint8_t> dst(bytes, 0);
  engine.spawn("t", [&] {
    const E4Addr a = d0->map(src.data(), bytes);
    const E4Addr b = d1->map(dst.data(), bytes);
    E4Event* done = d0->alloc_event("e");
    done->init(1);
    d0->rdma_write(d1->vpid(), a, b, bytes, done);
    done->wait_block();
  });
  engine.run();
  // tx engine busy time >= pure PCI transfer time of the payload.
  const sim::Time pci = ModelParams::xfer_ns(bytes, params.pci_mbps);
  EXPECT_GE(net.nic(0).tx_engine().busy_ns(), pci);
  EXPECT_LT(net.nic(0).tx_engine().busy_ns(), pci + pci / 4);
  // rx engine on the destination absorbed the same bytes.
  EXPECT_GE(net.nic(1).rx_engine().busy_ns(), pci);
}

TEST(QsNetFaults, CorruptionCounterAndDeterminism) {
  auto run_once = [](std::uint64_t seed) {
    sim::Engine engine;
    ModelParams params;
    QsNet net(engine, params, 2);
    net.set_corruption(0.5, seed);
    auto d0 = net.open(0);
    auto d1 = net.open(1);
    std::vector<std::uint8_t> src(65536, 0xAA);
    std::vector<std::uint8_t> dst(65536, 0);
    engine.spawn("t", [&] {
      const E4Addr a = d0->map(src.data(), src.size());
      const E4Addr b = d1->map(dst.data(), dst.size());
      E4Event* done = d0->alloc_event("e");
      done->init(1);
      d0->rdma_write(d1->vpid(), a, b, 65536, done);
      done->wait_block();
    });
    engine.run();
    return std::make_pair(net.corruptions(), dst);
  };
  auto [n1, d1v] = run_once(7);
  auto [n2, d2v] = run_once(7);
  EXPECT_GT(n1, 0u);
  EXPECT_EQ(n1, n2);   // deterministic per seed
  EXPECT_EQ(d1v, d2v); // byte-identical damage
  auto [n3, d3v] = run_once(8);
  (void)n3;
  EXPECT_NE(d1v, d3v);  // different seed, different damage
}

}  // namespace
}  // namespace oqs::elan4
