// Datatype engine: constructors, pack/unpack roundtrips at arbitrary
// fragment boundaries, property sweeps over random nested layouts.
#include "dtype/datatype.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "sim/rng.h"

namespace oqs::dtype {
namespace {

TEST(Datatype, BuiltinsAreContiguous) {
  EXPECT_EQ(byte_type()->size(), 1u);
  EXPECT_EQ(int_type()->size(), 4u);
  EXPECT_EQ(double_type()->size(), 8u);
  EXPECT_TRUE(int_type()->is_contiguous());
}

TEST(Datatype, ContiguousComposes) {
  auto t = Datatype::contiguous(10, int_type());
  EXPECT_EQ(t->size(), 40u);
  EXPECT_EQ(t->extent(), 40u);
  EXPECT_TRUE(t->is_contiguous());
  EXPECT_EQ(t->segments().size(), 1u);  // coalesced
}

TEST(Datatype, VectorHasHoles) {
  // 3 blocks of 2 ints, stride 4 ints.
  auto t = Datatype::vec(3, 2, 4, int_type());
  EXPECT_EQ(t->size(), 24u);
  EXPECT_EQ(t->extent(), (2 * 4 + 2) * 4u);
  EXPECT_FALSE(t->is_contiguous());
  EXPECT_EQ(t->segments().size(), 3u);
}

TEST(Datatype, VectorWithStrideEqualBlockIsContiguous) {
  auto t = Datatype::vec(5, 3, 3, int_type());
  EXPECT_TRUE(t->is_contiguous());
  EXPECT_EQ(t->size(), 60u);
}

TEST(Datatype, IndexedSelectsBlocks) {
  auto t = Datatype::indexed({{0, 2}, {5, 1}, {9, 3}}, byte_type());
  EXPECT_EQ(t->size(), 6u);
  EXPECT_EQ(t->extent(), 12u);
  EXPECT_EQ(t->segments().size(), 3u);
}

TEST(Datatype, StructMixesTypes) {
  // struct { int32 a; pad; double b[2]; } with explicit offsets.
  auto t = Datatype::structure({{0, 1, int_type()}, {8, 2, double_type()}});
  EXPECT_EQ(t->size(), 20u);
  EXPECT_EQ(t->extent(), 24u);
}

TEST(Convertor, PackUnpacksContiguous) {
  std::vector<int> src(100);
  std::iota(src.begin(), src.end(), 0);
  std::vector<int> dst(100, -1);
  auto t = int_type();
  Convertor cin(t, src.data(), 100);
  std::vector<std::uint8_t> wire(cin.total_bytes());
  EXPECT_EQ(cin.pack(wire.data(), wire.size()), 400u);
  EXPECT_TRUE(cin.finished());
  Convertor cout(t, dst.data(), 100);
  EXPECT_EQ(cout.unpack(wire.data(), wire.size()), 400u);
  EXPECT_EQ(src, dst);
}

TEST(Convertor, GathersVectorHoles) {
  // Memory: 0 1 2 3 4 5 6 7 8 9 ...; vector picks 2 of every 4.
  std::vector<std::uint8_t> mem(32);
  std::iota(mem.begin(), mem.end(), 0);
  auto t = Datatype::vec(3, 2, 4, byte_type());
  Convertor c(t, mem.data(), 1);
  std::vector<std::uint8_t> wire(t->size());
  c.pack(wire.data(), wire.size());
  EXPECT_EQ(wire, (std::vector<std::uint8_t>{0, 1, 4, 5, 8, 9}));
}

TEST(Convertor, ScattersOnUnpack) {
  auto t = Datatype::vec(2, 1, 3, byte_type());
  std::vector<std::uint8_t> mem(6, 0xFF);
  std::vector<std::uint8_t> wire{0xAA, 0xBB};
  Convertor c(t, mem.data(), 1);
  c.unpack(wire.data(), wire.size());
  EXPECT_EQ(mem, (std::vector<std::uint8_t>{0xAA, 0xFF, 0xFF, 0xBB, 0xFF, 0xFF}));
}

TEST(Convertor, ResumableAtArbitraryBoundaries) {
  // Pack in odd-sized pieces; the stream must match a single-shot pack.
  auto t = Datatype::vec(7, 3, 5, int_type());
  std::vector<int> mem(7 * 5 + 3, 0);
  std::iota(mem.begin(), mem.end(), 100);

  Convertor whole(t, mem.data(), 2);
  std::vector<std::uint8_t> ref(whole.total_bytes());
  whole.pack(ref.data(), ref.size());

  Convertor pieces(t, mem.data(), 2);
  std::vector<std::uint8_t> got(pieces.total_bytes());
  std::size_t off = 0;
  const std::size_t cuts[] = {1, 3, 7, 13, 64, 5, 2, 1000000};
  std::size_t ci = 0;
  while (!pieces.finished()) {
    off += pieces.pack(got.data() + off, cuts[ci % 8]);
    ++ci;
  }
  EXPECT_EQ(off, ref.size());
  EXPECT_EQ(got, ref);
}

TEST(Convertor, RewindRestartsTheStream) {
  std::vector<std::uint8_t> mem(16);
  std::iota(mem.begin(), mem.end(), 0);
  auto t = Datatype::contiguous(16, byte_type());
  Convertor c(t, mem.data(), 1);
  std::vector<std::uint8_t> a(16);
  std::vector<std::uint8_t> b(16);
  c.pack(a.data(), 16);
  c.rewind();
  c.pack(b.data(), 16);
  EXPECT_EQ(a, b);
}

TEST(Convertor, ZeroCountIsEmpty) {
  auto t = int_type();
  int dummy = 0;
  Convertor c(t, &dummy, 0);
  EXPECT_EQ(c.total_bytes(), 0u);
  EXPECT_TRUE(c.finished());
}

// Property sweep: random nested datatypes, pack->unpack into a second
// buffer must reproduce exactly the bytes the type selects.
class DatatypeProperty : public ::testing::TestWithParam<int> {};

DatatypePtr random_type(sim::Rng& rng, int depth) {
  if (depth == 0) {
    switch (rng.uniform(0, 2)) {
      case 0: return byte_type();
      case 1: return int_type();
      default: return double_type();
    }
  }
  DatatypePtr inner = random_type(rng, depth - 1);
  switch (rng.uniform(0, 2)) {
    case 0:
      return Datatype::contiguous(rng.uniform(1, 4), inner);
    case 1: {
      const std::size_t blocklen = rng.uniform(1, 3);
      return Datatype::vec(rng.uniform(1, 4), blocklen,
                           blocklen + rng.uniform(0, 3), inner);
    }
    default: {
      std::vector<std::pair<std::size_t, std::size_t>> blocks;
      std::size_t disp = 0;
      const std::size_t nb = rng.uniform(1, 3);
      for (std::size_t i = 0; i < nb; ++i) {
        const std::size_t len = rng.uniform(1, 3);
        blocks.emplace_back(disp, len);
        disp += len + rng.uniform(0, 2);
      }
      return Datatype::indexed(blocks, inner);
    }
  }
}

TEST_P(DatatypeProperty, PackUnpackRoundtripsRandomNesting) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  for (int iter = 0; iter < 20; ++iter) {
    DatatypePtr t = random_type(rng, static_cast<int>(rng.uniform(1, 3)));
    const std::size_t count = rng.uniform(1, 5);
    const std::size_t span = t->extent() * count + 16;

    std::vector<std::uint8_t> src(span);
    rng.fill(src.data(), src.size());
    std::vector<std::uint8_t> dst(span, 0xEE);

    Convertor cs(t, src.data(), count);
    std::vector<std::uint8_t> wire(cs.total_bytes());
    // Pack in random pieces.
    std::size_t off = 0;
    while (!cs.finished())
      off += cs.pack(wire.data() + off, rng.uniform(1, 64));
    ASSERT_EQ(off, wire.size());

    Convertor cd(t, dst.data(), count);
    off = 0;
    while (!cd.finished())
      off += cd.unpack(wire.data() + off, rng.uniform(1, 64));

    // Every byte the type covers must match; every hole must be untouched.
    std::vector<bool> covered(span, false);
    for (std::size_t e = 0; e < count; ++e)
      for (const auto& seg : t->segments())
        for (std::size_t b = 0; b < seg.length; ++b)
          covered[e * t->extent() + seg.offset + b] = true;
    for (std::size_t i = 0; i < span; ++i) {
      if (covered[i])
        ASSERT_EQ(dst[i], src[i]) << "byte " << i;
      else
        ASSERT_EQ(dst[i], 0xEE) << "hole " << i << " was written";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DatatypeProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace oqs::dtype
