// Hardened reliability path under deterministic fault injection.
//
// The fault layer (net/fault.h) drops, duplicates, delays, and corrupts
// lossy-classed wire packets from seeded RNG streams; these tests drive the
// Elan4 PTL's ack-clocked go-back-N through every fault class and assert
// the three protocol invariants:
//   * correctness — every byte arrives intact, exactly once, in order;
//   * boundedness — sent_log/backlog never exceed the send window (the old
//     size-512 truncation is gone, so a NACK can never reference a pruned
//     frame);
//   * determinism — the same fault seed reproduces the same retransmission
//     schedule and the same trace digest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/fault.h"
#include "obs/trace.h"
#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

mpi::Options reliable() {
  mpi::Options o;
  o.elan4.reliability = true;
  return o;
}

// Rank 0 streams `msgs` patterned messages of `bytes` to rank 1, which
// verifies every byte. Pattern depends on (message, offset) so reordering,
// duplication, and truncation all corrupt it detectably.
void stream_and_verify(mpi::World& w, int msgs, std::size_t bytes) {
  auto& c = w.comm();
  if (c.rank() == 0) {
    std::vector<std::uint8_t> buf(bytes);
    for (int i = 0; i < msgs; ++i) {
      for (std::size_t j = 0; j < bytes; ++j)
        buf[j] = static_cast<std::uint8_t>(i * 31 + j * 7);
      c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
    }
  } else {
    std::vector<std::uint8_t> got(bytes);
    for (int i = 0; i < msgs; ++i) {
      std::fill(got.begin(), got.end(), 0);
      c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
      for (std::size_t j = 0; j < bytes; ++j)
        ASSERT_EQ(got[j], static_cast<std::uint8_t>(i * 31 + j * 7))
            << "msg " << i << " byte " << j;
    }
  }
  c.barrier();
}

TEST(Elan4Reliability, DroppedFramesAreRetransmitted) {
  TestBed bed;
  net::FaultProfile p;
  p.drop = 0.05;
  bed.net->set_faults(p, /*seed=*/17);
  std::uint64_t retransmissions = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    stream_and_verify(w, 150, 256);
    retransmissions += w.elan4_ptl()->retransmissions();
    w.comm().barrier();
  }, reliable());
  EXPECT_GT(bed.net->faults()->drops(), 0u);
  EXPECT_GT(retransmissions, 0u);
}

// Regression for the pruned-NACK stall: the old sender truncated sent_log
// at 512 frames, so a NACK arriving for a pruned sequence could never be
// served and the pairing stalled forever. With ack-driven pruning and a
// bounded window, an unacknowledged frame can never leave the log — this
// workload (window far smaller than the in-flight demand, plus loss) used
// to hang and must now terminate with the window bound respected.
TEST(Elan4Reliability, WindowOverflowCannotStallRecovery) {
  TestBed bed;
  net::FaultProfile p;
  p.drop = 0.08;
  bed.net->set_faults(p, /*seed=*/29);
  mpi::Options o = reliable();
  o.elan4.send_window = 8;
  std::uint64_t retransmissions = 0;
  std::size_t max_outstanding = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    constexpr int kMsgs = 400;
    constexpr std::size_t kBytes = 128;
    if (c.rank() == 0) {
      std::vector<std::uint8_t> buf(kBytes);
      for (int i = 0; i < kMsgs; ++i) {
        for (std::size_t j = 0; j < kBytes; ++j)
          buf[j] = static_cast<std::uint8_t>(i + j);
        c.send(buf.data(), kBytes, dtype::byte_type(), 1, 0);
        max_outstanding =
            std::max(max_outstanding, w.elan4_ptl()->outstanding_frames(1));
      }
    } else {
      std::vector<std::uint8_t> got(kBytes);
      for (int i = 0; i < kMsgs; ++i) {
        c.recv(got.data(), kBytes, dtype::byte_type(), 0, 0);
        for (std::size_t j = 0; j < kBytes; ++j)
          ASSERT_EQ(got[j], static_cast<std::uint8_t>(i + j));
      }
    }
    c.barrier();
    retransmissions += w.elan4_ptl()->retransmissions();
    c.barrier();
  }, o);
  EXPECT_GT(bed.net->faults()->drops(), 0u);
  EXPECT_GT(retransmissions, 0u);
  EXPECT_LE(max_outstanding, 8u);
}

TEST(Elan4Reliability, DuplicatedFramesAreSuppressed) {
  TestBed bed;
  net::FaultProfile p;
  p.duplicate = 0.15;
  bed.net->set_faults(p, /*seed=*/23);
  std::uint64_t dups_suppressed = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    stream_and_verify(w, 120, 512);
    dups_suppressed += w.elan4_ptl()->dup_frames();
    w.comm().barrier();
  }, reliable());
  EXPECT_GT(bed.net->faults()->duplicates(), 0u);
  EXPECT_GT(dups_suppressed, 0u);
}

TEST(Elan4Reliability, DelayedFramesReorderSafely) {
  TestBed bed;
  net::FaultProfile p;
  p.delay = 0.2;
  p.delay_ns = 60000;  // long enough to leapfrog several successors
  bed.net->set_faults(p, /*seed=*/31);
  std::uint64_t ooo_dropped = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    stream_and_verify(w, 120, 512);
    ooo_dropped += w.elan4_ptl()->frames_dropped();
    w.comm().barrier();
  }, reliable());
  EXPECT_GT(bed.net->faults()->delays(), 0u);
  // A held frame makes its successors arrive out of order: go-back-N
  // refuses them and recovers by retransmission.
  EXPECT_GT(ooo_dropped, 0u);
}

// The acceptance bar from the issue: with loss injection up to 10% (drop +
// corruption combined, plus duplication and delay), every scenario
// terminates with correct data and bounded sender state.
TEST(Elan4Reliability, MixedFaultsAtTenPercentStayCorrectAndBounded) {
  TestBed bed;
  net::FaultProfile p;
  p.drop = 0.05;
  p.corrupt = 0.05;
  p.duplicate = 0.02;
  p.delay = 0.02;
  bed.net->set_faults(p, /*seed=*/7);
  mpi::Options o = reliable();
  o.elan4.max_data_retries = 50;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    // Eager and rendezvous sizes, interleaved over many rounds.
    const std::size_t sizes[] = {64, 1000, 1980, 4096, 32768};
    for (int round = 0; round < 12; ++round) {
      for (std::size_t bytes : sizes) {
        std::vector<std::uint8_t> buf(bytes);
        if (c.rank() == 0) {
          for (std::size_t j = 0; j < bytes; ++j)
            buf[j] = static_cast<std::uint8_t>(round * 13 + j * 5);
          c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
        } else {
          c.recv(buf.data(), bytes, dtype::byte_type(), 0, 0);
          for (std::size_t j = 0; j < bytes; ++j)
            ASSERT_EQ(buf[j], static_cast<std::uint8_t>(round * 13 + j * 5))
                << "round " << round << " size " << bytes << " byte " << j;
        }
      }
    }
    c.barrier();
    // Sender state is ack-clocked, never history-unbounded: whatever is
    // still unacknowledged fits the window.
    EXPECT_LE(w.elan4_ptl()->outstanding_frames(1 - c.rank()),
              o.elan4.send_window);
    c.barrier();
  }, o);
  EXPECT_GT(bed.net->faults()->drops(), 0u);
  EXPECT_GT(bed.net->faults()->corruptions(), 0u);
}

struct FaultRun {
  sim::Time final_time = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t rtx_timeouts = 0;
  std::uint64_t dup_frames = 0;
  std::uint64_t drops = 0;
  std::uint64_t digest = 0;
};

FaultRun run_lossy_workload(std::uint64_t seed) {
  obs::Tracer tracer;
  obs::set_tracer(&tracer);
  TestBed bed;
  net::FaultProfile p;
  p.drop = 0.04;
  p.corrupt = 0.02;
  p.duplicate = 0.02;
  p.delay = 0.02;
  bed.net->set_faults(p, seed);
  FaultRun out;
  out.final_time = bed.run_mpi(2, [&](mpi::World& w) {
    stream_and_verify(w, 100, 512);
    auto* ptl = w.elan4_ptl();
    out.retransmissions += ptl->retransmissions();
    out.rtx_timeouts += ptl->rtx_timeouts();
    out.dup_frames += ptl->dup_frames();
    w.comm().barrier();
  }, reliable());
  out.drops = bed.net->faults()->drops();
  out.digest = tracer.digest();
  obs::set_tracer(nullptr);
  return out;
}

TEST(Elan4Reliability, SameFaultSeedReproducesSameSchedule) {
  const FaultRun a = run_lossy_workload(42);
  const FaultRun b = run_lossy_workload(42);
  EXPECT_GT(a.retransmissions, 0u);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.rtx_timeouts, b.rtx_timeouts);
  EXPECT_EQ(a.dup_frames, b.dup_frames);
  EXPECT_EQ(a.drops, b.drops);
  EXPECT_EQ(a.digest, b.digest);
}

TEST(Elan4Reliability, DifferentFaultSeedDiverges) {
#if defined(OQS_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (-DOQS_TRACE=OFF)";
#else
  const FaultRun a = run_lossy_workload(42);
  const FaultRun b = run_lossy_workload(43);
  EXPECT_NE(a.digest, b.digest);
#endif
}

// Satellite: uint16 sequence wraparound. seq_start places both sides just
// below 65535, so the stream crosses 65535 -> 0 mid-run while frames are
// being dropped, duplicated, and NACKed; the int16-delta admit logic and
// the cumulative-ack arithmetic must keep working across the wrap.
TEST(Elan4Reliability, SequenceWraparoundUnderLoss) {
  TestBed bed;
  net::FaultProfile p;
  p.drop = 0.05;
  p.duplicate = 0.03;
  bed.net->set_faults(p, /*seed=*/13);
  mpi::Options o = reliable();
  o.elan4.seq_start = 65500;
  std::uint64_t retransmissions = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    // Well past 35 frames each way: the wrap happens early and the bulk of
    // the run (including all recovery) operates on post-wrap sequences.
    stream_and_verify(w, 300, 256);
    retransmissions += w.elan4_ptl()->retransmissions();
    w.comm().barrier();
  }, o);
  EXPECT_GT(bed.net->faults()->drops(), 0u);
  EXPECT_GT(retransmissions, 0u);
}

// Clean-wire wraparound: same crossing with no faults; pure protocol path.
TEST(Elan4Reliability, SequenceWraparoundCleanWire) {
  TestBed bed;
  mpi::Options o = reliable();
  o.elan4.seq_start = 65520;
  bed.run_mpi(2, [&](mpi::World& w) {
    stream_and_verify(w, 100, 1024);
    EXPECT_EQ(w.elan4_ptl()->retransmissions(), 0u);
    w.comm().barrier();
  }, o);
}

// ---- slow-labelled soak (CI runs these in the `-L slow` lane) ----

// High-loss seed sweep: the same heavy fault profile across several seeds,
// each run also crossing the uint16 wrap at a different point. Every seed
// must converge to a correct, fully-acknowledged stream.
TEST(ReliabilitySoak, HighLossSeedSweep) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    TestBed bed;
    net::FaultProfile p;
    p.drop = 0.08;
    p.corrupt = 0.05;
    p.duplicate = 0.03;
    p.delay = 0.03;
    bed.net->set_faults(p, seed);
    mpi::Options o = reliable();
    o.elan4.max_data_retries = 50;
    o.elan4.seq_start = static_cast<std::uint16_t>(65400 + seed * 31);
    std::uint64_t retransmissions = 0;
    bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      const std::size_t sizes[] = {16, 512, 1980, 8192};
      for (int round = 0; round < 50; ++round) {
        for (std::size_t bytes : sizes) {
          std::vector<std::uint8_t> buf(bytes);
          if (c.rank() == 0) {
            for (std::size_t j = 0; j < bytes; ++j)
              buf[j] = static_cast<std::uint8_t>(round + j * 3);
            c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
          } else {
            c.recv(buf.data(), bytes, dtype::byte_type(), 0, 0);
            for (std::size_t j = 0; j < bytes; ++j)
              ASSERT_EQ(buf[j], static_cast<std::uint8_t>(round + j * 3))
                  << "seed " << seed << " round " << round << " size "
                  << bytes;
          }
        }
      }
      c.barrier();
      retransmissions += w.elan4_ptl()->retransmissions();
      EXPECT_LE(w.elan4_ptl()->outstanding_frames(1 - c.rank()),
                o.elan4.send_window);
      c.barrier();
    }, o);
    EXPECT_GT(bed.net->faults()->drops(), 0u) << "seed " << seed;
    EXPECT_GT(retransmissions, 0u) << "seed " << seed;
  }
}

// Bidirectional soak: both ranks stream simultaneously so every frame
// carries a piggybacked cumulative ack for the reverse direction, under
// loss, with a small window — the piggyback path gets real coverage.
TEST(ReliabilitySoak, BidirectionalTrafficUnderLoss) {
  TestBed bed;
  net::FaultProfile p;
  p.drop = 0.06;
  p.duplicate = 0.02;
  bed.net->set_faults(p, /*seed=*/101);
  mpi::Options o = reliable();
  o.elan4.send_window = 16;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const int peer = 1 - c.rank();
    constexpr int kMsgs = 250;
    constexpr std::size_t kBytes = 400;
    std::vector<std::uint8_t> out(kBytes);
    std::vector<std::uint8_t> in(kBytes);
    for (int i = 0; i < kMsgs; ++i) {
      for (std::size_t j = 0; j < kBytes; ++j)
        out[j] = static_cast<std::uint8_t>(c.rank() * 101 + i * 17 + j);
      auto s = c.isend(out.data(), kBytes, dtype::byte_type(), peer, 0);
      auto r = c.irecv(in.data(), kBytes, dtype::byte_type(), peer, 0);
      s.wait();
      r.wait();
      for (std::size_t j = 0; j < kBytes; ++j)
        ASSERT_EQ(in[j], static_cast<std::uint8_t>(peer * 101 + i * 17 + j))
            << "msg " << i << " byte " << j;
    }
    c.barrier();
  }, o);
  EXPECT_GT(bed.net->faults()->drops(), 0u);
}

}  // namespace
}  // namespace oqs
