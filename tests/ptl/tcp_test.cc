// Direct tests of the Ethernet substrate and the TCP PTL frame protocol.
#include <gtest/gtest.h>

#include "net/ethernet.h"
#include "ptl/tcp/ptl_tcp.h"
#include "testbed.h"

namespace oqs {
namespace {

struct RecordingSink final : net::EthNet::Sink {
  std::vector<std::pair<int, std::vector<std::uint8_t>>> frames;
  void eth_deliver(int src, std::vector<std::uint8_t> frame) override {
    frames.emplace_back(src, std::move(frame));
  }
};

TEST(EthNet, DeliversFramesWithLatencyAndSerialization) {
  sim::Engine engine;
  ModelParams p;
  net::EthNet eth(engine, p);
  RecordingSink a;
  RecordingSink b;
  const int addr_a = eth.attach(&a);
  const int addr_b = eth.attach(&b);

  sim::Time t1 = 0;
  sim::Time t2 = 0;
  engine.schedule(0, [&] {
    eth.send(addr_a, addr_b, std::vector<std::uint8_t>(11000, 1));
    eth.send(addr_a, addr_b, std::vector<std::uint8_t>(11000, 2));
  });
  engine.run();
  ASSERT_EQ(b.frames.size(), 2u);
  EXPECT_EQ(b.frames[0].first, addr_a);
  // Wire time for 11KB at 110MB/s = 100us; latency 30us.
  t1 = p.eth_latency_ns + 2 * ModelParams::xfer_ns(11000, p.tcp_wire_mbps);
  t2 = t1;  // both serialized on a's tx port
  EXPECT_GT(t1, 0u);
  (void)t2;
  EXPECT_TRUE(a.frames.empty());
}

TEST(EthNet, DetachedSinkDropsSilently) {
  sim::Engine engine;
  ModelParams p;
  net::EthNet eth(engine, p);
  RecordingSink a;
  const int addr_a = eth.attach(&a);
  RecordingSink b;
  const int addr_b = eth.attach(&b);
  eth.detach(addr_b);
  eth.send(addr_a, addr_b, {1, 2, 3});
  engine.run();
  EXPECT_TRUE(b.frames.empty());
}

TEST(PtlTcp, EagerAndChunkedPathsVerifiedOverStack) {
  // End-to-end through the MPI layer with only TCP enabled, exercising the
  // rendezvous/chunk protocol with non-contiguous datatypes.
  mpi::Options opts;
  opts.use_elan4 = false;
  opts.use_tcp = true;
  test::TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    // Non-contiguous on both sides across the chunked path.
    auto t = dtype::Datatype::vec(5000, 3, 4, dtype::byte_type());
    std::vector<std::uint8_t> mem(t->extent() + 4, 0xEE);
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < mem.size(); ++i)
        mem[i] = static_cast<std::uint8_t>(i * 13);
      c.send(mem.data(), 1, t, 1, 0);
    } else {
      c.recv(mem.data(), 1, t, 0, 0);
      for (std::size_t k = 0; k < 5000; ++k) {
        for (std::size_t j = 0; j < 3; ++j)
          ASSERT_EQ(mem[k * 4 + j], static_cast<std::uint8_t>((k * 4 + j) * 13));
        if (k + 1 < 5000) {
          ASSERT_EQ(mem[k * 4 + 3], 0xEE);
        }
      }
    }
    c.barrier();
  }, opts);
}

TEST(PtlTcp, ManyMessagesKeepOrder) {
  mpi::Options opts;
  opts.use_elan4 = false;
  opts.use_tcp = true;
  test::TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() == 0) {
      for (std::uint32_t i = 0; i < 25; ++i) {
        // Alternate eager and chunked sizes.
        std::vector<std::uint8_t> buf(i % 2 ? 100u : 100000u,
                                      static_cast<std::uint8_t>(i));
        c.send(buf.data(), buf.size(), dtype::byte_type(), 1, 0);
      }
    } else {
      for (std::uint32_t i = 0; i < 25; ++i) {
        std::vector<std::uint8_t> buf(i % 2 ? 100u : 100000u, 0xFF);
        c.recv(buf.data(), buf.size(), dtype::byte_type(), 0, 0);
        ASSERT_EQ(buf[0], static_cast<std::uint8_t>(i));
        ASSERT_EQ(buf.back(), static_cast<std::uint8_t>(i));
      }
    }
    c.barrier();
  }, opts);
}

TEST(PtlTcp, ReliableFramingCarriesTrafficIntact) {
  // The shared go-back-N component layered over TCP: sequencing, CRC
  // trailers, and cumulative acks must be transparent to the protocol.
  mpi::Options opts;
  opts.use_elan4 = false;
  opts.use_tcp = true;
  opts.tcp_reliability = true;
  test::TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() == 0) {
      for (std::uint32_t i = 0; i < 20; ++i) {
        std::vector<std::uint8_t> buf(i % 3 ? 200u : 90000u,
                                      static_cast<std::uint8_t>(i * 3));
        c.send(buf.data(), buf.size(), dtype::byte_type(), 1, 0);
      }
    } else {
      for (std::uint32_t i = 0; i < 20; ++i) {
        std::vector<std::uint8_t> buf(i % 3 ? 200u : 90000u, 0xFF);
        c.recv(buf.data(), buf.size(), dtype::byte_type(), 0, 0);
        ASSERT_EQ(buf[0], static_cast<std::uint8_t>(i * 3));
        ASSERT_EQ(buf.back(), static_cast<std::uint8_t>(i * 3));
      }
      // 20 sequenced frames admitted: the ack cadence (every 8) must have
      // produced explicit acks, and the lossless wire must drop nothing.
      auto* tcp = static_cast<ptl_tcp::PtlTcp*>(&w.pml().ptl(0));
      ASSERT_EQ(tcp->name(), "tcp");
      EXPECT_TRUE(tcp->reliability());
      EXPECT_GT(tcp->acks_sent(), 0u);
      EXPECT_EQ(tcp->frames_dropped(), 0u);
    }
    c.barrier();
  }, opts);
}

}  // namespace
}  // namespace oqs
