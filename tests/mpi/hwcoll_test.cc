// Hardware broadcast: the global-address-space fast path and its paper-
// mandated failure mode (dynamically diverged processes fall back to
// point-to-point).
#include <gtest/gtest.h>

#include <numeric>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

TEST(HwBcast, DeliversToAllRanksWhenSymmetric) {
  TestBed bed;
  bed.run_mpi(8, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> buf(10000, 0);
    if (c.rank() == 3)
      for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i * 11);
    const bool hw = mpi::try_hw_bcast(c, w, buf.data(), buf.size(), /*root=*/3);
    EXPECT_TRUE(hw) << "symmetric fresh job should have the global space";
    for (std::size_t i = 0; i < buf.size(); ++i)
      ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 11));
    c.barrier();
  });
}

TEST(HwBcast, RepeatedBroadcastsStaySymmetric) {
  TestBed bed;
  bed.run_mpi(4, [&](mpi::World& w) {
    auto& c = w.comm();
    for (int round = 0; round < 5; ++round) {
      std::vector<std::uint8_t> buf(2048, 0);
      const int root = round % c.size();
      if (c.rank() == root)
        std::fill(buf.begin(), buf.end(), static_cast<std::uint8_t>(round + 1));
      EXPECT_TRUE(mpi::try_hw_bcast(c, w, buf.data(), buf.size(), root));
      EXPECT_EQ(buf[77], static_cast<std::uint8_t>(round + 1)) << round;
    }
    c.barrier();
  });
}

TEST(HwBcast, AsymmetricHistoryFallsBack) {
  // Rendezvous traffic maps buffers on the sender only; the allocation
  // histories diverge and the global virtual address space is gone —
  // exactly the paper's caveat. bcast_auto must still deliver via p2p.
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    // Asymmetric: rank 0 sends one long message (maps memory, allocates
    // descriptor events); rank 1 only receives.
    std::vector<std::uint8_t> big(50000, 9);
    if (c.rank() == 0)
      c.send(big.data(), big.size(), dtype::byte_type(), 1, 0);
    else
      c.recv(big.data(), big.size(), dtype::byte_type(), 0, 0);

    std::vector<std::uint8_t> buf(512, 0);
    if (c.rank() == 0) std::fill(buf.begin(), buf.end(), 0xAB);
    const bool hw = mpi::bcast_auto(c, w, buf.data(), buf.size(), 0);
    EXPECT_FALSE(hw) << "diverged histories must disable the hardware path";
    EXPECT_EQ(buf[100], 0xAB);  // fallback still delivered
    c.barrier();
  });
}

TEST(HwBcast, GroupPipelinesManyRoundsWithIntegrity) {
  TestBed bed;
  bed.run_mpi(8, [&](mpi::World& w) {
    auto& c = w.comm();
    mpi::HwBcastGroup group(c, w, 4096);
    ASSERT_TRUE(group.valid());
    for (int round = 0; round < 21; ++round) {  // crosses slot-ring laps
      std::vector<std::uint8_t> buf(3000, 0);
      const int root = round % c.size();
      if (c.rank() == root)
        for (std::size_t i = 0; i < buf.size(); ++i)
          buf[i] = static_cast<std::uint8_t>(i + round);
      group.bcast(buf.data(), buf.size(), root);
      for (std::size_t i = 0; i < buf.size(); i += 97)
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i + round)) << round;
    }
    c.barrier();
  });
}

TEST(HwBcast, LatencyIndependentOfFanout) {
  // The hardware tree replicates in the switch: 8-way broadcast should cost
  // about the same as 2-way, while the binomial software broadcast grows
  // with log2(n).
  auto measure = [](int nprocs, bool hw) {
    TestBed bed;
    double us = 0;
    bed.run_mpi(nprocs, [&](mpi::World& w) {
      auto& c = w.comm();
      std::vector<std::uint8_t> buf(1024, 1);
      mpi::HwBcastGroup group(c, w, 2048);
      EXPECT_TRUE(group.valid());
      c.barrier();
      const sim::Time t0 = bed.engine.now();
      for (int i = 0; i < 20; ++i) {
        if (hw)
          group.bcast(buf.data(), buf.size(), 0);
        else
          c.bcast(buf.data(), buf.size(), dtype::byte_type(), 0);
      }
      c.barrier();
      if (c.rank() == 0) us = sim::to_us(bed.engine.now() - t0) / 20.0;
    });
    return us;
  };
  const double hw2 = measure(2, true);
  const double hw8 = measure(8, true);
  const double sw8 = measure(8, false);
  EXPECT_LT(hw8, hw2 * 2.2);  // near-flat in fan-out (allgather grows a bit)
  // At 8 ranks hardware broadcast beats the binomial software tree.
  EXPECT_LT(hw8, sw8);
}

}  // namespace
}  // namespace oqs
