// Edge cases across the public API: singleton jobs, degenerate collectives,
// zero-byte traffic, tag extremes, deep communicator nesting.
#include <gtest/gtest.h>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

TEST(Edge, SingletonWorldCollectivesAreNoops) {
  TestBed bed;
  bed.run_mpi(1, [&](mpi::World& w) {
    auto& c = w.comm();
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    std::uint32_t v = 5;
    c.bcast(&v, 4, dtype::byte_type(), 0);
    EXPECT_EQ(v, 5u);
    double x = 2.5;
    double sum = 0;
    c.allreduce_sum(&x, &sum, 1);
    EXPECT_DOUBLE_EQ(sum, 2.5);
    std::uint32_t g = 0;
    c.gather(&v, 4, &g, 0);
    EXPECT_EQ(g, 5u);
    c.alltoall(&v, 4, &g);
    EXPECT_EQ(g, 5u);
  });
}

TEST(Edge, SelfSendRecvCompletes) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::uint32_t out = 42 + static_cast<std::uint32_t>(c.rank());
    std::uint32_t in = 0;
    mpi::Request r = c.irecv(&in, 4, dtype::byte_type(), c.rank(), 9);
    c.send(&out, 4, dtype::byte_type(), c.rank(), 9);
    r.wait();
    EXPECT_EQ(in, out);
    c.barrier();
  });
}

TEST(Edge, ZeroByteMessagesMatchAndCount) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() == 0) {
      for (int i = 0; i < 10; ++i)
        c.send(nullptr, 0, dtype::byte_type(), 1, i);
    } else {
      // Receive out of order by tag; every zero-byte message matches.
      for (int i = 9; i >= 0; --i) {
        mpi::RecvStatus st;
        c.recv(nullptr, 0, dtype::byte_type(), 0, i, &st);
        EXPECT_EQ(st.tag, i);
        EXPECT_EQ(st.bytes, 0u);
      }
    }
    c.barrier();
  });
}

TEST(Edge, LargeTagValues) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const int big_tag = 0x3FFFFFFF;  // below the collective-reserved space
    std::uint32_t v = 7;
    if (c.rank() == 0)
      c.send(&v, 4, dtype::byte_type(), 1, big_tag);
    else {
      std::uint32_t got = 0;
      mpi::RecvStatus st;
      c.recv(&got, 4, dtype::byte_type(), 0, big_tag, &st);
      EXPECT_EQ(got, 7u);
      EXPECT_EQ(st.tag, big_tag);
    }
    c.barrier();
  });
}

TEST(Edge, NestedSplitsAndDups) {
  TestBed bed;
  bed.run_mpi(8, [&](mpi::World& w) {
    auto& c = w.comm();
    mpi::Communicator half = c.split(c.rank() / 4, c.rank());
    mpi::Communicator quarter = half.split(half.rank() / 2, half.rank());
    mpi::Communicator qd = quarter.dup();
    EXPECT_EQ(quarter.size(), 2);
    // All three levels carry independent traffic simultaneously.
    std::uint32_t a = static_cast<std::uint32_t>(c.rank());
    std::uint32_t b = 0;
    qd.sendrecv(&a, 4, 1 - qd.rank(), 0, &b, 4, 1 - qd.rank(), 0,
                dtype::byte_type());
    // The pair partner within the quarter is rank^1 in world terms.
    EXPECT_EQ(b, static_cast<std::uint32_t>(c.rank() ^ 1));
    double x = 1;
    double sum = 0;
    half.allreduce_sum(&x, &sum, 1);
    EXPECT_DOUBLE_EQ(sum, 4.0);
    c.barrier();
  });
}

TEST(Edge, ManySmallCommunicatorsDoNotCollide) {
  TestBed bed;
  bed.run_mpi(4, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<mpi::Communicator> comms;
    for (int i = 0; i < 10; ++i) comms.push_back(c.dup());
    // Fire the same (src, tag) on every communicator; each must match its own.
    std::vector<mpi::Request> reqs;
    std::vector<std::uint32_t> in(10, 0);
    std::vector<std::uint32_t> out(10);
    const int peer = c.rank() ^ 1;
    for (int i = 0; i < 10; ++i) {
      out[static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(1000 * i + c.rank());
      reqs.push_back(comms[static_cast<std::size_t>(i)].irecv(
          &in[static_cast<std::size_t>(i)], 4, dtype::byte_type(), peer, 3));
    }
    for (int i = 9; i >= 0; --i)  // send in reverse communicator order
      reqs.push_back(comms[static_cast<std::size_t>(i)].isend(
          &out[static_cast<std::size_t>(i)], 4, dtype::byte_type(), peer, 3));
    mpi::wait_all(reqs);
    for (int i = 0; i < 10; ++i)
      EXPECT_EQ(in[static_cast<std::size_t>(i)],
                static_cast<std::uint32_t>(1000 * i + peer));
    c.barrier();
  });
}

TEST(Edge, InterleavedWildcardAndDirectedRecvs) {
  TestBed bed;
  bed.run_mpi(3, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() != 0) {
      std::uint32_t v = static_cast<std::uint32_t>(c.rank() * 10);
      c.send(&v, 4, dtype::byte_type(), 0, 1);
      c.send(&v, 4, dtype::byte_type(), 0, 2);
    } else {
      // A directed recv must not steal a wildcard's message and vice versa.
      std::uint32_t from2 = 0;
      c.recv(&from2, 4, dtype::byte_type(), 2, 1);
      EXPECT_EQ(from2, 20u);
      std::uint32_t any = 0;
      mpi::RecvStatus st;
      c.recv(&any, 4, dtype::byte_type(), mpi::kAnySource, 1, &st);
      EXPECT_EQ(st.source, 1);
      EXPECT_EQ(any, 10u);
      for (int i = 0; i < 2; ++i) {
        std::uint32_t x = 0;
        c.recv(&x, 4, dtype::byte_type(), mpi::kAnySource, 2);
      }
    }
    c.barrier();
  });
}

}  // namespace
}  // namespace oqs
