// Process migration (checkpoint/restart support, paper §4.1): a process
// releases its Elan context, claims one on another node, and peers
// reconnect lazily through the registry.
#include <gtest/gtest.h>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

TEST(Migrate, ProcessMovesAndTrafficResumes) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    // Phase 1: normal traffic.
    std::uint32_t v = 0;
    if (c.rank() == 0) {
      v = 11;
      c.send(&v, 4, dtype::byte_type(), 1, 0);
    } else {
      c.recv(&v, 4, dtype::byte_type(), 0, 0);
      EXPECT_EQ(v, 11u);
    }
    c.barrier();

    // Phase 2: rank 1 migrates from node 1 to node 5. Rank 0 stays quiet
    // through the window (coordinated-checkpoint discipline).
    if (c.rank() == 1) {
      EXPECT_EQ(w.env().node, 1);
      w.migrate(5);
      EXPECT_EQ(w.env().node, 5);
    } else {
      w.net().engine().sleep(2 * sim::kMs);  // past the migration window
    }

    // Phase 3: traffic resumes; rank 0 reconnects lazily via the registry.
    if (c.rank() == 0) {
      v = 22;
      c.send(&v, 4, dtype::byte_type(), 1, 1);
      c.recv(&v, 4, dtype::byte_type(), 1, 2);
      EXPECT_EQ(v, 23u);
    } else {
      c.recv(&v, 4, dtype::byte_type(), 0, 1);
      EXPECT_EQ(v, 22u);
      ++v;
      c.send(&v, 4, dtype::byte_type(), 0, 2);
    }
    c.barrier();
  });
  // The old context on node 1 was released; only 2 contexts live during
  // the run and all are returned at the end.
  EXPECT_EQ(bed.net->capability().live_count(), 0);
}

TEST(Migrate, LargeMessagesAfterMigration) {
  TestBed bed;
  bed.run_mpi(3, [&](mpi::World& w) {
    auto& c = w.comm();
    c.barrier();
    if (c.rank() == 2) {
      w.migrate(7);
    } else {
      w.net().engine().sleep(2 * sim::kMs);
    }
    // Rendezvous traffic in both directions with the migrated rank.
    std::vector<std::uint8_t> buf(60000);
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < buf.size(); ++i)
        buf[i] = static_cast<std::uint8_t>(i * 3);
      c.send(buf.data(), buf.size(), dtype::byte_type(), 2, 0);
    } else if (c.rank() == 2) {
      c.recv(buf.data(), buf.size(), dtype::byte_type(), 0, 0);
      for (std::size_t i = 0; i < buf.size(); i += 101)
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 3));
      // Migrated process initiates a long send too.
      c.send(buf.data(), buf.size(), dtype::byte_type(), 1, 1);
    } else {
      c.recv(buf.data(), buf.size(), dtype::byte_type(), 2, 1);
      for (std::size_t i = 0; i < buf.size(); i += 101)
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(i * 3));
    }
    c.barrier();
  });
}

TEST(Migrate, MigrateBackAndForth) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    for (int round = 0; round < 3; ++round) {
      c.barrier();
      if (c.rank() == 1)
        w.migrate(round % 2 == 0 ? 6 : 1);
      else
        w.net().engine().sleep(2 * sim::kMs);
      std::uint32_t v = static_cast<std::uint32_t>(100 + round);
      if (c.rank() == 0) {
        c.send(&v, 4, dtype::byte_type(), 1, round);
      } else {
        std::uint32_t got = 0;
        c.recv(&got, 4, dtype::byte_type(), 0, round);
        EXPECT_EQ(got, 100u + static_cast<std::uint32_t>(round));
      }
    }
    c.barrier();
  });
}

}  // namespace
}  // namespace oqs
