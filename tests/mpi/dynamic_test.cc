// MPI-2 dynamic process management — the paper's first objective: processes
// join the Quadrics network at arbitrary times by claiming contexts in the
// system-wide capability, and wire up with the existing pool via the RTE.
#include <gtest/gtest.h>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

TEST(Dynamic, SpawnedProcessTalksToParents) {
  TestBed bed;
  int child_ran = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    mpi::Communicator merged = w.spawn_merge(1, [&](mpi::World& cw) {
      auto& mc = cw.comm();
      EXPECT_EQ(mc.size(), 3);
      EXPECT_EQ(mc.rank(), 2);
      // Child receives from each parent and echoes the sum.
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      mc.recv(&a, 4, dtype::byte_type(), 0, 1);
      mc.recv(&b, 4, dtype::byte_type(), 1, 1);
      std::uint32_t sum = a + b;
      mc.send(&sum, 4, dtype::byte_type(), 0, 2);
      mc.barrier();
      ++child_ran;
    });
    EXPECT_EQ(merged.size(), 3);
    EXPECT_EQ(merged.rank(), c.rank());
    std::uint32_t v = c.rank() == 0 ? 11u : 31u;
    merged.send(&v, 4, dtype::byte_type(), 2, 1);
    if (c.rank() == 0) {
      std::uint32_t sum = 0;
      merged.recv(&sum, 4, dtype::byte_type(), 2, 2);
      EXPECT_EQ(sum, 42u);
    }
    merged.barrier();
  });
  EXPECT_EQ(child_ran, 1);
}

TEST(Dynamic, SpawnMultipleChildrenLargePayload) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    mpi::Communicator merged = w.spawn_merge(3, [&](mpi::World& cw) {
      auto& mc = cw.comm();
      EXPECT_EQ(mc.size(), 5);
      // Each child sends 100KB (rendezvous path) to parent rank 0.
      std::vector<std::uint8_t> data(100000,
                                     static_cast<std::uint8_t>(mc.rank()));
      mc.send(data.data(), data.size(), dtype::byte_type(), 0, 9);
      mc.barrier();
    });
    if (merged.rank() == 0) {
      for (int child = 2; child < 5; ++child) {
        std::vector<std::uint8_t> buf(100000, 0);
        mpi::RecvStatus st;
        merged.recv(buf.data(), buf.size(), dtype::byte_type(), mpi::kAnySource,
                    9, &st);
        EXPECT_GE(st.source, 2);
        EXPECT_EQ(buf, std::vector<std::uint8_t>(
                           100000, static_cast<std::uint8_t>(st.source)));
      }
    }
    merged.barrier();
  });
}

TEST(Dynamic, SequentialSpawnsGetFreshGids) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    mpi::Communicator m1 = w.spawn_merge(1, [](mpi::World& cw) {
      std::uint32_t v = 1;
      cw.comm().send(&v, 4, dtype::byte_type(), 0, 0);
      cw.comm().barrier();
    });
    mpi::Communicator m2 = w.spawn_merge(1, [](mpi::World& cw) {
      std::uint32_t v = 2;
      cw.comm().send(&v, 4, dtype::byte_type(), 0, 0);
      cw.comm().barrier();
    });
    EXPECT_NE(m1.context_id(), m2.context_id());
    if (w.rank() == 0) {
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      m1.recv(&a, 4, dtype::byte_type(), 2, 0);
      m2.recv(&b, 4, dtype::byte_type(), 2, 0);
      EXPECT_EQ(a, 1u);
      EXPECT_EQ(b, 2u);
    }
    m1.barrier();
    m2.barrier();
  });
}

TEST(Dynamic, ContextsAreReusedAfterFinalize) {
  // A process pool that leaves releases its Elan contexts; a later job can
  // claim them (checkpoint/restart support, paper §3/§4.1).
  sim::Engine engine;
  ModelParams params;
  elan4::QsNet net(engine, params, 2, /*contexts_per_node=*/4);
  rte::Runtime rt(engine, net);

  rt.launch(2, [&](rte::Env& env) {
    env.job = "first";
    mpi::World w(env, net);
    w.comm().barrier();
    w.finalize();
  });
  engine.run();
  const int live_after_first = net.capability().live_count();
  EXPECT_EQ(live_after_first, 0);

  rt.launch(2, [&](rte::Env& env) {
    env.job = "second";
    mpi::World w(env, net);
    std::uint32_t v = 5;
    if (w.rank() == 0) w.comm().send(&v, 4, dtype::byte_type(), 1, 0);
    else {
      std::uint32_t got = 0;
      w.comm().recv(&got, 4, dtype::byte_type(), 0, 0);
      EXPECT_EQ(got, 5u);
    }
    w.comm().barrier();
  });
  engine.run();
  EXPECT_EQ(net.capability().live_count(), 0);
}

TEST(Dynamic, SpawnOntoSpecificNodes) {
  TestBed bed(8);
  bed.run_mpi(2, [&](mpi::World& w) {
    mpi::Communicator merged = w.spawn_merge(
        2,
        [](mpi::World& cw) {
          // Children run on nodes 6 and 7.
          EXPECT_GE(cw.env().node, 6);
          cw.comm().barrier();
        },
        /*nodes=*/{6, 7});
    merged.barrier();
  });
}

}  // namespace
}  // namespace oqs
