// Concurrent multi-network support: TCP-only operation, PML scheduling
// across Elan4 + TCP, and the multirail Elan4 extension.
#include <gtest/gtest.h>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

TEST(MultiNet, TcpOnlyStackMovesData) {
  mpi::Options opts;
  opts.use_elan4 = false;
  opts.use_tcp = true;
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    for (std::size_t bytes : {16ul, 60000ul, 300000ul}) {  // eager and chunked
      std::vector<std::uint8_t> buf(bytes, static_cast<std::uint8_t>(bytes >> 8));
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
      } else {
        std::vector<std::uint8_t> got(bytes, 0);
        c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
        EXPECT_EQ(got, buf);
      }
    }
    c.barrier();
  }, opts);
}

TEST(MultiNet, TcpIsMuchSlowerThanElan4) {
  auto measure = [](bool tcp) {
    mpi::Options opts;
    opts.use_elan4 = !tcp;
    opts.use_tcp = tcp;
    TestBed bed;
    double us = 0;
    bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      std::uint32_t v = 0;
      c.barrier();
      const sim::Time t0 = w.net().engine().now();
      for (int i = 0; i < 30; ++i) {
        if (c.rank() == 0) {
          c.send(&v, 4, dtype::byte_type(), 1, 0);
          c.recv(&v, 4, dtype::byte_type(), 1, 0);
        } else {
          c.recv(&v, 4, dtype::byte_type(), 0, 0);
          c.send(&v, 4, dtype::byte_type(), 0, 0);
        }
      }
      if (c.rank() == 0) us = sim::to_us(w.net().engine().now() - t0) / 60.0;
      c.barrier();
    }, opts);
    return us;
  };
  const double elan = measure(false);
  const double tcp = measure(true);
  // The motivation of the paper: kernel TCP is an order of magnitude off.
  EXPECT_GT(tcp, 8 * elan);
}

TEST(MultiNet, RoundRobinSchedulesAcrossBothNetworks) {
  mpi::Options opts;
  opts.use_elan4 = true;
  opts.use_tcp = true;
  opts.sched = pml::Pml::SchedPolicy::kRoundRobin;
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    // 20 messages alternate PTLs; all must arrive correctly and in order.
    if (c.rank() == 0) {
      for (int i = 0; i < 20; ++i) {
        std::vector<std::uint8_t> buf(5000, static_cast<std::uint8_t>(i));
        c.send(buf.data(), buf.size(), dtype::byte_type(), 1, 4);
      }
    } else {
      for (int i = 0; i < 20; ++i) {
        std::vector<std::uint8_t> buf(5000, 0);
        c.recv(buf.data(), buf.size(), dtype::byte_type(), 0, 4);
        EXPECT_EQ(buf, std::vector<std::uint8_t>(5000, static_cast<std::uint8_t>(i)))
            << "message " << i;
      }
    }
    c.barrier();
  }, opts);
}

TEST(MultiNet, BestWeightPrefersElan4) {
  mpi::Options opts;
  opts.use_elan4 = true;
  opts.use_tcp = true;
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::uint32_t v = 7;
    c.barrier();
    const sim::Time t0 = w.net().engine().now();
    if (c.rank() == 0) {
      c.send(&v, 4, dtype::byte_type(), 1, 0);
      c.recv(&v, 4, dtype::byte_type(), 1, 0);
    } else {
      c.recv(&v, 4, dtype::byte_type(), 0, 0);
      c.send(&v, 4, dtype::byte_type(), 0, 0);
    }
    const double us = sim::to_us(w.net().engine().now() - t0);
    // TCP alone would take >60us; Elan4 must have been chosen.
    EXPECT_LT(us, 30.0);
    c.barrier();
  }, opts);
}

TEST(MultiNet, MultirailStripesLargeMessages) {
  mpi::Options opts;
  opts.elan4.rails = 2;
  TestBed bed(8, /*rails=*/2);
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t bytes = 1 << 20;
    std::vector<std::uint8_t> buf(bytes);
    for (std::size_t i = 0; i < bytes; ++i)
      buf[i] = static_cast<std::uint8_t>(i * 7);
    if (c.rank() == 0) {
      c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
    } else {
      std::vector<std::uint8_t> got(bytes, 0);
      c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
      EXPECT_EQ(got, buf);
    }
    c.barrier();
  }, opts);
}

TEST(MultiNet, MultirailImprovesBandwidth) {
  auto measure = [](int rails) {
    mpi::Options opts;
    opts.elan4.rails = rails;
    TestBed bed(8, 2);
    bed.pin_transport = true;  // explicit 1-rail vs 2-rail comparison
    double mbps = 0;
    bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      const std::size_t bytes = 1 << 20;
      std::vector<std::uint8_t> buf(bytes, 1);
      c.barrier();
      const sim::Time t0 = w.net().engine().now();
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
        std::uint8_t fin = 0;
        c.recv(&fin, 1, dtype::byte_type(), 1, 1);
      } else {
        c.recv(buf.data(), bytes, dtype::byte_type(), 0, 0);
        std::uint8_t fin = 1;
        c.send(&fin, 1, dtype::byte_type(), 0, 1);
      }
      if (c.rank() == 0)
        mbps = static_cast<double>(bytes) / sim::to_us(w.net().engine().now() - t0);
      c.barrier();
    }, opts);
    return mbps;
  };
  const double one = measure(1);
  const double two = measure(2);
  // Two rails should clearly beat one on a 1MB transfer (PCI-X is shared
  // per NIC in our model, and each rail has its own NIC).
  EXPECT_GT(two, one * 1.4);
}

}  // namespace
}  // namespace oqs
