// Extended MPI API: sendrecv, reduce/allgather/scatter, waitall/waitany,
// probe/iprobe, communicator split.
#include <gtest/gtest.h>

#include <numeric>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

TEST(Api, SendrecvRingShiftDoesNotDeadlock) {
  TestBed bed;
  bed.run_mpi(8, [&](mpi::World& w) {
    auto& c = w.comm();
    const int n = c.size();
    // Every rank simultaneously shifts a 4KB payload to the right.
    std::vector<std::uint8_t> out(4096, static_cast<std::uint8_t>(c.rank()));
    std::vector<std::uint8_t> in(4096, 0xFF);
    c.sendrecv(out.data(), out.size(), (c.rank() + 1) % n, 0, in.data(),
               in.size(), (c.rank() - 1 + n) % n, 0, dtype::byte_type());
    EXPECT_EQ(in, std::vector<std::uint8_t>(
                      4096, static_cast<std::uint8_t>((c.rank() - 1 + n) % n)));
  });
}

TEST(Api, ReduceSumToEachRoot) {
  TestBed bed;
  bed.run_mpi(5, [&](mpi::World& w) {
    auto& c = w.comm();
    for (int root = 0; root < c.size(); ++root) {
      double x = static_cast<double>(c.rank() + 1);
      double sum = -1;
      c.reduce_sum(&x, &sum, 1, root);
      if (c.rank() == root) {
        EXPECT_DOUBLE_EQ(sum, 15.0);
      }
    }
  });
}

TEST(Api, AllgatherRingDistributesEverything) {
  TestBed bed;
  bed.run_mpi(6, [&](mpi::World& w) {
    auto& c = w.comm();
    std::uint64_t mine = 0x1000 + static_cast<std::uint64_t>(c.rank());
    std::vector<std::uint64_t> all(static_cast<std::size_t>(c.size()), 0);
    c.allgather(&mine, sizeof(mine), all.data());
    for (int r = 0; r < c.size(); ++r)
      EXPECT_EQ(all[static_cast<std::size_t>(r)],
                0x1000u + static_cast<std::uint64_t>(r));
  });
}

TEST(Api, ScatterDistributesPieces) {
  TestBed bed;
  bed.run_mpi(4, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint32_t> all;
    if (c.rank() == 2)
      for (int r = 0; r < 4; ++r) all.push_back(static_cast<std::uint32_t>(r * r));
    std::uint32_t mine = 999;
    c.scatter(all.data(), sizeof(std::uint32_t), &mine, /*root=*/2);
    EXPECT_EQ(mine, static_cast<std::uint32_t>(c.rank() * c.rank()));
  });
}

class AlltoallNp : public ::testing::TestWithParam<int> {};

TEST_P(AlltoallNp, PersonalizedExchange) {
  const int np = GetParam();
  TestBed bed;
  bed.run_mpi(np, [&](mpi::World& w) {
    auto& c = w.comm();
    const int n = c.size();
    std::vector<std::uint32_t> out(static_cast<std::size_t>(n));
    std::vector<std::uint32_t> in(static_cast<std::size_t>(n), 0);
    for (int p = 0; p < n; ++p)
      out[static_cast<std::size_t>(p)] =
          static_cast<std::uint32_t>(c.rank() * 100 + p);
    c.alltoall(out.data(), sizeof(std::uint32_t), in.data());
    for (int p = 0; p < n; ++p)
      EXPECT_EQ(in[static_cast<std::size_t>(p)],
                static_cast<std::uint32_t>(p * 100 + c.rank()));
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, AlltoallNp, ::testing::Values(2, 3, 4, 8));

TEST(Api, WaitAllAndWaitAny) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() == 0) {
      std::vector<std::vector<std::uint8_t>> bufs;
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < 6; ++i) {
        bufs.emplace_back(1000, static_cast<std::uint8_t>(i));
        reqs.push_back(c.isend(bufs.back().data(), 1000, dtype::byte_type(), 1, i));
      }
      mpi::wait_all(reqs);
    } else {
      std::vector<std::vector<std::uint8_t>> bufs(6, std::vector<std::uint8_t>(1000));
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < 6; ++i)
        reqs.push_back(c.irecv(bufs[static_cast<std::size_t>(i)].data(), 1000,
                               dtype::byte_type(), 0, i));
      // Drain via wait_any, marking each as done.
      std::vector<bool> seen(6, false);
      for (int k = 0; k < 6; ++k) {
        const std::size_t idx = mpi::wait_any(reqs);
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
        EXPECT_EQ(bufs[idx][0], static_cast<std::uint8_t>(idx));
        reqs[idx] = mpi::Request();  // consume
      }
    }
    c.barrier();
  });
}

TEST(Api, ProbeSeesEnvelopeWithoutConsuming) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() == 0) {
      std::vector<std::uint8_t> msg(333, 0x5A);
      c.send(msg.data(), msg.size(), dtype::byte_type(), 1, 42);
    } else {
      mpi::RecvStatus st;
      c.probe(mpi::kAnySource, mpi::kAnyTag, &st);
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 42);
      EXPECT_EQ(st.bytes, 333u);
      // Message is still there: allocate exactly and receive.
      std::vector<std::uint8_t> buf(st.bytes);
      c.recv(buf.data(), buf.size(), dtype::byte_type(), st.source, st.tag);
      EXPECT_EQ(buf, std::vector<std::uint8_t>(333, 0x5A));
      // Nothing further pending on that tag (the peer's barrier traffic may
      // already be queued, so don't wildcard here).
      EXPECT_FALSE(c.iprobe(mpi::kAnySource, 42));
    }
    c.barrier();
  });
}

TEST(Api, IprobeNonblockingMiss) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    EXPECT_FALSE(c.iprobe(mpi::kAnySource, 7));
    c.barrier();
  });
}

TEST(Api, SplitPartitionsByColor) {
  TestBed bed;
  bed.run_mpi(8, [&](mpi::World& w) {
    auto& c = w.comm();
    // Evens and odds form separate communicators, reverse-ordered by key.
    mpi::Communicator sub = c.split(c.rank() % 2, -c.rank());
    EXPECT_EQ(sub.size(), 4);
    EXPECT_NE(sub.context_id(), c.context_id());
    // Highest old rank gets sub-rank 0 (key = -rank).
    EXPECT_EQ(sub.rank(), (6 + (c.rank() % 2) - c.rank()) / 2) << c.rank();
    // Traffic stays within the split: sum ranks over the sub-communicator.
    double mine = c.rank();
    double sum = 0;
    sub.allreduce_sum(&mine, &sum, 1);
    EXPECT_DOUBLE_EQ(sum, c.rank() % 2 ? 16.0 : 12.0);  // 1+3+5+7 / 0+2+4+6
    c.barrier();
  });
}

TEST(Api, SplitSubgroupsRunConcurrently) {
  TestBed bed;
  bed.run_mpi(8, [&](mpi::World& w) {
    auto& c = w.comm();
    mpi::Communicator sub = c.split(c.rank() / 4, c.rank());
    // Each half runs its own broadcast with different payloads.
    std::uint32_t v = sub.rank() == 0 ? static_cast<std::uint32_t>(1000 + c.rank())
                                      : 0;
    sub.bcast(&v, 4, dtype::byte_type(), 0);
    EXPECT_EQ(v, 1000u + static_cast<std::uint32_t>(c.rank() < 4 ? 0 : 4));
    c.barrier();
  });
}

}  // namespace
}  // namespace oqs
