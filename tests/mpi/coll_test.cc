// Collectives framework: every selectable algorithm against a serial
// oracle (deliberately on non-power-of-two communicators), in-place
// aliasing conformance, determinism under same-seed replay, behaviour
// under fault injection with two rails, and the hwcoll event-table leak
// regression.
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "mpi/hwcoll.h"
#include "obs/metrics.h"
#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

// Force one collectives mode. "auto" leaves everything at kAuto (and is
// then still subject to the OQS_TEST_COLL CI hook, like any other test).
mpi::Options coll_opts(const std::string& mode) {
  using namespace mpi::coll;
  mpi::Options o;
  if (mode == "p2p") {
    o.coll.barrier = BarrierAlg::kDissemination;
    o.coll.bcast = BcastAlg::kBinomial;
    o.coll.reduce = ReduceAlg::kBinomial;
    o.coll.allreduce = AllreduceAlg::kRecursiveDoubling;
    o.coll.hier = false;
    o.coll.nic = false;
  } else if (mode == "rsag") {
    o.coll.allreduce = AllreduceAlg::kRsAg;
    o.coll.hier = false;
    o.coll.nic = false;
  } else if (mode == "linear") {
    o.coll.reduce = ReduceAlg::kLinear;
    o.coll.hier = false;
    o.coll.nic = false;
  } else if (mode == "nic") {
    o.coll.barrier = BarrierAlg::kNic;
    o.coll.allreduce = AllreduceAlg::kNic;
    o.coll.hier = false;
  } else if (mode == "hier") {
    o.coll.barrier = BarrierAlg::kHier;
    o.coll.bcast = BcastAlg::kHier;
    o.coll.reduce = ReduceAlg::kHier;
    o.coll.allreduce = AllreduceAlg::kHier;
    o.coll.nic = false;
  } else if (mode == "hiernic") {
    o.coll.barrier = BarrierAlg::kHier;
    o.coll.bcast = BcastAlg::kHier;
    o.coll.reduce = ReduceAlg::kHier;
    o.coll.allreduce = AllreduceAlg::kHier;
  }
  return o;
}

// Hierarchical modes get a 4-node bed so communicators actually share
// nodes (np > 4 puts two ranks on some nodes — exactly the paper's
// dual-CPU testbed shape); the flat modes run on the default 8-node bed.
int bed_nodes(const std::string& mode) {
  return mode == "hier" || mode == "hiernic" ? 4 : 8;
}

// Every algorithm, every non-power-of-two size (plus 8 for the hier modes'
// leaders-tree shape), one body exercising all four routed collectives
// against serially computed expectations.
void run_conformance(const std::string& mode, int np, ModelParams params = {},
                     int rails = 1, bool reliability = false) {
  TestBed bed(bed_nodes(mode), rails, params);
  mpi::Options opts = coll_opts(mode);
  // Fault-injection runs need the end-to-end reliability protocol: without
  // it frames ride the guaranteed class (wire faults never apply) and a
  // corrupted payload would land undetected.
  opts.elan4.reliability = reliability;
  bed.run_mpi(
      np,
      [&](mpi::World& w) {
        auto& c = w.comm();
        const double ranksum = static_cast<double>(np) * (np + 1) / 2.0;
        for (int iter = 0; iter < 3; ++iter) {
          c.barrier();
          // Small allreduce (fits the NIC slot) with an odd count.
          {
            std::vector<double> in(13), out(13);
            for (std::size_t i = 0; i < in.size(); ++i)
              in[i] = static_cast<double>(c.rank() + 1) +
                      static_cast<double>(i * iter);
            c.allreduce_sum(in.data(), out.data(), in.size());
            for (std::size_t i = 0; i < out.size(); ++i)
              ASSERT_DOUBLE_EQ(out[i],
                               ranksum + np * static_cast<double>(i * iter));
          }
          // Large allreduce (past coll_rsag_min_bytes and the NIC ceiling:
          // exercises the rsag reference / the forced-NIC fallback).
          {
            std::vector<double> in(701), out(701);
            for (std::size_t i = 0; i < in.size(); ++i)
              in[i] = static_cast<double>(c.rank() + 1) * 0.5;
            c.allreduce_sum(in.data(), out.data(), in.size());
            for (std::size_t i = 0; i < out.size(); ++i)
              ASSERT_DOUBLE_EQ(out[i], ranksum * 0.5);
          }
          // Reduce and bcast from every root.
          for (int root = 0; root < np; ++root) {
            std::vector<double> in(9), out(9, -1.0);
            for (std::size_t i = 0; i < in.size(); ++i)
              in[i] = static_cast<double>(c.rank()) + static_cast<double>(i);
            c.reduce_sum(in.data(), out.data(), in.size(), root);
            if (c.rank() == root) {
              const double base = ranksum - np;  // sum of ranks 0..np-1
              for (std::size_t i = 0; i < out.size(); ++i)
                ASSERT_DOUBLE_EQ(out[i], base + np * static_cast<double>(i));
            }
            std::vector<std::uint8_t> buf(777);
            if (c.rank() == root)
              for (std::size_t i = 0; i < buf.size(); ++i)
                buf[i] = static_cast<std::uint8_t>(root * 31 + i);
            c.bcast(buf.data(), buf.size(), dtype::byte_type(), root);
            for (std::size_t i = 0; i < buf.size(); ++i)
              ASSERT_EQ(buf[i], static_cast<std::uint8_t>(root * 31 + i));
          }
        }
      },
      opts);
}

class CollModeNp
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(CollModeNp, MatchesOracle) {
  run_conformance(std::get<0>(GetParam()), std::get<1>(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(
    Algorithms, CollModeNp,
    ::testing::Combine(::testing::Values("p2p", "rsag", "linear", "nic",
                                         "hier", "hiernic"),
                       ::testing::Values(3, 5, 6, 7, 8)));

// The barrier property (nobody leaves before the last rank enters) per
// forced algorithm, with staggered arrivals.
class CollBarrierMode : public ::testing::TestWithParam<std::string> {};

TEST_P(CollBarrierMode, Synchronizes) {
  const std::string mode = GetParam();
  const int np = 7;
  TestBed bed(bed_nodes(mode));
  std::vector<sim::Time> before(np), after(np);
  bed.run_mpi(
      np,
      [&](mpi::World& w) {
        auto& c = w.comm();
        w.net().engine().sleep(static_cast<sim::Time>(c.rank()) * 37 * sim::kUs);
        before[static_cast<std::size_t>(c.rank())] = w.net().engine().now();
        c.barrier();
        after[static_cast<std::size_t>(c.rank())] = w.net().engine().now();
      },
      coll_opts(mode));
  sim::Time last_enter = 0;
  for (sim::Time t : before) last_enter = std::max(last_enter, t);
  for (sim::Time t : after) EXPECT_GE(t, last_enter);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CollBarrierMode,
                         ::testing::Values("p2p", "nic", "hier", "hiernic"));

// In-place conformance: send == recv must work for reduce and allreduce on
// every algorithm, including the legacy linear reduce whose original root
// memcpy was the aliasing bug this PR fixes.
class CollInPlace : public ::testing::TestWithParam<std::string> {};

TEST_P(CollInPlace, ReduceAndAllreduceAlias) {
  const std::string mode = GetParam();
  const int np = 5;
  TestBed bed(bed_nodes(mode));
  bed.run_mpi(
      np,
      [&](mpi::World& w) {
        auto& c = w.comm();
        const double ranksum = static_cast<double>(np) * (np + 1) / 2.0;
        for (int root = 0; root < np; ++root) {
          std::vector<double> buf(11);
          for (std::size_t i = 0; i < buf.size(); ++i)
            buf[i] = static_cast<double>(c.rank() + 1);
          c.reduce_sum(buf.data(), buf.data(), buf.size(), root);
          if (c.rank() == root)
            for (double v : buf) ASSERT_DOUBLE_EQ(v, ranksum);
        }
        std::vector<double> buf(11);
        for (std::size_t i = 0; i < buf.size(); ++i)
          buf[i] = static_cast<double>(c.rank() + 1) * 2.0;
        c.allreduce_sum(buf.data(), buf.data(), buf.size());
        for (double v : buf) ASSERT_DOUBLE_EQ(v, ranksum * 2.0);
      },
      coll_opts(mode));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CollInPlace,
                         ::testing::Values("p2p", "rsag", "linear", "nic",
                                           "hier", "hiernic"));

// Collectives on a split (sub)communicator: the group indirection must map
// tree/ring positions back to parent-comm ranks correctly, per algorithm.
class CollSubComm : public ::testing::TestWithParam<std::string> {};

TEST_P(CollSubComm, SplitByParity) {
  const std::string mode = GetParam();
  const int np = 7;
  TestBed bed(bed_nodes(mode));
  bed.run_mpi(
      np,
      [&](mpi::World& w) {
        auto& c = w.comm();
        mpi::Communicator sub = c.split(c.rank() % 2, c.rank());
        const int sn = sub.size();
        const double subsum = static_cast<double>(sn) * (sn + 1) / 2.0;
        std::vector<double> in(5), out(5);
        for (std::size_t i = 0; i < in.size(); ++i)
          in[i] = static_cast<double>(sub.rank() + 1);
        sub.allreduce_sum(in.data(), out.data(), in.size());
        for (double v : out) ASSERT_DOUBLE_EQ(v, subsum);
        sub.barrier();
        c.barrier();
      },
      coll_opts(mode));
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CollSubComm,
                         ::testing::Values("p2p", "nic", "hier"));

// Fault injection with two rails: the reference algorithms ride the PTL's
// sequenced (recovered) stream, and NIC combining-tree frames are
// loss-protected by construction, so results must stay exact.
class CollFaults : public ::testing::TestWithParam<std::string> {};

TEST_P(CollFaults, ExactUnderInjectedFaults) {
  ModelParams p;
  p.fault_drop_prob = 0.02;
  p.fault_duplicate_prob = 0.01;
  p.fault_delay_prob = 0.02;
  p.fault_corrupt_prob = 0.01;
  p.fault_seed = 42;
  run_conformance(GetParam(), 7, p, /*rails=*/2, /*reliability=*/true);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CollFaults,
                         ::testing::Values("p2p", "nic", "hier", "hiernic"));

// Same-seed replay determinism: two identical runs of the same algorithm
// must produce bit-identical results AND identical completion timestamps.
class CollDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(CollDeterminism, SameSeedSameDigest) {
  const std::string mode = GetParam();
  const int np = 6;
  auto digest_run = [&]() {
    std::uint64_t digest = 1469598103934665603ULL;  // FNV-1a
    auto fold = [&digest](const void* p, std::size_t n) {
      const auto* b = static_cast<const std::uint8_t*>(p);
      for (std::size_t i = 0; i < n; ++i) {
        digest ^= b[i];
        digest *= 1099511628211ULL;
      }
    };
    TestBed bed(bed_nodes(mode));
    bed.run_mpi(
        np,
        [&](mpi::World& w) {
          auto& c = w.comm();
          for (int iter = 0; iter < 4; ++iter) {
            std::vector<double> in(17), out(17);
            for (std::size_t i = 0; i < in.size(); ++i)
              in[i] = static_cast<double>((c.rank() + 1) * (iter + 1)) +
                      static_cast<double>(i) * 0.25;
            c.allreduce_sum(in.data(), out.data(), in.size());
            c.barrier();
            const sim::Time now = w.net().engine().now();
            fold(out.data(), out.size() * sizeof(double));
            fold(&now, sizeof(now));
          }
        },
        coll_opts(mode));
    return digest;
  };
  const std::uint64_t first = digest_run();
  const std::uint64_t second = digest_run();
  EXPECT_EQ(first, second);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, CollDeterminism,
                         ::testing::Values("p2p", "rsag", "nic", "hier",
                                           "hiernic"));

// Regression for the hwcoll event-table leak: try_hw_bcast allocated two
// device events per call and freed them on no path (including the !agree
// early return), so 10k broadcasts grew the per-context event table by
// ~20k entries. With free_event() on every path the table stays bounded.
TEST(HwcollLeak, EventTableBoundedOver10kBcasts) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::uint64_t payload = 0;
    for (int i = 0; i < 10000; ++i) {
      payload = static_cast<std::uint64_t>(i);
      ASSERT_TRUE(mpi::bcast_auto(c, w, &payload, sizeof(payload), 0));
      ASSERT_EQ(payload, static_cast<std::uint64_t>(i));
    }
    auto* ptl = w.elan4_ptl();
    ASSERT_NE(ptl, nullptr);
    elan4::Elan4Device& dev = ptl->device();
    // The PTL itself owns a handful of events; the per-call pair must not
    // accumulate. Generous bounds: anything even loosely proportional to
    // the 10k calls is a leak.
    EXPECT_LE(dev.nic().event_table_live(dev.context()), 32u);
    EXPECT_LE(dev.nic().event_table_size(dev.context()), 64u);
    c.barrier();
  });
}

// Same bound for the !agree early-return path: rank 1 disturbs its event
// allocation history first, so every try_hw_bcast disagrees and falls back.
TEST(HwcollLeak, DisagreePathAlsoBounded) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() == 1) {
      // Asymmetric extra allocation: indices stop matching across ranks.
      auto* ptl = w.elan4_ptl();
      ASSERT_NE(ptl, nullptr);
      (void)ptl->device().alloc_event("skew");
    }
    std::uint32_t v = 7;
    for (int i = 0; i < 2000; ++i)
      EXPECT_FALSE(mpi::bcast_auto(c, w, &v, sizeof(v), 0));
    EXPECT_EQ(v, 7u);
    auto* ptl = w.elan4_ptl();
    elan4::Elan4Device& dev = ptl->device();
    EXPECT_LE(dev.nic().event_table_live(dev.context()), 32u);
    EXPECT_LE(dev.nic().event_table_size(dev.context()), 64u);
    c.barrier();
  });
}

// Slow soak (own ctest entry, labelled slow): long mixed-collective runs
// per mode, including communicator churn, to shake out slot-ring and
// generation-counter reuse bugs that only appear after many rounds.
TEST(CollSoak, MixedCollectivesManyRounds) {
  for (const std::string mode : {"p2p", "nic", "hier", "hiernic"}) {
    const int np = 8;
    TestBed bed(bed_nodes(mode));
    bed.run_mpi(
        np,
        [&](mpi::World& w) {
          auto& c = w.comm();
          const double ranksum = static_cast<double>(np) * (np + 1) / 2.0;
          for (int iter = 0; iter < 150; ++iter) {
            std::vector<double> in(1 + (iter % 40)), out(in.size());
            for (std::size_t i = 0; i < in.size(); ++i)
              in[i] = static_cast<double>(c.rank() + 1);
            c.allreduce_sum(in.data(), out.data(), in.size());
            for (double v : out) ASSERT_DOUBLE_EQ(v, ranksum);
            if (iter % 3 == 0) c.barrier();
            if (iter % 5 == 0) {
              const int root = iter % np;
              std::vector<double> r(7, static_cast<double>(c.rank()));
              c.reduce_sum(r.data(), r.data(), r.size(), root);
              if (c.rank() == root)
                for (double v : r) ASSERT_DOUBLE_EQ(v, ranksum - np);
            }
            if (iter % 50 == 10) {
              mpi::Communicator sub = c.split(c.rank() % 2, c.rank());
              sub.barrier();
              std::vector<double> s(3, 1.0);
              sub.allreduce_sum(s.data(), s.data(), s.size());
              for (double v : s)
                ASSERT_DOUBLE_EQ(v, static_cast<double>(sub.size()));
            }
          }
          c.barrier();
        },
        coll_opts(mode));
  }
}

}  // namespace
}  // namespace oqs
