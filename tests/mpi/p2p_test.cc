// Point-to-point semantics over the full stack (MPI -> PML -> PTL/Elan4 ->
// simulated NIC/fabric): eager and rendezvous paths, both RDMA schemes,
// ordering, wildcards, nonblocking ops.
#include <gtest/gtest.h>

#include <numeric>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed) {
  std::vector<std::uint8_t> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::uint8_t>(seed + i * 131);
  return v;
}

void pingpong_payload_roundtrip(mpi::Options opts, std::size_t bytes) {
  TestBed bed;
  int verified = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> buf =
        c.rank() == 0 ? pattern(bytes, 7) : std::vector<std::uint8_t>(bytes, 0);
    if (c.rank() == 0) {
      c.send(buf.data(), bytes, dtype::byte_type(), 1, 99);
      std::vector<std::uint8_t> back(bytes, 0);
      c.recv(back.data(), bytes, dtype::byte_type(), 1, 100);
      EXPECT_EQ(back, pattern(bytes, 7));
      ++verified;
    } else {
      c.recv(buf.data(), bytes, dtype::byte_type(), 0, 99);
      EXPECT_EQ(buf, pattern(bytes, 7));
      c.send(buf.data(), bytes, dtype::byte_type(), 0, 100);
      ++verified;
    }
    c.barrier();
  }, opts);
  EXPECT_EQ(verified, 2);
}

struct SchemeCase {
  ptl_elan4::Scheme scheme;
  bool chained;
  std::size_t bytes;
};

class P2PSchemes : public ::testing::TestWithParam<SchemeCase> {};

TEST_P(P2PSchemes, PayloadRoundTrips) {
  const SchemeCase& sc = GetParam();
  mpi::Options opts;
  opts.elan4.scheme = sc.scheme;
  opts.elan4.chained_fin = sc.chained;
  pingpong_payload_roundtrip(opts, sc.bytes);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndSchemes, P2PSchemes,
    ::testing::Values(
        // Eager path (<= 1984B): scheme-independent, but run under both.
        SchemeCase{ptl_elan4::Scheme::kRdmaRead, true, 0},
        SchemeCase{ptl_elan4::Scheme::kRdmaRead, true, 1},
        SchemeCase{ptl_elan4::Scheme::kRdmaRead, true, 64},
        SchemeCase{ptl_elan4::Scheme::kRdmaRead, true, 1984},
        SchemeCase{ptl_elan4::Scheme::kRdmaWrite, true, 1984},
        // Rendezvous threshold crossing and long messages, both schemes,
        // with and without the chained FIN.
        SchemeCase{ptl_elan4::Scheme::kRdmaRead, true, 1985},
        SchemeCase{ptl_elan4::Scheme::kRdmaRead, true, 4096},
        SchemeCase{ptl_elan4::Scheme::kRdmaRead, false, 4096},
        SchemeCase{ptl_elan4::Scheme::kRdmaRead, true, 65536},
        SchemeCase{ptl_elan4::Scheme::kRdmaRead, true, 1 << 20},
        SchemeCase{ptl_elan4::Scheme::kRdmaWrite, true, 1985},
        SchemeCase{ptl_elan4::Scheme::kRdmaWrite, true, 4096},
        SchemeCase{ptl_elan4::Scheme::kRdmaWrite, false, 4096},
        SchemeCase{ptl_elan4::Scheme::kRdmaWrite, true, 65536},
        SchemeCase{ptl_elan4::Scheme::kRdmaWrite, false, 1 << 20}));

TEST(P2P, InlineRendezvousCarriesPayload) {
  mpi::Options opts;
  opts.inline_rendezvous = true;
  pingpong_payload_roundtrip(opts, 8192);
}

TEST(P2P, MessagesFromOneSenderArriveInOrder) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    constexpr int kN = 40;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        std::uint32_t v = static_cast<std::uint32_t>(i);
        c.send(&v, sizeof(v), dtype::byte_type(), 1, 5);
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        std::uint32_t v = 999;
        c.recv(&v, sizeof(v), dtype::byte_type(), 0, 5);
        EXPECT_EQ(v, static_cast<std::uint32_t>(i));
      }
    }
  });
}

TEST(P2P, MixedSizesInterleaveCorrectly) {
  // Alternating eager and rendezvous messages must still match in order.
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t sizes[] = {8, 100000, 64, 4096, 0, 2000, 1984, 1985};
    if (c.rank() == 0) {
      for (std::size_t s : sizes) {
        auto buf = pattern(s, static_cast<std::uint8_t>(s));
        c.send(buf.data(), s, dtype::byte_type(), 1, 1);
      }
    } else {
      for (std::size_t s : sizes) {
        std::vector<std::uint8_t> buf(s, 0);
        c.recv(buf.data(), s, dtype::byte_type(), 0, 1);
        EXPECT_EQ(buf, pattern(s, static_cast<std::uint8_t>(s))) << s;
      }
    }
  });
}

TEST(P2P, TagsSelectMessages) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() == 0) {
      std::uint32_t a = 111;
      std::uint32_t b = 222;
      c.send(&a, 4, dtype::byte_type(), 1, 10);
      c.send(&b, 4, dtype::byte_type(), 1, 20);
    } else {
      std::uint32_t v = 0;
      // Receive tag 20 first even though tag 10 arrived earlier.
      c.recv(&v, 4, dtype::byte_type(), 0, 20);
      EXPECT_EQ(v, 222u);
      c.recv(&v, 4, dtype::byte_type(), 0, 10);
      EXPECT_EQ(v, 111u);
    }
  });
}

TEST(P2P, WildcardSourceAndTag) {
  TestBed bed;
  bed.run_mpi(3, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() != 0) {
      std::uint32_t v = static_cast<std::uint32_t>(c.rank());
      c.send(&v, 4, dtype::byte_type(), 0, 7 + c.rank());
    } else {
      bool seen[3] = {false, false, false};
      for (int i = 0; i < 2; ++i) {
        std::uint32_t v = 0;
        mpi::RecvStatus st;
        c.recv(&v, 4, dtype::byte_type(), mpi::kAnySource, mpi::kAnyTag, &st);
        EXPECT_EQ(st.source, static_cast<int>(v));
        EXPECT_EQ(st.tag, 7 + static_cast<int>(v));
        seen[v] = true;
      }
      EXPECT_TRUE(seen[1] && seen[2]);
    }
  });
}

TEST(P2P, UnexpectedMessagesMatchLaterPosts) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() == 0) {
      auto big = pattern(50000, 3);
      c.send(big.data(), big.size(), dtype::byte_type(), 1, 42);
      std::uint32_t done = 0;
      c.recv(&done, 4, dtype::byte_type(), 1, 43);
      EXPECT_EQ(done, 1u);
    } else {
      // Let the rendezvous arrive unexpected, then post.
      w.net().engine().sleep(sim::kMs);
      EXPECT_GE(w.pml().unexpected_count(), 0u);
      std::vector<std::uint8_t> buf(50000, 0);
      c.recv(buf.data(), buf.size(), dtype::byte_type(), 0, 42);
      EXPECT_EQ(buf, pattern(50000, 3));
      std::uint32_t done = 1;
      c.send(&done, 4, dtype::byte_type(), 0, 43);
    }
  });
}

TEST(P2P, NonblockingSendRecvOverlap) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    constexpr int kN = 8;
    std::vector<std::vector<std::uint8_t>> bufs;
    std::vector<mpi::Request> reqs;
    if (c.rank() == 0) {
      for (int i = 0; i < kN; ++i) {
        bufs.push_back(pattern(3000 + static_cast<std::size_t>(i) * 1000,
                               static_cast<std::uint8_t>(i)));
        reqs.push_back(c.isend(bufs.back().data(), bufs.back().size(),
                               dtype::byte_type(), 1, i));
      }
    } else {
      for (int i = 0; i < kN; ++i) {
        bufs.emplace_back(3000 + static_cast<std::size_t>(i) * 1000, 0);
        reqs.push_back(c.irecv(bufs.back().data(), bufs.back().size(),
                               dtype::byte_type(), 0, i));
      }
    }
    for (auto& r : reqs) r.wait();
    if (c.rank() == 1) {
      for (int i = 0; i < kN; ++i)
        EXPECT_EQ(bufs[static_cast<std::size_t>(i)],
                  pattern(3000 + static_cast<std::size_t>(i) * 1000,
                          static_cast<std::uint8_t>(i)));
    }
  });
}

TEST(P2P, EagerTruncationReportsStatus) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    if (c.rank() == 0) {
      auto buf = pattern(100, 1);
      c.send(buf.data(), buf.size(), dtype::byte_type(), 1, 1);
    } else {
      std::vector<std::uint8_t> small(40, 0);
      mpi::RecvStatus st;
      c.recv(small.data(), small.size(), dtype::byte_type(), 0, 1, &st);
      EXPECT_EQ(st.status, Status::kTruncate);
      // The bytes that fit arrived intact.
      auto expect = pattern(100, 1);
      expect.resize(40);
      EXPECT_EQ(small, expect);
    }
  });
}

TEST(P2P, AllPairsExchangeOnEightNodes) {
  TestBed bed(8);
  bed.run_mpi(8, [&](mpi::World& w) {
    auto& c = w.comm();
    const int n = c.size();
    std::vector<mpi::Request> reqs;
    std::vector<std::vector<std::uint8_t>> rbufs(static_cast<std::size_t>(n));
    std::vector<std::vector<std::uint8_t>> sbufs(static_cast<std::size_t>(n));
    for (int p = 0; p < n; ++p) {
      if (p == c.rank()) continue;
      auto& rb = rbufs[static_cast<std::size_t>(p)];
      rb.assign(2048, 0);
      reqs.push_back(c.irecv(rb.data(), rb.size(), dtype::byte_type(), p, 0));
    }
    for (int p = 0; p < n; ++p) {
      if (p == c.rank()) continue;
      auto& sb = sbufs[static_cast<std::size_t>(p)];
      sb = pattern(2048, static_cast<std::uint8_t>(c.rank() * 16 + p));
      reqs.push_back(c.isend(sb.data(), sb.size(), dtype::byte_type(), p, 0));
    }
    for (auto& r : reqs) r.wait();
    for (int p = 0; p < n; ++p) {
      if (p == c.rank()) continue;
      EXPECT_EQ(rbufs[static_cast<std::size_t>(p)],
                pattern(2048, static_cast<std::uint8_t>(p * 16 + c.rank())));
    }
    c.barrier();
  });
}

TEST(P2P, SameNodeProcessesCommunicate) {
  TestBed bed(2);
  // 4 processes on 2 nodes: ranks 0,2 on node 0 and 1,3 on node 1.
  bed.run_mpi(4, [&](mpi::World& w) {
    auto& c = w.comm();
    const int partner = c.rank() ^ 2;  // same-node pairs (0,2) and (1,3)
    std::vector<std::uint8_t> buf(5000);
    if (c.rank() < 2) {
      auto data = pattern(5000, static_cast<std::uint8_t>(c.rank()));
      c.send(data.data(), data.size(), dtype::byte_type(), partner, 0);
    } else {
      c.recv(buf.data(), buf.size(), dtype::byte_type(), partner, 0);
      EXPECT_EQ(buf, pattern(5000, static_cast<std::uint8_t>(partner)));
    }
    c.barrier();
  });
}

}  // namespace
}  // namespace oqs
