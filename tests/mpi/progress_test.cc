// Progress machinery: polling vs interrupt vs one/two progress threads, and
// the completion-queue variants (paper §4.3, §6.2, §6.4).
#include <gtest/gtest.h>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

struct ProgressCase {
  ptl_elan4::Progress progress;
  ptl_elan4::Completion completion;
  ptl_elan4::Scheme scheme;
};

class ProgressModes : public ::testing::TestWithParam<ProgressCase> {};

TEST_P(ProgressModes, PingPongSmallAndLarge) {
  const ProgressCase& pc = GetParam();
  mpi::Options opts;
  opts.elan4.progress = pc.progress;
  opts.elan4.completion = pc.completion;
  opts.elan4.scheme = pc.scheme;

  TestBed bed;
  int done = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    for (std::size_t bytes : {4ul, 4096ul, 100000ul}) {
      std::vector<std::uint8_t> buf(bytes, static_cast<std::uint8_t>(bytes));
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
        std::vector<std::uint8_t> back(bytes, 0);
        c.recv(back.data(), bytes, dtype::byte_type(), 1, 0);
        EXPECT_EQ(back, buf);
      } else {
        std::vector<std::uint8_t> got(bytes, 0);
        c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
        c.send(got.data(), bytes, dtype::byte_type(), 0, 0);
      }
    }
    c.barrier();
    ++done;
  }, opts);
  EXPECT_EQ(done, 2);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ProgressModes,
    ::testing::Values(
        ProgressCase{ptl_elan4::Progress::kPolling, ptl_elan4::Completion::kDirectPoll,
                     ptl_elan4::Scheme::kRdmaRead},
        ProgressCase{ptl_elan4::Progress::kPolling, ptl_elan4::Completion::kDirectPoll,
                     ptl_elan4::Scheme::kRdmaWrite},
        ProgressCase{ptl_elan4::Progress::kPolling,
                     ptl_elan4::Completion::kSharedCombined,
                     ptl_elan4::Scheme::kRdmaRead},
        ProgressCase{ptl_elan4::Progress::kPolling,
                     ptl_elan4::Completion::kSharedSeparate,
                     ptl_elan4::Scheme::kRdmaRead},
        ProgressCase{ptl_elan4::Progress::kInterrupt,
                     ptl_elan4::Completion::kSharedCombined,
                     ptl_elan4::Scheme::kRdmaRead},
        ProgressCase{ptl_elan4::Progress::kOneThread,
                     ptl_elan4::Completion::kSharedCombined,
                     ptl_elan4::Scheme::kRdmaRead},
        ProgressCase{ptl_elan4::Progress::kOneThread,
                     ptl_elan4::Completion::kSharedCombined,
                     ptl_elan4::Scheme::kRdmaWrite},
        ProgressCase{ptl_elan4::Progress::kTwoThreads,
                     ptl_elan4::Completion::kSharedSeparate,
                     ptl_elan4::Scheme::kRdmaRead}));

TEST(Progress, LatencyOrderingAcrossModes) {
  // Table 1's qualitative ordering must emerge from the model:
  // polling < interrupt < one-thread < two-thread latency.
  auto measure = [](ptl_elan4::Progress mode) {
    mpi::Options opts;
    opts.elan4.progress = mode;
    opts.elan4.scheme = ptl_elan4::Scheme::kRdmaRead;
    TestBed bed;
    // The interrupt/thread cost ladder only exists when the sole wired PTL
    // can block; a second rail or the TCP PTL forces polling in wait().
    bed.pin_transport = true;
    double us = 0;
    bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      std::uint32_t v = 0;
      constexpr int kIters = 60;
      c.barrier();
      const sim::Time t0 = w.net().engine().now();
      for (int i = 0; i < kIters; ++i) {
        if (c.rank() == 0) {
          c.send(&v, 4, dtype::byte_type(), 1, 0);
          c.recv(&v, 4, dtype::byte_type(), 1, 0);
        } else {
          c.recv(&v, 4, dtype::byte_type(), 0, 0);
          c.send(&v, 4, dtype::byte_type(), 0, 0);
        }
      }
      if (c.rank() == 0)
        us = sim::to_us(w.net().engine().now() - t0) / (2.0 * kIters);
      c.barrier();
    }, opts);
    return us;
  };

  const double poll = measure(ptl_elan4::Progress::kPolling);
  const double irq = measure(ptl_elan4::Progress::kInterrupt);
  const double one = measure(ptl_elan4::Progress::kOneThread);
  const double two = measure(ptl_elan4::Progress::kTwoThreads);
  EXPECT_LT(poll, irq);
  EXPECT_LT(irq, one);
  EXPECT_LT(one, two);
  // Interrupt adds roughly the interrupt latency (~10us paper, ±50%).
  EXPECT_GT(irq - poll, 5.0);
  EXPECT_LT(irq - poll, 25.0);
}

TEST(Progress, DatatypeEngineAddsStartupCost) {
  auto measure = [](bool engine_on) {
    mpi::Options opts;
    opts.elan4.use_dtype_engine = engine_on;
    TestBed bed;
    double us = 0;
    bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      std::uint32_t v = 0;
      constexpr int kIters = 100;
      c.barrier();
      const sim::Time t0 = w.net().engine().now();
      for (int i = 0; i < kIters; ++i) {
        if (c.rank() == 0) {
          c.send(&v, 4, dtype::byte_type(), 1, 0);
          c.recv(&v, 4, dtype::byte_type(), 1, 0);
        } else {
          c.recv(&v, 4, dtype::byte_type(), 0, 0);
          c.send(&v, 4, dtype::byte_type(), 0, 0);
        }
      }
      if (c.rank() == 0)
        us = sim::to_us(w.net().engine().now() - t0) / (2.0 * kIters);
      c.barrier();
    }, opts);
    return us;
  };
  const double off = measure(false);
  const double on = measure(true);
  // Fig. 7: the copy-engine initialization costs ~0.4us one-way.
  EXPECT_NEAR(on - off, 0.4, 0.25);
}

TEST(Progress, ThreadedModeHandlesConcurrentTraffic) {
  mpi::Options opts;
  opts.elan4.progress = ptl_elan4::Progress::kOneThread;
  TestBed bed;
  bed.run_mpi(4, [&](mpi::World& w) {
    auto& c = w.comm();
    // Everyone sends to everyone; progress threads handle arrivals while
    // the main thread blocks in waits.
    std::vector<std::vector<std::uint8_t>> rx(4);
    std::vector<mpi::Request> reqs;
    for (int p = 0; p < 4; ++p) {
      if (p == c.rank()) continue;
      rx[static_cast<std::size_t>(p)].assign(30000, 0);
      reqs.push_back(c.irecv(rx[static_cast<std::size_t>(p)].data(), 30000,
                             dtype::byte_type(), p, 3));
    }
    std::vector<std::uint8_t> tx(30000, static_cast<std::uint8_t>(c.rank()));
    for (int p = 0; p < 4; ++p) {
      if (p == c.rank()) continue;
      reqs.push_back(c.isend(tx.data(), tx.size(), dtype::byte_type(), p, 3));
    }
    for (auto& r : reqs) r.wait();
    for (int p = 0; p < 4; ++p) {
      if (p == c.rank()) continue;
      EXPECT_EQ(rx[static_cast<std::size_t>(p)],
                std::vector<std::uint8_t>(30000, static_cast<std::uint8_t>(p)));
    }
    c.barrier();
  }, opts);
}

}  // namespace
}  // namespace oqs
