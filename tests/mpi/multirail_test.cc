// Multirail striping hardening: rail failover mid-transfer, rail usage
// accounting, and (in the `slow` soak lane) striping under combined frame
// loss and payload corruption.
#include <gtest/gtest.h>

#include "net/fault.h"
#include "ptl/elan4/ptl_elan4.h"
#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

std::vector<std::uint8_t> patterned(std::size_t bytes, std::uint8_t salt) {
  std::vector<std::uint8_t> buf(bytes);
  for (std::size_t i = 0; i < bytes; ++i)
    buf[i] = static_cast<std::uint8_t>(i * 7 + salt);
  return buf;
}

TEST(Multirail, StripingUsesBothRails) {
  mpi::Options opts;
  opts.elan4.rails = 2;
  TestBed bed(8, 2);
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t bytes = 1 << 20;
    const std::vector<std::uint8_t> buf = patterned(bytes, 3);
    if (c.rank() == 0) {
      std::vector<std::uint8_t> out = buf;
      c.send(out.data(), bytes, dtype::byte_type(), 1, 0);
    } else {
      std::vector<std::uint8_t> got(bytes, 0);
      c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
      EXPECT_EQ(got, buf);
      // The receiver pulls each stripe over its own rail: the secondary
      // rail must have carried roughly half the payload.
      ptl_elan4::PtlElan4* rail1 = w.elan4_rail_ptl(1);
      ASSERT_NE(rail1, nullptr);
      EXPECT_GT(rail1->tx_bytes(), bytes / 4);
      EXPECT_TRUE(w.pml().bml().suspect_rails().empty());
    }
    c.barrier();
  }, opts);
}

TEST(Multirail, FailoverCompletesOnSurvivingRail) {
  mpi::Options opts;
  opts.elan4.rails = 2;
  ModelParams p;
  // Shorten the stripe watchdog so the failover fires promptly in sim time.
  p.stripe_timeout_ns = 300'000;
  TestBed bed(8, 2, p);
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t bytes = 1 << 20;
    const std::vector<std::uint8_t> buf = patterned(bytes, 11);
    if (c.rank() == 0) {
      // Kill rail 1 while its ~512KB stripe is mid-flight (a full stripe
      // needs ~550us of wire time). Control traffic and the first fragment
      // ride rail 0 and are unaffected.
      w.net().engine().schedule(150'000, [&w] { w.net().kill_rail(1); });
      std::vector<std::uint8_t> out = buf;
      c.send(out.data(), bytes, dtype::byte_type(), 1, 0);
    } else {
      std::vector<std::uint8_t> got(bytes, 0);
      c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
      EXPECT_EQ(got, buf) << "failover must deliver every byte intact";
      // The watchdog re-issued the dead rail's stripe on the survivor and
      // marked the rail suspect.
      EXPECT_EQ(w.pml().bml().suspect_rails().count("elan4.1"), 1u);
    }
    c.barrier();
  }, opts);
}

TEST(Multirail, FailoverWithReliabilityAndChecksums) {
  // Same rail kill, with the reliability layer on: stripes carry CRCs and
  // the stripe map/FINs ride the sequenced go-back-N stream on rail 0.
  mpi::Options opts;
  opts.elan4.rails = 2;
  opts.elan4.reliability = true;
  ModelParams p;
  p.stripe_timeout_ns = 300'000;
  TestBed bed(8, 2, p);
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t bytes = 512 * 1024;
    const std::vector<std::uint8_t> buf = patterned(bytes, 29);
    if (c.rank() == 0) {
      w.net().engine().schedule(120'000, [&w] { w.net().kill_rail(1); });
      std::vector<std::uint8_t> out = buf;
      c.send(out.data(), bytes, dtype::byte_type(), 1, 0);
    } else {
      std::vector<std::uint8_t> got(bytes, 0);
      c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
      EXPECT_EQ(got, buf);
      EXPECT_EQ(w.pml().bml().suspect_rails().count("elan4.1"), 1u);
    }
    c.barrier();
  }, opts);
}

TEST(Multirail, PipelinedFragmentsStripeBelowOldThreshold) {
  // The fragment is the striping unit: a message well under the legacy 32KB
  // whole-message stripe threshold still fans its pull fragments across both
  // rails once it splits into several fragments.
  mpi::Options opts;
  opts.elan4.rails = 2;
  opts.pipeline_frag_bytes = 2048;
  opts.pipeline_depth = 2;
  opts.pipeline_push_frags = 0;  // keep the payload in pull fragments
  TestBed bed(8, 2);
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t bytes = 24 * 1024;
    const std::vector<std::uint8_t> buf = patterned(bytes, 41);
    if (c.rank() == 0) {
      std::vector<std::uint8_t> out = buf;
      c.send(out.data(), bytes, dtype::byte_type(), 1, 0);
    } else {
      std::vector<std::uint8_t> got(bytes, 0);
      c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
      EXPECT_EQ(got, buf);
      ptl_elan4::PtlElan4* rail1 = w.elan4_rail_ptl(1);
      ASSERT_NE(rail1, nullptr);
      EXPECT_GT(rail1->tx_bytes(), bytes / 8)
          << "the secondary rail must carry pull fragments even below 32KB";
      EXPECT_TRUE(w.pml().bml().suspect_rails().empty());
    }
    c.barrier();
  }, opts);
}

TEST(Multirail, RailKillWithFragmentsInFlightCompletesOnSurvivor) {
  // Kill a rail while several depth-limited pipeline fragments are mid-pull
  // on it; the watchdog re-issues every overdue fragment on the survivor and
  // per-fragment FIN aggregation still completes the sender exactly once.
  mpi::Options opts;
  opts.elan4.rails = 2;
  opts.pipeline_frag_bytes = 8192;
  opts.pipeline_depth = 4;
  ModelParams p;
  p.stripe_timeout_ns = 300'000;
  TestBed bed(8, 2, p);
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t bytes = 512 * 1024;
    const std::vector<std::uint8_t> buf = patterned(bytes, 53);
    if (c.rank() == 0) {
      w.net().engine().schedule(100'000, [&w] { w.net().kill_rail(1); });
      std::vector<std::uint8_t> out = buf;
      c.send(out.data(), bytes, dtype::byte_type(), 1, 0);
    } else {
      std::vector<std::uint8_t> got(bytes, 0);
      c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
      EXPECT_EQ(got, buf) << "failover must deliver every fragment intact";
      EXPECT_EQ(w.pml().bml().suspect_rails().count("elan4.1"), 1u);
    }
    c.barrier();
  }, opts);
}

TEST(MultirailSoak, StripingUnderLossAndCorruption) {
  // Frame loss exercises the go-back-N stream under the stripe map/FIN
  // traffic; payload corruption exercises the per-stripe CRC re-pull.
  for (const std::uint64_t seed : {1ull, 7ull, 23ull}) {
    mpi::Options opts;
    opts.elan4.rails = 2;
    opts.elan4.reliability = true;
    TestBed bed(8, 2);
    net::FaultProfile profile;
    profile.drop = 0.02;
    // A 512KB stripe spans ~256 wire packets at the 2KB MTU, so the
    // per-packet corruption rate must stay low enough that a whole-stripe
    // CRC pass is likely within the bounded re-pull budget.
    profile.corrupt = 0.002;
    profile.duplicate = 0.01;
    bed.net->set_faults(profile, seed);
    bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      const std::size_t sizes[] = {1000, 40000, 100000, 1u << 20};
      for (int iter = 0; iter < 3; ++iter) {
        for (const std::size_t bytes : sizes) {
          const auto salt = static_cast<std::uint8_t>(bytes + iter);
          const std::vector<std::uint8_t> buf = patterned(bytes, salt);
          if (c.rank() == 0) {
            std::vector<std::uint8_t> out = buf;
            c.send(out.data(), bytes, dtype::byte_type(), 1, 0);
          } else {
            std::vector<std::uint8_t> got(bytes, 0);
            c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
            ASSERT_EQ(got, buf) << "seed " << seed << " size " << bytes
                                << " iter " << iter;
          }
        }
      }
      c.barrier();
    }, opts);
  }
}

TEST(MultirailSoak, PipelinedFragmentsUnderHeavyFaults) {
  // ~10% combined fault rate with a small fragment size: heavy pipelined
  // traffic drives the go-back-N stream deep into retransmission while both
  // rails pull fragments. Regression canary for the retransmit-walk race —
  // the rtx fiber suspends inside charge_crc/wire while cumulative acks
  // prune the send log, which once let stale log slots reach the wire as
  // garbage control frames and wedge the protocol.
  for (const std::uint64_t seed : {3ull, 17ull, 31ull}) {
    mpi::Options opts;
    opts.elan4.rails = 2;
    opts.elan4.reliability = true;
    opts.elan4.max_data_retries = 50;
    opts.pipeline_frag_bytes = 2048;
    opts.pipeline_depth = 3;
    TestBed bed(8, 2);
    net::FaultProfile profile;
    profile.drop = 0.05;
    profile.corrupt = 0.02;
    profile.duplicate = 0.02;
    profile.delay = 0.01;
    bed.net->set_faults(profile, seed);
    bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      const std::size_t sizes[] = {16, 512, 1980, 8192, 40000};
      for (int iter = 0; iter < 8; ++iter) {
        for (const std::size_t bytes : sizes) {
          const auto salt = static_cast<std::uint8_t>(bytes * 3 + iter);
          const std::vector<std::uint8_t> buf = patterned(bytes, salt);
          if (c.rank() == 0) {
            std::vector<std::uint8_t> out = buf;
            c.send(out.data(), bytes, dtype::byte_type(), 1, 0);
          } else {
            std::vector<std::uint8_t> got(bytes, 0);
            c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
            ASSERT_EQ(got, buf) << "seed " << seed << " size " << bytes
                                << " iter " << iter;
          }
        }
      }
      c.barrier();
    }, opts);
  }
}

}  // namespace
}  // namespace oqs
