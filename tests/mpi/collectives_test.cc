// Collectives built over the point-to-point stack.
#include <gtest/gtest.h>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

class CollectivesNp : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesNp, BarrierSynchronizes) {
  const int np = GetParam();
  TestBed bed;
  std::vector<sim::Time> after(static_cast<std::size_t>(np));
  std::vector<sim::Time> before(static_cast<std::size_t>(np));
  bed.run_mpi(np, [&](mpi::World& w) {
    auto& c = w.comm();
    // Stagger arrival: rank r waits r*50us.
    w.net().engine().sleep(static_cast<sim::Time>(c.rank()) * 50 * sim::kUs);
    before[static_cast<std::size_t>(c.rank())] = w.net().engine().now();
    c.barrier();
    after[static_cast<std::size_t>(c.rank())] = w.net().engine().now();
  });
  // Nobody leaves before the last enters.
  sim::Time last_enter = 0;
  for (sim::Time t : before) last_enter = std::max(last_enter, t);
  for (sim::Time t : after) EXPECT_GE(t, last_enter);
}

TEST_P(CollectivesNp, BcastDeliversFromEveryRoot) {
  const int np = GetParam();
  TestBed bed;
  bed.run_mpi(np, [&](mpi::World& w) {
    auto& c = w.comm();
    for (int root = 0; root < np; ++root) {
      std::vector<std::uint8_t> buf(3000);
      if (c.rank() == root)
        for (std::size_t i = 0; i < buf.size(); ++i)
          buf[i] = static_cast<std::uint8_t>(root + i);
      c.bcast(buf.data(), buf.size(), dtype::byte_type(), root);
      for (std::size_t i = 0; i < buf.size(); ++i)
        ASSERT_EQ(buf[i], static_cast<std::uint8_t>(root + i));
    }
  });
}

TEST_P(CollectivesNp, AllreduceSumsDoubles) {
  const int np = GetParam();
  TestBed bed;
  bed.run_mpi(np, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<double> in(17);
    std::vector<double> out(17);
    for (std::size_t i = 0; i < in.size(); ++i)
      in[i] = static_cast<double>(c.rank() + 1) * static_cast<double>(i);
    c.allreduce_sum(in.data(), out.data(), in.size());
    const double ranksum = static_cast<double>(np) * (np + 1) / 2.0;
    for (std::size_t i = 0; i < out.size(); ++i)
      EXPECT_DOUBLE_EQ(out[i], ranksum * static_cast<double>(i));
  });
}

TEST_P(CollectivesNp, GatherCollectsToRoot) {
  const int np = GetParam();
  TestBed bed;
  bed.run_mpi(np, [&](mpi::World& w) {
    auto& c = w.comm();
    std::uint64_t mine = 0xAB00 + static_cast<std::uint64_t>(c.rank());
    std::vector<std::uint64_t> all(static_cast<std::size_t>(np), 0);
    c.gather(&mine, sizeof(mine), all.data(), /*root=*/0);
    if (c.rank() == 0) {
      for (int r = 0; r < np; ++r)
        EXPECT_EQ(all[static_cast<std::size_t>(r)],
                  0xAB00 + static_cast<std::uint64_t>(r));
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesNp, ::testing::Values(2, 3, 4, 7, 8));

TEST(Collectives, DupSeparatesTraffic) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    mpi::Communicator c2 = c.dup();
    EXPECT_NE(c.context_id(), c2.context_id());
    if (c.rank() == 0) {
      std::uint32_t a = 1;
      std::uint32_t b = 2;
      c.send(&a, 4, dtype::byte_type(), 1, 0);
      c2.send(&b, 4, dtype::byte_type(), 1, 0);
    } else {
      // Same tag and source, but the dup'd communicator only sees b.
      std::uint32_t v = 0;
      c2.recv(&v, 4, dtype::byte_type(), 0, 0);
      EXPECT_EQ(v, 2u);
      c.recv(&v, 4, dtype::byte_type(), 0, 0);
      EXPECT_EQ(v, 1u);
    }
  });
}

TEST(Collectives, BarrierStormStaysConsistent) {
  TestBed bed;
  bed.run_mpi(8, [&](mpi::World& w) {
    auto& c = w.comm();
    for (int i = 0; i < 25; ++i) c.barrier();
  });
}

}  // namespace
}  // namespace oqs
