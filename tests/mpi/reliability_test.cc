// End-to-end reliability (LA-MPI heritage): CRC32C framing, NACK-driven
// retransmission, and RDMA payload verification with re-read recovery,
// under injected wire corruption.
#include <gtest/gtest.h>

#include <numeric>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

mpi::Options reliable() {
  mpi::Options o;
  o.elan4.reliability = true;
  return o;
}

TEST(Reliability, CleanWireBehavesNormally) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    for (std::size_t bytes : {0ul, 4ul, 1980ul, 4096ul, 100000ul}) {
      std::vector<std::uint8_t> buf(bytes, static_cast<std::uint8_t>(bytes));
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
      } else {
        std::vector<std::uint8_t> got(bytes, 0);
        c.recv(got.data(), bytes, dtype::byte_type(), 0, 0);
        EXPECT_EQ(got, buf);
      }
    }
    c.barrier();
    auto* ptl = w.elan4_ptl();
    EXPECT_EQ(ptl->retransmissions(), 0u);
    EXPECT_EQ(ptl->data_retries(), 0u);
  }, reliable());
}

TEST(Reliability, EagerTrafficSurvivesCorruption) {
  TestBed bed;
  bed.net->set_corruption(0.05, /*seed=*/77);
  std::uint64_t retransmissions = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    constexpr int kMsgs = 120;
    if (c.rank() == 0) {
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<std::uint8_t> msg(900);
        for (std::size_t j = 0; j < msg.size(); ++j)
          msg[j] = static_cast<std::uint8_t>(i * 31 + j);
        c.send(msg.data(), msg.size(), dtype::byte_type(), 1, i);
      }
    } else {
      for (int i = 0; i < kMsgs; ++i) {
        std::vector<std::uint8_t> got(900, 0);
        c.recv(got.data(), got.size(), dtype::byte_type(), 0, i);
        for (std::size_t j = 0; j < got.size(); ++j)
          ASSERT_EQ(got[j], static_cast<std::uint8_t>(i * 31 + j))
              << "msg " << i << " byte " << j;
      }
    }
    c.barrier();  // all retransmissions have happened by now
    if (c.rank() == 0) retransmissions = w.elan4_ptl()->retransmissions();
    c.barrier();
  }, reliable());
  EXPECT_GT(bed.net->corruptions(), 0u);
  EXPECT_GT(retransmissions, 0u);
}

TEST(Reliability, RendezvousPayloadRecoversByRereading) {
  mpi::Options o = reliable();
  o.elan4.max_data_retries = 25;  // survive an aggressive corruption rate
  // Asserts the PTL's data_retries counter, which the BML's fragmented path
  // (with its own per-fragment CRC re-pulls) bypasses — force the
  // monolithic single-pull rendezvous.
  o.pipeline_rendezvous = false;
  TestBed bed;
  bed.pin_transport = true;
  bed.net->set_corruption(0.04, /*seed=*/5);
  std::uint64_t retries = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t bytes = 100000;  // ~49 fragments: retries near-certain
    std::vector<std::uint8_t> buf(bytes);
    if (c.rank() == 0) {
      std::iota(buf.begin(), buf.end(), 0);
      c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
    } else {
      std::fill(buf.begin(), buf.end(), 0);
      mpi::RecvStatus st;
      c.recv(buf.data(), bytes, dtype::byte_type(), 0, 0, &st);
      ASSERT_TRUE(ok(st.status));
      std::vector<std::uint8_t> expect(bytes);
      std::iota(expect.begin(), expect.end(), 0);
      EXPECT_EQ(buf, expect);
      retries = w.elan4_ptl()->data_retries();
    }
    c.barrier();
  }, o);
  EXPECT_GT(bed.net->corruptions(), 0u);
  EXPECT_GT(retries, 0u);
}

TEST(Reliability, UnrecoverablePayloadFailsBothSides) {
  mpi::Options o = reliable();
  o.elan4.max_data_retries = 0;  // no recovery allowed
  // Expects the monolithic scheme's FIN_ACK failure path; the fragmented
  // path recovers via CRC re-pulls instead of failing.
  o.pipeline_rendezvous = false;
  TestBed bed;
  bed.pin_transport = true;
  bed.net->set_corruption(0.5, /*seed=*/3);  // certain corruption
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> buf(100000, 1);
    if (c.rank() == 0) {
      mpi::Request s = c.isend(buf.data(), buf.size(), dtype::byte_type(), 1, 0);
      mpi::RecvStatus st;
      s.wait(&st);
      EXPECT_EQ(st.status, Status::kError);  // FIN_ACK carried the failure
    } else {
      mpi::RecvStatus st;
      mpi::Request r = c.irecv(buf.data(), buf.size(), dtype::byte_type(), 0, 0);
      r.wait(&st);
      EXPECT_EQ(st.status, Status::kError);
    }
  }, o);
}

TEST(Reliability, ModerateCorruptionLargePayloadEventuallyClean) {
  // With a per-fragment corruption rate low enough, 3 retries recover.
  TestBed bed;
  bed.net->set_corruption(0.01, /*seed=*/11);
  int delivered_ok = 0;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    for (int round = 0; round < 5; ++round) {
      std::vector<std::uint8_t> buf(50000);
      if (c.rank() == 0) {
        for (std::size_t j = 0; j < buf.size(); ++j)
          buf[j] = static_cast<std::uint8_t>(j * 7 + round);
        c.send(buf.data(), buf.size(), dtype::byte_type(), 1, round);
      } else {
        mpi::RecvStatus st;
        c.recv(buf.data(), buf.size(), dtype::byte_type(), 0, round, &st);
        ASSERT_TRUE(ok(st.status)) << "round " << round;
        for (std::size_t j = 0; j < buf.size(); ++j)
          ASSERT_EQ(buf[j], static_cast<std::uint8_t>(j * 7 + round));
        ++delivered_ok;
      }
    }
    c.barrier();
  }, reliable());
  EXPECT_EQ(delivered_ok, 5);
}

TEST(Reliability, ChecksumCostsShowInLatency) {
  auto lat = [](bool reliable_mode) {
    mpi::Options o;
    o.elan4.reliability = reliable_mode;
    TestBed bed;
    double us = 0;
    bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      std::vector<std::uint8_t> buf(1024, 1);
      c.barrier();
      const sim::Time t0 = w.net().engine().now();
      for (int i = 0; i < 50; ++i) {
        if (c.rank() == 0) {
          c.send(buf.data(), buf.size(), dtype::byte_type(), 1, 0);
          c.recv(buf.data(), buf.size(), dtype::byte_type(), 1, 0);
        } else {
          c.recv(buf.data(), buf.size(), dtype::byte_type(), 0, 0);
          c.send(buf.data(), buf.size(), dtype::byte_type(), 0, 0);
        }
      }
      if (c.rank() == 0) us = sim::to_us(w.net().engine().now() - t0) / 100.0;
      c.barrier();
    }, o);
    return us;
  };
  const double off = lat(false);
  const double on = lat(true);
  EXPECT_GT(on, off + 0.5);  // two CRC passes over ~1.1KB per one-way
  EXPECT_LT(on, off * 2.0);  // but not catastrophic
}

}  // namespace
}  // namespace oqs
