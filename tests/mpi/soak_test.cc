// Property/soak tests: randomized traffic over the full stack must deliver
// every payload intact, in order per (sender, tag-stream), across mixed
// sizes, schemes, wildcards, and concurrent communicators.
#include <gtest/gtest.h>

#include "base/checksum.h"
#include "sim/rng.h"
#include "testbed.h"
#include "workload/workload.h"

namespace oqs {
namespace {

using test::TestBed;

// Deterministic payload for (sender, msg index): checkable at the receiver
// without shipping expectations out of band.
std::vector<std::uint8_t> payload_for(int sender, int index, std::size_t bytes) {
  std::vector<std::uint8_t> v(bytes);
  sim::Rng rng(static_cast<std::uint64_t>(sender) * 1000003u +
               static_cast<std::uint64_t>(index) * 97u + 13u);
  rng.fill(v.data(), v.size());
  return v;
}

struct SoakCase {
  int nprocs;
  int msgs_per_pair;
  std::uint64_t seed;
  ptl_elan4::Scheme scheme;
};

class Soak : public ::testing::TestWithParam<SoakCase> {};

TEST_P(Soak, AllToAllRandomSizesArriveIntact) {
  const SoakCase& sc = GetParam();
  mpi::Options opts;
  opts.elan4.scheme = sc.scheme;
  TestBed bed;
  int ranks_ok = 0;

  bed.run_mpi(sc.nprocs, [&](mpi::World& w) {
    auto& c = w.comm();
    const int n = c.size();
    const int me = c.rank();
    // Per-pair size schedule derived from the shared seed, so sender and
    // receiver agree without communicating.
    auto size_of = [&](int sender, int receiver, int k) -> std::size_t {
      sim::Rng r(sc.seed ^ (static_cast<std::uint64_t>(sender) << 20) ^
                 (static_cast<std::uint64_t>(receiver) << 10) ^
                 static_cast<std::uint64_t>(k));
      // Mix eager, threshold-straddling, and rendezvous sizes.
      const std::size_t buckets[] = {0, 3, 64, 1024, 1984, 1985, 4096, 20000};
      return buckets[r.uniform(0, 7)];
    };

    // Post all receives up front (stresses the posted list), then send.
    std::vector<mpi::Request> reqs;
    std::vector<std::vector<std::uint8_t>> rbufs;
    std::vector<std::tuple<int, int, std::size_t>> expect;  // (src,k,bytes)
    for (int src = 0; src < n; ++src) {
      if (src == me) continue;
      for (int k = 0; k < sc.msgs_per_pair; ++k) {
        const std::size_t bytes = size_of(src, me, k);
        rbufs.emplace_back(bytes, 0);
        expect.emplace_back(src, k, bytes);
        reqs.push_back(c.irecv(rbufs.back().data(), bytes, dtype::byte_type(),
                               src, /*tag=*/k));
      }
    }
    std::vector<std::vector<std::uint8_t>> sbufs;
    for (int dst = 0; dst < n; ++dst) {
      if (dst == me) continue;
      for (int k = 0; k < sc.msgs_per_pair; ++k) {
        const std::size_t bytes = size_of(me, dst, k);
        sbufs.push_back(payload_for(me, k * n + dst, bytes));
        reqs.push_back(c.isend(sbufs.back().data(), bytes, dtype::byte_type(),
                               dst, k));
      }
    }
    mpi::wait_all(reqs);

    bool all_good = true;
    for (std::size_t i = 0; i < expect.size(); ++i) {
      const auto [src, k, bytes] = expect[i];
      const auto want = payload_for(src, k * n + me, bytes);
      all_good &= rbufs[i] == want;
      EXPECT_EQ(rbufs[i], want) << "from " << src << " k " << k;
    }
    c.barrier();
    if (all_good) ++ranks_ok;
  }, opts);
  EXPECT_EQ(ranks_ok, sc.nprocs);
}

INSTANTIATE_TEST_SUITE_P(
    Sweeps, Soak,
    ::testing::Values(SoakCase{4, 6, 1, ptl_elan4::Scheme::kRdmaRead},
                      SoakCase{4, 6, 2, ptl_elan4::Scheme::kRdmaWrite},
                      SoakCase{8, 3, 3, ptl_elan4::Scheme::kRdmaRead},
                      SoakCase{3, 10, 4, ptl_elan4::Scheme::kRdmaWrite},
                      SoakCase{8, 3, 5, ptl_elan4::Scheme::kRdmaRead}));

TEST(Soak, MixedCommunicatorsAndWildcardsDrainCompletely) {
  TestBed bed;
  bed.run_mpi(6, [&](mpi::World& w) {
    auto& c = w.comm();
    mpi::Communicator c2 = c.dup();
    sim::Rng rng(42u + static_cast<std::uint64_t>(c.rank()));

    // Everyone fires 30 messages at random peers on random communicators;
    // receivers drain with wildcards, counting by checksum.
    constexpr int kPerRank = 30;
    std::vector<std::vector<std::uint8_t>> bufs;
    std::vector<mpi::Request> sends;
    std::uint64_t sent_sum = 0;
    for (int i = 0; i < kPerRank; ++i) {
      const int dst = static_cast<int>(rng.uniform(0, 5));
      const std::size_t bytes = rng.uniform(1, 1500);
      bufs.push_back(payload_for(c.rank(), i, bytes));
      sent_sum += crc32c(bufs.back().data(), bytes);
      auto& comm = rng.chance(0.5) ? c : c2;
      sends.push_back(
          comm.isend(bufs.back().data(), bytes, dtype::byte_type(), dst, 1));
    }

    // Total message count is fixed (everyone sends kPerRank), but who
    // receives how many is random: agree via allreduce on counts per rank.
    // Simpler: each rank drains until global counter says done, using
    // iprobe on both communicators.
    int received = 0;
    std::uint64_t recv_sum = 0;
    auto drain = [&](mpi::Communicator& comm) {
      mpi::RecvStatus st;
      while (comm.iprobe(mpi::kAnySource, 1, &st)) {
        std::vector<std::uint8_t> buf(st.bytes);
        comm.recv(buf.data(), buf.size(), dtype::byte_type(), st.source, 1, &st);
        recv_sum += crc32c(buf.data(), buf.size());
        ++received;
      }
    };
    // Drain until a global allreduce agrees all 6*30 messages were consumed.
    for (;;) {
      drain(c);
      drain(c2);
      double mine = received;
      double total = 0;
      c.allreduce_sum(&mine, &total, 1);
      if (static_cast<int>(total) == 6 * kPerRank) break;
    }
    mpi::wait_all(sends);

    // Global checksum conservation: everything sent was received intact.
    double s = static_cast<double>(sent_sum % 100000007ull);
    double r = static_cast<double>(recv_sum % 100000007ull);
    double sums[2] = {s, r};
    double totals[2] = {0, 0};
    c.allreduce_sum(sums, totals, 2);
    EXPECT_DOUBLE_EQ(totals[0], totals[1]);
    c.barrier();
  });
}

TEST(Soak, LongRunStabilityNoResourceLeaks) {
  // The 600 alternating exchanges are expressed as a workload trace and
  // driven by the replay engine — same traffic as the old hand-rolled loop,
  // but through the one interpreter, with every payload oracle-checked.
  workload::Trace t;
  t.name = "pingpong600";
  t.ranks.resize(2);
  for (int i = 0; i < 600; ++i) {
    const std::uint64_t bytes = (i % 7 == 0) ? 30000 : 512;
    const int src = i % 2;
    workload::Op s;
    s.kind = workload::OpKind::kSend;
    s.bytes = bytes;
    s.peer = 1 - src;
    workload::Op r;
    r.kind = workload::OpKind::kRecv;
    r.bytes = bytes;
    r.peer = src;
    t.ranks[static_cast<std::size_t>(src)].push_back(s);
    t.ranks[static_cast<std::size_t>(1 - src)].push_back(r);
  }
  workload::Op bar;
  bar.kind = workload::OpKind::kBarrier;
  for (auto& ops : t.ranks) ops.push_back(bar);

  TestBed bed;
  workload::Report rep;
  const workload::ReplayOptions opt;
  bed.run_mpi(2, [&](mpi::World& w) {
    workload::replay_rank(w, w.comm(), t, opt, &rep);
    // Pending-op tables must be empty once the replay drains.
    EXPECT_EQ(w.elan4_ptl()->pending_ops(), 0u);
    EXPECT_EQ(w.pml().unexpected_count(), 0u);
    EXPECT_EQ(w.pml().posted_count(), 0u);
  });
  EXPECT_EQ(rep.verify_failures, 0u);
  EXPECT_EQ(rep.ops_replayed, t.total_ops());
  // No queue overflowed anywhere.
  for (int node = 0; node < 8; ++node)
    EXPECT_EQ(bed.net->nic(node).rx_drops(), 0u);
}

TEST(Soak, ConcurrentSkeletonsLeaveNoResidue) {
  // Mixed-traffic soak via the workload engine: a 2x2 stencil and a 4-rank
  // all-to-all shuffle share the fabric. Both jobs must finish with their
  // payload oracles intact, overlap in simulated time, and leave every
  // pending-op table empty.
  workload::StencilConfig scfg;
  scfg.px = 2;
  scfg.py = 2;
  scfg.iters = 5;
  scfg.halo_bytes = 6000;
  const workload::Trace a = workload::make_stencil(scfg);
  const workload::Trace b = workload::make_shuffle(
      {.ranks = 4, .rounds = 3, .bytes_per_pair = 3000});

  TestBed bed;
  std::vector<workload::Report> reports;
  bed.run_mpi(8, [&](mpi::World& w) {
    workload::ReplayOptions opt;
    opt.seed = 5;
    workload::replay_jobs(w, {&a, &b}, opt, &reports);
    EXPECT_EQ(w.elan4_ptl()->pending_ops(), 0u);
    EXPECT_EQ(w.pml().unexpected_count(), 0u);
    EXPECT_EQ(w.pml().posted_count(), 0u);
  });
  ASSERT_EQ(reports.size(), 2u);
  for (const workload::Report& rep : reports) {
    EXPECT_EQ(rep.verify_failures, 0u);
    EXPECT_GT(rep.bytes_moved, 0u);
  }
  // Interference, not time-sharing: the jobs' spans overlap.
  EXPECT_LT(reports[0].t_begin, reports[1].t_end);
  EXPECT_LT(reports[1].t_begin, reports[0].t_end);
  for (int node = 0; node < 8; ++node)
    EXPECT_EQ(bed.net->nic(node).rx_drops(), 0u);
}

}  // namespace
}  // namespace oqs
