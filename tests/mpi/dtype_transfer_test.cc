// Non-contiguous datatypes end-to-end: eager, rendezvous (staging through
// E4-addressable buffers), both RDMA schemes, type mismatch between sides.
#include <gtest/gtest.h>

#include <numeric>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

TEST(DtypeTransfer, VectorColumnExchangeEager) {
  // Send a "column" of a 16x16 byte matrix (stride 16, blocklen 1).
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    auto col = dtype::Datatype::vec(16, 1, 16, dtype::byte_type());
    std::vector<std::uint8_t> m(256);
    if (c.rank() == 0) {
      std::iota(m.begin(), m.end(), 0);
      c.send(m.data() + 3, 1, col, 1, 0);  // column 3
    } else {
      std::fill(m.begin(), m.end(), 0xFF);
      c.recv(m.data() + 5, 1, col, 0, 0);  // into column 5
      for (int row = 0; row < 16; ++row) {
        EXPECT_EQ(m[static_cast<std::size_t>(row * 16 + 5)],
                  static_cast<std::uint8_t>(row * 16 + 3));
        EXPECT_EQ(m[static_cast<std::size_t>(row * 16 + 6)], 0xFF);
      }
    }
  });
}

class DtypeRdvSchemes : public ::testing::TestWithParam<ptl_elan4::Scheme> {};

TEST_P(DtypeRdvSchemes, LargeVectorStagesThroughRdma) {
  // 4000 blocks of 8 doubles with holes: ~250KB of payload, forcing the
  // rendezvous path with pack/unpack staging on both sides.
  mpi::Options opts;
  opts.elan4.scheme = GetParam();
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    auto t = dtype::Datatype::vec(4000, 8, 10, dtype::double_type());
    const std::size_t span = t->extent() / sizeof(double) + 8;
    std::vector<double> mem(span, -1.0);
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < span; ++i) mem[i] = static_cast<double>(i);
      c.send(mem.data(), 1, t, 1, 0);
    } else {
      c.recv(mem.data(), 1, t, 0, 0);
      // Block k covers doubles [k*10, k*10+8); holes stay -1.
      for (std::size_t k = 0; k < 4000; ++k) {
        for (std::size_t j = 0; j < 8; ++j)
          ASSERT_EQ(mem[k * 10 + j], static_cast<double>(k * 10 + j));
        ASSERT_EQ(mem[k * 10 + 8], -1.0);
        ASSERT_EQ(mem[k * 10 + 9], -1.0);
      }
    }
    c.barrier();
  }, opts);
}

INSTANTIATE_TEST_SUITE_P(Schemes, DtypeRdvSchemes,
                         ::testing::Values(ptl_elan4::Scheme::kRdmaRead,
                                           ptl_elan4::Scheme::kRdmaWrite));

TEST(DtypeTransfer, ContiguousSenderNoncontiguousReceiver) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    const std::size_t n = 6000;  // bytes of payload > eager limit
    if (c.rank() == 0) {
      std::vector<std::uint8_t> flat(n);
      std::iota(flat.begin(), flat.end(), 0);
      c.send(flat.data(), n, dtype::byte_type(), 1, 0);
    } else {
      auto t = dtype::Datatype::vec(n / 2, 2, 3, dtype::byte_type());
      std::vector<std::uint8_t> mem(t->extent() + 1, 0xEE);
      c.recv(mem.data(), 1, t, 0, 0);
      std::uint8_t expect = 0;
      for (std::size_t k = 0; k < n / 2; ++k) {
        ASSERT_EQ(mem[k * 3 + 0], expect++);
        ASSERT_EQ(mem[k * 3 + 1], expect++);
        if (k + 1 < n / 2) {
          ASSERT_EQ(mem[k * 3 + 2], 0xEE);
        }
      }
    }
    c.barrier();
  });
}

TEST(DtypeTransfer, StructOfIntAndDoubles) {
  struct Particle {
    std::int32_t id;
    std::int32_t pad;
    double pos[3];
  };
  static_assert(sizeof(Particle) == 32);
  auto t = dtype::Datatype::structure({{0, 1, dtype::int_type()},
                                       {8, 3, dtype::double_type()}});
  ASSERT_EQ(t->size(), 28u);

  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    constexpr std::size_t kN = 500;  // 14KB payload -> rendezvous
    // Extent is 32 bytes... matches sizeof(Particle) given the layout.
    std::vector<Particle> ps(kN);
    if (c.rank() == 0) {
      for (std::size_t i = 0; i < kN; ++i) {
        ps[i].id = static_cast<std::int32_t>(i);
        ps[i].pad = -7;
        for (int d = 0; d < 3; ++d)
          ps[i].pos[d] = static_cast<double>(i) + d * 0.25;
      }
      c.send(ps.data(), kN, t, 1, 0);
    } else {
      for (auto& pp : ps) pp.pad = 123;
      c.recv(ps.data(), kN, t, 0, 0);
      for (std::size_t i = 0; i < kN; ++i) {
        EXPECT_EQ(ps[i].id, static_cast<std::int32_t>(i));
        EXPECT_EQ(ps[i].pad, 123);  // hole untouched
        for (int d = 0; d < 3; ++d)
          EXPECT_EQ(ps[i].pos[d], static_cast<double>(i) + d * 0.25);
      }
    }
    c.barrier();
  });
}

}  // namespace
}  // namespace oqs
