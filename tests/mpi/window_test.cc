// MPI-2 one-sided communication over Elan4 RDMA: windows, put, get, fence
// epochs, bounds checking.
#include <gtest/gtest.h>

#include <numeric>

#include "testbed.h"

namespace oqs {
namespace {

using test::TestBed;

TEST(Window, PutPlacesDataAtTarget) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> exposed(4096, 0);
    mpi::Window win(c, w, exposed.data(), exposed.size());

    if (c.rank() == 0) {
      std::vector<std::uint8_t> payload(1000);
      std::iota(payload.begin(), payload.end(), 1);
      EXPECT_EQ(win.put(1, payload.data(), payload.size(), /*offset=*/100),
                Status::kOk);
      win.fence();
    } else {
      win.fence();
      for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(exposed[static_cast<std::size_t>(100 + i)],
                  static_cast<std::uint8_t>(i + 1));
      EXPECT_EQ(exposed[99], 0);
      EXPECT_EQ(exposed[1100], 0);
    }
    win.fence();
  });
}

TEST(Window, GetPullsDataFromTarget) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> exposed(2048, 0);
    if (c.rank() == 1)
      for (std::size_t i = 0; i < exposed.size(); ++i)
        exposed[i] = static_cast<std::uint8_t>(i * 3);
    mpi::Window win(c, w, exposed.data(), exposed.size());

    if (c.rank() == 0) {
      std::vector<std::uint8_t> local(500, 0);
      EXPECT_EQ(win.get(1, local.data(), local.size(), /*offset=*/32), Status::kOk);
      win.fence();
      for (int i = 0; i < 500; ++i)
        ASSERT_EQ(local[static_cast<std::size_t>(i)],
                  static_cast<std::uint8_t>((32 + i) * 3));
    } else {
      win.fence();
    }
    win.fence();
  });
}

TEST(Window, FenceEpochsOrderAccesses) {
  // Classic BSP pattern: epoch 1 everyone puts to the right neighbour;
  // epoch 2 everyone reads what landed locally and pushes it on.
  TestBed bed;
  bed.run_mpi(4, [&](mpi::World& w) {
    auto& c = w.comm();
    const int n = c.size();
    std::uint64_t cell = 1000 + static_cast<std::uint64_t>(c.rank());
    mpi::Window win(c, w, &cell, sizeof(cell));

    for (int round = 0; round < n; ++round) {
      std::uint64_t moving = cell;
      win.put((c.rank() + 1) % n, &moving, sizeof(moving), 0);
      win.fence();
    }
    // After n rounds each value returned home.
    EXPECT_EQ(cell, 1000 + static_cast<std::uint64_t>(c.rank()));
    c.barrier();
  });
}

TEST(Window, ManyOutstandingOpsDrainAtFence) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> exposed(64 * 1024, 0);
    mpi::Window win(c, w, exposed.data(), exposed.size());
    if (c.rank() == 0) {
      std::vector<std::vector<std::uint8_t>> chunks;
      for (int i = 0; i < 16; ++i) {
        chunks.emplace_back(4096, static_cast<std::uint8_t>(i + 1));
        win.put(1, chunks.back().data(), 4096,
                static_cast<std::size_t>(i) * 4096);
      }
      EXPECT_EQ(win.pending(), 16u);
      win.fence();
      EXPECT_EQ(win.pending(), 0u);
    } else {
      win.fence();
      for (int i = 0; i < 16; ++i)
        ASSERT_EQ(exposed[static_cast<std::size_t>(i) * 4096 + 7],
                  static_cast<std::uint8_t>(i + 1));
    }
    win.fence();
  });
}

TEST(Window, BoundsAreChecked) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> exposed(256, 0);
    mpi::Window win(c, w, exposed.data(), exposed.size());
    std::uint8_t x = 1;
    EXPECT_EQ(win.put(1, &x, 1, 256), Status::kBadParam);   // one past end
    EXPECT_EQ(win.put(5, &x, 1, 0), Status::kBadParam);     // bad rank
    EXPECT_EQ(win.get(1, &x, 300, 0), Status::kBadParam);   // too long
    EXPECT_EQ(win.put(1, &x, 1, 255), Status::kOk);         // last byte ok
    win.fence();
    win.fence();
  });
}

TEST(Window, SelfPutWorksThroughLoopback) {
  TestBed bed;
  bed.run_mpi(2, [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> exposed(128, 0);
    mpi::Window win(c, w, exposed.data(), exposed.size());
    std::uint8_t v = 0xEE;
    win.put(c.rank(), &v, 1, static_cast<std::size_t>(c.rank()));
    win.fence();
    EXPECT_EQ(exposed[static_cast<std::size_t>(c.rank())], 0xEE);
    win.fence();
  });
}

}  // namespace
}  // namespace oqs
