// Accumulator / Samples statistics helpers.
#include "sim/stats.h"

#include <gtest/gtest.h>

namespace oqs::sim {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(10.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(Samples, MedianAndPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.9), 7.0);
}

}  // namespace
}  // namespace oqs::sim
