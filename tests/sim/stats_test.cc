// Accumulator / Samples statistics helpers.
#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>

namespace oqs::sim {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.stddev(), 2.0, 1e-12);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(10.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
}

TEST(Samples, MedianAndPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_NEAR(s.median(), 50.5, 1e-9);
  EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
}

TEST(Samples, SingleValue) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.median(), 7.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.9), 7.0);
}

TEST(Samples, EmptyPercentileIsZero) {
  Samples s;
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.count(), 0u);
}

// The sorted view is cached; add() must invalidate it or percentiles after
// further samples would read the stale order.
TEST(Samples, AddAfterPercentileInvalidatesCache) {
  Samples s;
  s.add(10.0);
  s.add(20.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);  // forces the sort
  s.add(0.0);                          // smaller than everything seen
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.median(), 10.0);
  s.add(40.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 40.0);
  // Repeated queries with no adds in between stay consistent.
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(s.median(), 15.0);
}

TEST(Accumulator, ConstantSeriesHasZeroStddev) {
  Accumulator a;
  for (int i = 0; i < 1000; ++i) a.add(3.25);
  EXPECT_EQ(a.count(), 1000u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.25);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, SingleSampleHasZeroStddev) {
  Accumulator a;
  a.add(123.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 123.0);
  EXPECT_DOUBLE_EQ(a.max(), 123.0);
}

// Welford's update must survive a huge offset: with the naive
// sum-of-squares form, mean^2 ~ 1e24 swamps the ~4.0 variance entirely
// (double has ~16 significant digits), returning 0 or NaN.
TEST(Accumulator, WelfordSurvivesLargeOffset) {
  const double offset = 1.0e12;  // ~ns timestamps after 1000 s of sim time
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(offset + x);
  // At this offset a double carries ~1e-4 of absolute slack per sample;
  // Welford keeps the error near that floor, while the naive form loses
  // every significant digit of the variance (error ~1e8 in the 4.0 result).
  EXPECT_NEAR(a.mean(), offset + 5.0, 1e-3);
  EXPECT_NEAR(a.stddev(), 2.0, 1e-3);
}

TEST(Accumulator, NegativeValues) {
  Accumulator a;
  for (double x : {-2.0, -4.0, 2.0, 4.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), -4.0);
  EXPECT_DOUBLE_EQ(a.max(), 4.0);
  EXPECT_NEAR(a.stddev(), std::sqrt(10.0), 1e-12);
}

}  // namespace
}  // namespace oqs::sim
