// Calendar event queue: (when, seq) dispatch order under every structural
// regime — intra-bucket FIFO, far-heap migration, adaptive rebuilds — plus
// the pooled-node storage paths (inline, heap-holder fallback, teardown).
#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <queue>
#include <random>
#include <utility>
#include <vector>

namespace oqs::sim {
namespace {

// Pops everything, returning (when, id) in dispatch order.
std::vector<std::pair<Time, int>> drain(EventQueue& q, std::vector<int>& ids) {
  std::vector<std::pair<Time, int>> out;
  while (!q.empty()) {
    const Time next = q.next_time();
    Time when = 0;
    EventQueue::Event* e = q.pop(&when);
    EXPECT_EQ(when, next);
    const std::size_t before = ids.size();
    EventQueue::run(e);
    q.recycle(e);
    EXPECT_EQ(ids.size(), before + 1);
    out.emplace_back(when, ids.back());
  }
  return out;
}

TEST(EventQueue, SameInstantIsFifo) {
  EventQueue q;
  std::vector<int> ids;
  for (int i = 0; i < 1000; ++i) q.push(42, [&ids, i] { ids.push_back(i); });
  std::vector<int> sink;
  auto order = drain(q, ids);
  ASSERT_EQ(order.size(), 1000u);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(order[static_cast<std::size_t>(i)].first, 42u);
    EXPECT_EQ(order[static_cast<std::size_t>(i)].second, i);
  }
  (void)sink;
}

TEST(EventQueue, MatchesReferenceHeapOnRandomWorkload) {
  // Interleaved pushes and pops against a (when, seq) reference heap. Times
  // cover sub-bucket spacing, bucket boundaries, and far-future outliers so
  // every tier and migration path is crossed.
  std::mt19937 rng(12345);
  std::uniform_int_distribution<Time> near_t(0, 5000);
  std::uniform_int_distribution<Time> far_t(0, 50'000'000);
  std::uniform_int_distribution<int> coin(0, 99);

  using Ref = std::pair<Time, std::uint64_t>;  // (when, seq)
  auto cmp = [](const Ref& a, const Ref& b) { return a > b; };
  std::priority_queue<Ref, std::vector<Ref>, decltype(cmp)> ref(cmp);

  EventQueue q;
  std::vector<int> ids;
  std::uint64_t seq = 0;
  Time floor = 0;  // like the engine, never push earlier than the last pop

  for (int step = 0; step < 20000; ++step) {
    const bool push = q.empty() || coin(rng) < 60;
    if (push) {
      const Time when =
          floor + (coin(rng) < 90 ? near_t(rng) % 5000 : far_t(rng));
      const int id = static_cast<int>(seq);
      q.push(when, [&ids, id] { ids.push_back(id); });
      ref.emplace(when, seq);
      ++seq;
    } else {
      const auto [ref_when, ref_seq] = ref.top();
      ref.pop();
      Time when = 0;
      EventQueue::Event* e = q.pop(&when);
      EventQueue::run(e);
      q.recycle(e);
      ASSERT_EQ(when, ref_when);
      ASSERT_EQ(static_cast<std::uint64_t>(ids.back()), ref_seq);
      floor = when;
    }
  }
  while (!ref.empty()) {
    const auto [ref_when, ref_seq] = ref.top();
    ref.pop();
    Time when = 0;
    EventQueue::Event* e = q.pop(&when);
    EventQueue::run(e);
    q.recycle(e);
    ASSERT_EQ(when, ref_when);
    ASSERT_EQ(static_cast<std::uint64_t>(ids.back()), ref_seq);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FarFutureEventsMigrateInOrder) {
  // Widely spaced events land in the far heap and must come back through
  // replenish() in time order, including ties that straddle the horizon.
  EventQueue q;
  std::vector<int> ids;
  constexpr Time kGap = 10'000'000;
  for (int i = 0; i < 200; ++i) {
    q.push(static_cast<Time>(199 - i) * kGap,
           [&ids, i] { ids.push_back(199 - i); });
  }
  EXPECT_GT(q.far_size(), 0u);
  auto order = drain(q, ids);
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)].second, i);
}

TEST(EventQueue, DenseSameBucketPatternTriggersRebuild) {
  // Cycling through ~1000 distinct timestamps repeatedly forces sorted
  // intra-bucket walks until the structure re-sizes itself. Order must be
  // (when, seq) throughout; the adapted geometry must differ from the seed.
  EventQueue q;
  const std::size_t buckets0 = q.num_buckets();
  const Time width0 = q.bucket_width();
  std::vector<int> ids;
  for (int i = 0; i < 12000; ++i) {
    const Time when = static_cast<Time>(i % 997);
    q.push(when, [&ids, i] { ids.push_back(i); });
  }
  EXPECT_TRUE(q.num_buckets() != buckets0 || q.bucket_width() != width0);
  auto order = drain(q, ids);
  ASSERT_EQ(order.size(), 12000u);
  for (std::size_t i = 1; i < order.size(); ++i) {
    ASSERT_LE(order[i - 1].first, order[i].first);
    if (order[i - 1].first == order[i].first) {
      ASSERT_LT(order[i - 1].second, order[i].second);  // FIFO among ties
    }
  }
}

TEST(EventQueue, LargeCallableTakesHeapHolderPath) {
  EventQueue q;
  std::array<std::uint8_t, 256> big{};  // > kInlineBytes, by design
  static_assert(sizeof(big) > EventQueue::kInlineBytes);
  big[0] = 1;
  big[255] = 99;
  int sum = 0;
  q.push(10, [big, &sum] { sum = big[0] + big[255]; });
  Time when = 0;
  EventQueue::Event* e = q.pop(&when);
  EventQueue::run(e);
  q.recycle(e);
  EXPECT_EQ(when, 10u);
  EXPECT_EQ(sum, 100);
}

TEST(EventQueue, DestructorReleasesPendingCallables) {
  // Pending events in every tier (near, far, oversized) own resources; the
  // queue's destructor must release them without running the callables.
  auto near_res = std::make_shared<int>(1);
  auto far_res = std::make_shared<int>(2);
  auto big_res = std::make_shared<int>(3);
  bool ran = false;
  {
    EventQueue q;
    q.push(5, [near_res, &ran] { ran = true; });
    q.push(Time{1} << 50, [far_res, &ran] { ran = true; });
    std::array<std::uint8_t, 200> pad{};
    q.push(7, [big_res, pad, &ran] {
      ran = true;
      (void)pad;
    });
    EXPECT_EQ(near_res.use_count(), 2);
    EXPECT_EQ(far_res.use_count(), 2);
    EXPECT_EQ(big_res.use_count(), 2);
  }
  EXPECT_FALSE(ran);
  EXPECT_EQ(near_res.use_count(), 1);
  EXPECT_EQ(far_res.use_count(), 1);
  EXPECT_EQ(big_res.use_count(), 1);
}

TEST(EventQueue, NodesAreRecycledNotLeaked) {
  // Steady-state schedule/dispatch must reuse pooled nodes: after the first
  // burst fills the pool, churning the same depth allocates no new slabs
  // (observable as stable size() behaviour and no growth in far tier).
  EventQueue q;
  std::vector<int> ids;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 64; ++i)
      q.push(static_cast<Time>(round * 10 + i % 3), [&ids, i] { ids.push_back(i); });
    while (!q.empty()) {
      Time when = 0;
      EventQueue::Event* e = q.pop(&when);
      EventQueue::run(e);
      q.recycle(e);
    }
  }
  EXPECT_EQ(ids.size(), 6400u);
}

}  // namespace
}  // namespace oqs::sim
