// Notifier / Flag / Semaphore / Mailbox semantics.
#include "sim/sync.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace oqs::sim {
namespace {

TEST(Notifier, WakesAllCurrentWaiters) {
  Engine e;
  Notifier n(e);
  int woke = 0;
  for (int i = 0; i < 3; ++i)
    e.spawn("w", [&] {
      n.wait();
      ++woke;
    });
  e.schedule(100, [&] { n.notify_all(); });
  e.run();
  EXPECT_EQ(woke, 3);
}

TEST(Notifier, NotifyOneWakesFifo) {
  Engine e;
  Notifier n(e);
  std::vector<int> order;
  for (int i = 0; i < 3; ++i)
    e.spawn("w" + std::to_string(i), [&, i] {
      n.wait();
      order.push_back(i);
    });
  e.schedule(10, [&] { n.notify_one(); });
  e.schedule(20, [&] { n.notify_one(); });
  e.schedule(30, [&] { n.notify_one(); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Flag, WaitAfterSetReturnsImmediately) {
  Engine e;
  Flag f(e);
  Time woke_at = 999;
  e.schedule(0, [&] { f.set(); });
  e.spawn("late", [&] {
    e.sleep(50);
    f.wait();
    woke_at = e.now();
  });
  e.run();
  EXPECT_EQ(woke_at, 50u);
}

TEST(Semaphore, LimitsConcurrency) {
  Engine e;
  Semaphore sem(e, 2);
  int concurrent = 0;
  int peak = 0;
  for (int i = 0; i < 6; ++i)
    e.spawn("s", [&] {
      sem.acquire();
      ++concurrent;
      peak = std::max(peak, concurrent);
      e.sleep(100);
      --concurrent;
      sem.release();
    });
  e.run();
  EXPECT_EQ(peak, 2);
  EXPECT_EQ(e.now(), 300u);  // 6 jobs, 2 wide, 100ns each
}

TEST(Mailbox, DeliversInOrderAndBlocks) {
  Engine e;
  Mailbox<int> mb(e);
  std::vector<int> got;
  e.spawn("consumer", [&] {
    for (int i = 0; i < 4; ++i) got.push_back(mb.recv());
  });
  e.schedule(10, [&] { mb.send(1); });
  e.schedule(20, [&] {
    mb.send(2);
    mb.send(3);
  });
  e.schedule(30, [&] { mb.send(4); });
  e.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Mailbox, TryRecvDoesNotBlock) {
  Engine e;
  Mailbox<std::string> mb(e);
  e.spawn("t", [&] {
    EXPECT_FALSE(mb.try_recv().has_value());
    mb.send("x");
    auto v = mb.try_recv();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, "x");
  });
  e.run();
}

}  // namespace
}  // namespace oqs::sim
