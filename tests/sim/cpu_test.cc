// CPU model: core limits, FIFO handoff, context-switch charging.
#include "sim/cpu.h"

#include "sim/node.h"

#include <gtest/gtest.h>

namespace oqs::sim {
namespace {

TEST(Cpu, SingleFiberRunsUncontended) {
  Engine e;
  Cpu cpu(e, 2, 100);
  e.spawn("a", [&] {
    cpu.compute(1000);
    EXPECT_EQ(e.now(), 1000u);
    cpu.compute(500);
    EXPECT_EQ(e.now(), 1500u);
  });
  e.run();
  // Same fiber kept the core: no context switches charged.
  EXPECT_EQ(cpu.switches(), 0u);
}

TEST(Cpu, TwoCoresRunTwoFibersInParallel) {
  Engine e;
  Cpu cpu(e, 2, 0);
  Time end_a = 0;
  Time end_b = 0;
  e.spawn("a", [&] {
    cpu.compute(1000);
    end_a = e.now();
  });
  e.spawn("b", [&] {
    cpu.compute(1000);
    end_b = e.now();
  });
  e.run();
  EXPECT_EQ(end_a, 1000u);
  EXPECT_EQ(end_b, 1000u);
}

TEST(Cpu, ThirdFiberQueuesOnTwoCores) {
  Engine e;
  Cpu cpu(e, 2, 0);
  Time end_c = 0;
  e.spawn("a", [&] { cpu.compute(1000); });
  e.spawn("b", [&] { cpu.compute(1000); });
  e.spawn("c", [&] {
    cpu.compute(500);
    end_c = e.now();
  });
  e.run();
  // c waits for a core freed at t=1000, then runs 500ns.
  EXPECT_EQ(end_c, 1500u);
}

TEST(Cpu, ContextSwitchChargedOnOccupantChange) {
  Engine e;
  Cpu cpu(e, 1, 250);
  Time end_b = 0;
  e.spawn("a", [&] { cpu.compute(1000); });
  e.spawn("b", [&] {
    cpu.compute(1000);
    end_b = e.now();
  });
  e.run();
  // b starts at 1000, pays the switch, runs 1000.
  EXPECT_EQ(end_b, 2250u);
  EXPECT_EQ(cpu.switches(), 1u);
}

TEST(Cpu, FifoFairnessUnderLoad) {
  Engine e;
  Cpu cpu(e, 1, 0);
  std::vector<int> finish_order;
  for (int i = 0; i < 4; ++i)
    e.spawn("f" + std::to_string(i), [&, i] {
      cpu.compute(100);
      finish_order.push_back(i);
    });
  e.run();
  EXPECT_EQ(finish_order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(e.now(), 400u);
}

TEST(Node, IrqPathSerializesConcurrentInterrupts) {
  Engine e;
  oqs::ModelParams p;
  Node node(e, 0, p);
  // Two interrupts requested at the same instant: the second completes one
  // service time after the first (default IRQ affinity, one CPU handles all).
  const Time t1 = node.irq_reserve(0, 4000);
  const Time t2 = node.irq_reserve(0, 4000);
  EXPECT_EQ(t1, 4000u);
  EXPECT_EQ(t2, 8000u);
  // A later interrupt after the path drained is not delayed.
  const Time t3 = node.irq_reserve(20000, 4000);
  EXPECT_EQ(t3, 24000u);
}

TEST(Cpu, MemoryContentionSlowsConcurrentWork) {
  Engine e;
  Cpu cpu(e, 2, 0, /*memory_contention=*/0.5);
  Time end_a = 0;
  Time end_b = 0;
  e.spawn("a", [&] {
    cpu.compute(1000);
    end_a = e.now();
  });
  e.spawn("b", [&] {
    cpu.compute(1000);
    end_b = e.now();
  });
  e.run();
  // The second fiber starts while the first occupies a core: it pays the
  // shared-bus penalty (the first acquired when no other core was busy).
  EXPECT_EQ(end_a, 1000u);
  EXPECT_EQ(end_b, 1500u);
}

TEST(Cpu, BusyAccountingSumsWork) {
  Engine e;
  Cpu cpu(e, 2, 0);
  e.spawn("a", [&] { cpu.compute(300); });
  e.spawn("b", [&] { cpu.compute(200); });
  e.run();
  EXPECT_EQ(cpu.busy_ns(), 500u);
}

}  // namespace
}  // namespace oqs::sim
