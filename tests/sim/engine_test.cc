// Engine semantics: time ordering, FIFO ties, fiber lifecycle.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <vector>

namespace oqs::sim {
namespace {

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameInstantEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) e.schedule(5, [&, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NestedSchedulingAdvancesTime) {
  Engine e;
  Time second = 0;
  e.schedule(10, [&] { e.schedule(15, [&] { second = e.now(); }); });
  e.run();
  EXPECT_EQ(second, 25u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int ran = 0;
  e.schedule(10, [&] { ++ran; });
  e.schedule(100, [&] { ++ran; });
  e.run_until(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.now(), 50u);
  e.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, StopHaltsTheLoop) {
  Engine e;
  int ran = 0;
  e.schedule(10, [&] {
    ++ran;
    e.stop();
  });
  e.schedule(20, [&] { ++ran; });
  e.run();
  EXPECT_EQ(ran, 1);
}

TEST(Engine, FiberRunsAndCompletes) {
  Engine e;
  bool done = false;
  e.spawn("f", [&] { done = true; });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.live_fibers(), 0u);
}

TEST(Engine, FiberSleepAdvancesSimTime) {
  Engine e;
  Time woke = 0;
  e.spawn("sleeper", [&] {
    e.sleep(1000);
    e.sleep(234);
    woke = e.now();
  });
  e.run();
  EXPECT_EQ(woke, 1234u);
}

TEST(Engine, ManyFibersInterleaveDeterministically) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.spawn("w" + std::to_string(i), [&, i] {
      for (int k = 0; k < 3; ++k) {
        order.push_back(i * 10 + k);
        e.sleep(10);
      }
    });
  }
  e.run();
  ASSERT_EQ(order.size(), 15u);
  // Round-robin by step: all fibers do step k before any does step k+1.
  for (int k = 0; k < 3; ++k)
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(order[static_cast<std::size_t>(k * 5 + i)], i * 10 + k);
}

TEST(Engine, ParkAndUnpark) {
  Engine e;
  bool resumed = false;
  Fiber* f = e.spawn("parked", [&] {
    e.park();
    resumed = true;
  });
  e.schedule(500, [&] { e.unpark(f); });
  e.run();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(e.now(), 500u);
}

TEST(Engine, DeepFiberStackSurvives) {
  Engine e;
  // Recurse a few thousand frames to exercise the fiber stack.
  std::function<int(int)> rec = [&](int n) -> int {
    if (n == 0) return 0;
    volatile char pad[64] = {};
    (void)pad;
    return 1 + rec(n - 1);
  };
  int depth = 0;
  e.spawn("deep", [&] { depth = rec(1500); });
  e.run();
  EXPECT_EQ(depth, 1500);
}

}  // namespace
}  // namespace oqs::sim
