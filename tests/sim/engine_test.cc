// Engine semantics: time ordering, FIFO ties, fiber lifecycle.
#include "sim/engine.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace oqs::sim {
namespace {

TEST(Engine, ExecutesEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule(30, [&] { order.push_back(3); });
  e.schedule(10, [&] { order.push_back(1); });
  e.schedule(20, [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), 30u);
}

TEST(Engine, SameInstantEventsRunFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) e.schedule(5, [&, i] { order.push_back(i); });
  e.run();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Engine, NestedSchedulingAdvancesTime) {
  Engine e;
  Time second = 0;
  e.schedule(10, [&] { e.schedule(15, [&] { second = e.now(); }); });
  e.run();
  EXPECT_EQ(second, 25u);
}

TEST(Engine, RunUntilStopsAtDeadline) {
  Engine e;
  int ran = 0;
  e.schedule(10, [&] { ++ran; });
  e.schedule(100, [&] { ++ran; });
  e.run_until(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(e.now(), 50u);
  e.run();
  EXPECT_EQ(ran, 2);
}

TEST(Engine, StopHaltsTheLoop) {
  Engine e;
  int ran = 0;
  e.schedule(10, [&] {
    ++ran;
    e.stop();
  });
  e.schedule(20, [&] { ++ran; });
  e.run();
  EXPECT_EQ(ran, 1);
}

TEST(Engine, FiberRunsAndCompletes) {
  Engine e;
  bool done = false;
  e.spawn("f", [&] { done = true; });
  e.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(e.live_fibers(), 0u);
}

TEST(Engine, FiberSleepAdvancesSimTime) {
  Engine e;
  Time woke = 0;
  e.spawn("sleeper", [&] {
    e.sleep(1000);
    e.sleep(234);
    woke = e.now();
  });
  e.run();
  EXPECT_EQ(woke, 1234u);
}

TEST(Engine, ManyFibersInterleaveDeterministically) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    e.spawn("w" + std::to_string(i), [&, i] {
      for (int k = 0; k < 3; ++k) {
        order.push_back(i * 10 + k);
        e.sleep(10);
      }
    });
  }
  e.run();
  ASSERT_EQ(order.size(), 15u);
  // Round-robin by step: all fibers do step k before any does step k+1.
  for (int k = 0; k < 3; ++k)
    for (int i = 0; i < 5; ++i)
      EXPECT_EQ(order[static_cast<std::size_t>(k * 5 + i)], i * 10 + k);
}

TEST(Engine, ParkAndUnpark) {
  Engine e;
  bool resumed = false;
  Fiber* f = e.spawn("parked", [&] {
    e.park();
    resumed = true;
  });
  e.schedule(500, [&] { e.unpark(f); });
  e.run();
  EXPECT_TRUE(resumed);
  EXPECT_EQ(e.now(), 500u);
}

TEST(Engine, DeepFiberStackSurvives) {
  Engine e;
  // Recurse a few thousand frames to exercise the fiber stack.
  std::function<int(int)> rec = [&](int n) -> int {
    if (n == 0) return 0;
    volatile char pad[64] = {};
    (void)pad;
    return 1 + rec(n - 1);
  };
  int depth = 0;
  e.spawn("deep", [&] { depth = rec(1500); });
  e.run();
  EXPECT_EQ(depth, 1500);
}

TEST(Engine, NestedRunFromFiberDefersReap) {
  Engine e;
  bool inner_done = false;
  std::size_t held_during_outer = 0;
  e.spawn("outer", [&] {
    e.spawn("inner", [&] { inner_done = true; });
    e.run_until(e.now() + 100);
    // The inner fiber finished inside the nested run, but freeing its stack
    // must wait until the engine loop owns the host stack again: the reap is
    // deferred, so both fibers are still held here.
    held_during_outer = e.fiber_count();
  });
  e.run();
  EXPECT_TRUE(inner_done);
  EXPECT_EQ(held_during_outer, 2u);
  EXPECT_EQ(e.fiber_count(), 0u);
}

TEST(Engine, StackPoolReusesReapedStacks) {
  Engine e;
  e.spawn("a", [] {});
  e.run();
  EXPECT_EQ(e.stacks_allocated(), 1u);
  EXPECT_EQ(e.pooled_stacks(), 1u);
  e.spawn("b", [] {});
  e.run();
  EXPECT_EQ(e.stacks_allocated(), 1u);  // recycled, not freshly allocated
  EXPECT_EQ(e.pooled_stacks(), 1u);
}

TEST(Engine, StackCanaryDetectsOverflow) {
  Engine e;
  Fiber* f = e.spawn("clobber", [] {});
  // Simulate an overflow: scribble the canary region at the stack bottom.
  std::memset(f->stack_base_for_test(), 0, kStackCanaryBytes);
  e.run();
  EXPECT_EQ(e.stack_canary_violations(), 1u);
  EXPECT_EQ(e.pooled_stacks(), 0u);  // a violated stack is never reused
}

TEST(Engine, StackSizeKnobClampsAndDropsStalePool) {
  Engine e;
  e.set_stack_bytes(1);  // clamped to the floor
  EXPECT_EQ(e.stack_bytes(), 64u * 1024);
  e.spawn("small", [] {});
  e.run();
  EXPECT_EQ(e.pooled_stacks(), 1u);
  e.set_stack_bytes(128 * 1024);  // pooled stacks of the old size are dropped
  EXPECT_EQ(e.pooled_stacks(), 0u);
  e.spawn("larger", [] {});
  e.run();
  EXPECT_EQ(e.stacks_allocated(), 2u);
}

}  // namespace
}  // namespace oqs::sim
