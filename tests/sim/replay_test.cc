// Deterministic replay: the simulation is single-threaded with FIFO event
// ordering, so two runs of the same seeded workload must be bit-identical.
// The trace digest (obs/trace.h) is the fingerprint: it folds every
// instrumented event — timestamp, node, layer, name, args — in execution
// order, so any divergence anywhere in the stack shows up here.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "obs/trace.h"
#include "sim/rng.h"
#include "testbed.h"

namespace oqs {
namespace {

constexpr std::size_t kMaxMsg = 8 * 1024;  // crosses the 1984B eager limit

struct RunResult {
  sim::Time final_time = 0;
  std::uint64_t events_executed = 0;
  std::uint64_t digest = 0;
  std::size_t trace_events = 0;
};

// An 8-process ring exchange with seed-derived message sizes: every rank
// isends to its right neighbour and receives from its left, a dozen rounds,
// sizes spanning both eager and rendezvous protocols.
RunResult run_workload(std::uint64_t seed, std::size_t store_limit = 0) {
  obs::Tracer tracer;
  if (store_limit != 0) tracer.set_store_limit(store_limit);
  obs::set_tracer(&tracer);

  test::TestBed bed(8);
  const sim::Time t = bed.run_mpi(8, [seed](mpi::World& w) {
    auto& c = w.comm();
    sim::Rng rng(seed * 1000003u + static_cast<std::uint64_t>(c.rank()));
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<std::uint8_t> out(kMaxMsg, 0x5A);
    std::vector<std::uint8_t> in(kMaxMsg);
    for (int round = 0; round < 12; ++round) {
      const std::size_t len = rng.uniform(1, kMaxMsg);
      auto s = c.isend(out.data(), len, dtype::byte_type(), next, round);
      auto r = c.irecv(in.data(), kMaxMsg, dtype::byte_type(), prev, round);
      s.wait();
      r.wait();
    }
    c.barrier();
  });

  obs::set_tracer(nullptr);
  return {t, bed.engine.events_executed(), tracer.digest(), tracer.size()};
}

// Same workload with the transport pinned to its defaults (the CI env hooks
// rerun the suite under other rail/fragment/collective configurations, which
// would change the event stream and thus the fingerprint).
RunResult run_pinned(std::uint64_t seed) {
  obs::Tracer tracer;
  obs::set_tracer(&tracer);

  test::TestBed bed(8);
  bed.pin_transport = true;
  const sim::Time t = bed.run_mpi(8, [seed](mpi::World& w) {
    auto& c = w.comm();
    sim::Rng rng(seed * 1000003u + static_cast<std::uint64_t>(c.rank()));
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<std::uint8_t> out(kMaxMsg, 0x5A);
    std::vector<std::uint8_t> in(kMaxMsg);
    for (int round = 0; round < 12; ++round) {
      const std::size_t len = rng.uniform(1, kMaxMsg);
      auto s = c.isend(out.data(), len, dtype::byte_type(), next, round);
      auto r = c.irecv(in.data(), kMaxMsg, dtype::byte_type(), prev, round);
      s.wait();
      r.wait();
    }
    c.barrier();
  });

  obs::set_tracer(nullptr);
  return {t, bed.engine.events_executed(), tracer.digest(), tracer.size()};
}

// Golden fingerprints captured on the original binary-heap event queue.
// A kernel replacement (calendar queue, node pooling) must preserve the
// exact dispatch order — (when, seq) FIFO — so the digest, the event count
// and the final time may never drift. If a deliberate model change moves
// these values, recapture them in the same commit and say why.
TEST(Replay, GoldenDigestMatchesBinaryHeapBaseline) {
#if defined(OQS_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (-DOQS_TRACE=OFF)";
#else
  // pin_transport cannot gate the fluid knob (it is applied at TestBed
  // construction), and fluid mode legitimately executes fewer events.
  if (test::env_fluid())
    GTEST_SKIP() << "OQS_TEST_FLUID changes the event stream by design";
  struct Golden {
    std::uint64_t seed;
    std::uint64_t digest;
    std::uint64_t events;
    sim::Time final_time;
  };
  constexpr Golden kGolden[] = {
      {42, 0x3180821c9c33fe3aull, 19680ull, 1389957ull},
      {7, 0x889fc51b039c48c3ull, 18886ull, 1384746ull},
  };
  for (const Golden& g : kGolden) {
    const RunResult r = run_pinned(g.seed);
    EXPECT_EQ(r.digest, g.digest) << "seed " << g.seed;
    EXPECT_EQ(r.events_executed, g.events) << "seed " << g.seed;
    EXPECT_EQ(r.final_time, g.final_time) << "seed " << g.seed;
  }
#endif
}

TEST(Replay, SameSeedIsBitIdentical) {
  const RunResult a = run_workload(42);
  const RunResult b = run_workload(42);
#if !defined(OQS_TRACE_DISABLED)
  EXPECT_GT(a.trace_events, 0u) << "instrumentation recorded nothing";
#endif
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.trace_events, b.trace_events);
}

TEST(Replay, DifferentSeedDiverges) {
#if defined(OQS_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (-DOQS_TRACE=OFF)";
#else
  const RunResult a = run_workload(42);
  const RunResult b = run_workload(43);
  // Different message sizes → different protocol decisions → different
  // event stream. Final times could theoretically collide; digests cannot
  // (well, modulo 2^-64).
  EXPECT_NE(a.digest, b.digest);
#endif
}

TEST(Replay, DigestCoversDroppedEvents) {
#if defined(OQS_TRACE_DISABLED)
  GTEST_SKIP() << "instrumentation compiled out (-DOQS_TRACE=OFF)";
#else
  // The storage cap limits retention, not the fingerprint: a capped tracer
  // must produce the same digest as an uncapped one over the same run.
  const RunResult full = run_workload(7);
  const RunResult capped = run_workload(7, /*store_limit=*/64);
  EXPECT_EQ(capped.trace_events, 64u);
  EXPECT_EQ(full.digest, capped.digest);
#endif
}

}  // namespace
}  // namespace oqs
