// Shared test harness: one simulated testbed (the paper's 8-node cluster)
// plus helpers to run MPI programs on it.
#pragma once

#include <cstdlib>
#include <functional>
#include <memory>

#include "openqs.h"

namespace oqs::test {

// CI variation hooks. Tests that leave the relevant mpi::Options at their
// defaults pick these up, so one build can run the whole suite again as a
// multirail and/or multi-network configuration:
//   OQS_TEST_RAILS=N  bring up N Elan4 rails (fabric + PTL modules)
//   OQS_TEST_TCP=1    additionally enable the TCP PTL beside Elan4
//   OQS_TEST_FRAG=N   pipelined-rendezvous fragment size override (bytes) —
//                     a small value forces multi-fragment schedules on
//                     every long message in the suite
//   OQS_TEST_DEPTH=N  pipelined-rendezvous per-rail depth override
//   OQS_TEST_FLUID=1  enable the fluid bulk-transfer fast path
//                     (ModelParams::fluid_bulk) for every TestBed. The path
//                     is timing-conformant in the uncontended model, so the
//                     whole suite must pass unchanged; only tests pinning a
//                     dispatch-order digest need to opt out.
//   OQS_TEST_COLL=M   force a collectives mode for every routed collective:
//                     p2p (reference algorithms only), nic (NIC combining
//                     tree for barrier/allreduce), hier (hierarchical, p2p
//                     inter phase), hiernic (hierarchical with NIC inter
//                     phase). Applied only when the test left every coll
//                     knob at kAuto.
inline int env_rails() {
  const char* v = std::getenv("OQS_TEST_RAILS");
  const int n = v != nullptr ? std::atoi(v) : 1;
  return n >= 1 ? n : 1;
}

inline bool env_tcp() {
  const char* v = std::getenv("OQS_TEST_TCP");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline bool env_fluid() {
  const char* v = std::getenv("OQS_TEST_FLUID");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline std::size_t env_frag() {
  const char* v = std::getenv("OQS_TEST_FRAG");
  const long long n = v != nullptr ? std::atoll(v) : 0;
  return n > 0 ? static_cast<std::size_t>(n) : 0;
}

inline int env_depth() {
  const char* v = std::getenv("OQS_TEST_DEPTH");
  const int n = v != nullptr ? std::atoi(v) : 0;
  return n > 0 ? n : 0;
}

// Maps OQS_TEST_COLL onto opts.coll; no-op when unset or unrecognized.
inline void env_coll(mpi::coll::CollOptions* coll) {
  const char* v = std::getenv("OQS_TEST_COLL");
  if (v == nullptr) return;
  const std::string mode(v);
  using namespace mpi::coll;
  if (mode == "p2p") {
    coll->barrier = BarrierAlg::kDissemination;
    coll->bcast = BcastAlg::kBinomial;
    coll->reduce = ReduceAlg::kBinomial;
    coll->allreduce = AllreduceAlg::kRecursiveDoubling;
    coll->hier = false;
    coll->nic = false;
  } else if (mode == "nic") {
    coll->barrier = BarrierAlg::kNic;
    coll->allreduce = AllreduceAlg::kNic;
    coll->hier = false;
  } else if (mode == "hier") {
    coll->barrier = BarrierAlg::kHier;
    coll->bcast = BcastAlg::kHier;
    coll->reduce = ReduceAlg::kHier;
    coll->allreduce = AllreduceAlg::kHier;
    coll->nic = false;
  } else if (mode == "hiernic") {
    coll->barrier = BarrierAlg::kHier;
    coll->bcast = BcastAlg::kHier;
    coll->reduce = ReduceAlg::kHier;
    coll->allreduce = AllreduceAlg::kHier;
  }
}

struct TestBed {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<elan4::QsNet> net;
  std::unique_ptr<rte::Runtime> rt;
  // Tests whose assertions depend on the exact transport configuration
  // (1-rail vs 2-rail comparisons, single-PTL blocking ladders, PTL-level
  // counters the striped path bypasses) set this to ignore the env hooks.
  bool pin_transport = false;

  explicit TestBed(int nodes = 8, int rails = 1, ModelParams p = {})
      : params(p) {
    if (rails < env_rails()) rails = env_rails();
    // A model knob, not a transport option: it must be set before the QsNet
    // exists, so pin_transport (read at run_mpi time) cannot gate it.
    if (env_fluid()) params.fluid_bulk = true;
    net = std::make_unique<elan4::QsNet>(engine, params, nodes, 64, rails);
    rt = std::make_unique<rte::Runtime>(engine, *net);
  }

  // Launch `n` MPI processes running `body`, then drive the simulation to
  // completion. Returns the final simulated time (ns).
  sim::Time run_mpi(int n, std::function<void(mpi::World&)> body,
                    mpi::Options opts = {}) {
    // Apply the environment variation only where it cannot change what a
    // test explicitly configured: rails need polling progress, and both
    // knobs respect a non-default setting.
    if (!pin_transport) {
      if (opts.use_elan4 && opts.elan4.rails == 1 &&
          opts.elan4.progress == ptl_elan4::Progress::kPolling)
        opts.elan4.rails = env_rails();
      if (opts.use_elan4 && !opts.use_tcp && env_tcp()) opts.use_tcp = true;
      if (opts.pipeline_frag_bytes == 0) opts.pipeline_frag_bytes = env_frag();
      if (opts.pipeline_depth == 0) opts.pipeline_depth = env_depth();
      if (opts.coll.all_auto()) env_coll(&opts.coll);
    }
    auto shared = std::make_shared<std::function<void(mpi::World&)>>(std::move(body));
    rt->launch(n, [this, opts, shared](rte::Env& env) {
      mpi::World world(env, *net, opts);
      (*shared)(world);
    });
    return engine.run();
  }
};

}  // namespace oqs::test
