// Shared test harness: one simulated testbed (the paper's 8-node cluster)
// plus helpers to run MPI programs on it.
#pragma once

#include <functional>
#include <memory>

#include "openqs.h"

namespace oqs::test {

struct TestBed {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<elan4::QsNet> net;
  std::unique_ptr<rte::Runtime> rt;

  explicit TestBed(int nodes = 8, int rails = 1) {
    net = std::make_unique<elan4::QsNet>(engine, params, nodes, 64, rails);
    rt = std::make_unique<rte::Runtime>(engine, *net);
  }

  // Launch `n` MPI processes running `body`, then drive the simulation to
  // completion. Returns the final simulated time (ns).
  sim::Time run_mpi(int n, std::function<void(mpi::World&)> body,
                    mpi::Options opts = {}) {
    auto shared = std::make_shared<std::function<void(mpi::World&)>>(std::move(body));
    rt->launch(n, [this, opts, shared](rte::Env& env) {
      mpi::World world(env, *net, opts);
      (*shared)(world);
    });
    return engine.run();
  }
};

}  // namespace oqs::test
