// Intrusive list and free list semantics.
#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "base/free_list.h"
#include "base/intrusive_list.h"

namespace oqs {
namespace {

struct TagA;
struct TagB;
struct Node : ListItem<TagA>, ListItem<TagB> {
  explicit Node(int v = 0) : value(v) {}
  int value;
};

TEST(IntrusiveList, PushPopFifo) {
  IntrusiveList<Node, TagA> list;
  Node a(1);
  Node b(2);
  Node c(3);
  list.push_back(a);
  list.push_back(b);
  list.push_back(c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.pop_front()->value, 1);
  EXPECT_EQ(list.pop_front()->value, 2);
  EXPECT_EQ(list.pop_front()->value, 3);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.pop_front(), nullptr);
}

TEST(IntrusiveList, PushFrontAndBack) {
  IntrusiveList<Node, TagA> list;
  Node a(1);
  Node b(2);
  list.push_back(a);
  list.push_front(b);
  EXPECT_EQ(list.front().value, 2);
  EXPECT_EQ(list.back().value, 1);
  list.clear();
}

TEST(IntrusiveList, EraseFromMiddle) {
  IntrusiveList<Node, TagA> list;
  std::array<Node, 5> nodes;
  for (int i = 0; i < 5; ++i) nodes[static_cast<std::size_t>(i)].value = i;
  for (auto& n : nodes) list.push_back(n);
  list.erase(nodes[2]);
  EXPECT_FALSE(static_cast<ListItem<TagA>&>(nodes[2]).linked());
  std::vector<int> got;
  for (Node& n : list) got.push_back(n.value);
  EXPECT_EQ(got, (std::vector<int>{0, 1, 3, 4}));
  list.clear();
}

TEST(IntrusiveList, IteratorEraseReturnsNext) {
  IntrusiveList<Node, TagA> list;
  std::array<Node, 4> nodes;
  for (int i = 0; i < 4; ++i) nodes[static_cast<std::size_t>(i)].value = i;
  for (auto& n : nodes) list.push_back(n);
  for (auto it = list.begin(); it != list.end();) {
    if (it->value % 2 == 0)
      it = list.erase(it);
    else
      ++it;
  }
  std::vector<int> got;
  for (Node& n : list) got.push_back(n.value);
  EXPECT_EQ(got, (std::vector<int>{1, 3}));
  list.clear();
}

TEST(IntrusiveList, TwoTagsIndependentMembership) {
  IntrusiveList<Node, TagA> la;
  IntrusiveList<Node, TagB> lb;
  Node n(7);
  la.push_back(n);
  lb.push_back(n);  // same object on two lists via distinct tags
  EXPECT_EQ(la.size(), 1u);
  EXPECT_EQ(lb.size(), 1u);
  la.erase(n);
  EXPECT_EQ(lb.size(), 1u);  // still on the other list
  lb.erase(n);
}

TEST(FreeList, RecyclesObjects) {
  FreeList<Node> pool(2, 2);
  Node* a = pool.get();
  Node* b = pool.get();
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.outstanding(), 2u);
  pool.put(a);
  Node* c = pool.get();
  EXPECT_EQ(c, a);  // recycled, not newly allocated
  pool.put(b);
  pool.put(c);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(FreeList, GrowsOnDemand) {
  FreeList<Node> pool(1, 4);
  std::vector<Node*> got;
  for (int i = 0; i < 9; ++i) got.push_back(pool.get());
  EXPECT_GE(pool.total(), 9u);
  for (Node* n : got) pool.put(n);
}

TEST(FreeList, RespectsMaxBound) {
  FreeList<Node> pool(1, 1, /*max=*/3);
  Node* a = pool.get();
  Node* b = pool.get();
  Node* c = pool.get();
  EXPECT_EQ(pool.get(), nullptr);  // exhausted
  pool.put(a);
  EXPECT_NE(pool.get(), nullptr);
  pool.put(b);
  pool.put(c);
}

}  // namespace
}  // namespace oqs
