// CRC32C known-answer and property tests.
#include "base/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "sim/rng.h"

namespace oqs {
namespace {

TEST(Crc32c, KnownAnswers) {
  // RFC 3720 test vectors for CRC32C.
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::vector<std::uint8_t> ones(32, 0xFF);
  EXPECT_EQ(crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  std::vector<std::uint8_t> inc(32);
  for (int i = 0; i < 32; ++i) inc[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(crc32c(inc.data(), inc.size()), 0x46DD794Eu);
}

TEST(Crc32c, EmptyInput) {
  EXPECT_EQ(crc32c(nullptr, 0), 0u);
}

TEST(Crc32c, SingleBitFlipChangesChecksum) {
  sim::Rng rng(1234);
  std::vector<std::uint8_t> buf(512);
  rng.fill(buf.data(), buf.size());
  const std::uint32_t base = crc32c(buf.data(), buf.size());
  for (int trial = 0; trial < 64; ++trial) {
    const std::size_t byte = rng.uniform(0, buf.size() - 1);
    const int bit = static_cast<int>(rng.uniform(0, 7));
    buf[byte] ^= static_cast<std::uint8_t>(1 << bit);
    EXPECT_NE(crc32c(buf.data(), buf.size()), base);
    buf[byte] ^= static_cast<std::uint8_t>(1 << bit);  // restore
  }
  EXPECT_EQ(crc32c(buf.data(), buf.size()), base);
}

TEST(Crc32c, SeedChainsIncrementalUse) {
  std::vector<std::uint8_t> buf(100);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::uint8_t>(i);
  const std::uint32_t whole = crc32c(buf.data(), buf.size());
  const std::uint32_t first = crc32c(buf.data(), 40);
  const std::uint32_t chained = crc32c(buf.data() + 40, 60, first);
  EXPECT_EQ(chained, whole);
}

}  // namespace
}  // namespace oqs
