// MPICH-QsNetII baseline: correctness of the comparison MPI, and the
// structural latency relationship the paper reports against Open MPI.
#include "mpich/mpich.h"

#include <gtest/gtest.h>

#include <numeric>

#include "testbed.h"

namespace oqs {
namespace {

struct MpichBed {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<elan4::QsNet> net;
  std::unique_ptr<rte::Runtime> rt;
  std::unique_ptr<tport::TportDomain> domain;

  MpichBed() {
    net = std::make_unique<elan4::QsNet>(engine, params, 8);
    rt = std::make_unique<rte::Runtime>(engine, *net);
    domain = std::make_unique<tport::TportDomain>(*net);
  }

  sim::Time run(int n, std::function<void(mpich::MpichWorld&)> body) {
    auto shared =
        std::make_shared<std::function<void(mpich::MpichWorld&)>>(std::move(body));
    rt->launch(n, [this, shared](rte::Env& env) {
      mpich::MpichWorld w(env, *domain);
      (*shared)(w);
    });
    return engine.run();
  }
};

TEST(Mpich, PingPongAllSizes) {
  MpichBed bed;
  bed.run(2, [&](mpich::MpichWorld& w) {
    for (std::size_t bytes : {0ul, 4ul, 2048ul, 100000ul}) {
      std::vector<std::uint8_t> buf(bytes);
      std::iota(buf.begin(), buf.end(), 1);
      if (w.rank() == 0) {
        w.send(buf.data(), bytes, 1, 0);
        std::vector<std::uint8_t> back(bytes, 0);
        w.recv(back.data(), bytes, 1, 0);
        EXPECT_EQ(back, buf);
      } else {
        std::vector<std::uint8_t> got(bytes, 0);
        w.recv(got.data(), bytes, 0, 0);
        w.send(got.data(), bytes, 0, 0);
      }
    }
    w.barrier();
  });
}

TEST(Mpich, WildcardsAndStatus) {
  MpichBed bed;
  bed.run(3, [&](mpich::MpichWorld& w) {
    if (w.rank() != 0) {
      std::uint32_t v = static_cast<std::uint32_t>(w.rank() * 10);
      w.send(&v, 4, 0, w.rank());
    } else {
      for (int i = 0; i < 2; ++i) {
        std::uint32_t v = 0;
        mpich::RecvStatus st;
        w.recv(&v, 4, mpich::kAnySource, mpich::kAnyTag, &st);
        EXPECT_EQ(v, static_cast<std::uint32_t>(st.source * 10));
        EXPECT_EQ(st.tag, st.source);
      }
    }
    w.barrier();
  });
}

TEST(Mpich, NonblockingOverlap) {
  MpichBed bed;
  bed.run(2, [&](mpich::MpichWorld& w) {
    constexpr int kN = 10;
    std::vector<std::vector<std::uint8_t>> bufs;
    if (w.rank() == 0) {
      std::vector<tport::Tport::TxReq*> txs;
      for (int i = 0; i < kN; ++i) {
        bufs.emplace_back(5000, static_cast<std::uint8_t>(i));
        txs.push_back(w.isend(bufs.back().data(), bufs.back().size(), 1, i));
      }
      for (auto* t : txs) w.wait(t);
    } else {
      std::vector<tport::Tport::RxReq*> rxs;
      for (int i = 0; i < kN; ++i) {
        bufs.emplace_back(5000, 0);
        rxs.push_back(w.irecv(bufs.back().data(), bufs.back().size(), 0, i));
      }
      for (int i = 0; i < kN; ++i) {
        w.wait(rxs[static_cast<std::size_t>(i)]);
        EXPECT_EQ(bufs[static_cast<std::size_t>(i)],
                  std::vector<std::uint8_t>(5000, static_cast<std::uint8_t>(i)));
      }
    }
    w.barrier();
  });
}

TEST(Mpich, TruncationReported) {
  MpichBed bed;
  bed.run(2, [&](mpich::MpichWorld& w) {
    if (w.rank() == 0) {
      std::vector<std::uint8_t> big(500, 1);
      w.send(big.data(), big.size(), 1, 0);
    } else {
      std::vector<std::uint8_t> small(100, 0);
      mpich::RecvStatus st;
      w.recv(small.data(), small.size(), 0, 0, &st);
      EXPECT_TRUE(st.truncated);
      EXPECT_EQ(st.bytes, 100u);
      EXPECT_EQ(small, std::vector<std::uint8_t>(100, 1));
    }
    w.barrier();
  });
}

TEST(Mpich, BarrierAcrossEight) {
  MpichBed bed;
  bed.run(8, [&](mpich::MpichWorld& w) {
    for (int i = 0; i < 10; ++i) w.barrier();
  });
}

TEST(Mpich, SmallMessageLatencyBeatsOpenMpi) {
  // The paper's Fig. 10a: MPICH-QsNetII is lower for small messages because
  // of the 32B header and NIC-side matching.
  double mpich_us = 0;
  {
    MpichBed bed;
    bed.run(2, [&](mpich::MpichWorld& w) {
      std::uint32_t v = 0;
      w.barrier();
      const sim::Time t0 = bed.engine.now();
      for (int i = 0; i < 100; ++i) {
        if (w.rank() == 0) {
          w.send(&v, 4, 1, 0);
          w.recv(&v, 4, 1, 0);
        } else {
          w.recv(&v, 4, 0, 0);
          w.send(&v, 4, 0, 0);
        }
      }
      if (w.rank() == 0) mpich_us = sim::to_us(bed.engine.now() - t0) / 200.0;
      w.barrier();
    });
  }
  double ompi_us = 0;
  {
    test::TestBed bed;
    bed.run_mpi(2, [&](mpi::World& w) {
      auto& c = w.comm();
      std::uint32_t v = 0;
      c.barrier();
      const sim::Time t0 = bed.engine.now();
      for (int i = 0; i < 100; ++i) {
        if (c.rank() == 0) {
          c.send(&v, 4, dtype::byte_type(), 1, 0);
          c.recv(&v, 4, dtype::byte_type(), 1, 0);
        } else {
          c.recv(&v, 4, dtype::byte_type(), 0, 0);
          c.send(&v, 4, dtype::byte_type(), 0, 0);
        }
      }
      if (c.rank() == 0) ompi_us = sim::to_us(bed.engine.now() - t0) / 200.0;
      c.barrier();
    });
  }
  EXPECT_LT(mpich_us, ompi_us);
  // "Slightly lower but comparable": within ~2.5x, not an order of magnitude.
  EXPECT_GT(mpich_us * 2.5, ompi_us);
}

}  // namespace
}  // namespace oqs
