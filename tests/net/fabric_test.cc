// Fabric timing: latency composition, serialization, bandwidth sharing.
#include "net/fabric.h"

#include <gtest/gtest.h>

namespace oqs::net {
namespace {

ModelParams simple_params() {
  ModelParams p;
  p.hop_ns = 100;
  p.link_startup_ns = 0;
  p.link_mbps = 1000.0;  // 1 byte/ns
  return p;
}

TEST(Fabric, UncontendedLatencyIsHopsPlusSerialization) {
  sim::Engine e;
  ModelParams p = simple_params();
  Fabric f(e, p, 4);
  sim::Time arrived = 0;
  f.transmit(0, 1, 1000, [&] { arrived = e.now(); });
  e.run();
  // 2 hops * 100ns + 1000B at 1B/ns.
  EXPECT_EQ(arrived, 2 * 100u + 1000u);
}

TEST(Fabric, ZeroByteControlPacketStillPaysHops) {
  sim::Engine e;
  ModelParams p = simple_params();
  Fabric f(e, p, 2);
  sim::Time arrived = 0;
  f.transmit(0, 1, 0, [&] { arrived = e.now(); });
  e.run();
  EXPECT_EQ(arrived, 200u);
}

TEST(Fabric, LoopbackBypassesFabric) {
  sim::Engine e;
  ModelParams p = simple_params();
  Fabric f(e, p, 2);
  sim::Time arrived = 0;
  f.transmit(1, 1, 4096, [&] { arrived = e.now(); });
  e.run();
  EXPECT_EQ(arrived, p.hop_ns);
}

TEST(Fabric, BackToBackPacketsSerializeOnInjectionLink) {
  sim::Engine e;
  ModelParams p = simple_params();
  Fabric f(e, p, 4);
  std::vector<sim::Time> arrivals;
  for (int i = 0; i < 3; ++i)
    f.transmit(0, 1, 1000, [&] { arrivals.push_back(e.now()); });
  e.run();
  ASSERT_EQ(arrivals.size(), 3u);
  EXPECT_EQ(arrivals[0], 1200u);
  // Each subsequent packet departs when the link frees: +1000ns apart.
  EXPECT_EQ(arrivals[1], 2200u);
  EXPECT_EQ(arrivals[2], 3200u);
}

TEST(Fabric, FlowsToDistinctDestsShareSourceLink) {
  sim::Engine e;
  ModelParams p = simple_params();
  Fabric f(e, p, 4);
  sim::Time t1 = 0;
  sim::Time t2 = 0;
  f.transmit(0, 1, 1000, [&] { t1 = e.now(); });
  f.transmit(0, 2, 1000, [&] { t2 = e.now(); });
  e.run();
  EXPECT_EQ(t1, 1200u);
  EXPECT_EQ(t2, 2200u);  // injection link is the bottleneck
}

TEST(Fabric, FlowsFromDistinctSourcesToOneDestShareEjectionLink) {
  sim::Engine e;
  ModelParams p = simple_params();
  Fabric f(e, p, 4);
  sim::Time t1 = 0;
  sim::Time t2 = 0;
  f.transmit(1, 0, 1000, [&] { t1 = e.now(); });
  f.transmit(2, 0, 1000, [&] { t2 = e.now(); });
  e.run();
  EXPECT_EQ(t1, 1200u);
  EXPECT_EQ(t2, 2200u);
}

TEST(Fabric, DisjointPairsDoNotInterfere) {
  sim::Engine e;
  ModelParams p = simple_params();
  Fabric f(e, p, 4);
  sim::Time t1 = 0;
  sim::Time t2 = 0;
  f.transmit(0, 1, 1000, [&] { t1 = e.now(); });
  f.transmit(2, 3, 1000, [&] { t2 = e.now(); });
  e.run();
  EXPECT_EQ(t1, 1200u);
  EXPECT_EQ(t2, 1200u);
}

TEST(Fabric, RailsAreIndependent) {
  sim::Engine e;
  ModelParams p = simple_params();
  Fabric f(e, p, 4, /*rails=*/2);
  sim::Time t1 = 0;
  sim::Time t2 = 0;
  f.transmit(0, 1, 1000, [&] { t1 = e.now(); }, /*rail=*/0);
  f.transmit(0, 1, 1000, [&] { t2 = e.now(); }, /*rail=*/1);
  e.run();
  EXPECT_EQ(t1, 1200u);
  EXPECT_EQ(t2, 1200u);  // no sharing across rails
}

TEST(Fabric, FatTreeUsedAboveEightNodes) {
  sim::Engine e;
  ModelParams p = simple_params();
  Fabric f(e, p, 16);
  EXPECT_EQ(f.hops(0, 1), 2);
  EXPECT_EQ(f.hops(0, 15), 4);
  sim::Time arrived = 0;
  f.transmit(0, 15, 1000, [&] { arrived = e.now(); });
  e.run();
  EXPECT_EQ(arrived, 4 * 100u + 1000u);
}

}  // namespace
}  // namespace oqs::net
