// Topology construction and routing.
#include "net/topology.h"

#include <gtest/gtest.h>

namespace oqs::net {
namespace {

TEST(SingleSwitch, TwoHopsBetweenAnyDistinctPair) {
  SingleSwitch sw(8);
  for (int s = 0; s < 8; ++s)
    for (int d = 0; d < 8; ++d)
      EXPECT_EQ(sw.hops(s, d), s == d ? 0 : 2);
}

TEST(SingleSwitch, RouteSharesUpLinkPerSourceDownLinkPerDest) {
  SingleSwitch sw(4);
  std::vector<Link*> r02;
  std::vector<Link*> r03;
  std::vector<Link*> r12;
  sw.route(0, 2, r02);
  sw.route(0, 3, r03);
  sw.route(1, 2, r12);
  ASSERT_EQ(r02.size(), 2u);
  EXPECT_EQ(r02[0], r03[0]);  // same source injection link
  EXPECT_NE(r02[1], r03[1]);  // different ejection links
  EXPECT_NE(r02[0], r12[0]);
  EXPECT_EQ(r02[1], r12[1]);  // same destination ejection link
}

TEST(SingleSwitch, LoopbackHasEmptyRoute) {
  SingleSwitch sw(2);
  std::vector<Link*> r;
  sw.route(1, 1, r);
  EXPECT_TRUE(r.empty());
}

TEST(FatTree, SixteenNodesTwoLevels) {
  QuaternaryFatTree ft(16);
  EXPECT_EQ(ft.levels(), 2);
  // Same quad: one level up + down = 2 hops.
  EXPECT_EQ(ft.hops(0, 1), 2);
  EXPECT_EQ(ft.hops(4, 7), 2);
  // Different quads: climb both levels = 4 hops.
  EXPECT_EQ(ft.hops(0, 4), 4);
  EXPECT_EQ(ft.hops(3, 15), 4);
  EXPECT_EQ(ft.hops(9, 9), 0);
}

TEST(FatTree, SixtyFourNodesThreeLevels) {
  QuaternaryFatTree ft(64);
  EXPECT_EQ(ft.levels(), 3);
  EXPECT_EQ(ft.hops(0, 3), 2);
  EXPECT_EQ(ft.hops(0, 15), 4);
  EXPECT_EQ(ft.hops(0, 63), 6);
}

TEST(FatTree, RouteLengthMatchesHops) {
  QuaternaryFatTree ft(64);
  std::vector<Link*> r;
  for (int s = 0; s < 64; s += 7)
    for (int d = 0; d < 64; d += 5) {
      ft.route(s, d, r);
      EXPECT_EQ(static_cast<int>(r.size()), ft.hops(s, d)) << s << "->" << d;
    }
}

TEST(FatTree, UpPathOwnedBySourceDownPathByDest) {
  QuaternaryFatTree ft(16);
  std::vector<Link*> a;
  std::vector<Link*> b;
  ft.route(0, 12, a);  // 4 hops: up0, up1, dn1, dn0
  ft.route(0, 13, b);
  ASSERT_EQ(a.size(), 4u);
  EXPECT_EQ(a[0], b[0]);
  EXPECT_EQ(a[1], b[1]);  // shared up path (same source)
  EXPECT_NE(a[2], b[2]);  // distinct down paths
  EXPECT_NE(a[3], b[3]);
}

}  // namespace
}  // namespace oqs::net
