// Tracer unit tests: digest semantics, storage cap, Chrome JSON shape.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

namespace oqs::obs {
namespace {

TEST(Tracer, RecordsEventsInOrder) {
  Tracer t;
  t.record('i', 0, "sim", "alpha", "n", 1);
  t.record('i', 1, "elan4", "beta");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_STREQ(t.events()[0].name, "alpha");
  EXPECT_EQ(t.events()[0].v0, 1u);
  EXPECT_STREQ(t.events()[1].layer, "elan4");
}

TEST(Tracer, DigestIsOrderSensitive) {
  Tracer ab;
  ab.record('i', 0, "sim", "a");
  ab.record('i', 0, "sim", "b");
  Tracer ba;
  ba.record('i', 0, "sim", "b");
  ba.record('i', 0, "sim", "a");
  EXPECT_NE(ab.digest(), ba.digest());

  Tracer ab2;
  ab2.record('i', 0, "sim", "a");
  ab2.record('i', 0, "sim", "b");
  EXPECT_EQ(ab.digest(), ab2.digest());
}

TEST(Tracer, DigestSeesArgsAndNode) {
  Tracer a, b;
  a.record('i', 0, "sim", "x", "len", 100);
  b.record('i', 0, "sim", "x", "len", 101);
  EXPECT_NE(a.digest(), b.digest());

  Tracer c, d;
  c.record('i', 3, "sim", "x");
  d.record('i', 4, "sim", "x");
  EXPECT_NE(c.digest(), d.digest());
}

TEST(Tracer, StoreLimitDropsStorageNotDigest) {
  Tracer full, capped;
  capped.set_store_limit(2);
  for (int i = 0; i < 10; ++i) {
    full.record('i', 0, "sim", "e", "i", static_cast<std::uint64_t>(i));
    capped.record('i', 0, "sim", "e", "i", static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(full.size(), 10u);
  EXPECT_EQ(capped.size(), 2u);
  EXPECT_EQ(capped.dropped(), 8u);
  EXPECT_EQ(full.digest(), capped.digest());
}

TEST(Tracer, CountLayer) {
  Tracer t;
  t.record('i', 0, "sim", "a");
  t.record('i', 0, "pml", "b");
  t.record('i', 0, "sim", "c");
  EXPECT_EQ(t.count_layer("sim"), 2u);
  EXPECT_EQ(t.count_layer("pml"), 1u);
  EXPECT_EQ(t.count_layer("ptl"), 0u);
}

TEST(Tracer, ChromeJsonHasEventsAndArgs) {
  Tracer t;
  set_clock([] { return TimeNs{2500}; });
  set_tracer(&t);
  t.record('i', 1, "pml", "send.eager", "len", 64, "dst", 3);
  t.record_span(500, 2, "ptl", "send_first", "len", 64);
  set_tracer(nullptr);
  set_clock(nullptr);

  std::ostringstream os;
  t.write_chrome_json(os);
  const std::string js = os.str();
  EXPECT_NE(js.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(js.find("\"send.eager\""), std::string::npos);
  EXPECT_NE(js.find("\"pml\""), std::string::npos);
  EXPECT_NE(js.find("\"len\""), std::string::npos);
  EXPECT_NE(js.find("\"ph\":\"X\""), std::string::npos);  // the span
  EXPECT_NE(js.find("\"ph\":\"i\""), std::string::npos);  // the instant
  // 2000ns span -> 2us duration in chrome's microsecond unit.
  EXPECT_NE(js.find("\"dur\":2.000"), std::string::npos);
  // Balanced braces is a cheap well-formedness proxy (no JSON lib here).
  EXPECT_EQ(std::count(js.begin(), js.end(), '{'),
            std::count(js.begin(), js.end(), '}'));
}

TEST(Span, EmitsCompleteEventCoveringScope) {
  Tracer t;
  TimeNs now = 1000;
  set_clock([&now] { return now; });
  set_tracer(&t);
  {
    Span span(5, "pml", "start_send", "len", 4096);
    now = 4000;  // simulated time advances inside the scope
  }
  set_tracer(nullptr);
  set_clock(nullptr);

  ASSERT_EQ(t.size(), 1u);
  const TraceEvent& e = t.events()[0];
  EXPECT_EQ(e.ph, 'X');
  EXPECT_EQ(e.ts, 1000u);
  EXPECT_EQ(e.dur, 3000u);
  EXPECT_EQ(e.node, 5);
  EXPECT_STREQ(e.name, "start_send");
}

TEST(Macros, SafeWithNoTracerInstalled) {
  set_tracer(nullptr);
  // Must not crash or record anywhere.
  OQS_TRACE_INSTANT(0, "sim", "noop", "x", 1);
  OQS_TRACE_SPAN(span_, 0, "sim", "noop_span");
  SUCCEED();
}

}  // namespace
}  // namespace oqs::obs
