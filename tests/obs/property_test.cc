// Property tests: randomized workloads over the full MPI stack, with
// invariants asserted on the metric registry rather than on return values.
// Each iteration draws a fresh seed; the seed is printed on failure so any
// counterexample replays exactly (the simulation is deterministic).
//
// Invariants:
//   1. elan4.rdma.tx_bytes == elan4.rdma.rx_bytes   — every RDMA byte the
//      NICs inject lands somewhere; the fabric loses nothing.
//   2. pml.send.eager + pml.send.rendezvous == pml.send.total — the
//      protocol switch covers all sends, exactly once each.
//   3. elan4.qdma.depth.hiwater <= qslots — no receive queue ever held
//      more slots than it was created with.
//
// Iteration count scales with OQS_PROP_ITERS (the `slow` CTest variant
// raises it); OQS_PROP_SEED pins the base seed for replaying a failure.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "sim/rng.h"
#include "testbed.h"

namespace oqs {
namespace {

constexpr std::size_t kEagerLimit = 1984;  // PtlElan4::eager_limit() default

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::strtoull(v, nullptr, 0) : fallback;
}

// A seed-derived workload: `procs` ranks, several rounds of ring exchange
// with per-message random sizes straddling the eager limit, plus a final
// all-to-one so unexpected-queue paths get exercised.
void run_random_workload(std::uint64_t seed) {
  const std::size_t max_msg = 3 * kEagerLimit;
  test::TestBed bed(8);
  sim::Rng shape(seed);
  const int procs = 2 + static_cast<int>(shape.uniform(0, 6));  // 2..8
  const int rounds = 4 + static_cast<int>(shape.uniform(0, 8));

  bed.run_mpi(procs, [seed, rounds, max_msg](mpi::World& w) {
    auto& c = w.comm();
    sim::Rng rng(seed * 6364136223846793005ull +
                 static_cast<std::uint64_t>(c.rank()));
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<std::uint8_t> out(max_msg, 0xA5);
    std::vector<std::uint8_t> in(max_msg);
    for (int r = 0; r < rounds; ++r) {
      const std::size_t len = rng.uniform(0, max_msg);
      auto s = c.isend(out.data(), len, dtype::byte_type(), next, r);
      auto rr = c.irecv(in.data(), max_msg, dtype::byte_type(), prev, r);
      s.wait();
      rr.wait();
    }
    // Fan-in: everyone sends to rank 0 before it posts, so some messages
    // go through the unexpected queue.
    if (c.rank() == 0) {
      for (int src = 1; src < c.size(); ++src)
        c.recv(in.data(), max_msg, dtype::byte_type(), src, 999);
    } else {
      c.send(out.data(), rng.uniform(1, max_msg), dtype::byte_type(), 0, 999);
    }
    c.barrier();
  });
}

TEST(Properties, ConservationAndProtocolInvariants) {
  const std::uint64_t base_seed = env_u64("OQS_PROP_SEED", 0xC0FFEE);
  const std::uint64_t iters = env_u64("OQS_PROP_ITERS", 5);

  std::uint64_t eager_seen = 0;
  std::uint64_t rdv_seen = 0;
  for (std::uint64_t i = 0; i < iters; ++i) {
    const std::uint64_t seed = base_seed + i;
    SCOPED_TRACE("replay with OQS_PROP_SEED=" + std::to_string(seed) +
                 " OQS_PROP_ITERS=1");
    obs::metrics().reset();
    run_random_workload(seed);
    const auto m = obs::metrics().snapshot();
    auto get = [&m](const std::string& k) -> std::uint64_t {
      auto it = m.find(k);
      return it == m.end() ? 0 : it->second;
    };

    // 1. RDMA byte conservation across the fabric.
    EXPECT_EQ(get("elan4.rdma.tx_bytes"), get("elan4.rdma.rx_bytes"));

    // 2. Every send picked exactly one protocol.
    const std::uint64_t total = get("pml.send.total");
    EXPECT_GT(total, 0u) << "workload sent nothing";
    EXPECT_EQ(get("pml.send.eager") + get("pml.send.rendezvous"), total);

    // 3. No queue beyond its capacity (qslots default).
    EXPECT_LE(get("elan4.qdma.depth.hiwater"), 2048u);

    // Everything that was sent completed (the run drained).
    EXPECT_EQ(get("pml.send.completed"), total);

    eager_seen += get("pml.send.eager");
    rdv_seen += get("pml.send.rendezvous");
  }
  // The size distribution straddles the threshold, so across the sweep both
  // protocols must actually fire — otherwise the invariants above are weaker
  // than they look.
  EXPECT_GT(eager_seen, 0u);
  EXPECT_GT(rdv_seen, 0u);
}

TEST(Properties, MetricsAreReplayDeterministic) {
  const std::uint64_t seed = env_u64("OQS_PROP_SEED", 0xC0FFEE);
  obs::metrics().reset();
  run_random_workload(seed);
  const auto a = obs::metrics().snapshot();
  obs::metrics().reset();
  run_random_workload(seed);
  const auto b = obs::metrics().snapshot();
  EXPECT_EQ(a, b) << "same seed must reproduce every counter exactly";
}

}  // namespace
}  // namespace oqs
