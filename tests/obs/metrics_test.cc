// MetricRegistry unit tests: lazy registration, stable references,
// snapshot/diff, reset-in-place.
#include "obs/metrics.h"

#include <gtest/gtest.h>

namespace oqs::obs {
namespace {

TEST(Counter, AddAndReset) {
  Counter c;
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, TracksHighWater) {
  Gauge g;
  g.rise(3);
  g.rise(2);
  g.fall(4);
  g.rise(1);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.hiwater(), 5);
  g.set(10);
  EXPECT_EQ(g.hiwater(), 10);
  g.set(1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(g.hiwater(), 10);  // hiwater never falls
}

TEST(Registry, LazyRegistrationReturnsSameObject) {
  MetricRegistry r;
  Counter& a = r.counter("x.y");
  a.add(5);
  EXPECT_EQ(r.counter("x.y").value(), 5u);
  EXPECT_EQ(&r.counter("x.y"), &a);
}

TEST(Registry, ReferencesSurviveReset) {
  MetricRegistry r;
  Counter& c = r.counter("c");
  Gauge& g = r.gauge("g");
  c.add(7);
  g.rise(3);
  r.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.hiwater(), 0);
  c.add(2);  // the old reference still feeds the registry
  EXPECT_EQ(r.counter("c").value(), 2u);
}

TEST(Registry, SnapshotAndDiff) {
  MetricRegistry r;
  r.counter("sends").add(10);
  r.gauge("depth").rise(4);
  const auto before = r.snapshot();
  r.counter("sends").add(5);
  r.counter("recvs").add(2);  // registered after `before`: counts from zero
  const auto after = r.snapshot();

  const auto d = MetricRegistry::diff(before, after);
  EXPECT_EQ(d.at("sends"), 5u);
  EXPECT_EQ(d.at("recvs"), 2u);
  EXPECT_EQ(after.at("depth.hiwater"), 4u);
}

TEST(Registry, HistogramExportsSummary) {
  MetricRegistry r;
  r.histogram("lat").add(1.0);
  r.histogram("lat").add(3.0);
  const auto s = r.snapshot();
  EXPECT_EQ(s.at("lat.count"), 2u);
  EXPECT_EQ(s.at("lat.mean"), 2u);
  EXPECT_EQ(s.at("lat.max"), 3u);
}

TEST(Registry, HistogramExportsQuantiles) {
  MetricRegistry r;
  Histogram& h = r.histogram("lat");
  for (int i = 1; i <= 100; ++i) h.add(i);
  const auto s = r.snapshot();
  EXPECT_EQ(s.at("lat.p50"), 50u);  // linear interpolation over 1..100
  EXPECT_EQ(s.at("lat.p95"), 95u);
  EXPECT_EQ(s.at("lat.p99"), 99u);
  EXPECT_LE(s.at("lat.p50"), s.at("lat.p95"));
  EXPECT_LE(s.at("lat.p95"), s.at("lat.p99"));
  EXPECT_LE(s.at("lat.p99"), s.at("lat.max"));
}

TEST(Histogram, QuantileEdgeCases) {
  // n = 0: quantiles are 0, and the snapshot still exports them.
  MetricRegistry r;
  Histogram& h = r.histogram("empty");
  EXPECT_EQ(h.percentile(0.5), 0.0);
  auto s = r.snapshot();
  EXPECT_EQ(s.at("empty.count"), 0u);
  EXPECT_EQ(s.at("empty.p50"), 0u);
  EXPECT_EQ(s.at("empty.p99"), 0u);

  // n = 1: every quantile is the single sample.
  h.add(42.0);
  EXPECT_EQ(h.percentile(0.0), 42.0);
  EXPECT_EQ(h.percentile(0.5), 42.0);
  EXPECT_EQ(h.percentile(0.99), 42.0);
  EXPECT_EQ(h.percentile(1.0), 42.0);

  // All-equal samples: quantiles pin to the common value.
  h.reset();
  EXPECT_EQ(h.stats().count(), 0u);
  for (int i = 0; i < 17; ++i) h.add(7.0);
  EXPECT_EQ(h.percentile(0.5), 7.0);
  EXPECT_EQ(h.percentile(0.95), 7.0);
  EXPECT_EQ(h.percentile(0.99), 7.0);
  s = r.snapshot();
  EXPECT_EQ(s.at("empty.p50"), 7u);
  EXPECT_EQ(s.at("empty.p95"), 7u);
  EXPECT_EQ(s.at("empty.p99"), 7u);
}

TEST(Histogram, PercentilesInterleaveWithAdds) {
  // The cached sorted view must invalidate on add(): query, add, re-query.
  Histogram h;
  h.add(10.0);
  h.add(20.0);
  EXPECT_EQ(h.percentile(1.0), 20.0);
  h.add(30.0);
  EXPECT_EQ(h.percentile(1.0), 30.0);
  EXPECT_EQ(h.percentile(0.5), 20.0);
}

TEST(Registry, ToStringListsNames) {
  MetricRegistry r;
  r.counter("alpha").add(1);
  r.gauge("beta").rise(2);
  const std::string s = r.to_string();
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("beta"), std::string::npos);
}

TEST(Macros, BumpTheGlobalRegistry) {
  metrics().reset();
  const auto before = metrics().snapshot();
  OQS_METRIC_INC("test.macro.hits");
  OQS_METRIC_ADD("test.macro.hits", 2);
  const auto d =
      MetricRegistry::diff(before, metrics().snapshot());
  EXPECT_EQ(d.at("test.macro.hits"), 3u);
}

}  // namespace
}  // namespace oqs::obs
