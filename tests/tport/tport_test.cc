// Tport semantics: NIC-side matching, unexpected buffering, wildcards,
// fragmentation, truncation.
#include "tport/tport.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "elan4/qsnet.h"

namespace oqs::tport {
namespace {

struct TportFixture : ::testing::Test {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<elan4::QsNet> net;
  std::unique_ptr<TportDomain> domain;

  void SetUp() override {
    net = std::make_unique<elan4::QsNet>(engine, params, 4);
    domain = std::make_unique<TportDomain>(*net);
  }
};

TEST_F(TportFixture, TaggedSendRecvRoundtrip) {
  Tport a(*domain, 0);
  Tport b(*domain, 1);
  std::vector<std::uint8_t> payload(500);
  std::iota(payload.begin(), payload.end(), 9);
  engine.spawn("b", [&] {
    std::vector<std::uint8_t> buf(500, 0);
    Tport::RxReq* r = b.recv(a.vpid(), 77, ~0ull, buf.data(), buf.size());
    b.wait(r);
    EXPECT_EQ(r->len, 500u);
    EXPECT_EQ(r->tag, 77u);
    EXPECT_EQ(buf, payload);
  });
  engine.spawn("a", [&] {
    Tport::TxReq* t = a.send(b.vpid(), 77, payload.data(), payload.size());
    a.wait(t);
    EXPECT_TRUE(t->done);
  });
  engine.run();
}

TEST_F(TportFixture, UnexpectedMessageBuffersOnNic) {
  Tport a(*domain, 0);
  Tport b(*domain, 1);
  std::vector<std::uint8_t> payload(2000, 0x3C);
  engine.spawn("a", [&] { a.wait(a.send(b.vpid(), 5, payload.data(), 2000)); });
  engine.spawn("b", [&] {
    engine.sleep(500 * sim::kUs);  // message arrives long before the post
    EXPECT_GT(b.unexpected_bytes(), 0u);
    std::vector<std::uint8_t> buf(2000, 0);
    Tport::RxReq* r = b.recv(kAnyVpid, 5, ~0ull, buf.data(), buf.size());
    b.wait(r);
    EXPECT_EQ(buf, payload);
    EXPECT_EQ(b.unexpected_bytes(), 0u);
  });
  engine.run();
}

TEST_F(TportFixture, RecvClaimsInFlightMessage) {
  // Post lands while a long message is still streaming in fragments.
  Tport a(*domain, 0);
  Tport b(*domain, 1);
  const std::size_t len = 1 << 20;
  std::vector<std::uint8_t> payload(len, 0x5A);
  engine.spawn("a", [&] { a.wait(a.send(b.vpid(), 1, payload.data(), len)); });
  engine.spawn("b", [&] {
    // 1MB takes ~1.2ms; post the receive mid-flight.
    engine.sleep(300 * sim::kUs);
    std::vector<std::uint8_t> buf(len, 0);
    Tport::RxReq* r = b.recv(kAnyVpid, 1, ~0ull, buf.data(), buf.size());
    b.wait(r);
    EXPECT_EQ(buf, payload);
  });
  engine.run();
}

TEST_F(TportFixture, TagMaskAndAnySource) {
  Tport a(*domain, 0);
  Tport b(*domain, 1);
  Tport c(*domain, 2);
  engine.spawn("senders", [&] {
    // Buffers must outlive the nonblocking sends: the NIC reads host
    // memory at injection time.
    std::uint32_t x = 1;
    std::uint32_t y = 2;
    Tport::TxReq* tx1 = a.send(c.vpid(), 0x1010, &x, 4);
    Tport::TxReq* tx2 = b.send(c.vpid(), 0x1020, &y, 4);
    a.wait(tx1);
    b.wait(tx2);
  });
  engine.spawn("c", [&] {
    // Mask matches the 0x10?0 family from any source: both arrive.
    std::uint32_t v1 = 0;
    std::uint32_t v2 = 0;
    Tport::RxReq* r1 = c.recv(kAnyVpid, 0x1000, 0xFF0F, &v1, 4);
    Tport::RxReq* r2 = c.recv(kAnyVpid, 0x1000, 0xFF0F, &v2, 4);
    c.wait(r1);
    c.wait(r2);
    EXPECT_EQ(v1 + v2, 3u);
  });
  engine.run();
}

TEST_F(TportFixture, TruncationFlagsAndClamps) {
  Tport a(*domain, 0);
  Tport b(*domain, 1);
  std::vector<std::uint8_t> payload(300);
  std::iota(payload.begin(), payload.end(), 0);
  engine.spawn("a", [&] { a.wait(a.send(b.vpid(), 9, payload.data(), 300)); });
  engine.spawn("b", [&] {
    std::vector<std::uint8_t> buf(100, 0);
    Tport::RxReq* r = b.recv(kAnyVpid, 9, ~0ull, buf.data(), buf.size());
    b.wait(r);
    EXPECT_TRUE(r->truncated);
    EXPECT_EQ(r->len, 100u);
    payload.resize(100);
    EXPECT_EQ(buf, payload);
  });
  engine.run();
}

TEST_F(TportFixture, ZeroByteMessageMatches) {
  Tport a(*domain, 0);
  Tport b(*domain, 1);
  engine.spawn("a", [&] { a.wait(a.send(b.vpid(), 3, nullptr, 0)); });
  engine.spawn("b", [&] {
    Tport::RxReq* r = b.recv(a.vpid(), 3, ~0ull, nullptr, 0);
    b.wait(r);
    EXPECT_EQ(r->len, 0u);
    EXPECT_FALSE(r->truncated);
  });
  engine.run();
}

TEST_F(TportFixture, ManyMessagesKeepOrderPerPair) {
  Tport a(*domain, 0);
  Tport b(*domain, 1);
  // Each message needs its own live buffer until its send completes.
  static std::uint32_t values[50];
  engine.spawn("a", [&] {
    std::vector<Tport::TxReq*> txs;
    for (std::uint32_t i = 0; i < 50; ++i) {
      values[i] = i;
      txs.push_back(a.send(b.vpid(), 1, &values[i], 4));
    }
    for (auto* t : txs) a.wait(t);
  });
  engine.spawn("b", [&] {
    for (std::uint32_t i = 0; i < 50; ++i) {
      std::uint32_t v = 999;
      Tport::RxReq* r = b.recv(a.vpid(), 1, ~0ull, &v, 4);
      b.wait(r);
      EXPECT_EQ(v, i);
    }
  });
  engine.run();
}

TEST_F(TportFixture, SendToDeadOrUnregisteredVpidFails) {
  Tport a(*domain, 0);
  elan4::Vpid dead;
  {
    Tport tmp(*domain, 1);
    dead = tmp.vpid();
  }  // tmp's Elan context is released: the vpid is no longer live
  auto raw = net->open(2);  // live context with no Tport behind it
  const elan4::Vpid unregistered = raw->vpid();
  engine.spawn("a", [&] {
    std::uint32_t v = 7;
    Tport::TxReq* t1 = a.send(dead, 1, &v, 4);
    EXPECT_TRUE(t1->done);
    EXPECT_TRUE(t1->failed);
    Tport::TxReq* t2 = a.send(unregistered, 1, &v, 4);
    EXPECT_TRUE(t2->done);
    EXPECT_TRUE(t2->failed);
    // wait() on a failed request returns immediately; failure stays visible.
    a.wait(t1);
    a.wait(t2);
    EXPECT_TRUE(t1->failed);
    EXPECT_TRUE(t2->failed);
  });
  engine.run();
}

TEST_F(TportFixture, SuccessfulSendIsNotFlaggedFailed) {
  Tport a(*domain, 0);
  Tport b(*domain, 1);
  std::uint32_t x = 11;
  engine.spawn("b", [&] {
    std::uint32_t v = 0;
    Tport::RxReq* r = b.recv(a.vpid(), 2, ~0ull, &v, 4);
    b.wait(r);
    EXPECT_EQ(v, 11u);
  });
  engine.spawn("a", [&] {
    Tport::TxReq* t = a.send(b.vpid(), 2, &x, 4);
    a.wait(t);
    EXPECT_TRUE(t->done);
    EXPECT_FALSE(t->failed);
  });
  engine.run();
}

TEST_F(TportFixture, RequestTablesStayBoundedOverLongRuns) {
  Tport a(*domain, 0);
  Tport b(*domain, 1);
  constexpr std::uint32_t kMsgs = 400;
  static std::uint32_t values[kMsgs];
  std::size_t max_tx = 0;
  std::size_t max_rx = 0;
  engine.spawn("a", [&] {
    for (std::uint32_t i = 0; i < kMsgs; ++i) {
      values[i] = i;
      Tport::TxReq* t = a.send(b.vpid(), 1, &values[i], 4);
      a.wait(t);
      EXPECT_TRUE(t->done);  // fields stay readable after wait()
      max_tx = std::max(max_tx, a.outstanding_tx());
    }
  });
  engine.spawn("b", [&] {
    for (std::uint32_t i = 0; i < kMsgs; ++i) {
      std::uint32_t v = 999;
      Tport::RxReq* r = b.recv(a.vpid(), 1, ~0ull, &v, 4);
      b.wait(r);
      EXPECT_EQ(v, i);
      max_rx = std::max(max_rx, b.outstanding_rx());
    }
  });
  engine.run();
  // Completed requests are reaped once observed: the tables never grow with
  // the message count (the old behaviour kept every request for the life of
  // the Tport).
  EXPECT_LE(max_tx, 2u);
  EXPECT_LE(max_rx, 2u);
  EXPECT_LE(a.outstanding_tx(), 1u);
  EXPECT_LE(b.outstanding_rx(), 1u);
}

}  // namespace
}  // namespace oqs::tport
