// Table 1 — Thread-based asynchronous progress (us), RDMA-Read scheme.
//
//   Mesg            Basic   Interrupt   One Thread   Two Threads
//   RDMA-Read 4B     3.87     14.70       22.76        27.50
//   RDMA-Read 4KB   15.25     27.16       32.80        47.72
//
// Basic polls; Interrupt blocks in the PTL on device interrupts; One-Thread
// runs a progress thread on the combined queue; Two-Threads adds a separate
// completion-queue thread. Expected shape: each step costs more; the
// interrupt adds ~10us; threading adds several more; one thread beats two
// (CPU/memory contention, default interrupt affinity).
#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  struct Mode {
    const char* name;
    ptl_elan4::Progress progress;
  };
  const Mode modes[] = {
      {"Basic", ptl_elan4::Progress::kPolling},
      {"Interrupt", ptl_elan4::Progress::kInterrupt},
      {"One Thread", ptl_elan4::Progress::kOneThread},
      {"Two Threads", ptl_elan4::Progress::kTwoThreads},
  };
  const double paper_4b[] = {3.87, 14.70, 22.76, 27.50};
  const double paper_4k[] = {15.25, 27.16, 32.80, 47.72};

  std::printf("Table 1 — thread-based asynchronous progress, RDMA-Read (us)\n");
  std::printf("%-14s %12s %12s %12s %12s\n", "mode", "4B", "paper-4B", "4KB",
              "paper-4KB");
  for (int i = 0; i < 4; ++i) {
    mpi::Options o;
    o.elan4.scheme = ptl_elan4::Scheme::kRdmaRead;
    o.elan4.progress = modes[i].progress;
    // Paper-reproduction row: monolithic rendezvous at 4KB.
    o.pipeline_rendezvous = false;
    const double us4 = ompi_pingpong_us(4, o);
    const double us4k = ompi_pingpong_us(4096, o);
    std::printf("%-14s %12.2f %12.2f %12.2f %12.2f\n", modes[i].name, us4,
                paper_4b[i], us4k, paper_4k[i]);
  }
  std::printf(
      "\nExpected (paper): monotone increase per mode; ~+10us for the "
      "interrupt; one-thread cheaper than two-thread.\n");
  return 0;
}
