// Extension benchmark — collectives framework crossover sweep.
//
// The paper's collective work (§4.1, LA-MPI lineage [33]) offloads the
// fan-out to the NIC; this bench sweeps the routed collectives across the
// selectable algorithm families (reference p2p trees, NIC combining tree,
// hierarchical shared-memory + inter-node) on a testbed scaled from 8 to
// 512 ranks at 2 ranks per node — the paper's dual-CPU node shape. The
// point is the crossover: where the offloaded/hierarchical paths overtake
// the host-driven p2p trees as fan-in traffic and rank count grow.
//
//   bench_coll [--json=coll.json]   also emit the grid as JSON rows
//   bench_coll --max-ranks=64       trim the sweep (CI smoke)
#include "common.h"

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

using namespace oqs;
using namespace oqs::bench;

mpi::Options mode_opts(const std::string& mode) {
  using namespace mpi::coll;
  mpi::Options o;
  if (mode == "p2p") {
    o.coll.barrier = BarrierAlg::kDissemination;
    o.coll.bcast = BcastAlg::kBinomial;
    o.coll.reduce = ReduceAlg::kBinomial;
    o.coll.allreduce = AllreduceAlg::kRecursiveDoubling;
    o.coll.hier = false;
    o.coll.nic = false;
  } else if (mode == "nic") {
    o.coll.barrier = BarrierAlg::kNic;
    o.coll.allreduce = AllreduceAlg::kNic;
    o.coll.hier = false;
  } else if (mode == "hier") {
    o.coll.barrier = BarrierAlg::kHier;
    o.coll.bcast = BcastAlg::kHier;
    o.coll.reduce = ReduceAlg::kHier;
    o.coll.allreduce = AllreduceAlg::kHier;
    o.coll.nic = false;
  } else if (mode == "hiernic") {
    o.coll.barrier = BarrierAlg::kHier;
    o.coll.bcast = BcastAlg::kHier;
    o.coll.reduce = ReduceAlg::kHier;
    o.coll.allreduce = AllreduceAlg::kHier;
  }
  return o;
}

enum class Op { kBarrier, kAllreduce8, kAllreduce1K, kBcast1K };

const char* op_name(Op op) {
  switch (op) {
    case Op::kBarrier: return "barrier";
    case Op::kAllreduce8: return "allreduce_8B";
    case Op::kAllreduce1K: return "allreduce_1KB";
    case Op::kBcast1K: return "bcast_1KB";
  }
  return "?";
}

// Mean time per operation (us) for `np` ranks packed 2 per node.
double coll_us(Op op, const std::string& mode, int np) {
  Bed bed(np / 2);
  double us = 0;
  auto body = [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<double> in(128), out(128);
    std::vector<std::uint8_t> buf(1024, 0x2A);
    auto once = [&] {
      switch (op) {
        case Op::kBarrier:
          c.barrier();
          break;
        case Op::kAllreduce8:
          in[0] = c.rank();
          c.allreduce_sum(in.data(), out.data(), 1);
          break;
        case Op::kAllreduce1K:
          for (std::size_t i = 0; i < in.size(); ++i) in[i] = c.rank() + i;
          c.allreduce_sum(in.data(), out.data(), in.size());
          break;
        case Op::kBcast1K:
          c.bcast(buf.data(), buf.size(), dtype::byte_type(), 0);
          break;
      }
    };
    constexpr int kBenchWarmup = 3;
    constexpr int kBenchIters = 16;
    for (int i = 0; i < kBenchWarmup; ++i) once();
    c.barrier();
    const sim::Time t0 = bed.engine.now();
    for (int i = 0; i < kBenchIters; ++i) once();
    c.barrier();
    if (c.rank() == 0) us = sim::to_us(bed.engine.now() - t0) / kBenchIters;
  };
  auto shared = std::make_shared<decltype(body)>(std::move(body));
  const mpi::Options opts = mode_opts(mode);
  bed.rt->launch(np, [&bed, shared, opts](rte::Env& env) {
    mpi::World w(env, *bed.net, opts);
    (*shared)(w);
  });
  bed.engine.run();
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  std::string json_path;
  int max_ranks = 512;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0)
      json_path = arg.substr(sizeof("--json=") - 1);
    else if (arg.rfind("--max-ranks=", 0) == 0)
      max_ranks = std::atoi(arg.c_str() + sizeof("--max-ranks=") - 1);
  }

  const std::vector<std::string> modes = {"p2p", "nic", "hier", "hiernic"};
  std::vector<int> nps;
  for (int np : {8, 16, 32, 64, 128, 256, 512})
    if (np <= max_ranks) nps.push_back(np);
  const std::vector<Op> ops = {Op::kBarrier, Op::kAllreduce8, Op::kAllreduce1K,
                               Op::kBcast1K};

  std::string json = "[\n";
  for (Op op : ops) {
    std::printf("\n%s, 2 ranks/node (us per op)\n", op_name(op));
    std::printf("%-8s", "ranks");
    for (const auto& m : modes) std::printf(" %12s", m.c_str());
    std::printf("\n");
    for (int np : nps) {
      std::printf("%-8d", np);
      for (const auto& m : modes) {
        const double us = coll_us(op, m, np);
        std::printf(" %12.2f", us);
        std::fflush(stdout);
        char row[160];
        std::snprintf(row, sizeof(row),
                      "  {\"op\": \"%s\", \"mode\": \"%s\", \"ranks\": %d, "
                      "\"us\": %.3f},\n",
                      op_name(op), m.c_str(), np, us);
        json += row;
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected: the NIC combining tree holds barrier/small-allreduce "
      "nearly flat in rank count (one tree walk at NIC latency) while the "
      "p2p trees grow with log2(n) host round-trips; the hierarchical "
      "modes halve the wire fan-in by folding each node's second rank over "
      "shared memory first. Crossovers land by 64 ranks.\n");

  if (!json_path.empty()) {
    if (json.size() > 2) json.erase(json.size() - 2, 1);  // trailing comma
    json += "]\n";
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("# json: %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
