// Shared measurement harness for the paper-reproduction benchmarks.
//
// Each measurement builds a fresh simulated testbed (the paper's 8-node
// QsNetII cluster), runs the workload to completion, and reports simulated
// time. Results are deterministic: the same build prints the same numbers.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "openqs.h"

namespace oqs::bench {

// Optional trace/metric capture, driven by the bench command line:
//   bench_fig9 --trace=out.json   record every instrumented event and write
//                                 a Chrome trace file on exit (open it in
//                                 Perfetto or chrome://tracing)
//   bench_fig9 --metrics          dump the metric registry to stderr on exit
// Construct one at the top of main(); capture spans the whole process.
// Tracing records no simulated time, so the printed numbers are identical
// with and without it.
class TraceSession {
 public:
  TraceSession(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--trace=", 0) == 0)
        path_ = arg.substr(sizeof("--trace=") - 1);
      else if (arg == "--trace")
        path_ = "trace.json";
      else if (arg == "--metrics")
        metrics_ = true;
    }
    if (!path_.empty()) obs::set_tracer(&tracer_);
  }

  ~TraceSession() {
    if (metrics_) std::fputs(obs::metrics().to_string().c_str(), stderr);
    if (path_.empty()) return;
    obs::set_tracer(nullptr);
    if (tracer_.write_chrome_json_file(path_))
      std::printf("# trace: %zu events, digest %016llx -> %s\n",
                  tracer_.size(),
                  static_cast<unsigned long long>(tracer_.digest()),
                  path_.c_str());
  }
  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  const obs::Tracer& tracer() const { return tracer_; }

 private:
  obs::Tracer tracer_;
  std::string path_;
  bool metrics_ = false;
};

// Paper methodology: "the first 100 iterations are used to warm up".
inline constexpr int kWarmup = 100;
inline constexpr int kIters = 400;

struct Bed {
  sim::Engine engine;
  ModelParams params;
  std::unique_ptr<elan4::QsNet> net;
  std::unique_ptr<rte::Runtime> rt;

  explicit Bed(int nodes = 8, int rails = 1, ModelParams p = {}) : params(p) {
    net = std::make_unique<elan4::QsNet>(engine, params, nodes, 64, rails);
    rt = std::make_unique<rte::Runtime>(engine, *net);
  }
};

// One-way ping-pong latency (us) over the Open MPI stack.
inline double ompi_pingpong_us(std::size_t bytes, mpi::Options opts,
                               ModelParams params = {}, int iters = kIters,
                               int rails = 1) {
  Bed bed(8, rails, params);
  double us = 0;
  auto body = [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> buf(bytes, 0x42);
    std::vector<std::uint8_t> tmp(bytes);
    auto once = [&] {
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
        c.recv(tmp.data(), bytes, dtype::byte_type(), 1, 0);
      } else {
        c.recv(tmp.data(), bytes, dtype::byte_type(), 0, 0);
        c.send(tmp.data(), bytes, dtype::byte_type(), 0, 0);
      }
    };
    for (int i = 0; i < kWarmup; ++i) once();
    c.barrier();
    const sim::Time t0 = bed.engine.now();
    for (int i = 0; i < iters; ++i) once();
    if (c.rank() == 0)
      us = sim::to_us(bed.engine.now() - t0) / (2.0 * iters);
    c.barrier();
  };
  auto shared = std::make_shared<decltype(body)>(std::move(body));
  bed.rt->launch(2, [&bed, shared, opts](rte::Env& env) {
    mpi::World w(env, *bed.net, opts);
    (*shared)(w);
  });
  bed.engine.run();
  return us;
}

// Unidirectional streaming bandwidth (MB/s) over the Open MPI stack.
inline double ompi_bandwidth_mbps(std::size_t bytes, mpi::Options opts,
                                  ModelParams params = {}, int window = 32,
                                  int rounds = 8, int rails = 1) {
  Bed bed(8, rails, params);
  double mbps = 0;
  auto body = [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::vector<std::uint8_t>> bufs(
        static_cast<std::size_t>(window), std::vector<std::uint8_t>(bytes, 7));
    auto round = [&] {
      std::vector<mpi::Request> reqs;
      for (int i = 0; i < window; ++i) {
        auto& b = bufs[static_cast<std::size_t>(i)];
        if (c.rank() == 0)
          reqs.push_back(c.isend(b.data(), bytes, dtype::byte_type(), 1, 0));
        else
          reqs.push_back(c.irecv(b.data(), bytes, dtype::byte_type(), 0, 0));
      }
      for (auto& r : reqs) r.wait();
      // Window ack keeps the sender from running away.
      std::uint8_t tok = 1;
      if (c.rank() == 0)
        c.recv(&tok, 1, dtype::byte_type(), 1, 1);
      else
        c.send(&tok, 1, dtype::byte_type(), 0, 1);
    };
    round();  // warm up
    c.barrier();
    const sim::Time t0 = bed.engine.now();
    for (int r = 0; r < rounds; ++r) round();
    if (c.rank() == 0) {
      const double us = sim::to_us(bed.engine.now() - t0);
      mbps = static_cast<double>(bytes) * window * rounds / us;
    }
    c.barrier();
  };
  auto shared = std::make_shared<decltype(body)>(std::move(body));
  bed.rt->launch(2, [&bed, shared, opts](rte::Env& env) {
    mpi::World w(env, *bed.net, opts);
    (*shared)(w);
  });
  bed.engine.run();
  return mbps;
}

// Per-rail accounting snapshot for the multirail breakdown tables.
struct RailStat {
  std::string name;
  std::uint64_t tx_bytes = 0;         // bytes this rail put on the wire
  std::uint64_t retransmissions = 0;  // go-back-N retransmits (reliability)
};

// Streaming bandwidth with blocking sends (the classic stream test: send
// back-to-back, each completing before the next posts; one final token).
// This is the methodology that exposes the rendezvous handshake in the
// mid-range (Fig. 10c/d). With rails > 1 the BML stripes the rendezvous
// payloads; rail_stats (receiver side — the puller moves the bytes) gets
// one entry per rail when non-null.
inline double ompi_stream_mbps(std::size_t bytes, mpi::Options opts,
                               ModelParams params = {}, int count = 48,
                               int rails = 1,
                               std::vector<RailStat>* rail_stats = nullptr) {
  Bed bed(8, rails, params);
  double mbps = 0;
  auto body = [&](mpi::World& w) {
    auto& c = w.comm();
    std::vector<std::uint8_t> buf(bytes, 9);
    auto burst = [&](int n) {
      if (c.rank() == 0) {
        for (int i = 0; i < n; ++i)
          c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
        std::uint8_t tok = 0;
        c.recv(&tok, 1, dtype::byte_type(), 1, 1);
      } else {
        for (int i = 0; i < n; ++i)
          c.recv(buf.data(), bytes, dtype::byte_type(), 0, 0);
        std::uint8_t tok = 1;
        c.send(&tok, 1, dtype::byte_type(), 0, 1);
      }
    };
    burst(8);  // warm up
    c.barrier();
    const sim::Time t0 = bed.engine.now();
    burst(count);
    if (c.rank() == 0)
      mbps = static_cast<double>(bytes) * count / sim::to_us(bed.engine.now() - t0);
    if (c.rank() == 1 && rail_stats != nullptr) {
      for (int r = 0; w.elan4_rail_ptl(r) != nullptr; ++r) {
        ptl_elan4::PtlElan4* p = w.elan4_rail_ptl(r);
        rail_stats->push_back({p->name(), p->tx_bytes(), p->retransmissions()});
      }
    }
    c.barrier();
  };
  auto shared = std::make_shared<decltype(body)>(std::move(body));
  bed.rt->launch(2, [&bed, shared, opts](rte::Env& env) {
    mpi::World w(env, *bed.net, opts);
    (*shared)(w);
  });
  bed.engine.run();
  return mbps;
}

inline double mpich_stream_mbps(std::size_t bytes, ModelParams params = {},
                                int count = 48) {
  Bed bed(8, 1, params);
  tport::TportDomain domain(*bed.net);
  double mbps = 0;
  bed.rt->launch(2, [&](rte::Env& env) {
    mpich::MpichWorld w(env, domain);
    std::vector<std::uint8_t> buf(bytes, 9);
    auto burst = [&](int n) {
      if (w.rank() == 0) {
        for (int i = 0; i < n; ++i) w.send(buf.data(), bytes, 1, 0);
        std::uint8_t tok = 0;
        w.recv(&tok, 1, 1, 1);
      } else {
        for (int i = 0; i < n; ++i) w.recv(buf.data(), bytes, 0, 0);
        std::uint8_t tok = 1;
        w.send(&tok, 1, 0, 1);
      }
    };
    burst(8);
    w.barrier();
    const sim::Time t0 = bed.engine.now();
    burst(count);
    if (w.rank() == 0)
      mbps = static_cast<double>(bytes) * count / sim::to_us(bed.engine.now() - t0);
    w.barrier();
  });
  bed.engine.run();
  return mbps;
}

// One-way ping-pong latency (us) over the MPICH-QsNetII baseline.
inline double mpich_pingpong_us(std::size_t bytes, ModelParams params = {},
                                int iters = kIters) {
  Bed bed(8, 1, params);
  tport::TportDomain domain(*bed.net);
  double us = 0;
  bed.rt->launch(2, [&](rte::Env& env) {
    mpich::MpichWorld w(env, domain);
    std::vector<std::uint8_t> buf(bytes, 0x42);
    std::vector<std::uint8_t> tmp(bytes);
    auto once = [&] {
      if (w.rank() == 0) {
        w.send(buf.data(), bytes, 1, 0);
        w.recv(tmp.data(), bytes, 1, 0);
      } else {
        w.recv(tmp.data(), bytes, 0, 0);
        w.send(tmp.data(), bytes, 0, 0);
      }
    };
    for (int i = 0; i < kWarmup; ++i) once();
    w.barrier();
    const sim::Time t0 = bed.engine.now();
    for (int i = 0; i < iters; ++i) once();
    if (w.rank() == 0) us = sim::to_us(bed.engine.now() - t0) / (2.0 * iters);
    w.barrier();
  });
  bed.engine.run();
  return us;
}

// Unidirectional streaming bandwidth (MB/s) over MPICH-QsNetII.
inline double mpich_bandwidth_mbps(std::size_t bytes, ModelParams params = {},
                                   int window = 32, int rounds = 8) {
  Bed bed(8, 1, params);
  tport::TportDomain domain(*bed.net);
  double mbps = 0;
  bed.rt->launch(2, [&](rte::Env& env) {
    mpich::MpichWorld w(env, domain);
    std::vector<std::vector<std::uint8_t>> bufs(
        static_cast<std::size_t>(window), std::vector<std::uint8_t>(bytes, 7));
    auto round = [&] {
      if (w.rank() == 0) {
        std::vector<tport::Tport::TxReq*> txs;
        for (int i = 0; i < window; ++i)
          txs.push_back(w.isend(bufs[static_cast<std::size_t>(i)].data(), bytes, 1, 0));
        for (auto* t : txs) w.wait(t);
        std::uint8_t tok = 0;
        w.recv(&tok, 1, 1, 1);
      } else {
        std::vector<tport::Tport::RxReq*> rxs;
        for (int i = 0; i < window; ++i)
          rxs.push_back(w.irecv(bufs[static_cast<std::size_t>(i)].data(), bytes, 0, 0));
        for (auto* r : rxs) w.wait(r);
        std::uint8_t tok = 1;
        w.send(&tok, 1, 0, 1);
      }
    };
    round();
    w.barrier();
    const sim::Time t0 = bed.engine.now();
    for (int r = 0; r < rounds; ++r) round();
    if (w.rank() == 0) {
      const double us = sim::to_us(bed.engine.now() - t0);
      mbps = static_cast<double>(bytes) * window * rounds / us;
    }
    w.barrier();
  });
  bed.engine.run();
  return mbps;
}

// Native QDMA one-way latency (us) for a `bytes` message (Fig. 9 reference).
inline double native_qdma_us(std::size_t bytes, ModelParams params = {},
                             int iters = kIters) {
  Bed bed(2, 1, params);
  auto d0 = bed.net->open(0);
  auto d1 = bed.net->open(1);
  elan4::QdmaQueue* q0 = nullptr;
  elan4::QdmaQueue* q1 = nullptr;
  double us = 0;
  bed.engine.spawn("qdma-bench", [&] {
    q0 = d0->create_queue(1024);
    q1 = d1->create_queue(1024);
    std::vector<std::uint8_t> msg(bytes, 0x5A);
    elan4::QdmaQueue::Slot slot;
    auto rtt = [&] {
      d0->post_qdma(d1->vpid(), q1->id(), msg);
      while (!d1->queue_poll(q1, &slot)) {
      }
      d1->post_qdma(d0->vpid(), q0->id(), slot.data);
      while (!d0->queue_poll(q0, &slot)) {
      }
    };
    for (int i = 0; i < kWarmup; ++i) rtt();
    const sim::Time t0 = bed.engine.now();
    for (int i = 0; i < iters; ++i) rtt();
    us = sim::to_us(bed.engine.now() - t0) / (2.0 * iters);
  });
  bed.engine.run();
  return us;
}

// -------- reporting helpers --------

inline void print_header(const std::string& title,
                         const std::vector<std::string>& columns) {
  std::printf("\n%s\n", title.c_str());
  for (std::size_t i = 0; i < title.size(); ++i) std::printf("=");
  std::printf("\n%-10s", "size");
  for (const auto& c : columns) std::printf(" %14s", c.c_str());
  std::printf("\n");
}

inline void print_row(std::size_t size, const std::vector<double>& values) {
  std::printf("%-10zu", size);
  for (double v : values) std::printf(" %14.2f", v);
  std::printf("\n");
}

inline std::string size_label(std::size_t s) {
  if (s >= (1u << 20) && s % (1u << 20) == 0) return std::to_string(s >> 20) + "M";
  if (s >= 1024 && s % 1024 == 0) return std::to_string(s >> 10) + "K";
  return std::to_string(s);
}

}  // namespace oqs::bench
