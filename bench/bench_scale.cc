// Extension benchmark — DES kernel scaling sweep.
//
// The paper's testbed is 8 nodes; the reason to rebuild the kernel (calendar
// event queue, pooled event nodes, pooled fiber stacks, lazy link occupancy,
// fluid bulk transfers) is to ask the paper's protocol questions at the rank
// counts the fat-tree generation actually shipped at. This bench sweeps a
// fixed communication workload — a ring exchange of rendezvous-sized
// messages plus an allreduce and a barrier per round, 2 ranks per node on a
// quaternary fat tree — from 64 to 1024 ranks and reports the only number
// the kernel itself owns: wall-clock events per second.
//
//   bench_scale [--json=BENCH_scale.json]  also emit the rows as JSON
//   bench_scale --max-ranks=64             trim the sweep (CI smoke)
//   bench_scale --max-ranks=2048           extend it (not in the default
//                                          sweep: ~4 GiB of fiber stacks)
//   bench_scale --no-fluid                 per-fragment RDMA trains, the
//                                          pre-fluid event load (the fluid
//                                          path is on by default here; it is
//                                          timing-conformant, so only the
//                                          event count changes)
#include "common.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

using namespace oqs;
using namespace oqs::bench;

struct Row {
  int ranks = 0;
  std::uint64_t events = 0;
  double wall_s = 0;
  double events_per_s = 0;
  double sim_ms = 0;  // simulated time covered, for scale
};

// One complete simulation at `np` ranks (np/2 nodes): 4 rounds of a ring
// exchange (64 KiB rendezvous messages), each round closed with an 8-byte
// allreduce and a barrier.
Row measure(int np, bool fluid) {
  ModelParams p;
  p.fluid_bulk = fluid;
  Bed bed(np / 2, 1, p);

  constexpr std::size_t kMsgBytes = 64 * 1024;
  constexpr int kRounds = 4;
  auto body = [](mpi::World& w) {
    auto& c = w.comm();
    const int next = (c.rank() + 1) % c.size();
    const int prev = (c.rank() + c.size() - 1) % c.size();
    std::vector<std::uint8_t> out(kMsgBytes, 0x42);
    std::vector<std::uint8_t> in(kMsgBytes);
    double sum_in = c.rank(), sum_out = 0;
    for (int round = 0; round < kRounds; ++round) {
      auto s = c.isend(out.data(), kMsgBytes, dtype::byte_type(), next, round);
      auto r = c.irecv(in.data(), kMsgBytes, dtype::byte_type(), prev, round);
      s.wait();
      r.wait();
      c.allreduce_sum(&sum_in, &sum_out, 1);
      c.barrier();
    }
  };
  auto shared = std::make_shared<decltype(body)>(std::move(body));
  bed.rt->launch(np, [&bed, shared](rte::Env& env) {
    mpi::World w(env, *bed.net);
    (*shared)(w);
  });

  const auto t0 = std::chrono::steady_clock::now();
  const sim::Time end = bed.engine.run();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - t0;

  Row row;
  row.ranks = np;
  row.events = bed.engine.events_executed();
  row.wall_s = wall.count();
  row.events_per_s =
      row.wall_s > 0 ? static_cast<double>(row.events) / row.wall_s : 0;
  row.sim_ms = sim::to_us(end) / 1000.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  std::string json_path;
  int max_ranks = 1024;
  bool fluid = true;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0)
      json_path = arg.substr(sizeof("--json=") - 1);
    else if (arg.rfind("--max-ranks=", 0) == 0)
      max_ranks = std::atoi(arg.c_str() + sizeof("--max-ranks=") - 1);
    else if (arg == "--no-fluid")
      fluid = false;
  }

  std::vector<int> nps;
  for (int np : {64, 128, 256, 512, 1024, 2048})
    if (np <= max_ranks) nps.push_back(np);

  std::printf("DES kernel scaling, 2 ranks/node, fluid_bulk=%s\n",
              fluid ? "on" : "off");
  std::printf("%-8s %-8s %14s %10s %14s %10s\n", "ranks", "nodes", "events",
              "wall_s", "events/s", "sim_ms");

  std::string json = "[\n";
  for (int np : nps) {
    const Row r = measure(np, fluid);
    std::printf("%-8d %-8d %14llu %10.3f %14.0f %10.2f\n", r.ranks, np / 2,
                static_cast<unsigned long long>(r.events), r.wall_s,
                r.events_per_s, r.sim_ms);
    std::fflush(stdout);
    char row[224];
    std::snprintf(row, sizeof(row),
                  "  {\"ranks\": %d, \"nodes\": %d, \"fluid\": %s, "
                  "\"events\": %llu, \"wall_s\": %.4f, "
                  "\"events_per_sec\": %.0f, \"sim_ms\": %.3f},\n",
                  r.ranks, np / 2, fluid ? "true" : "false",
                  static_cast<unsigned long long>(r.events), r.wall_s,
                  r.events_per_s, r.sim_ms);
    json += row;
  }
  std::printf(
      "\nExpected: events/s stays within ~2x across the 16x rank sweep — "
      "schedule/dispatch is O(1) amortized in the pending-event population "
      "(calendar queue, pooled nodes and stacks), so the slow fade is cache "
      "footprint (hundreds of MB of model state at 512 nodes), not queue "
      "work. --no-fluid lands at the same sim_ms (the fluid path is "
      "timing-conformant) but a different event total: host-side poll loops "
      "fill fixed wait windows, so their iteration count shifts with poll "
      "phase and can swamp the ~3-events-per-fragment the fluid path folds "
      "away at device level (tests/elan4/fluid_test asserts that saving).\n");

  if (!json_path.empty()) {
    if (json.size() > 2) json.erase(json.size() - 2, 1);  // trailing comma
    json += "]\n";
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("# json: %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
