// Figure 10 (a, b) — Overall latency: Open MPI PTL/Elan4 vs MPICH-QsNetII.
//
// Best PTL configuration per §6.5: chained completion, polling progress
// without the shared completion queue, rendezvous without inlined data.
// Expected shape: MPICH-QsNetII slightly lower for small messages (32-byte
// Tport header + NIC tag matching vs the 64-byte PML header + host
// matching); comparable for large messages.
#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  mpi::Options read_o;
  read_o.elan4.scheme = ptl_elan4::Scheme::kRdmaRead;
  mpi::Options write_o;
  write_o.elan4.scheme = ptl_elan4::Scheme::kRdmaWrite;

  const std::vector<std::size_t> small = {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  const std::vector<std::size_t> large = {2048, 4096, 8192, 16384, 32768, 65536,
                                          131072, 262144, 524288, 1048576};

  print_header("Fig. 10a — small message latency (us)",
               {"MPICH-QsNetII", "PTL-RDMA-Read", "PTL-RDMA-Write"});
  for (std::size_t s : small)
    print_row(s, {mpich_pingpong_us(s), ompi_pingpong_us(s, read_o),
                  ompi_pingpong_us(s, write_o)});

  print_header("Fig. 10b — large message latency (us)",
               {"MPICH-QsNetII", "PTL-RDMA-Read", "PTL-RDMA-Write"});
  for (std::size_t s : large) {
    const int iters = s >= 262144 ? 40 : 120;
    print_row(s, {mpich_pingpong_us(s, {}, iters),
                  ompi_pingpong_us(s, read_o, {}, iters),
                  ompi_pingpong_us(s, write_o, {}, iters)});
  }
  std::printf(
      "\nExpected (paper): MPICH lower by ~1us for small messages; all three "
      "comparable at large sizes.\n");
  return 0;
}
