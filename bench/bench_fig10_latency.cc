// Figure 10 (a, b) — Overall latency: Open MPI PTL/Elan4 vs MPICH-QsNetII.
//
// Best PTL configuration per §6.5: chained completion, polling progress
// without the shared completion queue, rendezvous without inlined data.
// Expected shape: MPICH-QsNetII slightly lower for small messages (32-byte
// Tport header + NIC tag matching vs the 64-byte PML header + host
// matching); comparable for large messages.
//
// Extensions beyond the figure:
//   --rails N    multirail latency sweep — 1 rail vs N rails; eager traffic
//                rides the lowest-latency rail, so small messages should not
//                regress, while striped large messages should improve
//   --ptl tcp    run the Open MPI columns over the TCP PTL instead
#include <cstdlib>
#include <cstring>

#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  int rails = 1;
  std::string ptl = "elan4";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rails") == 0 && i + 1 < argc)
      rails = std::atoi(argv[++i]);
    else if (std::strncmp(argv[i], "--rails=", 8) == 0)
      rails = std::atoi(argv[i] + 8);
    else if (std::strcmp(argv[i], "--ptl") == 0 && i + 1 < argc)
      ptl = argv[++i];
    else if (std::strncmp(argv[i], "--ptl=", 6) == 0)
      ptl = argv[i] + 6;
  }
  if (rails < 1) rails = 1;

  mpi::Options read_o;
  read_o.elan4.scheme = ptl_elan4::Scheme::kRdmaRead;
  mpi::Options write_o;
  write_o.elan4.scheme = ptl_elan4::Scheme::kRdmaWrite;
  // Paper-reproduction columns measure the monolithic rendezvous; the
  // pipelined protocol has its own crossover table in bench_fig10_bandwidth.
  read_o.pipeline_rendezvous = write_o.pipeline_rendezvous = false;
  if (ptl == "tcp") {
    read_o.use_elan4 = write_o.use_elan4 = false;
    read_o.use_tcp = write_o.use_tcp = true;
  }

  const std::vector<std::size_t> small = {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  const std::vector<std::size_t> large = {2048, 4096, 8192, 16384, 32768, 65536,
                                          131072, 262144, 524288, 1048576};

  if (rails > 1) {
    mpi::Options multi = read_o;
    multi.elan4.rails = rails;
    const std::string col = std::to_string(rails) + "-rail";
    print_header("Multirail latency (us), RDMA-read scheme", {"1-rail", col});
    for (std::size_t s : large) {
      const int iters = s >= 262144 ? 40 : 120;
      print_row(s, {ompi_pingpong_us(s, read_o, {}, iters, 1),
                    ompi_pingpong_us(s, multi, {}, iters, rails)});
    }
    std::printf(
        "\nExpected: below the striping threshold (32KB) the columns match "
        "(eager and small rendezvous ride the best rail); above it striping "
        "cuts the wire-time term toward 1/%d.\n", rails);
    return 0;
  }

  const bool tcp = ptl == "tcp";
  print_header("Fig. 10a — small message latency (us)",
               {"MPICH-QsNetII", tcp ? "PTL-TCP" : "PTL-RDMA-Read",
                tcp ? "PTL-TCP" : "PTL-RDMA-Write"});
  for (std::size_t s : small)
    print_row(s, {mpich_pingpong_us(s), ompi_pingpong_us(s, read_o),
                  ompi_pingpong_us(s, write_o)});

  print_header("Fig. 10b — large message latency (us)",
               {"MPICH-QsNetII", tcp ? "PTL-TCP" : "PTL-RDMA-Read",
                tcp ? "PTL-TCP" : "PTL-RDMA-Write"});
  for (std::size_t s : large) {
    const int iters = s >= 262144 ? 40 : 120;
    print_row(s, {mpich_pingpong_us(s, {}, iters),
                  ompi_pingpong_us(s, read_o, {}, iters),
                  ompi_pingpong_us(s, write_o, {}, iters)});
  }
  std::printf(
      "\nExpected (paper): MPICH lower by ~1us for small messages; all three "
      "comparable at large sizes.\n");

  // Crossover: monolithic vs pipelined rendezvous latency. Eager messages
  // (<= eager_limit) take the identical code path in both configurations;
  // just above it the pipeline pushes the whole message behind the RTS and
  // skips the pull round trip entirely.
  mpi::Options pipe_o = read_o;
  pipe_o.pipeline_rendezvous = true;
  print_header("Crossover — monolithic vs pipelined one-way latency (us)",
               {"monolithic", "pipelined", "ratio"});
  for (std::size_t s : {std::size_t{0}, std::size_t{512}, std::size_t{1024},
                        std::size_t{1984}, std::size_t{2048}, std::size_t{4096},
                        std::size_t{8192}, std::size_t{16384},
                        std::size_t{32768}, std::size_t{65536}}) {
    const double mono = ompi_pingpong_us(s, read_o);
    const double pipe = ompi_pingpong_us(s, pipe_o);
    print_row(s, {mono, pipe, pipe / mono});
  }
  std::printf(
      "\nExpected: identical through the eager limit (1984B with reliability "
      "off); pipelined lower from 2KB (pushed payload skips the pull round "
      "trip).\n");
  return 0;
}
