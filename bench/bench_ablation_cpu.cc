// Ablation (§6.4 discussion) — where the progress-mode costs come from.
//
// The paper attributes the Table-1 ladder to the interrupt (~10us), the
// threading overhead (~9us), and CPU/interrupt-path contention with default
// affinities. Each sweep below varies exactly one model component and shows
// which observable it moves:
//   * interrupt latency        -> the Interrupt row;
//   * thread handoff latency   -> the One-Thread row;
//   * interrupt-path serialization (default IRQ affinity)
//                               -> the Two-Thread penalty;
//   * cores per node           -> threaded modes under-provisioned at 1 core.
#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  auto run = [](ptl_elan4::Progress pr, const ModelParams& p, std::size_t bytes) {
    mpi::Options o;
    o.elan4.scheme = ptl_elan4::Scheme::kRdmaRead;
    o.elan4.progress = pr;
    return ompi_pingpong_us(bytes, o, p, 150);
  };

  std::printf("Ablation 1 — interrupt latency vs Interrupt-mode 4B latency (us)\n");
  std::printf("%-14s %12s %12s\n", "interrupt_us", "Basic", "Interrupt");
  for (TimeNs irq : {2000u, 5000u, 10000u, 20000u}) {
    ModelParams p;
    p.interrupt_ns = irq;
    if (p.irq_service_ns > irq) p.irq_service_ns = irq;
    std::printf("%-14.1f %12.2f %12.2f\n", irq / 1e3,
                run(ptl_elan4::Progress::kPolling, p, 4),
                run(ptl_elan4::Progress::kInterrupt, p, 4));
  }

  std::printf("\nAblation 2 — thread handoff vs One-Thread 4B latency (us)\n");
  std::printf("%-14s %12s %12s\n", "wakeup_us", "Interrupt", "One Thread");
  for (TimeNs wk : {2000u, 5000u, 8500u, 14000u}) {
    ModelParams p;
    p.thread_wakeup_ns = wk;
    std::printf("%-14.1f %12.2f %12.2f\n", wk / 1e3,
                run(ptl_elan4::Progress::kInterrupt, p, 4),
                run(ptl_elan4::Progress::kOneThread, p, 4));
  }

  std::printf(
      "\nAblation 3 — interrupt latency vs One/Two-Thread 4KB latency (us)\n");
  std::printf("%-14s %12s %12s\n", "interrupt_us", "One Thread", "Two Threads");
  for (TimeNs irq : {4000u, 10000u, 16000u}) {
    ModelParams p;
    p.interrupt_ns = irq;
    if (p.irq_service_ns > irq) p.irq_service_ns = irq;
    std::printf("%-14.1f %12.2f %12.2f\n", irq / 1e3,
                run(ptl_elan4::Progress::kOneThread, p, 4096),
                run(ptl_elan4::Progress::kTwoThreads, p, 4096));
  }

  std::printf("\nAblation 4 — cores per node vs progress modes, 4KB (us)\n");
  std::printf("%-8s %12s %12s %12s %12s\n", "cores", "Basic", "Interrupt",
              "One Thread", "Two Threads");
  for (unsigned cores : {1u, 2u, 4u}) {
    ModelParams p;
    p.cores_per_node = cores;
    std::printf("%-8u %12.2f %12.2f %12.2f %12.2f\n", cores,
                run(ptl_elan4::Progress::kPolling, p, 4096),
                run(ptl_elan4::Progress::kInterrupt, p, 4096),
                run(ptl_elan4::Progress::kOneThread, p, 4096),
                run(ptl_elan4::Progress::kTwoThreads, p, 4096));
  }

  std::printf(
      "\nExpected: sweep 1 tracks interrupt_us ~1:1; sweep 2 tracks "
      "wakeup_us; sweep 3 shows two-thread paying ~2 interrupts per exchange "
      "(its curve grows twice as fast — the completion thread blocks per "
      "event); sweep 4 shows threaded modes suffering on a single core (the "
      "paper's dual-Xeon testbed sits at 2).\n");
  return 0;
}
