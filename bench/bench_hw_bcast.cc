// Extension benchmark — hardware broadcast vs point-to-point binomial tree.
//
// The paper's §4.1 explains why hardware broadcast needs the global virtual
// address space (and why dynamically joined processes lose it); LA-MPI's
// broadcast work over Quadrics [33] is the lineage. This bench shows the
// payoff the mechanism exists for: switch replication makes the cost nearly
// independent of fan-out, while the software tree grows with log2(n).
#include "common.h"

namespace {

using namespace oqs;
using namespace oqs::bench;

double bcast_us(int nprocs, std::size_t bytes, bool hw) {
  Bed bed;
  double us = 0;
  bed.rt->launch(nprocs, [&](rte::Env& env) {
    mpi::World w(env, *bed.net);
    auto& c = w.comm();
    std::vector<std::uint8_t> buf(bytes, 1);
    mpi::HwBcastGroup group(c, w, bytes + 64);
    c.barrier();
    const sim::Time t0 = bed.engine.now();
    constexpr int kIters = 40;
    for (int i = 0; i < kIters; ++i) {
      if (hw)
        group.bcast(buf.data(), bytes, 0);
      else
        c.bcast(buf.data(), bytes, dtype::byte_type(), 0);
    }
    c.barrier();
    if (c.rank() == 0) us = sim::to_us(bed.engine.now() - t0) / kIters;
  });
  bed.engine.run();
  return us;
}

}  // namespace

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  std::printf("Hardware vs software broadcast, 1KB payload (us per bcast)\n");
  std::printf("%-8s %14s %14s\n", "procs", "hw-bcast", "binomial-p2p");
  for (int n : {2, 4, 8})
    std::printf("%-8d %14.2f %14.2f\n", n, bcast_us(n, 1024, true),
                bcast_us(n, 1024, false));

  std::printf("\nHardware vs software broadcast on 8 procs (us per bcast)\n");
  std::printf("%-8s %14s %14s\n", "bytes", "hw-bcast", "binomial-p2p");
  for (std::size_t s : {64ul, 1024ul, 16384ul, 131072ul})
    std::printf("%-8zu %14.2f %14.2f\n", s, bcast_us(8, s, true),
                bcast_us(8, s, false));

  std::printf(
      "\nExpected: hardware broadcast nearly flat in fan-out; at trivial "
      "fan-out (n=2) the staging copies make it lose to a single eager send, "
      "but beyond that it beats the ~log2(n) software tree, and the "
      "advantage grows with payload.\n");
  return 0;
}
