// §4.1/§5 capability benchmark — dynamic joining of PTL modules.
//
// Not a paper figure, but the paper's first objective: processes claim Elan
// contexts and wire up at arbitrary times. Measures (a) initial job wire-up
// time vs process count, and (b) the latency of dynamically spawning and
// merging one more process into a running job, including the first message
// to it.
#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  std::printf("Dynamic join — initial wire-up time vs job size\n");
  std::printf("%-8s %16s\n", "procs", "MPI_Init (ms)");
  for (int n : {2, 4, 8}) {
    Bed bed;
    sim::Time done = 0;
    bed.rt->launch(n, [&](rte::Env& env) {
      mpi::World w(env, *bed.net);
      w.comm().barrier();
      if (w.rank() == 0) done = bed.engine.now();
    });
    bed.engine.run();
    std::printf("%-8d %16.3f\n", n, sim::to_ms(done));
  }

  std::printf("\nDynamic spawn — add one process to a running 4-proc job\n");
  {
    Bed bed;
    sim::Time spawn_start = 0;
    sim::Time merged_at = 0;
    sim::Time first_msg_at = 0;
    bed.rt->launch(4, [&](rte::Env& env) {
      mpi::World w(env, *bed.net);
      w.comm().barrier();
      if (w.rank() == 0) spawn_start = bed.engine.now();
      mpi::Communicator merged = w.spawn_merge(1, [&](mpi::World& cw) {
        std::uint32_t v = 0;
        cw.comm().recv(&v, 4, dtype::byte_type(), 0, 1);
        cw.comm().send(&v, 4, dtype::byte_type(), 0, 2);
        cw.comm().barrier();
      });
      if (w.rank() == 0) {
        merged_at = bed.engine.now();
        std::uint32_t v = 77;
        merged.send(&v, 4, dtype::byte_type(), 4, 1);
        merged.recv(&v, 4, dtype::byte_type(), 4, 2);
        first_msg_at = bed.engine.now();
      }
      merged.barrier();
    });
    bed.engine.run();
    std::printf("  spawn + wire-up + merge : %10.3f ms\n",
                sim::to_ms(merged_at - spawn_start));
    std::printf("  first message roundtrip : %10.3f us\n",
                sim::to_us(first_msg_at - merged_at));
  }
  std::printf(
      "\nExpected: wire-up dominated by management-network round trips "
      "(sub-millisecond to a few ms, growing with job size); post-merge "
      "traffic runs at full Elan4 speed.\n");
  return 0;
}
