// Extension benchmark — the price and payoff of end-to-end reliability
// (LA-MPI heritage; Open MPI's §3 fault-tolerance objective).
//
// Left: what CRC32C framing + verified rendezvous payloads cost on a clean
// wire. Right: delivered goodput as wire corruption rises — retransmission
// and re-read recovery keep the channel correct at degrading speed.
#include "common.h"

namespace {

using namespace oqs;
using namespace oqs::bench;

double goodput_mbps(double corruption, std::size_t bytes, int count) {
  mpi::Options opts;
  opts.elan4.reliability = true;
  opts.elan4.max_data_retries = 50;
  Bed bed;
  if (corruption > 0) bed.net->set_corruption(corruption, /*seed=*/99);
  double mbps = 0;
  bed.rt->launch(2, [&](rte::Env& env) {
    mpi::World w(env, *bed.net, opts);
    auto& c = w.comm();
    std::vector<std::uint8_t> buf(bytes, 5);
    c.barrier();
    const sim::Time t0 = bed.engine.now();
    if (c.rank() == 0) {
      for (int i = 0; i < count; ++i)
        c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
      std::uint8_t tok = 0;
      c.recv(&tok, 1, dtype::byte_type(), 1, 1);
      mbps = static_cast<double>(bytes) * count /
             sim::to_us(bed.engine.now() - t0);
    } else {
      for (int i = 0; i < count; ++i)
        c.recv(buf.data(), bytes, dtype::byte_type(), 0, 0);
      std::uint8_t tok = 1;
      c.send(&tok, 1, dtype::byte_type(), 0, 1);
    }
    c.barrier();
  });
  bed.engine.run();
  return mbps;
}

}  // namespace

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  std::printf("Reliability overhead on a clean wire (one-way latency, us)\n");
  std::printf("%-10s %12s %12s\n", "size", "off", "on");
  for (std::size_t s : {4ul, 1024ul, 4096ul, 65536ul}) {
    mpi::Options off;
    mpi::Options on;
    on.elan4.reliability = true;
    std::printf("%-10zu %12.2f %12.2f\n", s, ompi_pingpong_us(s, off, {}, 150),
                ompi_pingpong_us(s, on, {}, 150));
  }

  std::printf("\nGoodput under wire corruption (16KB messages, MB/s)\n");
  std::printf("%-14s %12s\n", "corrupt-rate", "goodput");
  for (double p : {0.0, 0.005, 0.02, 0.05}) {
    std::printf("%-14.3f %12.2f\n", p, goodput_mbps(p, 16384, 48));
  }
  std::printf(
      "\nExpected: checksums cost a fixed slice per message (growing with "
      "size at the CRC rate); goodput degrades smoothly with corruption "
      "while every byte still arrives intact (tests assert integrity).\n");
  return 0;
}
