// Extension benchmark — the price and payoff of end-to-end reliability
// (LA-MPI heritage; Open MPI's §3 fault-tolerance objective).
//
// Three views: what CRC32C framing + verified rendezvous payloads cost on a
// clean wire; delivered goodput as wire corruption rises; and delivered
// goodput as frames are dropped outright, where the ack-clocked go-back-N
// (cumulative acks, retransmission timer, bounded window) carries the
// channel — with the recovery effort itself (retransmissions, timer
// expiries) reported next to the goodput.
//
// Fault knobs (all deterministic; same seed -> same schedule):
//   --drop=P --corrupt=P --dup=P --delay=P   per-packet probabilities for a
//                                            custom row in the loss table
//   --fault-seed=N                           RNG seed for that row
// plus the common --trace=/--metrics options from bench/common.h.
#include <cstdlib>
#include <cstring>

#include "common.h"
#include "net/fault.h"

namespace {

using namespace oqs;
using namespace oqs::bench;

struct LossResult {
  double mbps = 0;
  std::uint64_t retransmissions = 0;
  std::uint64_t rtx_timeouts = 0;
  std::uint64_t drops = 0;
};

LossResult goodput_under_faults(const net::FaultProfile& profile,
                                std::uint64_t seed, std::size_t bytes,
                                int count) {
  mpi::Options opts;
  opts.elan4.reliability = true;
  opts.elan4.max_data_retries = 50;
  Bed bed;
  if (profile.any()) bed.net->set_faults(profile, seed);
  LossResult res;
  bed.rt->launch(2, [&](rte::Env& env) {
    mpi::World w(env, *bed.net, opts);
    auto& c = w.comm();
    std::vector<std::uint8_t> buf(bytes, 5);
    c.barrier();
    const sim::Time t0 = bed.engine.now();
    if (c.rank() == 0) {
      for (int i = 0; i < count; ++i)
        c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
      std::uint8_t tok = 0;
      c.recv(&tok, 1, dtype::byte_type(), 1, 1);
      res.mbps = static_cast<double>(bytes) * count /
                 sim::to_us(bed.engine.now() - t0);
    } else {
      for (int i = 0; i < count; ++i)
        c.recv(buf.data(), bytes, dtype::byte_type(), 0, 0);
      std::uint8_t tok = 1;
      c.send(&tok, 1, dtype::byte_type(), 0, 1);
    }
    c.barrier();
    res.retransmissions += w.elan4_ptl()->retransmissions();
    res.rtx_timeouts += w.elan4_ptl()->rtx_timeouts();
    c.barrier();
  });
  bed.engine.run();
  if (bed.net->faults() != nullptr) res.drops = bed.net->faults()->drops();
  return res;
}

double parse_flag(int argc, char** argv, const char* name, double fallback) {
  const std::size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], name, len) == 0)
      return std::atof(argv[i] + len);
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  std::printf("Reliability overhead on a clean wire (one-way latency, us)\n");
  std::printf("%-10s %12s %12s\n", "size", "off", "on");
  for (std::size_t s : {4ul, 1024ul, 4096ul, 65536ul}) {
    mpi::Options off;
    mpi::Options on;
    on.elan4.reliability = true;
    std::printf("%-10zu %12.2f %12.2f\n", s, ompi_pingpong_us(s, off, {}, 150),
                ompi_pingpong_us(s, on, {}, 150));
  }

  std::printf("\nGoodput under wire corruption (16KB messages, MB/s)\n");
  std::printf("%-14s %12s\n", "corrupt-rate", "goodput");
  for (double p : {0.0, 0.005, 0.02, 0.05}) {
    net::FaultProfile prof;
    prof.corrupt = p;
    std::printf("%-14.3f %12.2f\n", p,
                goodput_under_faults(prof, 99, 16384, 48).mbps);
  }

  std::printf(
      "\nGoodput under frame loss (1KB eager messages, go-back-N recovery)\n");
  std::printf("%-14s %12s %10s %10s %10s\n", "drop-rate", "goodput", "rtx",
              "timeouts", "drops");
  for (double p : {0.0, 0.01, 0.02, 0.05, 0.10}) {
    net::FaultProfile prof;
    prof.drop = p;
    const LossResult r = goodput_under_faults(prof, 99, 1024, 400);
    std::printf("%-14.3f %12.2f %10llu %10llu %10llu\n", p, r.mbps,
                static_cast<unsigned long long>(r.retransmissions),
                static_cast<unsigned long long>(r.rtx_timeouts),
                static_cast<unsigned long long>(r.drops));
  }

  // Custom fault mix from the command line (defaults add nothing).
  net::FaultProfile custom;
  custom.drop = parse_flag(argc, argv, "--drop=", 0.0);
  custom.corrupt = parse_flag(argc, argv, "--corrupt=", 0.0);
  custom.duplicate = parse_flag(argc, argv, "--dup=", 0.0);
  custom.delay = parse_flag(argc, argv, "--delay=", 0.0);
  const auto seed = static_cast<std::uint64_t>(
      parse_flag(argc, argv, "--fault-seed=", 1.0));
  if (custom.any()) {
    const LossResult r = goodput_under_faults(custom, seed, 1024, 400);
    std::printf(
        "\nCustom mix (drop=%.3f corrupt=%.3f dup=%.3f delay=%.3f seed=%llu)\n"
        "%-14s %12.2f %10llu %10llu %10llu\n",
        custom.drop, custom.corrupt, custom.duplicate, custom.delay,
        static_cast<unsigned long long>(seed), "goodput", r.mbps,
        static_cast<unsigned long long>(r.retransmissions),
        static_cast<unsigned long long>(r.rtx_timeouts),
        static_cast<unsigned long long>(r.drops));
  }

  std::printf(
      "\nExpected: checksums cost a fixed slice per message (growing with "
      "size at the CRC rate); goodput degrades smoothly with corruption and "
      "with loss while every byte still arrives intact (tests assert "
      "integrity) — the retransmission columns show what the recovery "
      "cost.\n");
  return 0;
}
