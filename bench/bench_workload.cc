// Extension benchmark — trace-driven workload replay scenarios.
//
// The microbenchmarks (bench_fig*) measure one message pattern at a time;
// this bench replays synthetic application skeletons over the full
// PML/BML/PTL stack and reports what applications feel: end-to-end goodput
// (delivered payload over job makespan) and per-op tail latency
// (p50/p95/p99). Every payload byte is verified against the replay oracle
// in flight, so a row with verify_failures == 0 is also a conformance
// statement for the scenario it measures.
//
//   bench_workload                           full sweep: 5 skeletons x
//                                            rails {1,2} x loss {0, 2%}
//   bench_workload --skeleton=mix            one skeleton (stencil2d,
//                                            stencil3d, train, shuffle, mix)
//   bench_workload --ranks=64                job size (>= 16 folds 2
//                                            ranks/node like bench_scale)
//   bench_workload --rails=1,2               rail sweep
//   bench_workload --loss=0,0.02             wire drop rates; any loss > 0
//                                            arms the go-back-N stream
//   bench_workload --json=BENCH_workload.json  emit the rows as JSON
//
// "mix" is the job-interference scenario: a stencil2d on the first half of
// the ranks and an all-to-all shuffle on the second half share one fabric;
// the row aggregates both jobs (goodput over the combined span, latency
// over the merged op stream).
#include "common.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "net/fault.h"
#include "workload/workload.h"

namespace {

using namespace oqs;
using namespace oqs::bench;
using namespace oqs::workload;

struct Row {
  std::string skeleton;
  int ranks = 0;
  int rails = 1;
  double loss = 0;
  double goodput_mbps = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;
  double sim_ms = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ops = 0;
  std::uint64_t verify_failures = 0;
};

// Skeleton configs scale with the rank count so the sweep stays comparable
// across --ranks values: fixed per-rank traffic, near-square grids.
std::vector<Trace> build_jobs(const std::string& skel, int np) {
  auto stencil2d = [](int n) {
    const Grid2 g = factor2(n);
    StencilConfig c;
    c.px = g.px;
    c.py = g.py;
    c.iters = 4;
    c.halo_bytes = 16384;
    c.compute_ns = 20000;
    return make_stencil(c);
  };
  std::vector<Trace> jobs;
  if (skel == "stencil2d") {
    jobs.push_back(stencil2d(np));
  } else if (skel == "stencil3d") {
    const Grid3 g = factor3(np);
    StencilConfig c;
    c.px = g.px;
    c.py = g.py;
    c.pz = g.pz;
    c.iters = 3;
    c.halo_bytes = 8192;
    c.compute_ns = 15000;
    jobs.push_back(make_stencil(c));
  } else if (skel == "train") {
    jobs.push_back(make_training(
        {.ranks = np, .steps = 4, .grad_bytes = 65536, .compute_ns = 50000}));
  } else if (skel == "shuffle") {
    jobs.push_back(make_shuffle(
        {.ranks = np, .rounds = 2, .bytes_per_pair = 4096, .compute_ns = 5000}));
  } else if (skel == "mix") {
    // Interference scenario: halo traffic and an all-to-all shuffle share
    // the fat tree.
    jobs.push_back(stencil2d(np / 2));
    jobs.push_back(make_shuffle({.ranks = np - np / 2, .rounds = 2,
                                 .bytes_per_pair = 4096, .compute_ns = 5000}));
  } else {
    std::fprintf(stderr, "unknown --skeleton=%s\n", skel.c_str());
    std::exit(2);
  }
  return jobs;
}

Row measure(const std::string& skel, int np, int rails, double loss) {
  const int nodes = np >= 16 ? np / 2 : 8;  // 2 ranks/node at scale
  Bed bed(nodes, rails);
  if (loss > 0) {
    net::FaultProfile profile;
    profile.drop = loss;
    bed.net->set_faults(profile, /*seed=*/9);
  }
  mpi::Options opts;
  opts.elan4.rails = rails;
  if (loss > 0) {
    // Wire loss is only survivable with the go-back-N stream armed.
    opts.elan4.reliability = true;
    opts.elan4.max_data_retries = 50;
  }

  const std::vector<Trace> traces = build_jobs(skel, np);
  std::vector<const Trace*> jobs;
  for (const Trace& t : traces) jobs.push_back(&t);
  std::vector<Report> reports;
  ReplayOptions ropt;
  ropt.seed = 9;
  auto body = [&](mpi::World& w) { replay_jobs(w, jobs, ropt, &reports); };
  auto shared = std::make_shared<decltype(body)>(std::move(body));
  bed.rt->launch(np, [&bed, shared, opts](rte::Env& env) {
    mpi::World w(env, *bed.net, opts);
    (*shared)(w);
  });
  const sim::Time end = bed.engine.run();

  // Aggregate across jobs: goodput over the combined span, latency over
  // the merged communication-op stream.
  Row row;
  row.skeleton = skel;
  row.ranks = np;
  row.rails = rails;
  row.loss = loss;
  row.sim_ms = sim::to_us(end) / 1000.0;
  sim::Samples ops_us;
  sim::Time t_begin = ~sim::Time{0}, t_end = 0;
  for (const Report& r : reports) {
    for (double x : r.op_us.values()) ops_us.add(x);
    row.bytes += r.bytes_moved;
    row.ops += r.ops_replayed;
    row.verify_failures += r.verify_failures;
    t_begin = std::min(t_begin, r.t_begin);
    t_end = std::max(t_end, r.t_end);
  }
  if (t_end > t_begin)
    row.goodput_mbps =
        static_cast<double>(row.bytes) / sim::to_us(t_end - t_begin);
  row.p50_us = ops_us.percentile(0.50);
  row.p95_us = ops_us.percentile(0.95);
  row.p99_us = ops_us.percentile(0.99);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  std::string json_path;
  std::string skeleton = "all";
  int ranks = 64;
  std::vector<int> rails = {1, 2};
  std::vector<double> losses = {0.0, 0.02};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto list = [](const std::string& s) {
      std::vector<std::string> out;
      std::size_t pos = 0;
      while (pos <= s.size()) {
        const std::size_t c = s.find(',', pos);
        out.push_back(s.substr(pos, c - pos));
        if (c == std::string::npos) break;
        pos = c + 1;
      }
      return out;
    };
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(sizeof("--json=") - 1);
    } else if (arg.rfind("--skeleton=", 0) == 0) {
      skeleton = arg.substr(sizeof("--skeleton=") - 1);
    } else if (arg.rfind("--ranks=", 0) == 0) {
      ranks = std::atoi(arg.c_str() + sizeof("--ranks=") - 1);
    } else if (arg.rfind("--rails=", 0) == 0) {
      rails.clear();
      for (const auto& t : list(arg.substr(sizeof("--rails=") - 1)))
        rails.push_back(std::atoi(t.c_str()));
    } else if (arg.rfind("--loss=", 0) == 0) {
      losses.clear();
      for (const auto& t : list(arg.substr(sizeof("--loss=") - 1)))
        losses.push_back(std::atof(t.c_str()));
    }
  }

  std::vector<std::string> skels;
  if (skeleton == "all")
    skels = {"stencil2d", "stencil3d", "train", "shuffle", "mix"};
  else
    skels = {skeleton};

  std::printf("Workload replay scenarios, %d ranks\n", ranks);
  std::printf("%-10s %-6s %-6s %14s %10s %10s %10s %10s %8s\n", "skeleton",
              "rails", "loss", "goodput_MB/s", "p50_us", "p95_us", "p99_us",
              "sim_ms", "verify");
  std::string json = "[\n";
  bool failed = false;
  for (const std::string& s : skels) {
    for (int r : rails) {
      for (double loss : losses) {
        const Row row = measure(s, ranks, r, loss);
        std::printf("%-10s %-6d %-6.3f %14.1f %10.1f %10.1f %10.1f %10.2f %8llu\n",
                    row.skeleton.c_str(), row.rails, row.loss,
                    row.goodput_mbps, row.p50_us, row.p95_us, row.p99_us,
                    row.sim_ms,
                    static_cast<unsigned long long>(row.verify_failures));
        std::fflush(stdout);
        failed |= row.verify_failures != 0;
        char buf[320];
        std::snprintf(
            buf, sizeof(buf),
            "  {\"skeleton\": \"%s\", \"ranks\": %d, \"rails\": %d, "
            "\"loss\": %.3f, \"goodput_mbps\": %.2f, \"p50_us\": %.2f, "
            "\"p95_us\": %.2f, \"p99_us\": %.2f, \"sim_ms\": %.3f, "
            "\"bytes\": %llu, \"ops\": %llu, \"verify_failures\": %llu},\n",
            row.skeleton.c_str(), row.ranks, row.rails, row.loss,
            row.goodput_mbps, row.p50_us, row.p95_us, row.p99_us, row.sim_ms,
            static_cast<unsigned long long>(row.bytes),
            static_cast<unsigned long long>(row.ops),
            static_cast<unsigned long long>(row.verify_failures));
        json += buf;
      }
    }
  }
  std::printf(
      "\nExpected: the skeletons' 4-16KB messages sit below the multirail "
      "striping regime, so a second rail moves clean goodput only a few "
      "percent; it earns its keep under loss on the all-to-all, where "
      "retransmission traffic spreads across rails (shuffle p99 drops "
      "~12%% at 2%% loss). Wire loss at 2%% costs roughly half the goodput "
      "via go-back-N retransmission but never correctness (verify stays "
      "0). Interference lives in the mix row's tail: its p50 matches the "
      "lone stencil's, while p95/p99 stretch several-fold — the shuffle's "
      "all-to-all congests the fat-tree links the halos cross.\n");

  if (!json_path.empty()) {
    if (json.size() > 2) json.erase(json.size() - 2, 1);  // trailing comma
    json += "]\n";
    if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("# json: %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
  }
  return failed ? 1 : 0;
}
