// Figure 8 — Chained DMA and the shared completion queue.
//
// RDMA-Read scheme, 0..16KB, four series: chained FIN_ACK (default),
// Read-NoChain (host-posted FIN_ACK), One-Queue (shared completion queue
// combined with the receive queue), Two-Queue (separate completion queue).
// Expected shape: chaining helps marginally for long messages; the shared
// completion queue costs a little extra, with One-Queue ~ Two-Queue under
// polling.
#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  auto opt = [](bool chained, ptl_elan4::Completion c) {
    mpi::Options o;
    o.elan4.scheme = ptl_elan4::Scheme::kRdmaRead;
    o.elan4.chained_fin = chained;
    o.elan4.completion = c;
    // Paper-reproduction column: monolithic rendezvous, not the pipelined
    // protocol (which would hide the FIN_ACK chaining deltas at 8-16KB).
    o.pipeline_rendezvous = false;
    return o;
  };

  print_header("Fig. 8 — chained DMA & shared completion queue, one-way latency (us)",
               {"RDMA-Read", "Read-NoChain", "One-Queue", "Two-Queue"});
  for (std::size_t s : {std::size_t{0}, std::size_t{2}, std::size_t{8},
                        std::size_t{32}, std::size_t{128}, std::size_t{512},
                        std::size_t{1024}, std::size_t{2048}, std::size_t{4096},
                        std::size_t{8192}, std::size_t{16384}}) {
    print_row(s, {
      ompi_pingpong_us(s, opt(true, ptl_elan4::Completion::kDirectPoll)),
      ompi_pingpong_us(s, opt(false, ptl_elan4::Completion::kDirectPoll)),
      ompi_pingpong_us(s, opt(true, ptl_elan4::Completion::kSharedCombined)),
      ompi_pingpong_us(s, opt(true, ptl_elan4::Completion::kSharedSeparate)),
    });
  }
  std::printf(
      "\nExpected (paper): NoChain slightly above chained for >=2KB; shared "
      "queues cost ~1-2us; One-Queue ~ Two-Queue.\n");
  return 0;
}
