// Wall-clock microbenchmarks of the simulator's real compute kernels
// (google-benchmark): event queue, fiber switching, datatype pack/unpack,
// CRC32C. These measure the reproduction infrastructure itself, not the
// simulated network.
#include <benchmark/benchmark.h>

#include <vector>

#include "base/checksum.h"
#include "dtype/datatype.h"
#include "sim/engine.h"

namespace {

using namespace oqs;

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    int sink = 0;
    for (int i = 0; i < 10000; ++i)
      e.schedule(static_cast<sim::Time>(i % 997), [&sink] { ++sink; });
    e.run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_FiberSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine e;
    e.spawn("switcher", [&e] {
      for (int i = 0; i < 2000; ++i) e.sleep(1);
    });
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(BM_FiberSwitch);

void BM_ConvertorPackContiguous(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> src(n, 3);
  std::vector<std::uint8_t> wire(n);
  auto t = dtype::Datatype::contiguous(n, dtype::byte_type());
  for (auto _ : state) {
    dtype::Convertor c(t, src.data(), 1);
    benchmark::DoNotOptimize(c.pack(wire.data(), wire.size()));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConvertorPackContiguous)->Arg(4096)->Arg(1 << 20);

void BM_ConvertorPackVector(benchmark::State& state) {
  const std::size_t blocks = static_cast<std::size_t>(state.range(0));
  auto t = dtype::Datatype::vec(blocks, 8, 12, dtype::double_type());
  std::vector<double> mem(blocks * 12 + 8, 1.0);
  std::vector<std::uint8_t> wire(t->size());
  for (auto _ : state) {
    dtype::Convertor c(t, mem.data(), 1);
    benchmark::DoNotOptimize(c.pack(wire.data(), wire.size()));
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<std::int64_t>(t->size()));
}
BENCHMARK(BM_ConvertorPackVector)->Arg(64)->Arg(4096);

void BM_Crc32c(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<std::uint8_t> buf(n, 0xA5);
  for (auto _ : state)
    benchmark::DoNotOptimize(crc32c(buf.data(), buf.size()));
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
