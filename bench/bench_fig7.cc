// Figure 7 — Performance analysis of basic RDMA read and write.
//
// Six series over 0..4KB (eager threshold 1984 B): RDMA-Read and RDMA-Write
// schemes, each as (a) default no-inline, (b) rendezvous with inlined data,
// (c) with the datatype copy engine enabled ("DTP"). Expected shape:
//  * the datatype engine adds ~0.4 us;
//  * RDMA read beats write beyond the threshold (saves one control packet);
//  * no-inline rendezvous wins for all long sizes.
#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  auto opt = [](ptl_elan4::Scheme s, bool inline_rdv, bool dtp) {
    mpi::Options o;
    o.elan4.scheme = s;
    o.inline_rendezvous = inline_rdv;
    o.elan4.use_dtype_engine = dtp;
    // Paper-reproduction column: the figure measures the monolithic
    // rendezvous of §5, not the later pipelined protocol.
    o.pipeline_rendezvous = false;
    return o;
  };

  const std::vector<std::size_t> small = {0, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  const std::vector<std::size_t> large = {512, 1024, 1984, 2048, 4096};

  for (const auto* part : {"(a) very small messages", "(b) small messages"}) {
    const auto& sizes = part[1] == 'a' ? small : large;
    print_header(std::string("Fig. 7") + part + " — one-way latency (us)",
                 {"RDMA-Read", "Read-NoInline", "Read-DTP", "RDMA-Write",
                  "Write-NoInline", "Write-DTP"});
    for (std::size_t s : sizes) {
      print_row(s, {
        ompi_pingpong_us(s, opt(ptl_elan4::Scheme::kRdmaRead, true, false)),
        ompi_pingpong_us(s, opt(ptl_elan4::Scheme::kRdmaRead, false, false)),
        ompi_pingpong_us(s, opt(ptl_elan4::Scheme::kRdmaRead, true, true)),
        ompi_pingpong_us(s, opt(ptl_elan4::Scheme::kRdmaWrite, true, false)),
        ompi_pingpong_us(s, opt(ptl_elan4::Scheme::kRdmaWrite, false, false)),
        ompi_pingpong_us(s, opt(ptl_elan4::Scheme::kRdmaWrite, true, true)),
      });
    }
  }
  std::printf(
      "\nExpected (paper): DTP ~ +0.4us; Read < Write past 1984B; NoInline "
      "best for long messages.\n");
  return 0;
}
