// Figure 9 / §6.3 — Communication cost decomposition across layers.
//
// During a ping-pong, the time from "PTL hands a packet up to the PML for
// matching" until "the next packet is handed down to the PTL" is the cost of
// the PML layer and above; the remainder of the one-way latency is the PTL
// latency (including the wire). The PTL latency is compared against native
// QDMA moving a (64+N)-byte message — the 64 bytes being the PML match
// header. Expected: PML-and-above ~ 0.5us, PTL ~ native QDMA.
#include "common.h"

namespace {

using namespace oqs;
using namespace oqs::bench;

struct LayerResult {
  double total_us;
  double pml_us;
};

LayerResult layered_pingpong(std::size_t bytes) {
  Bed bed;
  LayerResult r{0, 0};
  bed.rt->launch(2, [&](rte::Env& env) {
    mpi::World w(env, *bed.net);
    auto& c = w.comm();
    // Instrument rank 1: measure deliver-to-PML -> next send-to-PTL.
    sim::Time deliver_at = 0;
    double pml_ns_total = 0;
    int pml_samples = 0;
    if (c.rank() == 1) {
      w.pml().probe_deliver_to_pml = [&] { deliver_at = bed.engine.now(); };
      w.pml().probe_send_to_ptl = [&] {
        if (deliver_at != 0) {
          pml_ns_total += static_cast<double>(bed.engine.now() - deliver_at);
          ++pml_samples;
          deliver_at = 0;
        }
      };
    }
    std::vector<std::uint8_t> buf(bytes, 1);
    auto once = [&] {
      if (c.rank() == 0) {
        c.send(buf.data(), bytes, dtype::byte_type(), 1, 0);
        c.recv(buf.data(), bytes, dtype::byte_type(), 1, 0);
      } else {
        c.recv(buf.data(), bytes, dtype::byte_type(), 0, 0);
        c.send(buf.data(), bytes, dtype::byte_type(), 0, 0);
      }
    };
    for (int i = 0; i < kWarmup; ++i) once();
    pml_ns_total = 0;
    pml_samples = 0;
    c.barrier();
    const sim::Time t0 = bed.engine.now();
    for (int i = 0; i < kIters; ++i) once();
    if (c.rank() == 0)
      r.total_us = sim::to_us(bed.engine.now() - t0) / (2.0 * kIters);
    if (c.rank() == 1 && pml_samples > 0)
      r.pml_us = pml_ns_total / 1e3 / pml_samples;
    c.barrier();
  });
  bed.engine.run();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  print_header("Fig. 9 — per-layer communication cost, one-way (us)",
               {"QDMA(64+N)", "PTL latency", "PML cost", "total"});
  for (std::size_t s : {std::size_t{0}, std::size_t{2}, std::size_t{8},
                        std::size_t{32}, std::size_t{128}, std::size_t{256},
                        std::size_t{512}, std::size_t{1024}, std::size_t{1984}}) {
    const LayerResult lr = layered_pingpong(s);
    const double qdma = native_qdma_us(s + 64);
    print_row(s, {qdma, lr.total_us - lr.pml_us, lr.pml_us, lr.total_us});
  }
  std::printf(
      "\nExpected (paper Table/Fig 9): PML layer and above ~ 0.5us; PTL "
      "latency tracks native QDMA of a (64+N)-byte message.\n");
  return 0;
}
