// Figure 10 (c, d) — Overall bandwidth: Open MPI PTL/Elan4 vs MPICH-QsNetII.
//
// Blocking-send streaming (each message completes before the next posts).
// Expected shape: comparable at small and very large sizes; Open MPI
// noticeably worse in the middle range, where the per-message rendezvous
// handshake is not amortized while Tport pipelines the whole message in the
// NIC; both saturate near the PCI-X rate at 1MB.
//
// Extensions beyond the figure:
//   --rails N    multirail sweep — 1 rail vs N rails (BML striping), plus a
//                per-rail byte/retransmit breakdown at the largest size
//   --ptl tcp    run the Open MPI columns over the TCP PTL instead
#include <cstdlib>
#include <cstring>

#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  int rails = 1;
  std::string ptl = "elan4";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rails") == 0 && i + 1 < argc)
      rails = std::atoi(argv[++i]);
    else if (std::strncmp(argv[i], "--rails=", 8) == 0)
      rails = std::atoi(argv[i] + 8);
    else if (std::strcmp(argv[i], "--ptl") == 0 && i + 1 < argc)
      ptl = argv[++i];
    else if (std::strncmp(argv[i], "--ptl=", 6) == 0)
      ptl = argv[i] + 6;
  }
  if (rails < 1) rails = 1;

  mpi::Options read_o;
  read_o.elan4.scheme = ptl_elan4::Scheme::kRdmaRead;
  mpi::Options write_o;
  write_o.elan4.scheme = ptl_elan4::Scheme::kRdmaWrite;
  if (ptl == "tcp") {
    read_o.use_elan4 = write_o.use_elan4 = false;
    read_o.use_tcp = write_o.use_tcp = true;
  }

  const std::vector<std::size_t> small = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  const std::vector<std::size_t> large = {2048, 4096, 8192, 16384, 32768, 65536,
                                          131072, 262144, 524288, 1048576};

  if (rails > 1) {
    // Multirail sweep: the striping threshold (32KB by default) splits the
    // table — below it the BML routes whole messages to one rail, at and
    // above it rendezvous payloads stripe across every live rail.
    mpi::Options multi = read_o;
    multi.elan4.rails = rails;
    const std::string col = std::to_string(rails) + "-rail";
    print_header("Multirail bandwidth (MB/s), RDMA-read scheme",
                 {"1-rail", col, "speedup"});
    for (std::size_t s : large) {
      const int count = s >= 262144 ? 16 : 48;
      const double one = ompi_stream_mbps(s, read_o, {}, count, 1);
      const double many = ompi_stream_mbps(s, multi, {}, count, rails);
      print_row(s, {one, many, many / one});
    }

    std::vector<RailStat> stats;
    const std::size_t probe = 1048576;
    ompi_stream_mbps(probe, multi, {}, 16, rails, &stats);
    std::printf("\nPer-rail breakdown at %s (receiver side — the puller moves "
                "the stripes):\n", size_label(probe).c_str());
    std::printf("%-10s %14s %14s\n", "rail", "tx_bytes", "retransmits");
    for (const RailStat& r : stats)
      std::printf("%-10s %14llu %14llu\n", r.name.c_str(),
                  static_cast<unsigned long long>(r.tx_bytes),
                  static_cast<unsigned long long>(r.retransmissions));
    std::printf(
        "\nExpected: ~parity below the striping threshold; approaching %dx "
        "at 1MB (each rail is an independent NIC + link).\n", rails);
    return 0;
  }

  const bool tcp = ptl == "tcp";
  print_header("Fig. 10c — small message bandwidth (MB/s)",
               {"MPICH-QsNetII", tcp ? "PTL-TCP" : "PTL-RDMA-Read",
                tcp ? "PTL-TCP" : "PTL-RDMA-Write"});
  for (std::size_t s : small)
    print_row(s, {mpich_stream_mbps(s), ompi_stream_mbps(s, read_o),
                  ompi_stream_mbps(s, write_o)});

  print_header("Fig. 10d — large message bandwidth (MB/s)",
               {"MPICH-QsNetII", tcp ? "PTL-TCP" : "PTL-RDMA-Read",
                tcp ? "PTL-TCP" : "PTL-RDMA-Write"});
  for (std::size_t s : large) {
    const int count = s >= 262144 ? 16 : 48;
    print_row(s, {mpich_stream_mbps(s, {}, count),
                  ompi_stream_mbps(s, read_o, {}, count),
                  ompi_stream_mbps(s, write_o, {}, count)});
  }
  std::printf(
      "\nExpected (paper): Open MPI notably below MPICH in the middle range "
      "(rendezvous vs Tport pipelining); convergence near the PCI-X limit at "
      "1MB.\n");
  return 0;
}
