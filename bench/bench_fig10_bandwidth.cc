// Figure 10 (c, d) — Overall bandwidth: Open MPI PTL/Elan4 vs MPICH-QsNetII.
//
// Blocking-send streaming (each message completes before the next posts).
// Expected shape: comparable at small and very large sizes; Open MPI
// noticeably worse in the middle range, where the per-message rendezvous
// handshake is not amortized while Tport pipelines the whole message in the
// NIC; both saturate near the PCI-X rate at 1MB.
//
// Extensions beyond the figure:
//   --rails N           multirail sweep — 1 rail vs N rails (pipelined
//                       fragments stripe across rails), plus a per-rail
//                       byte/retransmit breakdown at the largest size
//   --ptl tcp           run the Open MPI columns over the TCP PTL instead
//   --frag-size N       pipelined-rendezvous pull fragment size in bytes
//   --pipeline-depth N  in-flight pull fragments per rail
//   --push-frags N      eager-sized frames pushed behind the RTS
//   --monolithic        skip the pipelined columns and crossover table
//
// The paper columns always measure the monolithic rendezvous (the §5
// protocol); the crossover table then replays the same stream test with the
// pipelined protocol to show where fragment streaming overtakes the single
// handshake-bound RDMA.
#include <cstdlib>
#include <cstring>

#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  int rails = 1;
  std::string ptl = "elan4";
  std::size_t frag_size = 0;  // 0 = ModelParams default
  int depth = 0;              // 0 = ModelParams default
  int push_frags = -1;        // -1 = ModelParams default
  bool monolithic_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--rails") == 0 && i + 1 < argc)
      rails = std::atoi(argv[++i]);
    else if (std::strncmp(argv[i], "--rails=", 8) == 0)
      rails = std::atoi(argv[i] + 8);
    else if (std::strcmp(argv[i], "--ptl") == 0 && i + 1 < argc)
      ptl = argv[++i];
    else if (std::strncmp(argv[i], "--ptl=", 6) == 0)
      ptl = argv[i] + 6;
    else if (std::strcmp(argv[i], "--frag-size") == 0 && i + 1 < argc)
      frag_size = static_cast<std::size_t>(std::atoll(argv[++i]));
    else if (std::strncmp(argv[i], "--frag-size=", 12) == 0)
      frag_size = static_cast<std::size_t>(std::atoll(argv[i] + 12));
    else if (std::strcmp(argv[i], "--pipeline-depth") == 0 && i + 1 < argc)
      depth = std::atoi(argv[++i]);
    else if (std::strncmp(argv[i], "--pipeline-depth=", 17) == 0)
      depth = std::atoi(argv[i] + 17);
    else if (std::strcmp(argv[i], "--push-frags") == 0 && i + 1 < argc)
      push_frags = std::atoi(argv[++i]);
    else if (std::strncmp(argv[i], "--push-frags=", 13) == 0)
      push_frags = std::atoi(argv[i] + 13);
    else if (std::strcmp(argv[i], "--monolithic") == 0)
      monolithic_only = true;
  }
  if (rails < 1) rails = 1;

  mpi::Options read_o;
  read_o.elan4.scheme = ptl_elan4::Scheme::kRdmaRead;
  mpi::Options write_o;
  write_o.elan4.scheme = ptl_elan4::Scheme::kRdmaWrite;
  // Paper columns reproduce the monolithic rendezvous of §5.
  read_o.pipeline_rendezvous = write_o.pipeline_rendezvous = false;
  if (ptl == "tcp") {
    read_o.use_elan4 = write_o.use_elan4 = false;
    read_o.use_tcp = write_o.use_tcp = true;
  }
  // The pipelined configuration under test: same scheme/transport, fragment
  // streaming on, knobs from the command line (0 = ModelParams defaults).
  mpi::Options pipe_o = read_o;
  pipe_o.pipeline_rendezvous = true;
  pipe_o.pipeline_frag_bytes = frag_size;
  pipe_o.pipeline_depth = depth;
  pipe_o.pipeline_push_frags = push_frags;

  const std::vector<std::size_t> small = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  const std::vector<std::size_t> large = {2048, 4096, 8192, 16384, 32768, 65536,
                                          131072, 262144, 524288, 1048576};

  if (rails > 1) {
    // Multirail sweep with the pipelined protocol: the pull fragment is the
    // striping unit, so any message that splits into several fragments fans
    // out across every live rail — there is no whole-message threshold.
    mpi::Options multi = pipe_o;
    multi.elan4.rails = rails;
    const std::string col = std::to_string(rails) + "-rail";
    print_header("Multirail bandwidth (MB/s), RDMA-read scheme, pipelined",
                 {"1-rail", col, "speedup"});
    for (std::size_t s : large) {
      const int count = s >= 262144 ? 16 : 48;
      const double one = ompi_stream_mbps(s, pipe_o, {}, count, 1);
      const double many = ompi_stream_mbps(s, multi, {}, count, rails);
      print_row(s, {one, many, many / one});
    }

    std::vector<RailStat> stats;
    const std::size_t probe = 1048576;
    ompi_stream_mbps(probe, multi, {}, 16, rails, &stats);
    std::printf("\nPer-rail breakdown at %s (receiver side — the puller moves "
                "the fragments):\n", size_label(probe).c_str());
    std::printf("%-10s %14s %14s\n", "rail", "tx_bytes", "retransmits");
    for (const RailStat& r : stats)
      std::printf("%-10s %14llu %14llu\n", r.name.c_str(),
                  static_cast<unsigned long long>(r.tx_bytes),
                  static_cast<unsigned long long>(r.retransmissions));
    std::printf(
        "\nExpected: fragment striping engages as soon as a message splits "
        "(a few fragment sizes), approaching %dx at 1MB (each rail is an "
        "independent NIC + link).\n", rails);
    return 0;
  }

  const bool tcp = ptl == "tcp";
  print_header("Fig. 10c — small message bandwidth (MB/s)",
               {"MPICH-QsNetII", tcp ? "PTL-TCP" : "PTL-RDMA-Read",
                tcp ? "PTL-TCP" : "PTL-RDMA-Write"});
  for (std::size_t s : small)
    print_row(s, {mpich_stream_mbps(s), ompi_stream_mbps(s, read_o),
                  ompi_stream_mbps(s, write_o)});

  print_header("Fig. 10d — large message bandwidth (MB/s)",
               {"MPICH-QsNetII", tcp ? "PTL-TCP" : "PTL-RDMA-Read",
                tcp ? "PTL-TCP" : "PTL-RDMA-Write"});
  for (std::size_t s : large) {
    const int count = s >= 262144 ? 16 : 48;
    print_row(s, {mpich_stream_mbps(s, {}, count),
                  ompi_stream_mbps(s, read_o, {}, count),
                  ompi_stream_mbps(s, write_o, {}, count)});
  }
  std::printf(
      "\nExpected (paper): Open MPI notably below MPICH in the middle range "
      "(rendezvous vs Tport pipelining); convergence near the PCI-X limit at "
      "1MB.\n");

  if (monolithic_only) return 0;

  // Crossover: the same blocking stream, monolithic vs pipelined rendezvous.
  // Eager messages (< ~2KB) take the same path in both; the interesting
  // band is 4-64KB, where the monolithic protocol pays one full handshake +
  // registration before any payload moves, while the pipeline pushes
  // fragments behind the RTS and overlaps MMU mapping with the pulls.
  print_header(
      std::string("Crossover — monolithic vs pipelined rendezvous (MB/s)") +
          (frag_size != 0 || depth != 0
               ? " [frag=" + std::to_string(frag_size) +
                     " depth=" + std::to_string(depth) + "]"
               : ""),
      {"monolithic", "pipelined", "speedup"});
  for (std::size_t s : large) {
    const int count = s >= 262144 ? 16 : 48;
    const double mono = ompi_stream_mbps(s, read_o, {}, count);
    const double pipe = ompi_stream_mbps(s, pipe_o, {}, count);
    print_row(s, {mono, pipe, pipe / mono});
  }
  std::printf(
      "\nExpected: >=2x at 2-4KB and ~1.4x at 8KB (full-push fold streams "
      "the payload behind the RTS); within a few %% of monolithic from 16KB "
      "up, where the old protocol already ran near wire saturation.\n");
  return 0;
}
