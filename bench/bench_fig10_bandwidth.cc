// Figure 10 (c, d) — Overall bandwidth: Open MPI PTL/Elan4 vs MPICH-QsNetII.
//
// Blocking-send streaming (each message completes before the next posts).
// Expected shape: comparable at small and very large sizes; Open MPI
// noticeably worse in the middle range, where the per-message rendezvous
// handshake is not amortized while Tport pipelines the whole message in the
// NIC; both saturate near the PCI-X rate at 1MB.
#include "common.h"

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  using namespace oqs;
  using namespace oqs::bench;

  mpi::Options read_o;
  read_o.elan4.scheme = ptl_elan4::Scheme::kRdmaRead;
  mpi::Options write_o;
  write_o.elan4.scheme = ptl_elan4::Scheme::kRdmaWrite;

  const std::vector<std::size_t> small = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
  const std::vector<std::size_t> large = {2048, 4096, 8192, 16384, 32768, 65536,
                                          131072, 262144, 524288, 1048576};

  print_header("Fig. 10c — small message bandwidth (MB/s)",
               {"MPICH-QsNetII", "PTL-RDMA-Read", "PTL-RDMA-Write"});
  for (std::size_t s : small)
    print_row(s, {mpich_stream_mbps(s), ompi_stream_mbps(s, read_o),
                  ompi_stream_mbps(s, write_o)});

  print_header("Fig. 10d — large message bandwidth (MB/s)",
               {"MPICH-QsNetII", "PTL-RDMA-Read", "PTL-RDMA-Write"});
  for (std::size_t s : large) {
    const int count = s >= 262144 ? 16 : 48;
    print_row(s, {mpich_stream_mbps(s, {}, count),
                  ompi_stream_mbps(s, read_o, {}, count),
                  ompi_stream_mbps(s, write_o, {}, count)});
  }
  std::printf(
      "\nExpected (paper): Open MPI notably below MPICH in the middle range "
      "(rendezvous vs Tport pipelining); convergence near the PCI-X limit at "
      "1MB.\n");
  return 0;
}
