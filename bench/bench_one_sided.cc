// Extension benchmark — MPI-2 one-sided vs two-sided data movement.
//
// The paper targets MPI-2 compliance and cites the InfiniBand one-sided
// work [15,16,18] as contemporaries; this measures what the Elan4 RDMA
// engine buys when the receiver is completely passive: a put+fence epoch
// against a send/recv of the same payload, and per-op cost amortization as
// more operations share one fence.
#include "common.h"

namespace {

using namespace oqs;
using namespace oqs::bench;

double put_fence_us(std::size_t bytes, int ops_per_fence) {
  Bed bed;
  double us = 0;
  bed.rt->launch(2, [&](rte::Env& env) {
    mpi::World w(env, *bed.net);
    auto& c = w.comm();
    std::vector<std::uint8_t> exposed(bytes * static_cast<std::size_t>(ops_per_fence), 0);
    mpi::Window win(c, w, exposed.data(), exposed.size());
    std::vector<std::uint8_t> src(bytes, 3);
    c.barrier();
    const sim::Time t0 = bed.engine.now();
    constexpr int kEpochs = 30;
    for (int e = 0; e < kEpochs; ++e) {
      if (c.rank() == 0)
        for (int k = 0; k < ops_per_fence; ++k)
          win.put(1, src.data(), bytes, static_cast<std::size_t>(k) * bytes);
      win.fence();
    }
    if (c.rank() == 0)
      us = sim::to_us(bed.engine.now() - t0) / (kEpochs * ops_per_fence);
    c.barrier();
    win.fence();
  });
  bed.engine.run();
  return us;
}

double send_recv_us(std::size_t bytes) {
  mpi::Options opts;
  return ompi_pingpong_us(bytes, opts, {}, 100) * 2.0;  // full round trip
}

}  // namespace

int main(int argc, char** argv) {
  oqs::bench::TraceSession trace_session(argc, argv);
  std::printf("One-sided put+fence vs two-sided send/recv (us per transfer)\n");
  std::printf("%-10s %14s %14s %16s\n", "size", "put+fence", "send+recv-rt",
              "put x8 (amort.)");
  for (std::size_t s : {64ul, 1024ul, 4096ul, 65536ul}) {
    std::printf("%-10zu %14.2f %14.2f %16.2f\n", s, put_fence_us(s, 1),
                send_recv_us(s), put_fence_us(s, 8));
  }
  std::printf(
      "\nExpected: a lone put pays the fence barrier; batching 8 puts per "
      "fence amortizes it below the two-sided cost — the passive-target "
      "advantage of RDMA.\n");
  return 0;
}
