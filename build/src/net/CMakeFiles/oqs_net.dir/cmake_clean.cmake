file(REMOVE_RECURSE
  "CMakeFiles/oqs_net.dir/fabric.cc.o"
  "CMakeFiles/oqs_net.dir/fabric.cc.o.d"
  "CMakeFiles/oqs_net.dir/topology.cc.o"
  "CMakeFiles/oqs_net.dir/topology.cc.o.d"
  "liboqs_net.a"
  "liboqs_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
