file(REMOVE_RECURSE
  "liboqs_net.a"
)
