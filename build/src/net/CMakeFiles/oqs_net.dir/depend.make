# Empty dependencies file for oqs_net.
# This may be replaced when dependencies are built.
