# Empty compiler generated dependencies file for oqs_sim.
# This may be replaced when dependencies are built.
