file(REMOVE_RECURSE
  "liboqs_sim.a"
)
