file(REMOVE_RECURSE
  "CMakeFiles/oqs_sim.dir/cpu.cc.o"
  "CMakeFiles/oqs_sim.dir/cpu.cc.o.d"
  "CMakeFiles/oqs_sim.dir/engine.cc.o"
  "CMakeFiles/oqs_sim.dir/engine.cc.o.d"
  "CMakeFiles/oqs_sim.dir/fiber.cc.o"
  "CMakeFiles/oqs_sim.dir/fiber.cc.o.d"
  "liboqs_sim.a"
  "liboqs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
