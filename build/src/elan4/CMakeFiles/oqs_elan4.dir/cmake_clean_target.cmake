file(REMOVE_RECURSE
  "liboqs_elan4.a"
)
