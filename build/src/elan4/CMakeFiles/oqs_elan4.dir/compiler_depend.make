# Empty compiler generated dependencies file for oqs_elan4.
# This may be replaced when dependencies are built.
