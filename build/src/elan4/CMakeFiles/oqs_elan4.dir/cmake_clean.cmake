file(REMOVE_RECURSE
  "CMakeFiles/oqs_elan4.dir/capability.cc.o"
  "CMakeFiles/oqs_elan4.dir/capability.cc.o.d"
  "CMakeFiles/oqs_elan4.dir/device.cc.o"
  "CMakeFiles/oqs_elan4.dir/device.cc.o.d"
  "CMakeFiles/oqs_elan4.dir/event.cc.o"
  "CMakeFiles/oqs_elan4.dir/event.cc.o.d"
  "CMakeFiles/oqs_elan4.dir/mmu.cc.o"
  "CMakeFiles/oqs_elan4.dir/mmu.cc.o.d"
  "CMakeFiles/oqs_elan4.dir/nic.cc.o"
  "CMakeFiles/oqs_elan4.dir/nic.cc.o.d"
  "CMakeFiles/oqs_elan4.dir/qsnet.cc.o"
  "CMakeFiles/oqs_elan4.dir/qsnet.cc.o.d"
  "liboqs_elan4.a"
  "liboqs_elan4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_elan4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
