
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/elan4/capability.cc" "src/elan4/CMakeFiles/oqs_elan4.dir/capability.cc.o" "gcc" "src/elan4/CMakeFiles/oqs_elan4.dir/capability.cc.o.d"
  "/root/repo/src/elan4/device.cc" "src/elan4/CMakeFiles/oqs_elan4.dir/device.cc.o" "gcc" "src/elan4/CMakeFiles/oqs_elan4.dir/device.cc.o.d"
  "/root/repo/src/elan4/event.cc" "src/elan4/CMakeFiles/oqs_elan4.dir/event.cc.o" "gcc" "src/elan4/CMakeFiles/oqs_elan4.dir/event.cc.o.d"
  "/root/repo/src/elan4/mmu.cc" "src/elan4/CMakeFiles/oqs_elan4.dir/mmu.cc.o" "gcc" "src/elan4/CMakeFiles/oqs_elan4.dir/mmu.cc.o.d"
  "/root/repo/src/elan4/nic.cc" "src/elan4/CMakeFiles/oqs_elan4.dir/nic.cc.o" "gcc" "src/elan4/CMakeFiles/oqs_elan4.dir/nic.cc.o.d"
  "/root/repo/src/elan4/qsnet.cc" "src/elan4/CMakeFiles/oqs_elan4.dir/qsnet.cc.o" "gcc" "src/elan4/CMakeFiles/oqs_elan4.dir/qsnet.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/oqs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oqs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/oqs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
