file(REMOVE_RECURSE
  "liboqs_mpich.a"
)
