# Empty compiler generated dependencies file for oqs_mpich.
# This may be replaced when dependencies are built.
