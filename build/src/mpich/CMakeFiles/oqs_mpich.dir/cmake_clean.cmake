file(REMOVE_RECURSE
  "CMakeFiles/oqs_mpich.dir/mpich.cc.o"
  "CMakeFiles/oqs_mpich.dir/mpich.cc.o.d"
  "liboqs_mpich.a"
  "liboqs_mpich.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_mpich.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
