# Empty dependencies file for oqs_mpi.
# This may be replaced when dependencies are built.
