file(REMOVE_RECURSE
  "CMakeFiles/oqs_mpi.dir/hwcoll.cc.o"
  "CMakeFiles/oqs_mpi.dir/hwcoll.cc.o.d"
  "CMakeFiles/oqs_mpi.dir/mpi.cc.o"
  "CMakeFiles/oqs_mpi.dir/mpi.cc.o.d"
  "CMakeFiles/oqs_mpi.dir/window.cc.o"
  "CMakeFiles/oqs_mpi.dir/window.cc.o.d"
  "liboqs_mpi.a"
  "liboqs_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
