file(REMOVE_RECURSE
  "liboqs_mpi.a"
)
