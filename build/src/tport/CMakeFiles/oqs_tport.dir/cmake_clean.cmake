file(REMOVE_RECURSE
  "CMakeFiles/oqs_tport.dir/tport.cc.o"
  "CMakeFiles/oqs_tport.dir/tport.cc.o.d"
  "liboqs_tport.a"
  "liboqs_tport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_tport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
