file(REMOVE_RECURSE
  "liboqs_tport.a"
)
