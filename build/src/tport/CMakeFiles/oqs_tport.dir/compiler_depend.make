# Empty compiler generated dependencies file for oqs_tport.
# This may be replaced when dependencies are built.
