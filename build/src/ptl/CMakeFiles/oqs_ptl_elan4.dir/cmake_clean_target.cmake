file(REMOVE_RECURSE
  "liboqs_ptl_elan4.a"
)
