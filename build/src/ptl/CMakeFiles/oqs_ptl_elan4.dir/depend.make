# Empty dependencies file for oqs_ptl_elan4.
# This may be replaced when dependencies are built.
