file(REMOVE_RECURSE
  "CMakeFiles/oqs_ptl_elan4.dir/elan4/ptl_elan4.cc.o"
  "CMakeFiles/oqs_ptl_elan4.dir/elan4/ptl_elan4.cc.o.d"
  "liboqs_ptl_elan4.a"
  "liboqs_ptl_elan4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_ptl_elan4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
