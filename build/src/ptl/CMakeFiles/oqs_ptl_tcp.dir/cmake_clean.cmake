file(REMOVE_RECURSE
  "CMakeFiles/oqs_ptl_tcp.dir/tcp/ptl_tcp.cc.o"
  "CMakeFiles/oqs_ptl_tcp.dir/tcp/ptl_tcp.cc.o.d"
  "liboqs_ptl_tcp.a"
  "liboqs_ptl_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_ptl_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
