# Empty dependencies file for oqs_ptl_tcp.
# This may be replaced when dependencies are built.
