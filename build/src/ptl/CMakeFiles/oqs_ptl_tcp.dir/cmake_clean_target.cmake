file(REMOVE_RECURSE
  "liboqs_ptl_tcp.a"
)
