file(REMOVE_RECURSE
  "liboqs_pml.a"
)
