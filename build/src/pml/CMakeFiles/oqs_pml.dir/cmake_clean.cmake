file(REMOVE_RECURSE
  "CMakeFiles/oqs_pml.dir/pml.cc.o"
  "CMakeFiles/oqs_pml.dir/pml.cc.o.d"
  "liboqs_pml.a"
  "liboqs_pml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_pml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
