# Empty compiler generated dependencies file for oqs_pml.
# This may be replaced when dependencies are built.
