file(REMOVE_RECURSE
  "CMakeFiles/oqs_base.dir/checksum.cc.o"
  "CMakeFiles/oqs_base.dir/checksum.cc.o.d"
  "CMakeFiles/oqs_base.dir/log.cc.o"
  "CMakeFiles/oqs_base.dir/log.cc.o.d"
  "liboqs_base.a"
  "liboqs_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
