file(REMOVE_RECURSE
  "liboqs_base.a"
)
