# Empty dependencies file for oqs_base.
# This may be replaced when dependencies are built.
