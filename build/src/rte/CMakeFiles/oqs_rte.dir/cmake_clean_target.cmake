file(REMOVE_RECURSE
  "liboqs_rte.a"
)
