file(REMOVE_RECURSE
  "CMakeFiles/oqs_rte.dir/oob.cc.o"
  "CMakeFiles/oqs_rte.dir/oob.cc.o.d"
  "CMakeFiles/oqs_rte.dir/runtime.cc.o"
  "CMakeFiles/oqs_rte.dir/runtime.cc.o.d"
  "liboqs_rte.a"
  "liboqs_rte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_rte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
