# Empty compiler generated dependencies file for oqs_rte.
# This may be replaced when dependencies are built.
