file(REMOVE_RECURSE
  "CMakeFiles/oqs_dtype.dir/datatype.cc.o"
  "CMakeFiles/oqs_dtype.dir/datatype.cc.o.d"
  "liboqs_dtype.a"
  "liboqs_dtype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oqs_dtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
