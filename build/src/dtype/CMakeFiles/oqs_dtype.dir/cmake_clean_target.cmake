file(REMOVE_RECURSE
  "liboqs_dtype.a"
)
