# Empty compiler generated dependencies file for oqs_dtype.
# This may be replaced when dependencies are built.
