# CMake generated Testfile for 
# Source directory: /root/repo/tests/base
# Build directory: /root/repo/build/tests/base
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(containers_test "/root/repo/build/tests/base/containers_test")
set_tests_properties(containers_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/base/CMakeLists.txt;1;oqs_test;/root/repo/tests/base/CMakeLists.txt;0;")
add_test(checksum_test "/root/repo/build/tests/base/checksum_test")
set_tests_properties(checksum_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/base/CMakeLists.txt;4;oqs_test;/root/repo/tests/base/CMakeLists.txt;0;")
