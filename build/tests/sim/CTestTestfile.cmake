# CMake generated Testfile for 
# Source directory: /root/repo/tests/sim
# Build directory: /root/repo/build/tests/sim
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(engine_test "/root/repo/build/tests/sim/engine_test")
set_tests_properties(engine_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sim/CMakeLists.txt;1;oqs_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(sync_test "/root/repo/build/tests/sim/sync_test")
set_tests_properties(sync_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sim/CMakeLists.txt;4;oqs_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(cpu_test "/root/repo/build/tests/sim/cpu_test")
set_tests_properties(cpu_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sim/CMakeLists.txt;7;oqs_test;/root/repo/tests/sim/CMakeLists.txt;0;")
add_test(stats_test "/root/repo/build/tests/sim/stats_test")
set_tests_properties(stats_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/sim/CMakeLists.txt;10;oqs_test;/root/repo/tests/sim/CMakeLists.txt;0;")
