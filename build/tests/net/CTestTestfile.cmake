# CMake generated Testfile for 
# Source directory: /root/repo/tests/net
# Build directory: /root/repo/build/tests/net
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(topology_test "/root/repo/build/tests/net/topology_test")
set_tests_properties(topology_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/net/CMakeLists.txt;1;oqs_test;/root/repo/tests/net/CMakeLists.txt;0;")
add_test(fabric_test "/root/repo/build/tests/net/fabric_test")
set_tests_properties(fabric_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/net/CMakeLists.txt;4;oqs_test;/root/repo/tests/net/CMakeLists.txt;0;")
