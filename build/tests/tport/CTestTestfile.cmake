# CMake generated Testfile for 
# Source directory: /root/repo/tests/tport
# Build directory: /root/repo/build/tests/tport
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tport_test "/root/repo/build/tests/tport/tport_test")
set_tests_properties(tport_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/tport/CMakeLists.txt;1;oqs_test;/root/repo/tests/tport/CMakeLists.txt;0;")
