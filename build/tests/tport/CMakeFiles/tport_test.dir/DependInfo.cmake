
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/tport/tport_test.cc" "tests/tport/CMakeFiles/tport_test.dir/tport_test.cc.o" "gcc" "tests/tport/CMakeFiles/tport_test.dir/tport_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tport/CMakeFiles/oqs_tport.dir/DependInfo.cmake"
  "/root/repo/build/src/elan4/CMakeFiles/oqs_elan4.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oqs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oqs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/oqs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
