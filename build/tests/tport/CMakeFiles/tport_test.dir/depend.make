# Empty dependencies file for tport_test.
# This may be replaced when dependencies are built.
