file(REMOVE_RECURSE
  "CMakeFiles/tport_test.dir/tport_test.cc.o"
  "CMakeFiles/tport_test.dir/tport_test.cc.o.d"
  "tport_test"
  "tport_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tport_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
