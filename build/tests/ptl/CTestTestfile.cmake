# CMake generated Testfile for 
# Source directory: /root/repo/tests/ptl
# Build directory: /root/repo/build/tests/ptl
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tcp_test "/root/repo/build/tests/ptl/tcp_test")
set_tests_properties(tcp_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/ptl/CMakeLists.txt;1;oqs_test;/root/repo/tests/ptl/CMakeLists.txt;0;")
