# Empty dependencies file for multinet_test.
# This may be replaced when dependencies are built.
