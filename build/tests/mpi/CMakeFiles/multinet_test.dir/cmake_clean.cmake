file(REMOVE_RECURSE
  "CMakeFiles/multinet_test.dir/multinet_test.cc.o"
  "CMakeFiles/multinet_test.dir/multinet_test.cc.o.d"
  "multinet_test"
  "multinet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multinet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
