file(REMOVE_RECURSE
  "CMakeFiles/p2p_test.dir/p2p_test.cc.o"
  "CMakeFiles/p2p_test.dir/p2p_test.cc.o.d"
  "p2p_test"
  "p2p_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
