# Empty compiler generated dependencies file for hwcoll_test.
# This may be replaced when dependencies are built.
