file(REMOVE_RECURSE
  "CMakeFiles/hwcoll_test.dir/hwcoll_test.cc.o"
  "CMakeFiles/hwcoll_test.dir/hwcoll_test.cc.o.d"
  "hwcoll_test"
  "hwcoll_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwcoll_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
