# Empty compiler generated dependencies file for dtype_transfer_test.
# This may be replaced when dependencies are built.
