file(REMOVE_RECURSE
  "CMakeFiles/dtype_transfer_test.dir/dtype_transfer_test.cc.o"
  "CMakeFiles/dtype_transfer_test.dir/dtype_transfer_test.cc.o.d"
  "dtype_transfer_test"
  "dtype_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtype_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
