# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpi
# Build directory: /root/repo/build/tests/mpi
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(p2p_test "/root/repo/build/tests/mpi/p2p_test")
set_tests_properties(p2p_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;1;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(collectives_test "/root/repo/build/tests/mpi/collectives_test")
set_tests_properties(collectives_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;4;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(dynamic_test "/root/repo/build/tests/mpi/dynamic_test")
set_tests_properties(dynamic_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;7;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(progress_test "/root/repo/build/tests/mpi/progress_test")
set_tests_properties(progress_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;10;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(multinet_test "/root/repo/build/tests/mpi/multinet_test")
set_tests_properties(multinet_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;13;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(dtype_transfer_test "/root/repo/build/tests/mpi/dtype_transfer_test")
set_tests_properties(dtype_transfer_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;16;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(api_test "/root/repo/build/tests/mpi/api_test")
set_tests_properties(api_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;19;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(window_test "/root/repo/build/tests/mpi/window_test")
set_tests_properties(window_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;22;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(reliability_test "/root/repo/build/tests/mpi/reliability_test")
set_tests_properties(reliability_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;25;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(hwcoll_test "/root/repo/build/tests/mpi/hwcoll_test")
set_tests_properties(hwcoll_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;28;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(soak_test "/root/repo/build/tests/mpi/soak_test")
set_tests_properties(soak_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;31;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(migrate_test "/root/repo/build/tests/mpi/migrate_test")
set_tests_properties(migrate_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;34;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
add_test(edge_test "/root/repo/build/tests/mpi/edge_test")
set_tests_properties(edge_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpi/CMakeLists.txt;37;oqs_test;/root/repo/tests/mpi/CMakeLists.txt;0;")
