# Empty dependencies file for rdma_sweep_test.
# This may be replaced when dependencies are built.
