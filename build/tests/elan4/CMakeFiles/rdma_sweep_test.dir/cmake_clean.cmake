file(REMOVE_RECURSE
  "CMakeFiles/rdma_sweep_test.dir/rdma_sweep_test.cc.o"
  "CMakeFiles/rdma_sweep_test.dir/rdma_sweep_test.cc.o.d"
  "rdma_sweep_test"
  "rdma_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdma_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
