file(REMOVE_RECURSE
  "CMakeFiles/hwbcast_test.dir/hwbcast_test.cc.o"
  "CMakeFiles/hwbcast_test.dir/hwbcast_test.cc.o.d"
  "hwbcast_test"
  "hwbcast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hwbcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
