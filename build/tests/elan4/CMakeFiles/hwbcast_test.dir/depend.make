# Empty dependencies file for hwbcast_test.
# This may be replaced when dependencies are built.
