# Empty compiler generated dependencies file for qdma_test.
# This may be replaced when dependencies are built.
