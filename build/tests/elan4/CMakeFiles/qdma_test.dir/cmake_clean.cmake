file(REMOVE_RECURSE
  "CMakeFiles/qdma_test.dir/qdma_test.cc.o"
  "CMakeFiles/qdma_test.dir/qdma_test.cc.o.d"
  "qdma_test"
  "qdma_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qdma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
