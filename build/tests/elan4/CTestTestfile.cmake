# CMake generated Testfile for 
# Source directory: /root/repo/tests/elan4
# Build directory: /root/repo/build/tests/elan4
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(capability_test "/root/repo/build/tests/elan4/capability_test")
set_tests_properties(capability_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/elan4/CMakeLists.txt;1;oqs_test;/root/repo/tests/elan4/CMakeLists.txt;0;")
add_test(mmu_test "/root/repo/build/tests/elan4/mmu_test")
set_tests_properties(mmu_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/elan4/CMakeLists.txt;4;oqs_test;/root/repo/tests/elan4/CMakeLists.txt;0;")
add_test(event_test "/root/repo/build/tests/elan4/event_test")
set_tests_properties(event_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/elan4/CMakeLists.txt;7;oqs_test;/root/repo/tests/elan4/CMakeLists.txt;0;")
add_test(qdma_test "/root/repo/build/tests/elan4/qdma_test")
set_tests_properties(qdma_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/elan4/CMakeLists.txt;10;oqs_test;/root/repo/tests/elan4/CMakeLists.txt;0;")
add_test(rdma_test "/root/repo/build/tests/elan4/rdma_test")
set_tests_properties(rdma_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/elan4/CMakeLists.txt;13;oqs_test;/root/repo/tests/elan4/CMakeLists.txt;0;")
add_test(hwbcast_test "/root/repo/build/tests/elan4/hwbcast_test")
set_tests_properties(hwbcast_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/elan4/CMakeLists.txt;16;oqs_test;/root/repo/tests/elan4/CMakeLists.txt;0;")
add_test(rdma_sweep_test "/root/repo/build/tests/elan4/rdma_sweep_test")
set_tests_properties(rdma_sweep_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/elan4/CMakeLists.txt;19;oqs_test;/root/repo/tests/elan4/CMakeLists.txt;0;")
add_test(device_test "/root/repo/build/tests/elan4/device_test")
set_tests_properties(device_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/elan4/CMakeLists.txt;22;oqs_test;/root/repo/tests/elan4/CMakeLists.txt;0;")
