# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("sim")
subdirs("net")
subdirs("elan4")
subdirs("mpi")
subdirs("dtype")
subdirs("tport")
subdirs("mpich")
subdirs("base")
subdirs("pml")
subdirs("rte")
subdirs("ptl")
