# CMake generated Testfile for 
# Source directory: /root/repo/tests/pml
# Build directory: /root/repo/build/tests/pml
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(match_test "/root/repo/build/tests/pml/match_test")
set_tests_properties(match_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/pml/CMakeLists.txt;1;oqs_test;/root/repo/tests/pml/CMakeLists.txt;0;")
