file(REMOVE_RECURSE
  "CMakeFiles/mpich_test.dir/mpich_test.cc.o"
  "CMakeFiles/mpich_test.dir/mpich_test.cc.o.d"
  "mpich_test"
  "mpich_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpich_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
