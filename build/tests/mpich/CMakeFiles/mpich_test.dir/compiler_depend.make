# Empty compiler generated dependencies file for mpich_test.
# This may be replaced when dependencies are built.
