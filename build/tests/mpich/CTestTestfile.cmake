# CMake generated Testfile for 
# Source directory: /root/repo/tests/mpich
# Build directory: /root/repo/build/tests/mpich
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(mpich_test "/root/repo/build/tests/mpich/mpich_test")
set_tests_properties(mpich_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/mpich/CMakeLists.txt;1;oqs_test;/root/repo/tests/mpich/CMakeLists.txt;0;")
