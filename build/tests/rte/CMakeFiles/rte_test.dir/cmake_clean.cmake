file(REMOVE_RECURSE
  "CMakeFiles/rte_test.dir/rte_test.cc.o"
  "CMakeFiles/rte_test.dir/rte_test.cc.o.d"
  "rte_test"
  "rte_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rte_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
