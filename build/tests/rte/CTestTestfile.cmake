# CMake generated Testfile for 
# Source directory: /root/repo/tests/rte
# Build directory: /root/repo/build/tests/rte
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(rte_test "/root/repo/build/tests/rte/rte_test")
set_tests_properties(rte_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/rte/CMakeLists.txt;1;oqs_test;/root/repo/tests/rte/CMakeLists.txt;0;")
