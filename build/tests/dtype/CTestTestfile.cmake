# CMake generated Testfile for 
# Source directory: /root/repo/tests/dtype
# Build directory: /root/repo/build/tests/dtype
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(datatype_test "/root/repo/build/tests/dtype/datatype_test")
set_tests_properties(datatype_test PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/dtype/CMakeLists.txt;1;oqs_test;/root/repo/tests/dtype/CMakeLists.txt;0;")
