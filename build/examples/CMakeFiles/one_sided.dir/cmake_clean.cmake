file(REMOVE_RECURSE
  "CMakeFiles/one_sided.dir/one_sided.cpp.o"
  "CMakeFiles/one_sided.dir/one_sided.cpp.o.d"
  "one_sided"
  "one_sided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/one_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
