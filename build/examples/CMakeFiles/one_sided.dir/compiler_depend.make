# Empty compiler generated dependencies file for one_sided.
# This may be replaced when dependencies are built.
