file(REMOVE_RECURSE
  "CMakeFiles/multi_network.dir/multi_network.cpp.o"
  "CMakeFiles/multi_network.dir/multi_network.cpp.o.d"
  "multi_network"
  "multi_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
