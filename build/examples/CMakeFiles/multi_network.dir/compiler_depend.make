# Empty compiler generated dependencies file for multi_network.
# This may be replaced when dependencies are built.
