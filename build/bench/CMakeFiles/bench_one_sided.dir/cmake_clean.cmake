file(REMOVE_RECURSE
  "CMakeFiles/bench_one_sided.dir/bench_one_sided.cc.o"
  "CMakeFiles/bench_one_sided.dir/bench_one_sided.cc.o.d"
  "bench_one_sided"
  "bench_one_sided.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_one_sided.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
