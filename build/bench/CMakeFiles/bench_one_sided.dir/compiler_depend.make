# Empty compiler generated dependencies file for bench_one_sided.
# This may be replaced when dependencies are built.
