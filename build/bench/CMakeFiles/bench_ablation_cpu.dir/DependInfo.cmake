
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_cpu.cc" "bench/CMakeFiles/bench_ablation_cpu.dir/bench_ablation_cpu.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_cpu.dir/bench_ablation_cpu.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/oqs_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/mpich/CMakeFiles/oqs_mpich.dir/DependInfo.cmake"
  "/root/repo/build/src/tport/CMakeFiles/oqs_tport.dir/DependInfo.cmake"
  "/root/repo/build/src/ptl/CMakeFiles/oqs_ptl_elan4.dir/DependInfo.cmake"
  "/root/repo/build/src/ptl/CMakeFiles/oqs_ptl_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/pml/CMakeFiles/oqs_pml.dir/DependInfo.cmake"
  "/root/repo/build/src/dtype/CMakeFiles/oqs_dtype.dir/DependInfo.cmake"
  "/root/repo/build/src/rte/CMakeFiles/oqs_rte.dir/DependInfo.cmake"
  "/root/repo/build/src/elan4/CMakeFiles/oqs_elan4.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/oqs_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/oqs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/oqs_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
