# Empty dependencies file for bench_ablation_cpu.
# This may be replaced when dependencies are built.
