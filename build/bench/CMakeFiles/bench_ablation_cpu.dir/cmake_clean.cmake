file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cpu.dir/bench_ablation_cpu.cc.o"
  "CMakeFiles/bench_ablation_cpu.dir/bench_ablation_cpu.cc.o.d"
  "bench_ablation_cpu"
  "bench_ablation_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
