# Empty dependencies file for bench_dynamic_join.
# This may be replaced when dependencies are built.
