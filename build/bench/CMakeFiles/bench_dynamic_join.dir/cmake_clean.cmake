file(REMOVE_RECURSE
  "CMakeFiles/bench_dynamic_join.dir/bench_dynamic_join.cc.o"
  "CMakeFiles/bench_dynamic_join.dir/bench_dynamic_join.cc.o.d"
  "bench_dynamic_join"
  "bench_dynamic_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dynamic_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
