# Empty dependencies file for bench_hw_bcast.
# This may be replaced when dependencies are built.
