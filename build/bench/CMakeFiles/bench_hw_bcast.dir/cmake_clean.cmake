file(REMOVE_RECURSE
  "CMakeFiles/bench_hw_bcast.dir/bench_hw_bcast.cc.o"
  "CMakeFiles/bench_hw_bcast.dir/bench_hw_bcast.cc.o.d"
  "bench_hw_bcast"
  "bench_hw_bcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hw_bcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
