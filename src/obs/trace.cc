#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "base/log.h"

namespace oqs::obs {

namespace {

std::function<TimeNs()> g_clock;

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  return fnv1a(h, &v, sizeof(v));
}

std::uint64_t fnv1a_str(std::uint64_t h, const char* s) {
  if (s == nullptr) return fnv1a_u64(h, 0);
  std::size_t len = 0;
  while (s[len] != '\0') ++len;
  return fnv1a(h, s, len + 1);  // include the NUL as a separator
}

// Minimal JSON string escaping for event/layer names (all are identifiers
// today; keep the export safe if one ever grows a quote).
void write_escaped(std::ostream& os, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') os << '\\';
    os << *s;
  }
}

}  // namespace

void set_tracer(Tracer* t) { detail::g_tracer = t; }
void set_clock(std::function<TimeNs()> now_ns) { g_clock = std::move(now_ns); }
TimeNs now_ns() { return g_clock ? g_clock() : 0; }

void Tracer::fold(const TraceEvent& e) {
  std::uint64_t h = digest_;
  h = fnv1a_u64(h, e.ts);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(e.node));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(e.ph));
  h = fnv1a_u64(h, e.dur);
  h = fnv1a_str(h, e.layer);
  h = fnv1a_str(h, e.name);
  h = fnv1a_str(h, e.k0);
  h = fnv1a_u64(h, e.v0);
  h = fnv1a_str(h, e.k1);
  h = fnv1a_u64(h, e.v1);
  digest_ = h;
}

void Tracer::push(const TraceEvent& e) {
  fold(e);
  if (events_.size() >= store_limit_) {
    ++dropped_;
    return;
  }
  events_.push_back(e);
}

void Tracer::record(char ph, int node, const char* layer, const char* name,
                    const char* k0, std::uint64_t v0, const char* k1,
                    std::uint64_t v1) {
  TraceEvent e;
  e.ts = now_ns();
  e.node = node;
  e.ph = ph;
  e.layer = layer;
  e.name = name;
  e.k0 = k0;
  e.v0 = v0;
  e.k1 = k1;
  e.v1 = v1;
  push(e);
}

void Tracer::record_span(TimeNs begin, int node, const char* layer,
                         const char* name, const char* k0, std::uint64_t v0,
                         const char* k1, std::uint64_t v1) {
  TraceEvent e;
  e.ts = begin;
  e.dur = now_ns() - begin;
  e.node = node;
  e.ph = 'X';
  e.layer = layer;
  e.name = name;
  e.k0 = k0;
  e.v0 = v0;
  e.k1 = k1;
  e.v1 = v1;
  push(e);
}

std::size_t Tracer::count_layer(const char* layer) const {
  std::size_t n = 0;
  for (const TraceEvent& e : events_) {
    const char* a = e.layer;
    const char* b = layer;
    while (*a != '\0' && *a == *b) {
      ++a;
      ++b;
    }
    if (*a == '\0' && *b == '\0') ++n;
  }
  return n;
}

void Tracer::write_chrome_json(std::ostream& os) const {
  // Chrome trace format, JSON-array flavour: ts/dur are microseconds
  // (fractional allowed — we emit ns/1000 with three decimals so no
  // precision is lost), pid = simulated node, tid = layer name.
  os << "{\"traceEvents\":[\n";
  bool first = true;
  for (const TraceEvent& e : events_) {
    if (!first) os << ",\n";
    first = false;
    char ts[64];
    std::snprintf(ts, sizeof(ts), "%" PRIu64 ".%03u", e.ts / 1000,
                  static_cast<unsigned>(e.ts % 1000));
    os << "{\"name\":\"";
    write_escaped(os, e.name);
    os << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << ts;
    if (e.ph == 'X') {
      char dur[64];
      std::snprintf(dur, sizeof(dur), "%" PRIu64 ".%03u", e.dur / 1000,
                    static_cast<unsigned>(e.dur % 1000));
      os << ",\"dur\":" << dur;
    }
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":" << e.node << ",\"tid\":\"";
    write_escaped(os, e.layer);
    os << "\"";
    if (e.k0 != nullptr) {
      os << ",\"args\":{\"";
      write_escaped(os, e.k0);
      os << "\":" << e.v0;
      if (e.k1 != nullptr) {
        os << ",\"";
        write_escaped(os, e.k1);
        os << "\":" << e.v1;
      }
      os << "}";
    }
    os << "}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

bool Tracer::write_chrome_json_file(const std::string& path) const {
  std::ofstream f(path);
  if (!f) {
    log::error("obs", "cannot open trace file ", path);
    return false;
  }
  if (dropped_ > 0)
    log::warn("obs", "trace truncated: ", dropped_,
              " events past the store limit were digested but not exported");
  write_chrome_json(f);
  return f.good();
}

}  // namespace oqs::obs
