#include "obs/metrics.h"

#include <sstream>

namespace oqs::obs {

MetricRegistry& MetricRegistry::global() {
  static MetricRegistry* r = new MetricRegistry();  // never destroyed:
  return *r;  // instrumentation may run from static destructors
}

Counter& MetricRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricRegistry::histogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricRegistry::Snapshot MetricRegistry::snapshot() const {
  Snapshot s;
  for (const auto& [name, c] : counters_) s[name] = c->value();
  for (const auto& [name, g] : gauges_) {
    s[name] = static_cast<std::uint64_t>(g->value());
    s[name + ".hiwater"] = static_cast<std::uint64_t>(g->hiwater());
  }
  for (const auto& [name, h] : histograms_) {
    s[name + ".count"] = h->stats().count();
    s[name + ".mean"] = static_cast<std::uint64_t>(h->stats().mean());
    s[name + ".max"] = static_cast<std::uint64_t>(h->stats().max());
    s[name + ".p50"] = static_cast<std::uint64_t>(h->percentile(0.50));
    s[name + ".p95"] = static_cast<std::uint64_t>(h->percentile(0.95));
    s[name + ".p99"] = static_cast<std::uint64_t>(h->percentile(0.99));
  }
  return s;
}

MetricRegistry::Snapshot MetricRegistry::diff(const Snapshot& before,
                                              const Snapshot& after) {
  Snapshot d;
  for (const auto& [name, v] : after) {
    auto it = before.find(name);
    d[name] = v - (it == before.end() ? 0 : it->second);
  }
  return d;
}

void MetricRegistry::reset() {
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::string MetricRegistry::to_string() const {
  std::ostringstream os;
  for (const auto& [name, v] : snapshot()) os << name << " " << v << "\n";
  return os.str();
}

}  // namespace oqs::obs
