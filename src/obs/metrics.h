// Process-wide metric registry: named counters, gauges and histograms.
//
// Instrumented layers bump counters unconditionally (an integer add — cheap
// enough to stay on even in benches); tests snapshot the registry before and
// after a run and assert invariants on the diff, e.g.
//   elan4.rdma.tx_bytes == elan4.rdma.rx_bytes         (nothing lost)
//   pml.send.eager + pml.send.rendezvous == pml.send.total
//   elan4.qdma.queue_hiwater <= queue capacity
//
// Names are dot-separated <layer>.<object>.<what>; the full list lives in
// DESIGN.md §Observability. Counters are registered lazily and never
// removed, so references obtained once (e.g. via a function-local static at
// the call site) stay valid for the process lifetime; reset() zeroes values
// in place. Aggregation is machine-wide: all nodes of a testbed share one
// registry, which is what the conservation invariants want.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.h"

namespace oqs::obs {

class Counter {
 public:
  void add(std::uint64_t d = 1) { v_ += d; }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

// A level with a high-water mark (queue depths, outstanding ops).
class Gauge {
 public:
  void rise(std::int64_t d = 1) {
    v_ += d;
    if (v_ > hiwater_) hiwater_ = v_;
  }
  void fall(std::int64_t d = 1) { v_ -= d; }
  void set(std::int64_t v) {
    v_ = v;
    if (v_ > hiwater_) hiwater_ = v_;
  }
  std::int64_t value() const { return v_; }
  std::int64_t hiwater() const { return hiwater_; }
  void reset() { v_ = hiwater_ = 0; }

 private:
  std::int64_t v_ = 0;
  std::int64_t hiwater_ = 0;
};

// Keeps running moments AND the full sample set: workload tail-latency
// reporting needs real quantiles, and histogram call sites are per-op (not
// per-packet), so retaining samples is cheap relative to the simulation
// state behind them.
class Histogram {
 public:
  void add(double x) {
    acc_.add(x);
    samples_.add(x);
  }
  const sim::Accumulator& stats() const { return acc_; }
  // Quantile of the recorded samples, p in [0,1]; 0.0 when empty.
  double percentile(double p) const { return samples_.percentile(p); }
  const sim::Samples& samples() const { return samples_; }
  void reset() {
    acc_.reset();
    samples_ = sim::Samples{};
  }

 private:
  sim::Accumulator acc_;
  sim::Samples samples_;
};

class MetricRegistry {
 public:
  // The process-wide instance used by all instrumentation.
  static MetricRegistry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // Flat name -> value view. Gauges export "<name>" (level) and
  // "<name>.hiwater"; histograms export ".count", ".mean", ".max" and the
  // quantiles ".p50", ".p95", ".p99" (values truncated to integers).
  using Snapshot = std::map<std::string, std::uint64_t>;
  Snapshot snapshot() const;
  // Per-name difference `after - before` (names absent from `before` count
  // from zero; monotonic counters make this the per-run delta).
  static Snapshot diff(const Snapshot& before, const Snapshot& after);

  // Zero every value; registered names (and handed-out references) survive.
  void reset();

  // Human-readable dump, one "name value" line each, sorted by name.
  std::string to_string() const;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

inline MetricRegistry& metrics() { return MetricRegistry::global(); }

}  // namespace oqs::obs

// Counter bump with one-time name lookup: the static reference resolves on
// first execution, after which the hot path is a single add.
#define OQS_METRIC_ADD(name, delta)                                     \
  do {                                                                  \
    static ::oqs::obs::Counter& oqs_ctr_ =                              \
        ::oqs::obs::metrics().counter(name);                            \
    oqs_ctr_.add(delta);                                                \
  } while (0)
#define OQS_METRIC_INC(name) OQS_METRIC_ADD(name, 1)
