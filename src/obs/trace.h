// Structured tracing for the simulated stack.
//
// A Tracer records an ordered stream of events {sim_time, node, layer, name,
// args} from instrumentation macros threaded through every layer. Two
// consumers exist:
//   1. Humans: write_chrome_json() emits Chrome trace format (load the file
//      in Perfetto / chrome://tracing; pid = node, tid = layer).
//   2. Tests: digest() folds the ordered stream into a 64-bit FNV-1a hash —
//      the replay fingerprint. Two runs of the DES with the same seed must
//      produce the same digest; tests/sim/replay_test.cc enforces it.
//
// Cost model: with no tracer installed the macros are one relaxed load and a
// predictable branch; configuring with -DOQS_TRACE=OFF compiles them to
// nothing. Recording never consumes simulated time, so enabling a trace can
// never change a bench's reported numbers — only wall clock.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

namespace oqs::obs {

using TimeNs = std::uint64_t;

struct TraceEvent {
  TimeNs ts = 0;        // simulated ns
  std::int32_t node = -1;  // chrome pid; -1 = machine-wide
  char ph = 'i';        // 'i' instant, 'X' complete (dur valid)
  TimeNs dur = 0;       // for 'X'
  const char* layer = "";  // chrome tid ("sim", "elan4", "ptl", "pml", ...)
  const char* name = "";
  // Up to two numeric arguments; nullptr key = absent. Only deterministic
  // values (sizes, ids, seqs) belong here — never host pointers.
  const char* k0 = nullptr;
  std::uint64_t v0 = 0;
  const char* k1 = nullptr;
  std::uint64_t v1 = 0;
};

class Tracer {
 public:
  Tracer() = default;

  void record(char ph, int node, const char* layer, const char* name,
              const char* k0 = nullptr, std::uint64_t v0 = 0,
              const char* k1 = nullptr, std::uint64_t v1 = 0);
  void record_span(TimeNs begin, int node, const char* layer, const char* name,
                   const char* k0 = nullptr, std::uint64_t v0 = 0,
                   const char* k1 = nullptr, std::uint64_t v1 = 0);

  std::size_t size() const { return events_.size(); }
  const std::vector<TraceEvent>& events() const { return events_; }

  // Storage cap: every event past the limit is still folded into the digest
  // (so determinism checks always cover the full run) but not retained for
  // export. dropped() says how many; the JSON writer logs it too — a trace
  // that was cut short must never read as complete.
  void set_store_limit(std::size_t n) { store_limit_ = n; }
  std::size_t dropped() const { return dropped_; }

  // Order-sensitive 64-bit FNV-1a over the full stream (incrementally
  // maintained, so reading it is free).
  std::uint64_t digest() const { return digest_; }

  // Number of recorded events whose layer string equals `layer`.
  std::size_t count_layer(const char* layer) const;

  void write_chrome_json(std::ostream& os) const;
  // Returns false (and logs) if the file cannot be written.
  bool write_chrome_json_file(const std::string& path) const;

 private:
  void fold(const TraceEvent& e);
  void push(const TraceEvent& e);

  std::vector<TraceEvent> events_;
  std::size_t store_limit_ = 1u << 20;
  std::size_t dropped_ = 0;
  std::uint64_t digest_ = 14695981039346656037ull;  // FNV offset basis
};

// --- global installation -------------------------------------------------
// The simulation is single-threaded, so a plain global suffices. The engine
// installs the clock (like log::set_clock); benches/tests install a Tracer
// for the duration of a run. tracer() sits on the event-dispatch hot path —
// an inline variable keeps the not-tracing case to one load and a
// never-taken branch instead of a cross-TU call.
namespace detail {
inline Tracer* g_tracer = nullptr;
}
inline Tracer* tracer() { return detail::g_tracer; }
void set_tracer(Tracer* t);
void set_clock(std::function<TimeNs()> now_ns);
TimeNs now_ns();

// RAII span: emits one 'X' event covering its scope. Safe across fiber
// blocking points (sim time may advance inside the scope).
class Span {
 public:
  Span(int node, const char* layer, const char* name,
       const char* k0 = nullptr, std::uint64_t v0 = 0)
      : active_(tracer() != nullptr),
        begin_(active_ ? now_ns() : 0),
        node_(node), layer_(layer), name_(name), k0_(k0), v0_(v0) {}
  ~Span() {
    if (Tracer* t = active_ ? tracer() : nullptr)
      t->record_span(begin_, node_, layer_, name_, k0_, v0_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  bool active_;
  TimeNs begin_;
  int node_;
  const char* layer_;
  const char* name_;
  const char* k0_;
  std::uint64_t v0_;
};

}  // namespace oqs::obs

// --- instrumentation macros ----------------------------------------------
// OQS_TRACE_DISABLED is defined by the build system when -DOQS_TRACE=OFF.
#if defined(OQS_TRACE_DISABLED)
#define OQS_TRACE_INSTANT(node, layer, name, ...) ((void)0)
#define OQS_TRACE_SPAN(var, node, layer, ...) ((void)0)
#define OQS_TRACE_SPAN_FROM(begin, node, layer, name, ...) ((void)0)
#define OQS_TRACE_NOW() (::oqs::obs::TimeNs{0})
#else
#define OQS_TRACE_INSTANT(node, layer, name, ...)                         \
  do {                                                                    \
    if (::oqs::obs::Tracer* oqs_tr_ = ::oqs::obs::tracer())               \
      oqs_tr_->record('i', (node), (layer), (name), ##__VA_ARGS__);       \
  } while (0)
#define OQS_TRACE_SPAN(var, node, layer, ...) \
  ::oqs::obs::Span var((node), (layer), ##__VA_ARGS__)
// Span whose begin timestamp was captured earlier (e.g. command post time,
// with the matching end inside a completion callback).
#define OQS_TRACE_SPAN_FROM(begin, node, layer, name, ...)                 \
  do {                                                                     \
    if (::oqs::obs::Tracer* oqs_tr_ = ::oqs::obs::tracer())                \
      oqs_tr_->record_span((begin), (node), (layer), (name), ##__VA_ARGS__); \
  } while (0)
#define OQS_TRACE_NOW() (::oqs::obs::now_ns())
#endif
