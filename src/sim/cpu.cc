#include "sim/cpu.h"

#include <cassert>

namespace oqs::sim {

int Cpu::find_free() const {
  for (std::size_t i = 0; i < cores_.size(); ++i)
    if (!cores_[i].busy) return static_cast<int>(i);
  return -1;
}

void Cpu::compute(Time dur) {
  Fiber* self = engine_.current();
  assert(self != nullptr && "compute() outside a fiber");

  int core = find_free();
  if (core < 0) {
    // All cores busy: queue FIFO and wait for a releasing fiber to hand one
    // over. The releaser keeps the core marked busy on our behalf before
    // unparking us, so there is no lost-grant race with other same-instant
    // wakeups.
    Waiter w{self, -1};
    wait_queue_.push_back(&w);
    engine_.park();
    core = w.granted_core;
    assert(core >= 0 && cores_[core].busy);
  } else {
    cores_[core].busy = true;
  }

  // Other busy cores contend for the shared memory bus.
  unsigned others = 0;
  for (std::size_t i = 0; i < cores_.size(); ++i)
    if (static_cast<int>(i) != core && cores_[i].busy) ++others;
  Time cost = dur + static_cast<Time>(static_cast<double>(dur) *
                                      memory_contention_ * others);
  if (cores_[core].last != nullptr && cores_[core].last != self) {
    cost += ctx_switch_ns_;
    ++switches_;
  }
  cores_[core].last = self;
  busy_ns_ += cost;
  if (cost > 0) engine_.sleep(cost);

  // Release: hand the core directly to the oldest waiter, if any.
  if (!wait_queue_.empty()) {
    Waiter* next = wait_queue_.front();
    wait_queue_.pop_front();
    next->granted_core = core;  // core stays busy; consumed on wakeup
    engine_.unpark(next->fiber);
  } else {
    cores_[core].busy = false;
  }
}

}  // namespace oqs::sim
