// ucontext-based cooperative fibers.
//
// Every simulated thread of control — an MPI process, a progress thread, a
// spawned dynamic process — is a Fiber. Fibers run on the single host thread
// and switch only at explicit blocking points, so the simulation stays
// deterministic. Stacks come from the engine's pool: reaped fibers return
// theirs for reuse, and the low (overflow-target, stacks grow down) bytes
// carry a canary pattern the engine checks before recycling.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace oqs::sim {

class Engine;

// Bytes at the bottom of every stack reserved for the overflow canary; the
// usable stack handed to makecontext() starts above them.
inline constexpr std::size_t kStackCanaryBytes = 64;

class Fiber {
 public:
  enum class State { kReady, kRunning, kBlocked, kDone };

  Fiber(Engine& engine, std::string name, std::function<void()> body);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  const std::string& name() const { return name_; }
  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }

  // Base of the stack allocation (the canary region). Exposed so tests can
  // exercise the overflow detection without a real 256 KiB-deep recursion.
  char* stack_base_for_test() { return stack_.get(); }

 private:
  friend class Engine;
  static void trampoline();
  // Runs the fiber until it blocks or finishes; called from the engine loop.
  void enter(ucontext_t* from);
  // Called from inside the fiber: save state, return to the engine.
  void leave(State new_state);

  Engine& engine_;
  std::string name_;
  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  ucontext_t ctx_{};
  ucontext_t* return_ctx_ = nullptr;
  State state_ = State::kReady;
  bool started_ = false;
};

}  // namespace oqs::sim
