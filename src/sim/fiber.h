// ucontext-based cooperative fibers.
//
// Every simulated thread of control — an MPI process, a progress thread, a
// spawned dynamic process — is a Fiber. Fibers run on the single host thread
// and switch only at explicit blocking points, so the simulation stays
// deterministic.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <functional>
#include <memory>
#include <string>

namespace oqs::sim {

class Engine;

class Fiber {
 public:
  enum class State { kReady, kRunning, kBlocked, kDone };

  Fiber(Engine& engine, std::string name, std::function<void()> body,
        std::size_t stack_bytes = 256 * 1024);
  ~Fiber();
  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  const std::string& name() const { return name_; }
  State state() const { return state_; }
  bool done() const { return state_ == State::kDone; }

 private:
  friend class Engine;
  static void trampoline();
  // Runs the fiber until it blocks or finishes; called from the engine loop.
  void enter(ucontext_t* from);
  // Called from inside the fiber: save state, return to the engine.
  void leave(State new_state);

  Engine& engine_;
  std::string name_;
  std::function<void()> body_;
  std::unique_ptr<char[]> stack_;
  ucontext_t ctx_{};
  ucontext_t* return_ctx_ = nullptr;
  State state_ = State::kReady;
  bool started_ = false;
};

}  // namespace oqs::sim
