// Deterministic RNG for workload generation and failure injection.
//
// The simulation itself never consumes randomness (determinism comes from
// FIFO event ordering); randomness is only for generating payloads,
// datatypes and fault schedules in tests/benches, always from a caller-
// provided seed.
#pragma once

#include <cstdint>
#include <random>

namespace oqs::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  std::uint64_t next_u64() { return gen_(); }

  // Uniform in [lo, hi] inclusive.
  std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    return std::uniform_int_distribution<std::uint64_t>(lo, hi)(gen_);
  }

  double uniform_real() { return std::uniform_real_distribution<double>(0.0, 1.0)(gen_); }

  bool chance(double p) { return uniform_real() < p; }

  // Fill a buffer with reproducible bytes.
  void fill(void* buf, std::size_t len) {
    auto* p = static_cast<std::uint8_t*>(buf);
    for (std::size_t i = 0; i < len; ++i) p[i] = static_cast<std::uint8_t>(gen_());
  }

 private:
  std::mt19937_64 gen_;
};

}  // namespace oqs::sim
