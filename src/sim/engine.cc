#include "sim/engine.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oqs::sim {

namespace {
constexpr std::size_t kDefaultStackBytes = 256 * 1024;
constexpr std::size_t kMinStackBytes = 64 * 1024;
constexpr char kCanaryByte = 0x5C;

std::size_t initial_stack_bytes() {
  const char* v = std::getenv("OQS_SIM_STACK_BYTES");
  if (v == nullptr || v[0] == '\0') return kDefaultStackBytes;
  const long long n = std::atoll(v);
  if (n < static_cast<long long>(kMinStackBytes)) return kMinStackBytes;
  return static_cast<std::size_t>(n);
}
}  // namespace

Engine::Engine() : stack_bytes_(initial_stack_bytes()) {
  log::set_clock([this] { return now_; });
  obs::set_clock([this] { return now_; });
}

Engine::~Engine() {
  log::set_clock(nullptr);
  obs::set_clock(nullptr);
}

void Engine::set_stack_bytes(std::size_t bytes) {
  if (bytes < kMinStackBytes) bytes = kMinStackBytes;
  if (bytes != stack_bytes_) stack_pool_.clear();  // pooled stacks are sized
  stack_bytes_ = bytes;
}

void Engine::arm_canary(char* base) {
  std::memset(base, kCanaryByte, kStackCanaryBytes);
}

bool Engine::canary_ok(const char* base) {
  for (std::size_t i = 0; i < kStackCanaryBytes; ++i)
    if (base[i] != kCanaryByte) return false;
  return true;
}

std::unique_ptr<char[]> Engine::acquire_stack() {
  if (!stack_pool_.empty()) {
    std::unique_ptr<char[]> s = std::move(stack_pool_.back());
    stack_pool_.pop_back();
    return s;  // canary still armed from release_stack()
  }
  ++stacks_allocated_;
  auto s = std::make_unique<char[]>(stack_bytes_);
  arm_canary(s.get());
  return s;
}

void Engine::release_stack(std::unique_ptr<char[]> stack, std::size_t bytes) {
  if (stack == nullptr) return;
  if (!canary_ok(stack.get())) {
    ++canary_violations_;
    OQS_METRIC_INC("sim.fiber.stack_overflows");
    log::error("sim", "fiber stack canary destroyed (stack overflow?); "
               "dropping the stack — raise OQS_SIM_STACK_BYTES");
    return;  // do not recycle a stack something wrote past
  }
  if (bytes == stack_bytes_) stack_pool_.push_back(std::move(stack));
}

Fiber* Engine::spawn(std::string name, std::function<void()> body) {
  fibers_.push_back(std::make_unique<Fiber>(*this, std::move(name), std::move(body)));
  Fiber* f = fibers_.back().get();
  OQS_METRIC_INC("sim.fiber.spawned");
  OQS_TRACE_INSTANT(-1, "sim", "fiber.spawn", "live", fibers_.size());
  queue_.push(now_, [this, f] { resume(f); });
  return f;
}

void Engine::park() {
  assert(current_ != nullptr && "park() outside a fiber");
  OQS_METRIC_INC("sim.fiber.park");
  OQS_TRACE_INSTANT(-1, "sim", "fiber.park");
  current_->leave(Fiber::State::kBlocked);
}

void Engine::sleep(Time dur) {
  assert(current_ != nullptr && "sleep() outside a fiber");
  Fiber* f = current_;
  queue_.push(now_ + dur, [this, f] { resume(f); });
  park();
}

void Engine::unpark(Fiber* f, Time delay) {
  assert(f != nullptr);
  OQS_METRIC_INC("sim.fiber.unpark");
  OQS_TRACE_INSTANT(-1, "sim", "fiber.unpark", "delay", delay);
  queue_.push(now_ + delay, [this, f] { resume(f); });
}

void Engine::resume(Fiber* f) {
  if (f->done()) return;  // fiber exited before a queued wakeup fired
  if (f->state() != Fiber::State::kBlocked && f->state() != Fiber::State::kReady) {
    log::error("sim", "resume of fiber '", f->name(), "' in bad state");
    return;
  }
  if (f->state() == Fiber::State::kBlocked) f->state_ = Fiber::State::kReady;
  Fiber* prev = current_;
  current_ = f;
  f->enter(prev == nullptr ? &loop_ctx_ : &prev->ctx_);
  current_ = prev;
}

void Engine::dispatch_one() {
  EventQueue::Event* ev = queue_.pop(&now_);
  ++events_executed_;
  // Hot path: with OQS_TRACE=OFF this compiles away; with it ON but no
  // tracer installed it is one load and a never-taken branch. Every
  // dispatched event enters the digest, so the replay fingerprint covers
  // the DES's complete execution order, not just protocol milestones.
  OQS_TRACE_INSTANT(-1, "sim", "dispatch", "n", events_executed_);
  EventQueue::run(ev);
  queue_.recycle(ev);
}

Time Engine::run() {
  running_ = true;
  stopped_ = false;
  reap();  // a deferred reap from a nested run resolves at top-level entry
  while (!queue_.empty() && !stopped_) {
    dispatch_one();
    if (reap_pending_ || (events_executed_ & 0xffff) == 0) reap();
  }
  running_ = false;
  reap();
  return now_;
}

Time Engine::run_until(Time deadline) {
  running_ = true;
  stopped_ = false;
  reap();
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    dispatch_one();
    if (reap_pending_ || (events_executed_ & 0xffff) == 0) reap();
  }
  running_ = false;
  if (now_ < deadline) now_ = deadline;
  reap();
  return now_;
}

std::size_t Engine::live_fibers() const {
  return static_cast<std::size_t>(
      std::count_if(fibers_.begin(), fibers_.end(),
                    [](const auto& f) { return !f->done(); }));
}

void Engine::reap() {
  // Finished fibers are destroyed only from the engine loop (never from
  // inside another fiber) so no live stack is freed under its own feet. A
  // request arriving while a fiber is current — run_until() driven from
  // fiber context ends this way — is deferred, not dropped.
  if (current_ != nullptr) {
    reap_pending_ = true;
    return;
  }
  reap_pending_ = false;
  std::erase_if(fibers_, [](const auto& f) { return f->done(); });
}

}  // namespace oqs::sim
