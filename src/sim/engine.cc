#include "sim/engine.h"

#include <algorithm>

#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oqs::sim {

Engine::Engine() {
  log::set_clock([this] { return now_; });
  obs::set_clock([this] { return now_; });
}

Engine::~Engine() {
  log::set_clock(nullptr);
  obs::set_clock(nullptr);
}

Fiber* Engine::spawn(std::string name, std::function<void()> body) {
  fibers_.push_back(std::make_unique<Fiber>(*this, std::move(name), std::move(body)));
  Fiber* f = fibers_.back().get();
  OQS_METRIC_INC("sim.fiber.spawned");
  OQS_TRACE_INSTANT(-1, "sim", "fiber.spawn", "live", fibers_.size());
  queue_.push(now_, [this, f] { resume(f); });
  return f;
}

void Engine::park() {
  assert(current_ != nullptr && "park() outside a fiber");
  OQS_METRIC_INC("sim.fiber.park");
  OQS_TRACE_INSTANT(-1, "sim", "fiber.park");
  current_->leave(Fiber::State::kBlocked);
}

void Engine::sleep(Time dur) {
  assert(current_ != nullptr && "sleep() outside a fiber");
  Fiber* f = current_;
  queue_.push(now_ + dur, [this, f] { resume(f); });
  park();
}

void Engine::unpark(Fiber* f, Time delay) {
  assert(f != nullptr);
  OQS_METRIC_INC("sim.fiber.unpark");
  OQS_TRACE_INSTANT(-1, "sim", "fiber.unpark", "delay", delay);
  queue_.push(now_ + delay, [this, f] { resume(f); });
}

void Engine::resume(Fiber* f) {
  if (f->done()) return;  // fiber exited before a queued wakeup fired
  if (f->state() != Fiber::State::kBlocked && f->state() != Fiber::State::kReady) {
    log::error("sim", "resume of fiber '", f->name(), "' in bad state");
    return;
  }
  if (f->state() == Fiber::State::kBlocked) f->state_ = Fiber::State::kReady;
  Fiber* prev = current_;
  current_ = f;
  f->enter(prev == nullptr ? &loop_ctx_ : &prev->ctx_);
  current_ = prev;
}

void Engine::dispatch_one(Time when) {
  EventQueue::Callback cb = queue_.pop(&now_);
  (void)when;
  ++events_executed_;
  // Hot path: with OQS_TRACE=OFF this compiles away; with it ON but no
  // tracer installed it is one load and a never-taken branch. Every
  // dispatched event enters the digest, so the replay fingerprint covers
  // the DES's complete execution order, not just protocol milestones.
  OQS_TRACE_INSTANT(-1, "sim", "dispatch", "n", events_executed_);
  cb();
}

Time Engine::run() {
  running_ = true;
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    dispatch_one(queue_.next_time());
    if ((events_executed_ & 0xffff) == 0) reap();
  }
  running_ = false;
  reap();
  return now_;
}

Time Engine::run_until(Time deadline) {
  running_ = true;
  stopped_ = false;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= deadline) {
    dispatch_one(queue_.next_time());
    if ((events_executed_ & 0xffff) == 0) reap();
  }
  running_ = false;
  if (now_ < deadline) now_ = deadline;
  reap();
  return now_;
}

std::size_t Engine::live_fibers() const {
  return static_cast<std::size_t>(
      std::count_if(fibers_.begin(), fibers_.end(),
                    [](const auto& f) { return !f->done(); }));
}

void Engine::reap() {
  // Finished fibers are destroyed only from the engine loop (never from
  // inside another fiber) so no live stack is freed under its own feet.
  if (current_ != nullptr) return;
  std::erase_if(fibers_, [](const auto& f) { return f->done(); });
}

}  // namespace oqs::sim
