#include "sim/fiber.h"

#include <cassert>
#include <utility>

#include "base/log.h"
#include "sim/engine.h"

namespace oqs::sim {

namespace {
// makecontext() cannot portably pass a pointer, so the fiber being started
// is staged here. Safe: the simulation is single-threaded and the value is
// consumed before control can reach another start.
Fiber* g_starting = nullptr;
}  // namespace

Fiber::Fiber(Engine& engine, std::string name, std::function<void()> body)
    : engine_(engine),
      name_(std::move(name)),
      body_(std::move(body)),
      stack_(engine.acquire_stack()),
      stack_bytes_(engine.stack_bytes()) {
  getcontext(&ctx_);
  // The canary region sits below the usable stack, so a deep enough
  // overflow scribbles over it before leaving the allocation.
  ctx_.uc_stack.ss_sp = stack_.get() + kStackCanaryBytes;
  ctx_.uc_stack.ss_size = stack_bytes_ - kStackCanaryBytes;
  ctx_.uc_link = nullptr;  // finished fibers swap back explicitly
  makecontext(&ctx_, &Fiber::trampoline, 0);
}

Fiber::~Fiber() {
  engine_.release_stack(std::move(stack_), stack_bytes_);
}

void Fiber::trampoline() {
  Fiber* self = g_starting;
  g_starting = nullptr;
  self->started_ = true;
  self->body_();
  self->body_ = nullptr;  // release captured state promptly
  self->leave(State::kDone);
  assert(false && "resumed a finished fiber");
}

void Fiber::enter(ucontext_t* from) {
  assert(state_ == State::kReady);
  state_ = State::kRunning;
  return_ctx_ = from;
  if (!started_) g_starting = this;
  swapcontext(from, &ctx_);
}

void Fiber::leave(State new_state) {
  assert(state_ == State::kRunning);
  state_ = new_state;
  ucontext_t* back = return_ctx_;
  return_ctx_ = nullptr;
  swapcontext(&ctx_, back);
}

}  // namespace oqs::sim
