// Time-ordered event queue with FIFO tie-breaking.
//
// Events scheduled for the same instant execute in scheduling order, which
// makes the whole simulation deterministic.
//
// Structure: a calendar queue (R. Brown, CACM '88) over intrusive,
// pool-allocated event nodes. The near future — `epoch_` plus
// `num_buckets * width` ns — lives in an array of per-bucket sorted lists,
// so the hot schedule/dispatch cycle is O(1) amortized with no per-event
// heap allocation: callables small enough for the node's inline storage
// (almost everything the simulator schedules) are constructed in place, and
// dispatched nodes go back on a free list. Events beyond the near horizon
// (retransmission timers, OOB waits) overflow into a pooled binary heap and
// migrate into the calendar when the horizon reaches them, so a long quiet
// gap costs one heap pop, not a scan. Bucket width halves when intra-bucket
// insertion walks get long and doubles when migrations arrive in dribbles;
// both decisions depend only on the push/pop sequence, so a given workload
// always sees the identical structure — and the (when, seq) dispatch order
// is invariant under all of it, which is what keeps same-seed replay
// digests bit-identical to the old binary-heap kernel.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/time.h"

namespace oqs::sim {

class EventQueue {
 public:
  static constexpr std::size_t kInlineBytes = 80;

  // One pooled event node. The callable lives in `storage` (or, past
  // kInlineBytes, in one heap holder referenced from it); `invoke` runs and
  // destroys it, `destroy` only destroys (queue teardown with events still
  // pending). `next` chains bucket lists and the node free list.
  struct Event {
    Time when;
    std::uint64_t seq;
    Event* next;
    void (*invoke)(Event*);
    void (*destroy)(Event*);
    alignas(std::max_align_t) unsigned char storage[kInlineBytes];
  };
  // Two cache lines per node: header + room for a ten-pointer capture. The
  // node size is what the dispatch loop streams through, so keep it tight;
  // rarer, larger callables take the heap-holder path in push().
  static_assert(sizeof(Event) == 128);

  EventQueue() { buckets_.resize(kInitialBuckets); }
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  ~EventQueue() {
    for (Bucket& b : buckets_)
      for (Event* e = b.head; e != nullptr; e = e->next) e->destroy(e);
    for (Event* e : far_) e->destroy(e);
    // Slab memory is released wholesale by the vector of unique_ptrs.
  }

  template <typename F>
  void push(Time when, F&& fn) {
    using Fn = std::decay_t<F>;
    Event* e = alloc();
    e->when = when;
    e->seq = seq_++;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(e->storage)) Fn(std::forward<F>(fn));
      e->invoke = [](Event* ev) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(ev->storage));
        (*f)();
        f->~Fn();
      };
      e->destroy = [](Event* ev) {
        std::launder(reinterpret_cast<Fn*>(ev->storage))->~Fn();
      };
    } else {
      // Oversized callable: one heap holder, pointer parked inline.
      Fn* f = new Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(e->storage)) Fn*(f);
      e->invoke = [](Event* ev) {
        Fn* h = *std::launder(reinterpret_cast<Fn**>(ev->storage));
        (*h)();
        delete h;
      };
      e->destroy = [](Event* ev) {
        delete *std::launder(reinterpret_cast<Fn**>(ev->storage));
      };
    }
    insert(e);
  }

  bool empty() const { return near_size_ == 0 && far_.empty(); }
  std::size_t size() const { return near_size_ + far_.size(); }

  // Earliest pending timestamp. The scan position only ever moves forward
  // to the first occupied bucket, so caching it keeps the following pop at
  // O(1); pushes of earlier events move it back.
  Time next_time() const {
    assert(!empty());
    if (near_size_ == 0) return far_.front()->when;
    while (buckets_[cur_].head == nullptr) ++cur_;
    return buckets_[cur_].head->when;
  }

  // Dequeue the earliest event (FIFO among equal timestamps) and report its
  // time. The caller runs it with run() and returns the node via recycle();
  // owning the nodes outright is what removes the old const_cast move-out
  // from the std::priority_queue era.
  Event* pop(Time* when) {
    assert(!empty());
    if (near_size_ == 0) replenish();
    while (buckets_[cur_].head == nullptr) ++cur_;
    Bucket& b = buckets_[cur_];
    Event* e = b.head;
    b.head = e->next;
    if (b.head == nullptr) b.tail = nullptr;
    --near_size_;
    *when = e->when;
    return e;
  }

  // Execute the callable (it is destroyed before this returns).
  static void run(Event* e) { e->invoke(e); }

  // Return a dispatched node to the pool.
  void recycle(Event* e) {
    e->next = free_;
    free_ = e;
  }

  // Structure introspection (tests and DESIGN.md numbers).
  std::size_t num_buckets() const { return buckets_.size(); }
  Time bucket_width() const { return Time{1} << width_shift_; }
  std::size_t far_size() const { return far_.size(); }

 private:
  struct Bucket {
    Event* head = nullptr;
    Event* tail = nullptr;
  };

  static constexpr std::size_t kInitialBuckets = 256;
  static constexpr std::size_t kMaxBuckets = 65536;
  static constexpr int kInitialWidthShift = 6;  // 64 ns buckets
  static constexpr int kMaxWidthShift = 40;     // ~18 min of simulated time
  static constexpr std::size_t kSlabEvents = 512;
  static constexpr std::size_t kNodeBytes = sizeof(Event);

  static bool earlier(const Event* a, const Event* b) {
    return a->when != b->when ? a->when < b->when : a->seq < b->seq;
  }

  Event* alloc() {
    if (free_ == nullptr) carve_slab();
    Event* e = free_;
    free_ = e->next;
    return e;
  }

  void carve_slab() {
    // for_overwrite: a 64 KiB memset of memory placement-new is about to
    // claim anyway would be pure waste on the hot alloc path.
    slabs_.push_back(
        std::make_unique_for_overwrite<unsigned char[]>(kSlabEvents * kNodeBytes));
    unsigned char* base = slabs_.back().get();
    for (std::size_t i = 0; i < kSlabEvents; ++i) {
      Event* e = ::new (static_cast<void*>(base + i * kNodeBytes)) Event;
      e->next = free_;
      free_ = e;
    }
  }

  Time span() const {
    return static_cast<Time>(buckets_.size()) << width_shift_;
  }

  // Bucket widths are powers of two so the per-push time-to-bucket mapping
  // is a subtract and a shift, not a 64-bit division.
  std::size_t index_of(Time when) const {
    if (when <= epoch_) return 0;
    const std::uint64_t idx =
        static_cast<std::uint64_t>(when - epoch_) >> width_shift_;
    return idx < buckets_.size() ? static_cast<std::size_t>(idx)
                                 : buckets_.size();  // sentinel: beyond horizon
  }

  void insert(Event* e) {
    const std::size_t idx = index_of(e->when);
    if (idx == buckets_.size()) {
      far_push(e);
      return;
    }
    insert_near(e, idx);
    maybe_adapt();
  }

  void insert_near(Event* e, std::size_t idx) {
    if (idx < cur_) cur_ = idx;
    ++near_size_;
    ++near_pushes_;
    Bucket& b = buckets_[idx];
    if (b.head == nullptr) {
      e->next = nullptr;
      b.head = b.tail = e;
      return;
    }
    // Monotone pushes (same-instant FIFO bursts, steadily advancing time)
    // append at the tail in O(1); only out-of-order pushes walk.
    if (!earlier(e, b.tail)) {
      e->next = nullptr;
      b.tail->next = e;
      b.tail = e;
      return;
    }
    if (earlier(e, b.head)) {
      e->next = b.head;
      b.head = e;
      return;
    }
    Event* p = b.head;
    while (p->next != nullptr && !earlier(e, p->next)) {
      p = p->next;
      ++walk_steps_;
    }
    e->next = p->next;
    p->next = e;
  }

  // ---- far tier: pooled binary min-heap on (when, seq) ----

  void far_push(Event* e) {
    far_.push_back(e);
    std::size_t i = far_.size() - 1;
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!earlier(far_[i], far_[parent])) break;
      std::swap(far_[i], far_[parent]);
      i = parent;
    }
  }

  Event* far_pop() {
    Event* top = far_.front();
    far_.front() = far_.back();
    far_.pop_back();
    std::size_t i = 0;
    const std::size_t n = far_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && earlier(far_[l], far_[best])) best = l;
      if (r < n && earlier(far_[r], far_[best])) best = r;
      if (best == i) break;
      std::swap(far_[i], far_[best]);
      i = best;
    }
    return top;
  }

  // The calendar drained: jump the horizon to the next far event and pull
  // everything inside the new window across. If the last window caught only
  // a dribble while the heap stayed deep, the width is too fine for the
  // current event spacing — double it first.
  void replenish() {
    assert(!far_.empty());
    if (last_migration_ < 8 && far_.size() > 64 && width_shift_ < kMaxWidthShift)
      ++width_shift_;
    epoch_ = far_.front()->when;
    cur_ = 0;
    const Time bound = epoch_ + span();
    std::size_t moved = 0;
    while (!far_.empty() && far_.front()->when < bound) {
      Event* e = far_pop();
      insert_near(e, index_of(e->when));
      ++moved;
    }
    last_migration_ = moved;
  }

  // Periodic density check. Deep buckets are only a problem when they force
  // insertion walks — a million same-instant events tail-append and
  // head-pop in O(1) no matter how deep the bucket — so the trigger is the
  // walk-to-push ratio over a window, not the raw population. Both the
  // trigger and the new geometry depend only on the queue's contents, so a
  // given push/pop sequence always produces the identical structure.
  void maybe_adapt() {
    if (near_pushes_ < kAdaptWindow) return;
    if (walk_steps_ > near_pushes_) rebuild();
    near_pushes_ = 0;
    walk_steps_ = 0;
  }

  static constexpr std::uint64_t kAdaptWindow = 1024;

  // Resize the calendar to fit what it currently holds (Brown's calendar
  // queue sizes from sampled inter-event gaps; the sorted bucket lists give
  // us the exact min/max for free). Width tracks the mean gap so a bucket
  // holds only a few distinct timestamps; the bucket count tracks the event
  // population so buckets stay shallow.
  void rebuild() {
    // Concatenating the bucket lists in order yields all near events in
    // global (when, seq) order, so re-insertion is pure tail-appends.
    Event* head = nullptr;
    Event** tail = &head;
    Time max_when = epoch_;
    for (Bucket& b : buckets_) {
      if (b.head == nullptr) continue;
      *tail = b.head;
      tail = &b.tail->next;
      max_when = b.tail->when;
      b.head = b.tail = nullptr;
    }
    *tail = nullptr;
    if (head != nullptr) {
      epoch_ = head->when;  // re-anchor: bucket 0 starts at the earliest event
      const Time gap = (max_when - epoch_) / static_cast<Time>(near_size_);
      width_shift_ = 0;
      while ((Time{1} << width_shift_) <= gap && width_shift_ < kMaxWidthShift)
        ++width_shift_;
      std::size_t want = kInitialBuckets;
      while (want < near_size_ && want < kMaxBuckets) want *= 2;
      buckets_.assign(want, Bucket{});
    } else {
      buckets_.assign(buckets_.size(), Bucket{});
    }
    near_size_ = 0;
    cur_ = 0;
    while (head != nullptr) {
      Event* e = head;
      head = head->next;
      const std::size_t idx = index_of(e->when);
      if (idx == buckets_.size())
        far_push(e);
      else
        insert_near(e, idx);
    }
    // A wider horizon may now cover events parked in the far heap; pull
    // them in so the far tier stays strictly beyond every near event.
    const Time bound = epoch_ + span();
    while (!far_.empty() && far_.front()->when < bound) {
      Event* e = far_pop();
      insert_near(e, index_of(e->when));
    }
    near_pushes_ = 0;
    walk_steps_ = 0;
  }

  std::vector<Bucket> buckets_;
  mutable std::size_t cur_ = 0;  // first possibly-occupied bucket
  Time epoch_ = 0;               // time at the start of bucket 0
  int width_shift_ = kInitialWidthShift;
  std::size_t near_size_ = 0;
  std::vector<Event*> far_;
  std::uint64_t seq_ = 0;
  std::uint64_t near_pushes_ = 0;
  std::uint64_t walk_steps_ = 0;
  std::size_t last_migration_ = kAdaptWindow;  // no doubling before data
  Event* free_ = nullptr;
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
};

}  // namespace oqs::sim
