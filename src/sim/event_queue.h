// Time-ordered event queue (binary heap) with FIFO tie-breaking.
//
// Events scheduled for the same instant execute in scheduling order, which
// makes the whole simulation deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/time.h"

namespace oqs::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  void push(Time when, Callback cb) {
    heap_.push(Entry{when, seq_++, std::move(cb)});
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  Time next_time() const { return heap_.top().when; }

  Callback pop(Time* when) {
    // std::priority_queue::top() is const; the callback is moved out via a
    // const_cast that is safe because pop() immediately removes the entry.
    Entry& e = const_cast<Entry&>(heap_.top());
    *when = e.when;
    Callback cb = std::move(e.cb);
    heap_.pop();
    return cb;
  }

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    Callback cb;
    bool operator>(const Entry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace oqs::sim
