// Statistics accumulators for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace oqs::sim {

class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sum2_ += x * x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double stddev() const {
    if (n_ < 2) return 0.0;
    const double m = mean();
    const double var = sum2_ / static_cast<double>(n_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }
  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double sum2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Samples kept in full; used for medians/percentiles in benches.
class Samples {
 public:
  void add(double x) { v_.push_back(x); }
  std::size_t count() const { return v_.size(); }
  double percentile(double p) {
    if (v_.empty()) return 0.0;
    std::vector<double> s = v_;
    std::sort(s.begin(), s.end());
    const double idx = p * static_cast<double>(s.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, s.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return s[lo] * (1.0 - frac) + s[hi] * frac;
  }
  double median() { return percentile(0.5); }
  double mean() const {
    if (v_.empty()) return 0.0;
    double sum = 0.0;
    for (double x : v_) sum += x;
    return sum / static_cast<double>(v_.size());
  }

 private:
  std::vector<double> v_;
};

}  // namespace oqs::sim
