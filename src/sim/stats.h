// Statistics accumulators for benchmark reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace oqs::sim {

// Running moments via Welford's algorithm: the naive sum-of-squares form
// suffers catastrophic cancellation once mean^2 dominates the variance
// (e.g. nanosecond timestamps in the 1e9 range with microsecond spread).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double stddev() const {
    if (n_ < 2) return 0.0;
    const double var = m2_ / static_cast<double>(n_);
    return var > 0.0 ? std::sqrt(var) : 0.0;
  }
  void reset() { *this = Accumulator{}; }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Samples kept in full; used for medians/percentiles in benches. The sorted
// view is cached and invalidated by add(), so a sweep of percentile calls
// after a run sorts once instead of copy+sort per call.
class Samples {
 public:
  void add(double x) {
    v_.push_back(x);
    sorted_ = false;
  }
  std::size_t count() const { return v_.size(); }
  double percentile(double p) const {
    if (v_.empty()) return 0.0;
    if (!sorted_) {
      std::sort(v_.begin(), v_.end());
      sorted_ = true;
    }
    const double idx = p * static_cast<double>(v_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v_.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v_[lo] * (1.0 - frac) + v_[hi] * frac;
  }
  double median() const { return percentile(0.5); }
  // Raw samples (unspecified order); lets callers merge sample sets.
  const std::vector<double>& values() const { return v_; }
  double mean() const {
    if (v_.empty()) return 0.0;
    double sum = 0.0;
    for (double x : v_) sum += x;
    return sum / static_cast<double>(v_.size());
  }

 private:
  // Element order is an implementation detail (only sorted views are
  // exposed), so sorting in place under a const API is safe.
  mutable std::vector<double> v_;
  mutable bool sorted_ = false;
};

}  // namespace oqs::sim
