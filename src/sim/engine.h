// The discrete-event simulation engine.
//
// Owns the event queue and all fibers. Plain events are callbacks at a
// timestamp; fibers block by parking themselves and are made runnable again
// via unpark(), which enqueues a resume event (fibers are never switched to
// directly from another fiber — all control flow goes through the loop, so
// same-instant wakeups preserve FIFO order).
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/fiber.h"
#include "sim/time.h"

namespace oqs::sim {

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Schedule a plain callback `delay` ns from now.
  void schedule(Time delay, std::function<void()> cb) {
    queue_.push(now_ + delay, std::move(cb));
  }
  void schedule_at(Time when, std::function<void()> cb) {
    assert(when >= now_);
    queue_.push(when, std::move(cb));
  }

  // Create a fiber that starts running at the current time.
  Fiber* spawn(std::string name, std::function<void()> body);

  // --- Callable only from inside a fiber ---
  Fiber* current() const { return current_; }
  bool in_fiber() const { return current_ != nullptr; }
  // Block the current fiber until unpark()ed.
  void park();
  // Block the current fiber for `dur` simulated ns.
  void sleep(Time dur);

  // --- Callable from anywhere ---
  // Make a parked fiber runnable after `delay` ns.
  void unpark(Fiber* f, Time delay = 0);

  // Run until the queue drains or stop() is called. Returns the final time.
  Time run();
  // Run no event past `deadline`; now() advances to at most `deadline`.
  Time run_until(Time deadline);
  void stop() { stopped_ = true; }

  std::size_t live_fibers() const;
  std::uint64_t events_executed() const { return events_executed_; }

 private:
  friend class Fiber;
  void dispatch_one(Time when);
  void resume(Fiber* f);
  void reap();

  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  bool running_ = false;
  Fiber* current_ = nullptr;
  ucontext_t loop_ctx_{};
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::uint64_t events_executed_ = 0;
};

}  // namespace oqs::sim
