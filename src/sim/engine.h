// The discrete-event simulation engine.
//
// Owns the event queue and all fibers. Plain events are callbacks at a
// timestamp; fibers block by parking themselves and are made runnable again
// via unpark(), which enqueues a resume event (fibers are never switched to
// directly from another fiber — all control flow goes through the loop, so
// same-instant wakeups preserve FIFO order).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "sim/fiber.h"
#include "sim/time.h"

namespace oqs::sim {

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  Time now() const { return now_; }

  // Schedule a callback `delay` ns from now. Any move-constructible
  // callable goes straight into the queue's pooled node storage — no
  // std::function wrapper, no per-event allocation for small captures.
  template <typename F>
  void schedule(Time delay, F&& cb) {
    queue_.push(now_ + delay, std::forward<F>(cb));
  }
  template <typename F>
  void schedule_at(Time when, F&& cb) {
    assert(when >= now_);
    queue_.push(when, std::forward<F>(cb));
  }

  // Create a fiber that starts running at the current time.
  Fiber* spawn(std::string name, std::function<void()> body);

  // --- Callable only from inside a fiber ---
  Fiber* current() const { return current_; }
  bool in_fiber() const { return current_ != nullptr; }
  // Block the current fiber until unpark()ed.
  void park();
  // Block the current fiber for `dur` simulated ns.
  void sleep(Time dur);

  // --- Callable from anywhere ---
  // Make a parked fiber runnable after `delay` ns.
  void unpark(Fiber* f, Time delay = 0);

  // Run until the queue drains or stop() is called. Returns the final time.
  Time run();
  // Run no event past `deadline`; now() advances to at most `deadline`.
  Time run_until(Time deadline);
  void stop() { stopped_ = true; }

  std::size_t live_fibers() const;
  // All fibers currently held, finished-but-unreaped ones included.
  std::size_t fiber_count() const { return fibers_.size(); }
  std::uint64_t events_executed() const { return events_executed_; }

  // --- Fiber stack pool ---
  // Stacks are recycled through a free list when fibers are reaped; the
  // size knob applies to subsequently spawned fibers (a change drops the
  // pooled stacks of the old size). Default 256 KiB, overridable with the
  // OQS_SIM_STACK_BYTES environment variable; clamped to >= 64 KiB.
  std::size_t stack_bytes() const { return stack_bytes_; }
  void set_stack_bytes(std::size_t bytes);
  std::uint64_t stacks_allocated() const { return stacks_allocated_; }
  std::size_t pooled_stacks() const { return stack_pool_.size(); }
  // Overflow canary: the low (overflow-target) bytes of every stack carry a
  // pattern checked when the stack is recycled; a violated stack is counted,
  // reported, and dropped instead of reused.
  std::uint64_t stack_canary_violations() const { return canary_violations_; }

 private:
  friend class Fiber;
  void dispatch_one();
  void resume(Fiber* f);
  void reap();

  std::unique_ptr<char[]> acquire_stack();
  void release_stack(std::unique_ptr<char[]> stack, std::size_t bytes);
  static void arm_canary(char* base);
  static bool canary_ok(const char* base);

  EventQueue queue_;
  Time now_ = 0;
  bool stopped_ = false;
  bool running_ = false;
  // A reap requested while a fiber was current (a nested run_until() from
  // fiber context, or a stop() that unwound mid-dispatch) must not be
  // dropped: it is deferred to the next time the engine loop owns the
  // stack, where freeing fiber stacks is safe.
  bool reap_pending_ = false;
  Fiber* current_ = nullptr;
  ucontext_t loop_ctx_{};
  std::size_t stack_bytes_;
  std::vector<std::unique_ptr<char[]>> stack_pool_;
  std::uint64_t stacks_allocated_ = 0;
  std::uint64_t canary_violations_ = 0;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::uint64_t events_executed_ = 0;
};

}  // namespace oqs::sim
