// A compute node: identity plus its CPU model.
//
// Devices (Elan4 NIC, simulated Ethernet for OOB) attach to a node by id in
// their own modules; sim keeps the node minimal.
#pragma once

#include <string>

#include "base/params.h"
#include "sim/cpu.h"

namespace oqs::sim {

class Node {
 public:
  Node(Engine& engine, int id, const ModelParams& params)
      : id_(id),
        name_("node" + std::to_string(id)),
        cpu_(engine, params.cores_per_node, params.ctx_switch_ns,
             params.fsb_contention) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Cpu& cpu() { return cpu_; }

  // Serialize an interrupt on the node's IRQ path (default affinity routes
  // every device interrupt through one CPU); returns its completion time.
  Time irq_reserve(Time now, Time service) {
    const Time start = now > irq_free_at_ ? now : irq_free_at_;
    irq_free_at_ = start + service;
    return irq_free_at_;
  }

 private:
  int id_;
  std::string name_;
  Cpu cpu_;
  Time irq_free_at_ = 0;
};

}  // namespace oqs::sim
