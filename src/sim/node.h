// A compute node: identity plus its CPU model.
//
// Devices (Elan4 NIC, simulated Ethernet for OOB) attach to a node by id in
// their own modules; sim keeps the node minimal.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "base/params.h"
#include "sim/cpu.h"

namespace oqs::sim {

class Node {
 public:
  Node(Engine& engine, int id, const ModelParams& params)
      : id_(id),
        name_("node" + std::to_string(id)),
        cpu_(engine, params.cores_per_node, params.ctx_switch_ns,
             params.fsb_contention) {}

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  Cpu& cpu() { return cpu_; }

  // Serialize an interrupt on the node's IRQ path (default affinity routes
  // every device interrupt through one CPU); returns its completion time.
  Time irq_reserve(Time now, Time service) {
    const Time start = now > irq_free_at_ ? now : irq_free_at_;
    irq_free_at_ = start + service;
    return irq_free_at_;
  }

  // Named shared-memory segments: process fibers placed on this node attach
  // to one object per key (the intra-node phase of hierarchical
  // collectives). The first attacher's make() result is kept until the last
  // shared_ptr drops AND shm_unlink() removes the name.
  template <typename T, typename Make>
  std::shared_ptr<T> shm_attach(const std::string& key, Make make) {
    auto it = shm_.find(key);
    if (it == shm_.end()) {
      std::shared_ptr<T> seg = make();
      shm_.emplace(key, seg);
      return seg;
    }
    return std::static_pointer_cast<T>(it->second);
  }
  void shm_unlink(const std::string& key) { shm_.erase(key); }

 private:
  int id_;
  std::string name_;
  Cpu cpu_;
  Time irq_free_at_ = 0;
  std::map<std::string, std::shared_ptr<void>> shm_;
};

}  // namespace oqs::sim
