// Per-node CPU model.
//
// A node has a small number of cores (the paper's testbed: dual Xeon).
// Fibers charge software-path costs with compute(); when more fibers are
// runnable than cores exist they queue, which is exactly the contention the
// paper observes between the MPI process and its progress threads (§6.4:
// one-thread progress beats two-thread because of CPU/memory contention).
// Execution is non-preemptive per compute() block; a context-switch penalty
// is charged when a core's occupant changes.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/engine.h"
#include "sim/time.h"

namespace oqs::sim {

class Cpu {
 public:
  Cpu(Engine& engine, unsigned cores, Time ctx_switch_ns,
      double memory_contention = 0.0)
      : engine_(engine),
        ctx_switch_ns_(ctx_switch_ns),
        memory_contention_(memory_contention),
        cores_(cores) {}

  unsigned num_cores() const { return static_cast<unsigned>(cores_.size()); }

  // Charge `dur` ns of CPU work from the calling fiber; blocks while all
  // cores are busy. Zero-duration compute still requires a core grant if the
  // machine is saturated, but fast-paths when one is free.
  void compute(Time dur);

  // Total busy time integrated over all cores (for utilization reporting).
  Time busy_ns() const { return busy_ns_; }
  std::uint64_t switches() const { return switches_; }

 private:
  struct Core {
    bool busy = false;
    const Fiber* last = nullptr;
  };
  struct Waiter {
    Fiber* fiber;
    int granted_core = -1;
  };

  int find_free() const;

  Engine& engine_;
  Time ctx_switch_ns_;
  // Slowdown per additional busy core (shared FSB / memory bus).
  double memory_contention_;
  std::vector<Core> cores_;
  std::deque<Waiter*> wait_queue_;
  Time busy_ns_ = 0;
  std::uint64_t switches_ = 0;
};

}  // namespace oqs::sim
