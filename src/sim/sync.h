// Blocking primitives for fibers.
//
// Notifier  — stateless condition: wait() parks until a later notify.
// Flag      — one-shot latch: wait() returns immediately once set.
// Semaphore — counting semaphore.
// Mailbox<T>— FIFO of values with blocking receive.
//
// All wakeups go through Engine::unpark, so they take effect on the event
// loop, never by direct fiber-to-fiber switch.
#pragma once

#include <cassert>
#include <deque>
#include <optional>
#include <vector>

#include "sim/engine.h"

namespace oqs::sim {

class Notifier {
 public:
  explicit Notifier(Engine& e) : engine_(e) {}

  void wait() {
    waiters_.push_back(engine_.current());
    engine_.park();
  }

  // Wake every fiber currently waiting (not future waiters).
  void notify_all(Time delay = 0) {
    std::vector<Fiber*> batch;
    batch.swap(waiters_);
    for (Fiber* f : batch) engine_.unpark(f, delay);
  }

  void notify_one(Time delay = 0) {
    if (waiters_.empty()) return;
    Fiber* f = waiters_.front();
    waiters_.erase(waiters_.begin());
    engine_.unpark(f, delay);
  }

  std::size_t waiting() const { return waiters_.size(); }

 private:
  Engine& engine_;
  std::vector<Fiber*> waiters_;
};

class Flag {
 public:
  explicit Flag(Engine& e) : engine_(e), cond_(e) {}

  void wait() {
    while (!set_) cond_.wait();
  }
  void set(Time delay = 0) {
    set_ = true;
    cond_.notify_all(delay);
  }
  bool is_set() const { return set_; }
  void reset() { set_ = false; }

 private:
  Engine& engine_;
  Notifier cond_;
  bool set_ = false;
};

class Semaphore {
 public:
  Semaphore(Engine& e, std::size_t initial) : engine_(e), cond_(e), count_(initial) {}

  void acquire() {
    while (count_ == 0) cond_.wait();
    --count_;
  }
  bool try_acquire() {
    if (count_ == 0) return false;
    --count_;
    return true;
  }
  void release(std::size_t n = 1) {
    count_ += n;
    for (std::size_t i = 0; i < n; ++i) cond_.notify_one();
  }
  std::size_t available() const { return count_; }

 private:
  Engine& engine_;
  Notifier cond_;
  std::size_t count_;
};

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Engine& e) : cond_(e) {}

  void send(T value) {
    queue_.push_back(std::move(value));
    cond_.notify_one();
  }

  T recv() {
    while (queue_.empty()) cond_.wait();
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  std::optional<T> try_recv() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }

 private:
  Notifier cond_;
  std::deque<T> queue_;
};

}  // namespace oqs::sim
