// Simulated time: unsigned nanoseconds since simulation start.
#pragma once

#include <cstdint>

namespace oqs::sim {

using Time = std::uint64_t;

constexpr Time kNs = 1;
constexpr Time kUs = 1000;
constexpr Time kMs = 1000 * 1000;
constexpr Time kSec = 1000ull * 1000 * 1000;

constexpr double to_us(Time t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(Time t) { return static_cast<double>(t) / 1e6; }

}  // namespace oqs::sim
