// MPI datatype engine.
//
// Open MPI ships a datatype component that packs/unpacks sophisticated
// layouts through a convertor ("copy engine"); the paper measures its cost
// at ~0.4us per request (Fig. 7) and ablates it against a plain memcpy.
// Datatypes are immutable descriptions built by the MPI-style constructors
// (contiguous / vector / indexed / struct); a Convertor walks the layout to
// pack into or unpack from wire fragments at arbitrary byte boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace oqs::dtype {

class Datatype;
using DatatypePtr = std::shared_ptr<const Datatype>;

class Datatype {
 public:
  // One contiguous piece of an element, relative to the element base.
  struct Segment {
    std::size_t offset;
    std::size_t length;
  };

  // --- Constructors (MPI_Type_* analogues) ---
  static DatatypePtr builtin(std::size_t size, std::string name);
  static DatatypePtr contiguous(std::size_t count, const DatatypePtr& t);
  // `stride` is in elements of t (MPI_Type_vector semantics).
  static DatatypePtr vec(std::size_t count, std::size_t blocklen, std::size_t stride,
                         const DatatypePtr& t);
  // blocks of (displacement in elements of t, blocklen in elements).
  static DatatypePtr indexed(const std::vector<std::pair<std::size_t, std::size_t>>& blocks,
                             const DatatypePtr& t);
  // blocks of (byte displacement, count, type) — MPI_Type_create_struct.
  struct StructBlock {
    std::size_t byte_offset;
    std::size_t count;
    DatatypePtr type;
  };
  static DatatypePtr structure(const std::vector<StructBlock>& blocks);

  const std::string& name() const { return name_; }
  // Packed size of one element (bytes of real data).
  std::size_t size() const { return size_; }
  // Memory span of one element, including holes.
  std::size_t extent() const { return extent_; }
  bool is_contiguous() const {
    return segments_.size() == 1 && segments_[0].offset == 0 && size_ == extent_;
  }
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  Datatype(std::string name, std::vector<Segment> segs, std::size_t extent);
  static std::vector<Segment> coalesce(std::vector<Segment> segs);

  std::string name_;
  std::vector<Segment> segments_;  // sorted by offset, non-overlapping
  std::size_t size_;
  std::size_t extent_;
};

// Common builtins.
DatatypePtr byte_type();    // 1 byte
DatatypePtr int_type();     // 4 bytes
DatatypePtr double_type();  // 8 bytes

// The copy engine: packs `count` elements at `base` into wire order, or
// unpacks wire bytes back, resumable at any byte boundary (fragments).
class Convertor {
 public:
  Convertor(DatatypePtr type, void* base, std::size_t count);

  std::size_t total_bytes() const { return total_; }
  std::size_t position() const { return packed_; }
  bool finished() const { return packed_ >= total_; }

  // Copy up to max_bytes of remaining data into out; returns bytes copied.
  std::size_t pack(void* out, std::size_t max_bytes);
  // Copy bytes of wire data into the user buffer; returns bytes consumed.
  std::size_t unpack(const void* in, std::size_t max_bytes);

  void rewind();

 private:
  template <bool kPack>
  std::size_t advance(void* out, const void* in, std::size_t max_bytes);

  DatatypePtr type_;
  char* base_;
  std::size_t count_;
  std::size_t total_;
  // Cursor: element index, segment index within element, offset into segment.
  std::size_t elem_ = 0;
  std::size_t seg_ = 0;
  std::size_t seg_off_ = 0;
  std::size_t packed_ = 0;
};

}  // namespace oqs::dtype
