#include "dtype/datatype.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace oqs::dtype {

Datatype::Datatype(std::string name, std::vector<Segment> segs, std::size_t extent)
    : name_(std::move(name)), segments_(coalesce(std::move(segs))), extent_(extent) {
  size_ = 0;
  for (const Segment& s : segments_) size_ += s.length;
  assert(segments_.empty() || segments_.back().offset + segments_.back().length <= extent_);
}

std::vector<Datatype::Segment> Datatype::coalesce(std::vector<Segment> segs) {
  std::erase_if(segs, [](const Segment& s) { return s.length == 0; });
  std::sort(segs.begin(), segs.end(),
            [](const Segment& a, const Segment& b) { return a.offset < b.offset; });
  std::vector<Segment> out;
  for (const Segment& s : segs) {
    if (!out.empty() && out.back().offset + out.back().length == s.offset)
      out.back().length += s.length;
    else
      out.push_back(s);
  }
  return out;
}

DatatypePtr Datatype::builtin(std::size_t size, std::string name) {
  assert(size > 0);
  return DatatypePtr(new Datatype(std::move(name), {{0, size}}, size));
}

DatatypePtr Datatype::contiguous(std::size_t count, const DatatypePtr& t) {
  std::vector<Segment> segs;
  for (std::size_t i = 0; i < count; ++i)
    for (const Segment& s : t->segments())
      segs.push_back({i * t->extent() + s.offset, s.length});
  return DatatypePtr(new Datatype("contig(" + std::to_string(count) + "," + t->name() + ")",
                                  std::move(segs), count * t->extent()));
}

DatatypePtr Datatype::vec(std::size_t count, std::size_t blocklen, std::size_t stride,
                          const DatatypePtr& t) {
  assert(stride >= blocklen && "overlapping vector blocks are not supported");
  std::vector<Segment> segs;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t block_base = i * stride * t->extent();
    for (std::size_t j = 0; j < blocklen; ++j)
      for (const Segment& s : t->segments())
        segs.push_back({block_base + j * t->extent() + s.offset, s.length});
  }
  // MPI extent of a vector: from first byte to last byte spanned.
  const std::size_t extent =
      count == 0 ? 0 : ((count - 1) * stride + blocklen) * t->extent();
  return DatatypePtr(new Datatype(
      "vector(" + std::to_string(count) + "x" + std::to_string(blocklen) + ")",
      std::move(segs), extent));
}

DatatypePtr Datatype::indexed(
    const std::vector<std::pair<std::size_t, std::size_t>>& blocks,
    const DatatypePtr& t) {
  std::vector<Segment> segs;
  std::size_t extent = 0;
  for (const auto& [disp, blocklen] : blocks) {
    for (std::size_t j = 0; j < blocklen; ++j)
      for (const Segment& s : t->segments())
        segs.push_back({(disp + j) * t->extent() + s.offset, s.length});
    extent = std::max(extent, (disp + blocklen) * t->extent());
  }
  return DatatypePtr(new Datatype("indexed(" + std::to_string(blocks.size()) + ")",
                                  std::move(segs), extent));
}

DatatypePtr Datatype::structure(const std::vector<StructBlock>& blocks) {
  std::vector<Segment> segs;
  std::size_t extent = 0;
  for (const StructBlock& b : blocks) {
    for (std::size_t i = 0; i < b.count; ++i)
      for (const Segment& s : b.type->segments())
        segs.push_back({b.byte_offset + i * b.type->extent() + s.offset, s.length});
    extent = std::max(extent, b.byte_offset + b.count * b.type->extent());
  }
  return DatatypePtr(new Datatype("struct(" + std::to_string(blocks.size()) + ")",
                                  std::move(segs), extent));
}

DatatypePtr byte_type() {
  static DatatypePtr t = Datatype::builtin(1, "byte");
  return t;
}
DatatypePtr int_type() {
  static DatatypePtr t = Datatype::builtin(4, "int");
  return t;
}
DatatypePtr double_type() {
  static DatatypePtr t = Datatype::builtin(8, "double");
  return t;
}

Convertor::Convertor(DatatypePtr type, void* base, std::size_t count)
    : type_(std::move(type)),
      base_(static_cast<char*>(base)),
      count_(count),
      total_(type_->size() * count) {}

void Convertor::rewind() {
  elem_ = seg_ = seg_off_ = 0;
  packed_ = 0;
}

template <bool kPack>
std::size_t Convertor::advance(void* out, const void* in, std::size_t max_bytes) {
  const auto& segs = type_->segments();
  std::size_t moved = 0;
  while (moved < max_bytes && elem_ < count_) {
    if (seg_ >= segs.size()) {
      ++elem_;
      seg_ = 0;
      seg_off_ = 0;
      continue;
    }
    const Datatype::Segment& s = segs[seg_];
    const std::size_t avail = s.length - seg_off_;
    const std::size_t take = std::min(avail, max_bytes - moved);
    char* user = base_ + elem_ * type_->extent() + s.offset + seg_off_;
    if constexpr (kPack)
      std::memcpy(static_cast<char*>(out) + moved, user, take);
    else
      std::memcpy(user, static_cast<const char*>(in) + moved, take);
    moved += take;
    seg_off_ += take;
    if (seg_off_ == s.length) {
      ++seg_;
      seg_off_ = 0;
    }
  }
  packed_ += moved;
  return moved;
}

std::size_t Convertor::pack(void* out, std::size_t max_bytes) {
  return advance<true>(out, nullptr, max_bytes);
}

std::size_t Convertor::unpack(const void* in, std::size_t max_bytes) {
  return advance<false>(nullptr, in, max_bytes);
}

}  // namespace oqs::dtype
