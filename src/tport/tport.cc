#include "tport/tport.h"

#include <cassert>
#include <cstring>

#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oqs::tport {

using elan4::Vpid;

Tport::Tport(TportDomain& domain, int node) : domain_(domain), node_(node) {
  device_ = domain_.net_.open(node);
  assert(device_ && "no free Elan4 context for Tport");
  domain_.ports_[device_->vpid()] = this;
}

Tport::~Tport() {
  domain_.ports_.erase(device_->vpid());
  device_->close();
}

bool Tport::try_match(PostedRecv& pr, Vpid src, std::uint64_t tag) const {
  if (pr.src != kAnyVpid && pr.src != src) return false;
  return (tag & pr.mask) == (pr.tag & pr.mask);
}

void Tport::reap(const void* keep) {
  std::erase_if(tx_reqs_, [keep](const std::unique_ptr<TxReq>& t) {
    return t.get() != keep && t->done && t->harvested;
  });
  std::erase_if(rx_reqs_, [keep](const std::unique_ptr<RxReq>& r) {
    return r.get() != keep && r->done && r->harvested;
  });
}

Tport::TxReq* Tport::send(Vpid dst, std::uint64_t tag, const void* buf,
                          std::size_t len) {
  elan4::QsNet& net = domain_.net_;
  const ModelParams& p = net.params();
  reap(nullptr);
  OQS_TRACE_SPAN(span_, node_, "tport", "send", "len", len);
  OQS_METRIC_INC("tport.tx_msgs");
  OQS_METRIC_ADD("tport.tx_bytes", len);
  device_->compute(p.tport_cmd_ns);

  tx_reqs_.push_back(std::make_unique<TxReq>());
  TxReq* tx = tx_reqs_.back().get();

  if (!net.capability().is_live(dst)) {
    log::warn("tport", "send to dead vpid ", dst);
    tx->failed = true;  // hardware completes the descriptor with an error
    tx->done = true;
    return tx;
  }
  Tport* peer = nullptr;
  if (auto it = domain_.ports_.find(dst); it != domain_.ports_.end())
    peer = it->second;
  if (peer == nullptr) {
    log::warn("tport", "no Tport registered for vpid ", dst);
    tx->failed = true;
    tx->done = true;
    return tx;
  }

  const std::uint64_t msg_id =
      (static_cast<std::uint64_t>(device_->vpid()) << 40) | next_msg_id_++;
  const int dst_node = net.node_of(dst);
  elan4::Elan4Nic& nic = device_->nic();
  const char* src_bytes = static_cast<const char*>(buf);
  const Vpid my_vpid = device_->vpid();
  const int my_node = node_;
  elan4::QsNet* netp = &net;

  // Eager messages complete at the source once injected; only large
  // messages tie the sender's flag to the delivery ack.
  const bool eager = len <= kTportEagerMax;
  TxReq* remote_flag = eager ? nullptr : tx;

  // Fragment; the NIC streams the whole message without host round trips —
  // the pipelining that gives Tport its mid-range bandwidth edge.
  std::size_t off = 0;
  bool first = true;
  sim::Time earliest = net.engine().now();
  do {
    const std::size_t room = p.mtu - kTportHeaderBytes;
    const std::size_t frag = std::min(room, len - off);
    const bool last = off + frag >= len;
    const sim::Time startup = first ? p.nic_qdma_start_ns : p.nic_frag_ns;
    // The Tport engine is NIC firmware sharing the card's DMA engines, and
    // it cuts fragments through: headers leave after startup while payloads
    // stream — the single-message pipelining the paper credits for
    // MPICH-QsNetII's mid-range bandwidth (§6.5).
    const sim::Time inject_at = nic.tx_engine_mut().reserve_cut_through(
        earliest, startup + ModelParams::xfer_ns(frag + kTportHeaderBytes, p.pci_mbps),
        startup);
    earliest = inject_at;

    const std::uint64_t frag_off = off;
    const bool frag_first = first;
    if (last && eager) {
      // Local completion: the NIC has consumed the host buffer.
      net.engine().schedule_at(inject_at, [tx] { tx->done = true; });
    }
    net.engine().schedule_at(inject_at, [netp, peer, my_vpid, my_node, dst_node,
                                         msg_id, tag, len, frag, frag_off,
                                         frag_first, last, src_bytes,
                                         tx = remote_flag]() {
      std::vector<std::uint8_t> payload(frag);
      if (frag > 0) std::memcpy(payload.data(), src_bytes + frag_off, frag);
      netp->fabric().transmit(
          my_node, dst_node, static_cast<std::uint32_t>(frag) + kTportHeaderBytes,
          [peer, msg_id, my_vpid, my_node, tag, len, frag_off, frag_first, last,
           payload = std::move(payload), tx]() mutable {
            peer->rx_fragment(msg_id, my_vpid, my_node, tag, len, frag_off,
                              std::move(payload), frag_first, last, tx);
          });
    });
    off += frag;
    first = false;
  } while (off < len);

  return tx;
}

Tport::RxReq* Tport::recv(Vpid src, std::uint64_t tag, std::uint64_t tag_mask,
                          void* buf, std::size_t capacity) {
  const ModelParams& p = domain_.net_.params();
  reap(nullptr);
  OQS_TRACE_SPAN(span_, node_, "tport", "recv_post", "cap", capacity);
  OQS_METRIC_INC("tport.rx_posted");
  device_->compute(p.tport_cmd_ns);

  rx_reqs_.push_back(std::make_unique<RxReq>());
  RxReq* rx = rx_reqs_.back().get();
  PostedRecv pr{rx, src, tag, tag_mask, static_cast<char*>(buf), capacity};

  // NIC checks the unexpected store first (completed or still inbound).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (it->claimed_by != nullptr) continue;
    if (!try_match(pr, it->src, it->tag)) continue;
    if (it->complete) {
      const std::size_t take = std::min(capacity, it->data.size());
      device_->charge_copy(take);  // drain bounce buffer into the user buffer
      if (take > 0) std::memcpy(buf, it->data.data(), take);
      rx->done = true;
      rx->len = take;
      rx->src = it->src;
      rx->tag = it->tag;
      rx->truncated = it->data.size() > capacity;
      unexpected_bytes_ -= it->data.size();
      unexpected_.erase(it);
    } else {
      // Message still streaming in: claim it; completion copies it over.
      it->claimed_by = rx;
      it->claimed_buf = static_cast<char*>(buf);
      it->claimed_cap = capacity;
    }
    return rx;
  }

  posted_.push_back(pr);
  return rx;
}

void Tport::rx_fragment(std::uint64_t msg_id, Vpid src, int src_node,
                        std::uint64_t tag, std::size_t total, std::uint64_t offset,
                        std::vector<std::uint8_t> payload, bool first, bool last,
                        TxReq* tx_done) {
  elan4::QsNet& net = domain_.net_;
  const ModelParams& p = net.params();
  elan4::Elan4Nic& nic = device_->nic();

  sim::Time visible = p.nic_frag_ns;
  if (first) visible += p.nic_tport_match_ns;  // NIC-side tag match
  const sim::Time done = nic.rx_engine_mut().reserve_cut_through(
      net.engine().now(),
      visible + ModelParams::xfer_ns(payload.size(), p.pci_mbps), visible);

  net.engine().schedule_at(done, [this, msg_id, src, src_node, tag, total, offset,
                                  payload = std::move(payload), first,
                                  last, tx_done]() mutable {
    if (first) {
      Inbound in;
      in.src = src;
      in.src_node = src_node;
      in.tag = tag;
      in.total = total;
      in.tx_done = tx_done;
      // Match against the NIC-resident posted-receive list.
      for (auto it = posted_.begin(); it != posted_.end(); ++it) {
        if (try_match(*it, src, tag)) {
          in.matched = *it;
          in.is_matched = true;
          posted_.erase(it);
          break;
        }
      }
      OQS_TRACE_INSTANT(node_, "tport",
                        in.is_matched ? "nic_match.hit" : "nic_match.miss",
                        "len", total);
      if (!in.is_matched) {
        OQS_METRIC_INC("tport.unexpected");
        unexpected_.push_back(Unexpected{src, tag, std::vector<std::uint8_t>(total),
                                         false, nullptr, nullptr, 0});
        in.unex = std::prev(unexpected_.end());
        unexpected_bytes_ += total;
      }
      inbound_.emplace(msg_id, std::move(in));
    }
    auto iit = inbound_.find(msg_id);
    if (iit == inbound_.end()) {
      log::warn("tport", "fragment for unknown message ", msg_id);
      return;
    }
    Inbound& in = iit->second;
    if (!payload.empty()) {
      if (in.is_matched) {
        // Land directly in the user buffer (true zero-copy delivery).
        const std::size_t cap = in.matched.capacity;
        if (offset < cap) {
          const std::size_t take = std::min(payload.size(), cap - offset);
          std::memcpy(in.matched.buf + offset, payload.data(), take);
        }
      } else {
        std::memcpy(in.unex->data.data() + offset, payload.data(), payload.size());
      }
    }
    in.received += payload.size();
    if (last) {
      assert(in.received == in.total);
      finish_inbound(in);
      inbound_.erase(iit);
    }
  });
}

void Tport::finish_inbound(Inbound& in) {
  elan4::QsNet& net = domain_.net_;
  OQS_METRIC_INC("tport.rx_msgs");
  OQS_METRIC_ADD("tport.rx_bytes", in.total);
  OQS_TRACE_INSTANT(node_, "tport", "rx_complete", "len", in.total);
  if (in.is_matched) {
    RxReq* rx = in.matched.req;
    rx->len = std::min(in.total, in.matched.capacity);
    rx->src = in.src;
    rx->tag = in.tag;
    rx->truncated = in.total > in.matched.capacity;
    rx->done = true;
  } else if (in.unex->claimed_by != nullptr) {
    Unexpected& u = *in.unex;
    RxReq* rx = u.claimed_by;
    const std::size_t take = std::min(u.claimed_cap, u.data.size());
    // The NIC drains the bounce buffer into the user buffer itself (this
    // runs in NIC context, so the cost lands on the rx engine, not a core).
    device_->nic().rx_engine_mut().reserve(
        domain_.net_.engine().now(),
        ModelParams::xfer_ns(take, domain_.net_.params().pci_mbps));
    if (take > 0) std::memcpy(u.claimed_buf, u.data.data(), take);
    rx->len = take;
    rx->src = u.src;
    rx->tag = u.tag;
    rx->truncated = u.data.size() > u.claimed_cap;
    rx->done = true;
    unexpected_bytes_ -= u.data.size();
    unexpected_.erase(in.unex);
  } else {
    in.unex->complete = true;
  }
  // Network-level completion ack back to the sender's flag.
  if (in.tx_done != nullptr) {
    TxReq* tx = in.tx_done;
    net.fabric().transmit(node_, in.src_node, elan4::kRdmaAckBytes,
                          [tx] { tx->done = true; });
  }
}

void Tport::wait(TxReq* r) {
  reap(r);
  while (!r->done) device_->charge_poll();
  r->harvested = true;
}

void Tport::wait(RxReq* r) {
  reap(r);
  while (!r->done) device_->charge_poll();
  r->harvested = true;
}

}  // namespace oqs::tport
