// Quadrics Tport — the tagged-message layer under MPICH-QsNetII.
//
// The crucial architectural difference from the paper's PTL: tag matching
// happens ON THE NIC. The host posts send/receive descriptors and then
// polls a completion flag; header processing, matching against the posted-
// receive list, landing payload in the user buffer, and the large-message
// pipeline never involve the host CPU. Headers are 32 bytes (vs the PML's
// 64). These two properties are exactly what the paper credits for
// MPICH-QsNetII's lower small-message latency and better mid-range
// bandwidth (Fig. 10, §6.5).
#pragma once

#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "elan4/device.h"
#include "elan4/qsnet.h"

namespace oqs::tport {

constexpr std::uint32_t kTportHeaderBytes = 32;
constexpr std::int64_t kAnyVpid = -1;
// Sends up to this size complete locally once the NIC has read the host
// buffer (the receiver buffers them unexpectedly if unmatched); larger
// messages complete on the delivery acknowledgement.
constexpr std::size_t kTportEagerMax = 32768;

class Tport;

// Directory connecting Tports over one machine (the libelan state segment).
class TportDomain {
 public:
  explicit TportDomain(elan4::QsNet& net) : net_(net) {}
  elan4::QsNet& net() { return net_; }

 private:
  friend class Tport;
  elan4::QsNet& net_;
  std::map<elan4::Vpid, Tport*> ports_;
};

class Tport {
 public:
  // Host-visible completion state of a transmit.
  struct TxReq {
    bool done = false;
    // Set with done when the send could not be delivered (dead or
    // unregistered destination) — callers can distinguish failure from
    // success instead of both looking like completion.
    bool failed = false;
    // The caller has observed completion (wait() returned); the request
    // may be reclaimed at the next Tport call.
    bool harvested = false;
  };
  // Host-visible completion state of a posted receive.
  struct RxReq {
    bool done = false;
    std::size_t len = 0;          // actual payload bytes
    elan4::Vpid src = elan4::kInvalidVpid;
    std::uint64_t tag = 0;
    bool truncated = false;
    bool harvested = false;
  };

  // Claims an Elan context on `node` and registers in the domain.
  Tport(TportDomain& domain, int node);
  ~Tport();
  Tport(const Tport&) = delete;
  Tport& operator=(const Tport&) = delete;

  elan4::Vpid vpid() const { return device_->vpid(); }
  int node() const { return node_; }

  // Post a tagged send; the NIC streams fragments without further host
  // involvement. The handle completes when the payload is delivered (or
  // consumed into the peer's unexpected buffer).
  TxReq* send(elan4::Vpid dst, std::uint64_t tag, const void* buf, std::size_t len);

  // Post a tagged receive. `src` may be kAnyVpid; `tag_mask` selects which
  // tag bits must equal `tag` (all-ones = exact, 0 = any).
  RxReq* recv(elan4::Vpid src, std::uint64_t tag, std::uint64_t tag_mask, void* buf,
              std::size_t capacity);

  // Poll-wait on completion flags (MPICH-QsNetII's progress discipline).
  void wait(TxReq* r);
  void wait(RxReq* r);

  std::size_t unexpected_bytes() const { return unexpected_bytes_; }
  // Live request-table sizes (bounded-memory tests): completed requests are
  // reclaimed lazily once their completion has been observed by wait().
  std::size_t outstanding_tx() const { return tx_reqs_.size(); }
  std::size_t outstanding_rx() const { return rx_reqs_.size(); }

 private:
  struct PostedRecv {
    RxReq* req;
    elan4::Vpid src;
    std::uint64_t tag;
    std::uint64_t mask;
    char* buf;
    std::size_t capacity;
  };
  struct Unexpected {
    elan4::Vpid src;
    std::uint64_t tag;
    std::vector<std::uint8_t> data;  // NIC bounce buffer
    bool complete;                   // all fragments arrived
    RxReq* claimed_by = nullptr;     // matched while still inbound
    char* claimed_buf = nullptr;
    std::size_t claimed_cap = 0;
  };
  // Reassembly state of one inbound message on the NIC.
  struct Inbound {
    elan4::Vpid src;
    std::uint64_t tag;
    std::size_t total;
    std::size_t received = 0;
    // Either a matched posted receive or an unexpected bounce entry.
    PostedRecv matched{};
    bool is_matched = false;
    std::list<Unexpected>::iterator unex;
    TxReq* tx_done = nullptr;  // sender's flag, set on final fragment
    int src_node = -1;
  };

  // Free completed requests whose completion the caller has already
  // observed. Runs at API entry only — never mid-wait — so fields of a
  // request remain readable after wait() returns until the caller's next
  // Tport call. `keep` (the request being waited on) is never reclaimed.
  void reap(const void* keep);

  void rx_fragment(std::uint64_t msg_id, elan4::Vpid src, int src_node,
                   std::uint64_t tag, std::size_t total, std::uint64_t offset,
                   std::vector<std::uint8_t> payload, bool first, bool last,
                   TxReq* tx_done);
  void finish_inbound(Inbound& in);
  bool try_match(PostedRecv& pr, elan4::Vpid src, std::uint64_t tag) const;

  TportDomain& domain_;
  int node_;
  std::unique_ptr<elan4::Elan4Device> device_;
  std::list<PostedRecv> posted_;       // NIC-resident posted-receive list
  std::list<Unexpected> unexpected_;   // NIC bounce storage
  std::map<std::uint64_t, Inbound> inbound_;
  std::deque<std::unique_ptr<TxReq>> tx_reqs_;
  std::deque<std::unique_ptr<RxReq>> rx_reqs_;
  std::uint64_t next_msg_id_ = 1;
  std::size_t unexpected_bytes_ = 0;
};

}  // namespace oqs::tport
