#include "elan4/capability.h"

#include <cassert>

namespace oqs::elan4 {

SystemCapability::SystemCapability(int num_nodes, int contexts_per_node)
    : num_nodes_(num_nodes), contexts_per_node_(contexts_per_node) {
  assert(num_nodes >= 1 && contexts_per_node >= 1);
  claimed_.assign(static_cast<std::size_t>(num_nodes) * contexts_per_node, false);
}

Vpid SystemCapability::claim(int node) {
  assert(node >= 0 && node < num_nodes_);
  const int base = node * contexts_per_node_;
  for (int c = 0; c < contexts_per_node_; ++c) {
    if (!claimed_[static_cast<std::size_t>(base + c)]) {
      claimed_[static_cast<std::size_t>(base + c)] = true;
      ++live_;
      return static_cast<Vpid>(base + c);
    }
  }
  return kInvalidVpid;
}

Status SystemCapability::release(Vpid vpid) {
  const int i = index_of(vpid);
  if (i < 0 || i >= static_cast<int>(claimed_.size()) || !claimed_[static_cast<std::size_t>(i)])
    return Status::kBadParam;
  claimed_[static_cast<std::size_t>(i)] = false;
  --live_;
  return Status::kOk;
}

bool SystemCapability::is_live(Vpid vpid) const {
  const int i = index_of(vpid);
  return i >= 0 && i < static_cast<int>(claimed_.size()) &&
         claimed_[static_cast<std::size_t>(i)];
}

int SystemCapability::node_of(Vpid vpid) const {
  assert(is_live(vpid));
  return index_of(vpid) / contexts_per_node_;
}

ContextId SystemCapability::context_of(Vpid vpid) const {
  assert(is_live(vpid));
  return index_of(vpid) % contexts_per_node_;
}

}  // namespace oqs::elan4
