// Elan4 events.
//
// An E4 event lives in NIC memory and carries a countdown: DMA completions
// call fire(), and when the count reaches zero the event *triggers* — the
// host-visible done word is written, an optional chained command is handed
// to the NIC command queue (the paper's chained-event mechanism, used to
// send FIN/FIN_ACK without host involvement), an optional interrupt wakes
// blocked host fibers.
//
// Faithfully modeled hardware quirk (paper Fig. 5): fire() on an event whose
// count is already <= 0 is LOST — no trigger, ever. Re-arming with
// reset_count() is not atomic with in-flight completions, so the
// "reset to 1 and block again" pattern drops wakeups. This is the race that
// motivates the shared completion queue design.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "base/params.h"
#include "base/status.h"
#include "elan4/commands.h"
#include "sim/engine.h"

namespace oqs::elan4 {

class Elan4Nic;

class E4Event {
 public:
  E4Event(sim::Engine& engine, const ModelParams& params, Elan4Nic* nic,
          std::string name);

  const std::string& name() const { return name_; }

  // Host-side arm: the event triggers after `count` fire()s.
  void init(int count) {
    count_ = count;
    done_ = false;
  }
  // Host-side non-atomic re-arm. Deliberately identical to init(): if a DMA
  // fired while count was already 0, that completion is gone (Fig. 5d).
  void reset_count(int count) { init(count); }

  int count() const { return count_; }
  // Host word: set when the event triggered since the last init().
  bool done() const { return done_; }
  // Cumulative trigger counter (diagnostic; not host-visible on hardware).
  std::uint64_t triggers() const { return triggers_; }
  std::uint64_t lost_fires() const { return lost_fires_; }
  Status status() const { return status_; }

  // Attach a command the NIC submits to itself upon trigger (chained DMA).
  // Multiple chains fire in attachment order — Elan4 events trigger command
  // lists, which is how a FIN to the peer and a completion QDMA to the own
  // shared queue can both hang off one RDMA descriptor.
  void chain(Command cmd) { chained_.push_back(std::move(cmd)); }
  void clear_chain() { chained_.clear(); }
  bool has_chain() const { return !chained_.empty(); }

  // Block the calling fiber until done(). The wakeup is delivered via a
  // device interrupt: params.interrupt_ns elapses between the trigger and
  // the fiber becoming runnable (Table 1's "Interrupt" cost).
  void wait_block();

  // --- NIC side ---
  // One completion arrives. Decrements count; triggers at exactly zero.
  void fire(Status status = Status::kOk);

 private:
  void trigger(Status status);

  sim::Engine& engine_;
  const ModelParams& params_;
  Elan4Nic* nic_;
  std::string name_;
  int count_ = 0;
  bool done_ = false;
  Status status_ = Status::kOk;
  std::uint64_t triggers_ = 0;
  std::uint64_t lost_fires_ = 0;
  std::vector<Command> chained_;
  std::vector<sim::Fiber*> waiters_;
};

}  // namespace oqs::elan4
