#include "elan4/nic.h"

#include <cassert>
#include <cstring>
#include <memory>

#include "base/log.h"
#include "elan4/event.h"
#include "elan4/qsnet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oqs::elan4 {

Elan4Nic::Elan4Nic(QsNet& net, int node, int rail)
    : net_(net), node_(node), rail_(rail) {}

sim::Engine& Elan4Nic::engine() { return net_.engine(); }
const ModelParams& Elan4Nic::params() const { return net_.params(); }
sim::Node* Elan4Nic::host_node() { return &net_.node(node_); }

void Elan4Nic::submit(Command cmd) {
  ++commands_;
  OQS_METRIC_INC("elan4.nic.commands");
  process(std::move(cmd));
}

void Elan4Nic::submit_chained(Command cmd) {
  ++commands_;
  OQS_METRIC_INC("elan4.nic.commands");
  OQS_METRIC_INC("elan4.nic.chained_commands");
  if (auto* q = std::get_if<QdmaCmd>(&cmd)) q->preloaded = true;
  process(std::move(cmd));
}

void Elan4Nic::process(Command&& cmd) {
  std::visit(
      [this](auto&& c) {
        using T = std::decay_t<decltype(c)>;
        if constexpr (std::is_same_v<T, QdmaCmd>)
          do_qdma(std::move(c));
        else if constexpr (std::is_same_v<T, RdmaWriteCmd>)
          do_rdma_write(std::move(c));
        else if constexpr (std::is_same_v<T, RdmaReadCmd>)
          do_rdma_read(std::move(c));
        else
          do_hw_bcast(std::move(c));
      },
      std::move(cmd));
}

QdmaQueue* Elan4Nic::create_queue(std::uint32_t slot_size, std::uint32_t num_slots) {
  const int id = next_queue_id_++;
  auto q = std::make_unique<QdmaQueue>(engine(), params(), &net_.node(node_), id,
                                       slot_size, num_slots);
  QdmaQueue* raw = q.get();
  queues_.emplace(id, std::move(q));
  return raw;
}

Status Elan4Nic::destroy_queue(int id) {
  return queues_.erase(id) > 0 ? Status::kOk : Status::kNotFound;
}

QdmaQueue* Elan4Nic::find_queue(int id) {
  auto it = queues_.find(id);
  return it == queues_.end() ? nullptr : it->second.get();
}

// ---------------------------------------------------------------- QDMA ----

void Elan4Nic::do_qdma(QdmaCmd&& cmd) {
  const ModelParams& p = params();
  if (cmd.src_addr != kNullE4Addr && cmd.src_len > 0) {
    // NIC-read payload (collective descriptors): the DMA engine pulls the
    // bytes from the issuing context's memory when it processes the
    // descriptor, so chained descriptors ship data produced after they were
    // attached. Snapshot here — descriptor-processing time — which is also
    // what makes the combining-tree slot recycling race-free (the slot is
    // reused only a full round after the descriptor ran).
    Status st = Status::kOk;
    const void* host = mmu(net_.context_of(cmd.src_vpid))
                           .translate(cmd.src_addr, cmd.src_len, &st);
    if (!ok(st)) {
      ++translation_faults_;
      OQS_METRIC_INC("elan4.nic.translation_faults");
      E4Event* ev = cmd.local_event;
      const sim::Time done = tx_.reserve(engine().now(), p.nic_qdma_start_ns);
      if (ev != nullptr)
        engine().schedule_at(done, [ev] { ev->fire(Status::kFault); });
      return;
    }
    cmd.data.resize(cmd.src_len);
    std::memcpy(cmd.data.data(), host, cmd.src_len);
  }
  const std::uint32_t len = static_cast<std::uint32_t>(cmd.data.size());
  // Cut-through: the header leaves after descriptor startup while the
  // payload streams behind it; the engine stays busy for the PCI read.
  // Chained (NIC-resident) descriptors skip the host fetch.
  const sim::Time startup =
      cmd.preloaded ? p.nic_chain_fire_ns : p.nic_qdma_start_ns;
  const sim::Time inject_at = tx_.reserve_cut_through(
      engine().now(), startup + ModelParams::xfer_ns(len, p.pci_mbps), startup);

  const sim::Time posted_at = engine().now();
  engine().schedule_at(inject_at, [this, cmd = std::move(cmd), len,
                                   posted_at]() mutable {
    // Local completion: the NIC has read the host buffer and injected.
    OQS_TRACE_SPAN_FROM(posted_at, node_, "elan4", "qdma.inject", "len", len,
                        "dst_vpid", static_cast<std::uint64_t>(cmd.dest_vpid));
    OQS_METRIC_INC("elan4.qdma.posted");
    OQS_METRIC_ADD("elan4.qdma.tx_bytes", len);
    if (cmd.local_event != nullptr) cmd.local_event->fire();
    if (!net_.capability().is_live(cmd.dest_vpid)) {
      ++rx_drops_;
      log::warn("elan4", "QDMA to dead vpid ", cmd.dest_vpid, " dropped");
      return;
    }
    const int dst_node = net_.node_of(cmd.dest_vpid);
    Elan4Nic* dst = &net_.nic(dst_node, rail_);
    const Vpid src = cmd.src_vpid;
    const int queue_id = cmd.dest_queue;
    const auto cls = cmd.lossy ? net::Delivery::kLossy : net::Delivery::kGuaranteed;
    if (cmd.remote_event_index >= 0 || cmd.dest_addr != kNullE4Addr) {
      // Collective delivery: land in context memory / fire the indexed
      // event, bypassing the host receive queues entirely.
      const ContextId dst_ctx = net_.context_of(cmd.dest_vpid);
      const E4Addr dest_addr = cmd.dest_addr;
      const bool combine = cmd.combine;
      const int ev_idx = cmd.remote_event_index;
      net_.fabric().transmit(
          node_, dst_node, len + kQdmaWireHeader,
          [dst, dst_ctx, dest_addr, combine, ev_idx,
           data = std::move(cmd.data)]() mutable {
            dst->rx_coll_qdma(dst_ctx, dest_addr, combine, ev_idx,
                              std::move(data));
          },
          rail_, cls);
      return;
    }
    net_.fabric().transmit(
        node_, dst_node, len + kQdmaWireHeader,
        [dst, src, queue_id, data = std::move(cmd.data)]() mutable {
          dst->rx_qdma(src, queue_id, std::move(data));
        },
        rail_, cls);
  });
}

void Elan4Nic::rx_qdma(Vpid src, int queue_id, std::vector<std::uint8_t> data) {
  const ModelParams& p = params();
  // Cut-through on the way to the host, too: the slot is visible after the
  // fixed write cost; the PCI-X transfer paces back-to-back arrivals.
  const sim::Time done = rx_.reserve_cut_through(
      engine().now(),
      p.nic_slot_write_ns + ModelParams::xfer_ns(data.size(), p.pci_mbps),
      p.nic_slot_write_ns);
  // Fault injection: payload bytes may arrive flipped (headers protected so
  // the upper layer can still attribute the damage).
  net_.maybe_corrupt(data, /*protect_prefix=*/96);
  engine().schedule_at(done, [this, src, queue_id, data = std::move(data)]() mutable {
    OQS_METRIC_ADD("elan4.qdma.rx_bytes", data.size());
    QdmaQueue* q = find_queue(queue_id);
    if (q == nullptr) {
      ++rx_drops_;
      OQS_METRIC_INC("elan4.nic.rx_drops");
      log::warn("elan4", "QDMA for unknown queue ", queue_id, " on node ", node_);
      return;
    }
    q->post(src, std::move(data));
  });
}

void Elan4Nic::rx_coll_qdma(ContextId ctx, E4Addr dest_addr, bool combine,
                            int event_index, std::vector<std::uint8_t> data) {
  const ModelParams& p = params();
  // The NIC processor combines (or lands) the payload itself: startup plus
  // a per-byte rate well below the PCI stream rate — the firmware-reduction
  // cost of the NIC-based collective protocol. No payload corruption here:
  // these frames ride the link-level-protected class like RDMA control
  // traffic (the protocol has no software retransmission to recover with).
  const sim::Time svc =
      data.empty() ? p.nic_event_fire_ns
                   : p.nic_combine_startup_ns +
                         ModelParams::xfer_ns(data.size(), p.nic_combine_mbps);
  const sim::Time done = rx_.reserve(engine().now(), svc);
  engine().schedule_at(done, [this, ctx, dest_addr, combine, event_index,
                              data = std::move(data)]() mutable {
    OQS_METRIC_ADD("elan4.coll.rx_bytes", data.size());
    if (!data.empty() && dest_addr != kNullE4Addr) {
      Status st = Status::kOk;
      void* host = mmu(ctx).translate(dest_addr, data.size(), &st);
      if (!ok(st)) {
        ++translation_faults_;
        OQS_METRIC_INC("elan4.nic.translation_faults");
        return;  // no landing, no completion: the host fallback's job
      }
      if (combine) {
        // Element-wise double-precision sum into the accumulator.
        const std::size_t n = data.size() / sizeof(double);
        auto* acc = static_cast<double*>(host);
        double v;
        for (std::size_t i = 0; i < n; ++i) {
          std::memcpy(&v, data.data() + i * sizeof(double), sizeof(double));
          acc[i] += v;
        }
        OQS_METRIC_INC("elan4.coll.combines");
      } else {
        std::memcpy(host, data.data(), data.size());
      }
    }
    if (event_index >= 0) {
      E4Event* ev = event_at(ctx, event_index);
      if (ev != nullptr) {
        ev->fire();
      } else {
        ++rx_drops_;
        OQS_METRIC_INC("elan4.nic.rx_drops");
      }
    }
  });
}

// ---------------------------------------------------------- RDMA write ----

void Elan4Nic::do_rdma_write(RdmaWriteCmd&& cmd) {
  const ModelParams& p = params();
  const ContextId src_ctx = net_.context_of(cmd.src_vpid);

  Status st = Status::kOk;
  char* src_host = nullptr;
  if (cmd.len > 0) {
    src_host = static_cast<char*>(mmu(src_ctx).translate(cmd.src, cmd.len, &st));
    if (!ok(st)) {
      ++translation_faults_;
      const sim::Time done = tx_.reserve(engine().now(), p.nic_rdma_start_ns);
      E4Event* ev = cmd.local_event;
      if (ev != nullptr)
        engine().schedule_at(done, [ev] { ev->fire(Status::kFault); });
      return;
    }
  }

  if (!net_.capability().is_live(cmd.dest_vpid)) {
    ++rx_drops_;
    E4Event* ev = cmd.local_event;
    if (ev != nullptr)
      engine().schedule(p.nic_rdma_start_ns, [ev] { ev->fire(Status::kUnreachable); });
    return;
  }

  const int dst_node = net_.node_of(cmd.dest_vpid);
  const ContextId dst_ctx = net_.context_of(cmd.dest_vpid);
  Elan4Nic* dst = &net_.nic(dst_node, rail_);

  if (cmd.len == 0) {
    // Degenerate zero-byte write: local completion after descriptor fetch;
    // a bare remote-event packet still crosses the wire if one is attached.
    const sim::Time done = tx_.reserve(engine().now(), p.nic_rdma_start_ns);
    engine().schedule_at(done, [this, cmd, dst]() {
      if (cmd.remote_event != nullptr) {
        net_.fabric().transmit(
            node_, dst->node(), kRdmaWireHeader,
            [dst, ev = cmd.remote_event] { dst->rx_ack(ev, Status::kOk); }, rail_);
      }
      if (cmd.local_event != nullptr) cmd.local_event->fire();
    });
    return;
  }

  if (fluid_eligible(cmd.len)) {
    // The destination window must translate in full for the fluid path: a
    // faulting train takes the per-fragment path so partial landings and
    // the fault status reach the events exactly as the slow path computes
    // them.
    Status dst_st = Status::kOk;
    (void)dst->mmu(dst_ctx).translate(cmd.dst, cmd.len, &dst_st);
    if (ok(dst_st)) {
      OQS_METRIC_INC("elan4.rdma.writes");
      OQS_TRACE_INSTANT(node_, "elan4", "rdma_write.fluid", "len", cmd.len,
                        "dst_vpid", static_cast<std::uint64_t>(cmd.dest_vpid));
      fluid_stream(dst, dst_ctx, cmd.dst, src_host, cmd.len,
                   p.nic_rdma_start_ns + p.nic_mmu_lookup_ns, cmd.remote_event,
                   cmd.local_event, node_);
      return;
    }
  }

  // Fragment to the MTU. Each fragment: PCI read of host memory by the tx
  // engine, then wire injection. The payload is snapshotted at injection
  // time, matching when real hardware reads the host buffer.
  auto fault_seen = std::make_shared<bool>(false);
  std::uint32_t remaining = cmd.len;
  std::uint64_t offset = 0;
  bool first = true;
  sim::Time earliest = engine().now();
  const sim::Time posted_at = engine().now();
  while (remaining > 0) {
    const std::uint32_t frag = remaining < p.mtu ? remaining : p.mtu;
    remaining -= frag;
    const bool last = remaining == 0;
    sim::Time startup = p.nic_frag_ns;
    if (first) startup += p.nic_rdma_start_ns + p.nic_mmu_lookup_ns;
    first = false;
    // Cut-through injection: the fragment header leaves after startup while
    // the payload streams off the host over PCI-X behind it.
    const sim::Time inject_at = tx_.reserve_cut_through(
        earliest, startup + ModelParams::xfer_ns(frag, p.pci_mbps), startup);
    earliest = inject_at;

    const int ack_node = node_;
    engine().schedule_at(inject_at, [this, dst, dst_ctx, frag, offset, last,
                                     src_host, cmd, fault_seen, ack_node,
                                     posted_at]() {
      (void)posted_at;
      OQS_METRIC_ADD("elan4.rdma.tx_bytes", frag);
      if (last) {
        OQS_METRIC_INC("elan4.rdma.writes");
        OQS_TRACE_SPAN_FROM(posted_at, node_, "elan4", "rdma_write.inject",
                            "len", cmd.len, "dst_vpid",
                            static_cast<std::uint64_t>(cmd.dest_vpid));
      }
      std::vector<std::uint8_t> data(frag);
      std::memcpy(data.data(), src_host + offset, frag);
      net_.fabric().transmit(
          node_, dst->node(), frag + kRdmaWireHeader,
          [dst, dst_ctx, cmd, offset, last, fault_seen, ack_node,
           data = std::move(data)]() mutable {
            dst->rx_rdma_payload(dst_ctx, cmd.dst, offset, std::move(data), last,
                                 cmd.remote_event, ack_node, fault_seen,
                                 cmd.local_event);
          },
          rail_);
    });
    offset += frag;
  }
}

void Elan4Nic::rx_rdma_payload(ContextId ctx, E4Addr dst, std::uint64_t offset,
                               std::vector<std::uint8_t> data, bool last,
                               E4Event* remote_event, int ack_node,
                               std::shared_ptr<bool> fault_seen,
                               E4Event* ack_event) {
  const ModelParams& p = params();
  const sim::Time svc =
      p.nic_frag_ns + ModelParams::xfer_ns(data.size(), p.pci_mbps);
  const sim::Time done = rx_.reserve(engine().now(), svc);
  net_.maybe_corrupt(data, /*protect_prefix=*/0);
  engine().schedule_at(done, [this, ctx, dst, offset, data = std::move(data), last,
                              remote_event, ack_node, fault_seen,
                              ack_event]() mutable {
    OQS_METRIC_ADD("elan4.rdma.rx_bytes", data.size());
    Status st = Status::kOk;
    void* host = mmu(ctx).translate(dst + offset, data.size(), &st);
    if (!ok(st)) {
      ++translation_faults_;
      OQS_METRIC_INC("elan4.nic.translation_faults");
      if (fault_seen) *fault_seen = true;
    } else if (!data.empty()) {
      std::memcpy(host, data.data(), data.size());
    }
    if (last) {
      OQS_TRACE_INSTANT(node_, "elan4", "rdma.land", "offset_end",
                        offset + data.size());
      const Status final_st =
          (fault_seen && *fault_seen) ? Status::kFault : Status::kOk;
      if (remote_event != nullptr) remote_event->fire(final_st);
      if (ack_event != nullptr && ack_node >= 0) {
        // Network-level completion ack back to the issuing NIC.
        Elan4Nic* origin = &net_.nic(ack_node, rail_);
        net_.fabric().transmit(
            node_, ack_node, kRdmaAckBytes,
            [origin, ack_event, final_st] { origin->rx_ack(ack_event, final_st); },
            rail_);
      }
    }
  });
}

void Elan4Nic::rx_ack(E4Event* local_event, Status status) {
  const sim::Time done = rx_.reserve(engine().now(), params().nic_event_fire_ns);
  engine().schedule_at(done, [local_event, status] {
    if (local_event != nullptr) local_event->fire(status);
  });
}

// -------------------------------------------------- fluid bulk transfer ----

bool Elan4Nic::fluid_eligible(std::uint32_t len) const {
  const ModelParams& p = params();
  if (!p.fluid_bulk || len <= p.mtu) return false;
  // Any armed fault mechanism forces the per-fragment path: wire rolls and
  // corruption draws must be consumed in per-packet event order or the
  // fault schedule (and with it, replay digests) would desynchronize.
  const net::FaultInjector* f = net_.faults();
  return f == nullptr || f->quiescent();
}

void Elan4Nic::fluid_stream(Elan4Nic* dst, ContextId dst_ctx, E4Addr dst_addr,
                            const char* src_host, std::uint32_t len,
                            sim::Time first_startup, E4Event* remote_event,
                            E4Event* ack_event, int ack_node) {
  const ModelParams& p = params();
  // Predetermine the whole train now. reserve_cut_through, reserve_path and
  // reserve are pure functions of their time arguments and the occupancy
  // state they advance — not of engine().now() — so running the identical
  // call sequence up front yields bit-identical fragment times to the
  // per-fragment path, minus its ~3 simulator events per fragment.
  sim::Time earliest = engine().now();
  sim::Time last_done = earliest;
  std::uint32_t remaining = len;
  bool first = true;
  while (remaining > 0) {
    const std::uint32_t frag = remaining < p.mtu ? remaining : p.mtu;
    remaining -= frag;
    sim::Time startup = p.nic_frag_ns;
    if (first) {
      startup += first_startup;
      first = false;
    }
    const sim::Time inject_at = tx_.reserve_cut_through(
        earliest, startup + ModelParams::xfer_ns(frag, p.pci_mbps), startup);
    earliest = inject_at;
    const sim::Time deliver_at = net_.fabric().reserve_path(
        node_, dst->node(), frag + kRdmaWireHeader, inject_at, rail_);
    last_done = dst->rx_.reserve(
        deliver_at, p.nic_frag_ns + ModelParams::xfer_ns(frag, p.pci_mbps));
  }

  OQS_METRIC_INC("elan4.rdma.fluid_trains");
  engine().schedule_at(last_done, [this, dst, dst_ctx, dst_addr, src_host, len,
                                   remote_event, ack_event, ack_node]() {
    OQS_METRIC_ADD("elan4.rdma.tx_bytes", len);
    OQS_METRIC_ADD("elan4.rdma.rx_bytes", len);
    Status st = Status::kOk;
    void* host = dst->mmu(dst_ctx).translate(dst_addr, len, &st);
    Status final_st = Status::kOk;
    if (!ok(st)) {
      // Eligibility verified the window, so only a mid-flight unmap lands
      // here; report it the way the slow path's last fragment would.
      ++dst->translation_faults_;
      OQS_METRIC_INC("elan4.nic.translation_faults");
      final_st = Status::kFault;
    } else if (len > 0) {
      // The source buffer is stable until the initiator's completion event
      // fires (which is later than this instant), so one bulk copy at
      // landing time is indistinguishable from per-fragment snapshots.
      std::memcpy(host, src_host, len);
    }
    OQS_TRACE_INSTANT(dst->node(), "elan4", "rdma.land", "offset_end",
                      static_cast<std::uint64_t>(len));
    if (remote_event != nullptr) remote_event->fire(final_st);
    if (ack_event != nullptr && ack_node >= 0) {
      Elan4Nic* origin = &net_.nic(ack_node, rail_);
      net_.fabric().transmit(
          dst->node(), ack_node, kRdmaAckBytes,
          [origin, ack_event, final_st] { origin->rx_ack(ack_event, final_st); },
          rail_);
    }
  });
}

// ----------------------------------------------------- hardware bcast ----

void Elan4Nic::do_hw_bcast(HwBcastCmd&& cmd) {
  const ModelParams& p = params();
  const ContextId src_ctx = net_.context_of(cmd.src_vpid);

  Status st = Status::kOk;
  char* src_host = nullptr;
  if (cmd.len > 0) {
    src_host = static_cast<char*>(mmu(src_ctx).translate(cmd.addr, cmd.len, &st));
    if (!ok(st)) {
      ++translation_faults_;
      E4Event* ev = cmd.local_event;
      const sim::Time done = tx_.reserve(engine().now(), p.nic_rdma_start_ns);
      if (ev != nullptr)
        engine().schedule_at(done, [ev] { ev->fire(Status::kFault); });
      return;
    }
  }

  // Resolve the multicast group once; dead members are skipped.
  std::vector<Vpid> members;
  std::vector<int> dst_nodes;
  for (Vpid v : cmd.group) {
    if (!net_.capability().is_live(v)) {
      ++rx_drops_;
      continue;
    }
    members.push_back(v);
    dst_nodes.push_back(net_.node_of(v));
  }

  std::uint32_t remaining = cmd.len;
  std::uint64_t offset = 0;
  bool first = true;
  sim::Time earliest = engine().now();
  do {
    const std::uint32_t frag = remaining < p.mtu ? remaining : p.mtu;
    remaining -= frag;
    const bool last = remaining == 0;
    sim::Time startup = p.nic_frag_ns;
    if (first) startup += p.nic_rdma_start_ns + p.nic_mmu_lookup_ns;
    first = false;
    const sim::Time inject_at = tx_.reserve_cut_through(
        earliest, startup + ModelParams::xfer_ns(frag, p.pci_mbps), startup);
    earliest = inject_at;

    engine().schedule_at(inject_at, [this, cmd, members, dst_nodes, src_host,
                                     frag, offset, last]() {
      std::vector<std::uint8_t> data(frag);
      if (frag > 0) std::memcpy(data.data(), src_host + offset, frag);
      auto shared = std::make_shared<std::vector<std::uint8_t>>(std::move(data));
      net_.fabric().multicast(
          node_, dst_nodes, frag + kRdmaWireHeader,
          [this, cmd, members, dst_nodes, shared, offset, last](std::size_t i) {
            Elan4Nic& dst = net_.nic(dst_nodes[i], rail_);
            dst.rx_hw_bcast(net_.context_of(members[i]), cmd.addr, offset,
                            *shared, last, cmd.event_index);
          },
          rail_);
      if (last && cmd.local_event != nullptr) cmd.local_event->fire();
    });
    offset += frag;
  } while (remaining > 0);
}

void Elan4Nic::rx_hw_bcast(ContextId ctx, E4Addr addr, std::uint64_t offset,
                           std::vector<std::uint8_t> data, bool last,
                           int event_index) {
  const ModelParams& p = params();
  const sim::Time done = rx_.reserve_cut_through(
      engine().now(), p.nic_frag_ns + ModelParams::xfer_ns(data.size(), p.pci_mbps),
      p.nic_frag_ns);
  engine().schedule_at(done, [this, ctx, addr, offset, data = std::move(data),
                              last, event_index]() {
    Status st = Status::kOk;
    if (!data.empty()) {
      void* host = mmu(ctx).translate(addr + offset, data.size(), &st);
      if (!ok(st)) {
        ++translation_faults_;
        return;  // this member never sees the completion event
      }
      std::memcpy(host, data.data(), data.size());
    }
    if (last) {
      E4Event* ev = event_at(ctx, event_index);
      if (ev != nullptr)
        ev->fire();
      else
        ++rx_drops_;
    }
  });
}

// ----------------------------------------------------------- RDMA read ----

void Elan4Nic::do_rdma_read(RdmaReadCmd&& cmd) {
  const ModelParams& p = params();
  const ContextId my_ctx = net_.context_of(cmd.src_vpid);

  // Validate the local landing zone up front (descriptor sanity check).
  Status st = Status::kOk;
  if (cmd.len > 0) {
    (void)mmu(my_ctx).translate(cmd.dst, cmd.len, &st);
    if (!ok(st)) {
      ++translation_faults_;
      E4Event* ev = cmd.local_event;
      const sim::Time done = tx_.reserve(engine().now(), p.nic_rdma_start_ns);
      if (ev != nullptr)
        engine().schedule_at(done, [ev] { ev->fire(Status::kFault); });
      return;
    }
  }

  if (!net_.capability().is_live(cmd.dest_vpid)) {
    ++rx_drops_;
    E4Event* ev = cmd.local_event;
    if (ev != nullptr)
      engine().schedule(p.nic_rdma_start_ns, [ev] { ev->fire(Status::kUnreachable); });
    return;
  }

  const int dst_node = net_.node_of(cmd.dest_vpid);
  Elan4Nic* dst = &net_.nic(dst_node, rail_);

  OQS_TRACE_INSTANT(node_, "elan4", "rdma_read.request", "len", cmd.len,
                    "dst_vpid", static_cast<std::uint64_t>(cmd.dest_vpid));
  OQS_METRIC_INC("elan4.rdma.reads");
  const sim::Time svc = p.nic_rdma_start_ns + p.nic_mmu_lookup_ns;
  const sim::Time sent_at = tx_.reserve(engine().now(), svc);
  engine().schedule_at(sent_at, [this, dst, cmd]() {
    net_.fabric().transmit(
        node_, dst->node(), kRdmaGetBytes, [dst, cmd] { dst->rx_rdma_get(cmd); },
        rail_);
  });
}

void Elan4Nic::rx_rdma_get(RdmaReadCmd cmd) {
  // Runs on the NIC that owns the data; it streams fragments back to the
  // requester exactly like a write, with the requester's local_event fired
  // when the last fragment lands there.
  const ModelParams& p = params();
  const ContextId owner_ctx = net_.context_of(cmd.dest_vpid);
  const int req_node = net_.node_of(cmd.src_vpid);
  const ContextId req_ctx = net_.context_of(cmd.src_vpid);
  Elan4Nic* req = &net_.nic(req_node, rail_);

  Status st = Status::kOk;
  char* src_host = nullptr;
  if (cmd.len > 0) {
    src_host = static_cast<char*>(mmu(owner_ctx).translate(cmd.src, cmd.len, &st));
  }
  if (!ok(st)) {
    ++translation_faults_;
    const sim::Time done = rx_.reserve(engine().now(), p.nic_rdma_read_req_ns);
    engine().schedule_at(done, [this, req, cmd] {
      net_.fabric().transmit(
          node_, req->node(), kRdmaAckBytes,
          [req, ev = cmd.local_event] { req->rx_ack(ev, Status::kFault); }, rail_);
    });
    return;
  }

  if (cmd.len == 0) {
    const sim::Time done = rx_.reserve(engine().now(), p.nic_rdma_read_req_ns);
    engine().schedule_at(done, [this, req, cmd] {
      net_.fabric().transmit(
          node_, req->node(), kRdmaAckBytes,
          [req, ev = cmd.local_event] { req->rx_ack(ev, Status::kOk); }, rail_);
    });
    return;
  }

  if (fluid_eligible(cmd.len)) {
    // Stream-back mirrors the write fast path; the requester's landing zone
    // was validated when the GET was issued. The requester's local_event
    // rides as the train's remote event (fires where the data lands).
    OQS_TRACE_INSTANT(node_, "elan4", "rdma_read.stream_back", "len", cmd.len);
    fluid_stream(req, req_ctx, cmd.dst, src_host, cmd.len,
                 p.nic_rdma_read_req_ns + p.nic_mmu_lookup_ns, cmd.local_event,
                 /*ack_event=*/nullptr, /*ack_node=*/-1);
    return;
  }

  auto fault_seen = std::make_shared<bool>(false);
  std::uint32_t remaining = cmd.len;
  std::uint64_t offset = 0;
  bool first = true;
  sim::Time earliest = engine().now();
  while (remaining > 0) {
    const std::uint32_t frag = remaining < p.mtu ? remaining : p.mtu;
    remaining -= frag;
    const bool last = remaining == 0;
    sim::Time startup = p.nic_frag_ns;
    if (first) startup += p.nic_rdma_read_req_ns + p.nic_mmu_lookup_ns;
    first = false;
    const sim::Time inject_at = tx_.reserve_cut_through(
        earliest, startup + ModelParams::xfer_ns(frag, p.pci_mbps), startup);
    earliest = inject_at;

    engine().schedule_at(inject_at, [this, req, req_ctx, frag, offset, last,
                                     src_host, cmd, fault_seen]() {
      // Read-backs cross the wire as RDMA payload, so they enter the same
      // tx/rx byte counters as writes (conservation holds across schemes).
      OQS_METRIC_ADD("elan4.rdma.tx_bytes", frag);
      if (last)
        OQS_TRACE_INSTANT(node_, "elan4", "rdma_read.stream_back", "len",
                          cmd.len);
      std::vector<std::uint8_t> data(frag);
      std::memcpy(data.data(), src_host + offset, frag);
      net_.fabric().transmit(
          node_, req->node(), frag + kRdmaWireHeader,
          [req, req_ctx, cmd, offset, last, fault_seen,
           data = std::move(data)]() mutable {
            req->rx_rdma_payload(req_ctx, cmd.dst, offset, std::move(data), last,
                                 cmd.local_event, /*ack_node=*/-1, fault_seen,
                                 /*ack_event=*/nullptr);
          },
          rail_);
    });
    offset += frag;
  }
}

}  // namespace oqs::elan4
