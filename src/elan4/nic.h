// The Elan4 NIC model.
//
// Each NIC has a serial transmit engine (descriptor fetch, host-memory reads
// over PCI-X, packet injection) and a serial receive engine (packet landing,
// host-memory writes). Commands are posted by the host (or by chained
// events) and serviced in order; large RDMA transfers are fragmented to the
// wire MTU, so PCI-X and link bandwidth limits and their pipelining are
// emergent rather than curve-fit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "base/params.h"
#include "base/status.h"
#include "elan4/commands.h"
#include "elan4/e4_types.h"
#include "elan4/mmu.h"
#include "elan4/qdma.h"
#include "sim/engine.h"

namespace oqs::elan4 {

class QsNet;
class E4Event;

// Wire overheads (bytes) added to payloads on the fabric.
constexpr std::uint32_t kQdmaWireHeader = 32;
constexpr std::uint32_t kRdmaWireHeader = 24;
constexpr std::uint32_t kRdmaAckBytes = 16;
constexpr std::uint32_t kRdmaGetBytes = 64;

// A serialized NIC resource: requests are serviced FIFO at full rate.
class SerialEngine {
 public:
  sim::Time reserve(sim::Time earliest, sim::Time service) {
    const sim::Time start = earliest > free_at_ ? earliest : free_at_;
    free_at_ = start + service;
    busy_ns_ += service;
    return free_at_;  // completion time
  }

  // Cut-through service: the unit becomes visible downstream `visible` ns
  // after service starts, while the engine stays occupied for `occupy` ns
  // (e.g. the PCI-X read of the payload). Streams this way pay startup
  // latency once but are still paced at the engine's real rate.
  sim::Time reserve_cut_through(sim::Time earliest, sim::Time occupy,
                                sim::Time visible) {
    const sim::Time start = earliest > free_at_ ? earliest : free_at_;
    free_at_ = start + occupy;
    busy_ns_ += occupy;
    return start + visible;
  }

  sim::Time free_at() const { return free_at_; }
  sim::Time busy_ns() const { return busy_ns_; }

 private:
  sim::Time free_at_ = 0;
  sim::Time busy_ns_ = 0;
};

class Elan4Nic {
 public:
  Elan4Nic(QsNet& net, int node, int rail);
  Elan4Nic(const Elan4Nic&) = delete;
  Elan4Nic& operator=(const Elan4Nic&) = delete;

  int node() const { return node_; }
  int rail() const { return rail_; }

  // Post a command from the host (host-side posting cost is charged by the
  // device layer before calling this).
  void submit(Command cmd);
  // Post a command from a chained event: the NIC hands it to itself after
  // the chain-fire cost, with no host involvement.
  void submit_chained(Command cmd);

  QdmaQueue* create_queue(std::uint32_t slot_size, std::uint32_t num_slots);
  Status destroy_queue(int id);
  QdmaQueue* find_queue(int id);
  sim::Node* host_node();

  Mmu& mmu(ContextId ctx) { return mmus_[ctx]; }

  // Global event table: events allocated in symmetric order get the same
  // index in every context — the "global virtual address space" analogue
  // that hardware broadcast completion relies on (paper §4.1). Freed slots
  // go on a per-context free list and the lowest index is reused first, so
  // symmetric alloc/free histories keep yielding symmetric indices.
  int register_event(ContextId ctx, E4Event* ev) {
    auto& tab = event_table_[ctx];
    auto& free = event_free_[ctx];
    if (!free.empty()) {
      const int idx = *free.begin();
      free.erase(free.begin());
      tab[static_cast<std::size_t>(idx)] = ev;
      return idx;
    }
    tab.push_back(ev);
    return static_cast<int>(tab.size()) - 1;
  }
  // Release a table slot. In-flight completions targeting the index resolve
  // to nullptr (and count as rx_drops) — callers quiesce first.
  void unregister_event(ContextId ctx, int index) {
    auto it = event_table_.find(ctx);
    if (it == event_table_.end() || index < 0 ||
        index >= static_cast<int>(it->second.size()))
      return;
    it->second[static_cast<std::size_t>(index)] = nullptr;
    event_free_[ctx].insert(index);
  }
  E4Event* event_at(ContextId ctx, int index) {
    auto it = event_table_.find(ctx);
    if (it == event_table_.end() || index < 0 ||
        index >= static_cast<int>(it->second.size()))
      return nullptr;
    return it->second[static_cast<std::size_t>(index)];
  }
  // Diagnostics for leak regression tests: table extent and live entries.
  std::size_t event_table_size(ContextId ctx) const {
    auto it = event_table_.find(ctx);
    return it == event_table_.end() ? 0 : it->second.size();
  }
  std::size_t event_table_live(ContextId ctx) const {
    auto it = event_table_.find(ctx);
    if (it == event_table_.end()) return 0;
    std::size_t live = 0;
    for (const E4Event* ev : it->second) live += ev != nullptr ? 1 : 0;
    return live;
  }

  // Diagnostics.
  std::uint64_t commands() const { return commands_; }
  std::uint64_t rx_drops() const { return rx_drops_; }
  std::uint64_t translation_faults() const { return translation_faults_; }
  const SerialEngine& tx_engine() const { return tx_; }
  const SerialEngine& rx_engine() const { return rx_; }
  // NIC-firmware extensions (e.g. the Tport engine) share the DMA engines.
  SerialEngine& tx_engine_mut() { return tx_; }
  SerialEngine& rx_engine_mut() { return rx_; }

 private:
  friend class QsNet;

  void process(Command&& cmd);
  void do_qdma(QdmaCmd&& cmd);
  void do_rdma_write(RdmaWriteCmd&& cmd);
  void do_rdma_read(RdmaReadCmd&& cmd);

  // --- Fluid bulk-transfer fast path (params().fluid_bulk) ---
  // A multi-fragment RDMA train whose fault machinery is quiescent has a
  // fully predetermined timeline: every tx/rx/link reserve is a pure
  // function of its time arguments, so the whole train can be accounted
  // up front and collapsed into ONE completion event instead of ~3 events
  // per fragment. Timing and delivered bytes are identical to the
  // per-fragment path in the uncontended model (fluid_test proves both);
  // under contention links arbitrate at train rather than fragment
  // granularity. Falls back automatically whenever ineligible.
  bool fluid_eligible(std::uint32_t len) const;
  // Streams `len` bytes from src_host (already translated on the owning
  // node) into (dst_ctx, dst_addr) on `dst`'s node. `first_startup` is the
  // extra tx-engine cost of the first fragment. At completion time the
  // payload lands, `remote_event` fires on dst, and — for writes — an ack
  // crosses back to `ack_node` where `ack_event` fires.
  void fluid_stream(Elan4Nic* dst, ContextId dst_ctx, E4Addr dst_addr,
                    const char* src_host, std::uint32_t len,
                    sim::Time first_startup, E4Event* remote_event,
                    E4Event* ack_event, int ack_node);
  void do_hw_bcast(HwBcastCmd&& cmd);
  void rx_hw_bcast(ContextId ctx, E4Addr addr, std::uint64_t offset,
                   std::vector<std::uint8_t> data, bool last, int event_index);

  // Receive-side handlers (run on the destination NIC at wire-tail arrival).
  void rx_qdma(Vpid src, int queue_id, std::vector<std::uint8_t> data);
  // Collective-QDMA landing: combine/copy into context memory, fire the
  // indexed event (no host queue involved).
  void rx_coll_qdma(ContextId ctx, E4Addr dest_addr, bool combine,
                    int event_index, std::vector<std::uint8_t> data);
  // Lands one RDMA fragment. On the last fragment: fires remote_event here,
  // and if ack_event is set, sends a completion ack to ack_node where
  // ack_event is fired (RDMA-write local completion).
  void rx_rdma_payload(ContextId ctx, E4Addr dst, std::uint64_t offset,
                       std::vector<std::uint8_t> data, bool last,
                       E4Event* remote_event, int ack_node,
                       std::shared_ptr<bool> fault_seen, E4Event* ack_event);
  void rx_rdma_get(RdmaReadCmd cmd);
  void rx_ack(E4Event* local_event, Status status);

  sim::Engine& engine();
  const ModelParams& params() const;

  QsNet& net_;
  int node_;
  int rail_;
  SerialEngine tx_;
  SerialEngine rx_;
  std::map<ContextId, Mmu> mmus_;
  std::map<ContextId, std::vector<E4Event*>> event_table_;
  std::map<ContextId, std::set<int>> event_free_;
  std::map<int, std::unique_ptr<QdmaQueue>> queues_;
  int next_queue_id_ = 1;
  std::uint64_t commands_ = 0;
  std::uint64_t rx_drops_ = 0;
  std::uint64_t translation_faults_ = 0;
};

}  // namespace oqs::elan4
