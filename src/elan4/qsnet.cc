#include "elan4/qsnet.h"

#include "base/log.h"
#include "elan4/device.h"

namespace oqs::elan4 {

QsNet::QsNet(sim::Engine& engine, const ModelParams& params, int nodes,
             int contexts_per_node, int rails)
    : engine_(engine),
      params_(params),
      rails_(rails),
      capability_(nodes, contexts_per_node) {
  fabric_ = std::make_unique<net::Fabric>(engine_, params_, nodes, rails);
  eth_ = std::make_unique<net::EthNet>(engine_, params_);
  for (int i = 0; i < nodes; ++i)
    nodes_.push_back(std::make_unique<sim::Node>(engine_, i, params_));
  for (int i = 0; i < nodes; ++i)
    for (int r = 0; r < rails; ++r)
      nics_.push_back(std::make_unique<Elan4Nic>(*this, i, r));

  // ModelParams can pre-arm the injector (bench flags route through here).
  net::FaultProfile from_params;
  from_params.drop = params_.fault_drop_prob;
  from_params.corrupt = params_.fault_corrupt_prob;
  from_params.duplicate = params_.fault_duplicate_prob;
  from_params.delay = params_.fault_delay_prob;
  from_params.delay_ns = params_.fault_delay_ns;
  if (from_params.any()) set_faults(from_params, params_.fault_seed);
}

QsNet::~QsNet() = default;

void QsNet::set_faults(const net::FaultProfile& profile, std::uint64_t seed) {
  if (!profile.any()) {
    faults_.reset();
    fabric_->set_fault_injector(nullptr);
    return;
  }
  faults_ = std::make_unique<net::FaultInjector>(profile, seed);
  fabric_->set_fault_injector(faults_.get());
}

void QsNet::set_corruption(double prob, std::uint64_t seed) {
  net::FaultProfile profile;
  profile.corrupt = prob;
  set_faults(profile, seed);
}

void QsNet::kill_rail(int rail) {
  // Not routed through set_faults: that call resets the injector for an
  // empty profile, which would resurrect previously-killed rails.
  if (faults_ == nullptr) {
    faults_ = std::make_unique<net::FaultInjector>(net::FaultProfile{},
                                                   params_.fault_seed);
    fabric_->set_fault_injector(faults_.get());
  }
  log::warn("elan4", "rail ", rail, " marked dead");
  faults_->set_rail_dead(rail);
}

bool QsNet::maybe_corrupt(std::vector<std::uint8_t>& data,
                          std::size_t protect_prefix) {
  if (faults_ == nullptr) return false;
  return faults_->corrupt(data, protect_prefix);
}

std::unique_ptr<Elan4Device> QsNet::open(int node, int rail) {
  const Vpid vpid = capability_.claim(node);
  if (vpid == kInvalidVpid) {
    log::warn("elan4", "no free context on node ", node);
    return nullptr;
  }
  log::debug("elan4", "node ", node, " claimed vpid ", vpid, " (rail ", rail, ")");
  return std::make_unique<Elan4Device>(*this, node, rail, vpid);
}

}  // namespace oqs::elan4
