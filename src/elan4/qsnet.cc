#include "elan4/qsnet.h"

#include "base/log.h"
#include "elan4/device.h"

namespace oqs::elan4 {

QsNet::QsNet(sim::Engine& engine, const ModelParams& params, int nodes,
             int contexts_per_node, int rails)
    : engine_(engine),
      params_(params),
      rails_(rails),
      capability_(nodes, contexts_per_node) {
  fabric_ = std::make_unique<net::Fabric>(engine_, params_, nodes, rails);
  eth_ = std::make_unique<net::EthNet>(engine_, params_);
  for (int i = 0; i < nodes; ++i)
    nodes_.push_back(std::make_unique<sim::Node>(engine_, i, params_));
  for (int i = 0; i < nodes; ++i)
    for (int r = 0; r < rails; ++r)
      nics_.push_back(std::make_unique<Elan4Nic>(*this, i, r));
}

QsNet::~QsNet() = default;

void QsNet::set_corruption(double prob, std::uint64_t seed) {
  corruption_prob_ = prob;
  corruption_rng_ = prob > 0.0 ? std::make_unique<sim::Rng>(seed) : nullptr;
}

bool QsNet::maybe_corrupt(std::vector<std::uint8_t>& data,
                          std::size_t protect_prefix) {
  if (corruption_rng_ == nullptr || data.size() <= protect_prefix) return false;
  if (!corruption_rng_->chance(corruption_prob_)) return false;
  const std::size_t idx =
      corruption_rng_->uniform(protect_prefix, data.size() - 1);
  const int bit = static_cast<int>(corruption_rng_->uniform(0, 7));
  data[idx] ^= static_cast<std::uint8_t>(1 << bit);
  ++corruptions_;
  return true;
}

std::unique_ptr<Elan4Device> QsNet::open(int node, int rail) {
  const Vpid vpid = capability_.claim(node);
  if (vpid == kInvalidVpid) {
    log::warn("elan4", "no free context on node ", node);
    return nullptr;
  }
  log::debug("elan4", "node ", node, " claimed vpid ", vpid, " (rail ", rail, ")");
  return std::make_unique<Elan4Device>(*this, node, rail, vpid);
}

}  // namespace oqs::elan4
