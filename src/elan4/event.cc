#include "elan4/event.h"

#include "base/log.h"
#include "elan4/nic.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oqs::elan4 {

E4Event::E4Event(sim::Engine& engine, const ModelParams& params, Elan4Nic* nic,
                 std::string name)
    : engine_(engine), params_(params), nic_(nic), name_(std::move(name)) {}

void E4Event::wait_block() {
  while (!done_) {
    waiters_.push_back(engine_.current());
    engine_.park();
  }
}

void E4Event::fire(Status status) {
  if (count_ <= 0) {
    // Hardware behaviour: a completion landing on a spent event is lost
    // (paper Fig. 5d) — the count goes negative and nothing triggers.
    --count_;
    ++lost_fires_;
    OQS_METRIC_INC("elan4.event.lost_fires");
    log::debug("elan4", "event '", name_, "' lost a fire (count now ", count_, ")");
    return;
  }
  --count_;
  if (count_ == 0) trigger(status);
}

void E4Event::trigger(Status status) {
  done_ = true;
  status_ = status;
  ++triggers_;
  OQS_METRIC_INC("elan4.event.triggers");
  OQS_TRACE_INSTANT(nic_ != nullptr ? nic_->node() : -1, "elan4",
                    "event.trigger", "chained", chained_.size(), "waiters",
                    waiters_.size());
  if (!chained_.empty() && nic_ != nullptr) {
    OQS_METRIC_ADD("elan4.event.chain_fires", chained_.size());
    // The NIC launches the chained commands itself; no host round trip.
    std::vector<Command> cmds = std::move(chained_);
    chained_.clear();
    Elan4Nic* nic = nic_;
    sim::Time delay = params_.nic_chain_fire_ns;
    for (Command& cmd : cmds) {
      engine_.schedule(delay, [nic, cmd = std::move(cmd)]() mutable {
        nic->submit_chained(std::move(cmd));
      });
      delay += params_.nic_chain_fire_ns;
    }
  }
  if (!waiters_.empty()) {
    // Interrupt-driven wakeup; concurrent IRQs serialize on the node.
    sim::Time delay = params_.interrupt_ns;
    if (nic_ != nullptr) {
      sim::Node* node = nic_->host_node();
      const sim::Time svc = params_.irq_service_ns < params_.interrupt_ns
                                ? params_.irq_service_ns
                                : params_.interrupt_ns;
      const sim::Time done = node->irq_reserve(engine_.now(), svc);
      delay = (done - engine_.now()) + (params_.interrupt_ns - svc);
    }
    std::vector<sim::Fiber*> batch;
    batch.swap(waiters_);
    for (sim::Fiber* f : batch) engine_.unpark(f, delay);
  }
}

}  // namespace oqs::elan4
