// Host-side QDMA receive queue.
//
// A ring of fixed-size slots ("QSLOTS", 2 KB each in the paper). Remote
// processes post small messages into it; the NIC lands each message in the
// next free slot and bumps the queue's host event. Any process may post into
// any queue it can address — this shared property is what the paper exploits
// for the shared completion queue (§4.3): QDMAs chained to RDMA descriptors
// all land in one queue, so one thread can block for many RDMAs.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "base/params.h"
#include "elan4/e4_types.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/engine.h"
#include "sim/node.h"

namespace oqs::elan4 {

class QdmaQueue {
 public:
  struct Slot {
    Vpid src = kInvalidVpid;
    std::vector<std::uint8_t> data;
  };

  QdmaQueue(sim::Engine& engine, const ModelParams& params, sim::Node* node,
            int id, std::uint32_t slot_size, std::uint32_t num_slots)
      : engine_(engine),
        params_(params),
        node_(node),
        id_(id),
        slot_size_(slot_size),
        num_slots_(num_slots) {}

  int id() const { return id_; }
  std::uint32_t slot_size() const { return slot_size_; }
  std::uint32_t num_slots() const { return num_slots_; }

  bool has_pending() const { return !ring_.empty(); }
  std::size_t pending() const { return ring_.size(); }
  std::uint64_t total_posted() const { return posted_; }
  std::uint64_t overflows() const { return overflows_; }

  // Host: take the oldest message (caller charged poll/copy costs at the
  // device layer). Returns false when the ring is empty.
  bool consume(Slot* out) {
    if (ring_.empty()) return false;
    *out = std::move(ring_.front());
    ring_.pop_front();
    obs::metrics().gauge("elan4.qdma.occupancy").fall();
    return true;
  }

  // Host: block the calling fiber until a message is pending. Wakeup goes
  // through the device interrupt path (params.interrupt_ns after the post).
  void wait_block() {
    while (ring_.empty()) {
      waiters_.push_back(engine_.current());
      engine_.park();
    }
  }

  // NIC: land a message. Ring overflow drops the message (hardware would
  // back-pressure the wire; upper layers size queues to avoid this, and
  // tests assert overflows() == 0).
  void post(Vpid src, std::vector<std::uint8_t> data) {
    if (ring_.size() >= num_slots_) {
      ++overflows_;
      OQS_METRIC_INC("elan4.qdma.overflows");
      return;
    }
    ring_.push_back(Slot{src, std::move(data)});
    ++posted_;
    OQS_METRIC_INC("elan4.qdma.landed");
    // Aggregate occupancy across all queues; per-queue depth goes to the
    // depth gauge's high-water mark (tests assert hiwater <= num_slots).
    obs::metrics().gauge("elan4.qdma.occupancy").rise();
    obs::metrics().gauge("elan4.qdma.depth").set(
        static_cast<std::int64_t>(ring_.size()));
    OQS_TRACE_INSTANT(node_ != nullptr ? node_->id() : -1, "elan4", "qdma.land",
                      "queue", static_cast<std::uint64_t>(id_), "depth",
                      ring_.size());
    if (waiters_.empty()) return;
    // Interrupt-driven wakeup; concurrent IRQs serialize on the node.
    sim::Time delay = params_.interrupt_ns;
    if (node_ != nullptr) {
      const sim::Time svc =
          params_.irq_service_ns < params_.interrupt_ns ? params_.irq_service_ns
                                                        : params_.interrupt_ns;
      const sim::Time done = node_->irq_reserve(engine_.now(), svc);
      delay = (done - engine_.now()) + (params_.interrupt_ns - svc);
    }
    std::vector<sim::Fiber*> batch;
    batch.swap(waiters_);
    for (sim::Fiber* f : batch) engine_.unpark(f, delay);
  }

 private:
  sim::Engine& engine_;
  const ModelParams& params_;
  sim::Node* node_;
  int id_;
  std::uint32_t slot_size_;
  std::uint32_t num_slots_;
  std::deque<Slot> ring_;
  std::vector<sim::Fiber*> waiters_;
  std::uint64_t posted_ = 0;
  std::uint64_t overflows_ = 0;
};

}  // namespace oqs::elan4
