// System-wide Elan4 capability with dynamic context claiming.
//
// Stock libelan allocates a static pool: every process gets a VPID at job
// start and membership never changes. The paper's PTL instead lets a process
// "join the Quadrics network dynamically and individually by claiming an
// available context in a system-wide Elan4 capability" (§5). This class is
// that capability: a table of (node, context) slots; claiming one yields a
// VPID, releasing it returns the slot for reuse (checkpoint/restart,
// MPI-2 spawn).
#pragma once

#include <vector>

#include "base/status.h"
#include "elan4/e4_types.h"

namespace oqs::elan4 {

class SystemCapability {
 public:
  SystemCapability(int num_nodes, int contexts_per_node);

  int num_nodes() const { return num_nodes_; }
  int contexts_per_node() const { return contexts_per_node_; }

  // Claim any free context on `node`; returns the VPID or kInvalidVpid when
  // the node's contexts are exhausted.
  Vpid claim(int node);
  // Release a previously claimed VPID. Idempotent release is an error.
  Status release(Vpid vpid);

  bool is_live(Vpid vpid) const;
  int node_of(Vpid vpid) const;
  ContextId context_of(Vpid vpid) const;
  int live_count() const { return live_; }

 private:
  int index_of(Vpid vpid) const { return static_cast<int>(vpid); }

  int num_nodes_;
  int contexts_per_node_;
  std::vector<bool> claimed_;  // indexed by vpid = node * contexts + ctx
  int live_ = 0;
};

}  // namespace oqs::elan4
