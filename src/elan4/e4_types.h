// Core Elan4 identifier types.
#pragma once

#include <cstdint>

namespace oqs::elan4 {

// NIC-visible virtual address (the paper's "E4_Addr"): RDMA descriptors must
// present source/destination addresses in this format; the NIC MMU
// translates them to host memory.
using E4Addr = std::uint64_t;
constexpr E4Addr kNullE4Addr = 0;

// Quadrics virtual process id: network-level addressing. Decoupled from the
// MPI rank (paper §4.1) — ranks are an MPI-communicator property, VPIDs are
// a hardware-capability property.
using Vpid = std::int32_t;
constexpr Vpid kInvalidVpid = -1;

// Hardware context within one NIC.
using ContextId = std::int32_t;
constexpr ContextId kInvalidContext = -1;

}  // namespace oqs::elan4
