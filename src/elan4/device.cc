#include "elan4/device.h"

#include <algorithm>
#include <cassert>

#include "base/log.h"
#include "elan4/qsnet.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oqs::elan4 {

Elan4Device::Elan4Device(QsNet& net, int node, int rail, Vpid vpid)
    : net_(net), node_(node), rail_(rail), vpid_(vpid),
      ctx_(net.context_of(vpid)) {}

Elan4Device::~Elan4Device() {
  if (!closed_) close();
}

Elan4Nic& Elan4Device::nic() { return net_.nic(node_, rail_); }
const ModelParams& Elan4Device::params() const { return net_.params(); }

void Elan4Device::compute(sim::Time ns) { net_.node(node_).cpu().compute(ns); }

E4Event* Elan4Device::alloc_event(std::string name) {
  auto owned = std::make_unique<E4Event>(net_.engine(), params(), &nic(),
                                         std::move(name));
  E4Event* ev = owned.get();
  last_event_index_ = nic().register_event(ctx_, ev);
  events_.push_back({std::move(owned), last_event_index_});
  return ev;
}

Status Elan4Device::free_event(E4Event* ev) {
  for (auto it = events_.begin(); it != events_.end(); ++it) {
    if (it->ev.get() != ev) continue;
    nic().unregister_event(ctx_, it->index);
    events_.erase(it);
    return Status::kOk;
  }
  return Status::kNotFound;
}

int Elan4Device::event_index(const E4Event* ev) const {
  for (const EventEntry& e : events_)
    if (e.ev.get() == ev) return e.index;
  return -1;
}

Status Elan4Device::set_event(E4Event* ev) {
  if (closed_) return Status::kShutdown;
  compute(params().host_pio_write_ns);
  E4Event* target = ev;
  net_.engine().schedule(params().nic_event_fire_ns,
                         [target] { target->fire(); });
  return Status::kOk;
}

E4Addr Elan4Device::map(void* host, std::size_t len) {
  // Host builds the page-table entries: a fixed lookup-slot charge plus a
  // per-page registration cost — the part the pipelined rendezvous overlaps
  // with transfer by mapping one fragment while the previous one streams.
  compute(params().nic_mmu_lookup_ns +
          params().nic_mmu_map_page_ns *
              static_cast<sim::Time>(Mmu::pages_for(len)));
  OQS_METRIC_INC("elan4.mmu.maps");
  OQS_TRACE_INSTANT(node_, "elan4", "mmu.map", "len", len);
  return nic().mmu(ctx_).map(host, len);
}

Status Elan4Device::unmap(E4Addr addr) { return nic().mmu(ctx_).unmap(addr); }

QdmaQueue* Elan4Device::create_queue(std::uint32_t num_slots, std::uint32_t slot_size) {
  QdmaQueue* q = nic().create_queue(slot_size, num_slots);
  my_queues_.push_back(q->id());
  return q;
}

Status Elan4Device::destroy_queue(QdmaQueue* q) {
  assert(q != nullptr);
  std::erase(my_queues_, q->id());
  return nic().destroy_queue(q->id());
}

Status Elan4Device::post_qdma(Vpid dest, int queue_id,
                              std::span<const std::uint8_t> data,
                              E4Event* local_event, bool lossy) {
  if (closed_) return Status::kShutdown;
  if (data.size() > 2048) return Status::kBadParam;  // QDMA hard limit
  compute(params().host_qdma_post_ns);
  QdmaCmd cmd;
  cmd.src_vpid = vpid_;
  cmd.dest_vpid = dest;
  cmd.dest_queue = queue_id;
  cmd.data.assign(data.begin(), data.end());
  cmd.local_event = local_event;
  cmd.lossy = lossy;
  nic().submit(std::move(cmd));
  return Status::kOk;
}

Status Elan4Device::post_coll_qdma(Vpid dest, E4Addr src_addr,
                                   std::uint32_t len, E4Addr dest_addr,
                                   bool combine, int remote_event_index,
                                   E4Event* local_event) {
  if (closed_) return Status::kShutdown;
  if (len > 2048) return Status::kBadParam;  // QDMA hard limit
  compute(params().host_qdma_post_ns);
  QdmaCmd cmd;
  cmd.src_vpid = vpid_;
  cmd.dest_vpid = dest;
  cmd.dest_queue = -1;
  cmd.src_addr = src_addr;
  cmd.src_len = len;
  cmd.dest_addr = dest_addr;
  cmd.combine = combine;
  cmd.remote_event_index = remote_event_index;
  cmd.local_event = local_event;
  nic().submit(std::move(cmd));
  return Status::kOk;
}

bool Elan4Device::queue_poll(QdmaQueue* q, QdmaQueue::Slot* out) {
  charge_poll();
  return q->consume(out);
}

void Elan4Device::queue_wait(QdmaQueue* q) {
  compute(params().host_event_wait_setup_ns);
  q->wait_block();
}

Status Elan4Device::rdma_write(Vpid dest, E4Addr local_src, E4Addr remote_dst,
                               std::uint32_t len, E4Event* local_event,
                               E4Event* remote_event) {
  if (closed_) return Status::kShutdown;
  compute(params().host_rdma_post_ns);
  OQS_TRACE_INSTANT(node_, "elan4", "rdma_write.post", "len", len);
  RdmaWriteCmd cmd;
  cmd.src_vpid = vpid_;
  cmd.dest_vpid = dest;
  cmd.src = local_src;
  cmd.dst = remote_dst;
  cmd.len = len;
  cmd.local_event = local_event;
  cmd.remote_event = remote_event;
  nic().submit(std::move(cmd));
  return Status::kOk;
}

Status Elan4Device::rdma_read(Vpid dest, E4Addr remote_src, E4Addr local_dst,
                              std::uint32_t len, E4Event* local_event) {
  if (closed_) return Status::kShutdown;
  compute(params().host_rdma_post_ns);
  OQS_TRACE_INSTANT(node_, "elan4", "rdma_read.post", "len", len);
  RdmaReadCmd cmd;
  cmd.src_vpid = vpid_;
  cmd.dest_vpid = dest;
  cmd.src = remote_src;
  cmd.dst = local_dst;
  cmd.len = len;
  cmd.local_event = local_event;
  nic().submit(std::move(cmd));
  return Status::kOk;
}

Status Elan4Device::hw_broadcast(const std::vector<Vpid>& group, E4Addr addr,
                                 std::uint32_t len, int event_index,
                                 E4Event* local_event) {
  if (closed_) return Status::kShutdown;
  compute(params().host_rdma_post_ns);
  HwBcastCmd cmd;
  cmd.src_vpid = vpid_;
  cmd.group = group;
  cmd.addr = addr;
  cmd.len = len;
  cmd.event_index = event_index;
  cmd.local_event = local_event;
  nic().submit(std::move(cmd));
  return Status::kOk;
}

void Elan4Device::charge_copy(std::size_t bytes) {
  compute(params().host_memcpy_startup_ns +
          ModelParams::xfer_ns(bytes, params().host_memcpy_mbps));
}

void Elan4Device::charge_poll() { compute(params().host_poll_ns); }

void Elan4Device::close() {
  if (closed_) return;
  for (int id : my_queues_) nic().destroy_queue(id);
  my_queues_.clear();
  net_.capability().release(vpid_);
  closed_ = true;
}

}  // namespace oqs::elan4
