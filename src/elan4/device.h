// Host-process handle to an Elan4 NIC context — the libelan4 analogue.
//
// Every operation is called from a simulated process fiber and charges the
// host software-path cost on that node's CPU before touching the NIC, so
// host-side overheads show up in latency and contend for cores with
// progress threads.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/params.h"
#include "base/status.h"
#include "elan4/event.h"
#include "elan4/nic.h"
#include "elan4/qdma.h"

namespace oqs::elan4 {

class QsNet;

class Elan4Device {
 public:
  Elan4Device(QsNet& net, int node, int rail, Vpid vpid);
  ~Elan4Device();
  Elan4Device(const Elan4Device&) = delete;
  Elan4Device& operator=(const Elan4Device&) = delete;

  QsNet& net() { return net_; }
  int node() const { return node_; }
  int rail() const { return rail_; }
  Vpid vpid() const { return vpid_; }
  ContextId context() const { return ctx_; }
  Elan4Nic& nic();
  const ModelParams& params() const;
  bool closed() const { return closed_; }

  // Charge host CPU time on this node (application or library work).
  void compute(sim::Time ns);

  // --- Events (allocated in "elan memory"; live until close() or an
  // explicit free_event()) ---
  // Events are also registered in the NIC's per-context global event table;
  // symmetric allocation order across processes yields matching indices.
  // free_event() returns the table slot to a free list (lowest index reused
  // first), so symmetric alloc/free histories stay index-aligned. The
  // caller must quiesce completions targeting the event first.
  E4Event* alloc_event(std::string name);
  Status free_event(E4Event* ev);
  int last_event_index() const { return last_event_index_; }
  // Table index of one of this device's live events; -1 if not found.
  int event_index(const E4Event* ev) const;
  // Host SETEVENT command: one PIO word, then the NIC fires `ev` (the cheap
  // host->NIC arrival signal of the NIC-offloaded collectives).
  Status set_event(E4Event* ev);

  // --- Memory registration ---
  E4Addr map(void* host, std::size_t len);
  Status unmap(E4Addr addr);

  // --- QDMA ---
  QdmaQueue* create_queue(std::uint32_t num_slots, std::uint32_t slot_size = 2048);
  Status destroy_queue(QdmaQueue* q);
  // Post up to slot_size bytes into (dest VPID, queue id). `lossy` opts the
  // wire packet into fault injection — set it only for traffic whose
  // protocol recovers from loss.
  Status post_qdma(Vpid dest, int queue_id, std::span<const std::uint8_t> data,
                   E4Event* local_event = nullptr, bool lossy = false);
  // Collective QDMA (NIC combining-tree traffic): the NIC reads `len` bytes
  // from this context's memory at descriptor-processing time, lands them at
  // `dest_addr` in the target context (element-wise double sum when
  // `combine`, copy otherwise; pass kNullE4Addr for pure-signal barrier
  // frames) and fires event #remote_event_index in the target's table.
  Status post_coll_qdma(Vpid dest, E4Addr src_addr, std::uint32_t len,
                        E4Addr dest_addr, bool combine, int remote_event_index,
                        E4Event* local_event = nullptr);
  // Non-blocking poll of a local queue (charges one poll).
  bool queue_poll(QdmaQueue* q, QdmaQueue::Slot* out);
  // Block until the queue has a message (interrupt-driven wakeup).
  void queue_wait(QdmaQueue* q);

  // --- RDMA ---
  Status rdma_write(Vpid dest, E4Addr local_src, E4Addr remote_dst,
                    std::uint32_t len, E4Event* local_event,
                    E4Event* remote_event = nullptr);
  Status rdma_read(Vpid dest, E4Addr remote_src, E4Addr local_dst,
                   std::uint32_t len, E4Event* local_event);

  // Hardware broadcast: push [addr, addr+len) — which must resolve at the
  // SAME E4 address in every group member's context (global virtual address
  // space) — to all members; fires event #event_index in each member's
  // context on arrival, and local_event at the root on injection.
  Status hw_broadcast(const std::vector<Vpid>& group, E4Addr addr,
                      std::uint32_t len, int event_index, E4Event* local_event);

  // Charge a host memcpy of `bytes` (slot -> user buffer etc).
  void charge_copy(std::size_t bytes);
  // Charge one host event-word poll.
  void charge_poll();

  // Release the context back to the system capability. The caller is
  // responsible for quiescing traffic first (paper §4.1: finalization only
  // after pending messages complete, else a leftover DMA can regenerate
  // traffic indefinitely).
  void close();

 private:
  QsNet& net_;
  int node_;
  int rail_;
  Vpid vpid_;
  ContextId ctx_;
  bool closed_ = false;
  int last_event_index_ = -1;
  struct EventEntry {
    std::unique_ptr<E4Event> ev;
    int index;
  };
  std::deque<EventEntry> events_;
  std::vector<int> my_queues_;
};

}  // namespace oqs::elan4
