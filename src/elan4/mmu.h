// Per-context Elan4 MMU.
//
// RDMA descriptors carry E4_Addr values; the NIC's MMU translates them to
// host physical memory (paper §4.2). We model it as a region table per
// hardware context: map() assigns a NIC-virtual range to a host buffer,
// translate() resolves an access or reports a fault. E4 address space is
// bump-allocated per context, so two processes' mappings never alias.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>

#include "base/status.h"
#include "elan4/e4_types.h"

namespace oqs::elan4 {

class Mmu {
 public:
  Mmu() = default;

  // Expose [host, host+len) to the NIC; returns the assigned E4 address.
  E4Addr map(void* host, std::size_t len);
  // Remove a mapping created by map(); addr must be the exact mapped base.
  Status unmap(E4Addr addr);

  // Resolve an access of `len` bytes at `addr`. Returns nullptr and sets
  // *status to kFault if any byte is unmapped (the access may straddle a
  // region boundary only if the regions were mapped contiguously, which the
  // bump allocator never produces — matching real page-table behaviour).
  void* translate(E4Addr addr, std::size_t len, Status* status) const;

  std::size_t num_mappings() const { return regions_.size(); }
  std::uint64_t faults() const { return faults_; }
  // Page-table entries built over this context's lifetime (monotonic): the
  // registration work the pipelined rendezvous overlaps with transfer.
  std::uint64_t pages_mapped() const { return pages_mapped_; }

  // Pages a mapping of `len` bytes spans (registration cost unit).
  static std::uint64_t pages_for(std::size_t len) {
    return (static_cast<E4Addr>(len) + kPage - 1) / kPage;
  }

 private:
  struct Region {
    void* host;
    std::size_t len;
  };

  static constexpr E4Addr kPage = 0x2000;  // 8 KB elan page granularity
  // Start away from 0 so kNullE4Addr is always a fault.
  E4Addr next_ = 0x10000;
  std::map<E4Addr, Region> regions_;
  mutable std::uint64_t faults_ = 0;
  std::uint64_t pages_mapped_ = 0;
};

}  // namespace oqs::elan4
