// The simulated testbed: nodes, QsNetII fabric, Elan4 NICs, and the
// system-wide capability.
//
// Mirrors the paper's cluster: eight dual-Xeon nodes, one QS-8A switch,
// one QM-500 Elan4 card per node (more rails on request for the multirail
// extension).
#pragma once

#include <memory>
#include <vector>

#include "base/params.h"
#include "elan4/capability.h"
#include "elan4/nic.h"
#include "net/ethernet.h"
#include "net/fabric.h"
#include "sim/engine.h"
#include "sim/node.h"
#include "sim/rng.h"

namespace oqs::elan4 {

class Elan4Device;

class QsNet {
 public:
  QsNet(sim::Engine& engine, const ModelParams& params, int nodes,
        int contexts_per_node = 64, int rails = 1);
  ~QsNet();
  QsNet(const QsNet&) = delete;
  QsNet& operator=(const QsNet&) = delete;

  sim::Engine& engine() { return engine_; }
  const ModelParams& params() const { return params_; }
  net::Fabric& fabric() { return *fabric_; }
  // The machine's management/TCP Ethernet (beside the QsNetII fabric).
  net::EthNet& eth() { return *eth_; }
  SystemCapability& capability() { return capability_; }

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_rails() const { return rails_; }
  sim::Node& node(int id) { return *nodes_[static_cast<std::size_t>(id)]; }
  Elan4Nic& nic(int node, int rail = 0) {
    return *nics_[static_cast<std::size_t>(node * rails_ + rail)];
  }

  // Claim a context on `node` and open a device handle for the calling
  // process (the dynamic-join operation of paper §4.1/§5). Returns nullptr
  // when the node's contexts are exhausted.
  std::unique_ptr<Elan4Device> open(int node, int rail = 0);

  int node_of(Vpid vpid) const { return capability_.node_of(vpid); }
  ContextId context_of(Vpid vpid) const { return capability_.context_of(vpid); }

  // --- fault injection (reliability testing) ---
  // Install a full fault profile (drop / corrupt / duplicate / delay) on
  // the fabric, replacing any previous injector. Deterministic per seed.
  void set_faults(const net::FaultProfile& profile, std::uint64_t seed = 1);
  // Legacy knob: with probability `prob`, each delivered payload gets one
  // bit flipped (beyond any protected prefix). Keeps the historical draw
  // sequence so existing test seeds reproduce the same corruption schedule.
  void set_corruption(double prob, std::uint64_t seed = 1);
  // Called by NICs on landing data. Returns true if a bit was flipped.
  bool maybe_corrupt(std::vector<std::uint8_t>& data, std::size_t protect_prefix);
  // Hard-kill one rail from now on: every packet routed over it vanishes
  // (all traffic classes). Installs a no-fault injector if none exists, so
  // killing a rail composes with — but does not require — a fault profile.
  void kill_rail(int rail);
  net::FaultInjector* faults() { return faults_.get(); }
  std::uint64_t corruptions() const { return faults_ ? faults_->corruptions() : 0; }

 private:
  sim::Engine& engine_;
  ModelParams params_;
  int rails_;
  std::vector<std::unique_ptr<sim::Node>> nodes_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::EthNet> eth_;
  std::vector<std::unique_ptr<Elan4Nic>> nics_;
  SystemCapability capability_;
  std::unique_ptr<net::FaultInjector> faults_;
};

}  // namespace oqs::elan4
