// NIC command descriptors.
//
// Hosts build these and post them to a NIC command queue (PIO); chained
// events hold a prebuilt command that the NIC posts to itself on trigger.
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "elan4/e4_types.h"

namespace oqs::elan4 {

class E4Event;

// Queue-based DMA: deliver up to slot-size bytes into a remote receive
// queue (paper: QDMA, messages up to 2 KB).
struct QdmaCmd {
  Vpid src_vpid = kInvalidVpid;
  Vpid dest_vpid = kInvalidVpid;
  int dest_queue = -1;
  std::vector<std::uint8_t> data;
  E4Event* local_event = nullptr;  // fired when the NIC has injected the packet
  // Set on commands launched by a chained event: the descriptor is already
  // resident in NIC memory, so it skips the host descriptor fetch.
  bool preloaded = false;
  // Set by senders whose protocol recovers from loss (the Elan4 PTL's
  // sequenced frame stream): opts the packet into wire fault injection.
  bool lossy = false;

  // --- NIC-offloaded collective extensions (combining-tree protocol) ---
  // When src_addr != kNullE4Addr the NIC reads src_len bytes from the
  // issuing context's memory when it processes the descriptor, instead of
  // carrying host-built bytes in `data`. This is what lets a chained
  // descriptor ship data that was produced after the chain was attached
  // (partial sums accumulating while the event counts down).
  E4Addr src_addr = kNullE4Addr;
  std::uint32_t src_len = 0;
  // When dest_addr != kNullE4Addr the payload lands there (translated in
  // the target context's MMU) instead of in a receive queue: element-wise
  // double-precision summed into place when `combine` is set (the NIC-side
  // reduction of the combining tree), plain-copied otherwise.
  E4Addr dest_addr = kNullE4Addr;
  bool combine = false;
  // When >= 0 the landing NIC fires event #remote_event_index in the target
  // context's global event table after the payload (if any) has landed —
  // the arrival half of the NIC-resident barrier/allreduce tree.
  int remote_event_index = -1;
};

// RDMA write: local [src, src+len) -> remote [dst, dst+len).
struct RdmaWriteCmd {
  Vpid src_vpid = kInvalidVpid;
  Vpid dest_vpid = kInvalidVpid;
  E4Addr src = kNullE4Addr;  // in the issuing context's MMU
  E4Addr dst = kNullE4Addr;  // in the destination context's MMU
  std::uint32_t len = 0;
  E4Event* local_event = nullptr;   // fired on network-level completion ack
  E4Event* remote_event = nullptr;  // fired at the destination NIC
};

// RDMA read: remote [src, src+len) -> local [dst, dst+len).
struct RdmaReadCmd {
  Vpid src_vpid = kInvalidVpid;   // issuing (reading) process
  Vpid dest_vpid = kInvalidVpid;  // process whose memory is read
  E4Addr src = kNullE4Addr;       // in the destination context's MMU
  E4Addr dst = kNullE4Addr;       // in the issuing context's MMU
  std::uint32_t len = 0;
  E4Event* local_event = nullptr;  // fired when all data has landed locally
};

// Hardware broadcast: the fabric replicates the payload to every member of
// a multicast group. Requires the global virtual address space — `addr`
// must resolve in *every* member's context — and a symmetric event table
// (`event_index` identifies the completion event in each context).
struct HwBcastCmd {
  Vpid src_vpid = kInvalidVpid;
  std::vector<Vpid> group;  // members excluding the root
  E4Addr addr = kNullE4Addr;
  std::uint32_t len = 0;
  int event_index = -1;            // fired in each member's context
  E4Event* local_event = nullptr;  // fired at the root on injection
};

using Command = std::variant<QdmaCmd, RdmaWriteCmd, RdmaReadCmd, HwBcastCmd>;

}  // namespace oqs::elan4
