#include "elan4/mmu.h"

#include <cassert>

namespace oqs::elan4 {

E4Addr Mmu::map(void* host, std::size_t len) {
  assert(host != nullptr && len > 0);
  const E4Addr addr = next_;
  // Round the span up to page granularity so consecutive mappings never abut.
  const E4Addr span = ((static_cast<E4Addr>(len) + kPage - 1) / kPage + 1) * kPage;
  next_ += span;
  pages_mapped_ += pages_for(len);
  regions_.emplace(addr, Region{host, len});
  return addr;
}

Status Mmu::unmap(E4Addr addr) {
  auto it = regions_.find(addr);
  if (it == regions_.end()) return Status::kNotFound;
  regions_.erase(it);
  return Status::kOk;
}

void* Mmu::translate(E4Addr addr, std::size_t len, Status* status) const {
  *status = Status::kFault;
  if (addr == kNullE4Addr || regions_.empty()) {
    ++faults_;
    return nullptr;
  }
  // Find the last region starting at or before addr.
  auto it = regions_.upper_bound(addr);
  if (it == regions_.begin()) {
    ++faults_;
    return nullptr;
  }
  --it;
  const E4Addr base = it->first;
  const Region& r = it->second;
  const std::uint64_t off = addr - base;
  if (off + len > r.len) {
    ++faults_;
    return nullptr;
  }
  *status = Status::kOk;
  return static_cast<char*>(r.host) + off;
}

}  // namespace oqs::elan4
