// The QsNetII fabric: topology + wire-time model + delivery scheduling.
//
// transmit() models cut-through switching: the head of a packet advances one
// hop latency per traversed link, each link is occupied for the packet's
// serialization time, and the payload callback runs at the destination when
// the tail arrives. Multiple rails (the paper's future-work multirail) are
// independent topologies over the same nodes.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "base/params.h"
#include "net/fault.h"
#include "net/topology.h"
#include "sim/engine.h"

namespace oqs::net {

class Fabric {
 public:
  // Builds `rails` identical topologies: SingleSwitch when nodes <= 8 (the
  // paper's QS-8A testbed), a quaternary fat-tree otherwise.
  Fabric(sim::Engine& engine, const ModelParams& params, int nodes, int rails = 1);

  int num_nodes() const { return nodes_; }
  int num_rails() const { return static_cast<int>(rails_.size()); }
  int hops(int src, int dst, int rail = 0) const { return rails_[rail]->hops(src, dst); }

  // Attach a fault injector (owned by the caller, typically QsNet). Only
  // Delivery::kLossy packets are subject to wire faults; loopback
  // (src == dst) never touches the fabric and is always immune.
  void set_fault_injector(FaultInjector* f) { faults_ = f; }
  FaultInjector* fault_injector() const { return faults_; }

  // Ship `bytes` from src to dst; run `deliver` at the destination when the
  // packet tail arrives. `bytes` here is one wire packet (the NIC fragments
  // to MTU); on-wire overhead per packet is folded into link_startup_ns.
  void transmit(int src, int dst, std::uint32_t bytes, std::function<void()> deliver,
                int rail = 0, Delivery cls = Delivery::kGuaranteed);

  // Hardware multicast (the Elite switches replicate the packet): the
  // source injects once; every destination's ejection link carries one
  // copy. Latency is that of a single packet, independent of fan-out.
  // `deliver` runs once per entry of `dsts`, with its index.
  void multicast(int src, const std::vector<int>& dsts, std::uint32_t bytes,
                 std::function<void(std::size_t idx)> deliver, int rail = 0);

  // Fluid bulk-transfer support: account one wire packet's full path — link
  // occupancy included — with the head entering the route at `inject_at`
  // instead of now(), and return the tail-arrival time at dst. This is
  // exactly transmit()'s timing arithmetic with no event scheduled and no
  // fault handling (callers only use it while the fault injector is
  // quiescent), which lets an uncontended fragment train be folded into a
  // single completion event.
  sim::Time reserve_path(int src, int dst, std::uint32_t bytes,
                         sim::Time inject_at, int rail = 0);

  std::uint64_t packets_sent() const { return packets_; }

 private:
  sim::Engine& engine_;
  const ModelParams& params_;
  int nodes_;
  std::vector<std::unique_ptr<Topology>> rails_;
  std::vector<Link*> scratch_route_;
  std::uint64_t packets_ = 0;
  FaultInjector* faults_ = nullptr;
};

}  // namespace oqs::net
