// A message-oriented Ethernet for the TCP reference PTL.
//
// The paper's baseline Open MPI PTL runs over TCP/IP; our machine model
// therefore carries a GigE-class network beside QsNetII. This class moves
// whole frames between attached sinks with propagation latency, per-
// endpoint serialization (tx and rx), and nothing else — protocol costs
// (syscalls, kernel copies, stack time) are charged by the TCP PTL itself.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "base/params.h"
#include "sim/engine.h"

namespace oqs::net {

class EthNet {
 public:
  class Sink {
   public:
    virtual ~Sink() = default;
    virtual void eth_deliver(int src_addr, std::vector<std::uint8_t> frame) = 0;
  };

  EthNet(sim::Engine& engine, const ModelParams& params)
      : engine_(engine), params_(params) {}

  int attach(Sink* sink) {
    const int addr = next_addr_++;
    ports_.emplace(addr, Port{sink, 0, 0});
    return addr;
  }
  void detach(int addr) { ports_.erase(addr); }

  void send(int src, int dst, std::vector<std::uint8_t> frame) {
    auto sit = ports_.find(src);
    if (sit == ports_.end()) return;
    const sim::Time tx =
        ModelParams::xfer_ns(frame.size(), params_.tcp_wire_mbps);
    const sim::Time now = engine_.now();
    const sim::Time depart = std::max(now, sit->second.tx_free) ;
    sit->second.tx_free = depart + tx;
    const sim::Time arrive_head = depart + params_.eth_latency_ns;
    engine_.schedule_at(
        arrive_head + tx, [this, src, dst, frame = std::move(frame)]() mutable {
          auto dit = ports_.find(dst);
          if (dit == ports_.end()) return;  // peer left; frame dropped
          // Receive-side serialization: frames queue into the endpoint.
          const sim::Time rx_done =
              std::max(engine_.now(), dit->second.rx_free) ;
          dit->second.rx_free = rx_done;
          dit->second.sink->eth_deliver(src, std::move(frame));
        });
  }

 private:
  struct Port {
    Sink* sink;
    sim::Time tx_free;
    sim::Time rx_free;
  };
  sim::Engine& engine_;
  const ModelParams& params_;
  std::map<int, Port> ports_;
  int next_addr_ = 1;
};

}  // namespace oqs::net
