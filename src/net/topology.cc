#include "net/topology.h"

#include <cassert>

namespace oqs::net {

SingleSwitch::SingleSwitch(int nodes) {
  assert(nodes >= 1 && nodes <= 8 && "QS-8A connects up to 8 nodes");
  up_.reserve(static_cast<std::size_t>(nodes));
  down_.reserve(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    up_.emplace_back(Link::Kind::kNodeToSwitch, i);
    down_.emplace_back(Link::Kind::kSwitchToNode, i);
  }
}

void SingleSwitch::route(int src, int dst, std::vector<Link*>& out) {
  out.clear();
  if (src == dst) return;
  assert(src >= 0 && src < num_nodes() && dst >= 0 && dst < num_nodes());
  out.push_back(&up_[static_cast<std::size_t>(src)]);
  out.push_back(&down_[static_cast<std::size_t>(dst)]);
}

QuaternaryFatTree::QuaternaryFatTree(int nodes) : nodes_(nodes) {
  assert(nodes >= 1);
  levels_ = 1;
  int cap = 4;
  while (cap < nodes) {
    cap *= 4;
    ++levels_;
  }
  const std::size_t total =
      static_cast<std::size_t>(nodes) * static_cast<std::size_t>(levels_);
  up_.reserve(total);
  down_.reserve(total);
  for (int i = 0; i < nodes; ++i) {
    for (int l = 0; l < levels_; ++l) {
      up_.emplace_back(Link::Kind::kFatTreeUp, i, static_cast<std::int16_t>(l));
      down_.emplace_back(Link::Kind::kFatTreeDown, i,
                         static_cast<std::int16_t>(l));
    }
  }
}

int QuaternaryFatTree::climb(int src, int dst) const {
  // Leaves whose labels agree in all high base-4 digits share a subtree;
  // the packet climbs until the first differing digit (from the least
  // significant side the subtree spans 4^l leaves at level l).
  int h = 0;
  int s = src;
  int d = dst;
  while (s != d) {
    s /= 4;
    d /= 4;
    ++h;
  }
  return h;
}

int QuaternaryFatTree::hops(int src, int dst) const {
  if (src == dst) return 0;
  return 2 * climb(src, dst);
}

void QuaternaryFatTree::route(int src, int dst, std::vector<Link*>& out) {
  out.clear();
  if (src == dst) return;
  assert(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_);
  const int h = climb(src, dst);
  assert(h <= levels_);
  for (int l = 0; l < h; ++l) out.push_back(&up(src, l));
  for (int l = h - 1; l >= 0; --l) out.push_back(&down(dst, l));
}

}  // namespace oqs::net
