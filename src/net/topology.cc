#include "net/topology.h"

#include <cassert>
#include <string>

namespace oqs::net {

SingleSwitch::SingleSwitch(int nodes) {
  assert(nodes >= 1 && nodes <= 8 && "QS-8A connects up to 8 nodes");
  for (int i = 0; i < nodes; ++i) {
    up_.push_back(std::make_unique<Link>("n" + std::to_string(i) + ">sw"));
    down_.push_back(std::make_unique<Link>("sw>n" + std::to_string(i)));
  }
}

void SingleSwitch::route(int src, int dst, std::vector<Link*>& out) {
  out.clear();
  if (src == dst) return;
  assert(src >= 0 && src < num_nodes() && dst >= 0 && dst < num_nodes());
  out.push_back(up_[static_cast<std::size_t>(src)].get());
  out.push_back(down_[static_cast<std::size_t>(dst)].get());
}

QuaternaryFatTree::QuaternaryFatTree(int nodes) : nodes_(nodes) {
  assert(nodes >= 1);
  levels_ = 1;
  int cap = 4;
  while (cap < nodes) {
    cap *= 4;
    ++levels_;
  }
  up_.resize(static_cast<std::size_t>(nodes));
  down_.resize(static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    for (int l = 0; l < levels_; ++l) {
      up_[static_cast<std::size_t>(i)].push_back(std::make_unique<Link>(
          "n" + std::to_string(i) + ".up" + std::to_string(l)));
      down_[static_cast<std::size_t>(i)].push_back(std::make_unique<Link>(
          "n" + std::to_string(i) + ".dn" + std::to_string(l)));
    }
  }
}

int QuaternaryFatTree::climb(int src, int dst) const {
  // Leaves whose labels agree in all high base-4 digits share a subtree;
  // the packet climbs until the first differing digit (from the least
  // significant side the subtree spans 4^l leaves at level l).
  int h = 0;
  int s = src;
  int d = dst;
  while (s != d) {
    s /= 4;
    d /= 4;
    ++h;
  }
  return h;
}

int QuaternaryFatTree::hops(int src, int dst) const {
  if (src == dst) return 0;
  return 2 * climb(src, dst);
}

void QuaternaryFatTree::route(int src, int dst, std::vector<Link*>& out) {
  out.clear();
  if (src == dst) return;
  assert(src >= 0 && src < nodes_ && dst >= 0 && dst < nodes_);
  const int h = climb(src, dst);
  assert(h <= levels_);
  for (int l = 0; l < h; ++l)
    out.push_back(up_[static_cast<std::size_t>(src)][static_cast<std::size_t>(l)].get());
  for (int l = h - 1; l >= 0; --l)
    out.push_back(down_[static_cast<std::size_t>(dst)][static_cast<std::size_t>(l)].get());
}

}  // namespace oqs::net
