// QsNetII topologies built from Elite4 switches.
//
// SingleSwitch  — the paper's testbed: one QS-8A, up to 8 nodes, 2 hops.
// QuaternaryFatTree — a 4-ary n-tree for larger clusters, with
//   deterministic source-routed up-paths and destination-routed down-paths
//   (the standard Quadrics routing discipline).
#pragma once

#include <vector>

#include "net/link.h"

namespace oqs::net {

class Topology {
 public:
  virtual ~Topology() = default;

  virtual int num_nodes() const = 0;
  // Number of link traversals between distinct nodes (0 for src == dst).
  virtual int hops(int src, int dst) const = 0;
  // Ordered links a packet traverses from src to dst. Empty for loopback.
  virtual void route(int src, int dst, std::vector<Link*>& out) = 0;
};

class SingleSwitch final : public Topology {
 public:
  explicit SingleSwitch(int nodes);

  int num_nodes() const override { return static_cast<int>(up_.size()); }
  int hops(int src, int dst) const override { return src == dst ? 0 : 2; }
  void route(int src, int dst, std::vector<Link*>& out) override;

 private:
  // By-value, sized once at construction: addresses handed out by route()
  // stay stable for the topology's lifetime.
  std::vector<Link> up_;    // node -> switch
  std::vector<Link> down_;  // switch -> node
};

class QuaternaryFatTree final : public Topology {
 public:
  explicit QuaternaryFatTree(int nodes);

  int num_nodes() const override { return nodes_; }
  int levels() const { return levels_; }
  int hops(int src, int dst) const override;
  void route(int src, int dst, std::vector<Link*>& out) override;

 private:
  // Level at which the up-path of src and down-path of dst meet: the number
  // of trailing base-4 digits in which src and dst differ.
  int climb(int src, int dst) const;

  // up(n, l) is the link from level-l toward level-l+1 on node n's
  // deterministic up-path; down(n, l) mirrors it on the down-path. Flat
  // node-major arrays, sized once at construction (stable addresses): at
  // 2048 nodes x 6 levels that is ~25k links in two contiguous blocks
  // instead of ~25k separate heap objects behind two pointer forests.
  Link& up(int node, int l) {
    return up_[static_cast<std::size_t>(node) * static_cast<std::size_t>(levels_) +
               static_cast<std::size_t>(l)];
  }
  Link& down(int node, int l) {
    return down_[static_cast<std::size_t>(node) * static_cast<std::size_t>(levels_) +
                 static_cast<std::size_t>(l)];
  }

  int nodes_;
  int levels_;  // n in "4-ary n-tree"
  std::vector<Link> up_;
  std::vector<Link> down_;
};

}  // namespace oqs::net
