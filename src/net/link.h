// A directed network link with occupancy.
//
// Serialization time is charged per packet; back-to-back packets queue on
// `free_at`, which is how bandwidth sharing and saturation emerge in the
// benchmarks instead of being curve-fit.
//
// Occupancy is lazy: a queued packet costs one reserve() call — arithmetic
// on `free_at_` — not a simulator event. The fabric schedules only the
// head-arrival and delivery instants it actually needs, so a saturated link
// with a deep queue adds no event-queue pressure.
//
// Identity is structural, not textual. A 2048-node quaternary fat tree
// carries ~25k directed links; a std::string per link is a heap allocation
// and a cache-line of cold pointer-chasing apiece, so a Link stores which
// topology port it is (kind, node, level) in 8 bytes and builds its
// human-readable name on demand for logs and debugging.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace oqs::net {

class Link {
 public:
  enum class Kind : std::uint8_t {
    kNodeToSwitch,  // "n%d>sw"    (SingleSwitch up)
    kSwitchToNode,  // "sw>n%d"    (SingleSwitch down)
    kFatTreeUp,     // "n%d.up%d"  (fat-tree up-path, level in `level`)
    kFatTreeDown,   // "n%d.dn%d"  (fat-tree down-path, level in `level`)
    kEthernet,      // "eth%d"     (management network)
  };

  Link() = default;
  Link(Kind kind, std::int32_t node, std::int16_t level = 0)
      : node_(node), level_(level), kind_(kind) {}

  // Human-readable name, built on demand (cold path: logs, tests).
  std::string name() const;

  Kind kind() const { return kind_; }
  std::int32_t node() const { return node_; }
  std::int16_t level() const { return level_; }

  // Reserve the link for a packet whose head arrives at `head_arrival` and
  // whose serialization takes `tx_ns`. Returns the actual departure time
  // (>= head_arrival; later if the link is still busy).
  sim::Time reserve(sim::Time head_arrival, sim::Time tx_ns) {
    const sim::Time depart = head_arrival > free_at_ ? head_arrival : free_at_;
    free_at_ = depart + tx_ns;
    busy_ns_ += tx_ns;
    ++packets_;
    return depart;
  }

  sim::Time free_at() const { return free_at_; }
  sim::Time busy_ns() const { return busy_ns_; }
  std::uint64_t packets() const { return packets_; }

 private:
  sim::Time free_at_ = 0;
  sim::Time busy_ns_ = 0;
  std::uint64_t packets_ = 0;
  std::int32_t node_ = -1;
  std::int16_t level_ = 0;
  Kind kind_ = Kind::kNodeToSwitch;
};

}  // namespace oqs::net
