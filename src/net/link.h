// A directed network link with occupancy.
//
// Serialization time is charged per packet; back-to-back packets queue on
// `free_at`, which is how bandwidth sharing and saturation emerge in the
// benchmarks instead of being curve-fit.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace oqs::net {

class Link {
 public:
  explicit Link(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Reserve the link for a packet whose head arrives at `head_arrival` and
  // whose serialization takes `tx_ns`. Returns the actual departure time
  // (>= head_arrival; later if the link is still busy).
  sim::Time reserve(sim::Time head_arrival, sim::Time tx_ns) {
    const sim::Time depart = head_arrival > free_at_ ? head_arrival : free_at_;
    free_at_ = depart + tx_ns;
    busy_ns_ += tx_ns;
    ++packets_;
    return depart;
  }

  sim::Time free_at() const { return free_at_; }
  sim::Time busy_ns() const { return busy_ns_; }
  std::uint64_t packets() const { return packets_; }

 private:
  std::string name_;
  sim::Time free_at_ = 0;
  sim::Time busy_ns_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace oqs::net
