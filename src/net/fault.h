// Deterministic fault injection for the fabric.
//
// A FaultInjector decides, per wire packet, whether the fabric loses it,
// delivers it twice, holds it (reordering it past its successors), or — at
// landing time, where the bytes are visible — flips one bit of it. All
// decisions come from seeded RNG streams consumed in simulation event
// order, so a fault schedule is a pure function of (workload, seed): the
// same seed reproduces the same drops, the same retransmissions, and the
// same trace digest.
//
// Wire faults (drop/duplicate/delay) are only applied to packets the
// sender marked Delivery::kLossy — the QDMA frame stream the Elan4 PTL
// protects with go-back-N. RDMA payload streams and Tport traffic stay
// Delivery::kGuaranteed: the hardware model has no recovery for a lost
// fragment (QsNetII links are reliable; the end-to-end layer exists to
// catch what the hardware misses), but their *contents* can still be
// corrupted, which the CRC + re-read path recovers.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "sim/rng.h"
#include "sim/time.h"

namespace oqs::net {

// Per-link fault probabilities. `delay_ns` is how long a delayed packet is
// held beyond its normal delivery time.
struct FaultProfile {
  double drop = 0.0;
  double corrupt = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
  sim::Time delay_ns = 25000;

  bool wire_active() const { return drop > 0 || duplicate > 0 || delay > 0; }
  bool any() const { return wire_active() || corrupt > 0; }
};

class FaultInjector {
 public:
  // `seed` derives both RNG streams: wire rolls and corruption rolls are
  // independent so enabling loss does not perturb an existing corruption
  // schedule (and vice versa).
  FaultInjector(const FaultProfile& profile, std::uint64_t seed)
      : default_(profile), wire_rng_(seed ^ 0x9E3779B97F4A7C15ull), corrupt_rng_(seed) {}

  // Directed per-link override; -1 on either side is a wildcard matched
  // after the exact pair (exact, then (-1,dst), then (src,-1)).
  void set_link(int src, int dst, const FaultProfile& profile) {
    links_[{src, dst}] = profile;
  }

  const FaultProfile& profile_for(int src, int dst) const {
    if (!links_.empty()) {
      if (auto it = links_.find({src, dst}); it != links_.end()) return it->second;
      if (auto it = links_.find({-1, dst}); it != links_.end()) return it->second;
      if (auto it = links_.find({src, -1}); it != links_.end()) return it->second;
    }
    return default_;
  }

  // One wire-level decision for a lossy packet traversing src -> dst.
  struct WireFault {
    bool drop = false;
    bool duplicate = false;
    sim::Time delay_ns = 0;
  };
  WireFault roll_wire(int src, int dst) {
    const FaultProfile& p = profile_for(src, dst);
    WireFault f;
    if (p.drop > 0 && wire_rng_.chance(p.drop)) {
      f.drop = true;
      ++drops_;
      return f;  // a dropped packet can be neither duplicated nor delayed
    }
    if (p.duplicate > 0 && wire_rng_.chance(p.duplicate)) {
      f.duplicate = true;
      ++duplicates_;
    }
    if (p.delay > 0 && wire_rng_.chance(p.delay)) {
      f.delay_ns = p.delay_ns;
      ++delays_;
    }
    return f;
  }

  // Corruption roll at landing time: with the link's corrupt probability,
  // flip one bit beyond `protect_prefix`. Returns true if a bit flipped.
  bool corrupt(std::vector<std::uint8_t>& data, std::size_t protect_prefix,
               int src = -1, int dst = -1) {
    const FaultProfile& p = profile_for(src, dst);
    if (p.corrupt <= 0 || data.size() <= protect_prefix) return false;
    if (!corrupt_rng_.chance(p.corrupt)) return false;
    const std::size_t idx = corrupt_rng_.uniform(protect_prefix, data.size() - 1);
    const int bit = static_cast<int>(corrupt_rng_.uniform(0, 7));
    data[idx] ^= static_cast<std::uint8_t>(1 << bit);
    ++corruptions_;
    return true;
  }

  void set_corruption(double prob) { default_.corrupt = prob; }

  // True when no fault mechanism is armed anywhere: no dead rails, and no
  // profile (default or per-link) with any non-zero probability. While
  // quiescent, fault handling consumes no RNG, so a fast path that skips
  // the per-packet rolls entirely cannot desynchronize the fault schedule.
  bool quiescent() const {
    if (!dead_rails_.empty() || default_.any()) return false;
    for (const auto& [key, profile] : links_)
      if (profile.any()) return false;
    return true;
  }

  // Hard-kill a rail: every packet on it — any traffic class — vanishes.
  // Deterministic (no RNG draw), so killing a rail never perturbs the fault
  // schedule of surviving rails.
  void set_rail_dead(int rail) { dead_rails_.insert(rail); }
  bool rail_dead(int rail) const { return dead_rails_.count(rail) != 0; }

  std::uint64_t drops() const { return drops_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t delays() const { return delays_; }
  std::uint64_t corruptions() const { return corruptions_; }

 private:
  FaultProfile default_;
  std::map<std::pair<int, int>, FaultProfile> links_;
  std::set<int> dead_rails_;
  sim::Rng wire_rng_;
  sim::Rng corrupt_rng_;
  std::uint64_t drops_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t delays_ = 0;
  std::uint64_t corruptions_ = 0;
};

// How a packet may be treated by the fault layer. The sender picks the
// class: kLossy only for traffic whose protocol recovers from loss.
enum class Delivery : std::uint8_t {
  kGuaranteed,  // exempt from drop/duplicate/delay (still corruptible)
  kLossy,       // full fault treatment
};

}  // namespace oqs::net
