#include "net/link.h"

namespace oqs::net {

std::string Link::name() const {
  switch (kind_) {
    case Kind::kNodeToSwitch:
      return "n" + std::to_string(node_) + ">sw";
    case Kind::kSwitchToNode:
      return "sw>n" + std::to_string(node_);
    case Kind::kFatTreeUp:
      return "n" + std::to_string(node_) + ".up" + std::to_string(level_);
    case Kind::kFatTreeDown:
      return "n" + std::to_string(node_) + ".dn" + std::to_string(level_);
    case Kind::kEthernet:
      return "eth" + std::to_string(node_);
  }
  return "link?";
}

}  // namespace oqs::net
