#include "net/fabric.h"

#include <cassert>

namespace oqs::net {

Fabric::Fabric(sim::Engine& engine, const ModelParams& params, int nodes, int rails)
    : engine_(engine), params_(params), nodes_(nodes) {
  assert(rails >= 1);
  for (int r = 0; r < rails; ++r) {
    if (nodes <= 8)
      rails_.push_back(std::make_unique<SingleSwitch>(nodes));
    else
      rails_.push_back(std::make_unique<QuaternaryFatTree>(nodes));
  }
}

void Fabric::transmit(int src, int dst, std::uint32_t bytes,
                      std::function<void()> deliver, int rail, Delivery cls) {
  assert(rail >= 0 && rail < num_rails());
  ++packets_;

  if (src == dst) {
    // NIC-internal loopback: no fabric traversal, one hop worth of latency.
    // Loopback never crosses a link, so it is immune to wire faults.
    engine_.schedule(params_.hop_ns, std::move(deliver));
    return;
  }

  // A killed rail eats every traffic class — RDMA streams included — which
  // is what distinguishes a rail failure from per-packet wire loss.
  if (faults_ != nullptr && faults_->rail_dead(rail)) return;

  FaultInjector::WireFault fault;
  if (faults_ != nullptr && cls == Delivery::kLossy) fault = faults_->roll_wire(src, dst);
  if (fault.drop) return;  // the packet vanishes on the wire

  const sim::Time tx =
      params_.link_startup_ns + ModelParams::xfer_ns(bytes, params_.link_mbps);

  rails_[static_cast<std::size_t>(rail)]->route(src, dst, scratch_route_);
  sim::Time head = engine_.now();
  for (Link* link : scratch_route_) {
    const sim::Time depart = link->reserve(head, tx);
    head = depart + params_.hop_ns;
  }
  // Tail arrival: head arrival at the destination plus serialization.
  const sim::Time deliver_at = head + tx + fault.delay_ns;
  if (fault.duplicate) {
    // Two independent deliveries of the same packet. Copy the closure
    // before either runs: both copies must own the full payload.
    engine_.schedule_at(deliver_at + 2 * params_.hop_ns, deliver);
  }
  engine_.schedule_at(deliver_at, std::move(deliver));
}

sim::Time Fabric::reserve_path(int src, int dst, std::uint32_t bytes,
                               sim::Time inject_at, int rail) {
  assert(rail >= 0 && rail < num_rails());
  ++packets_;
  if (src == dst) return inject_at + params_.hop_ns;  // loopback: no links
  const sim::Time tx =
      params_.link_startup_ns + ModelParams::xfer_ns(bytes, params_.link_mbps);
  rails_[static_cast<std::size_t>(rail)]->route(src, dst, scratch_route_);
  sim::Time head = inject_at;
  for (Link* link : scratch_route_) {
    const sim::Time depart = link->reserve(head, tx);
    head = depart + params_.hop_ns;
  }
  return head + tx;
}

void Fabric::multicast(int src, const std::vector<int>& dsts, std::uint32_t bytes,
                       std::function<void(std::size_t)> deliver, int rail) {
  assert(rail >= 0 && rail < num_rails());
  const sim::Time tx =
      params_.link_startup_ns + ModelParams::xfer_ns(bytes, params_.link_mbps);
  Topology& topo = *rails_[static_cast<std::size_t>(rail)];
  auto shared = std::make_shared<std::function<void(std::size_t)>>(std::move(deliver));

  // The injection path is reserved once; each destination pays only its
  // ejection leg. (Interior replication happens in the switches.)
  sim::Time src_depart = engine_.now();
  bool src_reserved = false;
  for (std::size_t i = 0; i < dsts.size(); ++i) {
    const int dst = dsts[i];
    ++packets_;
    if (dst == src) {
      engine_.schedule(params_.hop_ns, [shared, i] { (*shared)(i); });
      continue;
    }
    topo.route(src, dst, scratch_route_);
    assert(!scratch_route_.empty());
    if (!src_reserved) {
      src_depart = scratch_route_.front()->reserve(engine_.now(), tx);
      src_reserved = true;
    }
    // Replicated copies fan down from the common ancestor.
    sim::Time head = src_depart + params_.hop_ns;
    for (std::size_t k = 1; k < scratch_route_.size(); ++k) {
      const sim::Time depart = scratch_route_[k]->reserve(head, tx);
      head = depart + params_.hop_ns;
    }
    engine_.schedule_at(head + tx, [shared, i] { (*shared)(i); });
  }
}

}  // namespace oqs::net
