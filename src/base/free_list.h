// Grow-on-demand object pool.
//
// Mirrors Open MPI's ompi_free_list: fragments and descriptors are recycled
// rather than heap-allocated per message. Objects are default-constructed
// once and handed out repeatedly; callers must re-initialize per use.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <vector>

namespace oqs {

template <typename T>
class FreeList {
 public:
  // `initial` objects are created eagerly; the pool grows by `grow` objects
  // when exhausted, up to `max` total (0 = unbounded).
  explicit FreeList(std::size_t initial = 8, std::size_t grow = 8, std::size_t max = 0)
      : grow_(grow == 0 ? 1 : grow), max_(max) {
    reserve(initial);
  }

  T* get() {
    if (free_.empty()) {
      if (max_ != 0 && total_ >= max_) return nullptr;
      std::size_t want = grow_;
      if (max_ != 0 && total_ + want > max_) want = max_ - total_;
      reserve(want);
      if (free_.empty()) return nullptr;
    }
    T* t = free_.back();
    free_.pop_back();
    ++outstanding_;
    return t;
  }

  void put(T* t) {
    assert(t != nullptr);
    assert(outstanding_ > 0);
    --outstanding_;
    free_.push_back(t);
  }

  std::size_t total() const { return total_; }
  std::size_t outstanding() const { return outstanding_; }

 private:
  void reserve(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      slabs_.push_back(std::make_unique<T>());
      free_.push_back(slabs_.back().get());
      ++total_;
    }
  }

  std::vector<std::unique_ptr<T>> slabs_;
  std::vector<T*> free_;
  std::size_t grow_;
  std::size_t max_;
  std::size_t total_ = 0;
  std::size_t outstanding_ = 0;
};

}  // namespace oqs
