#include "base/checksum.h"

#include <array>

namespace oqs {

namespace {
constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected CRC32C

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int k = 0; k < 8; ++k) crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    t[i] = crc;
  }
  return t;
}
}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) crc = (crc >> 8) ^ table[(crc ^ p[i]) & 0xffu];
  return ~crc;
}

}  // namespace oqs
