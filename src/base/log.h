// Minimal leveled logger.
//
// The simulation engine registers a clock hook so every line is stamped with
// simulated time; components log under a subsystem tag ("elan4", "pml", ...).
// Logging defaults to kWarn so tests and benches stay quiet; set
// OQS_LOG=debug (or call set_level) to trace protocol flows.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace oqs::log {

enum class Level { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

Level level();
void set_level(Level lv);
// Parses "trace|debug|info|warn|error|off"; unknown strings keep the default.
void set_level(std::string_view name);

// The sim engine installs this so messages carry simulated nanoseconds.
void set_clock(std::function<std::uint64_t()> now_ns);

void write(Level lv, std::string_view tag, std::string_view msg);

namespace detail {
template <typename... Args>
std::string format(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void trace(std::string_view tag, Args&&... args) {
  if (level() <= Level::kTrace)
    write(Level::kTrace, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void debug(std::string_view tag, Args&&... args) {
  if (level() <= Level::kDebug)
    write(Level::kDebug, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void info(std::string_view tag, Args&&... args) {
  if (level() <= Level::kInfo)
    write(Level::kInfo, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void warn(std::string_view tag, Args&&... args) {
  if (level() <= Level::kWarn)
    write(Level::kWarn, tag, detail::format(std::forward<Args>(args)...));
}
template <typename... Args>
void error(std::string_view tag, Args&&... args) {
  if (level() <= Level::kError)
    write(Level::kError, tag, detail::format(std::forward<Args>(args)...));
}

}  // namespace oqs::log
