// Status codes used across the openqs stack.
//
// Open MPI uses OMPI_SUCCESS / OMPI_ERR_* integer codes; we mirror that with
// a scoped enum so call sites cannot confuse a status with a byte count.
#pragma once

#include <string_view>

namespace oqs {

enum class Status {
  kOk = 0,
  kError,            // unspecified failure
  kOutOfResource,    // no free slot / buffer / context
  kBadParam,         // caller error
  kNotFound,         // lookup miss (context, peer, mapping)
  kTruncate,         // receive buffer smaller than incoming message
  kUnreachable,      // no route / peer not wired up
  kNotSupported,     // operation not provided by this component
  kWouldBlock,       // non-blocking op could not complete
  kFault,            // simulated MMU / translation fault
  kShutdown,         // component is finalizing; no new traffic accepted
};

constexpr std::string_view to_string(Status s) {
  switch (s) {
    case Status::kOk: return "OK";
    case Status::kError: return "ERROR";
    case Status::kOutOfResource: return "OUT_OF_RESOURCE";
    case Status::kBadParam: return "BAD_PARAM";
    case Status::kNotFound: return "NOT_FOUND";
    case Status::kTruncate: return "TRUNCATE";
    case Status::kUnreachable: return "UNREACHABLE";
    case Status::kNotSupported: return "NOT_SUPPORTED";
    case Status::kWouldBlock: return "WOULD_BLOCK";
    case Status::kFault: return "FAULT";
    case Status::kShutdown: return "SHUTDOWN";
  }
  return "UNKNOWN";
}

constexpr bool ok(Status s) { return s == Status::kOk; }

}  // namespace oqs
