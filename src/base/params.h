// Model parameters for the simulated testbed.
//
// The paper's testbed: eight SuperMicro X5DL8-GG nodes (dual 3.0 GHz Xeon,
// PCI-X 64/133, 533 MHz FSB) on a QsNetII QS-8A quaternary fat-tree with
// Elan4 QM-500 cards. Every host/NIC/wire cost in the simulation is a knob
// here; protocol *behaviour* (extra round trips, pipelining, chaining) is
// real code in the respective modules. Defaults are calibrated against the
// paper's reported numbers (Figs. 7-10, Table 1) — see EXPERIMENTS.md.
#pragma once

#include <cstdint>

namespace oqs {

using TimeNs = std::uint64_t;

struct ModelParams {
  // ---- Host software path (charged on a node CPU core) ----
  TimeNs host_pio_write_ns = 60;        // flush one command word to the NIC
  TimeNs host_qdma_post_ns = 250;       // build + post a QDMA descriptor
  TimeNs host_rdma_post_ns = 400;       // build + post an RDMA descriptor
  TimeNs host_poll_ns = 80;             // one poll of a host event word
  TimeNs host_event_wait_setup_ns = 120;  // arm a host event for blocking
  double host_memcpy_mbps = 2500.0;     // slot <-> user buffer copy rate
  TimeNs host_memcpy_startup_ns = 60;
  double crc_mbps = 1800.0;             // CRC32C rate (reliability mode)

  // Datatype engine (the "DTP" overhead of Fig. 7: ~0.4us per message
  // one-way; charged once per request on each side).
  TimeNs dtype_engine_startup_ns = 200;  // initialize the convertor/copy engine
  double dtype_pack_mbps = 2200.0;       // non-contiguous pack/unpack rate

  // PML and MPI layers (Fig. 9: "PML layer and above" ~ 0.5us one-way).
  TimeNs pml_match_ns = 200;     // descend match lists, bind request
  TimeNs pml_sched_ns = 180;     // choose PTL, build fragment descriptor
  TimeNs pml_complete_ns = 120;  // request completion bookkeeping
  TimeNs mpi_call_ns = 80;       // argument checking, request setup

  // Progress machinery (Table 1: interrupt ~ +10us; threading ~ +9us more).
  TimeNs interrupt_ns = 10000;     // device IRQ -> host wakeup out of block
  // Portion of interrupt_ns serialized on the node's interrupt path (both
  // interrupt and processor affinity left at defaults, §6.4): concurrent
  // IRQs queue behind each other for this long.
  TimeNs irq_service_ns = 4000;
  TimeNs thread_wakeup_ns = 8500;  // condvar signal -> other thread running
  TimeNs ctx_switch_ns = 900;      // CPU scheduler switch between fibers
  unsigned cores_per_node = 2;     // dual Xeon
  // Shared 533 MHz FSB: concurrently running threads slow each other down
  // (per additional busy core). This is the "contention on CPU and memory
  // resources" that makes two-thread progress costlier (§6.4).
  double fsb_contention = 0.35;

  // ---- Elan4 NIC ----
  TimeNs nic_qdma_start_ns = 1200;    // fetch + launch one QDMA descriptor
  TimeNs nic_rdma_start_ns = 900;    // fetch + launch one RDMA descriptor
  TimeNs nic_frag_ns = 120;          // per-packet engine overhead
  TimeNs nic_mmu_lookup_ns = 90;     // E4_Addr translation per descriptor
  TimeNs nic_event_fire_ns = 100;    // retire an E4 event
  TimeNs nic_chain_fire_ns = 150;    // fire a chained command from the NIC
  TimeNs nic_slot_write_ns = 750;    // land a QDMA into a host queue slot
  TimeNs nic_rdma_read_req_ns = 500; // remote side turns a GET into a stream
  TimeNs nic_tport_match_ns = 350;   // Tport NIC-side tag match
  // NIC-offloaded collectives (combining-tree barrier/allreduce): the NIC
  // processor lands + element-wise sums a collective frame itself.
  TimeNs nic_combine_startup_ns = 200;
  double nic_combine_mbps = 800.0;   // firmware reduction rate
  TimeNs tport_cmd_ns = 220;         // host cost to post one Tport command
  double pci_mbps = 920.0;           // PCI-X 64/133 effective DMA rate
  std::uint32_t mtu = 2048;          // max payload per wire packet
  // Fluid bulk transfers: model an uncontended multi-fragment RDMA train as
  // up-front occupancy arithmetic plus ONE completion event instead of ~3
  // events per fragment. Timing is identical in the uncontended fault-free
  // model (all reserve primitives are pure functions of their time
  // arguments); when any fault injection is configured the NIC falls back
  // to per-fragment simulation automatically. Under contention fluid mode
  // arbitrates links at whole-train rather than per-fragment granularity,
  // which is why it is an opt-in scaling knob, default off.
  bool fluid_bulk = false;

  // ---- QsNetII fabric ----
  TimeNs hop_ns = 280;          // per Elite4 hop (cut-through)
  TimeNs link_startup_ns = 90;  // per-packet serialization startup
  double link_mbps = 960.0;     // effective link data rate

  // ---- Multirail (BML striping across rails, paper §2.2) ----
  // Rails the runtime brings up as independent PTL modules. The pipelined
  // rendezvous stripes per pull fragment on every long message;
  // stripe_min_bytes only gates the legacy whole-message split used when
  // pipelining is disabled. An overdue stripe
  // pull (deadline = stripe_timeout_ns + 8x its modeled transfer time)
  // marks its rail suspect and fails over to a survivor.
  int num_rails = 1;
  std::size_t stripe_min_bytes = 32768;
  TimeNs stripe_timeout_ns = 50'000'000;

  // ---- Pipelined rendezvous (chunked-RDMA overlap) ----
  // Long messages split into pull fragments of pipeline_frag_bytes; at most
  // pipeline_depth pulls are in flight per rail, and the sender pushes
  // pipeline_push_frags eager-sized frames behind the RTS so payload is
  // already streaming while the receiver matches. Messages no longer than
  // one fragment are pushed whole (plan_frags folds the tail): a single
  // pull cannot overlap anything, so its RDMA + FIN round trip only delays
  // completion. Above that size the handshake is already amortized, so one
  // pushed frame covers the match latency; more only adds host-copy cost
  // (the fig10 crossover table is how these defaults were chosen).
  // Per-fragment MMU mapping pays nic_mmu_map_page_ns per page, which the
  // pipeline overlaps with transfer where the monolithic pull serialized it
  // up front.
  std::size_t pipeline_frag_bytes = 16384;
  int pipeline_depth = 4;
  int pipeline_push_frags = 1;
  TimeNs nic_mmu_map_page_ns = 40;

  // ---- Collectives framework (src/mpi/coll) ----
  // NIC combining tree: fan-in/out per tree level, the payload ceiling for
  // the NIC-resident allreduce (one QDMA slot), and the communicator size
  // below which the host dissemination barrier wins anyway.
  int coll_nic_radix = 4;
  std::size_t coll_nic_max_bytes = 2048;
  int coll_nic_min_ranks = 4;
  // Host reference allreduce: reduce-scatter+allgather takes over from
  // recursive doubling at this payload size (bandwidth- vs latency-bound).
  std::size_t coll_rsag_min_bytes = 4096;
  // Intra-node shared-memory phase: cost of one flag write/read hop
  // (cache-line transfer between the two cores); copies ride
  // host_memcpy_mbps.
  TimeNs shm_flag_ns = 250;

  // ---- Simulated kernel TCP path (reference PTL) ----
  TimeNs syscall_ns = 1200;
  TimeNs tcp_stack_ns = 4000;     // per-packet protocol processing
  double tcp_copy_mbps = 1200.0;  // user<->kernel copy rate
  std::uint32_t tcp_mss = 1460;
  TimeNs eth_latency_ns = 30000;    // management-Ethernet propagation
  double tcp_wire_mbps = 110.0;     // GigE-era effective stream rate
  std::uint32_t tcp_chunk = 32768;  // rendezvous remainder chunk size
  std::uint32_t tcp_eager = 65536;  // TCP PTL eager threshold

  // ---- Out-of-band (management Ethernet) control network ----
  TimeNs oob_latency_ns = 55000;
  double oob_mbps = 90.0;

  // ---- Fault injection (reliability testing; all off by default) ----
  // Wire faults apply only to loss-protected traffic (the Elan4 PTL's
  // sequenced QDMA frames); corruption applies to landing payloads. All
  // draws come from RNG streams seeded by fault_seed, so a given seed
  // reproduces the identical fault schedule.
  double fault_drop_prob = 0.0;       // packet vanishes on the wire
  double fault_corrupt_prob = 0.0;    // one bit flipped in a landing payload
  double fault_duplicate_prob = 0.0;  // packet delivered twice
  double fault_delay_prob = 0.0;      // packet held past its slot
  TimeNs fault_delay_ns = 25000;      // how long a delayed packet is held
  std::uint64_t fault_seed = 1;

  // Time to move `bytes` at `mbps` (1 MB/s == 1 byte/us).
  static TimeNs xfer_ns(std::uint64_t bytes, double mbps) {
    if (bytes == 0 || mbps <= 0.0) return 0;
    return static_cast<TimeNs>(static_cast<double>(bytes) * 1000.0 / mbps);
  }
};

}  // namespace oqs
