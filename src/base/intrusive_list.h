// Intrusive doubly-linked list.
//
// Open MPI's opal_list is the workhorse container of the PML/PTL layers
// (pending sends, match lists, unexpected queues); we mirror it so list
// membership never allocates on the critical path.
#pragma once

#include <cassert>
#include <cstddef>
#include <iterator>

namespace oqs {

// Derive from ListItem (possibly several times via distinct tags) to be
// linkable. An item may be on at most one IntrusiveList per tag at a time.
template <typename Tag = void>
class ListItem {
 public:
  ListItem() = default;
  ListItem(const ListItem&) = delete;
  ListItem& operator=(const ListItem&) = delete;
  ~ListItem() { assert(!linked() && "destroying item still on a list"); }

  bool linked() const { return next_ != nullptr; }

 private:
  template <typename T, typename G>
  friend class IntrusiveList;
  ListItem* prev_ = nullptr;
  ListItem* next_ = nullptr;
};

template <typename T, typename Tag = void>
class IntrusiveList {
  using Item = ListItem<Tag>;

 public:
  IntrusiveList() { head_.prev_ = head_.next_ = &head_; }
  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;
  ~IntrusiveList() {
    clear();
    // Disarm the sentinel so its own destructor check passes.
    head_.prev_ = head_.next_ = nullptr;
  }

  bool empty() const { return head_.next_ == &head_; }
  std::size_t size() const { return size_; }

  void push_back(T& t) { insert_before(&head_, &item(t)); }
  void push_front(T& t) { insert_before(head_.next_, &item(t)); }

  T& front() {
    assert(!empty());
    return value(head_.next_);
  }
  T& back() {
    assert(!empty());
    return value(head_.prev_);
  }

  T* pop_front() {
    if (empty()) return nullptr;
    T& t = front();
    erase(t);
    return &t;
  }

  void erase(T& t) {
    Item* it = &item(t);
    assert(it->linked());
    it->prev_->next_ = it->next_;
    it->next_->prev_ = it->prev_;
    it->prev_ = it->next_ = nullptr;
    --size_;
  }

  void clear() {
    while (!empty()) erase(front());
  }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = T;
    using difference_type = std::ptrdiff_t;
    using pointer = T*;
    using reference = T&;
    explicit iterator(Item* p) : p_(p) {}
    T& operator*() const { return IntrusiveList::value(p_); }
    T* operator->() const { return &IntrusiveList::value(p_); }
    iterator& operator++() {
      p_ = p_->next_;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const iterator& o) const { return p_ == o.p_; }

   private:
    friend class IntrusiveList;
    Item* p_;
  };

  iterator begin() { return iterator(head_.next_); }
  iterator end() { return iterator(&head_); }

  // Removes the element at `it`; returns an iterator to the next element.
  iterator erase(iterator it) {
    iterator next(it.p_->next_);
    erase(value(it.p_));
    return next;
  }

 private:
  static Item& item(T& t) { return static_cast<Item&>(t); }
  static T& value(Item* it) { return static_cast<T&>(*it); }

  void insert_before(Item* pos, Item* it) {
    assert(!it->linked());
    it->prev_ = pos->prev_;
    it->next_ = pos;
    pos->prev_->next_ = it;
    pos->prev_ = it;
    ++size_;
  }

  Item head_;
  std::size_t size_ = 0;
};

}  // namespace oqs
