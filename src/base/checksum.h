// CRC32C (Castagnoli) checksum, table-driven.
//
// LA-MPI heritage: Open MPI's end-to-end reliable delivery checksums every
// fragment. We use the same mechanism so corruption-injection tests can
// verify the retransmission path.
#pragma once

#include <cstddef>
#include <cstdint>

namespace oqs {

std::uint32_t crc32c(const void* data, std::size_t len, std::uint32_t seed = 0);

}  // namespace oqs
