#include "base/log.h"

#include <cstdio>
#include <cstdlib>

namespace oqs::log {

namespace {
Level g_level = [] {
  if (const char* env = std::getenv("OQS_LOG")) {
    std::string_view v(env);
    if (v == "trace") return Level::kTrace;
    if (v == "debug") return Level::kDebug;
    if (v == "info") return Level::kInfo;
    if (v == "warn") return Level::kWarn;
    if (v == "error") return Level::kError;
    if (v == "off") return Level::kOff;
  }
  return Level::kWarn;
}();
std::function<std::uint64_t()> g_clock;

const char* name(Level lv) {
  switch (lv) {
    case Level::kTrace: return "TRACE";
    case Level::kDebug: return "DEBUG";
    case Level::kInfo: return "INFO ";
    case Level::kWarn: return "WARN ";
    case Level::kError: return "ERROR";
    case Level::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

Level level() { return g_level; }
void set_level(Level lv) { g_level = lv; }

void set_level(std::string_view v) {
  if (v == "trace") g_level = Level::kTrace;
  else if (v == "debug") g_level = Level::kDebug;
  else if (v == "info") g_level = Level::kInfo;
  else if (v == "warn") g_level = Level::kWarn;
  else if (v == "error") g_level = Level::kError;
  else if (v == "off") g_level = Level::kOff;
}

void set_clock(std::function<std::uint64_t()> now_ns) { g_clock = std::move(now_ns); }

void write(Level lv, std::string_view tag, std::string_view msg) {
  if (g_clock) {
    const std::uint64_t ns = g_clock();
    std::fprintf(stderr, "[%12.3fus] %s %.*s: %.*s\n", static_cast<double>(ns) / 1e3,
                 name(lv), static_cast<int>(tag.size()), tag.data(),
                 static_cast<int>(msg.size()), msg.data());
  } else {
    std::fprintf(stderr, "[    --    ] %s %.*s: %.*s\n", name(lv),
                 static_cast<int>(tag.size()), tag.data(),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace oqs::log
