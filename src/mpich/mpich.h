// MPICH-QsNetII — the paper's comparison baseline (Fig. 10).
//
// A minimal MPI built directly on the Tport layer: NIC tag matching, 32-byte
// headers, polling progress. Structured like Quadrics' MPICH device: the
// host posts tagged operations and polls; everything else is "firmware".
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rte/runtime.h"
#include "tport/tport.h"

namespace oqs::mpich {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

struct RecvStatus {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
  bool truncated = false;
};

class MpichWorld {
 public:
  // Collective over env's launch: wires rank -> VPID through the registry.
  MpichWorld(rte::Env& env, tport::TportDomain& domain);

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(rank_to_vpid_.size()); }
  tport::Tport& tport() { return *tport_; }

  void send(const void* buf, std::size_t len, int dst, int tag);
  void recv(void* buf, std::size_t capacity, int src, int tag,
            RecvStatus* st = nullptr);
  tport::Tport::TxReq* isend(const void* buf, std::size_t len, int dst, int tag);
  tport::Tport::RxReq* irecv(void* buf, std::size_t capacity, int src, int tag);
  void wait(tport::Tport::TxReq* r) { tport_->wait(r); }
  void wait(tport::Tport::RxReq* r, RecvStatus* st = nullptr);

  void barrier();

 private:
  std::uint64_t encode_tag(int tag) const { return static_cast<std::uint32_t>(tag); }
  int vpid_to_rank(elan4::Vpid v) const;

  rte::Env env_;
  std::unique_ptr<tport::Tport> tport_;
  int rank_ = -1;
  std::vector<elan4::Vpid> rank_to_vpid_;
  int coll_seq_ = 0;
};

}  // namespace oqs::mpich
