#include "mpich/mpich.h"

#include <cassert>

#include "rte/oob.h"

namespace oqs::mpich {

namespace {
constexpr int kBarrierTagBase = 0x20000000;
}

MpichWorld::MpichWorld(rte::Env& env, tport::TportDomain& domain) : env_(env) {
  rank_ = env_.world_index;
  tport_ = std::make_unique<tport::Tport>(domain, env_.node);

  rte::Registry& reg = env_.rte->registry();
  std::vector<std::uint8_t> blob;
  rte::put_pod(blob, tport_->vpid());
  reg.put("mpich/" + env_.job + "/proc/" + std::to_string(rank_), blob);
  reg.barrier("mpich/" + env_.job + "/init", env_.world_size);

  rank_to_vpid_.resize(static_cast<std::size_t>(env_.world_size));
  for (int r = 0; r < env_.world_size; ++r) {
    const auto b = reg.get("mpich/" + env_.job + "/proc/" + std::to_string(r));
    std::size_t off = 0;
    rank_to_vpid_[static_cast<std::size_t>(r)] = rte::get_pod<elan4::Vpid>(b, off);
  }
}

int MpichWorld::vpid_to_rank(elan4::Vpid v) const {
  for (std::size_t i = 0; i < rank_to_vpid_.size(); ++i)
    if (rank_to_vpid_[i] == v) return static_cast<int>(i);
  return kAnySource;
}

void MpichWorld::send(const void* buf, std::size_t len, int dst, int tag) {
  tport_->wait(isend(buf, len, dst, tag));
}

tport::Tport::TxReq* MpichWorld::isend(const void* buf, std::size_t len, int dst,
                                       int tag) {
  assert(dst >= 0 && dst < size());
  return tport_->send(rank_to_vpid_[static_cast<std::size_t>(dst)],
                      encode_tag(tag), buf, len);
}

tport::Tport::RxReq* MpichWorld::irecv(void* buf, std::size_t capacity, int src,
                                       int tag) {
  const elan4::Vpid svpid =
      src == kAnySource ? tport::kAnyVpid
                        : rank_to_vpid_[static_cast<std::size_t>(src)];
  const std::uint64_t mask = tag == kAnyTag ? 0 : ~std::uint64_t{0};
  return tport_->recv(svpid, encode_tag(tag), mask, buf, capacity);
}

void MpichWorld::recv(void* buf, std::size_t capacity, int src, int tag,
                      RecvStatus* st) {
  wait(irecv(buf, capacity, src, tag), st);
}

void MpichWorld::wait(tport::Tport::RxReq* r, RecvStatus* st) {
  tport_->wait(r);
  if (st != nullptr) {
    st->source = vpid_to_rank(r->src);
    st->tag = static_cast<int>(r->tag);
    st->bytes = r->len;
    st->truncated = r->truncated;
  }
}

void MpichWorld::barrier() {
  const int n = size();
  if (n <= 1) return;
  const int tag = kBarrierTagBase + (coll_seq_++ & 0x0FFFFFFF);
  for (int step = 1; step < n; step <<= 1) {
    const int dst = (rank_ + step) % n;
    const int src = (rank_ - step + n) % n;
    tport::Tport::TxReq* s = isend(nullptr, 0, dst, tag);
    recv(nullptr, 0, src, tag);
    tport_->wait(s);
  }
}

}  // namespace oqs::mpich
