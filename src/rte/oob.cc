#include "rte/oob.h"

#include <cassert>
#include <cstring>

#include "base/log.h"

namespace oqs::rte {

int Oob::add_endpoint() {
  const int id = next_id_++;
  endpoints_.emplace(id, std::make_unique<Endpoint>(engine_));
  return id;
}

void Oob::remove_endpoint(int id) { endpoints_.erase(id); }

void Oob::send(int src, int dst, int tag, std::vector<std::uint8_t> data) {
  const sim::Time delay =
      params_.oob_latency_ns + ModelParams::xfer_ns(data.size(), params_.oob_mbps);
  engine_.schedule(delay, [this, src, dst, tag, data = std::move(data)]() mutable {
    auto it = endpoints_.find(dst);
    if (it == endpoints_.end()) {
      log::warn("oob", "message to dead endpoint ", dst, " dropped");
      return;
    }
    it->second->queue.push_back(OobMsg{src, tag, std::move(data)});
    it->second->arrived.notify_all();
  });
}

bool Oob::match(Endpoint& ep, int tag, OobMsg* out) {
  for (auto it = ep.queue.begin(); it != ep.queue.end(); ++it) {
    if (tag == kAnyTag || it->tag == tag) {
      *out = std::move(*it);
      ep.queue.erase(it);
      return true;
    }
  }
  return false;
}

OobMsg Oob::recv(int self, int tag) {
  auto it = endpoints_.find(self);
  assert(it != endpoints_.end() && "recv on unknown endpoint");
  OobMsg out;
  while (!match(*it->second, tag, &out)) it->second->arrived.wait();
  return out;
}

bool Oob::try_recv(int self, int tag, OobMsg* out) {
  auto it = endpoints_.find(self);
  assert(it != endpoints_.end());
  return match(*it->second, tag, out);
}

}  // namespace oqs::rte
