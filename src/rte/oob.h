// Out-of-band control messaging (the RTE's management Ethernet).
//
// Open MPI's RTE wires processes up over a socket-based OOB channel that is
// independent of the high-speed fabric — which is exactly what lets new
// processes join the Quadrics network at arbitrary times (paper §4.1). Cost
// model: per-message management-network latency plus serialization at
// Fast-Ethernet-class bandwidth.
#pragma once

#include <cstdint>
#include <cstring>
#include <deque>
#include <map>
#include <type_traits>
#include <vector>

#include "base/params.h"
#include "sim/engine.h"
#include "sim/sync.h"

namespace oqs::rte {

constexpr int kAnyTag = -1;

struct OobMsg {
  int src = -1;
  int tag = 0;
  std::vector<std::uint8_t> data;
};

class Oob {
 public:
  Oob(sim::Engine& engine, const ModelParams& params)
      : engine_(engine), params_(params) {}

  // Create a new addressable endpoint; returns its OOB id.
  int add_endpoint();
  void remove_endpoint(int id);

  // Reliable, ordered per-pair delivery after the management-net delay.
  void send(int src, int dst, int tag, std::vector<std::uint8_t> data);

  // Block until a message with `tag` (or any, with kAnyTag) arrives at
  // `self`; other messages stay queued.
  OobMsg recv(int self, int tag = kAnyTag);
  bool try_recv(int self, int tag, OobMsg* out);

 private:
  struct Endpoint {
    explicit Endpoint(sim::Engine& e) : arrived(e) {}
    std::deque<OobMsg> queue;
    sim::Notifier arrived;
  };

  bool match(Endpoint& ep, int tag, OobMsg* out);

  sim::Engine& engine_;
  const ModelParams& params_;
  std::map<int, std::unique_ptr<Endpoint>> endpoints_;
  int next_id_ = 1;
};

// --- tiny POD (de)serialization helpers for control payloads ---
template <typename T>
void put_pod(std::vector<std::uint8_t>& buf, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  buf.insert(buf.end(), p, p + sizeof(T));
}

template <typename T>
T get_pod(const std::vector<std::uint8_t>& buf, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v{};
  std::memcpy(&v, buf.data() + off, sizeof(T));
  off += sizeof(T);
  return v;
}

}  // namespace oqs::rte
