// The run-time environment: job launch, name service, dynamic spawn.
//
// Models Open MPI's RTE (orted + GPR): processes are placed on nodes, get an
// OOB endpoint, and use a head-node registry to publish/look up contact
// info (Elan VPIDs, queue ids, exposed E4 addresses) during wire-up. The
// registry is the mechanism that lets late-spawned processes establish
// connections with an existing pool (paper §4.1: "Open MPI Run-Time
// Environment can help the newly created processes to establish connections
// with the existing processes").
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "elan4/qsnet.h"
#include "rte/oob.h"
#include "sim/sync.h"

namespace oqs::rte {

class Runtime;

// Per-process environment handed to the process body.
struct Env {
  Runtime* rte = nullptr;
  int world_size = 0;   // size of the initially launched job
  int world_index = 0;  // index within the initial launch (or spawn order)
  int node = -1;
  int oob_id = -1;
  std::string job = "job0";
};

class Registry {
 public:
  Registry(sim::Engine& engine, const ModelParams& params)
      : engine_(engine), params_(params), changed_(engine) {}

  // Publish key -> value. One management-net round trip.
  void put(const std::string& key, std::vector<std::uint8_t> value);
  // Block until the key exists, then return its value. Each probe of a
  // missing key costs a registry round trip (subscription model).
  std::vector<std::uint8_t> get(const std::string& key);
  bool contains(const std::string& key) const { return kv_.count(key) > 0; }
  void erase(const std::string& key) { kv_.erase(key); }

  // Named counting barrier: returns once `count` participants arrived.
  void barrier(const std::string& name, int count);

 private:
  sim::Time rtt() const { return 2 * params_.oob_latency_ns; }

  sim::Engine& engine_;
  const ModelParams& params_;
  std::map<std::string, std::vector<std::uint8_t>> kv_;
  std::map<std::string, int> barrier_counts_;
  sim::Notifier changed_;
};

class Runtime {
 public:
  Runtime(sim::Engine& engine, elan4::QsNet& qsnet)
      : engine_(engine),
        qsnet_(qsnet),
        oob_(engine, qsnet.params()),
        registry_(engine, qsnet.params()) {}

  sim::Engine& engine() { return engine_; }
  elan4::QsNet& qsnet() { return qsnet_; }
  Oob& oob() { return oob_; }
  Registry& registry() { return registry_; }

  using Body = std::function<void(Env&)>;

  // Launch `nprocs` processes round-robin over the cluster nodes (or on
  // `nodes[i]` when given). Processes start immediately as fibers.
  void launch(int nprocs, Body body, const std::vector<int>& nodes = {});

  // Dynamically spawn one more process on `node` (MPI-2 spawn support).
  // The new process gets a fresh OOB endpoint and world_index.
  void spawn_one(int node, Body body);

  int processes_launched() const { return launched_; }

 private:
  sim::Engine& engine_;
  elan4::QsNet& qsnet_;
  Oob oob_;
  Registry registry_;
  int launched_ = 0;
};

}  // namespace oqs::rte
