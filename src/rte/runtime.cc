#include "rte/runtime.h"

#include <cassert>
#include <memory>

#include "base/log.h"

namespace oqs::rte {

void Registry::put(const std::string& key, std::vector<std::uint8_t> value) {
  engine_.sleep(rtt());
  kv_[key] = std::move(value);
  changed_.notify_all();
}

std::vector<std::uint8_t> Registry::get(const std::string& key) {
  engine_.sleep(rtt());
  while (true) {
    auto it = kv_.find(key);
    if (it != kv_.end()) return it->second;
    changed_.wait();
    engine_.sleep(rtt());  // re-fetch after the change notification
  }
}

void Registry::barrier(const std::string& name, int count) {
  engine_.sleep(rtt());
  int& entered = barrier_counts_[name];
  ++entered;
  if (entered >= count) {
    changed_.notify_all();
    return;
  }
  const int target = count;
  while (barrier_counts_[name] < target) changed_.wait();
}

void Runtime::launch(int nprocs, Body body, const std::vector<int>& nodes) {
  assert(nodes.empty() || static_cast<int>(nodes.size()) == nprocs);
  auto shared_body = std::make_shared<Body>(std::move(body));
  for (int i = 0; i < nprocs; ++i) {
    const int node = nodes.empty() ? i % qsnet_.num_nodes()
                                   : nodes[static_cast<std::size_t>(i)];
    Env env;
    env.rte = this;
    env.world_size = nprocs;
    env.world_index = i;
    env.node = node;
    env.oob_id = oob_.add_endpoint();
    ++launched_;
    engine_.spawn("proc" + std::to_string(i),
                  [env, shared_body]() mutable { (*shared_body)(env); });
  }
}

void Runtime::spawn_one(int node, Body body) {
  Env env;
  env.rte = this;
  env.world_size = 1;
  env.world_index = launched_;
  env.node = node;
  env.oob_id = oob_.add_endpoint();
  ++launched_;
  engine_.spawn("spawned" + std::to_string(env.world_index),
                [env, body = std::move(body)]() mutable { body(env); });
}

}  // namespace oqs::rte
