// NIC-offloaded barrier / small-message allreduce: a radix-k combining
// tree programmed into the Elan4 NICs out of chained QDMA descriptors and
// countdown events.
//
// Per member and per slot (2 slots, alternating rounds):
//   up    — countdown nchildren+1: one fire per child's combining QDMA
//           plus the member's own SETEVENT arrival signal. The +1 is what
//           guarantees this round's chains are attached before the event
//           can trigger (the host attaches them before its SETEVENT).
//   down  — countdown 1, fired by the parent's result copy.
//   drain — root only, countdown nchildren: fired as each chained result
//           copy is injected, i.e. after the NIC snapshotted the root
//           accumulator. Gates re-zeroing it for the slot's next round.
//
// Choreography of one round (slot s): every member folds its vector into
// its NIC-mapped accumulator acc[s] and issues one SETEVENT on up[s].
// When a member's subtree is complete, up[s] triggers and (on non-roots)
// launches a chained combining QDMA — the NIC reads acc[s] at processing
// time, so it ships the finished partial sum even though the chain was
// attached before the children arrived — which element-wise sums into the
// parent's acc[s] and fires the parent's up[s]. At the root, up[s] instead
// chains the down copies directly (no host turnaround on the critical
// path); interior members' down[s] chains forward the landed result res[s]
// on. A barrier is the same tree with zero-length, signal-only frames.
//
// Slot discipline: round j uses slot j%2 and re-arms it on exit for round
// j+2. Any slot-s traffic of round j+2 that targets this member
// transitively requires this member's round-(j+1) SETEVENT — which cannot
// have happened yet — so re-arming here is race-free. The root's
// accumulator zeroing additionally waits for drain[s] (the chained copies
// snapshot acc at their own fire times, after the root's host already saw
// up[s] done).
//
// Collective frames ride the guaranteed delivery class (they are NOT
// sequenced by the PTL's go-back-N, so nothing could retransmit them); see
// rx_coll_qdma in elan4/nic.cc.
#include <cstring>
#include <string>

#include "mpi/coll/coll.h"
#include "mpi/mpi.h"
#include "obs/metrics.h"
#include "ptl/elan4/ptl_elan4.h"

namespace oqs::mpi::coll {

using elan4::E4Event;
using elan4::Elan4Device;
using elan4::QdmaCmd;

// Collective build over the whole communicator: exchanges slot addresses
// and event-table indices, then derives the tree. Every rank participates
// (the kAuto gates and forced modes branch uniformly), and every rank with
// a device allocates the same six events and four mappings whether or not
// it is a tree member — keeping allocation histories symmetric across the
// job, which the hardware-broadcast path's event-table invariant relies
// on. A rank without an Elan4 context reports capable = 0, and the group
// uniformly resolves usable = false (host fallback) from the exchange.
void Colls::ensure_nic(Communicator& c, NicState& st, std::vector<int> group) {
  if (st.built) return;
  st.built = true;
  st.group = std::move(group);
  NicPeerInfo mine{};
  mine.vpid = elan4::kInvalidVpid;
  mine.capable = 0;
  for (int s = 0; s < kNicSlots; ++s) {
    mine.acc[s] = elan4::kNullE4Addr;
    mine.res[s] = elan4::kNullE4Addr;
    mine.up[s] = -1;
    mine.down[s] = -1;
  }
  const ModelParams& p = *world_.pml().ctx().params;
  ptl_elan4::PtlElan4* ptl = world_.elan4_ptl();
  if (ptl != nullptr) {
    st.dev = &ptl->device();
    const std::size_t elems = p.coll_nic_max_bytes / sizeof(double);
    for (int s = 0; s < kNicSlots; ++s) {
      st.acc[s].assign(elems, 0.0);
      st.res[s].assign(elems, 0.0);
      st.acc_addr[s] = st.dev->map(st.acc[s].data(), elems * sizeof(double));
      st.res_addr[s] = st.dev->map(st.res[s].data(), elems * sizeof(double));
      st.up[s] = st.dev->alloc_event("coll-up" + std::to_string(s));
      mine.up[s] = st.dev->last_event_index();
      st.down[s] = st.dev->alloc_event("coll-down" + std::to_string(s));
      mine.down[s] = st.dev->last_event_index();
      st.drain[s] = st.dev->alloc_event("coll-drain" + std::to_string(s));
      mine.acc[s] = st.acc_addr[s];
      mine.res[s] = st.res_addr[s];
    }
    mine.vpid = st.dev->vpid();
    mine.capable = 1;
  }
  std::vector<NicPeerInfo> all(static_cast<std::size_t>(c.size()));
  c.allgather(&mine, sizeof(NicPeerInfo), all.data());
  const int gn = static_cast<int>(st.group.size());
  st.peers.resize(static_cast<std::size_t>(gn));
  st.usable = gn >= 2;
  for (int i = 0; i < gn; ++i) {
    st.peers[i] = all[static_cast<std::size_t>(st.group[i])];
    if (st.peers[i].capable == 0) st.usable = false;
    if (st.group[i] == c.rank()) st.tidx = i;
  }
  if (st.usable && st.tidx >= 0 && st.dev != nullptr) {
    const int k = p.coll_nic_radix < 2 ? 2 : p.coll_nic_radix;
    st.parent = st.tidx == 0 ? -1 : (st.tidx - 1) / k;
    for (int ch = st.tidx * k + 1; ch <= st.tidx * k + k && ch < gn; ++ch)
      st.children.push_back(ch);
    for (int s = 0; s < kNicSlots; ++s) prep_nic_slot(st, s);
    OQS_METRIC_INC("coll.nic.trees_built");
  }
  // Arming barrier: a member may race ahead into round 0 and fire a peer's
  // up event before that peer armed it — and a fire on a count-0 event is
  // LOST (Fig. 5d), deadlocking the tree. Dissemination exit guarantees
  // every rank passed its prep above. Uniform tag consumption: every rank
  // runs this, member or not.
  ref_barrier(c, c.coll_tag(), Group{nullptr, c.size(), c.rank()});
}

void Colls::prep_nic_slot(NicState& st, int slot) {
  const int nch = static_cast<int>(st.children.size());
  st.up[slot]->init(nch + 1);
  st.down[slot]->init(1);
  st.drain[slot]->init(nch > 0 ? nch : 1);
}

void Colls::nic_round(NicState& st, double* buf, std::size_t count) {
  Elan4Device& dev = *st.dev;
  const ModelParams& p = dev.params();
  const int s = static_cast<int>(st.seq++ % kNicSlots);
  const std::uint32_t len = static_cast<std::uint32_t>(count * sizeof(double));
  const bool root = st.parent < 0;
  OQS_METRIC_INC("coll.nic.rounds");

  // (Re)attach this round's chains — the previous trigger consumed them.
  // One PIO word each; safe before SETEVENT because up[s] still needs our
  // own arrival to reach zero.
  if (!root) {
    const NicPeerInfo& par = st.peers[static_cast<std::size_t>(st.parent)];
    QdmaCmd up_cmd;
    up_cmd.src_vpid = dev.vpid();
    up_cmd.dest_vpid = par.vpid;
    up_cmd.src_addr = len > 0 ? st.acc_addr[s] : elan4::kNullE4Addr;
    up_cmd.src_len = len;
    up_cmd.dest_addr = len > 0 ? par.acc[s] : elan4::kNullE4Addr;
    up_cmd.combine = len > 0;
    up_cmd.remote_event_index = par.up[s];
    st.up[s]->chain(up_cmd);
    dev.compute(p.host_pio_write_ns);
  }
  E4Event* hook = root ? st.up[s] : st.down[s];
  const elan4::E4Addr down_src = root ? st.acc_addr[s] : st.res_addr[s];
  for (int ch : st.children) {
    const NicPeerInfo& chi = st.peers[static_cast<std::size_t>(ch)];
    QdmaCmd down_cmd;
    down_cmd.src_vpid = dev.vpid();
    down_cmd.dest_vpid = chi.vpid;
    down_cmd.src_addr = len > 0 ? down_src : elan4::kNullE4Addr;
    down_cmd.src_len = len;
    down_cmd.dest_addr = len > 0 ? chi.res[s] : elan4::kNullE4Addr;
    down_cmd.combine = false;
    down_cmd.remote_event_index = chi.down[s];
    if (root) down_cmd.local_event = st.drain[s];
    hook->chain(down_cmd);
    dev.compute(p.host_pio_write_ns);
  }

  // Contribute: fold the vector into the NIC-visible accumulator, then the
  // one-PIO arrival signal.
  if (len > 0) {
    dev.charge_copy(len);
    for (std::size_t i = 0; i < count; ++i) st.acc[s][i] += buf[i];
  }
  dev.set_event(st.up[s]);

  if (root) {
    while (!st.up[s]->done()) dev.charge_poll();
    if (len > 0) {
      dev.charge_copy(len);
      std::memcpy(buf, st.acc[s].data(), len);
    }
    while (!st.drain[s]->done()) dev.charge_poll();
  } else {
    while (!st.down[s]->done()) dev.charge_poll();
    if (len > 0) {
      dev.charge_copy(len);
      std::memcpy(buf, st.res[s].data(), len);
    }
  }

  // Re-arm slot s for round seq+2 (see slot discipline above). The full
  // accumulator is cleared, not just count elements: the next round on
  // this slot may be wider.
  if (len > 0) {
    std::fill(st.acc[s].begin(), st.acc[s].end(), 0.0);
    dev.charge_copy(st.acc[s].size() * sizeof(double));
  }
  prep_nic_slot(st, s);
}

}  // namespace oqs::mpi::coll
