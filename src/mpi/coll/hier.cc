// Hierarchical composition: collectives split into an intra-node
// shared-memory phase and an inter-node phase over one leader per node.
//
// The intra-node side models what a shared-memory coll component does on
// the paper's dual-Xeon nodes: the local ranks of a communicator attach to
// one named segment (sim::Node::shm_attach) holding a deposit slot per
// local rank plus the leader's published result, synchronized by monotonic
// generation counters — each hierarchical collective is one round.
//
// Every operation runs the same three-phase skeleton so the counters never
// need resetting:
//   A) deposit  — non-leaders write their contribution (or just their
//                 in_gen flag for a barrier) and the leader collects;
//   B) inter    — the leaders run the operation among themselves, using
//                 the NIC combining tree when permitted and usable, else
//                 the point-to-point references over the leader group;
//   C) release  — the leader publishes out/out_gen, the locals consume it
//                 and write ack_gen, and the leader waits for all acks.
// The trailing ack sweep is what makes it safe for the next round to reuse
// the slots: a leader cannot overtake a straggling local because it does
// not leave round r until every local acknowledged r.
//
// Role split is derived from a one-time placement exchange (ensure_hier).
// Like every build here it is collective and branch-uniform; the inner
// want-NIC predicate below depends only on option flags, leader count and
// message size, all identical across ranks.
#include <cstring>
#include <string>

#include "mpi/mpi.h"
#include "mpi/coll/coll.h"
#include "obs/metrics.h"

namespace oqs::mpi::coll {

void Colls::ensure_hier(Communicator& c, CommState& st) {
  HierState& h = st.hier;
  if (h.built) return;
  h.built = true;
  const int n = c.size();
  const std::int32_t mynode = world_.env().node;
  std::vector<std::int32_t> nodes(static_cast<std::size_t>(n));
  c.allgather(&mynode, sizeof(std::int32_t), nodes.data());
  h.node_of.assign(nodes.begin(), nodes.end());
  for (int r = 0; r < n; ++r) {
    if (nodes[static_cast<std::size_t>(r)] == mynode) {
      if (r == c.rank()) h.lidx = static_cast<int>(h.locals.size());
      h.locals.push_back(r);
    }
  }
  // One leader per node: the lowest comm rank placed there, ordered by
  // first appearance (== ascending leader rank).
  for (int r = 0; r < n; ++r) {
    const std::int32_t nd = nodes[static_cast<std::size_t>(r)];
    bool seen = false;
    for (int l : h.leaders)
      if (h.node_of[static_cast<std::size_t>(l)] == nd) seen = true;
    if (!seen) {
      if (r == c.rank()) h.leader_pos = static_cast<int>(h.leaders.size());
      h.leaders.push_back(r);
    }
  }
  h.multi = static_cast<int>(h.leaders.size()) < n;
  h.shm_key = world_.env().job + "/coll/" + std::to_string(c.context_id());
  const std::size_t nlocal = h.locals.size();
  h.seg = world_.net().node(mynode).shm_attach<ShmSeg>(h.shm_key, [nlocal] {
    auto seg = std::make_shared<ShmSeg>();
    seg->slots.resize(nlocal);
    return seg;
  });
  OQS_METRIC_INC("coll.hier.maps_built");
}

// Leader-group inter phase helpers. Called on every rank (uniform), but
// only leaders do work; the want-NIC predicate is uniform so the collective
// ensure_nic build keeps all ranks in step.
void Colls::inter_barrier(Communicator& c, int tag, CommState& st) {
  HierState& h = st.hier;
  const ModelParams& p = *world_.pml().ctx().params;
  const bool want_nic =
      world_.options().coll.nic &&
      static_cast<int>(h.leaders.size()) >= p.coll_nic_min_ranks;
  if (want_nic) ensure_nic(c, st.nic_leaders, h.leaders);
  if (h.leader_pos < 0 || h.leaders.size() < 2) return;
  if (want_nic && st.nic_leaders.usable) {
    nic_round(st.nic_leaders, nullptr, 0);
    return;
  }
  const Group g{&h.leaders, static_cast<int>(h.leaders.size()), h.leader_pos};
  ref_barrier(c, tag, g);
}

void Colls::inter_allreduce(Communicator& c, int tag, CommState& st,
                            double* buf, std::size_t count) {
  HierState& h = st.hier;
  const ModelParams& p = *world_.pml().ctx().params;
  const std::size_t bytes = count * sizeof(double);
  const bool want_nic =
      world_.options().coll.nic && bytes > 0 &&
      bytes <= p.coll_nic_max_bytes &&
      static_cast<int>(h.leaders.size()) >= p.coll_nic_min_ranks;
  if (want_nic) ensure_nic(c, st.nic_leaders, h.leaders);
  if (h.leader_pos < 0 || h.leaders.size() < 2) return;
  if (want_nic && st.nic_leaders.usable) {
    nic_round(st.nic_leaders, buf, count);
    return;
  }
  const Group g{&h.leaders, static_cast<int>(h.leaders.size()), h.leader_pos};
  ref_allreduce(c, tag, g, buf, count);
}

void Colls::hier_barrier(Communicator& c, int tag, CommState& st) {
  HierState& h = st.hier;
  ShmSeg& seg = *h.seg;
  const std::uint64_t r = ++h.round;
  if (h.leader_pos < 0) {
    charge_flag();
    seg.slots[static_cast<std::size_t>(h.lidx)].in_gen = r;
    inter_barrier(c, tag, st);  // uniform no-op for non-leaders
    shm_wait(seg.out_gen, r);
    charge_flag();
    seg.slots[static_cast<std::size_t>(h.lidx)].ack_gen = r;
    return;
  }
  for (std::size_t i = 1; i < h.locals.size(); ++i)
    shm_wait(seg.slots[i].in_gen, r);
  inter_barrier(c, tag, st);
  charge_flag();
  seg.out_gen = r;
  for (std::size_t i = 1; i < h.locals.size(); ++i)
    shm_wait(seg.slots[i].ack_gen, r);
}

void Colls::hier_allreduce(Communicator& c, int tag, CommState& st,
                           const double* send, double* recv,
                           std::size_t count) {
  HierState& h = st.hier;
  ShmSeg& seg = *h.seg;
  const std::uint64_t r = ++h.round;
  const std::size_t bytes = count * sizeof(double);
  if (h.leader_pos < 0) {
    ShmSeg::Slot& slot = seg.slots[static_cast<std::size_t>(h.lidx)];
    slot.data.assign(reinterpret_cast<const std::uint8_t*>(send),
                     reinterpret_cast<const std::uint8_t*>(send) + bytes);
    charge_copy(bytes);
    charge_flag();
    slot.in_gen = r;
    inter_allreduce(c, tag, st, nullptr, count);  // uniform no-op
    shm_wait(seg.out_gen, r);
    charge_copy(bytes);
    std::memcpy(recv, seg.out.data(), bytes);
    charge_flag();
    slot.ack_gen = r;
    return;
  }
  std::vector<double> acc(send, send + count), tmp(count);
  for (std::size_t i = 1; i < h.locals.size(); ++i) {
    shm_wait(seg.slots[i].in_gen, r);
    charge_copy(bytes);
    std::memcpy(tmp.data(), seg.slots[i].data.data(), bytes);
    for (std::size_t j = 0; j < count; ++j) acc[j] += tmp[j];
  }
  inter_allreduce(c, tag, st, acc.data(), count);
  charge_copy(bytes);
  std::memcpy(recv, acc.data(), bytes);
  seg.out.assign(reinterpret_cast<const std::uint8_t*>(acc.data()),
                 reinterpret_cast<const std::uint8_t*>(acc.data()) + bytes);
  charge_copy(bytes);
  charge_flag();
  seg.out_gen = r;
  for (std::size_t i = 1; i < h.locals.size(); ++i)
    shm_wait(seg.slots[i].ack_gen, r);
}

void Colls::hier_bcast(Communicator& c, int tag, CommState& st, void* buf,
                       std::size_t count, const dtype::DatatypePtr& type,
                       int root) {
  HierState& h = st.hier;
  ShmSeg& seg = *h.seg;
  const std::uint64_t r = ++h.round;
  const std::size_t bytes = count * type->size();  // contiguous (gated)
  const std::int32_t root_node = h.node_of[static_cast<std::size_t>(root)];
  int root_leader_pos = 0;
  for (std::size_t i = 0; i < h.leaders.size(); ++i)
    if (h.node_of[static_cast<std::size_t>(h.leaders[i])] == root_node)
      root_leader_pos = static_cast<int>(i);
  if (h.leader_pos < 0) {
    ShmSeg::Slot& slot = seg.slots[static_cast<std::size_t>(h.lidx)];
    if (c.rank() == root) {
      // The root is not its node's leader: hand the payload to the leader
      // through the segment.
      slot.data.assign(static_cast<const std::uint8_t*>(buf),
                       static_cast<const std::uint8_t*>(buf) + bytes);
      charge_copy(bytes);
    }
    charge_flag();
    slot.in_gen = r;
    shm_wait(seg.out_gen, r);
    if (c.rank() != root) {
      charge_copy(bytes);
      std::memcpy(buf, seg.out.data(), bytes);
    }
    charge_flag();
    slot.ack_gen = r;
    return;
  }
  for (std::size_t i = 1; i < h.locals.size(); ++i)
    shm_wait(seg.slots[i].in_gen, r);
  if (h.node_of[static_cast<std::size_t>(c.rank())] == root_node &&
      c.rank() != root) {
    int root_lidx = 0;
    for (std::size_t i = 0; i < h.locals.size(); ++i)
      if (h.locals[i] == root) root_lidx = static_cast<int>(i);
    charge_copy(bytes);
    std::memcpy(buf, seg.slots[static_cast<std::size_t>(root_lidx)].data.data(),
                bytes);
  }
  if (h.leaders.size() >= 2) {
    const Group g{&h.leaders, static_cast<int>(h.leaders.size()),
                  h.leader_pos};
    ref_bcast(c, tag, g, root_leader_pos, buf, count, type);
  }
  seg.out.assign(static_cast<const std::uint8_t*>(buf),
                 static_cast<const std::uint8_t*>(buf) + bytes);
  charge_copy(bytes);
  charge_flag();
  seg.out_gen = r;
  for (std::size_t i = 1; i < h.locals.size(); ++i)
    shm_wait(seg.slots[i].ack_gen, r);
}

void Colls::hier_reduce(Communicator& c, int tag, CommState& st,
                        const double* send, double* recv, std::size_t count,
                        int root) {
  HierState& h = st.hier;
  ShmSeg& seg = *h.seg;
  const std::uint64_t r = ++h.round;
  const std::size_t bytes = count * sizeof(double);
  const std::int32_t root_node = h.node_of[static_cast<std::size_t>(root)];
  int root_leader_pos = 0;
  for (std::size_t i = 0; i < h.leaders.size(); ++i)
    if (h.node_of[static_cast<std::size_t>(h.leaders[i])] == root_node)
      root_leader_pos = static_cast<int>(i);
  if (h.leader_pos < 0) {
    ShmSeg::Slot& slot = seg.slots[static_cast<std::size_t>(h.lidx)];
    slot.data.assign(reinterpret_cast<const std::uint8_t*>(send),
                     reinterpret_cast<const std::uint8_t*>(send) + bytes);
    charge_copy(bytes);
    charge_flag();
    slot.in_gen = r;
    shm_wait(seg.out_gen, r);
    if (c.rank() == root) {
      charge_copy(bytes);
      std::memcpy(recv, seg.out.data(), bytes);
    }
    charge_flag();
    slot.ack_gen = r;
    return;
  }
  std::vector<double> acc(send, send + count), tmp(count);
  for (std::size_t i = 1; i < h.locals.size(); ++i) {
    shm_wait(seg.slots[i].in_gen, r);
    charge_copy(bytes);
    std::memcpy(tmp.data(), seg.slots[i].data.data(), bytes);
    for (std::size_t j = 0; j < count; ++j) acc[j] += tmp[j];
  }
  if (h.leaders.size() >= 2) {
    const Group g{&h.leaders, static_cast<int>(h.leaders.size()),
                  h.leader_pos};
    ref_reduce(c, tag, g, root_leader_pos, acc.data(), acc.data(), count);
  }
  // Only the root's node leader holds the final sum now. Release phase is
  // uniform (out_gen always advances); the payload publish only matters —
  // and only happens — when the root is a non-leader on this node.
  if (c.rank() == root) {
    charge_copy(bytes);
    std::memcpy(recv, acc.data(), bytes);
  } else if (h.leader_pos == root_leader_pos &&
             h.node_of[static_cast<std::size_t>(c.rank())] == root_node) {
    seg.out.assign(reinterpret_cast<const std::uint8_t*>(acc.data()),
                   reinterpret_cast<const std::uint8_t*>(acc.data()) + bytes);
    charge_copy(bytes);
  }
  charge_flag();
  seg.out_gen = r;
  for (std::size_t i = 1; i < h.locals.size(); ++i)
    shm_wait(seg.slots[i].ack_gen, r);
}

}  // namespace oqs::mpi::coll
