// Dispatch, selection rules and per-communicator state management.
//
// Selection (kAuto) must branch IDENTICALLY on every rank of the
// communicator, because the state builds behind the branches are
// collective: the gates below therefore use only values that are uniform
// across ranks (options, communicator size, fabric node count, message
// size) — never local capability, which is instead exchanged inside the
// builds and resolved into a uniform `usable` verdict.
#include "mpi/coll/coll.h"

#include <cassert>
#include <cstring>
#include <numeric>

#include "mpi/mpi.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "ptl/elan4/ptl_elan4.h"

namespace oqs::mpi::coll {

Colls::CommState& Colls::state(const Communicator& c) {
  auto& up = states_[c.context_id()];
  if (up == nullptr) up = std::make_unique<CommState>();
  return *up;
}

bool Colls::hier_gate(const Communicator& c) const {
  // Pigeonhole: more ranks than fabric nodes means some node hosts at
  // least two of them, so the hierarchical split has an intra-node phase
  // to win with. Crucially this is computable without the placement map,
  // from values every rank agrees on — so all ranks decide to build the
  // map collectively before any role-dependent branching.
  return world_.options().coll.hier && c.size() > world_.net().num_nodes();
}

bool Colls::nic_gate(const Communicator& c, std::size_t bytes) const {
  const ModelParams& p = *world_.pml().ctx().params;
  return world_.options().coll.nic && c.size() >= p.coll_nic_min_ranks &&
         (bytes == 0 || bytes <= p.coll_nic_max_bytes);
}

void Colls::charge_flag() {
  world_.pml().ctx().compute(world_.pml().ctx().params->shm_flag_ns);
}

void Colls::charge_copy(std::size_t bytes) {
  const ModelParams& p = *world_.pml().ctx().params;
  world_.pml().ctx().compute(p.host_memcpy_startup_ns +
                             ModelParams::xfer_ns(bytes, p.host_memcpy_mbps));
}

void Colls::shm_wait(const std::uint64_t& gen, std::uint64_t want) {
  const pml::ProcessCtx& ctx = world_.pml().ctx();
  const TimeNs step = ctx.params->shm_flag_ns;
  while (gen < want) ctx.engine->sleep(step);
  ctx.compute(step);  // the flag read that observed the new generation
}

// ------------------------------------------------------------ dispatch ----

void Colls::barrier(Communicator& c) {
  const int tag = c.coll_tag();
  OQS_METRIC_INC("coll.barrier.calls");
  CommState& st = state(c);
  const CollOptions& o = world_.options().coll;
  BarrierAlg alg = o.barrier;
  if (alg == BarrierAlg::kAuto) {
    if (hier_gate(c)) {
      ensure_hier(c, st);
      if (st.hier.multi) alg = BarrierAlg::kHier;
    }
    if (alg == BarrierAlg::kAuto && nic_gate(c, 0)) alg = BarrierAlg::kNic;
    if (alg == BarrierAlg::kAuto) alg = BarrierAlg::kDissemination;
  }
  const Group flat{nullptr, c.size(), c.rank()};
  switch (alg) {
    case BarrierAlg::kHier:
      ensure_hier(c, st);
      OQS_METRIC_INC("coll.barrier.hier");
      hier_barrier(c, tag, st);
      return;
    case BarrierAlg::kNic: {
      std::vector<int> ranks(static_cast<std::size_t>(c.size()));
      std::iota(ranks.begin(), ranks.end(), 0);
      ensure_nic(c, st.nic_flat, std::move(ranks));
      if (st.nic_flat.usable) {
        OQS_METRIC_INC("coll.barrier.nic");
        nic_round(st.nic_flat, nullptr, 0);
        return;
      }
      break;  // capability disagreement: host fallback
    }
    case BarrierAlg::kDissemination:
    case BarrierAlg::kAuto:
      break;
  }
  OQS_METRIC_INC("coll.barrier.dissemination");
  ref_barrier(c, tag, flat);
}

void Colls::bcast(Communicator& c, void* buf, std::size_t count,
                  const dtype::DatatypePtr& type, int root) {
  if (count == 0) return;
  const int tag = c.coll_tag();
  OQS_METRIC_INC("coll.bcast.calls");
  CommState& st = state(c);
  const CollOptions& o = world_.options().coll;
  // The shared-memory phase carries raw bytes, so the hierarchical path is
  // only meaningful for contiguous layouts (uniform across ranks: the
  // datatype signature of a collective must match).
  const bool contig = type->is_contiguous();
  BcastAlg alg = o.bcast;
  if (alg == BcastAlg::kAuto) {
    if (contig && hier_gate(c)) {
      ensure_hier(c, st);
      if (st.hier.multi) alg = BcastAlg::kHier;
    }
    if (alg == BcastAlg::kAuto) alg = BcastAlg::kBinomial;
  }
  if (alg == BcastAlg::kHier && !contig) alg = BcastAlg::kBinomial;
  if (alg == BcastAlg::kHier) {
    ensure_hier(c, st);
    OQS_METRIC_INC("coll.bcast.hier");
    hier_bcast(c, tag, st, buf, count, type, root);
    return;
  }
  OQS_METRIC_INC("coll.bcast.binomial");
  const Group flat{nullptr, c.size(), c.rank()};
  ref_bcast(c, tag, flat, root, buf, count, type);
}

void Colls::reduce_sum(Communicator& c, const double* send, double* recv,
                       std::size_t count, int root) {
  if (count == 0) return;
  const int tag = c.coll_tag();
  OQS_METRIC_INC("coll.reduce.calls");
  CommState& st = state(c);
  ReduceAlg alg = world_.options().coll.reduce;
  if (alg == ReduceAlg::kAuto) {
    if (hier_gate(c)) {
      ensure_hier(c, st);
      if (st.hier.multi) alg = ReduceAlg::kHier;
    }
    if (alg == ReduceAlg::kAuto) alg = ReduceAlg::kBinomial;
  }
  switch (alg) {
    case ReduceAlg::kHier:
      ensure_hier(c, st);
      OQS_METRIC_INC("coll.reduce.hier");
      hier_reduce(c, tag, st, send, recv, count, root);
      return;
    case ReduceAlg::kLinear:
      OQS_METRIC_INC("coll.reduce.linear");
      linear_reduce(c, tag, send, recv, count, root);
      return;
    case ReduceAlg::kBinomial:
    case ReduceAlg::kAuto:
      break;
  }
  OQS_METRIC_INC("coll.reduce.binomial");
  const Group flat{nullptr, c.size(), c.rank()};
  ref_reduce(c, tag, flat, root, send, recv, count);
}

void Colls::allreduce_sum(Communicator& c, const double* send, double* recv,
                          std::size_t count) {
  if (count == 0) return;
  const int tag = c.coll_tag();
  OQS_METRIC_INC("coll.allreduce.calls");
  CommState& st = state(c);
  const ModelParams& p = *world_.pml().ctx().params;
  const std::size_t bytes = count * sizeof(double);
  AllreduceAlg alg = world_.options().coll.allreduce;
  if (alg == AllreduceAlg::kAuto) {
    if (hier_gate(c)) {
      ensure_hier(c, st);
      if (st.hier.multi) alg = AllreduceAlg::kHier;
    }
    if (alg == AllreduceAlg::kAuto && nic_gate(c, bytes))
      alg = AllreduceAlg::kNic;
    if (alg == AllreduceAlg::kAuto)
      alg = bytes >= p.coll_rsag_min_bytes && c.size() >= 4
                ? AllreduceAlg::kRsAg
                : AllreduceAlg::kRecursiveDoubling;
  }
  const Group flat{nullptr, c.size(), c.rank()};
  switch (alg) {
    case AllreduceAlg::kHier:
      ensure_hier(c, st);
      OQS_METRIC_INC("coll.allreduce.hier");
      hier_allreduce(c, tag, st, send, recv, count);
      return;
    case AllreduceAlg::kNic: {
      std::vector<int> ranks(static_cast<std::size_t>(c.size()));
      std::iota(ranks.begin(), ranks.end(), 0);
      ensure_nic(c, st.nic_flat, std::move(ranks));
      if (recv != send) std::memcpy(recv, send, bytes);
      if (st.nic_flat.usable && bytes <= p.coll_nic_max_bytes) {
        OQS_METRIC_INC("coll.allreduce.nic");
        nic_round(st.nic_flat, recv, count);
      } else {
        OQS_METRIC_INC("coll.allreduce.nic_fallback");
        ref_allreduce(c, tag, flat, recv, count);
      }
      return;
    }
    case AllreduceAlg::kRsAg:
      OQS_METRIC_INC("coll.allreduce.rsag");
      if (recv != send) std::memcpy(recv, send, bytes);
      ref_allreduce_rsag(c, tag, flat, recv, count);
      return;
    case AllreduceAlg::kRecursiveDoubling:
    case AllreduceAlg::kAuto:
      break;
  }
  OQS_METRIC_INC("coll.allreduce.recdbl");
  if (recv != send) std::memcpy(recv, send, bytes);
  ref_allreduce_recdbl(c, tag, flat, recv, count);
}

// --------------------------------------------------------------- state ----

void Colls::reset() {
  for (auto& [ctx_id, st] : states_) {
    (void)ctx_id;
    for (NicState* ns : {&st->nic_flat, &st->nic_leaders}) {
      if (!ns->built || ns->dev == nullptr || ns->dev->closed()) continue;
      for (int s = 0; s < kNicSlots; ++s) {
        if (ns->up[s] != nullptr) ns->dev->free_event(ns->up[s]);
        if (ns->down[s] != nullptr) ns->dev->free_event(ns->down[s]);
        if (ns->drain[s] != nullptr) ns->dev->free_event(ns->drain[s]);
        if (!ns->acc[s].empty()) ns->dev->unmap(ns->acc_addr[s]);
        if (!ns->res[s].empty()) ns->dev->unmap(ns->res_addr[s]);
      }
    }
    if (st->hier.seg != nullptr)
      world_.net().node(world_.env().node).shm_unlink(st->hier.shm_key);
  }
  states_.clear();
}

}  // namespace oqs::mpi::coll
