// Reference point-to-point collective algorithms.
//
// All of them run over a Group — an ordered subset of the communicator —
// with one caller-supplied tag per collective: the algorithms are
// structured so no member ever has two concurrent transfers with the same
// peer in the same direction, which (with the PML's per-(peer, context,
// tag) ordering) makes a single tag per operation unambiguous.
#include <cstring>
#include <vector>

#include "mpi/coll/coll.h"
#include "mpi/mpi.h"

namespace oqs::mpi::coll {

namespace {
const dtype::DatatypePtr& dbl() {
  static const dtype::DatatypePtr t = dtype::double_type();
  return t;
}
}  // namespace

// Dissemination barrier (Hensgen/Finkel/Manber): ceil(log2 n) rounds; in
// round k each member signals (idx + 2^k) mod n and waits on
// (idx - 2^k) mod n. Works for any n.
void Colls::ref_barrier(Communicator& c, int tag, const Group& g) {
  const int n = g.n;
  if (n <= 1 || g.idx < 0) return;
  std::uint8_t token = 0;
  for (int step = 1; step < n; step <<= 1) {
    const int to = g.to_comm((g.idx + step) % n);
    const int from = g.to_comm((g.idx - step + n) % n);
    c.sendrecv(&token, 1, to, tag, &token, 1, from, tag, dtype::byte_type());
  }
}

// Binomial-tree broadcast rooted at group position root_idx.
void Colls::ref_bcast(Communicator& c, int tag, const Group& g, int root_idx,
                      void* buf, std::size_t count,
                      const dtype::DatatypePtr& type) {
  const int n = g.n;
  if (n <= 1 || g.idx < 0) return;
  const int rel = (g.idx - root_idx + n) % n;
  int mask = 1;
  while (mask < n) {
    if (rel & mask) {
      const int src = g.to_comm((rel - mask + root_idx) % n);
      c.recv(buf, count, type, src, tag);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < n) {
      const int dst = g.to_comm((rel + mask + root_idx) % n);
      c.send(buf, count, type, dst, tag);
    }
    mask >>= 1;
  }
}

// Binomial-tree reduction to group position root_idx: log2(n) rounds
// instead of the legacy linear root loop. Accumulation happens in a local
// scratch vector, so send == recv aliasing is inherently safe.
void Colls::ref_reduce(Communicator& c, int tag, const Group& g, int root_idx,
                       const double* send, double* recv, std::size_t count) {
  const int n = g.n;
  if (g.idx < 0) return;
  std::vector<double> acc(send, send + count);
  if (n > 1) {
    std::vector<double> tmp(count);
    const int rel = (g.idx - root_idx + n) % n;
    for (int mask = 1; mask < n; mask <<= 1) {
      if (rel & mask) {
        const int dst = g.to_comm((rel - mask + root_idx) % n);
        c.send(acc.data(), count, dbl(), dst, tag);
        break;
      }
      if (rel + mask < n) {
        const int src = g.to_comm((rel + mask + root_idx) % n);
        c.recv(tmp.data(), count, dbl(), src, tag);
        for (std::size_t i = 0; i < count; ++i) acc[i] += tmp[i];
      }
    }
  }
  if (g.idx == root_idx && recv != nullptr)
    std::memcpy(recv, acc.data(), count * sizeof(double));
}

// The legacy algorithm (every rank sends to root, root sums in arrival
// order) — kept selectable as ReduceAlg::kLinear for apples-to-apples
// benchmarking, with the aliasing bug of the original fixed: the root only
// seeds recv from send when they are distinct buffers (memcpy with equal
// pointers is UB).
void Colls::linear_reduce(Communicator& c, int tag, const double* send,
                          double* recv, std::size_t count, int root) {
  if (c.rank() == root) {
    if (recv != send) std::memcpy(recv, send, count * sizeof(double));
    std::vector<double> tmp(count);
    for (int r = 0; r < c.size(); ++r) {
      if (r == root) continue;
      c.recv(tmp.data(), count, dbl(), r, tag);
      for (std::size_t i = 0; i < count; ++i) recv[i] += tmp[i];
    }
  } else {
    c.send(send, count, dbl(), root, tag);
  }
}

// Recursive-doubling allreduce (latency-optimal: ceil(log2 n) exchange
// rounds of the full payload). Non-power-of-2 sizes use the MPICH folding:
// the first 2*rem members pair up (even sends its contribution to odd and
// sits out the exchange; odd folds it in), the power-of-2 remainder runs
// the doubling, and the evens get the result back at the end.
void Colls::ref_allreduce_recdbl(Communicator& c, int tag, const Group& g,
                                 double* buf, std::size_t count) {
  const int n = g.n;
  if (n <= 1 || g.idx < 0) return;
  int pof2 = 1;
  while (pof2 * 2 <= n) pof2 *= 2;
  const int rem = n - pof2;
  std::vector<double> tmp(count);
  int newidx = -1;
  if (g.idx < 2 * rem) {
    if (g.idx % 2 == 0) {
      c.send(buf, count, dbl(), g.to_comm(g.idx + 1), tag);
    } else {
      c.recv(tmp.data(), count, dbl(), g.to_comm(g.idx - 1), tag);
      for (std::size_t i = 0; i < count; ++i) buf[i] += tmp[i];
      newidx = g.idx / 2;
    }
  } else {
    newidx = g.idx - rem;
  }
  if (newidx >= 0) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int peer_new = newidx ^ mask;
      const int peer =
          g.to_comm(peer_new < rem ? peer_new * 2 + 1 : peer_new + rem);
      c.sendrecv(buf, count, peer, tag, tmp.data(), count, peer, tag, dbl());
      for (std::size_t i = 0; i < count; ++i) buf[i] += tmp[i];
    }
  }
  if (g.idx < 2 * rem) {
    if (g.idx % 2 == 1)
      c.send(buf, count, dbl(), g.to_comm(g.idx - 1), tag);
    else
      c.recv(buf, count, dbl(), g.to_comm(g.idx + 1), tag);
  }
}

// Ring reduce-scatter + ring allgather (Rabenseifner-style,
// bandwidth-optimal: each member moves ~2*count elements total regardless
// of n). Any group size; elements are block-partitioned with the first
// count % n blocks one element larger.
void Colls::ref_allreduce_rsag(Communicator& c, int tag, const Group& g,
                               double* buf, std::size_t count) {
  const int n = g.n;
  if (n <= 1 || g.idx < 0) return;
  std::vector<std::size_t> cnt(static_cast<std::size_t>(n)),
      off(static_cast<std::size_t>(n));
  const std::size_t q = count / static_cast<std::size_t>(n);
  const std::size_t rmd = count % static_cast<std::size_t>(n);
  std::size_t at = 0;
  for (int i = 0; i < n; ++i) {
    cnt[i] = q + (static_cast<std::size_t>(i) < rmd ? 1 : 0);
    off[i] = at;
    at += cnt[i];
  }
  const int right = g.to_comm((g.idx + 1) % n);
  const int left = g.to_comm((g.idx - 1 + n) % n);
  std::vector<double> tmp(q + 1);
  // Reduce-scatter: after n-1 shifts, member i holds the fully reduced
  // block (i+1) mod n.
  for (int s = 0; s < n - 1; ++s) {
    const int sc = (g.idx - s + n) % n;
    const int rc = (g.idx - s - 1 + n) % n;
    c.sendrecv(buf + off[sc], cnt[sc], right, tag, tmp.data(), cnt[rc], left,
               tag, dbl());
    for (std::size_t i = 0; i < cnt[rc]; ++i) buf[off[rc] + i] += tmp[i];
  }
  // Allgather: circulate the reduced blocks the other n-1 shifts.
  int have = (g.idx + 1) % n;
  for (int s = 0; s < n - 1; ++s) {
    const int nxt = (have - 1 + n) % n;
    c.sendrecv(buf + off[have], cnt[have], right, tag, buf + off[nxt],
               cnt[nxt], left, tag, dbl());
    have = nxt;
  }
}

// Size-based pick between the two host allreduce algorithms (used directly
// and as the fallback under a forced-but-unusable kNic).
void Colls::ref_allreduce(Communicator& c, int tag, const Group& g,
                          double* buf, std::size_t count) {
  const ModelParams& p = *world_.pml().ctx().params;
  if (count * sizeof(double) >= p.coll_rsag_min_bytes && g.n >= 4)
    ref_allreduce_rsag(c, tag, g, buf, count);
  else
    ref_allreduce_recdbl(c, tag, g, buf, count);
}

}  // namespace oqs::mpi::coll
