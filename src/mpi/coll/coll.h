// Collectives framework: one dispatch point per MPI collective, selectable
// algorithms behind it.
//
// Three families:
//  - Reference point-to-point algorithms (dissemination barrier, binomial
//    bcast/reduce, recursive-doubling and ring reduce-scatter+allgather
//    allreduce), expressed over an arbitrary subgroup of a communicator so
//    the hierarchical layer can reuse them for its inter-node phase.
//  - NIC-offloaded barrier / small-message allreduce: a combining tree
//    programmed into the Elan4 NICs with chained QDMA descriptors and
//    countdown events, so the critical path between a rank's arrival and
//    the completion broadcast involves no host except at the root's own
//    arrival (see the protocol walkthrough in nic.cc and DESIGN.md).
//  - Hierarchical composition: collectives split into an intra-node
//    shared-memory phase (leader election over the ranks sharing a node)
//    and an inter-node phase over the leaders.
//
// Per-communicator state (placement map, shared segment, NIC tree) is
// built lazily and collectively on the first routed collective, keyed by
// context id, and is placement-bound: migration or any other membership
// change invalidates it, which is why World::migrate() resets the local
// cache and why the kAuto rules only build state for communicators whose
// shape can benefit (see ensure_hier/ensure_nic call sites in coll.cc).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dtype/datatype.h"
#include "elan4/device.h"
#include "mpi/coll/options.h"

namespace oqs::mpi {
class Communicator;
class World;
}  // namespace oqs::mpi

namespace oqs::mpi::coll {

class Colls {
 public:
  explicit Colls(World& world) : world_(world) {}
  ~Colls() { reset(); }
  Colls(const Colls&) = delete;
  Colls& operator=(const Colls&) = delete;

  // The dispatch points (called by Communicator; size() > 1 guaranteed).
  void barrier(Communicator& c);
  void bcast(Communicator& c, void* buf, std::size_t count,
             const dtype::DatatypePtr& type, int root);
  void reduce_sum(Communicator& c, const double* send, double* recv,
                  std::size_t count, int root);
  void allreduce_sum(Communicator& c, const double* send, double* recv,
                     std::size_t count);

  // Release device resources (NIC events, mapped slots, shared segments).
  // Must run while the Elan4 devices are still open: World calls it before
  // tearing down the PML in finalize() and migrate(). Idempotent.
  void reset();

 private:
  static constexpr int kNicSlots = 2;

  // A subgroup of a communicator taking part in one phase: position i
  // holds the communicator rank of the i-th member. Flat collectives use
  // the identity group; hierarchical inter phases use the leaders.
  struct Group {
    const std::vector<int>* ranks = nullptr;  // nullptr = identity
    int n = 0;
    int idx = -1;  // my position, -1 if not a member
    int to_comm(int i) const {
      return ranks != nullptr ? (*ranks)[static_cast<std::size_t>(i)] : i;
    }
  };

  // Intra-node shared segment (one per node per communicator; all local
  // ranks attach). Synchronization is by monotonic generation counters:
  // each hierarchical collective is a round; writers set a counter to the
  // round number, readers poll for >= round. The trailing ack sweep is
  // what makes slot/out reuse in the next round safe.
  struct ShmSeg {
    struct Slot {
      std::vector<std::uint8_t> data;
      std::uint64_t in_gen = 0;   // local rank's contribution deposited
      std::uint64_t ack_gen = 0;  // local rank consumed the round's result
    };
    std::vector<Slot> slots;        // one per local rank
    std::vector<std::uint8_t> out;  // leader's published result
    std::uint64_t out_gen = 0;
  };

  struct HierState {
    bool built = false;
    bool multi = false;        // any node hosts >= 2 ranks
    std::vector<int> node_of;  // comm rank -> node id
    std::vector<int> locals;   // comm ranks on my node (ascending)
    int lidx = -1;             // my position in locals
    std::vector<int> leaders;  // comm ranks, lowest rank per node
    int leader_pos = -1;       // my position in leaders; -1 = not a leader
    std::shared_ptr<ShmSeg> seg;
    std::string shm_key;
    std::uint64_t round = 0;
  };

  // Exchanged once per NIC-tree build: where each member's accumulator /
  // result slots live and which event-table indices to fire. Unlike the
  // hardware broadcast, nothing here must be symmetric across contexts —
  // but the events ARE allocated uniformly on every rank (members or not)
  // so the symmetric-index invariant hwcoll relies on stays intact.
  struct NicPeerInfo {
    elan4::Vpid vpid;
    elan4::E4Addr acc[kNicSlots];
    elan4::E4Addr res[kNicSlots];
    std::int32_t up[kNicSlots];
    std::int32_t down[kNicSlots];
    std::int32_t capable;
  };

  struct NicState {
    bool built = false;
    bool usable = false;     // every group member has an Elan4 context
    std::vector<int> group;  // tree index -> comm rank
    int tidx = -1;           // my tree index; -1 = not a member
    elan4::Elan4Device* dev = nullptr;
    std::vector<double> acc[kNicSlots], res[kNicSlots];
    elan4::E4Addr acc_addr[kNicSlots] = {}, res_addr[kNicSlots] = {};
    elan4::E4Event* up[kNicSlots] = {nullptr, nullptr};
    elan4::E4Event* down[kNicSlots] = {nullptr, nullptr};
    elan4::E4Event* drain[kNicSlots] = {nullptr, nullptr};
    std::vector<NicPeerInfo> peers;  // by tree index
    int parent = -1;                 // tree indices
    std::vector<int> children;
    std::uint64_t seq = 0;
  };

  struct CommState {
    HierState hier;
    NicState nic_flat;     // tree over all comm ranks
    NicState nic_leaders;  // tree over the node leaders
  };

  CommState& state(const Communicator& c);

  // --- reference algorithms (reference.cc) ---
  void ref_barrier(Communicator& c, int tag, const Group& g);
  void ref_bcast(Communicator& c, int tag, const Group& g, int root_idx,
                 void* buf, std::size_t count, const dtype::DatatypePtr& type);
  void ref_reduce(Communicator& c, int tag, const Group& g, int root_idx,
                  const double* send, double* recv, std::size_t count);
  void linear_reduce(Communicator& c, int tag, const double* send, double* recv,
                     std::size_t count, int root);
  // In-place allreduce over the group (buf is both input and output).
  void ref_allreduce_recdbl(Communicator& c, int tag, const Group& g,
                            double* buf, std::size_t count);
  void ref_allreduce_rsag(Communicator& c, int tag, const Group& g,
                          double* buf, std::size_t count);
  void ref_allreduce(Communicator& c, int tag, const Group& g, double* buf,
                     std::size_t count);

  // --- NIC combining tree (nic.cc) ---
  void ensure_nic(Communicator& c, NicState& st, std::vector<int> group);
  void prep_nic_slot(NicState& st, int slot);
  // One tree round: count == 0 is a barrier, else an in-place allreduce of
  // buf[0..count) (count * 8 must fit coll_nic_max_bytes).
  void nic_round(NicState& st, double* buf, std::size_t count);

  // --- hierarchical composition (hier.cc) ---
  void ensure_hier(Communicator& c, CommState& st);
  void hier_barrier(Communicator& c, int tag, CommState& st);
  void hier_bcast(Communicator& c, int tag, CommState& st, void* buf,
                  std::size_t count, const dtype::DatatypePtr& type, int root);
  void hier_reduce(Communicator& c, int tag, CommState& st, const double* send,
                   double* recv, std::size_t count, int root);
  void hier_allreduce(Communicator& c, int tag, CommState& st,
                      const double* send, double* recv, std::size_t count);
  // Inter-node phases over the leader group (NIC when permitted + usable).
  void inter_barrier(Communicator& c, int tag, CommState& st);
  void inter_allreduce(Communicator& c, int tag, CommState& st, double* buf,
                       std::size_t count);

  // Shared-memory helpers (cost model: shm_flag_ns per flag hop, host
  // memcpy rate for payload copies).
  void shm_wait(const std::uint64_t& gen, std::uint64_t want);
  void charge_flag();
  void charge_copy(std::size_t bytes);

  // Uniform-across-ranks heuristics for the kAuto rules.
  bool hier_gate(const Communicator& c) const;
  bool nic_gate(const Communicator& c, std::size_t bytes) const;

  World& world_;
  std::map<int, std::unique_ptr<CommState>> states_;  // by context id
};

}  // namespace oqs::mpi::coll
