// Collective-algorithm selection knobs.
//
// Every MPI collective routed through the framework (barrier, bcast,
// reduce_sum, allreduce_sum) is dispatched to one of several algorithms:
// the point-to-point references, the NIC-offloaded combining tree, or the
// hierarchical (intra-node shared memory + inter-node) composition. kAuto
// picks by communicator size, message size and placement — the rules live
// in coll.cc and are documented in DESIGN.md §Collectives. Forcing a mode
// overrides the rules but still falls back to the reference algorithm when
// the fabric cannot support it (e.g. a rank without an Elan4 context).
#pragma once

namespace oqs::mpi::coll {

enum class BarrierAlg { kAuto, kDissemination, kNic, kHier };
enum class BcastAlg { kAuto, kBinomial, kHier };
enum class ReduceAlg { kAuto, kLinear, kBinomial, kHier };
enum class AllreduceAlg { kAuto, kRecursiveDoubling, kRsAg, kNic, kHier };

struct CollOptions {
  BarrierAlg barrier = BarrierAlg::kAuto;
  BcastAlg bcast = BcastAlg::kAuto;
  ReduceAlg reduce = ReduceAlg::kAuto;
  AllreduceAlg allreduce = AllreduceAlg::kAuto;
  // Permissions for the auto rules (and for the inter-node phase of a
  // forced kHier): allow hierarchical composition / NIC offload.
  bool hier = true;
  bool nic = true;

  bool all_auto() const {
    return barrier == BarrierAlg::kAuto && bcast == BcastAlg::kAuto &&
           reduce == ReduceAlg::kAuto && allreduce == AllreduceAlg::kAuto &&
           hier && nic;
  }
};

}  // namespace oqs::mpi::coll
