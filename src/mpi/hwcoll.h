// Hardware-collective component: broadcast via the Elite switches.
//
// The paper (§4.1) notes that Quadrics hardware broadcast requires the
// global virtual address space, which only processes that joined the job
// synchronously share — dynamically (re)joined processes cannot use it.
// try_hw_bcast() makes that precondition concrete: it maps the buffer on
// every rank, allgathers the resulting E4 addresses and event indices, and
// uses the hardware path only when they all agree; otherwise it reports
// false and the caller falls back to the point-to-point broadcast.
#pragma once

#include <cstddef>

#include "mpi/mpi.h"

namespace oqs::mpi {

// Collective over `comm`. Returns true if the hardware broadcast ran (buf
// on every non-root rank now holds root's bytes); false if the global-
// address-space precondition failed and nothing was transferred.
bool try_hw_bcast(Communicator& comm, World& world, void* buf, std::size_t len,
                  int root);

// Convenience: hardware path when possible, point-to-point otherwise.
// Returns true when the hardware path was used.
bool bcast_auto(Communicator& comm, World& world, void* buf, std::size_t len,
                int root);

// Persistent hardware-broadcast group, the way libelan set its collectives
// up: the global staging buffer, completion events, and the address-space
// verification happen once at creation; each bcast() is then a single
// switch-replicated transfer. A ring of staging slots pipelines successive
// rounds; a group barrier every kSlots rounds bounds the skew.
class HwBcastGroup {
 public:
  // Collective. max_bytes bounds the per-broadcast payload.
  HwBcastGroup(Communicator& comm, World& world, std::size_t max_bytes);
  ~HwBcastGroup();
  HwBcastGroup(const HwBcastGroup&) = delete;
  HwBcastGroup& operator=(const HwBcastGroup&) = delete;

  // False when the global virtual address space could not be established
  // (asymmetric allocation histories); bcast() then must not be called.
  bool valid() const { return valid_; }

  // Collective broadcast of len <= max_bytes from root.
  void bcast(void* buf, std::size_t len, int root);

 private:
  static constexpr int kSlots = 4;

  Communicator& comm_;
  elan4::Elan4Device* dev_ = nullptr;
  std::size_t max_bytes_;
  std::vector<std::uint8_t> staging_;
  elan4::E4Addr staging_addr_ = elan4::kNullE4Addr;
  elan4::E4Event* arrive_[kSlots] = {};
  int arrive_index_[kSlots] = {};
  elan4::E4Event* injected_ = nullptr;
  std::vector<elan4::Vpid> vpids_;
  bool valid_ = false;
  std::uint64_t round_ = 0;
};

}  // namespace oqs::mpi
