#include "mpi/hwcoll.h"

#include <cassert>
#include <cstring>

#include "ptl/elan4/ptl_elan4.h"

namespace oqs::mpi {

bool try_hw_bcast(Communicator& comm, World& world, void* buf, std::size_t len,
                  int root) {
  ptl_elan4::PtlElan4* ptl = world.elan4_ptl();

  struct Info {
    elan4::Vpid vpid;
    elan4::E4Addr addr;
    std::int32_t event_index;
    std::int32_t capable;
  };
  Info mine{elan4::kInvalidVpid, elan4::kNullE4Addr, -1, 0};

  elan4::Elan4Device* dev = nullptr;
  elan4::E4Event* arrive = nullptr;
  elan4::E4Event* injected = nullptr;
  if (ptl != nullptr) {
    dev = &ptl->device();
    mine.vpid = dev->vpid();
    mine.addr = dev->map(buf, len == 0 ? 1 : len);
    // Allocate both events on every rank so the symmetric event tables stay
    // aligned for future calls.
    arrive = dev->alloc_event("hwb-arrive");
    mine.event_index = dev->last_event_index();
    injected = dev->alloc_event("hwb-inject");
    arrive->init(1);
    injected->init(1);
    mine.capable = 1;
  }

  std::vector<Info> all(static_cast<std::size_t>(comm.size()));
  comm.allgather(&mine, sizeof(Info), all.data());

  bool agree = true;
  for (const Info& i : all) {
    agree &= i.capable == 1;
    agree &= i.addr == all[0].addr;
    agree &= i.event_index == all[0].event_index;
  }
  if (!agree) {
    // The global virtual address space is not intact (e.g. a dynamically
    // joined process with a different allocation history). Release the
    // per-call events too: free_event() recycles the table slot through the
    // free list in allocation order, so the symmetric-index invariant holds
    // across calls without growing the table by two entries per call.
    if (dev != nullptr) {
      dev->free_event(arrive);
      dev->free_event(injected);
      dev->unmap(mine.addr);
    }
    return false;
  }

  if (comm.rank() == root) {
    std::vector<elan4::Vpid> group;
    for (int r = 0; r < comm.size(); ++r)
      if (r != root) group.push_back(all[static_cast<std::size_t>(r)].vpid);
    dev->hw_broadcast(group, mine.addr, static_cast<std::uint32_t>(len),
                      mine.event_index, injected);
    while (!injected->done()) dev->charge_poll();
  } else {
    while (!arrive->done()) dev->charge_poll();
  }
  dev->free_event(arrive);
  dev->free_event(injected);
  dev->unmap(mine.addr);
  return true;
}

bool bcast_auto(Communicator& comm, World& world, void* buf, std::size_t len,
                int root) {
  if (try_hw_bcast(comm, world, buf, len, root)) return true;
  comm.bcast(buf, len, dtype::byte_type(), root);
  return false;
}

HwBcastGroup::HwBcastGroup(Communicator& comm, World& world, std::size_t max_bytes)
    : comm_(comm), max_bytes_(max_bytes) {
  ptl_elan4::PtlElan4* ptl = world.elan4_ptl();

  struct Info {
    elan4::Vpid vpid;
    elan4::E4Addr addr;
    std::int32_t idx0;
    std::int32_t capable;
  };
  Info mine{elan4::kInvalidVpid, elan4::kNullE4Addr, -1, 0};

  if (ptl != nullptr) {
    dev_ = &ptl->device();
    staging_.resize(max_bytes_ * kSlots);
    staging_addr_ = dev_->map(staging_.data(), staging_.size());
    for (int s = 0; s < kSlots; ++s) {
      arrive_[s] = dev_->alloc_event("hwbg-arrive");
      arrive_index_[s] = dev_->last_event_index();
      arrive_[s]->init(1);
    }
    injected_ = dev_->alloc_event("hwbg-inject");
    mine.vpid = dev_->vpid();
    mine.addr = staging_addr_;
    mine.idx0 = arrive_index_[0];
    mine.capable = 1;
  }

  std::vector<Info> all(static_cast<std::size_t>(comm_.size()));
  comm_.allgather(&mine, sizeof(Info), all.data());
  valid_ = true;
  for (const Info& i : all) {
    valid_ &= i.capable == 1;
    valid_ &= i.addr == all[0].addr;
    valid_ &= i.idx0 == all[0].idx0;
    vpids_.push_back(i.vpid);
  }
  comm_.barrier();
}

HwBcastGroup::~HwBcastGroup() {
  if (dev_ == nullptr || dev_->closed()) return;
  // Symmetric with the constructor: the kSlots arrival events and the
  // injection event go back to the table's free list, not just the staging
  // mapping — a long-lived job creating groups per phase must not grow the
  // event table monotonically.
  for (int s = 0; s < kSlots; ++s)
    if (arrive_[s] != nullptr) dev_->free_event(arrive_[s]);
  if (injected_ != nullptr) dev_->free_event(injected_);
  if (staging_addr_ != elan4::kNullE4Addr) dev_->unmap(staging_addr_);
}

void HwBcastGroup::bcast(void* buf, std::size_t len, int root) {
  assert(valid_ && "group has no global address space");
  assert(len <= max_bytes_);
  const int slot = static_cast<int>(round_ % kSlots);
  const std::size_t slot_off = static_cast<std::size_t>(slot) * max_bytes_;

  if (comm_.rank() == root) {
    dev_->charge_copy(len);
    std::memcpy(staging_.data() + slot_off, buf, len);
    std::vector<elan4::Vpid> group;
    for (int r = 0; r < comm_.size(); ++r)
      if (r != root) group.push_back(vpids_[static_cast<std::size_t>(r)]);
    injected_->init(1);
    dev_->hw_broadcast(group, staging_addr_ + slot_off,
                       static_cast<std::uint32_t>(len), arrive_index_[slot],
                       injected_);
    while (!injected_->done()) dev_->charge_poll();
  } else {
    while (!arrive_[slot]->done()) dev_->charge_poll();
    dev_->charge_copy(len);
    std::memcpy(buf, staging_.data() + slot_off, len);
    arrive_[slot]->init(1);  // re-arm for the slot's next lap
  }

  ++round_;
  // Bound pipeline skew to the slot-ring depth.
  if (round_ % kSlots == 0) comm_.barrier();
}

}  // namespace oqs::mpi
