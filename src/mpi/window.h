// MPI-2 one-sided communication over Elan4 RDMA.
//
// The paper targets full MPI-2 compliance; one-sided operations map almost
// directly onto the Elan4 primitives the PTL already exercises: window
// creation registers the exposed region with the NIC MMU and allgathers the
// (VPID, E4_Addr) pairs; put/get issue RDMA write/read descriptors against
// the target's exposed address; fence polls the descriptors' events to
// local completion (which on Elan4 implies remote placement for writes)
// and closes the epoch with a barrier.
//
// Active-target BSP style only (fence epochs) — the synchronization modes
// MPICH-QsNetII-era applications used.
#pragma once

#include <cstddef>
#include <vector>

#include "elan4/device.h"
#include "mpi/mpi.h"
#include "ptl/elan4/ptl_elan4.h"

namespace oqs::mpi {

class Window {
 public:
  // Collective over `comm`: every rank exposes [base, base+len). len may
  // differ per rank; offsets are validated against the target's length.
  Window(Communicator& comm, World& world, void* base, std::size_t len);
  ~Window();
  Window(const Window&) = delete;
  Window& operator=(const Window&) = delete;

  std::size_t size() const { return len_; }

  // One-sided data movement within an epoch. Nonblocking: completion is
  // guaranteed only after the next fence().
  Status put(int target_rank, const void* src, std::size_t len,
             std::size_t target_offset);
  Status get(int target_rank, void* dst, std::size_t len,
             std::size_t source_offset);

  // Close the epoch: drain all outstanding RMA issued by this rank, then
  // synchronize the group so everyone's exposure epoch advances together.
  void fence();

  std::size_t pending() const { return pending_.size(); }

 private:
  struct PendingOp {
    elan4::E4Event* event;
    elan4::E4Addr mapped;  // temporary mapping of the local buffer
  };

  Communicator& comm_;
  World& world_;
  elan4::Elan4Device* dev_;
  char* base_;
  std::size_t len_;
  elan4::E4Addr local_addr_ = elan4::kNullE4Addr;
  std::vector<elan4::Vpid> peer_vpid_;
  std::vector<elan4::E4Addr> peer_addr_;
  std::vector<std::uint64_t> peer_len_;
  std::vector<PendingOp> pending_;
};

}  // namespace oqs::mpi
