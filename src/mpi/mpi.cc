#include "mpi/mpi.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "base/log.h"
#include "mpi/coll/coll.h"
#include "ptl/elan4/ptl_elan4.h"
#include "ptl/tcp/ptl_tcp.h"

namespace oqs::mpi {

namespace {
constexpr int kCollTagBase = 0x40000000;
constexpr int kSpawnCtxBase = 0x1000;

std::vector<std::uint8_t> serialize_contacts(const pml::ContactInfo& info) {
  std::vector<std::uint8_t> out;
  rte::put_pod(out, static_cast<std::int32_t>(info.size()));
  for (const auto& [name, blob] : info) {
    rte::put_pod(out, static_cast<std::int32_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    rte::put_pod(out, static_cast<std::int32_t>(blob.size()));
    out.insert(out.end(), blob.begin(), blob.end());
  }
  return out;
}

pml::ContactInfo deserialize_contacts(const std::vector<std::uint8_t>& in) {
  pml::ContactInfo info;
  std::size_t off = 0;
  const int n = rte::get_pod<std::int32_t>(in, off);
  for (int i = 0; i < n; ++i) {
    const int name_len = rte::get_pod<std::int32_t>(in, off);
    std::string name(reinterpret_cast<const char*>(in.data() + off),
                     static_cast<std::size_t>(name_len));
    off += static_cast<std::size_t>(name_len);
    const int blob_len = rte::get_pod<std::int32_t>(in, off);
    std::vector<std::uint8_t> blob(in.begin() + static_cast<std::ptrdiff_t>(off),
                                   in.begin() + static_cast<std::ptrdiff_t>(off) +
                                       blob_len);
    off += static_cast<std::size_t>(blob_len);
    info.emplace(std::move(name), std::move(blob));
  }
  return info;
}
}  // namespace

void wait_all(std::vector<Request>& reqs) {
  for (Request& r : reqs)
    if (r.valid()) r.wait();
}

std::size_t wait_any(std::vector<Request>& reqs) {
  assert(!reqs.empty());
  World* w = nullptr;
  for (;;) {
    for (std::size_t i = 0; i < reqs.size(); ++i) {
      if (!reqs[i].valid()) continue;
      w = reqs[i].world_;
      if (reqs[i].req_->complete()) return i;
    }
    assert(w != nullptr && "wait_any on all-empty request set");
    if (w->pml().progress() == 0)
      w->pml().ctx().engine->sleep(w->pml().ctx().params->host_poll_ns);
  }
}

// ------------------------------------------------------------ Request ----

bool Request::test() {
  if (!req_) return true;
  if (!req_->complete()) world_->pml().progress();
  return req_->complete();
}

void Request::wait(RecvStatus* st) {
  assert(req_ && "wait on an empty request");
  world_->pml().wait(*req_);
  fill_status(st);
}

void Request::fill_status(RecvStatus* st) const {
  if (st == nullptr) return;
  st->status = req_->status();
  st->bytes = req_->transferred();
  if (req_->kind() == pml::Request::Kind::kRecv) {
    const auto& rr = static_cast<const pml::RecvRequest&>(*req_);
    if (rr.matched) {
      st->source = rr.matched_hdr.src_rank;
      st->tag = rr.matched_hdr.tag;
    }
  }
}

// ------------------------------------------------------- Communicator ----

// Reserved-tag sequence for collective traffic. The 64-bit sequence is
// projected onto a 28-bit tag window, so after 2^28 collectives on one
// communicator a tag value is reused. That is safe only if no message with
// the same (context, tag) is still in flight: collectives are blocking and
// per-communicator ordered, so a rank can be at most one collective — a
// handful of tag values — ahead of the slowest peer, never 2^28. The
// assertion checks the un-consumed-message direction (an in-flight message
// carrying the tag we are about to reissue); the posted-recv direction
// cannot alias because a blocking collective's recvs complete before it
// returns.
int Communicator::coll_tag() {
  constexpr std::uint64_t kCollTagWindow = 1u << 28;
  const int tag = kCollTagBase + static_cast<int>(coll_seq_ % kCollTagWindow);
  if (coll_seq_ >= kCollTagWindow) {
    assert(!world_->pml().iprobe(ctx_, pml::kAnySource, tag, nullptr) &&
           "collective tag window wrapped onto an in-flight message");
  }
  ++coll_seq_;
  return tag;
}

void Communicator::send(const void* buf, std::size_t count,
                        const dtype::DatatypePtr& type, int dst, int tag) {
  auto& p = world_->pml();
  p.ctx().compute(p.ctx().params->mpi_call_ns);
  pml::SendRequest req(*p.ctx().engine, type, buf, count);
  p.start_send(req, ctx_, rank_, dst, tag, gids_[static_cast<std::size_t>(dst)]);
  p.wait(req);
  assert(ok(req.status()) && "blocking send failed");
}

void Communicator::recv(void* buf, std::size_t count, const dtype::DatatypePtr& type,
                        int src, int tag, RecvStatus* st) {
  auto& p = world_->pml();
  p.ctx().compute(p.ctx().params->mpi_call_ns);
  pml::RecvRequest req(*p.ctx().engine, type, buf, count);
  req.ctx = ctx_;
  req.src_rank = src;
  req.tag = tag;
  p.post_recv(req);
  p.wait(req);
  if (st != nullptr) {
    st->status = req.status();
    st->bytes = req.transferred();
    st->source = req.matched ? req.matched_hdr.src_rank : kAnySource;
    st->tag = req.matched ? req.matched_hdr.tag : kAnyTag;
  }
}

Request Communicator::isend(const void* buf, std::size_t count,
                            const dtype::DatatypePtr& type, int dst, int tag) {
  auto& p = world_->pml();
  p.ctx().compute(p.ctx().params->mpi_call_ns);
  auto req = std::make_shared<pml::SendRequest>(*p.ctx().engine, type, buf, count);
  p.start_send(*req, ctx_, rank_, dst, tag, gids_[static_cast<std::size_t>(dst)]);
  return Request(world_, std::move(req));
}

Request Communicator::irecv(void* buf, std::size_t count,
                            const dtype::DatatypePtr& type, int src, int tag) {
  auto& p = world_->pml();
  p.ctx().compute(p.ctx().params->mpi_call_ns);
  auto req = std::make_shared<pml::RecvRequest>(*p.ctx().engine, type, buf, count);
  req->ctx = ctx_;
  req->src_rank = src;
  req->tag = tag;
  p.post_recv(*req);
  return Request(world_, std::move(req));
}

void Communicator::sendrecv(const void* send_buf, std::size_t send_count,
                            int dst, int send_tag, void* recv_buf,
                            std::size_t recv_count, int src, int recv_tag,
                            const dtype::DatatypePtr& type, RecvStatus* st) {
  Request r = irecv(recv_buf, recv_count, type, src, recv_tag);
  Request s = isend(send_buf, send_count, type, dst, send_tag);
  r.wait(st);
  s.wait();
}

bool Communicator::iprobe(int src, int tag, RecvStatus* st) {
  auto& p = world_->pml();
  p.progress();
  pml::MatchHeader hdr;
  if (!p.iprobe(ctx_, src, tag, &hdr)) return false;
  if (st != nullptr) {
    st->source = hdr.src_rank;
    st->tag = hdr.tag;
    st->bytes = hdr.len;
    st->status = Status::kOk;
  }
  return true;
}

void Communicator::probe(int src, int tag, RecvStatus* st) {
  auto& p = world_->pml();
  while (!iprobe(src, tag, st)) {
    if (p.progress() == 0)
      p.ctx().engine->sleep(p.ctx().params->host_poll_ns);
  }
}

// The routed collectives delegate to the framework (src/mpi/coll), which
// selects among the reference point-to-point algorithms, the NIC-offloaded
// combining tree and the hierarchical composition. The inline collectives
// below (allgather etc.) stay point-to-point: the framework's collective
// state builds use them, so routing them too would recurse.

void Communicator::barrier() {
  if (size() <= 1) return;
  world_->coll().barrier(*this);
}

void Communicator::bcast(void* buf, std::size_t count, const dtype::DatatypePtr& type,
                         int root) {
  if (size() <= 1) return;
  world_->coll().bcast(*this, buf, count, type, root);
}

void Communicator::reduce_sum(const double* send_buf, double* recv_buf,
                              std::size_t count, int root) {
  if (size() <= 1) {
    // memcpy with identical pointers is UB, and MPI_IN_PLACE-style callers
    // do pass send == recv — the original linear algorithm's root bug.
    if (recv_buf != send_buf)
      std::memcpy(recv_buf, send_buf, count * sizeof(double));
    return;
  }
  world_->coll().reduce_sum(*this, send_buf, recv_buf, count, root);
}

void Communicator::allreduce_sum(const double* send_buf, double* recv_buf,
                                 std::size_t count) {
  if (size() <= 1) {
    if (recv_buf != send_buf)
      std::memcpy(recv_buf, send_buf, count * sizeof(double));
    return;
  }
  world_->coll().allreduce_sum(*this, send_buf, recv_buf, count);
}

void Communicator::allgather(const void* send_buf, std::size_t bytes_each,
                             void* recv_buf) {
  const int n = size();
  const int tag = coll_tag();
  auto* out = static_cast<char*>(recv_buf);
  std::memcpy(out + static_cast<std::size_t>(rank_) * bytes_each, send_buf,
              bytes_each);
  if (n <= 1) return;
  // Ring allgather: n-1 steps, each forwarding the piece received last.
  const int right = (rank_ + 1) % n;
  const int left = (rank_ - 1 + n) % n;
  int have = rank_;  // piece forwarded this step
  for (int step = 0; step < n - 1; ++step) {
    const int incoming = (have - 1 + n) % n;
    sendrecv(out + static_cast<std::size_t>(have) * bytes_each, bytes_each, right,
             tag, out + static_cast<std::size_t>(incoming) * bytes_each,
             bytes_each, left, tag, dtype::byte_type());
    have = incoming;
  }
}

void Communicator::scatter(const void* send_buf, std::size_t bytes_each,
                           void* recv_buf, int root) {
  const int n = size();
  const int tag = coll_tag();
  if (rank_ == root) {
    const auto* in = static_cast<const char*>(send_buf);
    std::memcpy(recv_buf, in + static_cast<std::size_t>(root) * bytes_each,
                bytes_each);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      send(in + static_cast<std::size_t>(r) * bytes_each, bytes_each,
           dtype::byte_type(), r, tag);
    }
  } else {
    recv(recv_buf, bytes_each, dtype::byte_type(), root, tag);
  }
}

void Communicator::gather(const void* send_buf, std::size_t bytes_each,
                          void* recv_buf, int root) {
  const int n = size();
  const int tag = coll_tag();
  if (rank_ == root) {
    auto* out = static_cast<char*>(recv_buf);
    std::memcpy(out + static_cast<std::size_t>(rank_) * bytes_each, send_buf,
                bytes_each);
    for (int r = 0; r < n; ++r) {
      if (r == root) continue;
      recv(out + static_cast<std::size_t>(r) * bytes_each, bytes_each,
           dtype::byte_type(), r, tag);
    }
  } else {
    send(send_buf, bytes_each, dtype::byte_type(), root, tag);
  }
}

void Communicator::alltoall(const void* send_buf, std::size_t bytes_each,
                            void* recv_buf) {
  const int n = size();
  const int tag = coll_tag();
  const auto* in = static_cast<const char*>(send_buf);
  auto* out = static_cast<char*>(recv_buf);
  std::memcpy(out + static_cast<std::size_t>(rank_) * bytes_each,
              in + static_cast<std::size_t>(rank_) * bytes_each, bytes_each);
  // Pairwise exchange: in step s, talk to rank ^ s (power-of-two sizes) or
  // the (rank + s) / (rank - s) shift pair otherwise.
  const bool pow2 = (n & (n - 1)) == 0;
  for (int s = 1; s < n; ++s) {
    const int peer = pow2 ? (rank_ ^ s) : (rank_ + s) % n;
    const int from = pow2 ? peer : (rank_ - s + n) % n;
    sendrecv(in + static_cast<std::size_t>(peer) * bytes_each, bytes_each, peer,
             tag, out + static_cast<std::size_t>(from) * bytes_each, bytes_each,
             from, tag, dtype::byte_type());
  }
}

Communicator Communicator::dup() {
  const int new_ctx = world_->next_ctx_++;
  return Communicator(world_, new_ctx, rank_, gids_);
}

Communicator Communicator::split(int color, int key) {
  const int n = size();
  // Exchange (color, key) so every rank computes the same partition.
  struct Entry {
    std::int32_t color;
    std::int32_t key;
  };
  Entry mine{color, key};
  std::vector<Entry> all(static_cast<std::size_t>(n));
  allgather(&mine, sizeof(Entry), all.data());

  // Enumerate distinct colors in sorted order for deterministic context ids.
  std::vector<int> colors;
  for (const Entry& e : all) colors.push_back(e.color);
  std::sort(colors.begin(), colors.end());
  colors.erase(std::unique(colors.begin(), colors.end()), colors.end());
  const auto cit = std::find(colors.begin(), colors.end(), color);
  const int color_index = static_cast<int>(cit - colors.begin());

  // Members of my color, ordered by (key, old rank).
  std::vector<std::pair<std::pair<int, int>, int>> members;  // ((key,rank),rank)
  for (int r = 0; r < n; ++r) {
    if (all[static_cast<std::size_t>(r)].color != color) continue;
    members.push_back({{all[static_cast<std::size_t>(r)].key, r}, r});
  }
  std::sort(members.begin(), members.end());

  std::vector<int> new_gids;
  int new_rank = -1;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const int old_rank = members[i].second;
    new_gids.push_back(gids_[static_cast<std::size_t>(old_rank)]);
    if (old_rank == rank_) new_rank = static_cast<int>(i);
  }
  assert(new_rank >= 0);

  // Every rank advances the context counter identically; each color takes
  // its slot within the allocated block.
  const int base_ctx = world_->next_ctx_;
  world_->next_ctx_ += static_cast<int>(colors.size());
  return Communicator(world_, base_ctx + color_index, new_rank,
                      std::move(new_gids));
}

// --------------------------------------------------------------- World ----

World::World(rte::Env& env, elan4::QsNet& net, Options opts)
    : env_(env), net_(net), opts_(std::move(opts)) {
  gid_ = env_.world_index;
  known_procs_ = env_.world_size;
  open_stack();
  rte::Registry& reg = env_.rte->registry();
  reg.barrier(env_.job + "/init", env_.world_size);
  // Self included: MPI allows self-sends, which ride the NIC loopback.
  for (int g = 0; g < env_.world_size; ++g) add_peer_from_registry(g);
  std::vector<int> gids(static_cast<std::size_t>(env_.world_size));
  for (int i = 0; i < env_.world_size; ++i) gids[static_cast<std::size_t>(i)] = i;
  comm_.reset(new Communicator(this, /*ctx=*/0, gid_, std::move(gids)));
}

World::World(rte::Env& env, elan4::QsNet& net, Options opts, const SpawnedTag& tag)
    : env_(env), net_(net), opts_(std::move(opts)) {
  gid_ = tag.gid;
  const int gid_base = tag.gid - tag.child_index;
  known_procs_ = gid_base + tag.nchildren;
  open_stack();
  // Wire up with parents and sibling children (and self, for self-sends).
  for (int g : tag.parent_gids) add_peer_from_registry(g);
  for (int j = 0; j < tag.nchildren; ++j) add_peer_from_registry(gid_base + j);
  env_.rte->registry().barrier(tag.key + "/b", tag.nparents + tag.nchildren);
  // The child's world is the merged communicator: parents first, then kids.
  std::vector<int> gids = tag.parent_gids;
  for (int j = 0; j < tag.nchildren; ++j) gids.push_back(gid_base + j);
  comm_.reset(new Communicator(this, tag.ctx, tag.nparents + tag.child_index,
                               std::move(gids)));
}

World::~World() {
  if (!finalized_) finalize();
}

std::string World::proc_key(int gid) const {
  return env_.job + "/proc/" + std::to_string(gid);
}

void World::open_stack() {
  pml::ProcessCtx ctx;
  ctx.engine = &net_.engine();
  ctx.cpu = &net_.node(env_.node).cpu();
  ctx.params = &net_.params();
  ctx.gid = gid_;
  pml_ = std::make_unique<pml::Pml>(ctx);
  pml_->set_sched_policy(opts_.sched);
  pml_->set_inline_rendezvous(opts_.inline_rendezvous);
  pml_->set_pipeline_rendezvous(opts_.pipeline_rendezvous);
  pml_->set_pipeline_frag_bytes(opts_.pipeline_frag_bytes);
  pml_->set_pipeline_depth(opts_.pipeline_depth);
  pml_->set_pipeline_push_frags(opts_.pipeline_push_frags);

  pml::ContactInfo info;
  if (opts_.use_elan4) {
    // One module per rail; the BML stripes across them. Each rail claims
    // its own Elan context and publishes contact info under its own name.
    int rails = std::max(opts_.elan4.rails, 1);
    if (rails > net_.num_rails()) {
      log::warn("mpi", "requested ", rails, " rails, fabric has ",
                net_.num_rails());
      rails = net_.num_rails();
    }
    assert((rails == 1 ||
            opts_.elan4.progress == ptl_elan4::Progress::kPolling) &&
           "multirail requires polling progress (a process cannot block "
           "inside one rail while others carry traffic)");
    for (int r = 0; r < rails; ++r) {
      std::string nm = r == 0 ? "elan4" : "elan4." + std::to_string(r);
      auto ptl = std::make_unique<ptl_elan4::PtlElan4>(
          *pml_, net_, env_.node, opts_.elan4, r, std::move(nm));
      info.emplace(ptl->name(), ptl->contact());
      pml_->add_ptl(std::move(ptl));
    }
  }
  if (opts_.use_tcp) {
    auto ptl = std::make_unique<ptl_tcp::PtlTcp>(*pml_, net_, env_.node,
                                                 opts_.tcp_reliability);
    info.emplace(ptl->name(), ptl->contact());
    pml_->add_ptl(std::move(ptl));
  }
  assert(pml_->num_ptls() > 0 && "at least one PTL must be enabled");
  env_.rte->registry().put(proc_key(gid_), serialize_contacts(info));
  // Lazy reconnection: a send to a departed/migrated peer re-fetches its
  // freshest contact info from the registry.
  pml_->peer_resolver = [this](int gid) {
    return deserialize_contacts(env_.rte->registry().get(proc_key(gid)));
  };
  coll_ = std::make_unique<coll::Colls>(*this);
}

void World::migrate(int new_node) {
  assert(!finalized_);
  // Connection sequence state is part of the checkpoint: peers keep their
  // counters, so the rebuilt stack must resume counting where it stopped.
  const pml::Pml::SequenceState seqs = pml_->export_sequences();
  // Collective state is placement-bound (NIC trees hold peer addresses and
  // event indices; the shared segment lives on the old node), so it is
  // released before the device context goes away and rebuilt lazily after.
  // The kAuto gates guarantee no such state exists for communicators small
  // enough to migrate under (see Colls::hier_gate / nic_gate); forcing a
  // coll algorithm and then migrating mid-job is unsupported.
  coll_.reset();
  pml_->finalize();  // quiesce + goodbyes + release the old context
  pml_.reset();
  env_.node = new_node;
  open_stack();  // fresh context on the new node; contact republished
  pml_->import_sequences(seqs);
}

void World::add_peer_from_registry(int gid) {
  const auto blob = env_.rte->registry().get(proc_key(gid));
  const pml::ContactInfo info = deserialize_contacts(blob);
  bool reachable = false;
  for (std::size_t i = 0; i < pml_->num_ptls(); ++i)
    reachable |= ok(pml_->ptl(i).add_peer(gid, info));
  assert(reachable && "peer published no usable contact info");
}

Communicator World::spawn_merge(int n, std::function<void(World&)> child_main,
                                const std::vector<int>& nodes) {
  assert(n > 0);
  assert(nodes.empty() || static_cast<int>(nodes.size()) == n);
  const std::string key =
      env_.job + "/spawn/" + std::to_string(spawn_seq_++);
  const int nparents = comm_->size();
  const int base = known_procs_;
  const int ctx = kSpawnCtxBase + base;

  if (comm_->rank() == 0) {
    auto main_fn = std::make_shared<std::function<void(World&)>>(std::move(child_main));
    for (int i = 0; i < n; ++i) {
      SpawnedTag tag;
      tag.gid = base + i;
      tag.nparents = nparents;
      tag.nchildren = n;
      tag.child_index = i;
      tag.ctx = ctx;
      tag.parent_gids = comm_->gids_;
      tag.key = key;
      const int node = nodes.empty() ? (base + i) % net_.num_nodes()
                                     : nodes[static_cast<std::size_t>(i)];
      Options child_opts = opts_;
      elan4::QsNet* net = &net_;
      env_.rte->spawn_one(node, [net, child_opts, tag, main_fn](rte::Env& cenv) {
        World child(cenv, *net, child_opts, tag);
        (*main_fn)(child);
      });
    }
  }

  for (int j = 0; j < n; ++j) add_peer_from_registry(base + j);
  env_.rte->registry().barrier(key + "/b", nparents + n);
  known_procs_ = base + n;

  std::vector<int> gids = comm_->gids_;
  for (int j = 0; j < n; ++j) gids.push_back(base + j);
  return Communicator(this, ctx, comm_->rank(), std::move(gids));
}

ptl_elan4::PtlElan4* World::elan4_ptl() { return elan4_rail_ptl(0); }

ptl_elan4::PtlElan4* World::elan4_rail_ptl(int rail) {
  const std::string want =
      rail == 0 ? "elan4" : "elan4." + std::to_string(rail);
  for (std::size_t i = 0; i < pml_->num_ptls(); ++i)
    if (pml_->ptl(i).name() == want)
      return static_cast<ptl_elan4::PtlElan4*>(&pml_->ptl(i));
  return nullptr;
}

void World::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Applications synchronize (e.g. a barrier) before finalize; here we only
  // quiesce our own traffic and leave (paper §4.1's synchronous completion
  // of pending messages before a connection finalizes). Collective device
  // state (NIC tree events/mappings) must go first, while the context is
  // still open.
  coll_.reset();
  pml_->finalize();
  env_.rte->oob().remove_endpoint(env_.oob_id);
}

}  // namespace oqs::mpi
