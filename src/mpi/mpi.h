// The public MPI-2-style API of the library.
//
// One World per process (fiber). Construction performs the dynamic join the
// paper describes: claim an Elan4 context, instantiate PTL modules, publish
// contact info through the RTE registry, and wire up with the peers of the
// job. Communicators give ranks, point-to-point (blocking and nonblocking),
// collectives built over point-to-point, and MPI-2 dynamic process
// management via spawn_merge().
//
// Quickstart:
//   rte.launch(2, [&](rte::Env& env) {
//     mpi::World world(env, qsnet);
//     auto& comm = world.comm();
//     if (comm.rank() == 0) comm.send(buf, n, dtype::byte_type(), 1, 0);
//     else                  comm.recv(buf, n, dtype::byte_type(), 0, 0);
//   });
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dtype/datatype.h"
#include "elan4/qsnet.h"
#include "mpi/coll/options.h"
#include "pml/pml.h"
#include "pml/request.h"
#include "ptl/elan4/options.h"
#include "rte/runtime.h"

namespace oqs::ptl_elan4 {
class PtlElan4;
}

namespace oqs::mpi {

namespace coll {
class Colls;
}

inline constexpr int kAnySource = pml::kAnySource;
inline constexpr int kAnyTag = pml::kAnyTag;

struct Options {
  bool use_elan4 = true;
  bool use_tcp = false;
  // Run the shared go-back-N framing over the TCP PTL too (it is lossless
  // in the model, so this only adds the framing/ack cost — the opt-in
  // exists to exercise the reliability component off the Elan4 path).
  bool tcp_reliability = false;
  ptl_elan4::Options elan4;
  pml::Pml::SchedPolicy sched = pml::Pml::SchedPolicy::kBestWeight;
  // Carry payload in rendezvous first fragments (paper §6.1 ablation; the
  // best configuration leaves this off on RDMA networks).
  bool inline_rendezvous = false;
  // Pipelined rendezvous: long messages split into pipeline fragments — an
  // inline prefix plus eager pushes ride ahead of the CTS, the remainder
  // streams as chunked pulls overlapping registration with transfer, and
  // fragments stripe across rails. Off = the legacy monolithic protocol
  // (single pull; whole-message striping above stripe_min_bytes).
  bool pipeline_rendezvous = true;
  // Overrides for the ModelParams pipeline knobs; 0 / -1 = use ModelParams
  // (pipeline_frag_bytes / pipeline_depth / pipeline_push_frags).
  std::size_t pipeline_frag_bytes = 0;
  int pipeline_depth = 0;
  int pipeline_push_frags = -1;
  // Collective-algorithm selection (see mpi/coll/options.h and DESIGN.md
  // §Collectives): kAuto everywhere by default.
  coll::CollOptions coll;
};

struct RecvStatus {
  int source = kAnySource;
  int tag = kAnyTag;
  std::size_t bytes = 0;
  Status status = Status::kOk;
};

class World;
class Request;

// Complete a set of nonblocking operations.
void wait_all(std::vector<Request>& reqs);
// Complete (at least) one; returns its index.
std::size_t wait_any(std::vector<Request>& reqs);

// Nonblocking-operation handle. Keep it alive until wait()/test() says the
// operation completed; the underlying buffers belong to the caller.
class Request {
 public:
  Request() = default;
  bool valid() const { return req_ != nullptr; }
  bool test();
  void wait(RecvStatus* st = nullptr);
  std::size_t transferred() const { return req_ ? req_->transferred() : 0; }

 private:
  friend class Communicator;
  friend void wait_all(std::vector<Request>&);
  friend std::size_t wait_any(std::vector<Request>&);
  Request(World* w, std::shared_ptr<pml::Request> r) : world_(w), req_(std::move(r)) {}
  void fill_status(RecvStatus* st) const;
  World* world_ = nullptr;
  std::shared_ptr<pml::Request> req_;
};

class Communicator {
 public:
  int rank() const { return rank_; }
  int size() const { return static_cast<int>(gids_.size()); }
  int context_id() const { return ctx_; }

  // --- point to point ---
  void send(const void* buf, std::size_t count, const dtype::DatatypePtr& type,
            int dst, int tag);
  void recv(void* buf, std::size_t count, const dtype::DatatypePtr& type, int src,
            int tag, RecvStatus* st = nullptr);
  Request isend(const void* buf, std::size_t count, const dtype::DatatypePtr& type,
                int dst, int tag);
  Request irecv(void* buf, std::size_t count, const dtype::DatatypePtr& type,
                int src, int tag);
  // Simultaneous send and receive (deadlock-free shift exchanges).
  void sendrecv(const void* send_buf, std::size_t send_count, int dst, int send_tag,
                void* recv_buf, std::size_t recv_count, int src, int recv_tag,
                const dtype::DatatypePtr& type, RecvStatus* st = nullptr);
  // Blocking probe: returns the envelope of the next matching message
  // without consuming it. iprobe is the nonblocking variant.
  void probe(int src, int tag, RecvStatus* st);
  bool iprobe(int src, int tag, RecvStatus* st = nullptr);

  // --- collectives (built on point-to-point, as in the paper's Open MPI) ---
  void barrier();
  void bcast(void* buf, std::size_t count, const dtype::DatatypePtr& type, int root);
  // Element-wise double-precision sum into recv_buf on every rank.
  void allreduce_sum(const double* send_buf, double* recv_buf, std::size_t count);
  // Element-wise double-precision sum to root only.
  void reduce_sum(const double* send_buf, double* recv_buf, std::size_t count,
                  int root);
  // Gather equal-size contributions to root (recv_buf significant at root).
  void gather(const void* send_buf, std::size_t bytes_each, void* recv_buf, int root);
  // Gather equal-size contributions to every rank.
  void allgather(const void* send_buf, std::size_t bytes_each, void* recv_buf);
  // Distribute equal-size pieces of send_buf (significant at root).
  void scatter(const void* send_buf, std::size_t bytes_each, void* recv_buf,
               int root);
  // Personalized all-to-all exchange of equal-size blocks: block i of
  // send_buf goes to rank i; block j of recv_buf comes from rank j.
  void alltoall(const void* send_buf, std::size_t bytes_each, void* recv_buf);

  // Duplicate with a fresh context id (collective).
  Communicator dup();
  // Partition into sub-communicators by color; ranks ordered by (key, rank).
  // Collective over the whole communicator.
  Communicator split(int color, int key);

 private:
  friend class World;
  friend class coll::Colls;
  Communicator(World* w, int ctx, int rank, std::vector<int> gids)
      : world_(w), ctx_(ctx), rank_(rank), gids_(std::move(gids)) {}

  int coll_tag();  // reserved-tag sequence for collective traffic

  World* world_ = nullptr;
  int ctx_ = 0;
  int rank_ = -1;
  std::vector<int> gids_;  // rank -> global process id
  // Collective sequence number. 64-bit so the counter itself never wraps:
  // only its 28-bit projection onto the tag space does, and coll_tag()
  // asserts that projection never lands on an in-flight tag.
  std::uint64_t coll_seq_ = 0;
};

class World {
 public:
  // Collective over the launched job: every process of env's launch must
  // construct a World before any can exit wire-up.
  World(rte::Env& env, elan4::QsNet& net, Options opts = {});
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int rank() const { return comm_->rank(); }
  int size() const { return comm_->size(); }
  int gid() const { return gid_; }
  Communicator& comm() { return *comm_; }
  pml::Pml& pml() { return *pml_; }
  // The collectives framework (algorithm dispatch + cached per-communicator
  // state); rebuilt with the stack on migrate().
  coll::Colls& coll() { return *coll_; }
  // The Elan4 PTL module, when enabled (one-sided windows need its device).
  ptl_elan4::PtlElan4* elan4_ptl();
  // A specific rail's module ("elan4", "elan4.1", ...); nullptr if absent.
  ptl_elan4::PtlElan4* elan4_rail_ptl(int rail);
  rte::Env& env() { return env_; }
  elan4::QsNet& net() { return net_; }
  const Options& options() const { return opts_; }

  // MPI-2 dynamic process management: collectively (over comm world) spawn
  // `n` new processes running child_main, whose World is the merged
  // parents-then-children communicator. Returns the parents' view of that
  // merged communicator. `nodes[i]` optionally places child i.
  Communicator spawn_merge(int n, std::function<void(World&)> child_main,
                           const std::vector<int>& nodes = {});

  // Checkpoint/restart-style migration (paper §4.1: processes "migrate to
  // a remote node on-demand or in case of faults"): quiesce and tear down
  // the communication stack, release the Elan context, claim a fresh one on
  // `new_node`, and republish contact info. Peers reconnect lazily through
  // the registry on their next send. The application must ensure no traffic
  // targets this process between its goodbye and the republication —
  // exactly the quiescence a coordinated checkpoint provides.
  void migrate(int new_node);

  // Collective teardown: quiesce, say goodbye, release the Elan context.
  void finalize();

 private:
  friend class Communicator;
  struct SpawnedTag {
    int gid;
    int nparents;
    int nchildren;
    int child_index;
    int ctx;
    std::vector<int> parent_gids;
    std::string key;
  };
  World(rte::Env& env, elan4::QsNet& net, Options opts, const SpawnedTag& tag);

  void open_stack();  // pml + ptls + contact publication
  void add_peer_from_registry(int gid);
  std::string proc_key(int gid) const;

  rte::Env env_;
  elan4::QsNet& net_;
  Options opts_;
  int gid_ = -1;
  std::unique_ptr<pml::Pml> pml_;
  std::unique_ptr<coll::Colls> coll_;
  std::unique_ptr<Communicator> comm_;
  int next_ctx_ = 1;
  int spawn_seq_ = 0;
  int known_procs_ = 0;  // total gids allocated in this job (spawn base)
  bool finalized_ = false;
};

}  // namespace oqs::mpi
