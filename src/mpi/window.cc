#include "mpi/window.h"

#include <cassert>

namespace oqs::mpi {

Window::Window(Communicator& comm, World& world, void* base, std::size_t len)
    : comm_(comm), world_(world), base_(static_cast<char*>(base)), len_(len) {
  ptl_elan4::PtlElan4* ptl = world_.elan4_ptl();
  assert(ptl != nullptr && "one-sided windows require the Elan4 PTL");
  dev_ = &ptl->device();

  if (len_ > 0) local_addr_ = dev_->map(base_, len_);

  struct Info {
    elan4::Vpid vpid;
    elan4::E4Addr addr;
    std::uint64_t len;
  };
  Info mine{dev_->vpid(), local_addr_, len_};
  std::vector<Info> all(static_cast<std::size_t>(comm_.size()));
  comm_.allgather(&mine, sizeof(Info), all.data());
  for (const Info& i : all) {
    peer_vpid_.push_back(i.vpid);
    peer_addr_.push_back(i.addr);
    peer_len_.push_back(i.len);
  }
  comm_.barrier();  // epoch 0 open everywhere before any RMA
}

Window::~Window() {
  assert(pending_.empty() && "window destroyed with an open epoch");
  if (local_addr_ != elan4::kNullE4Addr) dev_->unmap(local_addr_);
}

Status Window::put(int target_rank, const void* src, std::size_t len,
                   std::size_t target_offset) {
  if (target_rank < 0 || target_rank >= comm_.size()) return Status::kBadParam;
  const auto t = static_cast<std::size_t>(target_rank);
  if (target_offset + len > peer_len_[t]) return Status::kBadParam;
  if (len == 0) return Status::kOk;

  const elan4::E4Addr src_addr = dev_->map(const_cast<void*>(src), len);
  elan4::E4Event* ev = dev_->alloc_event("win-put");
  ev->init(1);
  dev_->rdma_write(peer_vpid_[t], src_addr, peer_addr_[t] + target_offset,
                   static_cast<std::uint32_t>(len), ev);
  pending_.push_back({ev, src_addr});
  return Status::kOk;
}

Status Window::get(int target_rank, void* dst, std::size_t len,
                   std::size_t source_offset) {
  if (target_rank < 0 || target_rank >= comm_.size()) return Status::kBadParam;
  const auto t = static_cast<std::size_t>(target_rank);
  if (source_offset + len > peer_len_[t]) return Status::kBadParam;
  if (len == 0) return Status::kOk;

  const elan4::E4Addr dst_addr = dev_->map(dst, len);
  elan4::E4Event* ev = dev_->alloc_event("win-get");
  ev->init(1);
  dev_->rdma_read(peer_vpid_[t], peer_addr_[t] + source_offset, dst_addr,
                  static_cast<std::uint32_t>(len), ev);
  pending_.push_back({ev, dst_addr});
  return Status::kOk;
}

void Window::fence() {
  // Local completion of an Elan4 RDMA write arrives with the network-level
  // ack, i.e. after remote placement — so draining our descriptors is
  // enough for our puts to be visible at their targets.
  for (const PendingOp& op : pending_) {
    while (!op.event->done()) dev_->charge_poll();
    assert(ok(op.event->status()) && "RMA operation faulted");
    dev_->unmap(op.mapped);
  }
  pending_.clear();
  // Everyone's accesses for this epoch are complete before anyone proceeds.
  comm_.barrier();
}

}  // namespace oqs::mpi
