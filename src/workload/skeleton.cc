#include "workload/skeleton.h"

#include <cassert>

namespace oqs::workload {

namespace {

// Largest divisor of n that is <= sqrt(n).
int split_near_sqrt(int n) {
  int best = 1;
  for (int d = 1; d * d <= n; ++d)
    if (n % d == 0) best = d;
  return best;
}

}  // namespace

Grid2 factor2(int n) {
  assert(n >= 1);
  Grid2 g;
  g.py = split_near_sqrt(n);
  g.px = n / g.py;
  return g;
}

Grid3 factor3(int n) {
  assert(n >= 1);
  Grid3 g;
  // Peel the most-cubic divisor off for pz, then split the rest in 2D.
  int best = 1;
  for (int d = 1; d * d * d <= n; ++d)
    if (n % d == 0) best = d;
  g.pz = best;
  const Grid2 g2 = factor2(n / best);
  g.px = g2.px;
  g.py = g2.py;
  return g;
}

Trace make_stencil(const StencilConfig& cfg) {
  const int n = cfg.px * cfg.py * cfg.pz;
  assert(n >= 1 && cfg.px >= 1 && cfg.py >= 1 && cfg.pz >= 1);
  Trace t;
  t.name = cfg.pz > 1 ? "stencil3d" : "stencil2d";
  t.ranks.resize(static_cast<std::size_t>(n));

  // rank = (z * py + y) * px + x
  auto rank_of = [&](int x, int y, int z) {
    return (z * cfg.py + y) * cfg.px + x;
  };
  auto wrap = [](int v, int m) { return (v % m + m) % m; };

  for (int z = 0; z < cfg.pz; ++z)
    for (int y = 0; y < cfg.py; ++y)
      for (int x = 0; x < cfg.px; ++x) {
        auto& ops = t.ranks[static_cast<std::size_t>(rank_of(x, y, z))];
        for (int it = 0; it < cfg.iters; ++it) {
          if (cfg.compute_ns > 0)
            ops.push_back({OpKind::kCompute, cfg.compute_ns});
          // One shift per direction: everyone sends toward dir and
          // receives from the opposite neighbor. An axis of extent 1 would
          // shift to self, which the torus stencil has no data for — skip.
          const int dirs[6][3] = {{+1, 0, 0}, {-1, 0, 0}, {0, +1, 0},
                                  {0, -1, 0}, {0, 0, +1}, {0, 0, -1}};
          const int extents[6] = {cfg.px, cfg.px, cfg.py,
                                  cfg.py, cfg.pz, cfg.pz};
          for (int d = 0; d < 6; ++d) {
            if (extents[d] < 2) continue;
            const int dst = rank_of(wrap(x + dirs[d][0], cfg.px),
                                    wrap(y + dirs[d][1], cfg.py),
                                    wrap(z + dirs[d][2], cfg.pz));
            const int src = rank_of(wrap(x - dirs[d][0], cfg.px),
                                    wrap(y - dirs[d][1], cfg.py),
                                    wrap(z - dirs[d][2], cfg.pz));
            Op op;
            op.kind = OpKind::kSendRecv;
            op.peer = dst;
            op.bytes = cfg.halo_bytes;
            op.peer2 = src;
            op.bytes2 = cfg.halo_bytes;
            op.tag = it * 6 + d;
            ops.push_back(op);
          }
        }
      }
  return t;
}

Trace make_training(const TrainingConfig& cfg) {
  assert(cfg.ranks >= 1);
  Trace t;
  t.name = "train";
  t.ranks.resize(static_cast<std::size_t>(cfg.ranks));
  for (auto& ops : t.ranks) {
    Op bcast;
    bcast.kind = OpKind::kBcast;
    bcast.peer = 0;
    bcast.bytes = cfg.grad_bytes;
    ops.push_back(bcast);
    for (int s = 0; s < cfg.steps; ++s) {
      if (cfg.compute_ns > 0)
        ops.push_back({OpKind::kCompute, cfg.compute_ns});
      Op ar;
      ar.kind = OpKind::kAllreduce;
      ar.bytes = cfg.grad_bytes;
      ops.push_back(ar);
    }
  }
  return t;
}

Trace make_shuffle(const ShuffleConfig& cfg) {
  assert(cfg.ranks >= 1);
  Trace t;
  t.name = "shuffle";
  t.ranks.resize(static_cast<std::size_t>(cfg.ranks));
  for (auto& ops : t.ranks) {
    for (int r = 0; r < cfg.rounds; ++r) {
      if (cfg.compute_ns > 0)
        ops.push_back({OpKind::kCompute, cfg.compute_ns});
      Op a2a;
      a2a.kind = OpKind::kAlltoall;
      a2a.bytes = cfg.bytes_per_pair;
      ops.push_back(a2a);
      Op bar;
      bar.kind = OpKind::kBarrier;
      ops.push_back(bar);
    }
  }
  return t;
}

}  // namespace oqs::workload
