// Umbrella header for the workload replay engine.
//
//   workload::Trace      time-independent per-rank op lists + text format
//   workload::make_*     synthetic application skeleton generators
//   workload::replay_*   the interpreter over the full MPI stack
//
// See DESIGN.md §Workload replay.
#pragma once

#include "workload/replay.h"
#include "workload/skeleton.h"
#include "workload/trace.h"
