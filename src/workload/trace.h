// Time-independent workload traces (SimGrid SMPI replay style).
//
// A Trace is one op list per rank: compute blocks, point-to-point
// transfers, and collectives, with no timestamps — the replay engine
// (workload/replay.h) re-derives all timing from the simulated stack, so
// the same trace measures any protocol/rail/fault configuration. Traces
// come from two equivalent sources: the programmatic skeleton generators
// (workload/skeleton.h) and the text loader below, so recorded traces and
// synthetic ones run through one interpreter.
//
// Text format (one trace per file):
//   oqs-trace v1 ranks <N> name <name>
//   rank <r> ops <K>
//   compute <ns>
//   send <peer> <bytes> <tag>
//   recv <peer> <bytes> <tag>
//   sendrecv <dst> <send_bytes> <src> <recv_bytes> <tag>
//   barrier
//   bcast <root> <bytes>
//   allreduce <bytes>
//   alltoall <bytes>
//   end
//   ...one `rank` section per rank, in rank order...
//   end trace
//
// Blank lines and `#` comments are ignored. Op names starting with "x-"
// are extension ops: a v1 loader skips them (they count toward the
// section's declared op count), so future recorders can annotate traces
// without breaking old replayers. Any other unknown op, malformed line,
// or missing `end` / `end trace` terminator is a hard error naming the
// line — a truncated trace must never replay as a shorter workload.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace oqs::workload {

enum class OpKind : std::uint8_t {
  kCompute,    // occupy a host core for cost_ns
  kSend,       // blocking send of bytes to peer, tag
  kRecv,       // blocking recv of bytes from peer, tag
  kSendRecv,   // shift: send bytes to peer / recv bytes2 from peer2, tag
  kBarrier,    //
  kBcast,      // root = peer, payload = bytes
  kAllreduce,  // element-wise double sum over bytes/8 elements
  kAlltoall,   // personalized exchange, bytes per (src,dst) pair
};

struct Op {
  OpKind kind = OpKind::kCompute;
  std::uint64_t cost_ns = 0;  // kCompute
  std::uint64_t bytes = 0;    // payload (send size for kSendRecv)
  std::uint64_t bytes2 = 0;   // kSendRecv recv size
  int peer = -1;              // send dst / recv src / sendrecv dst / bcast root
  int peer2 = -1;             // kSendRecv recv source
  int tag = 0;

  friend bool operator==(const Op&, const Op&) = default;
};

struct Trace {
  std::string name = "trace";
  std::vector<std::vector<Op>> ranks;  // ranks[r] = rank r's op list

  int nranks() const { return static_cast<int>(ranks.size()); }
  std::uint64_t total_ops() const {
    std::uint64_t n = 0;
    for (const auto& r : ranks) n += r.size();
    return n;
  }
};

// Emit the text form above; load(serialize(t)) reproduces t exactly.
std::string serialize(const Trace& t);

struct LoadResult {
  bool ok = false;
  std::string error;             // "line 12: ..." when !ok
  Trace trace;                   // valid only when ok
  std::uint64_t skipped_ops = 0; // "x-" extension ops dropped by this loader
};

LoadResult load(std::istream& is);
LoadResult load_string(const std::string& text);

}  // namespace oqs::workload
