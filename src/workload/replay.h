// Trace replay engine: execute workload traces over the full MPI stack.
//
// The interpreter runs one rank's op list through a Communicator, charging
// compute to the rank's node CPU and driving every transfer through the
// real PML/BML/PTL path — faults, multirail striping, and collectives
// algorithms all apply. Payloads are deterministic functions of
// (seed, src, dst, tag), so every byte that lands is verified against the
// oracle in place: a Report with verify_failures == 0 *is* the conformance
// statement (halo cells came from the stencil's neighbor, allreduce equals
// the serial reduction, the shuffle permutation completed).
//
// Reporting: per-op latency samples (communication ops; compute kept in a
// separate bucket), payload bytes delivered, job makespan, and a replay
// digest — a per-rank FNV-1a fold of (op index, kind, bytes, completion
// time) combined in rank order, so two same-seed runs of one scenario must
// produce the same digest regardless of fiber interleaving. Latencies are
// also published to obs::MetricRegistry histograms
// (workload.<name>.op_ns / .compute_ns, counters .bytes / .ops /
// .verify_failures), whose snapshots export p50/p95/p99.
#pragma once

#include <cstdint>
#include <vector>

#include "mpi/mpi.h"
#include "sim/stats.h"
#include "sim/time.h"
#include "workload/trace.h"

namespace oqs::workload {

struct ReplayOptions {
  std::uint64_t seed = 1;        // payload/oracle seed
  bool verify = true;            // fill + check every landed payload
  bool publish_metrics = true;   // mirror into obs::metrics()
};

struct Report {
  sim::Samples op_us;       // per communication op latency (us), all ranks
  sim::Samples p2p_us;      // send/recv/sendrecv subset
  sim::Samples coll_us;     // barrier/bcast/allreduce/alltoall subset
  sim::Samples compute_us;  // compute blocks
  std::uint64_t bytes_moved = 0;  // payload bytes delivered to this job
  std::uint64_t ops_replayed = 0;
  std::uint64_t verify_failures = 0;
  sim::Time t_begin = ~sim::Time{0};  // earliest rank start (sim ns)
  sim::Time t_end = 0;                // latest rank finish (sim ns)
  std::vector<std::uint64_t> rank_digests;  // per-rank replay fingerprints

  // Order-independent combination of the per-rank streams (folded in rank
  // order): the job's replay fingerprint.
  std::uint64_t digest() const;
  // Delivered payload over the job makespan, MB/s (1 MB/s == 1 byte/us).
  double goodput_mbps() const;
  sim::Time makespan_ns() const {
    return t_end > t_begin ? t_end - t_begin : 0;
  }
};

// Replay trace.ranks[comm.rank()] on `comm` (comm.size() must equal
// trace.nranks()). Call from inside the MPI process body; every rank of
// `comm` must call it with the same trace and options. `report` (shared
// across the job's ranks; the sim is single-threaded) accumulates.
void replay_rank(mpi::World& w, mpi::Communicator& comm, const Trace& trace,
                 const ReplayOptions& opt, Report* report);

// Multi-job interference scenario: partition the world into consecutive
// rank blocks — world ranks [0, jobs[0]->nranks()) replay jobs[0], the
// next block jobs[1], ... — split the communicator accordingly, and replay
// each job over its slice while all jobs share the fabric. The block sizes
// must sum to the world size. Returns this rank's job index;
// (*reports)[j] accumulates job j (resized on first use).
int replay_jobs(mpi::World& w, const std::vector<const Trace*>& jobs,
                const ReplayOptions& opt, std::vector<Report>* reports);

}  // namespace oqs::workload
