// Synthetic application skeletons, expressed as workload traces.
//
// Each generator emits the communication/compute pattern of an application
// class the microbenchmarks cannot represent — overlapping peers, shared
// links, alternating compute and communication — as a plain Trace, so the
// replay engine measures the real PML/BML/PTL stack under it. Patterns
// follow the skeleton-app literature (see PAPERS.md: *Asynchronous MPI for
// the Masses*, *MPI Progress For All*): what matters is the traffic shape,
// not the numerics, so compute is a pure core-occupancy cost.
#pragma once

#include <cstdint>

#include "workload/trace.h"

namespace oqs::workload {

// Near-square/cubic process grids for a given rank count; every factor is
// >= 1 and the product is exactly n.
struct Grid2 { int px = 1, py = 1; };
struct Grid3 { int px = 1, py = 1, pz = 1; };
Grid2 factor2(int n);
Grid3 factor3(int n);

// Iterative stencil on a periodic process torus: per iteration one compute
// block, then one sendrecv shift per direction (+/- along each axis), halo
// payloads of halo_bytes. 2D uses 4 neighbors, 3D uses 6 (an axis of
// extent 1 contributes no shifts). Tags encode (iteration, direction) so
// matching is unambiguous under arbitrary interleaving.
struct StencilConfig {
  int px = 1, py = 1, pz = 1;       // process grid; px*py*pz ranks
  int iters = 8;
  std::uint64_t halo_bytes = 8192;
  std::uint64_t compute_ns = 20000;
};
Trace make_stencil(const StencilConfig& cfg);

// Data-parallel training cadence: one bcast of the initial parameters,
// then per step a compute block (forward+backward) followed by a
// grad_bytes allreduce.
struct TrainingConfig {
  int ranks = 2;
  int steps = 8;
  std::uint64_t grad_bytes = 262144;
  std::uint64_t compute_ns = 50000;
};
Trace make_training(const TrainingConfig& cfg);

// All-to-all shuffle (map/reduce repartition): per round a small compute
// block, a personalized all-to-all of bytes_per_pair per (src,dst) pair,
// and a barrier separating rounds.
struct ShuffleConfig {
  int ranks = 2;
  int rounds = 4;
  std::uint64_t bytes_per_pair = 16384;
  std::uint64_t compute_ns = 5000;
};
Trace make_shuffle(const ShuffleConfig& cfg);

}  // namespace oqs::workload
