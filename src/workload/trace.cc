#include "workload/trace.h"

#include <sstream>

namespace oqs::workload {

namespace {

const char* op_word(OpKind k) {
  switch (k) {
    case OpKind::kCompute: return "compute";
    case OpKind::kSend: return "send";
    case OpKind::kRecv: return "recv";
    case OpKind::kSendRecv: return "sendrecv";
    case OpKind::kBarrier: return "barrier";
    case OpKind::kBcast: return "bcast";
    case OpKind::kAllreduce: return "allreduce";
    case OpKind::kAlltoall: return "alltoall";
  }
  return "?";
}

struct Parser {
  explicit Parser(std::istream& s) : is(s) {}
  std::istream& is;
  int lineno = 0;
  std::string line;

  // Next significant line (blank lines and # comments skipped) into
  // `line`; false at EOF.
  bool next() {
    while (std::getline(is, line)) {
      ++lineno;
      const auto pos = line.find_first_not_of(" \t");
      if (pos == std::string::npos) continue;
      if (line[pos] == '#') continue;
      if (pos > 0) line.erase(0, pos);
      return true;
    }
    return false;
  }

  std::string fail(const std::string& what) const {
    return "line " + std::to_string(lineno) + ": " + what;
  }
};

// Split on whitespace.
std::vector<std::string> tokens(const std::string& s) {
  std::vector<std::string> out;
  std::istringstream is(s);
  std::string t;
  while (is >> t) out.push_back(t);
  return out;
}

bool parse_u64(const std::string& s, std::uint64_t* v) {
  if (s.empty()) return false;
  std::uint64_t acc = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    acc = acc * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *v = acc;
  return true;
}

bool parse_rank(const std::string& s, int nranks, int* v) {
  std::uint64_t u = 0;
  if (!parse_u64(s, &u) || u >= static_cast<std::uint64_t>(nranks)) return false;
  *v = static_cast<int>(u);
  return true;
}

}  // namespace

std::string serialize(const Trace& t) {
  std::ostringstream os;
  os << "oqs-trace v1 ranks " << t.nranks() << " name " << t.name << "\n";
  for (int r = 0; r < t.nranks(); ++r) {
    const auto& ops = t.ranks[static_cast<std::size_t>(r)];
    os << "rank " << r << " ops " << ops.size() << "\n";
    for (const Op& op : ops) {
      os << op_word(op.kind);
      switch (op.kind) {
        case OpKind::kCompute: os << " " << op.cost_ns; break;
        case OpKind::kSend:
        case OpKind::kRecv:
          os << " " << op.peer << " " << op.bytes << " " << op.tag;
          break;
        case OpKind::kSendRecv:
          os << " " << op.peer << " " << op.bytes << " " << op.peer2 << " "
             << op.bytes2 << " " << op.tag;
          break;
        case OpKind::kBarrier: break;
        case OpKind::kBcast: os << " " << op.peer << " " << op.bytes; break;
        case OpKind::kAllreduce:
        case OpKind::kAlltoall: os << " " << op.bytes; break;
      }
      os << "\n";
    }
    os << "end\n";
  }
  os << "end trace\n";
  return os.str();
}

LoadResult load(std::istream& is) {
  LoadResult res;
  Parser p{is};

  // Header: oqs-trace v1 ranks <N> name <name>
  if (!p.next()) {
    res.error = "empty input: missing 'oqs-trace v1' header";
    return res;
  }
  auto tk = tokens(p.line);
  std::uint64_t nranks = 0;
  if (tk.size() < 6 || tk[0] != "oqs-trace" || tk[1] != "v1" ||
      tk[2] != "ranks" || !parse_u64(tk[3], &nranks) || nranks == 0 ||
      tk[4] != "name") {
    res.error = p.fail("bad header (want: oqs-trace v1 ranks <N> name <name>)");
    return res;
  }
  res.trace.name = tk[5];
  res.trace.ranks.resize(nranks);
  const int n = static_cast<int>(nranks);

  for (int r = 0; r < n; ++r) {
    // rank <r> ops <K>
    if (!p.next()) {
      res.error = "truncated trace: expected 'rank " + std::to_string(r) +
                  " ops <K>' before end of input";
      return res;
    }
    tk = tokens(p.line);
    std::uint64_t rr = 0, nops = 0;
    if (tk.size() != 4 || tk[0] != "rank" || !parse_u64(tk[1], &rr) ||
        tk[2] != "ops" || !parse_u64(tk[3], &nops)) {
      res.error = p.fail("malformed rank header (want: rank <r> ops <K>)");
      return res;
    }
    if (rr != static_cast<std::uint64_t>(r)) {
      res.error = p.fail("rank sections out of order: got rank " +
                         std::to_string(rr) + ", want " + std::to_string(r));
      return res;
    }
    auto& ops = res.trace.ranks[static_cast<std::size_t>(r)];
    ops.reserve(nops);
    for (std::uint64_t i = 0; i < nops; ++i) {
      if (!p.next()) {
        res.error = "truncated trace: rank " + std::to_string(r) + " declares " +
                    std::to_string(nops) + " ops, input ended after " +
                    std::to_string(i);
        return res;
      }
      tk = tokens(p.line);
      const std::string& w = tk[0];
      Op op;
      bool ok = false;
      if (w == "compute") {
        op.kind = OpKind::kCompute;
        ok = tk.size() == 2 && parse_u64(tk[1], &op.cost_ns);
      } else if (w == "send" || w == "recv") {
        op.kind = w == "send" ? OpKind::kSend : OpKind::kRecv;
        std::uint64_t tag = 0;
        ok = tk.size() == 4 && parse_rank(tk[1], n, &op.peer) &&
             parse_u64(tk[2], &op.bytes) && parse_u64(tk[3], &tag);
        op.tag = static_cast<int>(tag);
      } else if (w == "sendrecv") {
        op.kind = OpKind::kSendRecv;
        std::uint64_t tag = 0;
        ok = tk.size() == 6 && parse_rank(tk[1], n, &op.peer) &&
             parse_u64(tk[2], &op.bytes) && parse_rank(tk[3], n, &op.peer2) &&
             parse_u64(tk[4], &op.bytes2) && parse_u64(tk[5], &tag);
        op.tag = static_cast<int>(tag);
      } else if (w == "barrier") {
        op.kind = OpKind::kBarrier;
        ok = tk.size() == 1;
      } else if (w == "bcast") {
        op.kind = OpKind::kBcast;
        ok = tk.size() == 3 && parse_rank(tk[1], n, &op.peer) &&
             parse_u64(tk[2], &op.bytes);
      } else if (w == "allreduce" || w == "alltoall") {
        op.kind = w == "allreduce" ? OpKind::kAllreduce : OpKind::kAlltoall;
        ok = tk.size() == 2 && parse_u64(tk[1], &op.bytes);
      } else if (w.rfind("x-", 0) == 0) {
        // Extension op from a newer recorder: counts toward the section's
        // declared total but replays as nothing.
        ++res.skipped_ops;
        continue;
      } else {
        res.error = p.fail("unknown op '" + w + "'");
        return res;
      }
      if (!ok) {
        res.error = p.fail("malformed '" + w + "' op: '" + p.line + "'");
        return res;
      }
      ops.push_back(op);
    }
    // end
    if (!p.next() || p.line != "end") {
      res.error = p.lineno == 0 || is.eof()
                      ? "truncated trace: rank " + std::to_string(r) +
                            " section missing 'end'"
                      : p.fail("expected 'end' closing rank " +
                               std::to_string(r) + " section");
      return res;
    }
  }
  // end trace
  if (!p.next() || tokens(p.line) != std::vector<std::string>{"end", "trace"}) {
    res.error = "truncated trace: missing 'end trace' terminator";
    return res;
  }
  res.ok = true;
  return res;
}

LoadResult load_string(const std::string& text) {
  std::istringstream is(text);
  return load(is);
}

}  // namespace oqs::workload
