#include "workload/replay.h"

#include <cassert>
#include <cstring>

#include "obs/metrics.h"
#include "sim/node.h"

namespace oqs::workload {

namespace {

constexpr std::uint64_t kFnvBasis = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (i * 8)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// One 64-bit key per logical message; the payload is its splitmix stream.
std::uint64_t msg_key(std::uint64_t seed, std::uint64_t kind, int src, int dst,
                      int tag) {
  std::uint64_t s = seed;
  std::uint64_t h = fnv(kFnvBasis, splitmix(s));
  h = fnv(h, kind);
  h = fnv(h, static_cast<std::uint64_t>(src) + 1);
  h = fnv(h, static_cast<std::uint64_t>(dst) + 1);
  h = fnv(h, static_cast<std::uint64_t>(tag));
  return h;
}

void fill_payload(std::uint64_t key, std::uint8_t* p, std::size_t n) {
  std::uint64_t s = key;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = splitmix(s);
    std::memcpy(p + i, &w, 8);
  }
  if (i < n) {
    const std::uint64_t w = splitmix(s);
    std::memcpy(p + i, &w, n - i);
  }
}

bool check_payload(std::uint64_t key, const std::uint8_t* p, std::size_t n) {
  std::uint64_t s = key;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t w = splitmix(s);
    if (std::memcmp(p + i, &w, 8) != 0) return false;
  }
  if (i < n) {
    const std::uint64_t w = splitmix(s);
    if (std::memcmp(p + i, &w, n - i) != 0) return false;
  }
  return true;
}

// Allreduce oracle: rank r contributes a_i + r*b_i to element i, so the
// serial reduction has the closed form n*a_i + b_i*n*(n-1)/2. All values
// are small integers — double sums are exact in any association order,
// which keeps the oracle algorithm-independent (ring, recursive doubling
// and NIC combining must all hit it bit-for-bit).
struct AllreduceOracle {
  std::uint64_t seed;
  std::uint64_t cseq;
  double a(std::size_t i) const { return static_cast<double>(term(i, 0) & 1023); }
  double b(std::size_t i) const { return static_cast<double>(term(i, 1) & 63); }
  double contrib(int rank, std::size_t i) const {
    return a(i) + static_cast<double>(rank) * b(i);
  }
  double expected(int nranks, std::size_t i) const {
    const double n = nranks;
    return n * a(i) + b(i) * n * (n - 1.0) / 2.0;
  }

 private:
  std::uint64_t term(std::size_t i, std::uint64_t which) const {
    std::uint64_t s = seed ^ (cseq * 0x51ed2701u) ^ (which << 40) ^
                      (static_cast<std::uint64_t>(i) << 1);
    return splitmix(s);
  }
};

}  // namespace

std::uint64_t Report::digest() const {
  std::uint64_t h = kFnvBasis;
  for (std::uint64_t d : rank_digests) h = fnv(h, d);
  return h;
}

double Report::goodput_mbps() const {
  const sim::Time ns = makespan_ns();
  if (ns == 0) return 0.0;
  return static_cast<double>(bytes_moved) * 1000.0 / static_cast<double>(ns);
}

void replay_rank(mpi::World& w, mpi::Communicator& comm, const Trace& trace,
                 const ReplayOptions& opt, Report* report) {
  const int me = comm.rank();
  const int n = comm.size();
  assert(n == trace.nranks() && "trace rank count != communicator size");
  assert(report != nullptr);
  if (report->rank_digests.size() < static_cast<std::size_t>(n))
    report->rank_digests.resize(static_cast<std::size_t>(n), kFnvBasis);

  sim::Engine& eng = w.net().engine();
  sim::Cpu& cpu = w.net().node(w.env().node).cpu();

  obs::Histogram* h_op = nullptr;
  obs::Histogram* h_compute = nullptr;
  obs::Counter* c_bytes = nullptr;
  obs::Counter* c_ops = nullptr;
  obs::Counter* c_bad = nullptr;
  if (opt.publish_metrics) {
    const std::string prefix = "workload." + trace.name;
    h_op = &obs::metrics().histogram(prefix + ".op_ns");
    h_compute = &obs::metrics().histogram(prefix + ".compute_ns");
    c_bytes = &obs::metrics().counter(prefix + ".bytes");
    c_ops = &obs::metrics().counter(prefix + ".ops");
    c_bad = &obs::metrics().counter(prefix + ".verify_failures");
  }

  const std::uint64_t seed = opt.seed;
  std::uint64_t digest = kFnvBasis;
  std::uint64_t cseq = 0;  // collective sequence, consistent across ranks
  std::vector<std::uint8_t> sbuf, rbuf;

  const sim::Time t_start = eng.now();
  if (t_start < report->t_begin) report->t_begin = t_start;

  auto verify = [&](std::uint64_t key, const std::uint8_t* p, std::size_t len) {
    if (!opt.verify) return;
    if (!check_payload(key, p, len)) {
      ++report->verify_failures;
      if (c_bad != nullptr) c_bad->add();
    }
  };

  const auto& ops = trace.ranks[static_cast<std::size_t>(me)];
  for (std::size_t idx = 0; idx < ops.size(); ++idx) {
    const Op& op = ops[idx];
    const sim::Time t0 = eng.now();
    std::uint64_t moved = 0;  // payload bytes delivered to this rank

    switch (op.kind) {
      case OpKind::kCompute:
        cpu.compute(op.cost_ns);
        break;
      case OpKind::kSend: {
        sbuf.resize(op.bytes);
        if (opt.verify)
          fill_payload(msg_key(seed, 1, me, op.peer, op.tag), sbuf.data(),
                       sbuf.size());
        comm.send(sbuf.data(), sbuf.size(), dtype::byte_type(), op.peer, op.tag);
        break;
      }
      case OpKind::kRecv: {
        rbuf.assign(op.bytes, 0);
        comm.recv(rbuf.data(), rbuf.size(), dtype::byte_type(), op.peer, op.tag);
        verify(msg_key(seed, 1, op.peer, me, op.tag), rbuf.data(), rbuf.size());
        moved = op.bytes;
        break;
      }
      case OpKind::kSendRecv: {
        sbuf.resize(op.bytes);
        rbuf.assign(op.bytes2, 0);
        if (opt.verify)
          fill_payload(msg_key(seed, 1, me, op.peer, op.tag), sbuf.data(),
                       sbuf.size());
        comm.sendrecv(sbuf.data(), sbuf.size(), op.peer, op.tag, rbuf.data(),
                      rbuf.size(), op.peer2, op.tag, dtype::byte_type());
        verify(msg_key(seed, 1, op.peer2, me, op.tag), rbuf.data(), rbuf.size());
        moved = op.bytes2;
        break;
      }
      case OpKind::kBarrier:
        comm.barrier();
        ++cseq;
        break;
      case OpKind::kBcast: {
        rbuf.assign(op.bytes, 0);
        const std::uint64_t key = msg_key(seed, 2, op.peer, -1,
                                          static_cast<int>(cseq));
        if (me == op.peer) fill_payload(key, rbuf.data(), rbuf.size());
        comm.bcast(rbuf.data(), rbuf.size(), dtype::byte_type(), op.peer);
        if (me != op.peer) {
          verify(key, rbuf.data(), rbuf.size());
          moved = op.bytes;
        }
        ++cseq;
        break;
      }
      case OpKind::kAllreduce: {
        const std::size_t elems = op.bytes / 8;
        const AllreduceOracle oracle{seed, cseq};
        std::vector<double> in(elems), out(elems, 0.0);
        for (std::size_t i = 0; i < elems; ++i) in[i] = oracle.contrib(me, i);
        comm.allreduce_sum(in.data(), out.data(), elems);
        if (opt.verify) {
          bool ok = true;
          for (std::size_t i = 0; i < elems; ++i)
            ok &= out[i] == oracle.expected(n, i);
          if (!ok) {
            ++report->verify_failures;
            if (c_bad != nullptr) c_bad->add();
          }
        }
        moved = elems * 8;
        ++cseq;
        break;
      }
      case OpKind::kAlltoall: {
        const std::size_t each = op.bytes;
        sbuf.resize(each * static_cast<std::size_t>(n));
        rbuf.assign(each * static_cast<std::size_t>(n), 0);
        if (opt.verify)
          for (int j = 0; j < n; ++j)
            fill_payload(msg_key(seed, 3, me, j, static_cast<int>(cseq)),
                         sbuf.data() + static_cast<std::size_t>(j) * each, each);
        comm.alltoall(sbuf.data(), each, rbuf.data());
        if (opt.verify)
          for (int j = 0; j < n; ++j)
            verify(msg_key(seed, 3, j, me, static_cast<int>(cseq)),
                   rbuf.data() + static_cast<std::size_t>(j) * each, each);
        moved = each * static_cast<std::size_t>(n - 1);
        ++cseq;
        break;
      }
    }

    const sim::Time t1 = eng.now();
    const double us = static_cast<double>(t1 - t0) / 1000.0;
    if (op.kind == OpKind::kCompute) {
      report->compute_us.add(us);
      if (h_compute != nullptr) h_compute->add(static_cast<double>(t1 - t0));
    } else {
      report->op_us.add(us);
      const bool p2p = op.kind == OpKind::kSend || op.kind == OpKind::kRecv ||
                       op.kind == OpKind::kSendRecv;
      (p2p ? report->p2p_us : report->coll_us).add(us);
      if (h_op != nullptr) h_op->add(static_cast<double>(t1 - t0));
    }
    report->bytes_moved += moved;
    ++report->ops_replayed;
    if (c_bytes != nullptr) c_bytes->add(moved);
    if (c_ops != nullptr) c_ops->add();

    digest = fnv(digest, static_cast<std::uint64_t>(idx));
    digest = fnv(digest, static_cast<std::uint64_t>(op.kind));
    digest = fnv(digest, moved);
    digest = fnv(digest, t1);
  }

  const sim::Time t_done = eng.now();
  if (t_done > report->t_end) report->t_end = t_done;
  report->rank_digests[static_cast<std::size_t>(me)] = digest;
}

int replay_jobs(mpi::World& w, const std::vector<const Trace*>& jobs,
                const ReplayOptions& opt, std::vector<Report>* reports) {
  assert(!jobs.empty());
  assert(reports != nullptr);
  int total = 0;
  for (const Trace* j : jobs) total += j->nranks();
  auto& world_comm = w.comm();
  assert(total == world_comm.size() && "job sizes must sum to world size");
  (void)total;
  if (reports->size() < jobs.size()) reports->resize(jobs.size());

  const int me = world_comm.rank();
  int job = 0, base = 0;
  while (me >= base + jobs[static_cast<std::size_t>(job)]->nranks()) {
    base += jobs[static_cast<std::size_t>(job)]->nranks();
    ++job;
  }
  mpi::Communicator sub = world_comm.split(job, me);
  replay_rank(w, sub, *jobs[static_cast<std::size_t>(job)], opt,
              &(*reports)[static_cast<std::size_t>(job)]);
  // Quiesce the whole fabric before returning: jobs finish at different
  // times, and a rank that tears down its queues while another job's
  // retransmissions or duplicates are still in flight spews unknown-queue
  // warnings. Timing was recorded inside replay_rank, so the barrier does
  // not touch the reports.
  world_comm.barrier();
  return job;
}

}  // namespace oqs::workload
