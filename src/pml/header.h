// The PML wire header.
//
// Every PTL fragment leads with this 64-byte header (the paper compares it
// against MPICH-QsNetII's 32-byte Tport header when explaining the
// small-message latency gap in Fig. 10). Matching is done in the PML — by
// design, so request queues can be shared across networks — never in the
// NIC. Control fragments (ACK/FIN/FIN_ACK) reuse the same frame with a
// different `kind`; their extra fields ride in a small body after the
// header.
#pragma once

#include <cstdint>

namespace oqs::pml {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

// Fragment kinds shared by the PTL implementations.
enum class FragKind : std::uint8_t {
  kEager = 1,       // whole message inline
  kRendezvous = 2,  // first fragment of a long message
  kAck = 3,         // receiver -> sender: matched; body carries RDMA targets
  kFin = 4,         // sender -> receiver: RDMA-write data all placed
  kFinAck = 5,      // receiver -> sender: RDMA-read complete (ack + fin)
  kComplete = 6,    // NIC -> own completion queue: local descriptor done
  kGoodbye = 7,     // connection teardown handshake
  kData = 8,        // copy-path remainder chunk (TCP PTL)
  kNack = 9,        // reliability: resend frames starting at hdr.cookie
  kFrameAck = 10,   // reliability: explicit cumulative ack (hdr.ack_seq)
  // BML multi-rail striping (no inline payload; the body is the stripe map:
  // per-rail exposed regions + per-stripe rail/offset/length assignments).
  kRendezvousStriped = 11,
  // receiver -> sender: stripe hdr.aux of message hdr.cookie landed
  // (hdr.status carries the outcome); the sender aggregates these into one
  // completion.
  kStripeFin = 12,
  // Pipelined rendezvous: an eagerly pushed pipeline fragment riding behind
  // the RTS before the CTS returns. hdr.cookie is the sender's striped-send
  // id, hdr.aux the absolute byte offset, hdr.len the chunk length.
  kPipeFrag = 13,
  // TCP PTL stripe emulation (no RDMA engine): the puller asks the exposing
  // side to stream a region slice back. kPullReq carries region/offset/len;
  // kPullResp returns the bytes with the pull id in hdr.cookie.
  kPullReq = 14,
  kPullResp = 15,
};

// MatchHeader.flags bits.
inline constexpr std::uint8_t kFlagChecksummed = 0x1;  // CRC32C trailer present
inline constexpr std::uint8_t kFlagControl = 0x2;      // bypasses sequencing

struct MatchHeader {
  std::int32_t ctx = 0;       // communicator context id
  std::int32_t src_rank = 0;  // sender's rank within ctx
  std::int32_t dst_rank = 0;
  std::int32_t tag = 0;
  std::uint64_t len = 0;  // total message payload bytes
  std::uint64_t seq = 0;  // per (src process -> dst process) sequence
  std::int32_t src_gid = 0;   // sender's global process id
  std::int32_t dst_gid = 0;
  FragKind kind = FragKind::kEager;
  std::uint8_t flags = 0;
  std::uint16_t frame_seq = 0;  // per-peer frame sequence (reliability mode)
  std::uint16_t status = 0;     // carries a Status code on FIN/FIN_ACK
  // Cumulative piggybacked acknowledgement (reliability mode): every frame
  // to a peer reports the last in-order frame_seq received from it, so the
  // sender prunes its retransmission log without dedicated ack traffic.
  std::uint16_t ack_seq = 0;
  std::uint64_t cookie = 0;   // send- or recv-request handle, kind-dependent
  std::uint64_t aux = 0;      // scheme-dependent (e.g. exposed E4 address)
};
static_assert(sizeof(MatchHeader) == 64, "the paper's PML header is 64 bytes");

inline constexpr std::uint32_t kMatchHeaderBytes = 64;

}  // namespace oqs::pml
