#include "pml/pml.h"

#include <algorithm>
#include <cassert>

#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oqs::pml {

Pml::~Pml() {
  if (!finalized_) finalize();
}

void Pml::start_send(SendRequest& req, int ctx_id, int src_rank, int dst_rank,
                     int tag, int dst_gid) {
  assert(!finalized_);
  OQS_TRACE_SPAN(span_, ctx_.gid, "pml", "start_send", "len",
                 req.total_bytes());
  req.set_wake_delay(request_wake_delay_);
  // Opportunistic progress on entry (standard MPI behaviour): connection
  // control traffic — a peer's goodbye before it migrated, for instance —
  // must be seen before the routing decision below.
  if (!bml_.any_threaded()) progress();
  ctx_.compute(ctx_.params->pml_sched_ns);

  req.hdr.ctx = ctx_id;
  req.hdr.src_rank = src_rank;
  req.hdr.dst_rank = dst_rank;
  req.hdr.tag = tag;
  req.hdr.len = req.total_bytes();
  req.hdr.src_gid = ctx_.gid;
  req.hdr.dst_gid = dst_gid;
  req.hdr.seq = ++send_seq_[dst_gid];
  req.dst_gid = dst_gid;

  // Routing (eager vs rendezvous vs striped rendezvous) is the BML's job.
  bml_.send(req);
}

bool Pml::matches(const RecvRequest& req, const MatchHeader& hdr) {
  if (req.ctx != hdr.ctx) return false;
  if (req.src_rank != kAnySource && req.src_rank != hdr.src_rank) return false;
  if (req.tag != kAnyTag && req.tag != hdr.tag) return false;
  return true;
}

void Pml::post_recv(RecvRequest& req) {
  assert(!finalized_);
  OQS_TRACE_SPAN(span_, ctx_.gid, "pml", "post_recv", "cap", req.capacity);
  OQS_METRIC_INC("pml.recv.posted");
  req.set_wake_delay(request_wake_delay_);
  ctx_.compute(ctx_.params->pml_match_ns);
  // Check the unexpected queue first, in arrival order.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(req, (*it)->hdr)) {
      std::unique_ptr<FirstFrag> frag = std::move(*it);
      unexpected_.erase(it);
      OQS_METRIC_INC("pml.match.from_unexpected");
      OQS_TRACE_INSTANT(ctx_.gid, "pml", "match.unexpected", "len",
                        frag->hdr.len);
      bind(req, std::move(frag));
      return;
    }
  }
  posted_.push_back(req);
}

bool Pml::resolve_peer(int gid) {
  if (!peer_resolver) return false;
  const ContactInfo info = peer_resolver(gid);
  bool reachable = false;
  for (std::size_t i = 0; i < bml_.num_ptls(); ++i)
    reachable |= ok(bml_.ptl(i).add_peer(gid, info));
  return reachable;
}

void Pml::cancel(RecvRequest& req) {
  if (req.complete() || req.matched) return;
  if (static_cast<ListItem<RecvRequest>&>(req).linked()) posted_.erase(req);
  req.fail(Status::kShutdown);
}

bool Pml::iprobe(int ctx_id, int src_rank, int tag, MatchHeader* out) {
  ctx_.compute(ctx_.params->pml_match_ns);
  for (const auto& frag : unexpected_) {
    const MatchHeader& h = frag->hdr;
    if (h.ctx != ctx_id) continue;
    if (src_rank != kAnySource && src_rank != h.src_rank) continue;
    if (tag != kAnyTag && tag != h.tag) continue;
    if (out != nullptr) *out = h;
    return true;
  }
  return false;
}

void Pml::incoming_first(std::unique_ptr<FirstFrag> frag) {
  if (probe_deliver_to_pml) probe_deliver_to_pml();
  // Enforce per-sender arrival order across PTLs: admit seq n only after
  // n-1. Fragments from the future are held.
  InOrder& io = recv_seq_[frag->hdr.src_gid];
  if (frag->hdr.seq != io.expected) {
    assert(frag->hdr.seq > io.expected && "duplicate sequence number");
    const std::uint64_t seq = frag->hdr.seq;
    io.held.emplace(seq, std::move(frag));
    return;
  }
  ++io.expected;
  admit(std::move(frag));
  // Drain any directly-following held fragments.
  for (;;) {
    auto it = io.held.find(io.expected);
    if (it == io.held.end()) break;
    std::unique_ptr<FirstFrag> next = std::move(it->second);
    io.held.erase(it);
    ++io.expected;
    admit(std::move(next));
  }
}

void Pml::admit(std::unique_ptr<FirstFrag> frag) {
  ctx_.compute(ctx_.params->pml_match_ns);
  for (RecvRequest& req : posted_) {
    if (matches(req, frag->hdr)) {
      posted_.erase(req);
      OQS_METRIC_INC("pml.match.from_posted");
      OQS_TRACE_INSTANT(ctx_.gid, "pml", "match.posted", "len", frag->hdr.len);
      bind(req, std::move(frag));
      return;
    }
  }
  OQS_METRIC_INC("pml.match.unexpected_queued");
  OQS_TRACE_INSTANT(ctx_.gid, "pml", "match.miss", "len", frag->hdr.len);
  unexpected_.push_back(std::move(frag));
}

void Pml::bind(RecvRequest& req, std::unique_ptr<FirstFrag> frag) {
  req.matched = true;
  req.matched_hdr = frag->hdr;
  req.set_total(std::min<std::size_t>(frag->hdr.len, req.capacity));

  // Truncation: an eager overrun completes with kTruncate after delivering
  // the bytes that fit; a rendezvous overrun cannot be honoured (the RDMA
  // schemes target the posted buffer) and is a program error.
  if (frag->hdr.len > req.capacity) {
    log::warn("pml", "truncation: incoming ", frag->hdr.len, "B > posted ",
              req.capacity, "B");
    assert(frag->hdr.len <= frag->inline_data.size() &&
           frag->hdr.kind != FragKind::kRendezvousStriped &&
           "rendezvous truncation is unsupported; post a large enough buffer");
    req.fail(Status::kTruncate);  // completes first; progress below still counts
  }

  // Striped rendezvous: the fragment carries the stripe map, not payload;
  // the BML pulls the stripes over their rails and completes the request.
  if (frag->hdr.kind == FragKind::kRendezvousStriped) {
    ctx_.compute(ctx_.params->pml_sched_ns);
    bml_.matched_striped(req, std::move(frag));
    return;
  }

  // Unpack any inline payload into the user buffer via the convertor.
  if (!frag->inline_data.empty()) {
    const std::size_t take =
        std::min<std::size_t>(frag->inline_data.size(), req.capacity);
    ctx_.compute(ctx_.params->host_memcpy_startup_ns +
                 ModelParams::xfer_ns(take, ctx_.params->host_memcpy_mbps));
    req.convertor.unpack(frag->inline_data.data(), take);
    recv_progress(req, take);
  } else if (frag->hdr.len == 0) {
    // Zero-byte message: complete on match.
    req.finish(Status::kOk);
  }

  if (req.complete()) return;
  if (frag->hdr.len <= frag->inline_data.size()) return;  // eager, in flight

  // Long message: hand back to the delivering PTL to run its scheme.
  Ptl* ptl = frag->ptl;
  ctx_.compute(ctx_.params->pml_sched_ns);
  ptl->matched(req, std::move(frag));
}

void Pml::send_progress(SendRequest& req, std::size_t bytes) {
  req.add_progress(bytes);
  if (req.complete()) {
    ctx_.compute(ctx_.params->pml_complete_ns);
    OQS_METRIC_INC("pml.send.completed");
    OQS_TRACE_INSTANT(ctx_.gid, "pml", "send.complete", "len",
                      req.total_bytes());
  }
}

void Pml::recv_progress(RecvRequest& req, std::size_t bytes) {
  req.add_progress(bytes);
  if (req.complete()) {
    ctx_.compute(ctx_.params->pml_complete_ns);
    OQS_METRIC_INC("pml.recv.completed");
    OQS_TRACE_INSTANT(ctx_.gid, "pml", "recv.complete", "len",
                      req.total_bytes());
  }
}

int Pml::progress() { return bml_.progress(); }

void Pml::wait(Request& req) {
  if (bml_.any_threaded()) {
    req.done_flag().wait();
    return;
  }
  // Interrupt-driven blocking only works when a single rail is active — a
  // process cannot block inside one PTL while others carry traffic (§3.2).
  // The BML counts *wired* rails (live endpoints), not constructed PTL
  // objects, so a dormant secondary module does not forfeit blocking waits.
  // Block only while the PTL is idle; once a protocol exchange is in flight
  // (rendezvous answered, RDMA outstanding), poll it to completion so a
  // multi-step protocol costs one interrupt, not one per step.
  if (Ptl* sole = bml_.sole_blocking_ptl()) {
    Ptl& ptl = *sole;
    while (!req.complete()) {
      if (ptl.progress() > 0) continue;
      if (ptl.active())
        ctx_.engine->sleep(ctx_.params->host_poll_ns);
      else
        ptl.progress_blocking();
    }
    return;
  }
  while (!req.complete()) {
    if (progress() == 0) {
      // Nothing arrived: the poll cost was already charged by the PTLs.
      // Yield so NIC/fabric events can run.
      ctx_.engine->sleep(ctx_.params->host_poll_ns);
    }
  }
}

Pml::SequenceState Pml::export_sequences() const {
  SequenceState s;
  s.send_next = send_seq_;
  for (const auto& [gid, io] : recv_seq_) {
    assert(io.held.empty() && "exporting sequences with out-of-order frags held");
    s.recv_expected[gid] = io.expected;
  }
  return s;
}

void Pml::import_sequences(const SequenceState& s) {
  send_seq_ = s.send_next;
  for (const auto& [gid, expected] : s.recv_expected)
    recv_seq_[gid].expected = expected;
}

void Pml::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Unlink (and fail) any receives still posted so their storage can be
  // reclaimed safely after teardown.
  while (RecvRequest* req = posted_.pop_front()) req->fail(Status::kShutdown);
  bml_.finalize();
}

}  // namespace oqs::pml
