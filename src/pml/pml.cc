#include "pml/pml.h"

#include <algorithm>
#include <cassert>

#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace oqs::pml {

Pml::~Pml() {
  if (!finalized_) finalize();
}

void Pml::add_ptl(std::unique_ptr<Ptl> ptl) { ptls_.push_back(std::move(ptl)); }

Ptl* Pml::choose_ptl(int dst_gid) {
  if (policy_ == SchedPolicy::kRoundRobin) {
    for (std::size_t k = 0; k < ptls_.size(); ++k) {
      Ptl* p = ptls_[(rr_next_ + k) % ptls_.size()].get();
      if (p->reaches(dst_gid)) {
        rr_next_ = (rr_next_ + k + 1) % ptls_.size();
        return p;
      }
    }
    return nullptr;
  }
  Ptl* best = nullptr;
  for (const auto& p : ptls_) {
    if (!p->reaches(dst_gid)) continue;
    if (best == nullptr || p->bandwidth_weight() > best->bandwidth_weight())
      best = p.get();
  }
  return best;
}

void Pml::start_send(SendRequest& req, int ctx_id, int src_rank, int dst_rank,
                     int tag, int dst_gid) {
  assert(!finalized_);
  OQS_TRACE_SPAN(span_, ctx_.gid, "pml", "start_send", "len",
                 req.total_bytes());
  req.set_wake_delay(request_wake_delay_);
  // Opportunistic progress on entry (standard MPI behaviour): connection
  // control traffic — a peer's goodbye before it migrated, for instance —
  // must be seen before the routing decision below.
  bool any_threaded = false;
  for (const auto& p : ptls_) any_threaded |= p->threaded();
  if (!any_threaded) progress();
  ctx_.compute(ctx_.params->pml_sched_ns);

  req.hdr.ctx = ctx_id;
  req.hdr.src_rank = src_rank;
  req.hdr.dst_rank = dst_rank;
  req.hdr.tag = tag;
  req.hdr.len = req.total_bytes();
  req.hdr.src_gid = ctx_.gid;
  req.hdr.dst_gid = dst_gid;
  req.hdr.seq = ++send_seq_[dst_gid];
  req.dst_gid = dst_gid;

  Ptl* ptl = choose_ptl(dst_gid);
  if (ptl == nullptr && resolve_peer(dst_gid)) ptl = choose_ptl(dst_gid);
  if (ptl == nullptr) {
    log::error("pml", "no PTL reaches gid ", dst_gid);
    req.fail(Status::kUnreachable);
    return;
  }
  req.ptl = ptl;

  std::size_t inline_len;
  OQS_METRIC_INC("pml.send.total");
  if (req.total_bytes() <= ptl->eager_limit()) {
    inline_len = req.total_bytes();  // whole message rides the first frag
    OQS_METRIC_INC("pml.send.eager");
    OQS_TRACE_INSTANT(ctx_.gid, "pml", "send.eager", "len", req.total_bytes(),
                      "dst", static_cast<std::uint64_t>(dst_gid));
  } else {
    inline_len = inline_rendezvous_ ? ptl->eager_limit() : 0;
    OQS_METRIC_INC("pml.send.rendezvous");
    OQS_TRACE_INSTANT(ctx_.gid, "pml", "send.rendezvous", "len",
                      req.total_bytes(), "dst",
                      static_cast<std::uint64_t>(dst_gid));
  }

  if (probe_send_to_ptl) probe_send_to_ptl();
  ptl->send_first(req, inline_len);
}

bool Pml::matches(const RecvRequest& req, const MatchHeader& hdr) {
  if (req.ctx != hdr.ctx) return false;
  if (req.src_rank != kAnySource && req.src_rank != hdr.src_rank) return false;
  if (req.tag != kAnyTag && req.tag != hdr.tag) return false;
  return true;
}

void Pml::post_recv(RecvRequest& req) {
  assert(!finalized_);
  OQS_TRACE_SPAN(span_, ctx_.gid, "pml", "post_recv", "cap", req.capacity);
  OQS_METRIC_INC("pml.recv.posted");
  req.set_wake_delay(request_wake_delay_);
  ctx_.compute(ctx_.params->pml_match_ns);
  // Check the unexpected queue first, in arrival order.
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    if (matches(req, (*it)->hdr)) {
      std::unique_ptr<FirstFrag> frag = std::move(*it);
      unexpected_.erase(it);
      OQS_METRIC_INC("pml.match.from_unexpected");
      OQS_TRACE_INSTANT(ctx_.gid, "pml", "match.unexpected", "len",
                        frag->hdr.len);
      bind(req, std::move(frag));
      return;
    }
  }
  posted_.push_back(req);
}

bool Pml::resolve_peer(int gid) {
  if (!peer_resolver) return false;
  const ContactInfo info = peer_resolver(gid);
  bool reachable = false;
  for (const auto& p : ptls_) reachable |= ok(p->add_peer(gid, info));
  return reachable;
}

void Pml::cancel(RecvRequest& req) {
  if (req.complete() || req.matched) return;
  if (static_cast<ListItem<RecvRequest>&>(req).linked()) posted_.erase(req);
  req.fail(Status::kShutdown);
}

bool Pml::iprobe(int ctx_id, int src_rank, int tag, MatchHeader* out) {
  ctx_.compute(ctx_.params->pml_match_ns);
  for (const auto& frag : unexpected_) {
    const MatchHeader& h = frag->hdr;
    if (h.ctx != ctx_id) continue;
    if (src_rank != kAnySource && src_rank != h.src_rank) continue;
    if (tag != kAnyTag && tag != h.tag) continue;
    if (out != nullptr) *out = h;
    return true;
  }
  return false;
}

void Pml::incoming_first(std::unique_ptr<FirstFrag> frag) {
  if (probe_deliver_to_pml) probe_deliver_to_pml();
  // Enforce per-sender arrival order across PTLs: admit seq n only after
  // n-1. Fragments from the future are held.
  InOrder& io = recv_seq_[frag->hdr.src_gid];
  if (frag->hdr.seq != io.expected) {
    assert(frag->hdr.seq > io.expected && "duplicate sequence number");
    const std::uint64_t seq = frag->hdr.seq;
    io.held.emplace(seq, std::move(frag));
    return;
  }
  ++io.expected;
  admit(std::move(frag));
  // Drain any directly-following held fragments.
  for (;;) {
    auto it = io.held.find(io.expected);
    if (it == io.held.end()) break;
    std::unique_ptr<FirstFrag> next = std::move(it->second);
    io.held.erase(it);
    ++io.expected;
    admit(std::move(next));
  }
}

void Pml::admit(std::unique_ptr<FirstFrag> frag) {
  ctx_.compute(ctx_.params->pml_match_ns);
  for (RecvRequest& req : posted_) {
    if (matches(req, frag->hdr)) {
      posted_.erase(req);
      OQS_METRIC_INC("pml.match.from_posted");
      OQS_TRACE_INSTANT(ctx_.gid, "pml", "match.posted", "len", frag->hdr.len);
      bind(req, std::move(frag));
      return;
    }
  }
  OQS_METRIC_INC("pml.match.unexpected_queued");
  OQS_TRACE_INSTANT(ctx_.gid, "pml", "match.miss", "len", frag->hdr.len);
  unexpected_.push_back(std::move(frag));
}

void Pml::bind(RecvRequest& req, std::unique_ptr<FirstFrag> frag) {
  req.matched = true;
  req.matched_hdr = frag->hdr;
  req.set_total(std::min<std::size_t>(frag->hdr.len, req.capacity));

  // Truncation: an eager overrun completes with kTruncate after delivering
  // the bytes that fit; a rendezvous overrun cannot be honoured (the RDMA
  // schemes target the posted buffer) and is a program error.
  if (frag->hdr.len > req.capacity) {
    log::warn("pml", "truncation: incoming ", frag->hdr.len, "B > posted ",
              req.capacity, "B");
    assert(frag->hdr.len <= frag->inline_data.size() &&
           "rendezvous truncation is unsupported; post a large enough buffer");
    req.fail(Status::kTruncate);  // completes first; progress below still counts
  }

  // Unpack any inline payload into the user buffer via the convertor.
  if (!frag->inline_data.empty()) {
    const std::size_t take =
        std::min<std::size_t>(frag->inline_data.size(), req.capacity);
    ctx_.compute(ctx_.params->host_memcpy_startup_ns +
                 ModelParams::xfer_ns(take, ctx_.params->host_memcpy_mbps));
    req.convertor.unpack(frag->inline_data.data(), take);
    recv_progress(req, take);
  } else if (frag->hdr.len == 0) {
    // Zero-byte message: complete on match.
    req.finish(Status::kOk);
  }

  if (req.complete()) return;
  if (frag->hdr.len <= frag->inline_data.size()) return;  // eager, in flight

  // Long message: hand back to the delivering PTL to run its scheme.
  Ptl* ptl = frag->ptl;
  ctx_.compute(ctx_.params->pml_sched_ns);
  ptl->matched(req, std::move(frag));
}

void Pml::send_progress(SendRequest& req, std::size_t bytes) {
  req.add_progress(bytes);
  if (req.complete()) {
    ctx_.compute(ctx_.params->pml_complete_ns);
    OQS_METRIC_INC("pml.send.completed");
    OQS_TRACE_INSTANT(ctx_.gid, "pml", "send.complete", "len",
                      req.total_bytes());
  }
}

void Pml::recv_progress(RecvRequest& req, std::size_t bytes) {
  req.add_progress(bytes);
  if (req.complete()) {
    ctx_.compute(ctx_.params->pml_complete_ns);
    OQS_METRIC_INC("pml.recv.completed");
    OQS_TRACE_INSTANT(ctx_.gid, "pml", "recv.complete", "len",
                      req.total_bytes());
  }
}

int Pml::progress() {
  int n = 0;
  for (const auto& p : ptls_) n += p->progress();
  return n;
}

void Pml::wait(Request& req) {
  bool any_threaded = false;
  for (const auto& p : ptls_) any_threaded |= p->threaded();
  if (any_threaded) {
    req.done_flag().wait();
    return;
  }
  // Interrupt-driven blocking only works when a single PTL is active — a
  // process cannot block inside one PTL while others carry traffic (§3.2).
  // Block only while the PTL is idle; once a protocol exchange is in flight
  // (rendezvous answered, RDMA outstanding), poll it to completion so a
  // multi-step protocol costs one interrupt, not one per step.
  if (ptls_.size() == 1 && ptls_[0]->blocking_capable()) {
    Ptl& ptl = *ptls_[0];
    while (!req.complete()) {
      if (ptl.progress() > 0) continue;
      if (ptl.active())
        ctx_.engine->sleep(ctx_.params->host_poll_ns);
      else
        ptl.progress_blocking();
    }
    return;
  }
  while (!req.complete()) {
    if (progress() == 0) {
      // Nothing arrived: the poll cost was already charged by the PTLs.
      // Yield so NIC/fabric events can run.
      ctx_.engine->sleep(ctx_.params->host_poll_ns);
    }
  }
}

Pml::SequenceState Pml::export_sequences() const {
  SequenceState s;
  s.send_next = send_seq_;
  for (const auto& [gid, io] : recv_seq_) {
    assert(io.held.empty() && "exporting sequences with out-of-order frags held");
    s.recv_expected[gid] = io.expected;
  }
  return s;
}

void Pml::import_sequences(const SequenceState& s) {
  send_seq_ = s.send_next;
  for (const auto& [gid, expected] : s.recv_expected)
    recv_seq_[gid].expected = expected;
}

void Pml::finalize() {
  if (finalized_) return;
  finalized_ = true;
  // Unlink (and fail) any receives still posted so their storage can be
  // reclaimed safely after teardown.
  while (RecvRequest* req = posted_.pop_front()) req->fail(Status::kShutdown);
  for (const auto& p : ptls_) p->finalize();
}

}  // namespace oqs::pml
