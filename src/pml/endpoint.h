// Per-peer endpoint abstraction.
//
// Each PTL keeps one Endpoint per peer process it can reach. The common
// base exposes what the layers above the PTL (the BML rail scheduler, the
// PML wait gate, tests) need to see without knowing the transport:
// liveness, identity, and reliability-window occupancy. PTLs subclass it
// with their transport-specific connection state (Elan4: vpid + receive
// queue + ReliableStream; TCP: Ethernet address).
#pragma once

#include <cstddef>

namespace oqs::pml {

struct Endpoint {
  virtual ~Endpoint() = default;

  int gid = -1;       // peer's global process id
  bool alive = true;  // cleared by the peer's goodbye (or a failure)

  // Unacked + backlogged sequenced frames toward this peer (0 when the
  // transport runs without a reliability window).
  virtual std::size_t window_in_use() const { return 0; }
};

}  // namespace oqs::pml
