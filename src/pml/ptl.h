// The PTL component interface (paper §2.2).
//
// A PTL module is one communication endpoint over one network interface. It
// moves fragments; the PML above it owns matching, scheduling and request
// state. The five lifecycle stages of the paper (open, initialize,
// communicate, finalize, close) map to: construction, init(), the
// send/matched/progress calls, finalize(), destruction.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/status.h"
#include "pml/endpoint.h"
#include "pml/header.h"
#include "pml/request.h"

namespace oqs::pml {

class Pml;

// Contact information published through the RTE registry at wire-up: one
// opaque blob per PTL component name.
using ContactInfo = std::map<std::string, std::vector<std::uint8_t>>;

// Receiver-side state of an arrived first fragment, created by the PTL and
// owned by the PML until the match completes. PTLs subclass it to carry
// scheme state (sender cookie, exposed E4 address, ...).
struct FirstFrag {
  virtual ~FirstFrag() = default;
  MatchHeader hdr;
  Ptl* ptl = nullptr;
  std::vector<std::uint8_t> inline_data;  // payload carried with the header
};

class Ptl {
 public:
  virtual ~Ptl() = default;

  virtual const std::string& name() const = 0;

  // Largest payload the PTL will carry in a first fragment. Messages up to
  // this size use the eager path; larger ones go through rendezvous.
  virtual std::size_t eager_limit() const = 0;
  // Relative bandwidth weight for scheduling the rendezvous remainder
  // across PTLs (MB/s scale).
  virtual double bandwidth_weight() const = 0;

  // This module's contact blob, stored in the registry.
  virtual std::vector<std::uint8_t> contact() const = 0;
  // Learn a peer's contact blob. Returns kUnreachable if the peer did not
  // publish a section for this PTL component.
  virtual Status add_peer(int gid, const ContactInfo& info) = 0;
  virtual void remove_peer(int gid) = 0;
  virtual bool reaches(int gid) const = 0;
  // The per-peer endpoint for gid, or nullptr when the PTL does not expose
  // its connection state (or has no such peer).
  virtual Endpoint* endpoint(int gid) { return nullptr; }
  // First-fragment wire latency estimate (ns) for the BML's eager rail
  // selection; 0 = unknown (ties broken by bandwidth_weight).
  virtual double latency_ns() const { return 0; }
  // True while this module has at least one live endpoint — i.e. it is an
  // active rail for this process. The PML's blocking-wait gate counts wired
  // rails, not constructed PTL objects.
  virtual bool wired() const { return true; }

  // --- send path ---
  // Transmit the first fragment of req (header + up to inline_len payload
  // bytes). For len <= eager_limit this is the whole message.
  virtual void send_first(SendRequest& req, std::size_t inline_len) = 0;

  // --- receive path ---
  // PML matched `frag` to `req`; run the long-message scheme (ack + sender
  // RDMA-write, or RDMA-read + FIN_ACK). Only called when hdr.len exceeds
  // the inline payload.
  virtual void matched(RecvRequest& req, std::unique_ptr<FirstFrag> frag) = 0;

  // --- BML multi-rail striping hooks (optional; default: not capable) ---
  // A stripe-capable rail can expose a local memory region for remote pull
  // and pull stripes of a peer's exposed region. Regions are rail-local
  // (each NIC has its own MMU): a region handle from rail r is only
  // meaningful to the peer's rail-r module.
  virtual bool stripe_capable() const { return false; }
  // Rendezvous payloads are protected by a per-stripe checksum on this rail
  // (the BML then verifies and re-pulls on mismatch).
  virtual bool stripe_checksummed() const { return false; }
  // Expose [base, base+len) for remote pull; returns an opaque region
  // handle (0 = failure). The caller unexposes it after FIN aggregation.
  virtual std::uint64_t stripe_expose(const void* base, std::size_t len) {
    (void)base;
    (void)len;
    return 0;
  }
  virtual void stripe_unexpose(std::uint64_t region) { (void)region; }
  // Pull `len` bytes at `offset` of the peer's exposed region into dst.
  // Returns a pull id (0 = peer unreachable); `done` runs on completion.
  virtual std::uint64_t stripe_pull(int gid, std::uint64_t region,
                                    std::size_t offset, void* dst,
                                    std::size_t len,
                                    std::function<void(Status)> done) {
    (void)gid;
    (void)region;
    (void)offset;
    (void)dst;
    (void)len;
    (void)done;
    return 0;
  }
  // Abandon an outstanding pull (rail presumed dead); its completion
  // callback will not run.
  virtual void stripe_cancel(std::uint64_t pull_id) { (void)pull_id; }
  // Payload bytes per eagerly pushed pipeline fragment (kPipeFrag) on this
  // rail. Defaults to the eager limit (one full first-fragment frame); a
  // copy-path rail may prefer its chunk size.
  virtual std::size_t pipeline_push_unit() const { return eager_limit(); }
  // Transmit a BML-built protocol frame (striped first fragment, stripe
  // FIN) to gid. Non-control frames ride the rail's sequenced/reliable
  // path like any data frame.
  virtual void bml_post(int gid, const MatchHeader& hdr, const void* body,
                        std::size_t body_len) {
    (void)gid;
    (void)hdr;
    (void)body;
    (void)body_len;
  }

  // Poll the network once; deliver arrivals into the PML. Returns the
  // number of events handled. Used by the PML's non-blocking progress mode.
  virtual int progress() = 0;

  // Interrupt-driven progress: block inside the PTL until at least one
  // event is handled. The paper notes this is "not really workable" with
  // multiple PTLs active (a process cannot block within one PTL); it exists
  // to measure interrupt cost (Table 1) and only engages when it is the
  // sole PTL.
  virtual bool blocking_capable() const { return false; }
  virtual int progress_blocking() { return progress(); }
  // True while the PTL has protocol exchanges in flight (a rendezvous being
  // answered, an RDMA outstanding). The interrupt-mode wait polls while
  // active and only blocks when genuinely idle, so a multi-step protocol
  // costs one interrupt, not one per step.
  virtual bool active() const { return false; }

  // Quiesce: complete pending traffic, stop progress threads, release
  // network resources (paper §4.1: finalize only after pending messages
  // drain so no leftover DMA can regenerate traffic).
  virtual void finalize() = 0;

  // True when this module runs its own progress thread(s); the PML then
  // blocks on request flags instead of spin-polling.
  virtual bool threaded() const { return false; }
};

}  // namespace oqs::pml
