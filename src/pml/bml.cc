#include "pml/bml.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "base/checksum.h"
#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pml/pml.h"
#include "rte/oob.h"  // put_pod/get_pod helpers
#include "sim/engine.h"

namespace oqs::pml {

namespace {
// CRC re-pulls after a fragment checksum mismatch are bounded separately
// from the failover attempt cap: a corrupting rail gets several chances
// before the whole receive fails.
constexpr int kStripeMaxCrcRetries = 8;

// Serialized schedule overhead in the RTS body (everything but the rail
// table and the inline payload): checksummed flag, inline_len, push_len,
// push_unit, frag_size, nfrags.
constexpr std::size_t kScheduleFixedBytes = 1 + 8 + 8 + 4 + 8 + 4;

double rail_weight(const Ptl& p) { return std::max(p.bandwidth_weight(), 1.0); }
}  // namespace

Bml::Bml(Pml& pml) : pml_(pml) {}

Bml::~Bml() { *alive_ = false; }

void Bml::add_ptl(std::unique_ptr<Ptl> ptl) { ptls_.push_back(std::move(ptl)); }

bool Bml::any_threaded() const {
  for (const auto& p : ptls_)
    if (p->threaded()) return true;
  return false;
}

Ptl* Bml::sole_blocking_ptl() const {
  Ptl* sole = nullptr;
  for (const auto& p : ptls_) {
    if (!p->wired()) continue;
    if (sole != nullptr) return nullptr;  // two live rails: cannot block
    sole = p.get();
  }
  return sole != nullptr && sole->blocking_capable() ? sole : nullptr;
}

Ptl* Bml::find_rail(const std::string& name) const {
  for (const auto& p : ptls_)
    if (p->name() == name) return p.get();
  return nullptr;
}

std::size_t Bml::pipeline_frag_bytes() const {
  if (frag_bytes_override_ > 0) return frag_bytes_override_;
  const std::size_t v = pml_.ctx().params->pipeline_frag_bytes;
  return v > 0 ? v : 16384;
}

int Bml::pipeline_depth() const {
  const int v =
      depth_override_ > 0 ? depth_override_ : pml_.ctx().params->pipeline_depth;
  return v > 0 ? v : 1;
}

int Bml::pipeline_push_frags() const {
  const int v = push_frags_override_ >= 0 ? push_frags_override_
                                          : pml_.ctx().params->pipeline_push_frags;
  return v > 0 ? v : 0;
}

// ------------------------------------------------------ rail selection ----

double Bml::score(const Ptl& p, std::size_t total) const {
  // Estimated completion time: first-fragment latency plus serialization at
  // the rail's bandwidth. Small messages chase latency, large ones
  // bandwidth; a rail with unknown bandwidth only wins by default.
  const double bw = p.bandwidth_weight();
  const double serialize =
      bw > 0.0 ? static_cast<double>(total) * 1000.0 / bw : 1e18;
  return p.latency_ns() + serialize;
}

Ptl* Bml::choose(int dst_gid, std::size_t total) {
  if (policy_ == SchedPolicy::kRoundRobin) {
    for (std::size_t k = 0; k < ptls_.size(); ++k) {
      Ptl* p = ptls_[(rr_next_ + k) % ptls_.size()].get();
      if (p->reaches(dst_gid)) {
        rr_next_ = (rr_next_ + k + 1) % ptls_.size();
        return p;
      }
    }
    return nullptr;
  }
  Ptl* best = nullptr;
  double best_score = 0.0;
  for (const auto& p : ptls_) {
    if (!p->reaches(dst_gid)) continue;
    const double s = score(*p, total);
    if (best == nullptr || s < best_score) {
      best = p.get();
      best_score = s;
    }
  }
  return best;
}

std::vector<Ptl*> Bml::stripe_rails(int gid) const {
  std::vector<Ptl*> rails;
  for (const auto& p : ptls_)
    if (p->stripe_capable() && p->reaches(gid)) rails.push_back(p.get());
  return rails;
}

// ----------------------------------------------------------- send path ----

void Bml::send(SendRequest& req) {
  const int dst_gid = req.dst_gid;
  Ptl* ptl = choose(dst_gid, req.total_bytes());
  if (ptl == nullptr && pml_.resolve_peer(dst_gid))
    ptl = choose(dst_gid, req.total_bytes());
  if (ptl == nullptr) {
    log::error("bml", "no PTL reaches gid ", dst_gid);
    req.fail(Status::kUnreachable);
    return;
  }
  req.ptl = ptl;

  std::size_t inline_len;
  OQS_METRIC_INC("pml.send.total");
  if (req.total_bytes() <= ptl->eager_limit()) {
    inline_len = req.total_bytes();  // whole message rides the first frag
    OQS_METRIC_INC("pml.send.eager");
    OQS_TRACE_INSTANT(pml_.ctx().gid, "pml", "send.eager", "len",
                      req.total_bytes(), "dst",
                      static_cast<std::uint64_t>(dst_gid));
  } else {
    inline_len = inline_rendezvous_ ? ptl->eager_limit() : 0;
    OQS_METRIC_INC("pml.send.rendezvous");
    OQS_TRACE_INSTANT(pml_.ctx().gid, "pml", "send.rendezvous", "len",
                      req.total_bytes(), "dst",
                      static_cast<std::uint64_t>(dst_gid));
    if (try_fragmented(req, ptl)) return;
  }

  if (pml_.probe_send_to_ptl) pml_.probe_send_to_ptl();
  ptl->send_first(req, inline_len);
}

bool Bml::try_fragmented(SendRequest& req, Ptl* chosen) {
  if (policy_ != SchedPolicy::kBestWeight) return false;  // RR = legacy path
  const ProcessCtx& ctx = pml_.ctx();
  const std::size_t total = req.total_bytes();
  std::vector<Ptl*> rails = stripe_rails(req.dst_gid);
  if (pipeline_) {
    if (rails.empty()) return false;
  } else {
    // Legacy whole-message striping: engages only above the stripe
    // threshold with at least two rails, and never composes with the
    // single-rail inline-rendezvous prefix.
    if (inline_rendezvous_) return false;
    if (total < ctx.params->stripe_min_bytes || rails.size() < 2) return false;
  }

  // The chosen (best-score) rail leads: it carries the RTS, the inline
  // prefix and the pushed fragments, and its region is first in the table
  // so FINs prefer it.
  if (auto it = std::find(rails.begin(), rails.end(), chosen);
      it != rails.end())
    std::rotate(rails.begin(), it, it + 1);
  Ptl* primary = rails[0];
  req.ptl = primary;

  // End-to-end fragment checksums when the rails verify payloads (the
  // receiver re-pulls a mismatching fragment).
  const bool checksummed = primary->stripe_checksummed();

  // Plan the one authoritative schedule. The RTS frame budget bounds the
  // inline prefix: the primary's eager limit minus the serialized rail
  // table, the schedule fields, and a worst-case CRC table.
  std::uint64_t inline_cap = 0;
  std::uint32_t push_frames = 0;
  std::uint32_t push_unit = 0;
  std::uint64_t frag_size;
  if (pipeline_) {
    std::size_t overhead = 4 + kScheduleFixedBytes;
    for (Ptl* r : rails) overhead += 1 + r->name().size() + 8;
    if (checksummed) overhead += 4 * kMaxPullFrags;
    const std::size_t slot = primary->eager_limit();
    inline_cap = slot > overhead ? slot - overhead : 0;
    push_unit = static_cast<std::uint32_t>(primary->pipeline_push_unit());
    push_frames = static_cast<std::uint32_t>(pipeline_push_frags());
    frag_size = pipeline_frag_bytes();
  } else {
    frag_size = (total + rails.size() - 1) / rails.size();
  }
  const FragSchedule plan =
      plan_frags(total, inline_cap, push_frames, push_unit, frag_size);
  assert(plan.pull_base + plan.pull_len == total);

  // Stage non-contiguous payloads once; every rail exposes the same bytes.
  const void* src = req.buf;
  if (!req.type->is_contiguous()) {
    req.staging.resize(total);
    ctx.compute(ctx.params->host_memcpy_startup_ns +
                ModelParams::xfer_ns(total, ctx.params->host_memcpy_mbps));
    req.convertor.pack(req.staging.data(), total);
    src = req.staging.data();
  }
  const char* s = static_cast<const char*>(src);

  StripedSend op;
  op.req = &req;
  op.gid = req.dst_gid;
  op.rest = plan.pull_len;
  // Expose the WHOLE pull region on EVERY rail (regions are rail-local —
  // each NIC has its own MMU), so the receiver can pull any fragment over
  // any surviving rail if one dies mid-transfer. The inline/push prefix is
  // outside the region by construction: pulls cannot re-deliver it.
  if (plan.pull_len > 0) {
    for (Ptl* r : rails) {
      const std::uint64_t region = r->stripe_expose(
          s + plan.pull_base, static_cast<std::size_t>(plan.pull_len));
      if (region == 0) {
        for (auto& [p, reg] : op.regions) p->stripe_unexpose(reg);
        return false;  // fall back to single-rail rendezvous
      }
      op.regions.emplace_back(r, region);
    }
  }

  std::vector<std::uint32_t> crcs;
  if (checksummed && plan.nfrags > 0) {
    ctx.compute(ModelParams::xfer_ns(plan.pull_len, ctx.params->crc_mbps));
    crcs.resize(plan.nfrags);
    for (std::uint32_t i = 0; i < plan.nfrags; ++i)
      crcs[i] =
          crc32c(reinterpret_cast<const std::uint8_t*>(s) + plan.frag_offset(i),
                 static_cast<std::size_t>(plan.frag_bytes(i)));
  }

  const std::uint64_t id = next_send_id_++;
  op.want_mask =
      plan.nfrags >= 64 ? ~0ull : (1ull << plan.nfrags) - 1;

  // Serialize the schedule: the rail table (name, region handle), then the
  // boundary fields the receiver feeds back through derive_frags() — both
  // sides compute fragment offsets from the same numbers — then the CRC
  // table and the inline prefix bytes.
  std::vector<std::uint8_t> blob;
  rte::put_pod(blob, static_cast<std::uint32_t>(op.regions.size()));
  for (const auto& [r, region] : op.regions) {
    const std::string& nm = r->name();
    rte::put_pod(blob, static_cast<std::uint8_t>(nm.size()));
    blob.insert(blob.end(), nm.begin(), nm.end());
    rte::put_pod(blob, region);
  }
  rte::put_pod(blob, static_cast<std::uint8_t>(checksummed ? 1 : 0));
  rte::put_pod(blob, plan.inline_len);
  rte::put_pod(blob, plan.push_len);
  rte::put_pod(blob, plan.push_unit);
  rte::put_pod(blob, plan.frag_size);
  rte::put_pod(blob, plan.nfrags);
  for (std::uint32_t c : crcs) rte::put_pod(blob, c);
  if (plan.inline_len > 0)
    blob.insert(blob.end(), s, s + plan.inline_len);

  req.hdr.kind = FragKind::kRendezvousStriped;
  req.hdr.cookie = id;
  if (plan.nfrags > 0) ssends_.emplace(id, std::move(op));

  OQS_METRIC_INC(pipeline_ ? "bml.send.pipelined" : "bml.send.striped");
  OQS_TRACE_INSTANT(ctx.gid, "bml", "send.fragmented", "len", total, "frags",
                    static_cast<std::uint64_t>(plan.nfrags));
  if (pml_.probe_send_to_ptl) pml_.probe_send_to_ptl();

  // Copying the prefix into wire frames is real host work the eager path
  // charges per-fragment; charge it once here for the inline+push bytes.
  if (plan.pull_base > 0)
    ctx.compute(ctx.params->host_memcpy_startup_ns +
                ModelParams::xfer_ns(plan.pull_base,
                                     ctx.params->host_memcpy_mbps));

  // The fragmented first fragment is an ordinary sequenced fragment on the
  // primary rail: it flows through Pml::incoming_first on the receiver, so
  // per-sender arrival order is preserved across the striped path.
  primary->bml_post(req.dst_gid, req.hdr, blob.data(), blob.size());

  // Eagerly push the first pipeline fragments behind the RTS: payload is
  // already streaming while the receiver matches, which is what closes the
  // mid-range gap against Tport's NIC-side pipelining (Fig. 10c/d). The
  // frames ride the same sequenced stream as the RTS, so they arrive after
  // it and are retransmitted by go-back-N like any data frame.
  for (std::uint32_t i = 0; i < plan.push_frames(); ++i) {
    MatchHeader ph = req.hdr;
    ph.kind = FragKind::kPipeFrag;
    ph.aux = plan.push_offset(i);
    ph.len = plan.push_bytes(i);
    OQS_METRIC_INC("bml.pipeline.push_tx");
    primary->bml_post(req.dst_gid, ph, s + plan.push_offset(i),
                      static_cast<std::size_t>(plan.push_bytes(i)));
  }

  // Buffered-send semantics for the prefix: those bytes are on (or queued
  // for) the wire; the pulled remainder completes at FIN aggregation.
  if (plan.pull_len == 0)
    pml_.send_progress(req, total);
  else if (plan.pull_base > 0)
    pml_.send_progress(req, static_cast<std::size_t>(plan.pull_base));
  return true;
}

void Bml::handle_stripe_fin(const MatchHeader& hdr) {
  auto it = ssends_.find(hdr.cookie);
  if (it == ssends_.end()) {
    log::warn("bml", "stripe FIN for unknown send ", hdr.cookie);
    return;
  }
  StripedSend& op = it->second;
  const std::uint64_t bit = 1ull << (hdr.aux & 63);
  if ((op.fin_mask & bit) != 0) return;  // duplicate FIN (retransmission)
  op.fin_mask |= bit;
  if (hdr.status != static_cast<std::uint16_t>(Status::kOk)) op.failed = true;
  if ((op.fin_mask & op.want_mask) != op.want_mask) return;

  // All fragments accounted for: one aggregated completion.
  StripedSend done = std::move(op);
  ssends_.erase(it);
  for (auto& [rail, region] : done.regions) rail->stripe_unexpose(region);
  OQS_METRIC_INC("bml.stripe.send_done");
  OQS_TRACE_INSTANT(pml_.ctx().gid, "bml", "stripe.send_done", "len",
                    done.rest);
  if (done.failed)
    done.req->fail(Status::kError);
  else
    pml_.send_progress(*done.req, done.rest);
}

// -------------------------------------------------------- receive path ----

void Bml::matched_striped(RecvRequest& req, std::unique_ptr<FirstFrag> frag) {
  const std::vector<std::uint8_t>& blob = frag->inline_data;
  std::size_t off = 0;
  const ProcessCtx& ctx = pml_.ctx();

  StripedRecv op;
  op.req = &req;
  op.gid = frag->hdr.src_gid;
  op.sender_cookie = frag->hdr.cookie;
  op.rest = frag->hdr.len;

  const auto nrails = rte::get_pod<std::uint32_t>(blob, off);
  for (std::uint32_t i = 0; i < nrails; ++i) {
    const auto nlen = rte::get_pod<std::uint8_t>(blob, off);
    std::string name(blob.begin() + static_cast<std::ptrdiff_t>(off),
                     blob.begin() + static_cast<std::ptrdiff_t>(off + nlen));
    off += nlen;
    const auto region = rte::get_pod<std::uint64_t>(blob, off);
    RailSched rs;
    rs.name = std::move(name);
    rs.region = region;
    Ptl* p = find_rail(rs.name);
    rs.ptl = p != nullptr && p->stripe_capable() ? p : nullptr;
    op.rails.push_back(std::move(rs));
  }
  op.checksummed = rte::get_pod<std::uint8_t>(blob, off) != 0;
  const auto inline_len = rte::get_pod<std::uint64_t>(blob, off);
  const auto push_len = rte::get_pod<std::uint64_t>(blob, off);
  const auto push_unit = rte::get_pod<std::uint32_t>(blob, off);
  const auto frag_size = rte::get_pod<std::uint64_t>(blob, off);
  const auto nfrags = rte::get_pod<std::uint32_t>(blob, off);

  // Re-derive the fragment boundaries from the sender's numbers through the
  // one shared authority; a disagreement is a protocol bug, not a runtime
  // condition.
  op.plan =
      derive_frags(frag->hdr.len, inline_len, push_len, push_unit, frag_size);
  assert(op.plan.nfrags == nfrags &&
         "sender and receiver derived different fragment schedules");
  (void)nfrags;
  op.push_expected = op.plan.push_len;

  if (op.checksummed) {
    op.crcs.resize(op.plan.nfrags);
    for (std::uint32_t i = 0; i < op.plan.nfrags; ++i)
      op.crcs[i] = rte::get_pod<std::uint32_t>(blob, off);
  }

  if (req.type->is_contiguous()) {
    op.base = static_cast<char*>(req.buf);
  } else {
    req.staging.resize(op.rest);
    op.base = reinterpret_cast<char*>(req.staging.data());
    op.staged = true;
  }

  // The inline prefix rides at the tail of the RTS body; it lands here and
  // nowhere else (the pull region starts at pull_base).
  if (op.plan.inline_len > 0) {
    assert(blob.size() - off == op.plan.inline_len);
    ctx.compute(ctx.params->host_memcpy_startup_ns +
                ModelParams::xfer_ns(op.plan.inline_len,
                                     ctx.params->host_memcpy_mbps));
    std::memcpy(op.base, blob.data() + off,
                static_cast<std::size_t>(op.plan.inline_len));
  }

  op.pending.resize(op.plan.nfrags);
  // Bandwidth-weighted fragment dispatch: each fragment goes to the rail
  // that finishes its backlog+fragment earliest. With equal rails this
  // degenerates to round-robin; a slow rail naturally takes fewer
  // fragments. Suspect/absent rails take none.
  {
    std::vector<double> load(op.rails.size(), 0.0);
    for (std::uint32_t i = 0; i < op.plan.nfrags; ++i) {
      int best = -1;
      double best_v = 0.0;
      for (std::size_t r = 0; r < op.rails.size(); ++r) {
        const RailSched& rs = op.rails[r];
        if (rs.ptl == nullptr || !rs.ptl->reaches(op.gid) ||
            suspect_rails_.count(rs.name) != 0)
          continue;
        const double v =
            (load[r] + static_cast<double>(op.plan.frag_bytes(i))) /
            rail_weight(*rs.ptl);
        if (best < 0 || v < best_v) {
          best = static_cast<int>(r);
          best_v = v;
        }
      }
      if (best < 0) break;  // no usable rail: issue_pull will fail the recv
      op.pending[i].slot = best;
      op.rails[static_cast<std::size_t>(best)].queue.push_back(i);
      load[static_cast<std::size_t>(best)] +=
          static_cast<double>(op.plan.frag_bytes(i));
    }
  }

  const std::uint64_t rid = next_recv_id_++;
  const auto key = std::make_pair(op.gid, op.sender_cookie);
  const std::uint32_t count = op.plan.nfrags;
  rrecvs_.emplace(rid, std::move(op));
  by_cookie_[key] = rid;
  OQS_METRIC_INC("bml.recv.striped");
  OQS_TRACE_INSTANT(ctx.gid, "bml", "recv.striped", "len", frag->hdr.len,
                    "frags", static_cast<std::uint64_t>(count));

  // Pushed fragments that raced ahead of the match land now.
  if (auto st = pipe_stash_.find(key); st != pipe_stash_.end()) {
    auto frames = std::move(st->second);
    pipe_stash_.erase(st);
    for (auto& [foff, bytes] : frames) {
      if (rrecvs_.find(rid) == rrecvs_.end()) return;  // completed/failed
      apply_push(rid, foff, bytes.data(), bytes.size());
    }
  }
  if (rrecvs_.find(rid) == rrecvs_.end()) return;

  if (count > 0) {
    // A fragment with no usable rail fails the receive through the normal
    // path: force one issue attempt so the failure is reported.
    bool any_queued = false;
    for (const RailSched& rs : rrecvs_.at(rid).rails)
      any_queued = any_queued || !rs.queue.empty();
    if (!any_queued) {
      fail_recv(rid, Status::kUnreachable);
      return;
    }
    pump(rid);
    arm_stripe_timer();
  } else {
    maybe_finish_recv(rid);
  }
}

void Bml::handle_pipe_frag(const MatchHeader& hdr, const std::uint8_t* data,
                           std::size_t len) {
  const auto key = std::make_pair(hdr.src_gid, hdr.cookie);
  auto it = by_cookie_.find(key);
  if (it == by_cookie_.end()) {
    // Pushed fragments can outrun the posting of the receive (the RTS sits
    // in the unexpected queue); stash them until the match lands.
    OQS_METRIC_INC("bml.pipeline.push_stashed");
    pipe_stash_[key].emplace_back(hdr.aux,
                                  std::vector<std::uint8_t>(data, data + len));
    return;
  }
  apply_push(it->second, hdr.aux, data, len);
}

void Bml::apply_push(std::uint64_t rid, std::uint64_t offset,
                     const std::uint8_t* data, std::size_t len) {
  auto it = rrecvs_.find(rid);
  if (it == rrecvs_.end()) return;
  StripedRecv& op = it->second;
  // Pushed fragments live strictly between the inline prefix and the pull
  // region; anything else would re-deliver bytes another path owns.
  if (offset < op.plan.inline_len || offset + len > op.plan.pull_base) {
    log::error("bml", "pushed fragment outside its window: off ", offset,
               " len ", len);
    return;
  }
  const ProcessCtx& ctx = pml_.ctx();
  ctx.compute(ctx.params->host_memcpy_startup_ns +
              ModelParams::xfer_ns(len, ctx.params->host_memcpy_mbps));
  std::memcpy(op.base + offset, data, len);
  op.push_got += len;
  OQS_METRIC_INC("bml.pipeline.push_rx");
  OQS_TRACE_INSTANT(ctx.gid, "bml", "pipeline.push", "off", offset, "len",
                    static_cast<std::uint64_t>(len));
  maybe_finish_recv(rid);
}

void Bml::pump(std::uint64_t rid) {
  auto it = rrecvs_.find(rid);
  if (it == rrecvs_.end()) return;
  const int depth = pipeline_depth();
  bool advanced = true;
  while (advanced) {
    advanced = false;
    // Re-find the op each sweep: issue_pull can mutate rrecvs_.
    auto cur = rrecvs_.find(rid);
    if (cur == rrecvs_.end()) return;
    StripedRecv& op = cur->second;
    auto usable = [&](const RailSched& rs) {
      return rs.ptl != nullptr && rs.ptl->reaches(op.gid) &&
             suspect_rails_.count(rs.name) == 0;
    };
    // A dead rail's queued fragments migrate to the least-loaded survivor's
    // queue (not straight to the wire: the depth limit still applies, so a
    // failover does not dump an unbounded burst on the surviving rail).
    int total_inflight = 0;
    for (const RailSched& rs : op.rails) total_inflight += rs.inflight;
    for (std::size_t r = 0; r < op.rails.size(); ++r) {
      RailSched& rs = op.rails[r];
      if (usable(rs) || rs.queue.empty()) continue;
      while (!rs.queue.empty()) {
        int best = -1;
        for (std::size_t t = 0; t < op.rails.size(); ++t) {
          if (!usable(op.rails[t])) continue;
          if (best < 0 || op.rails[t].queue.size() <
                              op.rails[static_cast<std::size_t>(best)].queue.size())
            best = static_cast<int>(t);
        }
        if (best < 0) {
          // Every rail is gone. With pulls still in flight their completion
          // (or the watchdog) decides the fate; otherwise nothing ever will.
          if (total_inflight == 0) fail_recv(rid, Status::kUnreachable);
          return;
        }
        const std::uint32_t idx = rs.queue.front();
        rs.queue.pop_front();
        op.pending[idx].slot = best;
        op.rails[static_cast<std::size_t>(best)].queue.push_back(idx);
      }
    }
    for (std::size_t r = 0; r < op.rails.size(); ++r) {
      RailSched& rs = op.rails[r];
      if (rs.queue.empty() || rs.inflight >= depth) continue;
      const std::uint32_t idx = rs.queue.front();
      rs.queue.pop_front();
      advanced = true;
      issue_pull(rid, idx);
      if (rrecvs_.find(rid) == rrecvs_.end()) return;  // failed mid-issue
    }
  }
}

void Bml::issue_pull(std::uint64_t rid, std::uint32_t idx) {
  auto it = rrecvs_.find(rid);
  if (it == rrecvs_.end()) return;
  StripedRecv& op = it->second;
  PendingPull& pend = op.pending[idx];

  auto usable = [&](const RailSched& rs) {
    return rs.ptl != nullptr && rs.ptl->reaches(op.gid) &&
           suspect_rails_.count(rs.name) == 0;
  };
  // Preferred rail: the scheduled assignment. Failing that (suspect,
  // absent, unreachable), the least-busy live rail — the sender exposed the
  // whole pull region on every rail for exactly this case.
  int slot = pend.slot;
  if (slot < 0 || !usable(op.rails[static_cast<std::size_t>(slot)])) {
    slot = -1;
    for (std::size_t r = 0; r < op.rails.size(); ++r) {
      if (!usable(op.rails[r])) continue;
      if (slot < 0 ||
          op.rails[r].inflight < op.rails[static_cast<std::size_t>(slot)].inflight)
        slot = static_cast<int>(r);
    }
    if (slot < 0) {
      fail_recv(rid, Status::kUnreachable);
      return;
    }
    pend.slot = slot;
  }
  RailSched& rs = op.rails[static_cast<std::size_t>(slot)];

  const ProcessCtx& ctx = pml_.ctx();
  const std::uint64_t foff = op.plan.frag_offset(idx);
  const std::uint64_t flen = op.plan.frag_bytes(idx);
  ++pend.attempts;
  pend.rail = rs.ptl;
  pend.done = false;
  // Generous per-fragment deadline: the failover timeout plus several times
  // the ideal serialization, so a loaded-but-healthy rail is never culled —
  // including the rail's current backlog, which balloons when a failover
  // collapses a dead rail's share onto this one.
  std::uint64_t ahead =
      static_cast<std::uint64_t>(rs.inflight) * op.plan.frag_size;
  for (const std::uint32_t q : rs.queue) ahead += op.plan.frag_bytes(q);
  pend.deadline = ctx.engine->now() + ctx.params->stripe_timeout_ns +
                  2 * ModelParams::xfer_ns(ahead, ctx.params->link_mbps) +
                  8 * ModelParams::xfer_ns(flen, ctx.params->link_mbps);
  pend.pull_id = rs.ptl->stripe_pull(
      op.gid, rs.region, static_cast<std::size_t>(foff - op.plan.pull_base),
      op.base + foff, static_cast<std::size_t>(flen),
      [this, tok = std::weak_ptr<bool>(alive_), rid, idx](Status st) {
        auto a = tok.lock();
        if (!a || !*a) return;
        on_pull_done(rid, idx, st);
      });
  if (pend.pull_id == 0) {
    // The rail refused outright (peer gone there): immediately suspect.
    suspect_rails_.insert(rs.name);
    if (pend.attempts <= static_cast<int>(ptls_.size()) + 1)
      issue_pull(rid, idx);
    else
      fail_recv(rid, Status::kUnreachable);
    return;
  }
  ++rs.inflight;
  OQS_TRACE_INSTANT(ctx.gid, "bml", "stripe.pull", "idx",
                    static_cast<std::uint64_t>(idx), "len", flen);
}

void Bml::on_pull_done(std::uint64_t rid, std::uint32_t idx, Status st) {
  auto it = rrecvs_.find(rid);
  if (it == rrecvs_.end()) return;
  StripedRecv& op = it->second;
  PendingPull& pend = op.pending[idx];
  if (pend.done) return;  // stale completion after a reassignment
  if (pend.slot >= 0)
    --op.rails[static_cast<std::size_t>(pend.slot)].inflight;
  const ProcessCtx& ctx = pml_.ctx();
  const std::uint64_t foff = op.plan.frag_offset(idx);
  const std::uint64_t flen = op.plan.frag_bytes(idx);

  if (!ok(st)) {
    if (pend.rail != nullptr) suspect_rails_.insert(pend.rail->name());
    if (pend.attempts > static_cast<int>(ptls_.size()) + 1) {
      fail_recv(rid, st);
      return;
    }
    issue_pull(rid, idx);
    return;
  }

  if (op.checksummed) {
    ctx.compute(ModelParams::xfer_ns(flen, ctx.params->crc_mbps));
    if (crc32c(op.base + foff, static_cast<std::size_t>(flen)) !=
        op.crcs[idx]) {
      OQS_METRIC_INC("bml.stripe.crc_retries");
      if (++pend.crc_retries > kStripeMaxCrcRetries) {
        fail_recv(rid, Status::kError);
        return;
      }
      // Re-pull without burning a failover attempt: a corrupting wire is
      // not a dead rail.
      --pend.attempts;
      issue_pull(rid, idx);
      return;
    }
  }

  pend.done = true;
  pend.pull_id = 0;
  ++op.done_count;
  OQS_TRACE_INSTANT(ctx.gid, "bml", "stripe.done", "idx",
                    static_cast<std::uint64_t>(idx), "len", flen);
  // FIN per fragment; the sender aggregates all FINs into one completion.
  send_stripe_fin(op, idx, Status::kOk);
  // Freeing a depth slot starts the next queued fragment immediately: this
  // back-to-back chain is the pipeline.
  pump(rid);
  maybe_finish_recv(rid);
}

void Bml::send_stripe_fin(StripedRecv& op, std::size_t idx, Status st) {
  // Control traffic stays on the primary (first live) rail, like the
  // fragmented first fragment: a FIN must never ride a rail that might be
  // the one being failed over, or its loss would strand the sender's
  // aggregation.
  Ptl* rail = nullptr;
  for (const RailSched& rs : op.rails) {
    if (rs.ptl != nullptr && rs.ptl->reaches(op.gid) &&
        suspect_rails_.count(rs.name) == 0) {
      rail = rs.ptl;
      break;
    }
  }
  // Suspect is a local verdict, not proof of death: rather than strand the
  // sender's FIN aggregation, fall back to any rail that still claims to
  // reach the peer.
  if (rail == nullptr)
    for (const RailSched& rs : op.rails)
      if (rs.ptl != nullptr && rs.ptl->reaches(op.gid)) {
        rail = rs.ptl;
        break;
      }
  if (rail == nullptr) return;  // no rail at all: the sender is gone anyway
  MatchHeader fin;
  fin.kind = FragKind::kStripeFin;
  fin.src_gid = pml_.ctx().gid;
  fin.dst_gid = op.gid;
  fin.cookie = op.sender_cookie;
  fin.aux = idx;
  fin.status = static_cast<std::uint16_t>(st);
  // Not control-flagged: under reliability the FIN rides the sequenced
  // go-back-N stream, so a lost FIN is retransmitted, not stranded.
  rail->bml_post(op.gid, fin, nullptr, 0);
}

void Bml::maybe_finish_recv(std::uint64_t rid) {
  auto it = rrecvs_.find(rid);
  if (it == rrecvs_.end()) return;
  const StripedRecv& op = it->second;
  if (op.done_count == op.plan.nfrags && op.push_got >= op.push_expected)
    finish_recv(rid);
}

void Bml::finish_recv(std::uint64_t rid) {
  auto it = rrecvs_.find(rid);
  StripedRecv op = std::move(it->second);
  rrecvs_.erase(it);
  by_cookie_.erase(std::make_pair(op.gid, op.sender_cookie));
  const ProcessCtx& ctx = pml_.ctx();
  if (op.staged) {
    ctx.compute(ctx.params->host_memcpy_startup_ns +
                ModelParams::xfer_ns(op.rest, ctx.params->host_memcpy_mbps));
    op.req->convertor.unpack(op.req->staging.data(), op.rest);
  }
  OQS_METRIC_INC("bml.stripe.recv_done");
  OQS_TRACE_INSTANT(ctx.gid, "bml", "stripe.recv_done", "len", op.rest);
  pml_.recv_progress(*op.req, op.rest);
}

void Bml::fail_recv(std::uint64_t rid, Status st) {
  auto it = rrecvs_.find(rid);
  if (it == rrecvs_.end()) return;
  StripedRecv op = std::move(it->second);
  rrecvs_.erase(it);
  by_cookie_.erase(std::make_pair(op.gid, op.sender_cookie));
  for (PendingPull& pend : op.pending) {
    if (!pend.done && pend.rail != nullptr && pend.pull_id != 0)
      pend.rail->stripe_cancel(pend.pull_id);
  }
  // Report every unfinished fragment to the sender so it unexposes its
  // regions and fails the send instead of waiting forever.
  for (std::size_t i = 0; i < op.pending.size(); ++i)
    if (!op.pending[i].done) send_stripe_fin(op, i, st);
  log::warn("bml", "fragmented recv from gid ", op.gid, " failed: ",
            to_string(st));
  OQS_METRIC_INC("bml.stripe.failed");
  op.req->fail(st);
}

// ------------------------------------------------------ stripe failover ----

void Bml::arm_stripe_timer() {
  if (stripe_timer_armed_ || finalized_ || rrecvs_.empty()) return;
  stripe_timer_armed_ = true;
  const ProcessCtx& ctx = pml_.ctx();
  const sim::Time interval =
      std::max<sim::Time>(ctx.params->stripe_timeout_ns / 4, 1000);
  ctx.engine->schedule(interval, [this, token = alive_] {
    if (!*token) return;
    // Timer events are plain callbacks; re-issuing pulls charges host CPU,
    // which requires a fiber — so the scan runs in a short-lived one.
    pml_.ctx().engine->spawn("bml-stripe", [this, token] {
      if (!*token) return;
      stripe_fire();
    });
  });
}

void Bml::stripe_fire() {
  stripe_timer_armed_ = false;
  const ProcessCtx& ctx = pml_.ctx();
  const sim::Time now = ctx.engine->now();
  // Collect overdue fragments first: issue_pull / fail_recv mutate rrecvs_.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> overdue;
  for (auto& [rid, op] : rrecvs_) {
    for (std::uint32_t i = 0; i < op.pending.size(); ++i) {
      const PendingPull& pend = op.pending[i];
      if (!pend.done && pend.pull_id != 0 && now >= pend.deadline)
        overdue.emplace_back(rid, i);
    }
  }
  for (const auto& [rid, idx] : overdue) {
    auto it = rrecvs_.find(rid);
    if (it == rrecvs_.end()) continue;
    StripedRecv& op = it->second;
    PendingPull& pend = op.pending[idx];
    if (pend.done || pend.pull_id == 0) continue;
    // The pull sat past its deadline: presume the rail dead, abandon the
    // pull, and re-issue the fragment on a survivor.
    log::warn("bml", "fragment ", idx, " overdue on rail ",
              pend.rail != nullptr ? pend.rail->name() : "?",
              "; failing over");
    OQS_METRIC_INC("bml.stripe.failovers");
    OQS_TRACE_INSTANT(ctx.gid, "bml", "stripe.failover", "idx",
                      static_cast<std::uint64_t>(idx));
    if (pend.rail != nullptr) {
      pend.rail->stripe_cancel(pend.pull_id);
      suspect_rails_.insert(pend.rail->name());
    }
    if (pend.slot >= 0)
      --op.rails[static_cast<std::size_t>(pend.slot)].inflight;
    pend.pull_id = 0;
    if (pend.attempts > static_cast<int>(ptls_.size()) + 1) {
      fail_recv(rid, Status::kUnreachable);
      continue;
    }
    issue_pull(rid, idx);
    // The dead rail's queued fragments reassign as the pump pops them (the
    // issue path skips suspect rails), so drain it now.
    pump(rid);
  }
  arm_stripe_timer();
}

// ------------------------------------------------------------ lifecycle ----

int Bml::progress() {
  int n = 0;
  for (const auto& p : ptls_) n += p->progress();
  return n;
}

void Bml::finalize() {
  if (finalized_) return;
  const ProcessCtx& ctx = pml_.ctx();
  // Drain in-flight fragmented operations first (the failover timer keeps
  // running, so a dead rail cannot wedge the drain), then quiesce the rails.
  while (striped_active() != 0) {
    if (progress() == 0) ctx.engine->sleep(ctx.params->host_poll_ns);
  }
  finalized_ = true;
  *alive_ = false;
  pipe_stash_.clear();
  for (const auto& p : ptls_) p->finalize();
}

}  // namespace oqs::pml
