#include "pml/bml.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "base/checksum.h"
#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pml/pml.h"
#include "rte/oob.h"  // put_pod/get_pod helpers
#include "sim/engine.h"

namespace oqs::pml {

namespace {
// CRC re-pulls after a stripe checksum mismatch are bounded separately from
// the failover attempt cap: a corrupting rail gets several chances before
// the whole receive fails.
constexpr int kStripeMaxCrcRetries = 8;
}  // namespace

Bml::Bml(Pml& pml) : pml_(pml) {}

Bml::~Bml() { *alive_ = false; }

void Bml::add_ptl(std::unique_ptr<Ptl> ptl) { ptls_.push_back(std::move(ptl)); }

bool Bml::any_threaded() const {
  for (const auto& p : ptls_)
    if (p->threaded()) return true;
  return false;
}

Ptl* Bml::sole_blocking_ptl() const {
  Ptl* sole = nullptr;
  for (const auto& p : ptls_) {
    if (!p->wired()) continue;
    if (sole != nullptr) return nullptr;  // two live rails: cannot block
    sole = p.get();
  }
  return sole != nullptr && sole->blocking_capable() ? sole : nullptr;
}

Ptl* Bml::find_rail(const std::string& name) const {
  for (const auto& p : ptls_)
    if (p->name() == name) return p.get();
  return nullptr;
}

// ------------------------------------------------------ rail selection ----

double Bml::score(const Ptl& p, std::size_t total) const {
  // Estimated completion time: first-fragment latency plus serialization at
  // the rail's bandwidth. Small messages chase latency, large ones
  // bandwidth; a rail with unknown bandwidth only wins by default.
  const double bw = p.bandwidth_weight();
  const double serialize =
      bw > 0.0 ? static_cast<double>(total) * 1000.0 / bw : 1e18;
  return p.latency_ns() + serialize;
}

Ptl* Bml::choose(int dst_gid, std::size_t total) {
  if (policy_ == SchedPolicy::kRoundRobin) {
    for (std::size_t k = 0; k < ptls_.size(); ++k) {
      Ptl* p = ptls_[(rr_next_ + k) % ptls_.size()].get();
      if (p->reaches(dst_gid)) {
        rr_next_ = (rr_next_ + k + 1) % ptls_.size();
        return p;
      }
    }
    return nullptr;
  }
  Ptl* best = nullptr;
  double best_score = 0.0;
  for (const auto& p : ptls_) {
    if (!p->reaches(dst_gid)) continue;
    const double s = score(*p, total);
    if (best == nullptr || s < best_score) {
      best = p.get();
      best_score = s;
    }
  }
  return best;
}

std::vector<Ptl*> Bml::stripe_rails(int gid) const {
  std::vector<Ptl*> rails;
  for (const auto& p : ptls_)
    if (p->stripe_capable() && p->reaches(gid)) rails.push_back(p.get());
  return rails;
}

// ----------------------------------------------------------- send path ----

void Bml::send(SendRequest& req) {
  const int dst_gid = req.dst_gid;
  Ptl* ptl = choose(dst_gid, req.total_bytes());
  if (ptl == nullptr && pml_.resolve_peer(dst_gid))
    ptl = choose(dst_gid, req.total_bytes());
  if (ptl == nullptr) {
    log::error("bml", "no PTL reaches gid ", dst_gid);
    req.fail(Status::kUnreachable);
    return;
  }
  req.ptl = ptl;

  std::size_t inline_len;
  OQS_METRIC_INC("pml.send.total");
  if (req.total_bytes() <= ptl->eager_limit()) {
    inline_len = req.total_bytes();  // whole message rides the first frag
    OQS_METRIC_INC("pml.send.eager");
    OQS_TRACE_INSTANT(pml_.ctx().gid, "pml", "send.eager", "len",
                      req.total_bytes(), "dst",
                      static_cast<std::uint64_t>(dst_gid));
  } else {
    inline_len = inline_rendezvous_ ? ptl->eager_limit() : 0;
    OQS_METRIC_INC("pml.send.rendezvous");
    OQS_TRACE_INSTANT(pml_.ctx().gid, "pml", "send.rendezvous", "len",
                      req.total_bytes(), "dst",
                      static_cast<std::uint64_t>(dst_gid));
    // Striping wants the whole payload pullable (no inline prefix) and at
    // least two stripe-capable rails to the peer.
    if (inline_len == 0 && try_striped(req)) return;
  }

  if (pml_.probe_send_to_ptl) pml_.probe_send_to_ptl();
  ptl->send_first(req, inline_len);
}

bool Bml::try_striped(SendRequest& req) {
  if (policy_ != SchedPolicy::kBestWeight) return false;  // RR = legacy path
  const ProcessCtx& ctx = pml_.ctx();
  const std::size_t total = req.total_bytes();
  if (total < ctx.params->stripe_min_bytes) return false;
  const std::vector<Ptl*> rails = stripe_rails(req.dst_gid);
  if (rails.size() < 2) return false;

  // Stage non-contiguous payloads once; every rail exposes the same bytes.
  const void* src = req.buf;
  if (!req.type->is_contiguous()) {
    req.staging.resize(total);
    ctx.compute(ctx.params->host_memcpy_startup_ns +
                ModelParams::xfer_ns(total, ctx.params->host_memcpy_mbps));
    req.convertor.pack(req.staging.data(), total);
    src = req.staging.data();
  }

  StripedSend op;
  op.req = &req;
  op.gid = req.dst_gid;
  op.rest = total;
  // Expose the WHOLE payload on EVERY rail (regions are rail-local — each
  // NIC has its own MMU), so the receiver can pull any stripe over any
  // surviving rail if one dies mid-transfer.
  for (Ptl* r : rails) {
    const std::uint64_t region = r->stripe_expose(src, total);
    if (region == 0) {
      for (auto& [p, reg] : op.regions) p->stripe_unexpose(reg);
      return false;  // fall back to single-rail rendezvous
    }
    op.regions.emplace_back(r, region);
  }

  // Bandwidth-weighted stripe shares; the last stripe absorbs rounding.
  double wsum = 0.0;
  for (Ptl* r : rails) wsum += std::max(r->bandwidth_weight(), 1.0);
  std::vector<StripeSpec> stripes;
  std::uint64_t off = 0;
  for (std::size_t i = 0; i < rails.size(); ++i) {
    std::uint64_t len;
    if (i + 1 == rails.size()) {
      len = total - off;
    } else {
      const double share = std::max(rails[i]->bandwidth_weight(), 1.0) / wsum;
      len = static_cast<std::uint64_t>(static_cast<double>(total) * share);
    }
    if (len == 0) continue;
    StripeSpec s;
    s.rail = static_cast<std::uint32_t>(i);
    s.offset = off;
    s.len = len;
    off += len;
    stripes.push_back(s);
  }
  assert(off == total);
  assert(stripes.size() <= 64 && "stripe FIN aggregation uses a 64-bit mask");

  // End-to-end stripe checksums when the rails verify payloads (the
  // receiver re-pulls a mismatching stripe).
  const bool checksummed = rails[0]->stripe_checksummed();
  if (checksummed) {
    ctx.compute(ModelParams::xfer_ns(total, ctx.params->crc_mbps));
    for (StripeSpec& s : stripes)
      s.crc = crc32c(static_cast<const std::uint8_t*>(src) + s.offset,
                     static_cast<std::size_t>(s.len));
  }

  const std::uint64_t id = next_send_id_++;
  op.want_mask = stripes.size() == 64 ? ~0ull : (1ull << stripes.size()) - 1;

  // Serialize the stripe map: per-rail (name, region handle), then the
  // stripe assignments. It rides the first fragment's inline_data.
  std::vector<std::uint8_t> blob;
  rte::put_pod(blob, static_cast<std::uint32_t>(op.regions.size()));
  for (const auto& [r, region] : op.regions) {
    const std::string& nm = r->name();
    rte::put_pod(blob, static_cast<std::uint8_t>(nm.size()));
    blob.insert(blob.end(), nm.begin(), nm.end());
    rte::put_pod(blob, region);
  }
  rte::put_pod(blob, static_cast<std::uint8_t>(checksummed ? 1 : 0));
  rte::put_pod(blob, static_cast<std::uint32_t>(stripes.size()));
  for (const StripeSpec& s : stripes) {
    rte::put_pod(blob, s.rail);
    rte::put_pod(blob, s.offset);
    rte::put_pod(blob, s.len);
    rte::put_pod(blob, s.crc);
  }

  req.hdr.kind = FragKind::kRendezvousStriped;
  req.hdr.cookie = id;
  Ptl* primary = rails[0];
  ssends_.emplace(id, std::move(op));

  OQS_METRIC_INC("bml.send.striped");
  OQS_TRACE_INSTANT(ctx.gid, "bml", "send.striped", "len", total, "rails",
                    static_cast<std::uint64_t>(rails.size()));
  if (pml_.probe_send_to_ptl) pml_.probe_send_to_ptl();
  // The striped first fragment is an ordinary sequenced fragment on the
  // primary rail: it flows through Pml::incoming_first on the receiver, so
  // per-sender arrival order is preserved across the striped path.
  primary->bml_post(req.dst_gid, req.hdr, blob.data(), blob.size());
  return true;
}

void Bml::handle_stripe_fin(const MatchHeader& hdr) {
  auto it = ssends_.find(hdr.cookie);
  if (it == ssends_.end()) {
    log::warn("bml", "stripe FIN for unknown send ", hdr.cookie);
    return;
  }
  StripedSend& op = it->second;
  const std::uint64_t bit = 1ull << (hdr.aux & 63);
  if ((op.fin_mask & bit) != 0) return;  // duplicate FIN (retransmission)
  op.fin_mask |= bit;
  if (hdr.status != static_cast<std::uint16_t>(Status::kOk)) op.failed = true;
  if ((op.fin_mask & op.want_mask) != op.want_mask) return;

  // All stripes accounted for: one aggregated completion.
  StripedSend done = std::move(op);
  ssends_.erase(it);
  for (auto& [rail, region] : done.regions) rail->stripe_unexpose(region);
  OQS_METRIC_INC("bml.stripe.send_done");
  OQS_TRACE_INSTANT(pml_.ctx().gid, "bml", "stripe.send_done", "len",
                    done.rest);
  if (done.failed)
    done.req->fail(Status::kError);
  else
    pml_.send_progress(*done.req, done.rest);
}

// -------------------------------------------------------- receive path ----

void Bml::matched_striped(RecvRequest& req, std::unique_ptr<FirstFrag> frag) {
  const std::vector<std::uint8_t>& blob = frag->inline_data;
  std::size_t off = 0;

  StripedRecv op;
  op.req = &req;
  op.gid = frag->hdr.src_gid;
  op.sender_cookie = frag->hdr.cookie;
  op.rest = frag->hdr.len;

  const auto nrails = rte::get_pod<std::uint32_t>(blob, off);
  for (std::uint32_t i = 0; i < nrails; ++i) {
    const auto nlen = rte::get_pod<std::uint8_t>(blob, off);
    std::string name(blob.begin() + static_cast<std::ptrdiff_t>(off),
                     blob.begin() + static_cast<std::ptrdiff_t>(off + nlen));
    off += nlen;
    const auto region = rte::get_pod<std::uint64_t>(blob, off);
    op.regions.emplace_back(std::move(name), region);
  }
  op.checksummed = rte::get_pod<std::uint8_t>(blob, off) != 0;
  const auto nstripes = rte::get_pod<std::uint32_t>(blob, off);
  for (std::uint32_t i = 0; i < nstripes; ++i) {
    StripeSpec s;
    s.rail = rte::get_pod<std::uint32_t>(blob, off);
    s.offset = rte::get_pod<std::uint64_t>(blob, off);
    s.len = rte::get_pod<std::uint64_t>(blob, off);
    s.crc = rte::get_pod<std::uint32_t>(blob, off);
    op.stripes.push_back(s);
  }
  op.pending.resize(op.stripes.size());

  if (req.type->is_contiguous()) {
    op.base = static_cast<char*>(req.buf);
  } else {
    req.staging.resize(op.rest);
    op.base = reinterpret_cast<char*>(req.staging.data());
    op.staged = true;
  }

  const std::uint64_t rid = next_recv_id_++;
  const std::size_t count = op.stripes.size();
  rrecvs_.emplace(rid, std::move(op));
  OQS_METRIC_INC("bml.recv.striped");
  OQS_TRACE_INSTANT(pml_.ctx().gid, "bml", "recv.striped", "len",
                    frag->hdr.len, "stripes",
                    static_cast<std::uint64_t>(count));
  for (std::size_t i = 0; i < count; ++i) {
    if (rrecvs_.find(rid) == rrecvs_.end()) break;  // failed mid-issue
    issue_pull(rid, i);
  }
  arm_stripe_timer();
}

void Bml::issue_pull(std::uint64_t rid, std::size_t idx) {
  auto it = rrecvs_.find(rid);
  if (it == rrecvs_.end()) return;
  StripedRecv& op = it->second;
  const StripeSpec& s = op.stripes[idx];
  PendingPull& pend = op.pending[idx];

  auto usable = [&](Ptl* p) {
    return p != nullptr && p->stripe_capable() && p->reaches(op.gid) &&
           suspect_rails_.count(p->name()) == 0;
  };
  // Preferred rail: the sender's assignment. Failing that (suspect, absent,
  // unreachable), any live rail — the sender exposed the whole payload on
  // every rail for exactly this case.
  Ptl* rail = nullptr;
  std::uint64_t region = 0;
  if (Ptl* p = find_rail(op.regions[s.rail].first); usable(p)) {
    rail = p;
    region = op.regions[s.rail].second;
  } else {
    for (const auto& [nm, reg] : op.regions) {
      Ptl* q = find_rail(nm);
      if (usable(q)) {
        rail = q;
        region = reg;
        break;
      }
    }
  }
  if (rail == nullptr) {
    fail_recv(rid, Status::kUnreachable);
    return;
  }

  const ProcessCtx& ctx = pml_.ctx();
  ++pend.attempts;
  pend.rail = rail;
  pend.done = false;
  // Generous per-stripe deadline: the failover timeout plus several times
  // the ideal serialization, so a loaded-but-healthy rail is never culled.
  pend.deadline =
      ctx.engine->now() + ctx.params->stripe_timeout_ns +
      8 * ModelParams::xfer_ns(s.len, ctx.params->link_mbps);
  pend.pull_id = rail->stripe_pull(
      op.gid, region, static_cast<std::size_t>(s.offset), op.base + s.offset,
      static_cast<std::size_t>(s.len),
      [this, tok = std::weak_ptr<bool>(alive_), rid, idx](Status st) {
        auto a = tok.lock();
        if (!a || !*a) return;
        on_pull_done(rid, idx, st);
      });
  if (pend.pull_id == 0) {
    // The rail refused outright (peer gone there): immediately suspect.
    suspect_rails_.insert(rail->name());
    if (pend.attempts <= static_cast<int>(ptls_.size()) + 1)
      issue_pull(rid, idx);
    else
      fail_recv(rid, Status::kUnreachable);
    return;
  }
  OQS_TRACE_INSTANT(ctx.gid, "bml", "stripe.pull", "idx",
                    static_cast<std::uint64_t>(idx), "len", s.len);
}

void Bml::on_pull_done(std::uint64_t rid, std::size_t idx, Status st) {
  auto it = rrecvs_.find(rid);
  if (it == rrecvs_.end()) return;
  StripedRecv& op = it->second;
  PendingPull& pend = op.pending[idx];
  if (pend.done) return;  // stale completion after a reassignment
  const ProcessCtx& ctx = pml_.ctx();
  const StripeSpec& s = op.stripes[idx];

  if (!ok(st)) {
    if (pend.rail != nullptr) suspect_rails_.insert(pend.rail->name());
    if (pend.attempts > static_cast<int>(ptls_.size()) + 1) {
      fail_recv(rid, st);
      return;
    }
    issue_pull(rid, idx);
    return;
  }

  if (op.checksummed) {
    ctx.compute(ModelParams::xfer_ns(s.len, ctx.params->crc_mbps));
    if (crc32c(op.base + s.offset, static_cast<std::size_t>(s.len)) != s.crc) {
      OQS_METRIC_INC("bml.stripe.crc_retries");
      if (++pend.crc_retries > kStripeMaxCrcRetries) {
        fail_recv(rid, Status::kError);
        return;
      }
      // Re-pull without burning a failover attempt: a corrupting wire is
      // not a dead rail.
      --pend.attempts;
      issue_pull(rid, idx);
      return;
    }
  }

  pend.done = true;
  pend.pull_id = 0;
  ++op.done_count;
  OQS_TRACE_INSTANT(ctx.gid, "bml", "stripe.done", "idx",
                    static_cast<std::uint64_t>(idx), "len", s.len);
  // FIN per stripe; the sender aggregates all FINs into one completion.
  send_stripe_fin(op, idx, Status::kOk);
  if (op.done_count == op.stripes.size()) finish_recv(rid);
}

void Bml::send_stripe_fin(StripedRecv& op, std::size_t idx, Status st) {
  // Control traffic stays on the primary (first live) rail, like the
  // striped first fragment: a FIN must never ride a rail that might be the
  // one being failed over, or its loss would strand the sender's
  // aggregation.
  Ptl* rail = nullptr;
  for (const auto& [nm, reg] : op.regions) {
    Ptl* p = find_rail(nm);
    if (p != nullptr && p->reaches(op.gid) && suspect_rails_.count(nm) == 0) {
      rail = p;
      break;
    }
  }
  if (rail == nullptr) return;  // no live rail: the sender is gone anyway
  MatchHeader fin;
  fin.kind = FragKind::kStripeFin;
  fin.src_gid = pml_.ctx().gid;
  fin.dst_gid = op.gid;
  fin.cookie = op.sender_cookie;
  fin.aux = idx;
  fin.status = static_cast<std::uint16_t>(st);
  // Not control-flagged: under reliability the FIN rides the sequenced
  // go-back-N stream, so a lost FIN is retransmitted, not stranded.
  rail->bml_post(op.gid, fin, nullptr, 0);
}

void Bml::finish_recv(std::uint64_t rid) {
  auto it = rrecvs_.find(rid);
  StripedRecv op = std::move(it->second);
  rrecvs_.erase(it);
  const ProcessCtx& ctx = pml_.ctx();
  if (op.staged) {
    ctx.compute(ctx.params->host_memcpy_startup_ns +
                ModelParams::xfer_ns(op.rest, ctx.params->host_memcpy_mbps));
    op.req->convertor.unpack(op.req->staging.data(), op.rest);
  }
  OQS_METRIC_INC("bml.stripe.recv_done");
  OQS_TRACE_INSTANT(ctx.gid, "bml", "stripe.recv_done", "len", op.rest);
  pml_.recv_progress(*op.req, op.rest);
}

void Bml::fail_recv(std::uint64_t rid, Status st) {
  auto it = rrecvs_.find(rid);
  if (it == rrecvs_.end()) return;
  StripedRecv op = std::move(it->second);
  rrecvs_.erase(it);
  for (PendingPull& pend : op.pending) {
    if (!pend.done && pend.rail != nullptr && pend.pull_id != 0)
      pend.rail->stripe_cancel(pend.pull_id);
  }
  // Report every unfinished stripe to the sender so it unexposes its
  // regions and fails the send instead of waiting forever.
  for (std::size_t i = 0; i < op.stripes.size(); ++i)
    if (!op.pending[i].done) send_stripe_fin(op, i, st);
  log::warn("bml", "striped recv from gid ", op.gid, " failed: ",
            to_string(st));
  OQS_METRIC_INC("bml.stripe.failed");
  op.req->fail(st);
}

// ------------------------------------------------------ stripe failover ----

void Bml::arm_stripe_timer() {
  if (stripe_timer_armed_ || finalized_ || rrecvs_.empty()) return;
  stripe_timer_armed_ = true;
  const ProcessCtx& ctx = pml_.ctx();
  const sim::Time interval =
      std::max<sim::Time>(ctx.params->stripe_timeout_ns / 4, 1000);
  ctx.engine->schedule(interval, [this, token = alive_] {
    if (!*token) return;
    // Timer events are plain callbacks; re-issuing pulls charges host CPU,
    // which requires a fiber — so the scan runs in a short-lived one.
    pml_.ctx().engine->spawn("bml-stripe", [this, token] {
      if (!*token) return;
      stripe_fire();
    });
  });
}

void Bml::stripe_fire() {
  stripe_timer_armed_ = false;
  const ProcessCtx& ctx = pml_.ctx();
  const sim::Time now = ctx.engine->now();
  // Collect overdue stripes first: issue_pull / fail_recv mutate rrecvs_.
  std::vector<std::pair<std::uint64_t, std::size_t>> overdue;
  for (auto& [rid, op] : rrecvs_) {
    for (std::size_t i = 0; i < op.pending.size(); ++i) {
      const PendingPull& pend = op.pending[i];
      if (!pend.done && pend.pull_id != 0 && now >= pend.deadline)
        overdue.emplace_back(rid, i);
    }
  }
  for (const auto& [rid, idx] : overdue) {
    auto it = rrecvs_.find(rid);
    if (it == rrecvs_.end()) continue;
    StripedRecv& op = it->second;
    PendingPull& pend = op.pending[idx];
    if (pend.done) continue;
    // The pull sat past its deadline: presume the rail dead, abandon the
    // pull, and re-issue the stripe on a survivor.
    log::warn("bml", "stripe ", idx, " overdue on rail ",
              pend.rail != nullptr ? pend.rail->name() : "?",
              "; failing over");
    OQS_METRIC_INC("bml.stripe.failovers");
    OQS_TRACE_INSTANT(ctx.gid, "bml", "stripe.failover", "idx",
                      static_cast<std::uint64_t>(idx));
    if (pend.rail != nullptr) {
      pend.rail->stripe_cancel(pend.pull_id);
      suspect_rails_.insert(pend.rail->name());
    }
    pend.pull_id = 0;
    if (pend.attempts > static_cast<int>(ptls_.size()) + 1)
      fail_recv(rid, Status::kUnreachable);
    else
      issue_pull(rid, idx);
  }
  arm_stripe_timer();
}

// ------------------------------------------------------------ lifecycle ----

int Bml::progress() {
  int n = 0;
  for (const auto& p : ptls_) n += p->progress();
  return n;
}

void Bml::finalize() {
  if (finalized_) return;
  const ProcessCtx& ctx = pml_.ctx();
  // Drain in-flight striped operations first (the failover timer keeps
  // running, so a dead rail cannot wedge the drain), then quiesce the rails.
  while (striped_active() != 0) {
    if (progress() == 0) ctx.engine->sleep(ctx.params->host_poll_ns);
  }
  finalized_ = true;
  *alive_ = false;
  for (const auto& p : ptls_) p->finalize();
}

}  // namespace oqs::pml
