// The pipelined-rendezvous fragment schedule.
//
// One function owns every byte boundary of a long message: the inline
// prefix riding in the RTS frame, the eagerly pushed pipeline fragments
// that follow it before the CTS, and the chunked pull fragments that
// stream the remainder. Both the sender (building the RTS) and the
// receiver (scheduling pulls) derive boundaries from the same plan, so an
// offset disagreement — the old double-delivery window where the inline
// prefix was not excluded from the striped pull map — is impossible by
// construction: pulls address only [pull_base, total).
#pragma once

#include <cstdint>

namespace oqs::pml {

// Per-fragment FIN accounting aggregates into a 64-bit mask, so a message
// never splits into more pull fragments than mask bits.
inline constexpr std::uint32_t kMaxPullFrags = 64;

struct FragSchedule {
  std::uint64_t total = 0;       // whole message payload bytes
  std::uint64_t inline_len = 0;  // bytes carried inside the RTS frame
  std::uint64_t push_len = 0;    // bytes pushed eagerly after the prefix
  std::uint32_t push_unit = 0;   // payload bytes per pushed frame
  std::uint64_t pull_base = 0;   // first byte the receiver may pull
  std::uint64_t pull_len = 0;    // bytes moved by chunked RDMA pulls
  std::uint64_t frag_size = 0;   // requested pull fragment size
  std::uint32_t nfrags = 0;      // pull fragments (<= kMaxPullFrags)

  std::uint32_t push_frames() const {
    if (push_len == 0 || push_unit == 0) return 0;
    return static_cast<std::uint32_t>((push_len + push_unit - 1) / push_unit);
  }

  // Pushed frame i covers [push_offset(i), push_offset(i) + push_bytes(i)).
  std::uint64_t push_offset(std::uint32_t i) const {
    return inline_len + static_cast<std::uint64_t>(i) * push_unit;
  }
  std::uint64_t push_bytes(std::uint32_t i) const {
    const std::uint64_t off = push_offset(i);
    const std::uint64_t end = inline_len + push_len;
    return off >= end ? 0 : (end - off < push_unit ? end - off : push_unit);
  }

  // Pull fragment i covers [frag_offset(i), frag_offset(i) + frag_bytes(i)),
  // an absolute range within the message. Uniform splits with the last
  // fragment absorbing the remainder.
  std::uint64_t frag_offset(std::uint32_t i) const {
    return pull_base + static_cast<std::uint64_t>(i) * (pull_len / nfrags);
  }
  std::uint64_t frag_bytes(std::uint32_t i) const {
    const std::uint64_t base = pull_len / nfrags;
    return i + 1 == nfrags ? pull_len - base * i : base;
  }
};

// Derive the pull split from already-fixed prefix boundaries. This is the
// single authority for fragment offsets: the sender serializes inline_len /
// push_len / push_unit / frag_size into the RTS body, the receiver feeds
// them back through here, and both sides see identical ranges.
inline FragSchedule derive_frags(std::uint64_t total, std::uint64_t inline_len,
                                 std::uint64_t push_len,
                                 std::uint32_t push_unit,
                                 std::uint64_t frag_size) {
  FragSchedule p;
  p.total = total;
  p.inline_len = inline_len;
  p.push_len = push_len;
  p.push_unit = push_unit;
  p.frag_size = frag_size;
  p.pull_base = inline_len + push_len;
  p.pull_len = total > p.pull_base ? total - p.pull_base : 0;
  if (p.pull_len == 0) return p;
  if (p.frag_size == 0) p.frag_size = p.pull_len;
  std::uint64_t n = (p.pull_len + p.frag_size - 1) / p.frag_size;
  if (n > kMaxPullFrags) n = kMaxPullFrags;
  p.nfrags = static_cast<std::uint32_t>(n);
  return p;
}

// Sender-side planning: clamp the prefix against the message and the RTS
// frame capacity, then split the rest.
inline FragSchedule plan_frags(std::uint64_t total, std::uint64_t inline_cap,
                               std::uint32_t push_frames,
                               std::uint32_t push_unit,
                               std::uint64_t frag_size) {
  const std::uint64_t inline_len = total < inline_cap ? total : inline_cap;
  std::uint64_t push_len = 0;
  if (push_frames > 0 && push_unit > 0) {
    push_len = static_cast<std::uint64_t>(push_frames) * push_unit;
    if (push_len > total - inline_len) push_len = total - inline_len;
    // Two cases where the pull machinery is pure overhead and the tail is
    // folded into extra pushed frames instead:
    //  - the message is well under one pull fragment (half, so that the
    //    extra host-copy time of pushing stays below the pull's RDMA + FIN
    //    round trip — the fig10 latency/bandwidth crossover tables bound
    //    both sides of this cutoff): a single short pull cannot overlap
    //    anything, it only delays sender completion,
    //  - the remainder is smaller than one pushed frame: a sub-frame pull
    //    costs a full fragment round trip for a few hundred bytes.
    const std::uint64_t rem = total - inline_len - push_len;
    if (rem > 0 && (rem <= push_unit || total <= frag_size / 2))
      push_len += rem;
  }
  return derive_frags(total, inline_len, push_len, push_unit, frag_size);
}

}  // namespace oqs::pml
