// The Point-to-point Management Layer.
//
// Device-neutral message management (paper §2.1): request handling, tag
// matching with wildcards and per-sender ordering, fragment scheduling
// across the available PTL modules, reassembly progress, and request
// completion. One Pml instance per MPI process.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "base/intrusive_list.h"
#include "base/params.h"
#include "pml/bml.h"
#include "pml/ptl.h"
#include "pml/request.h"
#include "sim/cpu.h"
#include "sim/engine.h"

namespace oqs::pml {

// Everything a layer needs to charge host work for one process.
struct ProcessCtx {
  sim::Engine* engine = nullptr;
  sim::Cpu* cpu = nullptr;
  const ModelParams* params = nullptr;
  int gid = -1;  // global process id

  void compute(sim::Time ns) const { cpu->compute(ns); }
};

class Pml {
 public:
  // Rail scheduling lives in the BML now; the alias keeps the historical
  // Pml::SchedPolicy spelling working at every call site.
  using SchedPolicy = pml::SchedPolicy;

  explicit Pml(ProcessCtx ctx) : ctx_(ctx), bml_(*this) {}
  ~Pml();
  Pml(const Pml&) = delete;
  Pml& operator=(const Pml&) = delete;

  const ProcessCtx& ctx() const { return ctx_; }
  void set_sched_policy(SchedPolicy p) { bml_.set_sched_policy(p); }
  // When false, rendezvous first fragments carry no payload — the paper's
  // "NoInline" optimization (§6.1), which avoids the extra copy on RDMA
  // networks. Default mirrors the paper's best configuration: off.
  void set_inline_rendezvous(bool v) { bml_.set_inline_rendezvous(v); }
  // Pipelined rendezvous (chunked-RDMA overlap): on by default; the knobs
  // fall back to ModelParams when left at 0 / -1.
  void set_pipeline_rendezvous(bool v) { bml_.set_pipeline_rendezvous(v); }
  void set_pipeline_frag_bytes(std::size_t v) { bml_.set_pipeline_frag_bytes(v); }
  void set_pipeline_depth(int v) { bml_.set_pipeline_depth(v); }
  void set_pipeline_push_frags(int v) { bml_.set_pipeline_push_frags(v); }
  // Condvar handoff latency charged when a progress thread completes a
  // request the application thread is blocked on.
  void set_request_wake_delay(sim::Time ns) { request_wake_delay_ = ns; }

  // The rail multiplexer owning the PTL set (routing, striping, failover).
  Bml& bml() { return bml_; }
  void add_ptl(std::unique_ptr<Ptl> ptl) { bml_.add_ptl(std::move(ptl)); }
  std::size_t num_ptls() const { return bml_.num_ptls(); }
  Ptl& ptl(std::size_t i) { return bml_.ptl(i); }

  // --- application-facing path (called from the process fiber) ---
  // Begin a send; hdr addressing fields other than len/seq must be set.
  void start_send(SendRequest& req, int ctx_id, int src_rank, int dst_rank,
                  int tag, int dst_gid);
  void post_recv(RecvRequest& req);
  // Cancel a posted receive that has not matched (MPI_Cancel semantics);
  // the request completes with kShutdown. No-op once matched or complete.
  void cancel(RecvRequest& req);
  // Inspect the unexpected queue for a matching envelope without consuming
  // it (MPI_Iprobe). Returns true and fills *out on a hit.
  bool iprobe(int ctx_id, int src_rank, int tag, MatchHeader* out);
  // One progress sweep over all PTLs; returns events handled.
  int progress();
  // Block until the request completes (poll- or thread-driven depending on
  // the attached PTLs).
  void wait(Request& req);

  // --- PTL upcalls ---
  // First fragment arrived; the PML takes ownership and matches it, holding
  // out-of-sequence arrivals until their turn (multi-PTL ordering).
  void incoming_first(std::unique_ptr<FirstFrag> frag);
  void send_progress(SendRequest& req, std::size_t bytes);
  void recv_progress(RecvRequest& req, std::size_t bytes);

  // Quiesce all PTLs (paper's finalize stage).
  void finalize();

  // --- checkpoint/restart support ---
  // Per-peer sequence state survives migration: the rebuilt PML must keep
  // counting where the old one stopped or peers' ordering checks desync.
  struct SequenceState {
    std::map<int, std::uint64_t> send_next;      // dst gid -> last seq sent
    std::map<int, std::uint64_t> recv_expected;  // src gid -> next expected
  };
  SequenceState export_sequences() const;
  void import_sequences(const SequenceState& s);

  // Re-resolve a peer whose connection went away (it migrated or rejoined):
  // fetch fresh contact info through `peer_resolver` and re-add it to every
  // PTL. Returns true if any PTL now reaches the peer.
  bool resolve_peer(int gid);
  // Installed by the runtime layer; typically a registry lookup.
  std::function<ContactInfo(int gid)> peer_resolver;

  // --- instrumentation (Fig. 9 layer-cost analysis) ---
  // Invoked when a first fragment is handed up for matching, and when a
  // send request is handed down to a PTL.
  std::function<void()> probe_deliver_to_pml;
  std::function<void()> probe_send_to_ptl;

  std::size_t unexpected_count() const { return unexpected_.size(); }
  std::size_t posted_count() const { return posted_.size(); }

 private:
  // Deliver an in-sequence fragment into matching.
  void admit(std::unique_ptr<FirstFrag> frag);
  // Bind a matched pair: inline unpack, completion or scheme kick-off.
  void bind(RecvRequest& req, std::unique_ptr<FirstFrag> frag);
  static bool matches(const RecvRequest& req, const MatchHeader& hdr);

  ProcessCtx ctx_;
  Bml bml_;
  sim::Time request_wake_delay_ = 0;

  // Sender-side per-destination sequence numbers.
  std::map<int, std::uint64_t> send_seq_;
  // Receiver-side per-source expected sequence + held out-of-order frags.
  struct InOrder {
    std::uint64_t expected = 1;
    std::map<std::uint64_t, std::unique_ptr<FirstFrag>> held;
  };
  std::map<int, InOrder> recv_seq_;

  // The posted-receive queue is intrusive (Open MPI's opal_list style): no
  // allocation on the critical path, O(1) unlink at match time.
  IntrusiveList<RecvRequest, RecvRequest> posted_;
  std::list<std::unique_ptr<FirstFrag>> unexpected_;
  bool finalized_ = false;
};

}  // namespace oqs::pml
