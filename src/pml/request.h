// PML send/receive requests.
//
// Requests are the unit of progress accounting: PTLs report delivered bytes
// through Pml::send_progress / recv_progress, and a request completes when
// all its payload bytes are accounted for (the paper's Fig. 2 flow).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/intrusive_list.h"
#include "base/status.h"
#include "dtype/datatype.h"
#include "pml/header.h"
#include "sim/sync.h"

namespace oqs::pml {

class Ptl;

class Request {
 public:
  enum class Kind { kSend, kRecv };

  Request(sim::Engine& engine, Kind kind)
      : kind_(kind), done_(engine) {}
  virtual ~Request() = default;
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  Kind kind() const { return kind_; }
  bool complete() const { return complete_; }
  Status status() const { return status_; }
  std::size_t transferred() const { return transferred_; }
  std::size_t total_bytes() const { return total_bytes_; }

  sim::Flag& done_flag() { return done_; }

  // --- internal (PML/PTL) ---
  void set_total(std::size_t n) { total_bytes_ = n; }
  void add_progress(std::size_t bytes) {
    transferred_ += bytes;
    if (transferred_ >= total_bytes_) finish(Status::kOk);
  }
  void finish(Status st) {
    if (complete_) return;
    complete_ = true;
    status_ = st;
    // When a progress thread completes the request, the waiting application
    // thread only runs after the condvar handoff (Table 1's threading cost).
    done_.set(wake_delay_);
  }
  void fail(Status st) { finish(st); }
  void set_wake_delay(sim::Time ns) { wake_delay_ = ns; }

 private:
  Kind kind_;
  bool complete_ = false;
  Status status_ = Status::kOk;
  std::size_t transferred_ = 0;
  std::size_t total_bytes_ = 0;
  sim::Time wake_delay_ = 0;
  sim::Flag done_;
};

class SendRequest final : public Request, public ListItem<SendRequest> {
 public:
  SendRequest(sim::Engine& engine, dtype::DatatypePtr type, const void* buf,
              std::size_t count)
      : Request(engine, Kind::kSend),
        type(std::move(type)),
        buf(buf),
        count(count),
        convertor(this->type, const_cast<void*>(buf), count) {
    set_total(this->type->size() * count);
  }

  // Addressing, filled by the PML before hand-off to the PTL.
  MatchHeader hdr;
  int dst_gid = -1;

  dtype::DatatypePtr type;
  const void* buf;
  std::size_t count;
  dtype::Convertor convertor;

  // Contiguous staging for RDMA of non-contiguous data (paper §4.2: the
  // memory descriptor must be presentable as an E4 address range).
  std::vector<std::uint8_t> staging;

  // Per-PTL scratch (e.g. the exposed E4 address of the payload).
  Ptl* ptl = nullptr;
  std::uint64_t ptl_cookie = 0;
};

class RecvRequest final : public Request, public ListItem<RecvRequest> {
 public:
  RecvRequest(sim::Engine& engine, dtype::DatatypePtr type, void* buf,
              std::size_t count)
      : Request(engine, Kind::kRecv),
        type(std::move(type)),
        buf(buf),
        count(count),
        capacity(this->type->size() * count),
        convertor(this->type, buf, count) {}

  // Posted match criteria (src_rank/tag may be wildcards).
  int ctx = 0;
  int src_rank = kAnySource;
  int tag = kAnyTag;

  dtype::DatatypePtr type;
  void* buf;
  std::size_t count;
  std::size_t capacity;
  dtype::Convertor convertor;

  // Filled at match time.
  bool matched = false;
  MatchHeader matched_hdr;

  std::vector<std::uint8_t> staging;
  Ptl* ptl = nullptr;
  std::uint64_t ptl_cookie = 0;
};

}  // namespace oqs::pml
