// The BML: a multiplexer between the PML and the PTL modules.
//
// Open MPI later split rail management out of the point-to-point layer into
// a "BTL management layer"; this component plays that role here. The PML
// owns matching and request state; the BML owns the PTL set and everything
// multi-rail (paper §2.2 "scheduling messages across multiple networks"):
//
//  - rail selection: the lowest-estimated-latency rail carries eager
//    traffic and single-rail rendezvous (latency + serialization at the
//    rail's bandwidth, so small messages chase latency and large ones
//    bandwidth); the legacy round-robin policy is preserved for the
//    scheduler experiments,
//  - pipelined rendezvous: every long message is cut by one authoritative
//    FragSchedule into an inline prefix riding the RTS, eagerly pushed
//    pipeline fragments behind it (payload streams before the CTS), and
//    chunked pull fragments dispatched bandwidth-weighted across every
//    stripe-capable rail with at most pipeline_depth pulls in flight per
//    rail — the fragment is the striping unit, replacing the old 32 KB
//    whole-message stripe threshold,
//  - failover: each issued pull carries a deadline; an overdue fragment
//    marks its rail suspect and is re-issued on a survivor (the sender
//    exposes the whole pull region on every rail precisely so any rail can
//    serve any fragment), with per-fragment FINs aggregated into a single
//    sender completion.
//
// Per-sender arrival order is preserved because the striped first fragment
// is an ordinary sequenced fragment through Pml::incoming_first; only the
// bulk payload fans out across rails. Pushed fragments ride the primary
// rail's sequenced stream behind the RTS, so they arrive after it (or are
// stashed until the match lands when the receiver has not posted yet).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "pml/frag_schedule.h"
#include "pml/ptl.h"
#include "pml/request.h"
#include "sim/time.h"

namespace oqs::pml {

class Pml;

enum class SchedPolicy {
  kBestWeight,  // best completion-time estimate (default)
  kRoundRobin,  // rotate across reachable PTLs per message
};

class Bml {
 public:
  explicit Bml(Pml& pml);
  ~Bml();
  Bml(const Bml&) = delete;
  Bml& operator=(const Bml&) = delete;

  void set_sched_policy(SchedPolicy p) { policy_ = p; }
  void set_inline_rendezvous(bool v) { inline_rendezvous_ = v; }
  // Pipelined-rendezvous knobs; 0 / negative overrides fall back to
  // ModelParams (pipeline_frag_bytes / pipeline_depth / pipeline_push_frags).
  void set_pipeline_rendezvous(bool v) { pipeline_ = v; }
  void set_pipeline_frag_bytes(std::size_t v) { frag_bytes_override_ = v; }
  void set_pipeline_depth(int v) { depth_override_ = v; }
  void set_pipeline_push_frags(int v) { push_frags_override_ = v; }
  bool pipeline_rendezvous() const { return pipeline_; }
  std::size_t pipeline_frag_bytes() const;
  int pipeline_depth() const;
  int pipeline_push_frags() const;

  void add_ptl(std::unique_ptr<Ptl> ptl);
  std::size_t num_ptls() const { return ptls_.size(); }
  Ptl& ptl(std::size_t i) { return *ptls_[i]; }
  bool any_threaded() const;
  // The single wired, blocking-capable rail — or nullptr when several rails
  // are live (a process cannot block inside one PTL while others carry
  // traffic, §3.2). This counts live endpoints, not constructed PTLs, so a
  // dormant secondary module does not forfeit interrupt-driven waits.
  Ptl* sole_blocking_ptl() const;

  // Route and transmit a send whose header the PML has filled in. Decides
  // eager vs rendezvous vs fragmented (pipelined/striped) rendezvous.
  void send(SendRequest& req);

  // Receiver side of a fragmented rendezvous: the PML matched a
  // kRendezvousStriped first fragment; parse the schedule and start the
  // depth-limited per-rail pulls.
  void matched_striped(RecvRequest& req, std::unique_ptr<FirstFrag> frag);
  // Sender side: a kStripeFin arrived from any rail.
  void handle_stripe_fin(const MatchHeader& hdr);
  // Receiver side: an eagerly pushed pipeline fragment (kPipeFrag) arrived.
  void handle_pipe_frag(const MatchHeader& hdr, const std::uint8_t* data,
                        std::size_t len);

  int progress();
  // Drain in-flight striped operations, then quiesce every PTL.
  void finalize();

  // Fragmented operations still in flight (either direction).
  std::size_t striped_active() const { return ssends_.size() + rrecvs_.size(); }
  // Rails marked suspect by fragment failover (by PTL name).
  const std::set<std::string>& suspect_rails() const { return suspect_rails_; }

 private:
  struct StripedSend {
    SendRequest* req = nullptr;
    int gid = -1;
    std::size_t rest = 0;  // pulled bytes, credited at FIN aggregation
    // Exposed pull regions, one per stripe-capable rail, in schedule order.
    std::vector<std::pair<Ptl*, std::uint64_t>> regions;
    std::uint64_t fin_mask = 0;
    std::uint64_t want_mask = 0;
    bool failed = false;
  };

  // Receiver-side progress of one pull fragment.
  struct PendingPull {
    int slot = -1;  // index into StripedRecv::rails
    Ptl* rail = nullptr;
    std::uint64_t pull_id = 0;
    sim::Time deadline = 0;
    int attempts = 0;     // rails tried (failover cap)
    int crc_retries = 0;  // re-pulls after checksum mismatch
    bool done = false;
  };

  // One rail's receiver-local pull scheduler: fragments queue here and at
  // most pipeline_depth are in flight at once, so registration/translation
  // of the next fragment overlaps the transfer of the previous ones.
  struct RailSched {
    std::string name;            // sender-side rail name (wire order)
    std::uint64_t region = 0;    // sender's exposed pull region on that rail
    Ptl* ptl = nullptr;          // local module, nullptr if absent here
    std::deque<std::uint32_t> queue;  // fragments assigned, not yet issued
    int inflight = 0;
  };

  struct StripedRecv {
    RecvRequest* req = nullptr;
    int gid = -1;
    std::uint64_t sender_cookie = 0;  // keys the FINs we send back
    FragSchedule plan;
    std::vector<std::uint32_t> crcs;  // per pull fragment (checksummed rails)
    std::vector<RailSched> rails;
    std::vector<PendingPull> pending;
    char* base = nullptr;  // landing area (user buffer or staging)
    bool staged = false;
    bool checksummed = false;
    std::size_t rest = 0;  // whole message bytes, credited at completion
    std::size_t done_count = 0;
    std::uint64_t push_expected = 0;  // pushed bytes the schedule promises
    std::uint64_t push_got = 0;
  };

  Ptl* choose(int dst_gid, std::size_t total);
  // Completion-time estimate for routing: wire latency + serialization.
  double score(const Ptl& p, std::size_t total) const;
  // Stripe-capable rails reaching gid (used for both the striping decision
  // and the region exposure).
  std::vector<Ptl*> stripe_rails(int gid) const;
  // Plan and launch a fragmented rendezvous (pipelined, or the legacy
  // whole-message striping when the pipeline is disabled). Returns false to
  // fall back to the single-rail monolithic scheme.
  bool try_fragmented(SendRequest& req, Ptl* chosen);
  void apply_push(std::uint64_t rid, std::uint64_t offset,
                  const std::uint8_t* data, std::size_t len);
  // Issue queued fragments on every rail with spare pipeline depth.
  void pump(std::uint64_t rid);
  void issue_pull(std::uint64_t rid, std::uint32_t idx);
  void on_pull_done(std::uint64_t rid, std::uint32_t idx, Status st);
  void send_stripe_fin(StripedRecv& op, std::size_t idx, Status st);
  void maybe_finish_recv(std::uint64_t rid);
  void finish_recv(std::uint64_t rid);
  void fail_recv(std::uint64_t rid, Status st);
  Ptl* find_rail(const std::string& name) const;
  void arm_stripe_timer();
  void stripe_fire();

  Pml& pml_;
  SchedPolicy policy_ = SchedPolicy::kBestWeight;
  bool inline_rendezvous_ = false;
  bool pipeline_ = true;
  std::size_t frag_bytes_override_ = 0;
  int depth_override_ = 0;
  int push_frags_override_ = -1;
  std::size_t rr_next_ = 0;
  std::vector<std::unique_ptr<Ptl>> ptls_;

  std::uint64_t next_send_id_ = 1;  // striped-send cookie (on the wire)
  std::uint64_t next_recv_id_ = 1;  // local striped-recv key
  std::map<std::uint64_t, StripedSend> ssends_;
  std::map<std::uint64_t, StripedRecv> rrecvs_;
  std::set<std::string> suspect_rails_;
  // Routing for pushed fragments: (sender gid, sender cookie) -> recv id
  // once matched; frames arriving before the match wait in the stash.
  std::map<std::pair<int, std::uint64_t>, std::uint64_t> by_cookie_;
  std::map<std::pair<int, std::uint64_t>,
           std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>>>
      pipe_stash_;

  bool stripe_timer_armed_ = false;
  // Timer-liveness token: cleared at finalize so in-flight callbacks die.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool finalized_ = false;
};

}  // namespace oqs::pml
