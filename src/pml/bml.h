// The BML: a multiplexer between the PML and the PTL modules.
//
// Open MPI later split rail management out of the point-to-point layer into
// a "BTL management layer"; this component plays that role here. The PML
// owns matching and request state; the BML owns the PTL set and everything
// multi-rail (paper §2.2 "scheduling messages across multiple networks"):
//
//  - rail selection: the lowest-estimated-latency rail carries eager
//    traffic and single-rail rendezvous (latency + serialization at the
//    rail's bandwidth, so small messages chase latency and large ones
//    bandwidth); the legacy round-robin policy is preserved for the
//    scheduler experiments,
//  - striping: rendezvous payloads at/above ModelParams::stripe_min_bytes
//    are split across every stripe-capable rail in bandwidth-weighted
//    shares; the receiver pulls each stripe over its own rail and sends one
//    FIN per stripe, which the sender aggregates into a single completion,
//  - failover: each stripe carries a pull deadline; an overdue stripe marks
//    its rail suspect and is re-issued on a survivor (the sender exposes
//    the whole payload on every rail precisely so any rail can serve any
//    stripe).
//
// Per-sender arrival order is preserved because the striped first fragment
// is an ordinary sequenced fragment through Pml::incoming_first; only the
// bulk payload fans out across rails.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "pml/ptl.h"
#include "pml/request.h"
#include "sim/time.h"

namespace oqs::pml {

class Pml;

enum class SchedPolicy {
  kBestWeight,  // best completion-time estimate (default)
  kRoundRobin,  // rotate across reachable PTLs per message
};

class Bml {
 public:
  explicit Bml(Pml& pml);
  ~Bml();
  Bml(const Bml&) = delete;
  Bml& operator=(const Bml&) = delete;

  void set_sched_policy(SchedPolicy p) { policy_ = p; }
  void set_inline_rendezvous(bool v) { inline_rendezvous_ = v; }

  void add_ptl(std::unique_ptr<Ptl> ptl);
  std::size_t num_ptls() const { return ptls_.size(); }
  Ptl& ptl(std::size_t i) { return *ptls_[i]; }
  bool any_threaded() const;
  // The single wired, blocking-capable rail — or nullptr when several rails
  // are live (a process cannot block inside one PTL while others carry
  // traffic, §3.2). This counts live endpoints, not constructed PTLs, so a
  // dormant secondary module does not forfeit interrupt-driven waits.
  Ptl* sole_blocking_ptl() const;

  // Route and transmit a send whose header the PML has filled in. Decides
  // eager vs rendezvous vs striped rendezvous.
  void send(SendRequest& req);

  // Receiver side of a striped rendezvous: the PML matched a
  // kRendezvousStriped first fragment; parse the stripe map and start the
  // per-rail pulls.
  void matched_striped(RecvRequest& req, std::unique_ptr<FirstFrag> frag);
  // Sender side: a kStripeFin arrived from any rail.
  void handle_stripe_fin(const MatchHeader& hdr);

  int progress();
  // Drain in-flight striped operations, then quiesce every PTL.
  void finalize();

  // Striped operations still in flight (either direction).
  std::size_t striped_active() const { return ssends_.size() + rrecvs_.size(); }
  // Rails marked suspect by stripe failover (by PTL name).
  const std::set<std::string>& suspect_rails() const { return suspect_rails_; }

 private:
  // One stripe assignment within a striped rendezvous.
  struct StripeSpec {
    std::uint32_t rail = 0;  // index into the sender's rail-region list
    std::uint64_t offset = 0;
    std::uint64_t len = 0;
    std::uint32_t crc = 0;  // payload CRC32C (checksummed rails only)
  };

  struct StripedSend {
    SendRequest* req = nullptr;
    int gid = -1;
    std::size_t rest = 0;
    // Exposed regions, one per stripe-capable rail, in stripe-map order.
    std::vector<std::pair<Ptl*, std::uint64_t>> regions;
    std::uint64_t fin_mask = 0;
    std::uint64_t want_mask = 0;
    bool failed = false;
  };

  // Receiver-side progress of one stripe.
  struct PendingPull {
    Ptl* rail = nullptr;
    std::uint64_t pull_id = 0;
    sim::Time deadline = 0;
    int attempts = 0;     // rails tried (failover cap)
    int crc_retries = 0;  // re-pulls after checksum mismatch
    bool done = false;
  };

  struct StripedRecv {
    RecvRequest* req = nullptr;
    int gid = -1;
    std::uint64_t sender_cookie = 0;  // keys the FINs we send back
    // Sender's exposed regions: rail name -> region handle, in map order.
    std::vector<std::pair<std::string, std::uint64_t>> regions;
    std::vector<StripeSpec> stripes;
    std::vector<PendingPull> pending;
    char* base = nullptr;  // pull target (user buffer or staging)
    bool staged = false;
    bool checksummed = false;
    std::size_t rest = 0;
    std::size_t done_count = 0;
  };

  Ptl* choose(int dst_gid, std::size_t total);
  // Completion-time estimate for routing: wire latency + serialization.
  double score(const Ptl& p, std::size_t total) const;
  // Stripe-capable rails reaching gid (used for both the striping decision
  // and the region exposure).
  std::vector<Ptl*> stripe_rails(int gid) const;
  bool try_striped(SendRequest& req);
  void issue_pull(std::uint64_t rid, std::size_t idx);
  void on_pull_done(std::uint64_t rid, std::size_t idx, Status st);
  void send_stripe_fin(StripedRecv& op, std::size_t idx, Status st);
  void finish_recv(std::uint64_t rid);
  void fail_recv(std::uint64_t rid, Status st);
  Ptl* find_rail(const std::string& name) const;
  void arm_stripe_timer();
  void stripe_fire();

  Pml& pml_;
  SchedPolicy policy_ = SchedPolicy::kBestWeight;
  bool inline_rendezvous_ = false;
  std::size_t rr_next_ = 0;
  std::vector<std::unique_ptr<Ptl>> ptls_;

  std::uint64_t next_send_id_ = 1;  // striped-send cookie (on the wire)
  std::uint64_t next_recv_id_ = 1;  // local striped-recv key
  std::map<std::uint64_t, StripedSend> ssends_;
  std::map<std::uint64_t, StripedRecv> rrecvs_;
  std::set<std::string> suspect_rails_;

  bool stripe_timer_armed_ = false;
  // Timer-liveness token: cleared at finalize so in-flight callbacks die.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool finalized_ = false;
};

}  // namespace oqs::pml
