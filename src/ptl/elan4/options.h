// Configuration of the Elan4 PTL — every knob the paper evaluates.
#pragma once

#include <cstdint>

namespace oqs::ptl_elan4 {

// Long-message scheme (paper §4.2, Figs. 3 and 4).
enum class Scheme {
  kRdmaRead,   // receiver GETs the data, then FIN_ACK to the sender
  kRdmaWrite,  // receiver ACKs with its address; sender PUTs, then FIN
};

// How local RDMA completions are detected (paper §4.3, Fig. 6).
enum class Completion {
  kDirectPoll,     // poll each descriptor's own host event ("Basic")
  kSharedCombined, // chained QDMA into the main receive queue (One-Queue)
  kSharedSeparate, // chained QDMA into a dedicated queue (Two-Queue)
};

// Progress mode (paper §6.4, Table 1).
enum class Progress {
  kPolling,     // application thread polls
  kInterrupt,   // application blocks in the PTL on device interrupts
  kOneThread,   // one progress thread on the combined queue
  kTwoThreads,  // recv-queue thread + completion-queue thread
};

struct Options {
  Scheme scheme = Scheme::kRdmaRead;
  Completion completion = Completion::kDirectPoll;
  Progress progress = Progress::kPolling;
  // Chain the FIN/FIN_ACK QDMA to the last RDMA via the chained-event
  // mechanism (paper §4.2; ablated in Fig. 8 as Read-NoChain).
  bool chained_fin = true;
  // Route pack/unpack through the datatype copy engine and charge its cost;
  // false models the paper's memcpy() replacement (Fig. 7 "DTP" ablation
  // measures the difference).
  bool use_dtype_engine = false;
  // End-to-end reliability (LA-MPI heritage): CRC32C on every frame with
  // NACK-driven go-back-N retransmission, and checksum + re-read recovery
  // of rendezvous payloads. Forces the RDMA-read scheme with host-mediated
  // FIN_ACK (verification must precede the acknowledgement).
  bool reliability = false;
  // Rendezvous payload re-read attempts before the transfer fails.
  int max_data_retries = 3;
  // --- Reliability protocol tuning (active only with reliability on) ---
  // Max unacknowledged sequenced frames per peer. Frames beyond the window
  // queue in a per-peer backlog; application sends block (backpressure)
  // instead of history ever being dropped.
  std::uint32_t send_window = 256;
  // Explicit-ack cadence: a cumulative ack goes out after this many admitted
  // frames if no outgoing frame has piggybacked one sooner...
  int ack_every = 8;
  // ...or after this long, whichever comes first (delayed-ack timer).
  std::uint64_t ack_delay_ns = 40000;
  // Sender retransmission timeout: with no ack progress for this long the
  // window front is retransmitted (backstop for lost NACKs and lost tails).
  std::uint64_t retransmit_timeout_ns = 150000;
  // Timeout doubles on consecutive expiries up to this many times.
  int max_retransmit_backoff = 4;
  // Minimum gap between identical NACKs / duplicate re-acks, so a burst of
  // out-of-order frames triggers one retransmission round, not a storm.
  std::uint64_t nack_holdoff_ns = 30000;
  // Initial frame_seq value (both sides of a pairing must agree). Test hook
  // for exercising uint16 wraparound without sending 65,000 warmup frames.
  std::uint16_t seq_start = 0;
  // Host receive-queue slots (QSLOTS) and preallocated 2KB send buffers.
  std::uint32_t qslots = 2048;
  std::uint32_t send_bufs = 64;
  // Rails for the multirail extension. Consumed by the MPI bring-up, which
  // instantiates one PtlElan4 module per rail ("elan4", "elan4.1", ...);
  // the BML stripes long rendezvous payloads across them and keeps control
  // traffic on the primary (lowest-latency) rail.
  int rails = 1;
};

}  // namespace oqs::ptl_elan4
