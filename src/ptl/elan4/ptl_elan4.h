// PTL/Elan4 — the paper's contribution.
//
// Point-to-point transport over the Elan4 NIC:
//  * eager messages (<= 1984 B payload after the 64 B match header) ride
//    QDMA into the peer's host receive queue, from preallocated 2 KB send
//    buffers;
//  * long messages use rendezvous plus either RDMA-read (receiver GETs,
//    FIN_ACK chained to the read) or RDMA-write (receiver ACKs its exposed
//    E4 address, sender PUTs, FIN chained to the write);
//  * local RDMA completion is detected by per-descriptor event polling, or
//    via the shared completion queue (a QDMA chained to every RDMA lands in
//    a queue one thread can block on — the Fig. 6 design);
//  * progress is polled, interrupt-driven, or carried by one or two
//    progress threads (Table 1).
//
// Dynamic joins: each module claims an Elan context at construction and
// releases it at finalize; peers come and go via add_peer/remove_peer with
// contact info from the RTE registry.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "elan4/device.h"
#include "elan4/qsnet.h"
#include "pml/pml.h"
#include "pml/ptl.h"
#include "ptl/elan4/options.h"

namespace oqs::ptl_elan4 {

inline constexpr int kMaxRails = 2;

// First-fragment state carried from the wire into the match (adds the
// sender's exposed addresses for the RDMA-read scheme).
struct ElanFirstFrag final : pml::FirstFrag {
  elan4::E4Addr src_addr[kMaxRails] = {};
  std::uint64_t send_cookie = 0;
  std::uint32_t data_crc = 0;  // reliability: CRC32C of the remainder
};

class PtlElan4 final : public pml::Ptl {
 public:
  PtlElan4(pml::Pml& pml, elan4::QsNet& net, int node, Options opts);
  ~PtlElan4() override;

  // --- pml::Ptl ---
  const std::string& name() const override { return name_; }
  std::size_t eager_limit() const override {
    // Reliability appends a 4-byte CRC32C trailer inside the 2KB slot.
    return opts_.reliability ? 1980 : 1984;
  }
  double bandwidth_weight() const override;
  std::vector<std::uint8_t> contact() const override;
  Status add_peer(int gid, const pml::ContactInfo& info) override;
  void remove_peer(int gid) override;
  bool reaches(int gid) const override;
  void send_first(pml::SendRequest& req, std::size_t inline_len) override;
  void matched(pml::RecvRequest& req, std::unique_ptr<pml::FirstFrag> frag) override;
  int progress() override;
  bool blocking_capable() const override {
    return opts_.progress == Progress::kInterrupt;
  }
  int progress_blocking() override;
  bool active() const override { return !sends_.empty() || !recvs_.empty(); }
  void finalize() override;
  bool threaded() const override {
    return opts_.progress == Progress::kOneThread ||
           opts_.progress == Progress::kTwoThreads;
  }

  const Options& options() const { return opts_; }
  elan4::Elan4Device& device(int rail = 0) { return *devices_[rail]; }
  std::size_t pending_ops() const { return sends_.size() + recvs_.size(); }
  std::uint64_t frames_dropped() const { return frames_dropped_; }
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t data_retries() const { return data_retries_; }
  std::uint64_t dup_frames() const { return dup_frames_; }
  std::uint64_t rtx_timeouts() const { return rtx_timeouts_; }
  std::uint64_t acks_sent() const { return acks_sent_; }
  // Unacked + backlogged sequenced frames toward gid (bounded-memory tests).
  std::size_t outstanding_frames(int gid) const {
    auto it = peers_.find(gid);
    return it == peers_.end() ? 0 : it->second.window_in_use();
  }

 private:
  // A built-but-unposted sequenced frame (window closed at build time).
  struct QueuedFrame {
    std::vector<std::uint8_t> frame;
    elan4::E4Event* recycle = nullptr;
  };

  struct Peer {
    elan4::Vpid vpid[kMaxRails];
    int recv_queue = -1;
    bool alive = true;
    // --- Reliability state (ack-clocked go-back-N over the frame stream).
    // Sender side: sent_log holds every posted-but-unacknowledged frame,
    // contiguous sequences [log_base, log_base + sent_log.size()); frames
    // built while the window is full wait in tx_backlog with their
    // sequences already assigned, so wire order always matches sequence
    // order. Pruning happens only on acknowledgement — never by size.
    std::uint16_t tx_seq = 0;       // last frame sequence assigned
    std::uint16_t log_base = 1;     // sequence of sent_log.front()
    std::deque<std::vector<std::uint8_t>> sent_log;
    std::deque<QueuedFrame> tx_backlog;
    int rtx_backoff = 0;            // consecutive unproductive timeouts
    sim::Time rtx_deadline = 0;     // retransmit if no ack progress by then
    // Receiver side: cumulative-ack bookkeeping.
    std::uint16_t rx_expected = 1;  // next frame sequence accepted
    std::uint16_t last_acked = 0;   // last rx sequence acknowledged back
    int unacked_rx = 0;             // admitted frames since the last ack
    // Rate limiting (one recovery round per loss event, not a storm).
    std::uint16_t last_nack_seq = 0;
    sim::Time last_nack_time = 0;
    sim::Time last_reack_time = 0;

    std::size_t window_in_use() const {
      return sent_log.size() + tx_backlog.size();
    }
  };

  // Long-message sender state.
  struct PendingSend {
    pml::SendRequest* req = nullptr;
    std::size_t rest = 0;
    const char* src_ptr = nullptr;  // rest region (user buffer or staging)
    elan4::E4Addr src_addr[kMaxRails] = {};
    std::vector<elan4::E4Event*> events;  // write scheme: one per rail
    int gid = -1;
    int awaiting = 0;  // outstanding local RDMA completions
    bool fin_needed = false;  // write scheme without chaining
    std::uint64_t peer_recv_cookie = 0;
  };

  // Long-message receiver state.
  struct PendingRecv {
    pml::RecvRequest* req = nullptr;
    std::size_t rest = 0;
    char* dst_ptr = nullptr;
    bool staged = false;
    elan4::E4Addr dst_addr[kMaxRails] = {};
    std::vector<elan4::E4Event*> events;  // read scheme: one per rail
    int gid = -1;
    int awaiting = 0;  // outstanding local RDMA completions
    std::uint64_t send_cookie = 0;
    bool finack_needed = false;  // read scheme without chaining
    // Reliability: enough to verify and re-issue the reads.
    elan4::E4Addr src_remote[kMaxRails] = {};
    int rails_used = 0;
    std::uint32_t expect_crc = 0;
    int retries = 0;
  };

  // Wire frame bodies (after the 64 B MatchHeader).
  struct RdvBody {
    elan4::E4Addr src_addr[kMaxRails];
    std::uint64_t data_crc;  // reliability: CRC32C of the remainder
  };
  struct AckBody {
    std::uint64_t recv_cookie;
    elan4::E4Addr dst_addr[kMaxRails];
  };

  void post_frame(Peer& peer, const pml::MatchHeader& hdr, const void* body,
                  std::size_t body_len, const void* payload, std::size_t payload_len);
  // Reliability helpers.
  void charge_crc(std::size_t bytes);
  // Verify the trailer and enforce per-peer ordering; false = drop frame.
  bool admit_frame(Peer& peer, const pml::MatchHeader& hdr,
                   const std::vector<std::uint8_t>& frame);
  void send_nack(int gid, Peer& peer);
  void handle_nack(const pml::MatchHeader& hdr);
  // Put one already-sequenced frame on the wire (lossy-classed QDMA).
  void post_wire(Peer& peer, const std::vector<std::uint8_t>& frame,
                 elan4::E4Event* recycle);
  // Cumulative-ack intake: prune sent_log through `ack_seq`, then post
  // backlogged frames into the opened window.
  void handle_peer_ack(Peer& peer, std::uint16_t ack_seq);
  void drain_backlog(Peer& peer);
  // Resend sent_log[offset..], up to `max_frames`, charging CRC like first
  // transmissions.
  void retransmit_from(Peer& peer, std::size_t offset, std::size_t max_frames);
  // Receiver-side ack generation: explicit kFrameAck control frame now, or
  // count/arm toward one (ack_every / ack_delay_ns).
  void send_frame_ack(int gid, Peer& peer);
  void note_admitted(int gid, Peer& peer);
  void flush_acks();
  // One-shot scan timers (token-guarded; re-armed only while state exists).
  void arm_rtx_timer(sim::Time deadline);
  void arm_ack_timer();
  void rtx_fire();
  void ack_fire();
  // Block the calling (application) fiber until gid's window has room.
  Peer* wait_for_window(int gid);
  // Issue (or re-issue) the RDMA reads for a pending receive.
  void issue_reads(std::uint64_t id, PendingRecv& op);
  void handle_frame(elan4::QdmaQueue::Slot&& slot);
  void handle_ack(const pml::MatchHeader& hdr, const AckBody& body);
  void handle_fin(const pml::MatchHeader& hdr);
  void handle_fin_ack(const pml::MatchHeader& hdr);
  void handle_local_complete(std::uint64_t id);

  // Split `rest` across rails; rail 0 takes the remainder.
  std::size_t rail_share(std::size_t rest, int rail) const;
  void complete_send(std::uint64_t id, PendingSend& op);
  void complete_recv(std::uint64_t id, PendingRecv& op);
  // Attach completion plumbing (chained QDMAs / poll registration) to an
  // RDMA local event for op `id`.
  void arm_completion(elan4::E4Event* ev, std::uint64_t id);
  int poll_direct();
  void send_self(pml::FragKind kind);
  void start_threads();
  void charge_pack(std::size_t bytes);

  pml::Pml& pml_;
  elan4::QsNet& net_;
  int node_;
  Options opts_;
  std::string name_ = "elan4";
  std::vector<std::unique_ptr<elan4::Elan4Device>> devices_;
  elan4::QdmaQueue* recv_q_ = nullptr;
  elan4::QdmaQueue* comp_q_ = nullptr;  // Two-Queue variant
  std::map<int, Peer> peers_;
  std::map<std::uint64_t, PendingSend> sends_;
  std::map<std::uint64_t, PendingRecv> recvs_;
  // Ops with events to poll in kDirectPoll mode: (op id, event).
  std::vector<std::pair<std::uint64_t, elan4::E4Event*>> poll_list_;
  std::uint64_t next_id_ = 1;
  std::uint64_t sendbufs_recycled_ = 0;
  // Local event attached to the next post_frame (send-buffer recycling).
  elan4::E4Event* recycle_event_ = nullptr;
  std::uint64_t frames_dropped_ = 0;   // bad CRC or out-of-sequence
  std::uint64_t retransmissions_ = 0;  // frames resent (NACK or timeout)
  std::uint64_t data_retries_ = 0;     // rendezvous payload re-reads
  std::uint64_t dup_frames_ = 0;       // duplicates suppressed
  std::uint64_t rtx_timeouts_ = 0;     // retransmission-timer expiries
  std::uint64_t acks_sent_ = 0;        // explicit kFrameAck frames
  bool stopping_ = false;
  bool finalized_ = false;
  int live_threads_ = 0;
  // Timer state: one scan timer each for retransmission and delayed acks.
  // Callbacks capture alive_ and no-op once it is cleared (finalize), so a
  // timer can never touch a dead module.
  bool rtx_timer_armed_ = false;
  bool ack_timer_armed_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  // Reserved completion cookie: send-buffer recycling, no pending op.
  static constexpr std::uint64_t kRecycleCookie = 0;
};

}  // namespace oqs::ptl_elan4
