// PTL/Elan4 — the paper's contribution.
//
// Point-to-point transport over ONE Elan4 NIC rail:
//  * eager messages (<= 1984 B payload after the 64 B match header) ride
//    QDMA into the peer's host receive queue, from preallocated 2 KB send
//    buffers;
//  * long messages use rendezvous plus either RDMA-read (receiver GETs,
//    FIN_ACK chained to the read) or RDMA-write (receiver ACKs its exposed
//    E4 address, sender PUTs, FIN chained to the write);
//  * local RDMA completion is detected by per-descriptor event polling, or
//    via the shared completion queue (a QDMA chained to every RDMA lands in
//    a queue one thread can block on — the Fig. 6 design);
//  * progress is polled, interrupt-driven, or carried by one or two
//    progress threads (Table 1).
//
// Multirail is layered ABOVE this module: the runtime instantiates one
// PtlElan4 per rail ("elan4", "elan4.1", ...) and the BML stripes long
// payloads across them through the stripe_* hooks. Loss protection lives in
// ptl::ReliableStream (one per endpoint); this file only wires the streams
// to QDMA and runs the shared scan timers.
//
// Dynamic joins: each module claims an Elan context at construction and
// releases it at finalize; peers come and go via add_peer/remove_peer with
// contact info from the RTE registry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "elan4/device.h"
#include "elan4/qsnet.h"
#include "pml/endpoint.h"
#include "pml/pml.h"
#include "pml/ptl.h"
#include "ptl/elan4/options.h"
#include "ptl/reliable_stream.h"

namespace oqs::ptl_elan4 {

// First-fragment state carried from the wire into the match (adds the
// sender's exposed address for the RDMA-read scheme).
struct ElanFirstFrag final : pml::FirstFrag {
  elan4::E4Addr src_addr = elan4::kNullE4Addr;
  std::uint64_t send_cookie = 0;
  std::uint32_t data_crc = 0;  // reliability: CRC32C of the remainder
};

// Per-peer connection state on this rail: network identity plus (in
// reliability mode) the go-back-N stream guarding the frame sequence.
struct Elan4Endpoint final : pml::Endpoint {
  elan4::Vpid vpid = elan4::kInvalidVpid;
  int recv_queue = -1;
  std::unique_ptr<ptl::ReliableStream> stream;

  std::size_t window_in_use() const override {
    return stream != nullptr ? stream->window_in_use() : 0;
  }
};

class PtlElan4 final : public pml::Ptl {
 public:
  PtlElan4(pml::Pml& pml, elan4::QsNet& net, int node, Options opts,
           int rail = 0, std::string name = "elan4");
  ~PtlElan4() override;

  // --- pml::Ptl ---
  const std::string& name() const override { return name_; }
  std::size_t eager_limit() const override {
    // Reliability appends a 4-byte CRC32C trailer inside the 2KB slot.
    return opts_.reliability ? 1980 : 1984;
  }
  double bandwidth_weight() const override;
  double latency_ns() const override;
  std::vector<std::uint8_t> contact() const override;
  Status add_peer(int gid, const pml::ContactInfo& info) override;
  void remove_peer(int gid) override;
  bool reaches(int gid) const override;
  pml::Endpoint* endpoint(int gid) override;
  bool wired() const override;
  void send_first(pml::SendRequest& req, std::size_t inline_len) override;
  void matched(pml::RecvRequest& req, std::unique_ptr<pml::FirstFrag> frag) override;
  int progress() override;
  bool blocking_capable() const override {
    return opts_.progress == Progress::kInterrupt;
  }
  int progress_blocking() override;
  bool active() const override {
    return !sends_.empty() || !recvs_.empty() || !pulls_.empty();
  }
  void finalize() override;
  bool threaded() const override {
    return opts_.progress == Progress::kOneThread ||
           opts_.progress == Progress::kTwoThreads;
  }

  // --- BML striping hooks ---
  bool stripe_capable() const override { return true; }
  bool stripe_checksummed() const override { return opts_.reliability; }
  std::uint64_t stripe_expose(const void* base, std::size_t len) override;
  void stripe_unexpose(std::uint64_t region) override;
  std::uint64_t stripe_pull(int gid, std::uint64_t region, std::size_t offset,
                            void* dst, std::size_t len,
                            std::function<void(Status)> done) override;
  void stripe_cancel(std::uint64_t pull_id) override;
  void bml_post(int gid, const pml::MatchHeader& hdr, const void* body,
                std::size_t body_len) override;

  const Options& options() const { return opts_; }
  int rail() const { return rail_; }
  elan4::Elan4Device& device() { return *device_; }
  std::size_t pending_ops() const { return sends_.size() + recvs_.size(); }
  std::uint64_t frames_dropped() const { return counters_.frames_dropped; }
  std::uint64_t retransmissions() const { return counters_.retransmissions; }
  std::uint64_t data_retries() const { return data_retries_; }
  std::uint64_t dup_frames() const { return counters_.dup_frames; }
  std::uint64_t rtx_timeouts() const { return counters_.rtx_timeouts; }
  std::uint64_t acks_sent() const { return counters_.acks_sent; }
  // Bytes this rail pushed onto the wire (bench per-rail breakdown).
  std::uint64_t tx_bytes() const { return tx_bytes_; }
  // Unacked + backlogged sequenced frames toward gid (bounded-memory tests).
  std::size_t outstanding_frames(int gid) const {
    auto it = peers_.find(gid);
    return it == peers_.end() ? 0 : it->second.window_in_use();
  }

 private:
  // Long-message sender state.
  struct PendingSend {
    pml::SendRequest* req = nullptr;
    std::size_t rest = 0;
    const char* src_ptr = nullptr;  // rest region (user buffer or staging)
    elan4::E4Addr src_addr = elan4::kNullE4Addr;
    std::vector<elan4::E4Event*> events;  // write scheme
    int gid = -1;
    int awaiting = 0;  // outstanding local RDMA completions
    bool fin_needed = false;  // write scheme without chaining
    std::uint64_t peer_recv_cookie = 0;
  };

  // Long-message receiver state.
  struct PendingRecv {
    pml::RecvRequest* req = nullptr;
    std::size_t rest = 0;
    char* dst_ptr = nullptr;
    bool staged = false;
    elan4::E4Addr dst_addr = elan4::kNullE4Addr;
    std::vector<elan4::E4Event*> events;  // read scheme
    int gid = -1;
    int awaiting = 0;  // outstanding local RDMA completions
    std::uint64_t send_cookie = 0;
    bool finack_needed = false;  // read scheme without chaining
    // Reliability: enough to verify and re-issue the read.
    elan4::E4Addr src_remote = elan4::kNullE4Addr;
    std::uint32_t expect_crc = 0;
    int retries = 0;
  };

  // BML stripe pull in flight (RDMA read into a mapped slice).
  struct StripePull {
    elan4::E4Addr dst_addr = elan4::kNullE4Addr;
    elan4::E4Event* event = nullptr;
    std::function<void(Status)> done;
  };

  // Wire frame bodies (after the 64 B MatchHeader).
  struct RdvBody {
    elan4::E4Addr src_addr;
    std::uint64_t data_crc;  // reliability: CRC32C of the remainder
  };
  struct AckBody {
    std::uint64_t recv_cookie;
    elan4::E4Addr dst_addr;
  };

  void post_frame(Elan4Endpoint& peer, const pml::MatchHeader& hdr,
                  const void* body, std::size_t body_len, const void* payload,
                  std::size_t payload_len);
  void charge_crc(std::size_t bytes);
  // Build the per-endpoint go-back-N stream (reliability mode).
  std::unique_ptr<ptl::ReliableStream> make_stream(int gid);
  void send_nack(int gid);
  void handle_nack(const pml::MatchHeader& hdr);
  // Put one already-sequenced frame on the wire (lossy-classed QDMA).
  void post_wire(Elan4Endpoint& peer, const std::vector<std::uint8_t>& frame,
                 elan4::E4Event* recycle);
  // Receiver-side ack generation: explicit kFrameAck control frame.
  void send_frame_ack(int gid);
  void flush_acks();
  // One-shot scan timers (token-guarded; re-armed only while state exists).
  void arm_rtx_timer(sim::Time deadline);
  void arm_ack_timer();
  void rtx_fire();
  void ack_fire();
  // Block the calling (application) fiber until gid's window has room.
  Elan4Endpoint* wait_for_window(int gid);
  // Issue (or re-issue) the RDMA read for a pending receive.
  void issue_read(std::uint64_t id, PendingRecv& op);
  void handle_frame(elan4::QdmaQueue::Slot&& slot);
  void handle_ack(const pml::MatchHeader& hdr, const AckBody& body);
  void handle_fin(const pml::MatchHeader& hdr);
  void handle_fin_ack(const pml::MatchHeader& hdr);
  void handle_local_complete(std::uint64_t id);

  void complete_send(std::uint64_t id, PendingSend& op);
  void complete_recv(std::uint64_t id, PendingRecv& op);
  // Attach completion plumbing (chained QDMAs / poll registration) to an
  // RDMA local event for op `id`.
  void arm_completion(elan4::E4Event* ev, std::uint64_t id);
  int poll_direct();
  void send_self(pml::FragKind kind);
  void start_threads();
  void charge_pack(std::size_t bytes);

  pml::Pml& pml_;
  elan4::QsNet& net_;
  int node_;
  int rail_;
  Options opts_;
  std::string name_;
  ptl::ReliableTuning rtuning_;    // referenced by every endpoint's stream
  ptl::ReliableCounters counters_; // shared across this rail's streams
  std::unique_ptr<elan4::Elan4Device> device_;
  elan4::QdmaQueue* recv_q_ = nullptr;
  elan4::QdmaQueue* comp_q_ = nullptr;  // Two-Queue variant
  std::map<int, Elan4Endpoint> peers_;
  std::map<std::uint64_t, PendingSend> sends_;
  std::map<std::uint64_t, PendingRecv> recvs_;
  std::map<std::uint64_t, StripePull> pulls_;
  // Ops with events to poll in kDirectPoll mode: (op id, event).
  std::vector<std::pair<std::uint64_t, elan4::E4Event*>> poll_list_;
  std::uint64_t next_id_ = 1;
  std::uint64_t sendbufs_recycled_ = 0;
  std::uint64_t tx_bytes_ = 0;
  // Local event attached to the next post_frame (send-buffer recycling).
  elan4::E4Event* recycle_event_ = nullptr;
  std::uint64_t data_retries_ = 0;  // rendezvous payload re-reads
  bool stopping_ = false;
  bool finalized_ = false;
  int live_threads_ = 0;
  // Timer state: one scan timer each for retransmission and delayed acks.
  // Callbacks capture alive_ and no-op once it is cleared (finalize), so a
  // timer can never touch a dead module.
  bool rtx_timer_armed_ = false;
  bool ack_timer_armed_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);

  // Reserved completion cookie: send-buffer recycling, no pending op.
  static constexpr std::uint64_t kRecycleCookie = 0;
};

}  // namespace oqs::ptl_elan4
