#include "ptl/elan4/ptl_elan4.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "base/checksum.h"
#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rte/oob.h"  // put_pod/get_pod helpers

namespace oqs::ptl_elan4 {

using elan4::E4Addr;
using elan4::E4Event;
using elan4::QdmaCmd;
using elan4::Vpid;
using pml::FragKind;
using pml::MatchHeader;

PtlElan4::PtlElan4(pml::Pml& pml, elan4::QsNet& net, int node, Options opts,
                   int rail, std::string name)
    : pml_(pml),
      net_(net),
      node_(node),
      rail_(rail),
      opts_(opts),
      name_(std::move(name)) {
  assert(rail_ >= 0 && rail_ < net.num_rails());
  // Interrupt and one-thread progress need every completion to land in the
  // combined queue; two-thread needs the separate queue (paper §4.3).
  if (opts_.progress == Progress::kInterrupt || opts_.progress == Progress::kOneThread)
    opts_.completion = Completion::kSharedCombined;
  if (opts_.progress == Progress::kTwoThreads)
    opts_.completion = Completion::kSharedSeparate;
  // Reliability: checksums must be verified by the host before the
  // acknowledgement goes out, and payload recovery re-issues RDMA reads, so
  // the scheme is RDMA-read with a host-mediated FIN_ACK.
  if (opts_.reliability) {
    opts_.scheme = Scheme::kRdmaRead;
    opts_.chained_fin = false;
  }
  rtuning_.send_window = opts_.send_window;
  rtuning_.ack_every = opts_.ack_every;
  rtuning_.ack_delay_ns = opts_.ack_delay_ns;
  rtuning_.retransmit_timeout_ns = opts_.retransmit_timeout_ns;
  rtuning_.max_retransmit_backoff = opts_.max_retransmit_backoff;
  rtuning_.nack_holdoff_ns = opts_.nack_holdoff_ns;
  rtuning_.seq_start = opts_.seq_start;

  device_ = net_.open(node_, rail_);
  assert(device_ && "no free Elan4 context on this node");
  recv_q_ = device_->create_queue(opts_.qslots, 2048);
  if (opts_.completion == Completion::kSharedSeparate)
    comp_q_ = device_->create_queue(opts_.qslots, 2048);

  if (threaded()) {
    pml_.set_request_wake_delay(net_.params().thread_wakeup_ns);
    start_threads();
  }
}

PtlElan4::~PtlElan4() {
  if (!finalized_) finalize();
}

double PtlElan4::bandwidth_weight() const { return net_.params().link_mbps; }

double PtlElan4::latency_ns() const {
  // First-fragment one-way estimate for the BML's rail selection: post +
  // NIC launch + two fabric hops + slot landing.
  const ModelParams& p = net_.params();
  return static_cast<double>(p.host_qdma_post_ns + p.nic_qdma_start_ns +
                             2 * p.hop_ns + p.nic_slot_write_ns);
}

// ----------------------------------------------------------- wire-up ----

std::vector<std::uint8_t> PtlElan4::contact() const {
  std::vector<std::uint8_t> blob;
  rte::put_pod(blob, device_->vpid());
  rte::put_pod(blob, static_cast<std::int32_t>(recv_q_->id()));
  return blob;
}

Status PtlElan4::add_peer(int gid, const pml::ContactInfo& info) {
  auto it = info.find(name_);
  if (it == info.end()) return Status::kUnreachable;
  std::size_t off = 0;
  const auto& blob = it->second;
  // Re-adding a peer (migration/rejoin) resets its connection — including
  // the reliability stream, whose sequence spaces restart at seq_start
  // (0 in production; tests place it near 65535 to exercise wraparound).
  Elan4Endpoint& p = peers_[gid];
  p.gid = gid;
  p.alive = true;
  p.vpid = rte::get_pod<Vpid>(blob, off);
  p.recv_queue = rte::get_pod<std::int32_t>(blob, off);
  p.stream = opts_.reliability ? make_stream(gid) : nullptr;
  return Status::kOk;
}

void PtlElan4::remove_peer(int gid) { peers_.erase(gid); }

bool PtlElan4::reaches(int gid) const {
  auto it = peers_.find(gid);
  return it != peers_.end() && it->second.alive;
}

pml::Endpoint* PtlElan4::endpoint(int gid) {
  auto it = peers_.find(gid);
  return it == peers_.end() ? nullptr : &it->second;
}

bool PtlElan4::wired() const {
  for (const auto& [gid, peer] : peers_)
    if (peer.alive) return true;
  return false;
}

// --------------------------------------------------------- utilities ----

void PtlElan4::charge_pack(std::size_t bytes) {
  const ModelParams& p = net_.params();
  const double rate = opts_.use_dtype_engine ? p.dtype_pack_mbps : p.host_memcpy_mbps;
  device_->compute(p.host_memcpy_startup_ns + ModelParams::xfer_ns(bytes, rate));
}

void PtlElan4::charge_crc(std::size_t bytes) {
  device_->compute(ModelParams::xfer_ns(bytes, net_.params().crc_mbps) + 40);
}

std::unique_ptr<ptl::ReliableStream> PtlElan4::make_stream(int gid) {
  ptl::ReliableStream::Hooks hooks;
  hooks.wire = [this, gid](const std::vector<std::uint8_t>& frame,
                           void* recycle) {
    post_wire(peers_.at(gid), frame, static_cast<E4Event*>(recycle));
  };
  hooks.charge_crc = [this](std::size_t bytes) { charge_crc(bytes); };
  hooks.now = [this] { return net_.engine().now(); };
  hooks.arm_rtx = [this](sim::Time deadline) { arm_rtx_timer(deadline); };
  hooks.arm_ack = [this] { arm_ack_timer(); };
  hooks.send_nack = [this, gid] { send_nack(gid); };
  hooks.send_ack = [this, gid] { send_frame_ack(gid); };
  hooks.node = node_;
  hooks.name = name_;
  return std::make_unique<ptl::ReliableStream>(rtuning_, counters_,
                                               std::move(hooks));
}

void PtlElan4::post_wire(Elan4Endpoint& peer,
                         const std::vector<std::uint8_t>& frame,
                         E4Event* recycle) {
  tx_bytes_ += frame.size();
  device_->post_qdma(peer.vpid, peer.recv_queue, frame, recycle,
                     /*lossy=*/true);
}

void PtlElan4::post_frame(Elan4Endpoint& peer, const MatchHeader& hdr,
                          const void* body, std::size_t body_len,
                          const void* payload, std::size_t payload_len) {
  const bool sequenced =
      opts_.reliability && (hdr.flags & pml::kFlagControl) == 0;
  const std::size_t trailer = sequenced ? 4 : 0;
  std::vector<std::uint8_t> frame(sizeof(MatchHeader) + body_len + payload_len +
                                  trailer);
  MatchHeader h = hdr;
  if (opts_.reliability) peer.stream->stamp_ack(h);
  if (sequenced) {
    h.flags |= pml::kFlagChecksummed;
    h.frame_seq = peer.stream->assign_seq();
  }
  std::memcpy(frame.data(), &h, sizeof(MatchHeader));
  if (body_len > 0) std::memcpy(frame.data() + sizeof(MatchHeader), body, body_len);
  if (payload_len > 0)
    std::memcpy(frame.data() + sizeof(MatchHeader) + body_len, payload, payload_len);
  if (sequenced) {
    peer.stream->submit(std::move(frame), recycle_event_);
    return;
  }
  // Control frames bypass sequencing. They are still fault-exposed in
  // reliability mode (a lost NACK/ack is recovered by the retransmission
  // timer), except the teardown goodbye, which nothing would resend.
  const bool lossy = opts_.reliability && hdr.kind != FragKind::kGoodbye;
  tx_bytes_ += frame.size();
  device_->post_qdma(peer.vpid, peer.recv_queue, frame, recycle_event_, lossy);
}

void PtlElan4::send_nack(int gid) {
  Elan4Endpoint& peer = peers_.at(gid);
  MatchHeader nack;
  nack.kind = FragKind::kNack;
  nack.flags = pml::kFlagControl;
  nack.cookie = peer.stream->rx_expected();
  nack.src_gid = pml_.ctx().gid;
  nack.dst_gid = gid;
  OQS_METRIC_INC("ptl.reliability.nacks_sent");
  post_frame(peer, nack, nullptr, 0, nullptr, 0);
}

void PtlElan4::send_frame_ack(int gid) {
  Elan4Endpoint& peer = peers_.at(gid);
  MatchHeader ack;
  ack.kind = FragKind::kFrameAck;
  ack.flags = pml::kFlagControl;
  ack.src_gid = pml_.ctx().gid;
  ack.dst_gid = gid;
  ++counters_.acks_sent;
  OQS_METRIC_INC("ptl.reliability.acks_sent");
  post_frame(peer, ack, nullptr, 0, nullptr, 0);  // ack_seq set by post_frame
}

void PtlElan4::flush_acks() {
  for (auto& [gid, peer] : peers_) {
    if (!peer.alive || peer.stream == nullptr) continue;
    if (peer.stream->ack_debt()) send_frame_ack(gid);
  }
}

void PtlElan4::handle_nack(const MatchHeader& hdr) {
  auto it = peers_.find(hdr.src_gid);
  if (it == peers_.end() || !it->second.alive) return;
  it->second.stream->on_nack(static_cast<std::uint16_t>(hdr.cookie));
}

// ------------------------------------------------------- retry timers ----

void PtlElan4::arm_rtx_timer(sim::Time deadline) {
  if (rtx_timer_armed_) return;
  rtx_timer_armed_ = true;
  sim::Engine& engine = net_.engine();
  const sim::Time now = engine.now();
  const sim::Time delay = deadline > now ? deadline - now : 1;
  engine.schedule(delay, [this, token = alive_] {
    if (!*token) return;
    // Timer events are plain callbacks; posting frames charges host CPU,
    // which requires a fiber — so the work runs in a short-lived one.
    net_.engine().spawn("elan4-rtx", [this, token] {
      if (!*token) return;
      rtx_fire();
    });
  });
}

void PtlElan4::rtx_fire() {
  rtx_timer_armed_ = false;
  const sim::Time now = net_.engine().now();
  sim::Time next = 0;
  for (auto& [gid, peer] : peers_) {
    if (!peer.alive || peer.stream == nullptr) continue;
    const sim::Time deadline = peer.stream->rtx_check(now);
    if (deadline != 0 && (next == 0 || deadline < next)) next = deadline;
  }
  if (next != 0) arm_rtx_timer(next);
}

void PtlElan4::arm_ack_timer() {
  if (ack_timer_armed_) return;
  ack_timer_armed_ = true;
  net_.engine().schedule(opts_.ack_delay_ns, [this, token = alive_] {
    if (!*token) return;
    net_.engine().spawn("elan4-ack", [this, token] {
      if (!*token) return;
      ack_fire();
    });
  });
}

void PtlElan4::ack_fire() {
  ack_timer_armed_ = false;
  for (auto& [gid, peer] : peers_) {
    if (!peer.alive || peer.stream == nullptr) continue;
    if (peer.stream->unacked_rx() > 0) send_frame_ack(gid);
  }
}

Elan4Endpoint* PtlElan4::wait_for_window(int gid) {
  // Application-fiber backpressure: block until the peer's window has room
  // for one more sequenced frame. Progress must keep running while blocked
  // or the acks that open the window are never processed.
  sim::Engine& engine = net_.engine();
  const ModelParams& p = net_.params();
  while (true) {
    auto it = peers_.find(gid);
    if (it == peers_.end() || !it->second.alive) return nullptr;
    if (!opts_.reliability || it->second.window_in_use() < opts_.send_window)
      return &it->second;
    if (threaded())
      engine.sleep(p.host_poll_ns * 10);
    else if (progress() == 0)
      engine.sleep(p.host_poll_ns);
  }
}

void PtlElan4::arm_completion(E4Event* ev, std::uint64_t id) {
  if (opts_.completion == Completion::kDirectPoll) {
    poll_list_.emplace_back(id, ev);
    return;
  }
  // Chain a small QDMA to the descriptor that lands in our own queue — the
  // shared-completion-queue mechanism of Fig. 6.
  MatchHeader hdr;
  hdr.kind = FragKind::kComplete;
  hdr.flags = pml::kFlagControl;
  hdr.cookie = id;
  hdr.src_gid = hdr.dst_gid = pml_.ctx().gid;
  QdmaCmd cmd;
  cmd.src_vpid = device_->vpid();
  cmd.dest_vpid = device_->vpid();
  cmd.dest_queue = opts_.completion == Completion::kSharedSeparate ? comp_q_->id()
                                                                   : recv_q_->id();
  cmd.data.resize(sizeof(MatchHeader));
  std::memcpy(cmd.data.data(), &hdr, sizeof(MatchHeader));
  ev->chain(std::move(cmd));
}

// --------------------------------------------------------- send path ----

void PtlElan4::send_first(pml::SendRequest& req, std::size_t inline_len) {
  // send_first runs on the application fiber, the one place the protocol
  // may block: a full send window backpressures the sender here instead of
  // dropping retransmission history.
  Elan4Endpoint* pp = wait_for_window(req.dst_gid);
  if (pp == nullptr) {
    req.fail(Status::kUnreachable);
    return;
  }
  OQS_TRACE_SPAN(span_, node_, "ptl", "send_first", "len", req.total_bytes());
  Elan4Endpoint& peer = *pp;
  const ModelParams& p = net_.params();
  const std::size_t total = req.total_bytes();
  if (opts_.use_dtype_engine) device_->compute(p.dtype_engine_startup_ns);

  if (total <= eager_limit()) {
    // Eager: whole payload rides the first QDMA from a send buffer.
    req.hdr.kind = FragKind::kEager;
    std::vector<std::uint8_t> payload(total);
    if (total > 0) {
      charge_pack(total);
      req.convertor.pack(payload.data(), total);
    }
    // In the shared-completion-queue designs the send request is tied to
    // the QDMA's local event: it completes when the chained completion
    // message is handled, not at post time. This is the cost Fig. 8 shows
    // for One-Queue/Two-Queue under polling, and what routes per-send work
    // to the completion thread in two-thread progress (§6.4). Interrupt
    // mode keeps buffered-immediate completion (one interrupt per wait).
    const bool track_recycle = opts_.completion != Completion::kDirectPoll;
    const bool defer_completion =
        track_recycle && opts_.progress != Progress::kInterrupt;
    if (track_recycle) {
      E4Event* ev = device_->alloc_event("sendbuf");
      ev->init(1);
      if (defer_completion) {
        const std::uint64_t id = next_id_++;
        PendingSend op;
        op.req = &req;
        op.gid = req.dst_gid;
        op.rest = total;
        op.awaiting = 1;
        sends_.emplace(id, std::move(op));
        arm_completion(ev, id);
      } else {
        arm_completion(ev, kRecycleCookie);
      }
      // The recycle event fires on the frame's injection; attach it by
      // posting through the same path the descriptor would use.
      recycle_event_ = ev;
    }
    post_frame(peer, req.hdr, nullptr, 0, payload.data(), payload.size());
    recycle_event_ = nullptr;
    // Buffered semantics: the user buffer is reusable once packed.
    if (!defer_completion) pml_.send_progress(req, total);
    return;
  }

  // Rendezvous. Clamp inline payload so the frame fits one 2 KB slot.
  const std::size_t max_inline = 2048 - sizeof(MatchHeader) - sizeof(RdvBody);
  if (inline_len > max_inline) inline_len = max_inline;

  const std::uint64_t id = next_id_++;
  PendingSend op;
  op.req = &req;
  op.gid = req.dst_gid;
  op.rest = total - inline_len;

  req.hdr.kind = FragKind::kRendezvous;
  req.hdr.cookie = id;

  std::vector<std::uint8_t> inline_buf(inline_len);
  if (inline_len > 0) {
    charge_pack(inline_len);
    req.convertor.pack(inline_buf.data(), inline_len);
  }

  // Expose the remainder: directly for contiguous data, via a packed
  // staging buffer otherwise (the E4_Addr constraint of §4.2).
  if (req.type->is_contiguous()) {
    op.src_ptr = static_cast<const char*>(req.buf) + inline_len;
  } else {
    req.staging.resize(op.rest);
    charge_pack(op.rest);
    req.convertor.pack(req.staging.data(), op.rest);
    op.src_ptr = reinterpret_cast<const char*>(req.staging.data());
  }
  op.src_addr = device_->map(const_cast<char*>(op.src_ptr), op.rest);

  RdvBody body{};
  body.src_addr =
      opts_.scheme == Scheme::kRdmaRead ? op.src_addr : elan4::kNullE4Addr;
  if (opts_.reliability) {
    charge_crc(op.rest);
    body.data_crc = crc32c(op.src_ptr, op.rest);
  }

  sends_.emplace(id, std::move(op));
  OQS_METRIC_INC("ptl.rdv.started");
  OQS_TRACE_INSTANT(node_, "ptl", "rdv.first_frag", "cookie", id, "rest",
                    total - inline_len);
  post_frame(peer, req.hdr, &body, sizeof(body), inline_buf.data(), inline_len);
  if (inline_len > 0) pml_.send_progress(req, inline_len);
}

void PtlElan4::handle_ack(const MatchHeader& hdr, const AckBody& body) {
  auto it = sends_.find(hdr.cookie);
  if (it == sends_.end()) {
    log::warn(name_, "ACK for unknown send cookie ", hdr.cookie);
    return;
  }
  PendingSend& op = it->second;
  const Elan4Endpoint& peer = peers_.at(op.gid);
  op.peer_recv_cookie = body.recv_cookie;
  OQS_TRACE_INSTANT(node_, "ptl", "rdv.ack", "cookie", hdr.cookie, "rest",
                    op.rest);

  assert(body.dst_addr != elan4::kNullE4Addr);
  op.awaiting = 1;
  const bool chain_fin = opts_.chained_fin;
  op.fin_needed = !chain_fin;

  E4Event* ev = device_->alloc_event("put");
  ev->init(1);
  op.events.push_back(ev);
  if (chain_fin) {
    MatchHeader fin;
    fin.kind = FragKind::kFin;
    fin.cookie = op.peer_recv_cookie;
    fin.src_gid = pml_.ctx().gid;
    fin.dst_gid = op.gid;
    QdmaCmd cmd;
    cmd.src_vpid = device_->vpid();
    cmd.dest_vpid = peer.vpid;
    cmd.dest_queue = peer.recv_queue;
    cmd.data.resize(sizeof(MatchHeader));
    std::memcpy(cmd.data.data(), &fin, sizeof(MatchHeader));
    ev->chain(std::move(cmd));
  }
  arm_completion(ev, it->first);
  tx_bytes_ += op.rest;
  device_->rdma_write(peer.vpid, op.src_addr, body.dst_addr,
                      static_cast<std::uint32_t>(op.rest), ev);
}

void PtlElan4::complete_send(std::uint64_t id, PendingSend& op) {
  if (op.fin_needed && opts_.scheme == Scheme::kRdmaWrite) {
    auto pit = peers_.find(op.gid);
    if (pit != peers_.end() && pit->second.alive) {
      MatchHeader fin;
      fin.kind = FragKind::kFin;
      fin.cookie = op.peer_recv_cookie;
      fin.src_gid = pml_.ctx().gid;
      fin.dst_gid = op.gid;
      post_frame(pit->second, fin, nullptr, 0, nullptr, 0);
    }
  }
  if (op.src_addr != elan4::kNullE4Addr) device_->unmap(op.src_addr);
  pml::SendRequest* req = op.req;
  const std::size_t rest = op.rest;
  OQS_METRIC_INC("ptl.rdv.send_done");
  OQS_TRACE_INSTANT(node_, "ptl", "rdv.send_done", "cookie", id, "rest", rest);
  sends_.erase(id);
  pml_.send_progress(*req, rest);
}

void PtlElan4::handle_fin_ack(const MatchHeader& hdr) {
  auto it = sends_.find(hdr.cookie);
  if (it == sends_.end()) {
    log::warn(name_, "FIN_ACK for unknown send cookie ", hdr.cookie);
    return;
  }
  if (hdr.status != static_cast<std::uint16_t>(Status::kOk)) {
    // Receiver could not recover the payload; fail the send accordingly.
    PendingSend& op = it->second;
    if (op.src_addr != elan4::kNullE4Addr) device_->unmap(op.src_addr);
    pml::SendRequest* req = op.req;
    sends_.erase(it);
    req->fail(static_cast<Status>(hdr.status));
    return;
  }
  complete_send(it->first, it->second);
}

// ------------------------------------------------------ receive path ----

void PtlElan4::issue_read(std::uint64_t id, PendingRecv& op) {
  const Elan4Endpoint& peer = peers_.at(op.gid);
  const bool chain_finack = opts_.chained_fin;
  op.awaiting = 1;
  OQS_METRIC_ADD("ptl.rdma.read_bytes", op.rest);
  OQS_TRACE_INSTANT(node_, "ptl", "rdv.issue_reads", "cookie", id, "rest",
                    op.rest);
  E4Event* ev;
  if (!op.events.empty()) {
    ev = op.events.front();  // retry: re-arm
  } else {
    ev = device_->alloc_event("get");
    op.events.push_back(ev);
  }
  ev->init(1);
  if (chain_finack) {
    MatchHeader fa;
    fa.kind = FragKind::kFinAck;
    fa.cookie = op.send_cookie;
    fa.src_gid = pml_.ctx().gid;
    fa.dst_gid = op.gid;
    QdmaCmd cmd;
    cmd.src_vpid = device_->vpid();
    cmd.dest_vpid = peer.vpid;
    cmd.dest_queue = peer.recv_queue;
    cmd.data.resize(sizeof(MatchHeader));
    std::memcpy(cmd.data.data(), &fa, sizeof(MatchHeader));
    ev->chain(std::move(cmd));
  }
  arm_completion(ev, id);
  tx_bytes_ += op.rest;
  device_->rdma_read(peer.vpid, op.src_remote, op.dst_addr,
                     static_cast<std::uint32_t>(op.rest), ev);
}

void PtlElan4::matched(pml::RecvRequest& req, std::unique_ptr<pml::FirstFrag> frag) {
  auto* ef = static_cast<ElanFirstFrag*>(frag.get());
  auto pit = peers_.find(ef->hdr.src_gid);
  if (pit == peers_.end() || !pit->second.alive) {
    req.fail(Status::kUnreachable);
    return;
  }
  OQS_TRACE_SPAN(span_, node_, "ptl", "rdv.matched", "len", ef->hdr.len);
  Elan4Endpoint& peer = pit->second;
  const std::size_t got_inline = ef->inline_data.size();
  const std::uint64_t id = next_id_++;

  PendingRecv op;
  op.req = &req;
  op.gid = ef->hdr.src_gid;
  op.send_cookie = ef->send_cookie;
  op.rest = ef->hdr.len - got_inline;
  op.expect_crc = ef->data_crc;

  if (req.type->is_contiguous()) {
    op.dst_ptr = static_cast<char*>(req.buf) + got_inline;
  } else {
    req.staging.resize(op.rest);
    op.dst_ptr = reinterpret_cast<char*>(req.staging.data());
    op.staged = true;
  }

  if (opts_.scheme == Scheme::kRdmaRead) {
    assert(ef->src_addr != elan4::kNullE4Addr &&
           "read scheme requires the sender's E4 address");
    op.finack_needed = !opts_.chained_fin;
    op.src_remote = ef->src_addr;
    op.dst_addr = device_->map(op.dst_ptr, op.rest);
    auto [it, inserted] = recvs_.emplace(id, std::move(op));
    assert(inserted);
    issue_read(id, it->second);
    return;
  }

  // RDMA-write scheme: expose the landing zone and ACK with its address.
  op.dst_addr = device_->map(op.dst_ptr, op.rest);
  OQS_METRIC_ADD("ptl.rdma.write_bytes", op.rest);
  OQS_TRACE_INSTANT(node_, "ptl", "rdv.ack_sent", "cookie", op.send_cookie,
                    "rest", op.rest);
  MatchHeader ack;
  ack.kind = FragKind::kAck;
  ack.cookie = op.send_cookie;
  ack.src_gid = pml_.ctx().gid;
  ack.dst_gid = op.gid;
  AckBody body{};
  body.recv_cookie = id;
  body.dst_addr = op.dst_addr;
  recvs_.emplace(id, std::move(op));
  post_frame(peer, ack, &body, sizeof(body), nullptr, 0);
}

void PtlElan4::complete_recv(std::uint64_t id, PendingRecv& op) {
  Status final_st = Status::kOk;
  if (opts_.reliability && op.rest > 0) {
    // End-to-end verification of the RDMA payload (LA-MPI style). On a
    // mismatch, re-issue the read: the sender keeps the region exposed
    // until it sees our FIN_ACK, so retries are always safe.
    charge_crc(op.rest);
    if (crc32c(op.dst_ptr, op.rest) != op.expect_crc) {
      ++data_retries_;
      OQS_METRIC_INC("ptl.reliability.data_retries");
      if (++op.retries <= opts_.max_data_retries) {
        log::debug(name_, "payload CRC mismatch; re-reading (attempt ",
                   op.retries, ")");
        issue_read(id, op);
        return;
      }
      log::error(name_, "payload unrecoverable after ", op.retries - 1,
                 " retries");
      final_st = Status::kError;
    }
  }
  if (op.finack_needed && opts_.scheme == Scheme::kRdmaRead) {
    auto pit = peers_.find(op.gid);
    if (pit != peers_.end() && pit->second.alive) {
      MatchHeader fa;
      fa.kind = FragKind::kFinAck;
      fa.cookie = op.send_cookie;
      fa.status = static_cast<std::uint16_t>(final_st);
      fa.src_gid = pml_.ctx().gid;
      fa.dst_gid = op.gid;
      post_frame(pit->second, fa, nullptr, 0, nullptr, 0);
    }
  }
  if (op.dst_addr != elan4::kNullE4Addr) device_->unmap(op.dst_addr);
  if (op.staged && ok(final_st)) {
    charge_pack(op.rest);
    op.req->convertor.unpack(op.req->staging.data(), op.rest);
  }
  pml::RecvRequest* req = op.req;
  const std::size_t rest = op.rest;
  OQS_METRIC_INC("ptl.rdv.recv_done");
  OQS_TRACE_INSTANT(node_, "ptl", "rdv.recv_done", "cookie", id, "rest", rest);
  recvs_.erase(id);
  if (!ok(final_st))
    req->fail(final_st);
  else
    pml_.recv_progress(*req, rest);
}

void PtlElan4::handle_fin(const MatchHeader& hdr) {
  auto it = recvs_.find(hdr.cookie);
  if (it == recvs_.end()) {
    log::warn(name_, "FIN for unknown recv cookie ", hdr.cookie);
    return;
  }
  complete_recv(it->first, it->second);
}

// ------------------------------------------------ BML striping hooks ----

std::uint64_t PtlElan4::stripe_expose(const void* base, std::size_t len) {
  return device_->map(const_cast<void*>(base), len);
}

void PtlElan4::stripe_unexpose(std::uint64_t region) {
  device_->unmap(static_cast<E4Addr>(region));
}

std::uint64_t PtlElan4::stripe_pull(int gid, std::uint64_t region,
                                    std::size_t offset, void* dst,
                                    std::size_t len,
                                    std::function<void(Status)> done) {
  auto it = peers_.find(gid);
  if (it == peers_.end() || !it->second.alive) return 0;
  const std::uint64_t id = next_id_++;
  StripePull sp;
  sp.dst_addr = device_->map(dst, len);
  sp.done = std::move(done);
  E4Event* ev = device_->alloc_event("stripe");
  ev->init(1);
  sp.event = ev;
  const E4Addr dst_addr = sp.dst_addr;
  pulls_.emplace(id, std::move(sp));
  arm_completion(ev, id);
  tx_bytes_ += len;
  device_->rdma_read(it->second.vpid, static_cast<E4Addr>(region) + offset,
                     dst_addr, static_cast<std::uint32_t>(len), ev);
  return id;
}

void PtlElan4::stripe_cancel(std::uint64_t pull_id) {
  auto it = pulls_.find(pull_id);
  if (it == pulls_.end()) return;
  device_->unmap(it->second.dst_addr);
  pulls_.erase(it);
  // Drop the poll-list registration too (the event may never fire).
  for (auto pit = poll_list_.begin(); pit != poll_list_.end();) {
    if (pit->first == pull_id)
      pit = poll_list_.erase(pit);
    else
      ++pit;
  }
}

void PtlElan4::bml_post(int gid, const MatchHeader& hdr, const void* body,
                        std::size_t body_len) {
  auto it = peers_.find(gid);
  if (it == peers_.end() || !it->second.alive) return;
  post_frame(it->second, hdr, body, body_len, nullptr, 0);
}

void PtlElan4::handle_local_complete(std::uint64_t id) {
  if (id == kRecycleCookie) {
    ++sendbufs_recycled_;  // a 2KB send buffer returned to the pool
    OQS_METRIC_INC("ptl.sendbuf.recycled");
    return;
  }
  OQS_TRACE_INSTANT(node_, "ptl", "local_complete", "cookie", id);
  if (auto it = sends_.find(id); it != sends_.end()) {
    if (--it->second.awaiting <= 0) complete_send(id, it->second);
    return;
  }
  if (auto it = recvs_.find(id); it != recvs_.end()) {
    if (--it->second.awaiting <= 0) complete_recv(id, it->second);
    return;
  }
  if (auto it = pulls_.find(id); it != pulls_.end()) {
    StripePull sp = std::move(it->second);
    pulls_.erase(it);
    device_->unmap(sp.dst_addr);
    if (sp.done) sp.done(Status::kOk);
    return;
  }
  log::warn(name_, "completion for unknown op ", id);
}

// ---------------------------------------------------------- progress ----

void PtlElan4::handle_frame(elan4::QdmaQueue::Slot&& slot) {
  if (slot.data.size() < sizeof(MatchHeader)) {
    // Defense in depth: a runt frame cannot carry a trustworthy header (not
    // even the piggybacked ack), so it is dropped whole.
    log::warn(name_, "runt frame (", slot.data.size(), "B) dropped");
    OQS_METRIC_INC("ptl.frames.runt_dropped");
    return;
  }
  MatchHeader hdr;
  std::memcpy(&hdr, slot.data.data(), sizeof(MatchHeader));
  OQS_TRACE_SPAN(span_, node_, "ptl", "handle_frame", "kind",
                 static_cast<std::uint64_t>(hdr.kind));
  OQS_METRIC_INC("ptl.frames.handled");

  // Reliability gate. Self-addressed control frames (chained completions)
  // never take this path. For peer frames: first harvest the piggybacked
  // cumulative ack — valid even on duplicates and out-of-order frames
  // (headers are never corrupted in flight; only payload bytes beyond the
  // protected prefix are) — then verify the trailer and enforce per-sender
  // ordering before anything is acted on.
  if (opts_.reliability && hdr.src_gid != pml_.ctx().gid) {
    auto pit = peers_.find(hdr.src_gid);
    if (pit != peers_.end() && pit->second.alive)
      pit->second.stream->harvest_ack(hdr.ack_seq);
    if ((hdr.flags & pml::kFlagControl) == 0) {
      if (pit == peers_.end()) return;
      if (!pit->second.stream->admit(hdr, slot.data)) return;
      // Strip the CRC trailer before normal parsing.
      slot.data.resize(slot.data.size() - 4);
    }
  }

  switch (hdr.kind) {
    case FragKind::kEager:
    case FragKind::kRendezvous:
    case FragKind::kRendezvousStriped: {
      // Traffic from a peer we thought was gone means it migrated or
      // rejoined: re-resolve its (new) contact so replies can flow.
      auto pit = peers_.find(hdr.src_gid);
      if ((pit == peers_.end() || !pit->second.alive) &&
          hdr.src_gid != pml_.ctx().gid)
        pml_.resolve_peer(hdr.src_gid);
      auto frag = std::make_unique<ElanFirstFrag>();
      frag->hdr = hdr;
      frag->ptl = this;
      std::size_t off = sizeof(MatchHeader);
      if (hdr.kind == FragKind::kRendezvous) {
        RdvBody body;
        std::memcpy(&body, slot.data.data() + off, sizeof(body));
        off += sizeof(body);
        frag->src_addr = body.src_addr;
        frag->send_cookie = hdr.cookie;
        frag->data_crc = static_cast<std::uint32_t>(body.data_crc);
      }
      // kRendezvousStriped carries the BML's stripe map as inline_data.
      frag->inline_data.assign(slot.data.begin() + static_cast<std::ptrdiff_t>(off),
                               slot.data.end());
      if (opts_.use_dtype_engine)
        device_->compute(net_.params().dtype_engine_startup_ns);
      pml_.incoming_first(std::move(frag));
      break;
    }
    case FragKind::kAck: {
      AckBody body;
      std::memcpy(&body, slot.data.data() + sizeof(MatchHeader), sizeof(body));
      handle_ack(hdr, body);
      break;
    }
    case FragKind::kFin:
      handle_fin(hdr);
      break;
    case FragKind::kFinAck:
      handle_fin_ack(hdr);
      break;
    case FragKind::kStripeFin:
      pml_.bml().handle_stripe_fin(hdr);
      break;
    case FragKind::kPipeFrag:
      // Eagerly pushed pipeline fragment: payload straight to the BML,
      // which routes it by (sender, cookie) — no matching involved.
      pml_.bml().handle_pipe_frag(hdr,
                                  slot.data.data() + sizeof(MatchHeader),
                                  slot.data.size() - sizeof(MatchHeader));
      break;
    case FragKind::kComplete:
      handle_local_complete(hdr.cookie);
      break;
    case FragKind::kNack:
      handle_nack(hdr);
      break;
    case FragKind::kFrameAck:
      break;  // pure ack carrier: fully consumed by the gate above

    case FragKind::kGoodbye:
      if (hdr.src_gid != pml_.ctx().gid) {
        auto it = peers_.find(hdr.src_gid);
        if (it != peers_.end()) it->second.alive = false;
      }
      // A self-goodbye just wakes a blocked thread during shutdown.
      break;
    default:
      log::warn(name_, "unexpected frame kind ", static_cast<int>(hdr.kind));
      break;
  }
}

int PtlElan4::poll_direct() {
  if (poll_list_.empty()) return 0;
  int n = 0;
  std::vector<std::uint64_t> ready;
  // charge_poll() suspends this fiber while the CPU cost is charged, and
  // other fibers (the BML stripe watchdog re-issuing or cancelling pulls)
  // mutate poll_list_ in that window — so never hold an iterator across it.
  for (std::size_t i = 0; i < poll_list_.size();) {
    device_->charge_poll();
    if (i >= poll_list_.size()) break;  // list shrank while suspended
    if (poll_list_[i].second->done()) {
      ready.push_back(poll_list_[i].first);
      poll_list_.erase(poll_list_.begin() + static_cast<std::ptrdiff_t>(i));
      ++n;
    } else {
      ++i;
    }
  }
  for (std::uint64_t id : ready) handle_local_complete(id);
  return n;
}

int PtlElan4::progress() {
  int n = 0;
  elan4::QdmaQueue::Slot slot;
  while (device_->queue_poll(recv_q_, &slot)) {
    handle_frame(std::move(slot));
    ++n;
  }
  if (comp_q_ != nullptr) {
    while (device_->queue_poll(comp_q_, &slot)) {
      handle_frame(std::move(slot));
      ++n;
    }
  }
  if (opts_.completion == Completion::kDirectPoll) n += poll_direct();
  return n;
}

int PtlElan4::progress_blocking() {
  // Drain whatever is pending; if nothing, block on the receive queue's
  // interrupt (every completion funnels there in interrupt mode).
  int n = progress();
  if (n > 0) return n;
  device_->queue_wait(recv_q_);
  return progress();
}

void PtlElan4::start_threads() {
  sim::Engine& engine = net_.engine();
  live_threads_ = opts_.progress == Progress::kTwoThreads ? 2 : 1;

  // After an interrupt wakes the main progress thread it stays hot for a
  // short spin window, so the follow-up events of an in-flight rendezvous
  // (the read completion, the FIN) are picked up by polling rather than
  // each paying another interrupt.
  const sim::Time spin_ns = 12 * sim::kUs;
  auto loop = [this, spin_ns, &engine](elan4::QdmaQueue* q, bool spin) {
    while (!stopping_) {
      device_->queue_wait(q);
      elan4::QdmaQueue::Slot slot;
      if (!spin) {
        while (device_->queue_poll(q, &slot)) handle_frame(std::move(slot));
        continue;
      }
      // Fixed spin window from the wakeup: follow-up events of the exchange
      // just handled are caught by polling; then the thread re-blocks and
      // the next inbound message pays one interrupt.
      const sim::Time woke = engine.now();
      while (!stopping_ && engine.now() - woke < spin_ns) {
        while (device_->queue_poll(q, &slot)) handle_frame(std::move(slot));
      }
    }
    --live_threads_;
  };
  engine.spawn("elan4-progress", [loop, this] { loop(recv_q_, true); });
  // The dedicated completion-queue thread blocks per event: every local
  // DMA completion it serves costs a full interrupt wakeup.
  if (opts_.progress == Progress::kTwoThreads)
    engine.spawn("elan4-completion", [loop, this] { loop(comp_q_, false); });
}

void PtlElan4::send_self(FragKind kind) {
  MatchHeader hdr;
  hdr.kind = kind;
  hdr.flags = pml::kFlagControl;
  hdr.src_gid = hdr.dst_gid = pml_.ctx().gid;
  std::vector<std::uint8_t> frame(sizeof(MatchHeader));
  std::memcpy(frame.data(), &hdr, sizeof(MatchHeader));
  device_->post_qdma(device_->vpid(), recv_q_->id(), frame);
  if (comp_q_ != nullptr)
    device_->post_qdma(device_->vpid(), comp_q_->id(), frame);
}

void PtlElan4::finalize() {
  if (finalized_) return;
  finalized_ = true;
  sim::Engine& engine = net_.engine();

  // Quiesce: pending messages must complete before teardown (§4.1), so no
  // leftover DMA descriptor can regenerate traffic. Stripe pulls count: the
  // BML cancels the doomed ones before it lets the rails finalize.
  while (!sends_.empty() || !recvs_.empty() || !pulls_.empty()) {
    if (threaded())
      engine.sleep(net_.params().host_poll_ns * 10);
    else
      if (progress() == 0) engine.sleep(net_.params().host_poll_ns);
  }

  if (opts_.reliability) {
    // Acknowledge everything received so peers can prune and leave too,
    // then wait for our own outstanding frames to be acknowledged (the
    // retransmission timer keeps recovering losses meanwhile). Without
    // this, a dropped final FIN_ACK would strand the other side forever.
    flush_acks();
    auto outstanding = [this] {
      for (auto& [gid, peer] : peers_)
        if (peer.alive && peer.window_in_use() > 0) return true;
      return false;
    };
    while (outstanding() || !sends_.empty() || !recvs_.empty()) {
      if (threaded())
        engine.sleep(net_.params().host_poll_ns * 10);
      else
        if (progress() == 0) engine.sleep(net_.params().host_poll_ns);
    }
  }

  // Tell peers we are leaving so they stop addressing our context.
  for (auto& [gid, peer] : peers_) {
    if (!peer.alive) continue;
    MatchHeader bye;
    bye.kind = FragKind::kGoodbye;
    bye.flags = pml::kFlagControl;
    bye.src_gid = pml_.ctx().gid;
    bye.dst_gid = gid;
    post_frame(peer, bye, nullptr, 0, nullptr, 0);
  }

  if (threaded()) {
    stopping_ = true;
    send_self(FragKind::kGoodbye);
    while (live_threads_ > 0) engine.sleep(1000);
  }

  // Let in-flight goodbyes drain before the contexts disappear.
  engine.sleep(5 * net_.params().interrupt_ns);
  // Disarm the reliability timers: any already-scheduled callback sees the
  // cleared token and no-ops instead of touching a closed device.
  *alive_ = false;
  device_->close();
}

}  // namespace oqs::ptl_elan4
