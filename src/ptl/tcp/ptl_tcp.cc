#include "ptl/tcp/ptl_tcp.h"

#include <cassert>
#include <cstring>

#include "base/log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rte/oob.h"

namespace oqs::ptl_tcp {

using pml::FragKind;
using pml::MatchHeader;

PtlTcp::PtlTcp(pml::Pml& pml, elan4::QsNet& net, int node, bool reliability)
    : pml_(pml), net_(net), node_(node), reliability_(reliability) {
  addr_ = net_.eth().attach(this);
}

PtlTcp::~PtlTcp() {
  if (!finalized_) finalize();
}

std::vector<std::uint8_t> PtlTcp::contact() const {
  std::vector<std::uint8_t> blob;
  rte::put_pod(blob, static_cast<std::int32_t>(addr_));
  return blob;
}

Status PtlTcp::add_peer(int gid, const pml::ContactInfo& info) {
  auto it = info.find(name_);
  if (it == info.end()) return Status::kUnreachable;
  std::size_t off = 0;
  TcpEndpoint& p = peers_[gid];
  p.gid = gid;
  p.alive = true;
  p.addr = rte::get_pod<std::int32_t>(it->second, off);
  p.stream = reliability_ ? make_stream(gid) : nullptr;
  return Status::kOk;
}

void PtlTcp::charge_io(std::size_t bytes) {
  const ModelParams& p = net_.params();
  net_.node(node_).cpu().compute(p.syscall_ns + p.tcp_stack_ns +
                                 ModelParams::xfer_ns(bytes, p.tcp_copy_mbps));
}

std::unique_ptr<ptl::ReliableStream> PtlTcp::make_stream(int gid) {
  ptl::ReliableStream::Hooks hooks;
  hooks.wire = [this, gid](const std::vector<std::uint8_t>& frame, void*) {
    TcpEndpoint& peer = peers_.at(gid);
    charge_io(frame.size());
    tx_bytes_ += frame.size();
    net_.eth().send(addr_, peer.addr, frame);
  };
  hooks.charge_crc = [this](std::size_t bytes) {
    net_.node(node_).cpu().compute(
        ModelParams::xfer_ns(bytes, net_.params().crc_mbps) + 40);
  };
  hooks.now = [this] { return net_.engine().now(); };
  // The Ethernet model never drops a frame, so nothing ever needs the
  // retransmission backstop — leave the timer unarmed.
  hooks.arm_rtx = [](sim::Time) {};
  hooks.arm_ack = [this] { arm_ack_timer(); };
  hooks.send_nack = [] {};  // gaps cannot occur on an ordered lossless wire
  hooks.send_ack = [this, gid] { send_frame_ack(gid); };
  hooks.node = node_;
  hooks.name = name_;
  return std::make_unique<ptl::ReliableStream>(rtuning_, counters_,
                                               std::move(hooks));
}

void PtlTcp::send_frame_ack(int gid) {
  auto it = peers_.find(gid);
  if (it == peers_.end()) return;
  MatchHeader ack;
  ack.kind = FragKind::kFrameAck;
  ack.flags = pml::kFlagControl;
  ack.src_gid = pml_.ctx().gid;
  ack.dst_gid = gid;
  ++counters_.acks_sent;
  OQS_METRIC_INC("ptl.reliability.acks_sent");
  post_frame(it->second, ack, nullptr, 0);
}

void PtlTcp::arm_ack_timer() {
  if (ack_timer_armed_) return;
  ack_timer_armed_ = true;
  net_.engine().schedule(rtuning_.ack_delay_ns, [this, token = alive_] {
    if (!*token) return;
    net_.engine().spawn("tcp-ack", [this, token] {
      if (!*token) return;
      ack_fire();
    });
  });
}

void PtlTcp::ack_fire() {
  ack_timer_armed_ = false;
  for (auto& [gid, peer] : peers_) {
    if (peer.stream == nullptr) continue;
    if (peer.stream->unacked_rx() > 0) send_frame_ack(gid);
  }
}

void PtlTcp::post_frame(TcpEndpoint& peer, const MatchHeader& hdr,
                        const void* payload, std::size_t payload_len) {
  const bool sequenced =
      reliability_ && (hdr.flags & pml::kFlagControl) == 0;
  const std::size_t trailer = sequenced ? 4 : 0;
  std::vector<std::uint8_t> frame(sizeof(MatchHeader) + payload_len + trailer);
  MatchHeader h = hdr;
  if (reliability_) peer.stream->stamp_ack(h);
  if (sequenced) {
    h.flags |= pml::kFlagChecksummed;
    h.frame_seq = peer.stream->assign_seq();
  }
  std::memcpy(frame.data(), &h, sizeof(MatchHeader));
  if (payload_len > 0)
    std::memcpy(frame.data() + sizeof(MatchHeader), payload, payload_len);
  if (sequenced) {
    peer.stream->submit(std::move(frame), nullptr);
    return;
  }
  charge_io(frame.size());
  tx_bytes_ += frame.size();
  net_.eth().send(addr_, peer.addr, std::move(frame));
}

void PtlTcp::send_first(pml::SendRequest& req, std::size_t inline_len) {
  auto pit = peers_.find(req.dst_gid);
  if (pit == peers_.end()) {
    req.fail(Status::kUnreachable);
    return;
  }
  OQS_TRACE_SPAN(span_, node_, "ptl", "send_first", "len", req.total_bytes());
  TcpEndpoint& peer = pit->second;
  const std::size_t total = req.total_bytes();

  if (total <= eager_limit()) {
    req.hdr.kind = FragKind::kEager;
    std::vector<std::uint8_t> payload(total);
    if (total > 0) req.convertor.pack(payload.data(), total);
    post_frame(peer, req.hdr, payload.data(), payload.size());
    pml_.send_progress(req, total);
    return;
  }

  const std::uint64_t id = next_id_++;
  if (inline_len > eager_limit()) inline_len = eager_limit();
  req.hdr.kind = FragKind::kRendezvous;
  req.hdr.cookie = id;
  std::vector<std::uint8_t> payload(inline_len);
  if (inline_len > 0) req.convertor.pack(payload.data(), inline_len);
  sends_.emplace(id, PendingSend{&req, total - inline_len, req.dst_gid});
  OQS_METRIC_INC("ptl.rdv.started");
  OQS_TRACE_INSTANT(node_, "ptl", "rdv.first_frag", "cookie", id, "rest",
                    total - inline_len);
  post_frame(peer, req.hdr, payload.data(), payload.size());
  if (inline_len > 0) pml_.send_progress(req, inline_len);
}

void PtlTcp::matched(pml::RecvRequest& req, std::unique_ptr<pml::FirstFrag> frag) {
  auto* tf = static_cast<TcpFirstFrag*>(frag.get());
  auto pit = peers_.find(tf->hdr.src_gid);
  if (pit == peers_.end()) {
    req.fail(Status::kUnreachable);
    return;
  }
  const std::uint64_t id = next_id_++;
  recvs_.emplace(id, PendingRecv{&req, tf->hdr.len - tf->inline_data.size(),
                                 tf->hdr.src_gid});
  MatchHeader ack;
  ack.kind = FragKind::kAck;
  ack.cookie = tf->send_cookie;
  ack.aux = id;  // receiver-side cookie for the data chunks
  ack.src_gid = pml_.ctx().gid;
  ack.dst_gid = tf->hdr.src_gid;
  OQS_TRACE_INSTANT(node_, "ptl", "rdv.ack_sent", "cookie", tf->send_cookie,
                    "rest", tf->hdr.len - tf->inline_data.size());
  post_frame(pit->second, ack, nullptr, 0);
}

// ------------------------------------------------ BML striping hooks ----

std::uint64_t PtlTcp::stripe_expose(const void* base, std::size_t len) {
  const std::uint64_t id = next_id_++;
  stripe_regions_.emplace(
      id, StripeRegion{static_cast<const std::uint8_t*>(base), len});
  return id;
}

std::uint64_t PtlTcp::stripe_pull(int gid, std::uint64_t region,
                                  std::size_t offset, void* dst,
                                  std::size_t len,
                                  std::function<void(Status)> done) {
  auto it = peers_.find(gid);
  if (it == peers_.end() || !it->second.alive) return 0;
  const std::uint64_t id = next_id_++;
  stripe_pulls_.emplace(
      id, StripePull{static_cast<std::uint8_t*>(dst), len, std::move(done)});
  MatchHeader preq;
  preq.kind = FragKind::kPullReq;
  preq.src_gid = pml_.ctx().gid;
  preq.dst_gid = gid;
  preq.cookie = id;       // echoed back in the response
  preq.aux = region;      // exposer's region handle
  preq.len = len;
  std::vector<std::uint8_t> body;
  rte::put_pod(body, static_cast<std::uint64_t>(offset));
  rte::put_pod(body, static_cast<std::uint64_t>(len));
  OQS_TRACE_INSTANT(node_, "ptl", "stripe.pull_req", "id", id, "len",
                    static_cast<std::uint64_t>(len));
  post_frame(it->second, preq, body.data(), body.size());
  return id;
}

void PtlTcp::bml_post(int gid, const MatchHeader& hdr, const void* body,
                      std::size_t body_len) {
  auto it = peers_.find(gid);
  if (it == peers_.end() || !it->second.alive) return;
  post_frame(it->second, hdr, body, body_len);
}

void PtlTcp::eth_deliver(int, std::vector<std::uint8_t> frame) {
  inbox_.push_back(std::move(frame));
}

void PtlTcp::handle_frame(std::vector<std::uint8_t>&& frame) {
  MatchHeader hdr;
  std::memcpy(&hdr, frame.data(), sizeof(MatchHeader));
  charge_io(frame.size());
  OQS_TRACE_SPAN(span_, node_, "ptl", "handle_frame", "kind",
                 static_cast<std::uint64_t>(hdr.kind));
  OQS_METRIC_INC("ptl.frames.handled");

  if (reliability_ && hdr.src_gid != pml_.ctx().gid) {
    auto pit = peers_.find(hdr.src_gid);
    if (pit != peers_.end() && pit->second.stream != nullptr)
      pit->second.stream->harvest_ack(hdr.ack_seq);
    if ((hdr.flags & pml::kFlagControl) == 0) {
      if (pit == peers_.end() || pit->second.stream == nullptr) return;
      if (!pit->second.stream->admit(hdr, frame)) return;
      frame.resize(frame.size() - 4);  // strip the CRC trailer
    }
  }

  switch (hdr.kind) {
    case FragKind::kEager:
    case FragKind::kRendezvous:
    case FragKind::kRendezvousStriped: {
      auto ff = std::make_unique<TcpFirstFrag>();
      ff->hdr = hdr;
      ff->ptl = this;
      ff->send_cookie = hdr.cookie;
      ff->inline_data.assign(frame.begin() + sizeof(MatchHeader), frame.end());
      pml_.incoming_first(std::move(ff));
      break;
    }
    case FragKind::kStripeFin:
      pml_.bml().handle_stripe_fin(hdr);
      break;
    case FragKind::kPipeFrag:
      pml_.bml().handle_pipe_frag(hdr, frame.data() + sizeof(MatchHeader),
                                  frame.size() - sizeof(MatchHeader));
      break;
    case FragKind::kPullReq: {
      std::size_t off = sizeof(MatchHeader);
      const auto roff = rte::get_pod<std::uint64_t>(frame, off);
      const auto rlen = rte::get_pod<std::uint64_t>(frame, off);
      auto pit = peers_.find(hdr.src_gid);
      if (pit == peers_.end() || !pit->second.alive) break;
      MatchHeader resp;
      resp.kind = FragKind::kPullResp;
      resp.src_gid = pml_.ctx().gid;
      resp.dst_gid = hdr.src_gid;
      resp.cookie = hdr.cookie;  // the puller's pull id
      auto rit = stripe_regions_.find(hdr.aux);
      if (rit == stripe_regions_.end() ||
          roff + rlen > rit->second.len) {
        resp.status = static_cast<std::uint16_t>(Status::kFault);
        post_frame(pit->second, resp, nullptr, 0);
        break;
      }
      resp.status = static_cast<std::uint16_t>(Status::kOk);
      resp.len = rlen;
      post_frame(pit->second, resp, rit->second.base + roff,
                 static_cast<std::size_t>(rlen));
      break;
    }
    case FragKind::kPullResp: {
      auto it = stripe_pulls_.find(hdr.cookie);
      if (it == stripe_pulls_.end()) break;  // cancelled pull: stale response
      StripePull op = std::move(it->second);
      stripe_pulls_.erase(it);
      if (hdr.status != static_cast<std::uint16_t>(Status::kOk)) {
        if (op.done) op.done(static_cast<Status>(hdr.status));
        break;
      }
      const std::size_t part = frame.size() - sizeof(MatchHeader);
      if (part != op.len) {
        if (op.done) op.done(Status::kError);
        break;
      }
      std::memcpy(op.dst, frame.data() + sizeof(MatchHeader), part);
      if (op.done) op.done(Status::kOk);
      break;
    }
    case FragKind::kAck: {
      auto it = sends_.find(hdr.cookie);
      if (it == sends_.end()) {
        log::warn(name_, "ACK for unknown cookie ", hdr.cookie);
        break;
      }
      PendingSend op = it->second;
      sends_.erase(it);
      TcpEndpoint& peer = peers_.at(op.gid);
      const std::uint32_t chunk = net_.params().tcp_chunk;
      std::size_t off = 0;
      std::vector<std::uint8_t> buf;
      while (off < op.rest) {
        const std::size_t part = std::min<std::size_t>(chunk, op.rest - off);
        buf.resize(part);
        op.req->convertor.pack(buf.data(), part);
        MatchHeader data;
        data.kind = FragKind::kData;
        data.cookie = hdr.aux;  // receiver's cookie
        data.aux = off;
        data.len = part;
        data.src_gid = pml_.ctx().gid;
        data.dst_gid = op.gid;
        post_frame(peer, data, buf.data(), part);
        off += part;
      }
      OQS_METRIC_INC("ptl.rdv.send_done");
      OQS_TRACE_INSTANT(node_, "ptl", "rdv.send_done", "cookie", hdr.cookie,
                        "rest", op.rest);
      pml_.send_progress(*op.req, op.rest);
      break;
    }
    case FragKind::kData: {
      auto it = recvs_.find(hdr.cookie);
      if (it == recvs_.end()) {
        log::warn(name_, "DATA for unknown cookie ", hdr.cookie);
        break;
      }
      PendingRecv& op = it->second;
      const std::size_t part = frame.size() - sizeof(MatchHeader);
      assert(part <= op.remaining && "chunk overruns the posted receive");
      op.req->convertor.unpack(frame.data() + sizeof(MatchHeader), part);
      op.remaining -= part;
      pml::RecvRequest* req = op.req;
      if (op.remaining == 0) {
        recvs_.erase(it);
        OQS_METRIC_INC("ptl.rdv.recv_done");
        OQS_TRACE_INSTANT(node_, "ptl", "rdv.recv_done", "cookie", hdr.cookie,
                          "rest", part);
      }
      pml_.recv_progress(*req, part);
      break;
    }
    case FragKind::kFrameAck:
      break;  // pure ack carrier: consumed by the gate above
    case FragKind::kGoodbye: {
      // The peer tore down (finalize or migration): stop addressing its
      // socket. A later send re-resolves fresh contact info lazily.
      auto pit = peers_.find(hdr.src_gid);
      if (pit != peers_.end()) pit->second.alive = false;
      break;
    }
    default:
      log::warn(name_, "unexpected frame kind ",
                static_cast<int>(hdr.kind));
  }
}

int PtlTcp::progress() {
  // One poll() syscall over the socket set.
  net_.node(node_).cpu().compute(net_.params().host_poll_ns);
  int n = 0;
  while (!inbox_.empty()) {
    std::vector<std::uint8_t> f = std::move(inbox_.front());
    inbox_.pop_front();
    handle_frame(std::move(f));
    ++n;
  }
  return n;
}

void PtlTcp::finalize() {
  if (finalized_) return;
  finalized_ = true;
  while (!sends_.empty() || !recvs_.empty()) {
    if (progress() == 0) net_.engine().sleep(net_.params().host_poll_ns * 4);
  }
  if (reliability_) {
    // Flush cumulative acks so peers can prune, then wait for our own
    // frames to be acknowledged before the endpoint detaches.
    for (auto& [gid, peer] : peers_) {
      if (peer.stream != nullptr && peer.stream->unacked_rx() > 0)
        send_frame_ack(gid);
    }
    auto outstanding = [this] {
      for (auto& [gid, peer] : peers_)
        if (peer.window_in_use() > 0) return true;
      return false;
    };
    while (outstanding()) {
      if (progress() == 0) net_.engine().sleep(net_.params().host_poll_ns * 4);
    }
  }
  // Tell peers we are leaving so they stop addressing this socket (a send
  // to a detached address drops silently — a migrated peer would hang).
  for (auto& [gid, peer] : peers_) {
    if (!peer.alive) continue;
    MatchHeader bye;
    bye.kind = FragKind::kGoodbye;
    bye.flags = pml::kFlagControl;
    bye.src_gid = pml_.ctx().gid;
    bye.dst_gid = gid;
    post_frame(peer, bye, nullptr, 0);
  }
  // Let the in-flight goodbyes land before the endpoint detaches.
  net_.engine().sleep(net_.params().eth_latency_ns * 2);
  *alive_ = false;
  net_.eth().detach(addr_);
}

}  // namespace oqs::ptl_tcp
