#include "ptl/tcp/ptl_tcp.h"

#include <cassert>
#include <cstring>

#include "base/log.h"
#include "rte/oob.h"

namespace oqs::ptl_tcp {

using pml::FragKind;
using pml::MatchHeader;

PtlTcp::PtlTcp(pml::Pml& pml, elan4::QsNet& net, int node)
    : pml_(pml), net_(net), node_(node) {
  addr_ = net_.eth().attach(this);
}

PtlTcp::~PtlTcp() {
  if (!finalized_) finalize();
}

std::vector<std::uint8_t> PtlTcp::contact() const {
  std::vector<std::uint8_t> blob;
  rte::put_pod(blob, static_cast<std::int32_t>(addr_));
  return blob;
}

Status PtlTcp::add_peer(int gid, const pml::ContactInfo& info) {
  auto it = info.find(name_);
  if (it == info.end()) return Status::kUnreachable;
  std::size_t off = 0;
  peers_[gid] = rte::get_pod<std::int32_t>(it->second, off);
  return Status::kOk;
}

void PtlTcp::charge_io(std::size_t bytes) {
  const ModelParams& p = net_.params();
  net_.node(node_).cpu().compute(p.syscall_ns + p.tcp_stack_ns +
                                 ModelParams::xfer_ns(bytes, p.tcp_copy_mbps));
}

void PtlTcp::post_frame(int peer_addr, const MatchHeader& hdr, const void* payload,
                        std::size_t payload_len) {
  std::vector<std::uint8_t> frame(sizeof(MatchHeader) + payload_len);
  std::memcpy(frame.data(), &hdr, sizeof(MatchHeader));
  if (payload_len > 0)
    std::memcpy(frame.data() + sizeof(MatchHeader), payload, payload_len);
  charge_io(frame.size());
  net_.eth().send(addr_, peer_addr, std::move(frame));
}

void PtlTcp::send_first(pml::SendRequest& req, std::size_t inline_len) {
  auto pit = peers_.find(req.dst_gid);
  if (pit == peers_.end()) {
    req.fail(Status::kUnreachable);
    return;
  }
  const std::size_t total = req.total_bytes();

  if (total <= eager_limit()) {
    req.hdr.kind = FragKind::kEager;
    std::vector<std::uint8_t> payload(total);
    if (total > 0) req.convertor.pack(payload.data(), total);
    post_frame(pit->second, req.hdr, payload.data(), payload.size());
    pml_.send_progress(req, total);
    return;
  }

  const std::uint64_t id = next_id_++;
  if (inline_len > eager_limit()) inline_len = eager_limit();
  req.hdr.kind = FragKind::kRendezvous;
  req.hdr.cookie = id;
  std::vector<std::uint8_t> payload(inline_len);
  if (inline_len > 0) req.convertor.pack(payload.data(), inline_len);
  sends_.emplace(id, PendingSend{&req, total - inline_len, req.dst_gid});
  post_frame(pit->second, req.hdr, payload.data(), payload.size());
  if (inline_len > 0) pml_.send_progress(req, inline_len);
}

void PtlTcp::matched(pml::RecvRequest& req, std::unique_ptr<pml::FirstFrag> frag) {
  auto* tf = static_cast<TcpFirstFrag*>(frag.get());
  auto pit = peers_.find(tf->hdr.src_gid);
  if (pit == peers_.end()) {
    req.fail(Status::kUnreachable);
    return;
  }
  const std::uint64_t id = next_id_++;
  recvs_.emplace(id, PendingRecv{&req, tf->hdr.len - tf->inline_data.size(),
                                 tf->hdr.src_gid});
  MatchHeader ack;
  ack.kind = FragKind::kAck;
  ack.cookie = tf->send_cookie;
  ack.aux = id;  // receiver-side cookie for the data chunks
  ack.src_gid = pml_.ctx().gid;
  ack.dst_gid = tf->hdr.src_gid;
  post_frame(pit->second, ack, nullptr, 0);
}

void PtlTcp::eth_deliver(int, std::vector<std::uint8_t> frame) {
  inbox_.push_back(std::move(frame));
}

void PtlTcp::handle_frame(std::vector<std::uint8_t>&& frame) {
  MatchHeader hdr;
  std::memcpy(&hdr, frame.data(), sizeof(MatchHeader));
  charge_io(frame.size());

  switch (hdr.kind) {
    case FragKind::kEager:
    case FragKind::kRendezvous: {
      auto ff = std::make_unique<TcpFirstFrag>();
      ff->hdr = hdr;
      ff->ptl = this;
      ff->send_cookie = hdr.cookie;
      ff->inline_data.assign(frame.begin() + sizeof(MatchHeader), frame.end());
      pml_.incoming_first(std::move(ff));
      break;
    }
    case FragKind::kAck: {
      auto it = sends_.find(hdr.cookie);
      if (it == sends_.end()) {
        log::warn(name_, "ACK for unknown cookie ", hdr.cookie);
        break;
      }
      PendingSend op = it->second;
      sends_.erase(it);
      const int peer_addr = peers_.at(op.gid);
      const std::uint32_t chunk = net_.params().tcp_chunk;
      std::size_t off = 0;
      std::vector<std::uint8_t> buf;
      while (off < op.rest) {
        const std::size_t part = std::min<std::size_t>(chunk, op.rest - off);
        buf.resize(part);
        op.req->convertor.pack(buf.data(), part);
        MatchHeader data;
        data.kind = FragKind::kData;
        data.cookie = hdr.aux;  // receiver's cookie
        data.aux = off;
        data.len = part;
        data.src_gid = pml_.ctx().gid;
        data.dst_gid = op.gid;
        post_frame(peer_addr, data, buf.data(), part);
        off += part;
      }
      pml_.send_progress(*op.req, op.rest);
      break;
    }
    case FragKind::kData: {
      auto it = recvs_.find(hdr.cookie);
      if (it == recvs_.end()) {
        log::warn(name_, "DATA for unknown cookie ", hdr.cookie);
        break;
      }
      PendingRecv& op = it->second;
      const std::size_t part = frame.size() - sizeof(MatchHeader);
      assert(part <= op.remaining && "chunk overruns the posted receive");
      op.req->convertor.unpack(frame.data() + sizeof(MatchHeader), part);
      op.remaining -= part;
      pml::RecvRequest* req = op.req;
      if (op.remaining == 0) recvs_.erase(it);
      pml_.recv_progress(*req, part);
      break;
    }
    default:
      log::warn(name_, "unexpected frame kind ",
                static_cast<int>(hdr.kind));
  }
}

int PtlTcp::progress() {
  // One poll() syscall over the socket set.
  net_.node(node_).cpu().compute(net_.params().host_poll_ns);
  int n = 0;
  while (!inbox_.empty()) {
    std::vector<std::uint8_t> f = std::move(inbox_.front());
    inbox_.pop_front();
    handle_frame(std::move(f));
    ++n;
  }
  return n;
}

void PtlTcp::finalize() {
  if (finalized_) return;
  finalized_ = true;
  while (!sends_.empty() || !recvs_.empty()) {
    if (progress() == 0) net_.engine().sleep(net_.params().host_poll_ns * 4);
  }
  net_.eth().detach(addr_);
}

}  // namespace oqs::ptl_tcp
