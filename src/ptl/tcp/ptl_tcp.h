// PTL/TCP — the reference transport the paper's Open MPI started from.
//
// Runs the same PML protocol over a simulated kernel socket path: every
// frame pays syscall + user/kernel copy + protocol-stack time, and all data
// moves through send/recv copies (no RDMA). Long messages are rendezvous
// plus in-order data chunks. Exists (a) as the semantic contrast the paper
// draws — poll/select progress, copies, OS overhead — and (b) to exercise
// concurrent multi-network scheduling in the PML.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "elan4/qsnet.h"
#include "net/ethernet.h"
#include "pml/pml.h"
#include "pml/ptl.h"

namespace oqs::ptl_tcp {

struct TcpFirstFrag final : pml::FirstFrag {
  std::uint64_t send_cookie = 0;
};

class PtlTcp final : public pml::Ptl, private net::EthNet::Sink {
 public:
  PtlTcp(pml::Pml& pml, elan4::QsNet& net, int node);
  ~PtlTcp() override;

  const std::string& name() const override { return name_; }
  std::size_t eager_limit() const override { return net_.params().tcp_eager; }
  double bandwidth_weight() const override { return net_.params().tcp_wire_mbps; }
  std::vector<std::uint8_t> contact() const override;
  Status add_peer(int gid, const pml::ContactInfo& info) override;
  void remove_peer(int gid) override { peers_.erase(gid); }
  bool reaches(int gid) const override { return peers_.count(gid) > 0; }
  void send_first(pml::SendRequest& req, std::size_t inline_len) override;
  void matched(pml::RecvRequest& req, std::unique_ptr<pml::FirstFrag> frag) override;
  int progress() override;
  void finalize() override;

  std::size_t pending_ops() const { return sends_.size() + recvs_.size(); }

 private:
  struct PendingSend {
    pml::SendRequest* req = nullptr;
    std::size_t rest = 0;
    int gid = -1;
  };
  struct PendingRecv {
    pml::RecvRequest* req = nullptr;
    std::size_t remaining = 0;
    int gid = -1;
  };

  // net::EthNet::Sink — frames land in the kernel-side inbox.
  void eth_deliver(int src_addr, std::vector<std::uint8_t> frame) override;

  void post_frame(int peer_addr, const pml::MatchHeader& hdr, const void* payload,
                  std::size_t payload_len);
  void handle_frame(std::vector<std::uint8_t>&& frame);
  void charge_io(std::size_t bytes);

  pml::Pml& pml_;
  elan4::QsNet& net_;
  int node_;
  std::string name_ = "tcp";
  int addr_ = -1;
  std::map<int, int> peers_;  // gid -> eth address
  std::map<std::uint64_t, PendingSend> sends_;
  std::map<std::uint64_t, PendingRecv> recvs_;
  std::deque<std::vector<std::uint8_t>> inbox_;
  std::uint64_t next_id_ = 1;
  bool finalized_ = false;
};

}  // namespace oqs::ptl_tcp
