// PTL/TCP — the reference transport the paper's Open MPI started from.
//
// Runs the same PML protocol over a simulated kernel socket path: every
// frame pays syscall + user/kernel copy + protocol-stack time, and all data
// moves through send/recv copies (no RDMA). Long messages are rendezvous
// plus in-order data chunks. Exists (a) as the semantic contrast the paper
// draws — poll/select progress, copies, OS overhead — and (b) to exercise
// concurrent multi-network scheduling in the PML.
//
// The shared go-back-N framing (ptl::ReliableStream) can be layered on per
// construction flag. The Ethernet model is lossless, so this never
// retransmits; it exercises the framing component — sequencing, CRC
// trailers, cumulative acks opening the send window — on a second
// transport.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "elan4/qsnet.h"
#include "net/ethernet.h"
#include "pml/endpoint.h"
#include "pml/pml.h"
#include "pml/ptl.h"
#include "ptl/reliable_stream.h"

namespace oqs::ptl_tcp {

struct TcpFirstFrag final : pml::FirstFrag {
  std::uint64_t send_cookie = 0;
};

// Per-peer connection state: Ethernet address plus (with reliability on)
// the framing stream.
struct TcpEndpoint final : pml::Endpoint {
  int addr = -1;
  std::unique_ptr<ptl::ReliableStream> stream;

  std::size_t window_in_use() const override {
    return stream != nullptr ? stream->window_in_use() : 0;
  }
};

class PtlTcp final : public pml::Ptl, private net::EthNet::Sink {
 public:
  PtlTcp(pml::Pml& pml, elan4::QsNet& net, int node, bool reliability = false);
  ~PtlTcp() override;

  const std::string& name() const override { return name_; }
  std::size_t eager_limit() const override { return net_.params().tcp_eager; }
  double bandwidth_weight() const override { return net_.params().tcp_wire_mbps; }
  double latency_ns() const override {
    // One-way small-frame estimate: syscall + stack + wire propagation.
    const ModelParams& p = net_.params();
    return static_cast<double>(p.syscall_ns + p.tcp_stack_ns + p.eth_latency_ns);
  }
  std::vector<std::uint8_t> contact() const override;
  Status add_peer(int gid, const pml::ContactInfo& info) override;
  void remove_peer(int gid) override { peers_.erase(gid); }
  bool reaches(int gid) const override {
    auto it = peers_.find(gid);
    return it != peers_.end() && it->second.alive;
  }
  pml::Endpoint* endpoint(int gid) override {
    auto it = peers_.find(gid);
    return it == peers_.end() ? nullptr : &it->second;
  }
  bool wired() const override {
    for (const auto& [gid, peer] : peers_)
      if (peer.alive) return true;
    return false;
  }
  void send_first(pml::SendRequest& req, std::size_t inline_len) override;
  void matched(pml::RecvRequest& req, std::unique_ptr<pml::FirstFrag> frag) override;

  // BML striping hooks: no RDMA engine here, so a "pull" is a request/
  // response pair over the socket (kPullReq / kPullResp). The TCP rail
  // thereby joins the same fragment schedule as the Elan4 rails.
  bool stripe_capable() const override { return true; }
  bool stripe_checksummed() const override { return reliability_; }
  std::uint64_t stripe_expose(const void* base, std::size_t len) override;
  void stripe_unexpose(std::uint64_t region) override {
    stripe_regions_.erase(region);
  }
  std::uint64_t stripe_pull(int gid, std::uint64_t region, std::size_t offset,
                            void* dst, std::size_t len,
                            std::function<void(Status)> done) override;
  void stripe_cancel(std::uint64_t pull_id) override {
    stripe_pulls_.erase(pull_id);
  }
  void bml_post(int gid, const pml::MatchHeader& hdr, const void* body,
                std::size_t body_len) override;
  // Pushed pipeline fragments use the copy-path chunk size, not the 64 KB
  // eager limit: one chunk per frame keeps the socket copies bounded.
  std::size_t pipeline_push_unit() const override {
    return net_.params().tcp_chunk;
  }

  int progress() override;
  bool active() const override { return !sends_.empty() || !recvs_.empty(); }
  void finalize() override;

  std::size_t pending_ops() const { return sends_.size() + recvs_.size(); }
  bool reliability() const { return reliability_; }
  std::uint64_t acks_sent() const { return counters_.acks_sent; }
  std::uint64_t frames_dropped() const { return counters_.frames_dropped; }
  std::uint64_t tx_bytes() const { return tx_bytes_; }

 private:
  struct PendingSend {
    pml::SendRequest* req = nullptr;
    std::size_t rest = 0;
    int gid = -1;
  };
  struct PendingRecv {
    pml::RecvRequest* req = nullptr;
    std::size_t remaining = 0;
    int gid = -1;
  };
  struct StripeRegion {
    const std::uint8_t* base = nullptr;
    std::size_t len = 0;
  };
  struct StripePull {
    std::uint8_t* dst = nullptr;
    std::size_t len = 0;
    std::function<void(Status)> done;
  };

  // net::EthNet::Sink — frames land in the kernel-side inbox.
  void eth_deliver(int src_addr, std::vector<std::uint8_t> frame) override;

  std::unique_ptr<ptl::ReliableStream> make_stream(int gid);
  void send_frame_ack(int gid);
  void arm_ack_timer();
  void ack_fire();
  void post_frame(TcpEndpoint& peer, const pml::MatchHeader& hdr,
                  const void* payload, std::size_t payload_len);
  void handle_frame(std::vector<std::uint8_t>&& frame);
  void charge_io(std::size_t bytes);

  pml::Pml& pml_;
  elan4::QsNet& net_;
  int node_;
  bool reliability_;
  std::string name_ = "tcp";
  int addr_ = -1;
  ptl::ReliableTuning rtuning_;
  ptl::ReliableCounters counters_;
  std::map<int, TcpEndpoint> peers_;
  std::map<std::uint64_t, PendingSend> sends_;
  std::map<std::uint64_t, PendingRecv> recvs_;
  std::map<std::uint64_t, StripeRegion> stripe_regions_;
  std::map<std::uint64_t, StripePull> stripe_pulls_;
  std::deque<std::vector<std::uint8_t>> inbox_;
  std::uint64_t next_id_ = 1;
  std::uint64_t tx_bytes_ = 0;
  bool ack_timer_armed_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  bool finalized_ = false;
};

}  // namespace oqs::ptl_tcp
